// Quickstart: profile a bundled workload, run the automated analyzer, and
// render flame graphs — the 60-second tour of the public API.
package main

import (
	"fmt"
	"log"
	"os"

	"deepcontext"
)

func main() {
	// Profile the U-Net training workload on the simulated A100 with
	// Python+framework call paths (the low-overhead default).
	profile, err := deepcontext.ProfileWorkload("UNet", deepcontext.Config{
		Vendor:      "nvidia",
		Framework:   "pytorch",
		CPUSampling: true, // CPU and GPU metrics in the same run (§4.2)
	}, deepcontext.Knobs{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %s: %d calling contexts, %d kernel launches\n",
		profile.Meta.Workload, profile.Tree.NodeCount(), int64(profile.Stats.ActivitiesHandled))

	// The analyzer flags hotspots, small-kernel frames, fwd/bwd
	// imbalances and CPU latency problems with actionable suggestions.
	report := deepcontext.Analyze(profile)
	fmt.Printf("\n%d findings:\n", len(report.Issues))
	for i, issue := range report.Issues {
		if i >= 6 {
			fmt.Printf("  ... and %d more\n", len(report.Issues)-i)
			break
		}
		fmt.Println(" ", issue)
	}

	// Top-down ASCII flame graph with analyzer annotations.
	fmt.Println()
	if err := deepcontext.WriteFlameText(os.Stdout, profile,
		deepcontext.FlameOptions{Annotate: report}, 5); err != nil {
		log.Fatal(err)
	}

	// Persist the profile and emit the interactive GUI page.
	if err := deepcontext.SaveProfile("unet.dcp", profile); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create("unet.html")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := deepcontext.WriteFlameGraph(f, profile, deepcontext.FlameOptions{Annotate: report}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote unet.dcp and unet.html (open in a browser, or `dcviz -p unet.dcp -http :8080`)")
}
