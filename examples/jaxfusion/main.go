// Jaxfusion demonstrates cross-framework profiling (paper §4.1 Fig. 4 and
// §6.6): the same workload runs under the simulated JAX JIT, where the
// fusion pass merges elementwise chains. DeepContext records the mapping
// from each fused operator back to the original operators and their
// compile-time Python call paths, and the JAX run launches far fewer
// kernels than eager PyTorch.
package main

import (
	"fmt"
	"log"

	"deepcontext"
)

func kernels(fw string) (int64, deepcontext.Duration, *deepcontext.Profile, error) {
	s, err := deepcontext.NewSession(deepcontext.Config{Framework: fw})
	if err != nil {
		return 0, 0, nil, err
	}
	if err := s.RunWorkload("GNN", deepcontext.Knobs{}, 20); err != nil {
		return 0, 0, nil, err
	}
	e2e := s.EndToEnd()
	p := s.Stop()
	return p.Stats.ActivitiesHandled, e2e, p, nil
}

func main() {
	ptKernels, ptTime, _, err := kernels("pytorch")
	if err != nil {
		log.Fatal(err)
	}
	jaxKernels, jaxTime, jaxProfile, err := kernels("jax")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GNN, 20 iterations:\n")
	fmt.Printf("  pytorch (eager): %6d activities, e2e %v\n", ptKernels, ptTime)
	fmt.Printf("  jax (jit):       %6d activities, e2e %v\n", jaxKernels, jaxTime)
	fmt.Printf("  jax speedup: %.2fx with %.1fx fewer kernel launches\n\n",
		float64(ptTime)/float64(jaxTime), float64(ptKernels)/float64(jaxKernels))

	// Figure 4: each fused operator keeps its original operators and
	// their Python call paths captured during tracing.
	fmt.Printf("fused operators recorded: %d\n", len(jaxProfile.Fused))
	shown := 0
	for name, origins := range jaxProfile.Fused {
		if shown >= 2 {
			break
		}
		shown++
		fmt.Printf("  %s merges %d original ops:\n", name, len(origins))
		for i, o := range origins {
			if i >= 3 {
				fmt.Printf("    ... and %d more\n", len(origins)-i)
				break
			}
			loc := "?"
			if n := len(o.PyPath); n > 0 {
				f := o.PyPath[n-1]
				loc = fmt.Sprintf("%s:%d (%s)", f.File, f.Line, f.Func)
			}
			fmt.Printf("    %-22s traced at %s\n", o.Name, loc)
		}
	}
}
