// Crossplatform reproduces the paper's §6.5 study: the same U-Net workload
// profiled on the Nvidia and AMD platforms has different hotspots. On AMD,
// the instance-norm kernel — built from a normalization template tuned for
// warp-32 devices — gets fewer CTAs and wasted lanes on the warp-64 MI250,
// flipping it into the dominant kernel.
package main

import (
	"fmt"
	"log"
	"os"

	"deepcontext"
)

func hottest(vendor string) (*deepcontext.Profile, error) {
	s, err := deepcontext.NewSession(deepcontext.Config{Vendor: vendor})
	if err != nil {
		return nil, err
	}
	// Tune the loader out of the way so the GPU paces the run.
	if err := s.RunWorkload("UNet", deepcontext.Knobs{LoaderWorkers: 6}, 15); err != nil {
		return nil, err
	}
	return s.Stop(), nil
}

func main() {
	for _, vendor := range []string{"nvidia", "amd"} {
		p, err := hottest(vendor)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("==== %s (%s via %s) ====\n", vendor, p.Meta.Device, p.Meta.Substrate)
		// The bottom-up view aggregates each kernel across all calling
		// contexts — exactly how the paper's Figure 10 flame graphs
		// expose the vendor difference.
		if err := deepcontext.WriteFlameText(os.Stdout, p,
			deepcontext.FlameOptions{BottomUp: true}, 1); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	fmt.Println("expected: convolution tops the Nvidia profile; instance_norm tops AMD.")
	fmt.Println("fix (paper §6.5): retune threads per CTA, e.g. Knobs{NormBlockThreads: 1024}.")
}
