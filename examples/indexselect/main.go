// Indexselect walks through the paper's §6.1 DLRM case study: the
// forward/backward operator analysis reveals that the deterministic
// aten::index backward dominates GPU time; switching to aten::index_select
// (atomic accumulation) recovers ~1.66x of total GPU time.
package main

import (
	"fmt"
	"log"
	"strings"

	"deepcontext"
)

func run(knobs deepcontext.Knobs) (*deepcontext.Profile, deepcontext.Duration, error) {
	s, err := deepcontext.NewSession(deepcontext.Config{Vendor: "nvidia"})
	if err != nil {
		return nil, 0, err
	}
	if err := s.RunWorkload("DLRM-small", knobs, 30); err != nil {
		return nil, 0, err
	}
	e2e := s.EndToEnd()
	return s.Stop(), e2e, nil
}

func gpuSeconds(p *deepcontext.Profile) float64 {
	id, ok := p.Tree.Schema.Lookup("gpu_time_ns")
	if !ok {
		return 0
	}
	return p.Tree.Root.InclValue(id) / 1e9
}

func main() {
	// Step 1: profile the unmodified workload.
	before, _, err := run(deepcontext.Knobs{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline DLRM-small: total GPU time %.1fs\n", gpuSeconds(before))

	// Step 2: the forward/backward analysis points at aten::index.
	report := deepcontext.Analyze(before)
	for _, issue := range report.Issues {
		if issue.Analysis == "forward_backward" && strings.Contains(issue.Message, "aten::index") {
			fmt.Println("\nanalyzer finding:")
			fmt.Println(" ", issue.Message)
			fmt.Println("  suggestion:", issue.Suggestion)
		}
	}

	// Step 3: apply the suggested fix and measure again.
	after, _, err := run(deepcontext.Knobs{UseIndexSelect: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith aten::index_select: total GPU time %.1fs\n", gpuSeconds(after))
	fmt.Printf("speedup: %.2fx (paper reports 1.66x)\n", gpuSeconds(before)/gpuSeconds(after))
}
