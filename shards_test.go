package deepcontext

import (
	"testing"

	"deepcontext/internal/cct"
)

// TestShardCountEquivalence is the PR's acceptance gate for sharded
// ingestion: profiling the same workload with one shard and with many must
// produce identical trees — same contexts, same aggregates — after address
// normalization, and identical collection statistics. Only child insertion
// order may differ (shard folds concatenate per-thread orders), which
// cct.Equivalent deliberately ignores.
func TestShardCountEquivalence(t *testing.T) {
	cases := []struct {
		workload string
		cfg      Config
	}{
		{"ViT", Config{}},
		{"GNN", Config{CPUSampling: true}},
		{"UNet", Config{PCSampling: true}},
		{"Llama3-8B", Config{Framework: "jax", Vendor: "amd"}},
	}
	for _, tc := range cases {
		t.Run(tc.workload, func(t *testing.T) {
			single := tc.cfg
			single.Shards = 1
			many := tc.cfg
			many.Shards = 8
			p1, err := ProfileWorkload(tc.workload, single, Knobs{})
			if err != nil {
				t.Fatal(err)
			}
			p8, err := ProfileWorkload(tc.workload, many, Knobs{})
			if err != nil {
				t.Fatal(err)
			}
			if err := cct.Equivalent(
				cct.NormalizeAddresses(p1.Tree),
				cct.NormalizeAddresses(p8.Tree)); err != nil {
				t.Fatalf("1-shard vs 8-shard trees differ: %v", err)
			}
			if p1.Stats != p8.Stats {
				t.Fatalf("stats differ: %+v vs %+v", p1.Stats, p8.Stats)
			}
			if p1.Tree.NodeCount() != p8.Tree.NodeCount() {
				t.Fatalf("node counts differ: %d vs %d",
					p1.Tree.NodeCount(), p8.Tree.NodeCount())
			}
		})
	}
}

// TestShardDefaultIsUsable covers the Shards=0 (GOMAXPROCS) default end to
// end: the profile must analyze and merge like any other.
func TestShardDefaultIsUsable(t *testing.T) {
	p, err := ProfileWorkload("NanoGPT", Config{}, Knobs{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Tree.NodeCount() == 0 {
		t.Fatal("empty tree")
	}
	if _, err := MergeProfiles(p, p); err != nil {
		t.Fatal(err)
	}
	if rep := Analyze(p); rep == nil {
		t.Fatal("nil report")
	}
}
