package deepcontext_test

import (
	"fmt"
	"os"
	"strings"

	"deepcontext"
)

// ExampleProfileWorkload profiles one bundled workload end to end on the
// simulated A100 and inspects the collected calling context tree. The
// simulation runs on a virtual clock, so results are deterministic.
func ExampleProfileWorkload() {
	profile, err := deepcontext.ProfileWorkload("DLRM-small",
		deepcontext.Config{Vendor: "nvidia", Framework: "pytorch"},
		deepcontext.Knobs{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("workload: %s on %s/%s\n",
		profile.Meta.Workload, profile.Meta.Vendor, profile.Meta.Framework)
	fmt.Printf("collected contexts: %v\n", profile.Tree.NodeCount() > 50)
	fmt.Printf("kernels launched: %v\n", profile.Stats.ActivitiesHandled > 0)
	// Output:
	// workload: DLRM-small on Nvidia/pytorch
	// collected contexts: true
	// kernels launched: true
}

// ExampleAnalyze runs the automated analyzer (§4.3) over a profile of the
// unoptimized DLRM workload; the paper's §6.1 finding — the serialized
// deterministic aten::index backward — must surface as an issue.
func ExampleAnalyze() {
	profile, _ := deepcontext.ProfileWorkload("DLRM-small", deepcontext.Config{}, deepcontext.Knobs{})
	report := deepcontext.Analyze(profile)
	found := false
	for _, issue := range report.Issues {
		if strings.Contains(issue.Message, "aten::index") {
			found = true
		}
	}
	fmt.Printf("findings: %v, flags aten::index: %v\n", len(report.Issues) > 0, found)
	// Output:
	// findings: true, flags aten::index: true
}

// ExampleWriteFlameGraph renders the interactive HTML flame graph (§4.4)
// and an ASCII preview of the same model.
func ExampleWriteFlameGraph() {
	profile, _ := deepcontext.ProfileWorkload("NanoGPT", deepcontext.Config{}, deepcontext.Knobs{})
	var html strings.Builder
	if err := deepcontext.WriteFlameGraph(&html, profile, deepcontext.FlameOptions{}); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("self-contained page: %v\n", strings.HasPrefix(html.String(), "<!DOCTYPE html>"))

	var txt strings.Builder
	_ = deepcontext.WriteFlameText(&txt, profile, deepcontext.FlameOptions{}, 1)
	fmt.Println(strings.SplitN(txt.String(), "\n", 2)[0])
	// Output:
	// self-contained page: true
	// flame graph (gpu_time_ns, top-down)
}

// ExampleDiffProfiles compares the same workload before and after an
// optimization knob and renders the signed delta.
func ExampleDiffProfiles() {
	before, _ := deepcontext.ProfileWorkload("DLRM-small", deepcontext.Config{}, deepcontext.Knobs{})
	after, _ := deepcontext.ProfileWorkload("DLRM-small", deepcontext.Config{}, deepcontext.Knobs{UseIndexSelect: true})
	delta := deepcontext.DiffProfiles(after, before)

	id, _ := delta.Tree.Schema.Lookup("gpu_time_ns")
	fmt.Printf("optimization helps: %v\n", delta.Tree.Root.InclValue(id) < 0)

	var txt strings.Builder
	_ = deepcontext.WriteFlameText(&txt, delta, deepcontext.FlameOptions{Signed: true}, 1)
	fmt.Println(strings.SplitN(txt.String(), "\n", 2)[0])
	// Output:
	// optimization helps: true
	// diff flame graph (gpu_time_ns, top-down)
}

// ExampleSaveProfileBundle writes several named profiles — per-shard results
// next to their merged aggregate, the batch runner's layout — into one
// database file and reads them back.
func ExampleSaveProfileBundle() {
	torch, _ := deepcontext.ProfileWorkload("ViT", deepcontext.Config{Framework: "pytorch"}, deepcontext.Knobs{})
	jax, _ := deepcontext.ProfileWorkload("ViT", deepcontext.Config{Framework: "jax"}, deepcontext.Knobs{})
	agg, _ := deepcontext.MergeProfiles(torch, jax)

	path := "vit-bundle.dcp"
	defer os.Remove(path)
	err := deepcontext.SaveProfileBundle(path, []deepcontext.BundleEntry{
		{Name: "aggregate", Profile: agg},
		{Name: "vit/pytorch", Profile: torch},
		{Name: "vit/jax", Profile: jax},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	entries, _ := deepcontext.LoadProfileBundle(path)
	for _, e := range entries {
		fmt.Printf("%s: has contexts %v\n", e.Name, e.Profile.Tree.NodeCount() > 0)
	}
	// LoadProfile on a bundle yields its first entry.
	first, _ := deepcontext.LoadProfile(path)
	fmt.Printf("first entry frameworks: %s\n", first.Meta.Framework)
	// Output:
	// aggregate: has contexts true
	// vit/pytorch: has contexts true
	// vit/jax: has contexts true
	// first entry frameworks: pytorch+jax
}

// ExampleNewSession drives a custom profiling session: sharded ingestion is
// pinned to one shard for bit-reproducible output, a bundled workload runs
// under it, and the profile is collected with Stop.
func ExampleNewSession() {
	s, err := deepcontext.NewSession(deepcontext.Config{
		Vendor: "amd",
		Shards: 1, // 0 = GOMAXPROCS; 1 = serial, byte-stable output
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := s.RunWorkload("Resnet", deepcontext.Knobs{}, 10); err != nil {
		fmt.Println("error:", err)
		return
	}
	p := s.Stop()
	fmt.Printf("substrate: %s\n", p.Meta.Substrate)
	fmt.Printf("profiled something: %v\n", p.Stats.ActivitiesHandled > 0)
	// Output:
	// substrate: RocTracer
	// profiled something: true
}

// ExampleMergeProfiles aggregates per-run profiles — here the same workload
// on both GPU vendors — into one profile, as the dcexp matrix runner does
// for the full workload × vendor × framework sweep.
func ExampleMergeProfiles() {
	nvidia, _ := deepcontext.ProfileWorkload("GNN", deepcontext.Config{Vendor: "nvidia"}, deepcontext.Knobs{})
	amd, _ := deepcontext.ProfileWorkload("GNN", deepcontext.Config{Vendor: "amd"}, deepcontext.Knobs{})
	agg, err := deepcontext.MergeProfiles(nvidia, amd)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("aggregate of: %s\n", agg.Meta.Vendor)

	path := "gnn-agg.dcp"
	defer os.Remove(path)
	if err := deepcontext.SaveProfile(path, agg); err != nil {
		fmt.Println("error:", err)
		return
	}
	loaded, _ := deepcontext.LoadProfile(path)
	fmt.Printf("round trip keeps contexts: %v\n", loaded.Tree.NodeCount() == agg.Tree.NodeCount())
	// Output:
	// aggregate of: Nvidia+AMD
	// round trip keeps contexts: true
}
