package deepcontext

// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each benchmark
// runs the corresponding experiment per iteration and reports the headline
// quantities as custom metrics, so `go test -bench=. -benchmem` regenerates
// the full evaluation. Reduced iteration counts keep wall time sane; the
// dcexp tool runs the same experiments at the paper's 100 iterations.

import (
	"io"
	"strconv"
	"strings"
	"testing"

	"deepcontext/internal/profiler"

	"deepcontext/internal/cct"
	"deepcontext/internal/dlmonitor"
	"deepcontext/internal/eval"
	"deepcontext/internal/framework"
	"deepcontext/internal/framework/torchsim"
	"deepcontext/internal/gpu"
	"deepcontext/internal/gpu/cupti"
	"deepcontext/internal/profdb"
	"deepcontext/internal/vtime"
	"deepcontext/internal/workloads"
)

const benchIters = 10

// profilerNativeConfig and profilerNewSession keep the ablation harness
// readable.
func profilerNativeConfig() profiler.Config {
	cfg := profiler.DefaultConfig()
	cfg.Path = dlmonitor.FullContext()
	return cfg
}

func profilerNewSession(mn *dlmonitor.Monitor, env *workloads.Env, tr gpu.Tracer, cfg profiler.Config) *profiler.Session {
	return profiler.NewSession(mn, env.M, tr, cfg)
}

// --- Table 1 & 2 -----------------------------------------------------------

func BenchmarkTable1FeatureMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !strings.Contains(eval.FormatTable1(), "DeepContext") {
			b.Fatal("matrix incomplete")
		}
	}
	b.ReportMetric(float64(len(eval.Table1())), "tools")
}

func BenchmarkTable2Platforms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(eval.Table2()) != 2 {
			b.Fatal("platforms wrong")
		}
	}
}

// --- Figure 6: overhead sweeps ----------------------------------------------

func benchSweep(b *testing.B, fw string, vendor gpu.Vendor, mem bool) {
	b.Helper()
	var m eval.SweepMedians
	for i := 0; i < b.N; i++ {
		rows, err := eval.OverheadSweep(fw, vendor, benchIters)
		if err != nil {
			b.Fatal(err)
		}
		m = eval.Medians(rows)
	}
	if mem {
		b.ReportMetric(m.MemFramework, "fwprof-mem-x")
		b.ReportMetric(m.MemDC, "dc-mem-x")
	} else {
		b.ReportMetric(m.TimeFramework, "fwprof-x")
		b.ReportMetric(m.TimeDC, "dc-x")
		b.ReportMetric(m.TimeDCNative, "dc-native-x")
	}
}

func BenchmarkFig6aTimePyTorchNvidia(b *testing.B) { benchSweep(b, "pytorch", gpu.VendorNvidia, false) }
func BenchmarkFig6aTimePyTorchAMD(b *testing.B)    { benchSweep(b, "pytorch", gpu.VendorAMD, false) }
func BenchmarkFig6bTimeJAXNvidia(b *testing.B)     { benchSweep(b, "jax", gpu.VendorNvidia, false) }
func BenchmarkFig6bTimeJAXAMD(b *testing.B)        { benchSweep(b, "jax", gpu.VendorAMD, false) }
func BenchmarkFig6cMemPyTorchNvidia(b *testing.B)  { benchSweep(b, "pytorch", gpu.VendorNvidia, true) }
func BenchmarkFig6dMemJAXNvidia(b *testing.B)      { benchSweep(b, "jax", gpu.VendorNvidia, true) }

// --- Table 3: case studies ---------------------------------------------------

func benchCase(b *testing.B, fn func(int) (eval.CaseResult, error)) {
	b.Helper()
	var c eval.CaseResult
	for i := 0; i < b.N; i++ {
		var err error
		c, err = fn(benchIters * 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	if c.Speedup > 0 {
		b.ReportMetric(c.Speedup, "speedup-x")
	}
}

func BenchmarkTable3DLRMIndex(b *testing.B)         { benchCase(b, eval.CaseDLRMIndex) }
func BenchmarkTable3GNNIndex(b *testing.B)          { benchCase(b, eval.CaseGNNIndex) }
func BenchmarkTable3UNetLayout(b *testing.B)        { benchCase(b, eval.CaseUNetLayout) }
func BenchmarkTable3UNetLoader(b *testing.B)        { benchCase(b, eval.CaseUNetLoader) }
func BenchmarkTable3TransformerFusion(b *testing.B) { benchCase(b, eval.CaseTransformerFusion) }
func BenchmarkTable3LlamaStalls(b *testing.B)       { benchCase(b, eval.CaseLlamaStalls) }

func BenchmarkTable3AMDvsNV(b *testing.B) {
	var nv, amd eval.CaseResult
	for i := 0; i < b.N; i++ {
		var err error
		nv, amd, err = eval.CaseAMDvsNV(benchIters)
		if err != nil {
			b.Fatal(err)
		}
	}
	if !strings.Contains(nv.Finding, "conv") || !strings.Contains(amd.Finding, "norm") {
		b.Fatalf("hotspot flip missing: NV=%q AMD=%q", nv.Finding, amd.Finding)
	}
}

// --- §6.6 JAX vs PyTorch ------------------------------------------------------

func BenchmarkJAXvsPyTorch(b *testing.B) {
	var rows []eval.JAXComparison
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.JAXvsPyTorch(100)
		if err != nil {
			b.Fatal(err)
		}
	}
	var minSp = 1e9
	for _, r := range rows {
		if r.Speedup < minSp {
			minSp = r.Speedup
		}
	}
	b.ReportMetric(minSp, "min-jax-speedup-x")
}

// --- Figures 1/3/4: call-path machinery (microbenchmarks) --------------------

func BenchmarkFig3CallPathIntegration(b *testing.B) {
	m := framework.NewMachine(gpu.A100())
	e := torchsim.New(m)
	tr, err := cupti.New(m.GPU)
	if err != nil {
		b.Fatal(err)
	}
	mn, err := dlmonitor.Init(dlmonitor.Config{Machine: m, Frameworks: []framework.Hooks{e}, Tracer: tr})
	if err != nil {
		b.Fatal(err)
	}
	th := m.NewThread("bench")
	th.PushPy("train.py", 1, "main")
	op := torchsim.Op{
		Name:           "aten::conv2d",
		CPUCost:        vtime.Microsecond,
		InternalFrames: 8,
		Kernels:        []gpu.KernelSpec{{Name: "k", Grid: gpu.D3(108), Block: gpu.D3(256), FLOPs: 1e6}},
	}
	paths := 0
	mn.RegisterGPUCallback(func(ev *gpu.APIEvent) {
		if ev.Phase == 0 && ev.Site == gpu.SiteLaunchKernel {
			p := mn.CallPath(th, dlmonitor.FullContext())
			if len(p.Frames) == 0 {
				b.Fatal("empty path")
			}
			paths++
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run(th, op)
	}
	if paths != b.N {
		b.Fatalf("paths = %d", paths)
	}
}

func BenchmarkFig5CCTInsertAndPropagate(b *testing.B) {
	tree := cct.New()
	id := tree.MetricID(cct.MetricGPUTime)
	path := []cct.Frame{
		cct.PythonFrame("train.py", 1, "main"),
		cct.PythonFrame("model.py", 42, "forward"),
		cct.OperatorFrame("aten::conv2d"),
		cct.NativeFrame("at::native::conv2d", "libtorch.so", 0x1000, "c.cpp", 1),
		{Kind: cct.KindGPUAPI, Name: "cudaLaunchKernel", Lib: "libcudart.so", PC: 0x2000},
		{Kind: cct.KindKernel, Name: "implicit_gemm", Lib: "[gpu]", PC: 0x3000},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		leaf := tree.InsertPath(path)
		tree.AddMetric(leaf, id, float64(i))
	}
}

func BenchmarkFig4JAXCompileWithFusion(b *testing.B) {
	env := workloads.NewEnv(gpu.A100())
	w := workloads.GNN()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workloads.RunJAX(env, w, workloads.Knobs{}, 1)
	}
}

func BenchmarkBottomUpView(b *testing.B) {
	p, err := ProfileWorkload("GNN", Config{}, Knobs{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.Tree.BottomUp().NodeCount() == 0 {
			b.Fatal("empty bottom-up tree")
		}
	}
}

func BenchmarkProfileSaveLoad(b *testing.B) {
	p, err := ProfileWorkload("ViT", Config{}, Knobs{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr, pw := io.Pipe()
		done := make(chan error, 1)
		go func() {
			done <- profdb.Save(pw, p)
			pw.Close()
		}()
		if _, err := profdb.Load(pr); err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzerFullReport(b *testing.B) {
	p, err := ProfileWorkload("UNet", Config{CPUSampling: true}, Knobs{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(p)
	}
}

// --- Ingestion hot path (docs/PERFORMANCE.md) --------------------------------
//
// The ingestion suite isolates the CCT construction hot path — the work done
// on every intercepted event — and measures three representative full
// workloads under both frameworks. Results are recorded in BENCH_*.json.

// ingestPaths builds a deterministic mix of call paths shaped like real
// profiler input: a handful of hot paths (cache-friendly unification) plus a
// long tail of distinct contexts (tree growth).
func ingestPaths() [][]cct.Frame {
	var paths [][]cct.Frame
	for op := 0; op < 16; op++ {
		for k := 0; k < 4; k++ {
			paths = append(paths, []cct.Frame{
				cct.PythonFrame("train.py", 10, "main"),
				cct.PythonFrame("model.py", 100+op, "forward"),
				cct.OperatorFrame("aten::op" + strconv.Itoa(op)),
				{Kind: cct.KindGPUAPI, Name: "cudaLaunchKernel", Lib: "libcudart.so", PC: 0x2000},
				{Kind: cct.KindKernel, Name: "kernel" + strconv.Itoa(k), Lib: "[gpu]", PC: uint64(0x3000 + op*64 + k)},
			})
		}
	}
	return paths
}

// BenchmarkIngestInsertHot measures frame unification on a warm tree: every
// path already exists, so an iteration is pure key lookup plus metric
// propagation — the steady state of a long profiling run.
func BenchmarkIngestInsertHot(b *testing.B) {
	tree := cct.New()
	id := tree.MetricID(cct.MetricGPUTime)
	paths := ingestPaths()
	for _, p := range paths {
		tree.InsertPath(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := paths[i%len(paths)]
		leaf := tree.InsertPath(p)
		tree.AddMetric(leaf, id, float64(i))
	}
}

// BenchmarkIngestInsertGrow measures tree growth: every iteration builds a
// fresh tree from the full path mix, exercising node allocation.
func BenchmarkIngestInsertGrow(b *testing.B) {
	paths := ingestPaths()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := cct.New()
		for _, p := range paths {
			tree.InsertPath(p)
		}
	}
}

// benchIngestWorkload measures full profiled-workload wall time (real time,
// not virtual time) for one workload × framework pair.
func benchIngestWorkload(b *testing.B, wl, fw string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := ProfileWorkload(wl, Config{Framework: fw}, Knobs{})
		if err != nil {
			b.Fatal(err)
		}
		if p.Tree.NodeCount() == 0 {
			b.Fatal("empty tree")
		}
	}
}

// benchIngestShards pins the shard count to isolate the sharded fold path
// (Shards=1 is the serial byte-identical path; 8 exercises mirror-cache
// attribution and the Stop-time fold).
func benchIngestShards(b *testing.B, shards int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := ProfileWorkload("UNet", Config{Shards: shards}, Knobs{})
		if err != nil {
			b.Fatal(err)
		}
		if p.Tree.NodeCount() == 0 {
			b.Fatal("empty tree")
		}
	}
}

func BenchmarkIngestShards1(b *testing.B) { benchIngestShards(b, 1) }
func BenchmarkIngestShards8(b *testing.B) { benchIngestShards(b, 8) }

func BenchmarkIngestWorkloadViTPyTorch(b *testing.B)  { benchIngestWorkload(b, "ViT", "pytorch") }
func BenchmarkIngestWorkloadViTJAX(b *testing.B)      { benchIngestWorkload(b, "ViT", "jax") }
func BenchmarkIngestWorkloadGNNPyTorch(b *testing.B)  { benchIngestWorkload(b, "GNN", "pytorch") }
func BenchmarkIngestWorkloadGNNJAX(b *testing.B)      { benchIngestWorkload(b, "GNN", "jax") }
func BenchmarkIngestWorkloadUNetPyTorch(b *testing.B) { benchIngestWorkload(b, "UNet", "pytorch") }
func BenchmarkIngestWorkloadUNetJAX(b *testing.B)     { benchIngestWorkload(b, "UNet", "jax") }

// --- Ablations (DESIGN.md §5): design choices the paper calls out ------------

// ablationRun measures Llama3 end-to-end under native call paths with the
// call-path cache enabled or disabled — quantifying §4.1's caching
// optimization ("many deep learning operators trigger multiple GPU kernels
// such that they share the same Python and operator call paths").
func ablationRun(b *testing.B, disableCache bool) vtime.Duration {
	b.Helper()
	env := workloads.NewEnv(gpu.A100())
	tr, err := cupti.New(env.M.GPU)
	if err != nil {
		b.Fatal(err)
	}
	mn, err := dlmonitor.Init(dlmonitor.Config{
		Machine:              env.M,
		Frameworks:           []framework.Hooks{env.Torch, env.Jax},
		Tracer:               tr,
		DisableCallPathCache: disableCache,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := profilerNativeConfig()
	sess := profilerNewSession(mn, env, tr, cfg)
	if err := sess.Start(); err != nil {
		b.Fatal(err)
	}
	workloads.RunPyTorch(env, workloads.Llama3(), workloads.Knobs{}, 5)
	sess.Stop()
	return env.M.EndToEnd()
}

func BenchmarkAblationCallPathCache(b *testing.B) {
	var with, without vtime.Duration
	for i := 0; i < b.N; i++ {
		with = ablationRun(b, false)
		without = ablationRun(b, true)
	}
	if without <= with {
		b.Fatalf("disabling the cache should cost time: %v vs %v", without, with)
	}
	b.ReportMetric(float64(without)/float64(with), "nocache-slowdown-x")
}

// BenchmarkAblationNativeUnwinding quantifies the cost of native call paths
// (the light-vs-native gap of Figure 6).
func BenchmarkAblationNativeUnwinding(b *testing.B) {
	var light, native float64
	for i := 0; i < b.N; i++ {
		for _, prof := range []eval.ProfKind{eval.ProfDC, eval.ProfDCNative} {
			r, err := eval.Run(workloads.Llama3(), "pytorch", gpu.VendorNvidia, prof, eval.Options{Iters: 5})
			if err != nil {
				b.Fatal(err)
			}
			if prof == eval.ProfDC {
				light = float64(r.E2E)
			} else {
				native = float64(r.E2E)
			}
		}
	}
	if native <= light {
		b.Fatal("native mode should cost more than light mode")
	}
	b.ReportMetric(native/light, "native-over-light-x")
}
