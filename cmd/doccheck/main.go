// Command doccheck verifies that intra-repository markdown links resolve:
// every [text](target) in every .md file under the given root (default ".")
// whose target is a relative path must point at an existing file or
// directory. External links (http/https/mailto) and pure #anchors are
// ignored; fenced code blocks are stripped so shell snippets cannot
// false-positive. CI runs it so the documentation suite cannot rot
// silently when files move.
//
//	go run ./cmd/doccheck        # check the repository root
//	go run ./cmd/doccheck docs   # check one subtree
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links and images. The target group stops
// at whitespace or ')' so optional titles ([t](path "title")) parse too.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

var fenceRe = regexp.MustCompile("(?ms)^```.*?^```[ \t]*$")

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	broken, err := check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	for _, b := range broken {
		fmt.Println(b)
	}
	if len(broken) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d broken link(s)\n", len(broken))
		os.Exit(1)
	}
}

// check walks root for markdown files and returns one line per broken
// link: "file.md: broken link -> target".
func check(root string) ([]string, error) {
	var broken []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip VCS internals and vendored trees.
			switch d.Name() {
			case ".git", "node_modules", "vendor":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.EqualFold(filepath.Ext(path), ".md") {
			return nil
		}
		// SNIPPETS.md quotes exemplar code and README excerpts from
		// external repositories verbatim; their links point into those
		// repositories, not this one.
		if d.Name() == "SNIPPETS.md" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, target := range linksIn(string(data)) {
			if resolves(root, path, target) {
				continue
			}
			broken = append(broken, fmt.Sprintf("%s: broken link -> %s", path, target))
		}
		return nil
	})
	return broken, err
}

// linksIn extracts checkable relative targets from markdown source.
func linksIn(src string) []string {
	src = fenceRe.ReplaceAllString(src, "")
	var out []string
	for _, m := range linkRe.FindAllStringSubmatch(src, -1) {
		target := m[1]
		if target == "" ||
			strings.Contains(target, "://") ||
			strings.HasPrefix(target, "mailto:") ||
			strings.HasPrefix(target, "#") {
			continue
		}
		// Drop a trailing anchor: FILE.md#section checks FILE.md.
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
		}
		if target != "" {
			out = append(out, target)
		}
	}
	return out
}

// resolves reports whether target exists relative to the linking file (or,
// for root-absolute /paths, relative to the checked root).
func resolves(root, from, target string) bool {
	var p string
	if strings.HasPrefix(target, "/") {
		p = filepath.Join(root, target)
	} else {
		p = filepath.Join(filepath.Dir(from), target)
	}
	_, err := os.Stat(p)
	return err == nil
}
