package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, root, name, content string) {
	t.Helper()
	path := filepath.Join(root, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFindsBrokenAndIgnoresExternal(t *testing.T) {
	root := t.TempDir()
	write(t, root, "docs/REAL.md", "# real\n")
	write(t, root, "README.md", strings.Join([]string{
		"[good](docs/REAL.md)",
		"[good anchor](docs/REAL.md#section)",
		"[good dir](docs)",
		"[external](https://example.com/x.md)",
		"[mail](mailto:a@b.c)",
		"[anchor only](#local)",
		"![image](missing.png)",
		"[broken](docs/GONE.md)",
		"",
		"```sh",
		"echo [not a link](nowhere.md)",
		"```",
	}, "\n"))
	write(t, root, "docs/NESTED.md", "[up](../README.md)\n[bad](./nope/)\n")

	broken, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, b := range broken {
		// Strip the tempdir for stable comparison.
		got = append(got, strings.TrimPrefix(b, root+string(filepath.Separator)))
	}
	want := map[string]bool{
		"README.md: broken link -> missing.png":  true,
		"README.md: broken link -> docs/GONE.md": true,
		"docs/NESTED.md: broken link -> ./nope/": true,
	}
	if len(got) != len(want) {
		t.Fatalf("broken = %v, want %d entries", got, len(want))
	}
	for _, g := range got {
		if !want[g] {
			t.Fatalf("unexpected finding %q (all: %v)", g, got)
		}
	}
}

// The repository's own documentation must stay link-clean — this is the
// same invariant the CI step enforces, kept as a test so it runs locally.
func TestRepositoryDocsResolve(t *testing.T) {
	broken, err := check("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) > 0 {
		t.Fatalf("broken intra-repo markdown links:\n%s", strings.Join(broken, "\n"))
	}
}
