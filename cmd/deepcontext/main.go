// Command deepcontext profiles a bundled workload on the simulated machine
// and writes a profile database, an analysis report and (optionally) a flame
// graph.
//
// Example:
//
//	deepcontext -workload UNet -vendor nvidia -native \
//	    -o unet.dcp -flame unet.html
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"deepcontext"
)

func main() {
	var (
		workload = flag.String("workload", "", "workload to profile ("+strings.Join(deepcontext.WorkloadNames(), ", ")+")")
		fw       = flag.String("framework", "pytorch", "pytorch or jax")
		vendor   = flag.String("vendor", "nvidia", "nvidia or amd")
		native   = flag.Bool("native", false, "collect native C/C++ call paths")
		cpu      = flag.Bool("cpu", false, "enable CPU timer sampling")
		pc       = flag.Bool("pc", false, "enable GPU instruction (PC) sampling")
		iters    = flag.Int("iters", 0, "iterations (0 = workload default, 100)")
		knobs    = flag.String("knobs", "", "comma-separated optimization knobs: "+knownKnobs+" (loader_workers takes =N)")
		out      = flag.String("o", "", "write profile database to this path")
		flame    = flag.String("flame", "", "write an HTML flame graph to this path")
		analyze  = flag.Bool("analyze", true, "run the automated analyzer")
		text     = flag.Bool("text", false, "print an ASCII flame tree")
		shards   = flag.Int("shards", 0, "CCT ingestion shards (0 = GOMAXPROCS, 1 = serial single-tree path)")
	)
	flag.Parse()
	if *workload == "" {
		flag.Usage()
		os.Exit(2)
	}
	k, err := parseKnobs(*knobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "deepcontext:", err)
		os.Exit(2)
	}
	cfg := deepcontext.Config{
		Vendor:          *vendor,
		Framework:       *fw,
		NativeCallPaths: *native,
		CPUSampling:     *cpu,
		PCSampling:      *pc,
		Shards:          *shards,
	}
	if err := run(*workload, cfg, *iters, k, *out, *flame, *analyze, *text); err != nil {
		fmt.Fprintln(os.Stderr, "deepcontext:", err)
		os.Exit(1)
	}
}

const knownKnobs = "index_select, channels_last, fuse_loss, fast_casts, loader_workers=N, norm_block_threads=N"

// parseKnobs maps the case-study toggle names of Table 3 onto Knobs.
func parseKnobs(s string) (deepcontext.Knobs, error) {
	var k deepcontext.Knobs
	if s == "" {
		return k, nil
	}
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		name, val, hasVal := strings.Cut(tok, "=")
		switch name {
		case "index_select":
			k.UseIndexSelect = true
		case "channels_last":
			k.ChannelsLast = true
		case "fuse_loss":
			k.FuseLoss = true
		case "fast_casts":
			k.FastCasts = true
		case "loader_workers", "norm_block_threads":
			if !hasVal {
				return k, fmt.Errorf("knob %s needs =N", name)
			}
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return k, fmt.Errorf("knob %s: bad value %q", name, val)
			}
			if name == "loader_workers" {
				k.LoaderWorkers = n
			} else {
				k.NormBlockThreads = n
			}
		default:
			return k, fmt.Errorf("unknown knob %q (known: %s)", name, knownKnobs)
		}
	}
	return k, nil
}

func run(workload string, cfg deepcontext.Config, iters int, knobs deepcontext.Knobs, out, flame string, analyze, text bool) error {
	s, err := deepcontext.NewSession(cfg)
	if err != nil {
		return err
	}
	if err := s.RunWorkload(workload, knobs, iters); err != nil {
		return err
	}
	p := s.Stop()
	p.Meta.Workload = workload
	fmt.Printf("profiled %s on %s/%s: %d CCT nodes, e2e %v, %d kernels\n",
		workload, p.Meta.Vendor, p.Meta.Framework, p.Tree.NodeCount(),
		s.EndToEnd(), int64(p.Stats.ActivitiesHandled))

	var rep *deepcontext.Report
	if analyze {
		rep = deepcontext.Analyze(p)
		fmt.Printf("\nanalysis: %d findings\n", len(rep.Issues))
		for i, is := range rep.Issues {
			if i >= 12 {
				fmt.Printf("  ... and %d more\n", len(rep.Issues)-i)
				break
			}
			fmt.Println(" ", is)
		}
	}
	if text {
		fmt.Println()
		if err := deepcontext.WriteFlameText(os.Stdout, p, deepcontext.FlameOptions{Annotate: rep}, 8); err != nil {
			return err
		}
	}
	if out != "" {
		if err := deepcontext.SaveProfile(out, p); err != nil {
			return err
		}
		fmt.Println("\nwrote profile:", out)
	}
	if flame != "" {
		f, err := os.Create(flame)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := deepcontext.WriteFlameGraph(f, p, deepcontext.FlameOptions{Annotate: rep}); err != nil {
			return err
		}
		fmt.Println("wrote flame graph:", flame)
	}
	return nil
}
