// Command deepcontext profiles a bundled workload on the simulated machine
// and writes a profile database, an analysis report and (optionally) a flame
// graph.
//
// Example:
//
//	deepcontext -workload UNet -vendor nvidia -native \
//	    -o unet.dcp -flame unet.html
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"deepcontext"
)

func main() {
	var (
		workload = flag.String("workload", "", "workload to profile ("+strings.Join(deepcontext.WorkloadNames(), ", ")+")")
		fw       = flag.String("framework", "pytorch", "pytorch or jax")
		vendor   = flag.String("vendor", "nvidia", "nvidia or amd")
		native   = flag.Bool("native", false, "collect native C/C++ call paths")
		cpu      = flag.Bool("cpu", false, "enable CPU timer sampling")
		pc       = flag.Bool("pc", false, "enable GPU instruction (PC) sampling")
		iters    = flag.Int("iters", 0, "iterations (0 = workload default, 100)")
		out      = flag.String("o", "", "write profile database to this path")
		flame    = flag.String("flame", "", "write an HTML flame graph to this path")
		analyze  = flag.Bool("analyze", true, "run the automated analyzer")
		text     = flag.Bool("text", false, "print an ASCII flame tree")
	)
	flag.Parse()
	if *workload == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*workload, *fw, *vendor, *native, *cpu, *pc, *iters, *out, *flame, *analyze, *text); err != nil {
		fmt.Fprintln(os.Stderr, "deepcontext:", err)
		os.Exit(1)
	}
}

func run(workload, fw, vendor string, native, cpu, pc bool, iters int, out, flame string, analyze, text bool) error {
	cfg := deepcontext.Config{
		Vendor:          vendor,
		Framework:       fw,
		NativeCallPaths: native,
		CPUSampling:     cpu,
		PCSampling:      pc,
	}
	s, err := deepcontext.NewSession(cfg)
	if err != nil {
		return err
	}
	if err := s.RunWorkload(workload, deepcontext.Knobs{}, iters); err != nil {
		return err
	}
	p := s.Stop()
	p.Meta.Workload = workload
	fmt.Printf("profiled %s on %s/%s: %d CCT nodes, e2e %v, %d kernels\n",
		workload, p.Meta.Vendor, p.Meta.Framework, p.Tree.NodeCount(),
		s.EndToEnd(), int64(p.Stats.ActivitiesHandled))

	var rep *deepcontext.Report
	if analyze {
		rep = deepcontext.Analyze(p)
		fmt.Printf("\nanalysis: %d findings\n", len(rep.Issues))
		for i, is := range rep.Issues {
			if i >= 12 {
				fmt.Printf("  ... and %d more\n", len(rep.Issues)-i)
				break
			}
			fmt.Println(" ", is)
		}
	}
	if text {
		fmt.Println()
		if err := deepcontext.WriteFlameText(os.Stdout, p, deepcontext.FlameOptions{Annotate: rep}, 8); err != nil {
			return err
		}
	}
	if out != "" {
		if err := deepcontext.SaveProfile(out, p); err != nil {
			return err
		}
		fmt.Println("\nwrote profile:", out)
	}
	if flame != "" {
		f, err := os.Create(flame)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := deepcontext.WriteFlameGraph(f, p, deepcontext.FlameOptions{Annotate: rep}); err != nil {
			return err
		}
		fmt.Println("wrote flame graph:", flame)
	}
	return nil
}
