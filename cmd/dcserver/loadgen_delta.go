package main

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deepcontext"
	"deepcontext/internal/cct"
	"deepcontext/internal/profdb"
	"deepcontext/internal/profiler"
	"deepcontext/internal/profstore"
)

// runLoadgenDelta benchmarks delta streaming against full uploads on the
// same workload shape: each (client, workload) cell holds a cumulative
// profile — the state a long-lived profiling agent accumulates — and per
// round a quarter of its kernel contexts receive new samples. Phase one
// POSTs the whole profile through /ingest every round (the v2 path);
// phase two replays the identical mutation schedule through /stream
// sessions, so after the first full frame every round ships only the
// changed subtrees, batched per client. Both phases land in disjoint
// window ranges of one store, and the run finishes by asserting the two
// ranges answer /hotspots identically — the delta path must be an
// encoding change, never a data change.
//
// The RESULT lines carry ingests/s and bytes/ingest for both phases plus
// the delta:full byte ratio; CI's delta-smoke step gates on them.
func runLoadgenDelta(cfg profstore.Config, clients int, loads string, iters, rounds int, maxBody int64) error {
	var workloads []string
	known := make(map[string]bool)
	for _, w := range deepcontext.WorkloadNames() {
		known[w] = true
	}
	for _, w := range strings.Split(loads, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		if !known[w] {
			return fmt.Errorf("loadgen: unknown workload %q (known: %s)",
				w, strings.Join(deepcontext.WorkloadNames(), ", "))
		}
		workloads = append(workloads, w)
	}
	if len(workloads) == 0 {
		return fmt.Errorf("loadgen: no workloads")
	}
	if clients <= 0 {
		clients = 1
	}
	if rounds < 2 {
		rounds = 2
	}

	base := time.Now()
	var offset atomic.Int64
	cfg.Now = func() time.Time { return base.Add(time.Duration(offset.Load())) }
	store := profstore.New(cfg)
	defer store.Close()
	window := store.Config().Window

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := newHTTPServer("", newHandler(store, maxBody, 0, false))
	go srv.Serve(ln)
	defer srv.Close()
	baseURL := "http://" + ln.Addr().String()
	cells := clients * len(workloads)
	fmt.Printf("loadgen-delta: server on %s — %d clients x %d workloads x %d rounds (iters %d)\n",
		baseURL, clients, len(workloads), rounds, iters)

	// Profile every cell once; both phases replay the same evolution from
	// fresh copies of these bytes, so they ingest identical sequences.
	baseBytes := make([][]byte, cells)
	var genWg sync.WaitGroup
	genErrs := make(chan error, cells)
	for c := 0; c < clients; c++ {
		for i, w := range workloads {
			genWg.Add(1)
			go func(c, i int, w string) {
				defer genWg.Done()
				body, err := encodeOne(w, c, i, iters, kernelScale{})
				if err != nil {
					genErrs <- err
					return
				}
				baseBytes[c*len(workloads)+i] = body
			}(c, i, w)
		}
	}
	genWg.Wait()
	close(genErrs)
	for err := range genErrs {
		return fmt.Errorf("loadgen: profile generation: %w", err)
	}

	// Each cell's kernel contexts are collected once at load; the per-round
	// mutation then touches its rotating quarter directly instead of
	// re-walking the tree — tree walks inside the timed phases would be
	// harness cost, not ingest-path cost.
	loadCells := func(c int) ([]*profiler.Profile, [][]*cct.Node, error) {
		ps := make([]*profiler.Profile, len(workloads))
		ks := make([][]*cct.Node, len(workloads))
		for i := range workloads {
			p, err := profdb.Load(bytes.NewReader(baseBytes[c*len(workloads)+i]))
			if err != nil {
				return nil, nil, err
			}
			ps[i] = p
			ks[i] = kernelNodes(p.Tree)
		}
		return ps, ks, nil
	}

	// Per-client state persists across rounds; the round loop is the outer
	// loop so every round lands in its own window of the virtual clock.
	p1ps := make([][]*profiler.Profile, clients)
	p1ks := make([][][]*cct.Node, clients)
	for c := 0; c < clients; c++ {
		if p1ps[c], p1ks[c], err = loadCells(c); err != nil {
			return fmt.Errorf("loadgen-delta: %w", err)
		}
	}

	// Phase 1: full uploads — the cumulative profile re-encoded and
	// re-POSTed whole, every round.
	p1Start := cfg.Now().Truncate(window)
	var fullOK, fullBytes atomic.Int64
	var failed atomic.Int64
	t0 := time.Now()
	for r := 0; r < rounds; r++ {
		var rwg sync.WaitGroup
		for c := 0; c < clients; c++ {
			rwg.Add(1)
			go func(c int) {
				defer rwg.Done()
				httpc := &http.Client{Timeout: time.Minute}
				for i, p := range p1ps[c] {
					deltaMutate(p.Tree, p1ks[c][i], r)
					var buf bytes.Buffer
					if err := profdb.Save(&buf, p); err != nil {
						failed.Add(1)
						continue
					}
					if err := postBody(httpc, baseURL, buf.Bytes()); err != nil {
						failed.Add(1)
						fmt.Printf("loadgen-delta: client %d full: %v\n", c, err)
						continue
					}
					fullOK.Add(1)
					fullBytes.Add(int64(buf.Len()))
				}
			}(c)
		}
		rwg.Wait()
		offset.Add(int64(window))
	}
	fullElapsed := time.Since(t0)

	// Phase 2: delta streams replaying the identical schedule from fresh
	// copies.
	p2ps := make([][]*profiler.Profile, clients)
	p2ks := make([][][]*cct.Node, clients)
	scs := make([]*streamClient, clients)
	for c := 0; c < clients; c++ {
		if p2ps[c], p2ks[c], err = loadCells(c); err != nil {
			return fmt.Errorf("loadgen-delta: %w", err)
		}
		scs[c] = newStreamClient(&http.Client{Timeout: time.Minute}, baseURL, fmt.Sprintf("loadgen-%d", c))
	}
	p2Start := cfg.Now().Truncate(window)
	var deltaOK atomic.Int64
	t1 := time.Now()
	for r := 0; r < rounds; r++ {
		var rwg sync.WaitGroup
		for c := 0; c < clients; c++ {
			rwg.Add(1)
			go func(c int) {
				defer rwg.Done()
				for i, p := range p2ps[c] {
					deltaMutate(p.Tree, p2ks[c][i], r)
				}
				pending := p2ps[c]
				for attempt := 0; len(pending) > 0 && attempt < 3; attempt++ {
					res, err := scs[c].send(pending)
					if err != nil {
						failed.Add(int64(len(pending)))
						fmt.Printf("loadgen-delta: client %d stream: %v\n", c, err)
						return
					}
					deltaOK.Add(int64(res.Acked))
					if len(res.Nacked) == 0 && !res.Reset {
						return
					}
					var retry []*profiler.Profile
					for _, p := range pending {
						if res.Reset || res.Nacked[profstore.LabelsOf(p.Meta).Key()] {
							retry = append(retry, p)
						}
					}
					pending = retry
				}
				failed.Add(int64(len(pending)))
			}(c)
		}
		rwg.Wait()
		offset.Add(int64(window))
	}
	deltaElapsed := time.Since(t1)
	var deltaBytes, resyncs, nackTotal int64
	for _, sc := range scs {
		sc.closeSession()
		deltaBytes += sc.wireBytes
		resyncs += sc.resyncs
		nackTotal += sc.nacks
	}

	if failed.Load() > 0 {
		return fmt.Errorf("loadgen-delta: %d failed ingests", failed.Load())
	}
	want := int64(cells * rounds)
	if fullOK.Load() != want || deltaOK.Load() != want {
		return fmt.Errorf("loadgen-delta: ingest counts diverged: full=%d delta=%d want=%d",
			fullOK.Load(), deltaOK.Load(), want)
	}

	// The proof obligation: both phases must answer /hotspots identically
	// over their own window ranges.
	httpc := &http.Client{Timeout: time.Minute}
	rows1, err := hotspotRows(httpc, baseURL, p1Start, p2Start)
	if err != nil {
		return fmt.Errorf("loadgen-delta: phase-1 hotspots: %w", err)
	}
	rows2, err := hotspotRows(httpc, baseURL, p2Start, p2Start.Add(time.Duration(rounds)*window))
	if err != nil {
		return fmt.Errorf("loadgen-delta: phase-2 hotspots: %w", err)
	}
	equal := reflect.DeepEqual(rows1, rows2)

	fullPer := fullBytes.Load() / want
	deltaPer := deltaBytes / want
	fullRate := float64(fullOK.Load()) / fullElapsed.Seconds()
	deltaRate := float64(deltaOK.Load()) / deltaElapsed.Seconds()
	fmt.Printf("loadgen-delta: RESULT full ingests=%d ingests_per_s=%.1f bytes_per_ingest=%d\n",
		fullOK.Load(), fullRate, fullPer)
	fmt.Printf("loadgen-delta: RESULT delta ingests=%d ingests_per_s=%.1f bytes_per_ingest=%d resyncs=%d nacks=%d rows_equal=%v\n",
		deltaOK.Load(), deltaRate, deltaPer, resyncs, nackTotal, equal)
	fmt.Printf("loadgen-delta: RESULT ratio bytes=%.4f speedup=%.2f\n",
		float64(deltaPer)/float64(fullPer), deltaRate/fullRate)
	if !equal {
		return fmt.Errorf("loadgen-delta: delta and full phases answered /hotspots differently")
	}
	return nil
}

// kernelNodes collects a tree's kernel contexts once, so the per-round
// mutation is proportional to the touched set rather than the tree.
func kernelNodes(t *cct.Tree) []*cct.Node {
	var kernels []*cct.Node
	t.Visit(func(n *cct.Node) {
		if n.Kind == cct.KindKernel {
			kernels = append(kernels, n)
		}
	})
	return kernels
}

// deltaMutate advances one cumulative profile by a round: every fourth
// kernel context (rotating with the round) receives new samples, the
// steady-state shape where most of the tree is unchanged between
// uploads.
func deltaMutate(t *cct.Tree, kernels []*cct.Node, r int) {
	id, ok := t.Schema.Lookup(defaultMetric)
	if !ok {
		return
	}
	for i, n := range kernels {
		if i%4 == r%4 {
			t.AddMetric(n, id, float64(1000*(r+1)+i))
		}
	}
}

// hotspotRows fetches /hotspots rows for one window range.
func hotspotRows(httpc *http.Client, baseURL string, from, to time.Time) (any, error) {
	q := url.Values{}
	q.Set("from", from.Format(time.RFC3339Nano))
	q.Set("to", to.Format(time.RFC3339Nano))
	q.Set("top", "0")
	var out struct {
		Rows []struct {
			Label string  `json:"label"`
			Excl  float64 `json:"excl"`
			Incl  float64 `json:"incl"`
			Count int64   `json:"count"`
			Frac  float64 `json:"frac"`
		} `json:"rows"`
	}
	if err := getJSON(httpc, baseURL+"/hotspots?"+q.Encode(), &out); err != nil {
		return nil, err
	}
	return out.Rows, nil
}
