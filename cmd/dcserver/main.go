// Command dcserver is the continuous-profiling service: an HTTP frontend
// over the internal/profstore rolling aggregator. Clients POST saved
// profile databases (.dcp, single profiles or v2 bundles) to /ingest; the
// server merges them into time-bucketed windows keyed by
// workload/vendor/framework and serves hotspot, diff, flame-graph and
// analyzer queries over any window range.
//
// With -data-dir the store is durable: ingested profiles are appended to a
// write-ahead log before they are acknowledged, periodic (and
// shutdown-time) snapshots compact the log, and a restart with the same
// directory recovers every retained window byte-equal — see
// docs/OPERATIONS.md for the on-disk layout and recovery semantics.
//
// Endpoints:
//
//	POST /ingest                         .dcp body (single or bundle)
//	POST /stream?session=<id>            profdb v3 delta-ingest session
//	                                     (gob StreamBatch body; -no-delta disables)
//	GET  /hotspots?metric=&top=&from=&to=&workload=&vendor=&framework=
//	GET  /diff?before=&after=&metric=&top=     window-vs-window signed diff
//	GET  /flame?format=html|folded&from=&to=   (or before=/after= for signed)
//	GET  /analyze?from=&to=                    automated analyzer, JSON
//	GET  /regressions?dir=up|down|both&since=  confirmed trend change points
//	GET  /topk?metric=&k=                      fleet-wide frame ranking
//	GET  /search?frame=&metric=&limit=         series containing a frame
//	GET  /windows                              retained buckets
//	GET  /stats                                occupancy, limits, persistence
//	GET  /healthz
//	GET  /metrics                              Prometheus text exposition
//	GET  /debug/events?kind=&since=&limit=     internal lifecycle journal
//	GET  /cluster/status                       routing table + peer health (cluster mode)
//	POST /cluster/{partials,ingest,export,import,table,drop,join}
//	                                           node-to-node data movement (cluster mode;
//	                                           trusted surface — see docs/OPERATIONS.md §11)
//
// Every request, store mutation and persistence step is observed in an
// in-process telemetry registry served on /metrics (request latency by
// endpoint, ingest/WAL/fsync/compaction/snapshot timings, cache and
// index occupancy); structured lifecycle events (window closes,
// compactions, snapshots, recoveries, slow requests) land in a bounded
// in-memory journal served on /debug/events. Telemetry is on by default
// and costs no allocations on the ingest path; -no-telemetry disables
// the latency timings and journal (counters stay on — they back /stats).
// -pprof-addr serves net/http/pprof on a second listener, kept off the
// public API surface. See docs/OPERATIONS.md for the metric inventory
// and alerting runbook.
//
// The store tracks every series' per-frame metric shares across closed
// windows and flags sustained drifts (-trend-band, -trend-k; -no-trend
// opts out). /regressions serves the confirmed change points with
// severity grades and signed-flame drill-down links; -webhook-url POSTs
// newly confirmed findings to an external receiver — see
// docs/OPERATIONS.md for the runbook.
//
// Examples:
//
//	dcserver -addr :7070 -window 1m -retention 60 -data-dir /var/lib/dcserver
//	deepcontext -workload UNet -o unet.dcp && curl --data-binary @unet.dcp http://localhost:7070/ingest
//	curl 'http://localhost:7070/hotspots?metric=gpu_time_ns&top=10'
//
//	dcserver -loadgen -clients 8 -loads UNet,DLRM-small,Resnet   # ingest demo
//	dcserver -loadgen -mixed -clients 4 -readers 8 -duration 5s  # read/write bench
//	dcserver -loadgen -fleet -series 500 -duration 5s            # /topk + /search bench
//	dcserver -loadgen -delta -clients 4 -rounds 20               # delta vs full ingest bench
//	dcserver -loadgen -cluster -clients 4 -rounds 10             # 3-node cluster vs single node
//
// Long-lived profiling agents should prefer POST /stream: after one full
// upload per series, each round ships only the changed subtrees (profdb
// v3 delta frames, batched so the store takes one shard-lock acquisition
// per batch), cutting steady-state ingest bytes by an order of
// magnitude. A desynced session (server restart, lost batch, checksum
// mismatch) is NACKed and the client falls back to full uploads, so
// /stream never loses data relative to /ingest — the WAL records the
// materialized full profile either way. -no-delta is the kill switch:
// it refuses /stream with 503 and clients fall back to /ingest.
//
// Fleet-wide queries (/topk ranks frames across every matching series,
// /search finds the series containing a frame) are served from per-window
// aggregates and an inverted frame index maintained when windows close;
// -no-index disables the fast path without changing any result.
//
// The store is lock-striped (-store-shards; the default adopts the data
// dir's committed count, GOMAXPROCS for fresh dirs) so ingest of disjoint
// series never contends, and repeated queries are served from a
// generation-stamped cache (-query-cache entries; 0 disables) that is
// invalidated per (shard, window) on ingest, compaction and retention —
// /stats reports shard count and cache hit/miss/invalidation counters.
// Restarting with an explicit -store-shards (or over a pre-shard data
// directory) migrates the directory in place during recovery, staged and
// crash-safe.
//
// Cluster mode (-node-id with -peers, or a committed CLUSTER.json in the
// data dir) partitions series across N dcserver nodes by consistent
// hash: /ingest and /stream forward remote-owned profiles to their
// owning node, the query endpoints scatter-gather and fold partial
// results in canonical order — a healthy cluster answers byte-identical
// to a single node holding the union of the data; a down peer degrades
// responses to the survivors' share with a coverage annotation.
// Membership changes go through POST /cluster/join (staged export →
// import → commit → drop; idempotent). See docs/OPERATIONS.md §11 for
// the runbook.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"deepcontext/internal/cct"
	"deepcontext/internal/cluster"
	"deepcontext/internal/profdb"
	"deepcontext/internal/profstore"
	"deepcontext/internal/profstore/trend"
)

const defaultMetric = cct.MetricGPUTime

func main() {
	var (
		addr            = flag.String("addr", ":7070", "listen address")
		window          = flag.Duration("window", time.Minute, "fine aggregation window width")
		retention       = flag.Int("retention", 60, "fine windows kept before compaction")
		coarseFactor    = flag.Int("coarse-factor", 10, "coarse window width in fine windows")
		coarseRetention = flag.Int("coarse-retention", 144, "coarse windows kept")
		compactEvery    = flag.Duration("compact-every", 0, "background compaction interval (0 = one window)")
		maxBody         = flag.Int64("max-body", profdb.DefaultMaxBytes, "max /ingest body bytes")
		storeShards     = flag.Int("store-shards", 0, "store lock-stripe count (0 = the data dir's committed count, else GOMAXPROCS; an explicit count migrates the dir)")
		queryCache      = flag.Int("query-cache", 512, "query cache entries (0 = disabled)")

		dataDir      = flag.String("data-dir", "", "durable store directory (empty = in-memory only)")
		snapInterval = flag.Duration("snapshot-interval", 5*time.Minute, "periodic snapshot interval with -data-dir (0 = shutdown snapshot only)")

		noTrend         = flag.Bool("no-trend", false, "disable per-series trend tracking and /regressions")
		trendMetric     = flag.String("trend-metric", "", "metric the trend detector tracks (default gpu_time_ns)")
		trendBand       = flag.Float64("trend-band", 0, "share-deviation noise band for change points (0 = default 0.05)")
		trendK          = flag.Int("trend-k", 0, "consecutive out-of-band windows that confirm a change point (0 = default 3)")
		webhookURL      = flag.String("webhook-url", "", "POST newly confirmed /regressions findings to this URL")
		webhookInterval = flag.Duration("webhook-interval", 30*time.Second, "webhook poll interval")

		loadgen    = flag.Bool("loadgen", false, "run the multi-client ingest demo instead of serving")
		clusterGen = flag.Bool("cluster", false, "loadgen: cluster ingest-router benchmark — 3 in-process nodes behind a router vs a single node (RESULT qps line)")
		mixed      = flag.Bool("mixed", false, "loadgen: mixed read/write mode — readers hammer queries while writers ingest")
		delta      = flag.Bool("delta", false, "loadgen: delta-streaming bench — clients drive /stream sessions and a full-upload control group, reporting bytes/ingest for both")
		fleet      = flag.Bool("fleet", false, "loadgen: fleet-query benchmark — many series, readers hammer /topk and /search (RESULT qps line)")
		series     = flag.Int("series", 200, "loadgen -fleet: distinct label series to seed")
		clients    = flag.Int("clients", 8, "loadgen: concurrent clients")
		readers    = flag.Int("readers", 0, "loadgen -mixed: concurrent query clients (0 = 2x -clients)")
		duration   = flag.Duration("duration", 5*time.Second, "loadgen -mixed: wall time to sustain the mixed load")
		loads      = flag.String("loads", "UNet,DLRM-small,Resnet", "loadgen: comma-separated workloads")
		iters      = flag.Int("iters", 10, "loadgen: iterations per profiled run")
		rounds     = flag.Int("rounds", 2, "loadgen: ingest rounds (each lands in its own window)")

		nodeID  = flag.String("node-id", "", "this node's cluster ID (enables cluster mode with -peers or a committed CLUSTER.json)")
		peers   = flag.String("peers", "", "cluster membership as id=addr,id=addr,... including this node; a CLUSTER.json committed in -data-dir takes precedence")
		noIndex = flag.Bool("no-index", false, "disable the fleet-query frame index (TopK/Search fall back to folding trees; results are identical)")
		noDelta = flag.Bool("no-delta", false, "refuse POST /stream delta sessions with 503 (kill switch; clients fall back to full /ingest uploads)")

		noTelemetry = flag.Bool("no-telemetry", false, "disable latency timings and the event journal (counters and /metrics stay on)")
		slowRequest = flag.Duration("slow-request", defaultSlowRequest, "journal requests taking at least this long (0 disables)")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")

		injectFactor = flag.Float64("inject-regression", 0, "loadgen: multiply one kernel's cost by this factor mid-run, then assert /regressions flags exactly that kernel (0 disables)")
		injectKernel = flag.String("inject-kernel", "", "loadgen -inject-regression: kernel label to inflate (empty = the run's top kernel)")
		injectRound  = flag.Int("inject-round", 0, "loadgen -inject-regression: first inflated round (0 = rounds/2)")
	)
	flag.Parse()

	// Auto shard count adopts the directory's committed layout first: the
	// stripe count must not track a machine-dependent value (GOMAXPROCS),
	// or moving the data dir across hosts would migrate it on every boot.
	shards := *storeShards
	if shards <= 0 && *dataDir != "" {
		if n, ok := profstore.CommittedShards(*dataDir); ok {
			shards = n
		}
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	cfg := profstore.Config{
		Window:          *window,
		Retention:       *retention,
		CoarseFactor:    *coarseFactor,
		CoarseRetention: *coarseRetention,
		Shards:          shards,
		CacheSize:       *queryCache,
		Dir:             *dataDir,
		Trend: trend.Config{
			Disabled: *noTrend,
			Metric:   *trendMetric,
			Band:     *trendBand,
			K:        *trendK,
		},
		IndexDisabled:   *noIndex,
		TimingsDisabled: *noTelemetry,
	}
	if *loadgen {
		// The demo must never seed a real data directory: a later
		// production boot would recover its synthetic profiles as fleet
		// data.
		if cfg.Dir != "" {
			fmt.Fprintln(os.Stderr, "dcserver: -loadgen ignores -data-dir (demo data is not persisted)")
			cfg.Dir = ""
		}
		var err error
		switch {
		case *clusterGen:
			err = runLoadgenCluster(cfg, *clients, *loads, *iters, *rounds, *maxBody)
		case *delta:
			err = runLoadgenDelta(cfg, *clients, *loads, *iters, *rounds, *maxBody)
		case *fleet:
			err = runLoadgenFleet(cfg, *series, *readers, *loads, *iters, *duration, *maxBody)
		case *mixed:
			err = runLoadgenMixed(cfg, *clients, *readers, *loads, *iters, *rounds, *duration, *maxBody)
		default:
			inject := injectOptions{Factor: *injectFactor, Kernel: *injectKernel, Round: *injectRound}
			err = runLoadgen(cfg, *clients, *loads, *iters, *rounds, *maxBody, inject)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcserver:", err)
			os.Exit(1)
		}
		return
	}

	store := profstore.New(cfg)
	if *dataDir != "" {
		rs, err := store.Recover()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcserver: recover:", err)
			os.Exit(1)
		}
		for _, w := range rs.Warnings {
			fmt.Fprintln(os.Stderr, "dcserver: recover:", w)
		}
		if rs.SnapshotError != "" {
			fmt.Fprintln(os.Stderr, "dcserver: recover: snapshot unusable, replaying full WAL:", rs.SnapshotError)
		}
		if rs.Migrated {
			fmt.Printf("dcserver: recover: migrated %s to the %d-shard layout\n", *dataDir, shards)
		}
		fmt.Printf("dcserver: recovered from %s: snapshot=%v windows=%d wal_records=%d (skipped %d records, %d segments)\n",
			*dataDir, rs.SnapshotLoaded, rs.WindowsRestored, rs.WALRecords, rs.WALSkippedRecords, rs.WALSkippedSegments)
		store.StartSnapshotter(*snapInterval)
	}
	store.StartCompactor(*compactEvery)
	defer store.Close()
	if *webhookURL != "" && !*noTrend {
		n := startNotifier(store, *webhookURL, *webhookInterval)
		defer n.Close()
		fmt.Printf("dcserver: webhook notifier posting new regressions to %s every %v\n", *webhookURL, *webhookInterval)
	}

	// Cluster mode: a committed CLUSTER.json in the data dir is the
	// authoritative membership (it is each node's join commit point);
	// -peers only bootstraps a node that has never committed a table.
	var coord *cluster.Coordinator
	if *nodeID != "" || *peers != "" {
		if *nodeID == "" {
			fmt.Fprintln(os.Stderr, "dcserver: -peers requires -node-id")
			os.Exit(1)
		}
		var tbl *cluster.Table
		var tblPath string
		if *dataDir != "" {
			tblPath = filepath.Join(*dataDir, cluster.TableFile)
			t, err := cluster.LoadTable(tblPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dcserver: cluster:", err)
				os.Exit(1)
			}
			tbl = t
		}
		if tbl == nil {
			if *peers == "" {
				fmt.Fprintln(os.Stderr, "dcserver: -node-id needs -peers (or a committed CLUSTER.json in -data-dir)")
				os.Exit(1)
			}
			t, err := cluster.ParsePeers(*peers)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dcserver: cluster:", err)
				os.Exit(1)
			}
			tbl = t
		}
		var err error
		coord, err = cluster.New(cluster.Config{
			Self: *nodeID, Store: store, Table: tbl, Path: tblPath, Telemetry: store.Telemetry(),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcserver: cluster:", err)
			os.Exit(1)
		}
		fmt.Printf("dcserver: cluster node %s (table generation %d, %d nodes)\n",
			*nodeID, tbl.Generation, len(tbl.Nodes))
	}

	// Listen before serving so ":0" (ephemeral port) reports the actual
	// bound address — scripts scrape it from this line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcserver:", err)
		os.Exit(1)
	}
	slow := *slowRequest
	if *noTelemetry {
		slow = 0 // -no-telemetry silences the journal end to end
	}
	app, handler := newServerHandler(store, coord, *maxBody, slow, *noDelta)
	srv := newHTTPServer(*addr, handler)
	fmt.Printf("dcserver: listening on %s (window %v, retention %d fine + %d coarse, %d shards, cache %d)\n",
		ln.Addr(), store.Config().Window, store.Config().Retention, store.Config().CoarseRetention,
		store.Config().Shards, store.Config().CacheSize)
	if !*noTelemetry {
		store.Telemetry().Journal().Record("server_start", ln.Addr().String())
	}
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcserver: pprof:", err)
			os.Exit(1)
		}
		fmt.Printf("dcserver: pprof on http://%s/debug/pprof/\n", pln.Addr())
		go http.Serve(pln, pprofMux())
	}

	// SIGTERM/SIGINT drain in-flight requests, then a final snapshot makes
	// the shutdown lossless even if the periodic snapshotter never fired.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		srv.Shutdown(shCtx)
	}()

	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "dcserver:", err)
		os.Exit(1)
	}
	// Serve can return while Shutdown is still waiting on (or gave up on)
	// active handlers; drain the in-flight writes so the shutdown snapshot
	// cannot race a /stream batch or /ingest that is still applying.
	if !app.drain(10 * time.Second) {
		fmt.Fprintln(os.Stderr, "dcserver: drain: in-flight writes still running; snapshotting anyway")
	}
	if !*noTelemetry {
		store.Telemetry().Journal().Record("server_stop", ln.Addr().String())
	}
	if *dataDir != "" {
		if info, err := store.Snapshot(); err != nil {
			fmt.Fprintln(os.Stderr, "dcserver: shutdown snapshot:", err)
		} else {
			fmt.Printf("dcserver: shutdown snapshot %s (%d files, %d bytes)\n", info.Dir, info.Files, info.Bytes)
		}
	}
	fmt.Println("dcserver: shut down")
}
