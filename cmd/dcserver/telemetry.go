package main

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"time"

	"deepcontext/internal/telemetry"
)

// pprofMux serves net/http/pprof on its own mux so the profiler never
// rides on the public API listener (and never registers on the default
// mux as a side effect).
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// defaultSlowRequest is the slow-request journal threshold used when no
// -slow-request flag is in play (tests, loadgen harnesses).
const defaultSlowRequest = time.Second

// Status classes recorded per endpoint. Everything the API can return is
// 2xx/4xx/5xx; 3xx is registered anyway so the exposition shape does not
// depend on traffic.
var codeClasses = [4]string{"2xx", "3xx", "4xx", "5xx"}

// serverMetrics owns the HTTP-layer telemetry: per-endpoint handles are
// resolved once at route wiring, so per-request recording is a handful of
// atomic adds plus one histogram observation.
type serverMetrics struct {
	reg      *telemetry.Registry
	journal  *telemetry.Journal
	inflight *telemetry.Gauge
	slow     time.Duration // journal requests at/over this; 0 disables
}

// endpointMetrics is the preregistered handle set for one route.
type endpointMetrics struct {
	codes     [4]*telemetry.Counter // by status class, 2xx..5xx
	latency   *telemetry.Histogram
	reqBytes  *telemetry.Counter
	respBytes *telemetry.Counter
}

func newServerMetrics(reg *telemetry.Registry, slow time.Duration) *serverMetrics {
	m := &serverMetrics{
		reg:      reg,
		journal:  reg.Journal(),
		inflight: reg.Gauge("dcserver_inflight_requests", "HTTP requests currently being served."),
		slow:     slow,
	}
	reg.GaugeFunc("go_goroutines", "Goroutines currently live.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	return m
}

// endpoint preregisters every series for one route so the exposition is
// complete (and greppable in CI) before the first request arrives.
func (m *serverMetrics) endpoint(name string) *endpointMetrics {
	em := &endpointMetrics{
		latency: m.reg.Histogram("dcserver_request_seconds", "Request latency by endpoint.",
			telemetry.L("endpoint", name)),
		reqBytes: m.reg.Counter("dcserver_request_bytes_total", "Request body bytes received by endpoint.",
			telemetry.L("endpoint", name)),
		respBytes: m.reg.Counter("dcserver_response_bytes_total", "Response body bytes written by endpoint.",
			telemetry.L("endpoint", name)),
	}
	for i, class := range codeClasses {
		em.codes[i] = m.reg.Counter("dcserver_requests_total", "HTTP requests served by endpoint and status class.",
			telemetry.L("endpoint", name), telemetry.L("code", class))
	}
	return em
}

// statusRecorder captures the status code and body size a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += int64(n)
	return n, err
}

// wrap instruments one route: request count by status class, latency,
// bytes in/out, the in-flight gauge, and a journal event for requests at
// or over the slow threshold (query string included — the slow query is
// the one you want to reproduce).
func (m *serverMetrics) wrap(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	em := m.endpoint(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		m.inflight.Add(1)
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r)
		m.inflight.Add(-1)
		elapsed := time.Since(t0)

		status := rec.status
		if status == 0 { // handler wrote nothing: net/http sends 200
			status = http.StatusOK
		}
		class := status/100 - 2
		if class < 0 || class >= len(em.codes) {
			class = len(em.codes) - 1 // anything exotic counts as 5xx
		}
		em.codes[class].Inc()
		em.latency.Observe(elapsed)
		if r.ContentLength > 0 {
			em.reqBytes.Add(r.ContentLength)
		}
		em.respBytes.Add(rec.bytes)

		if m.slow > 0 && elapsed >= m.slow {
			m.journal.Record("slow_request", endpoint,
				"method", r.Method,
				"query", r.URL.RawQuery,
				"status", strconv.Itoa(status),
				"ms", strconv.FormatInt(elapsed.Milliseconds(), 10))
		}
	}
}

// GET /metrics — the whole registry (request, store, WAL, cache, index,
// trend families) in Prometheus text exposition format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.store.Telemetry().WritePrometheus(w)
}

const (
	defaultEventsLimit = 100
	maxEventsLimit     = 1000
)

// GET /debug/events?kind=&since=&since_seq=&limit= — the in-memory
// lifecycle journal, oldest first.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	f, err := parseEventsQuery(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j := s.store.Telemetry().Journal()
	total, dropped := j.Stats()
	events := j.Select(f)
	writeJSON(w, struct {
		Total   int64             `json:"total"`
		Dropped int64             `json:"dropped"`
		Events  []telemetry.Event `json:"events"`
	}{total, dropped, events})
}

// parseEventsQuery builds the journal filter from /debug/events query
// parameters. kind= repeats or takes a comma-separated list; since=
// accepts RFC3339 or unix seconds/nanoseconds; unknown parameters are
// rejected so a typo (kinds=) fails loudly instead of returning
// everything.
func parseEventsQuery(q url.Values) (telemetry.Filter, error) {
	var f telemetry.Filter
	f.Limit = defaultEventsLimit
	for key, vals := range q {
		switch key {
		case "kind":
			for _, v := range vals {
				for _, k := range strings.Split(v, ",") {
					if k = strings.TrimSpace(k); k != "" {
						f.Kinds = append(f.Kinds, k)
					}
				}
			}
		case "since":
			t, err := parseTime(q.Get("since"))
			if err != nil {
				return telemetry.Filter{}, err
			}
			f.Since = t
		case "since_seq":
			n, err := strconv.ParseInt(q.Get("since_seq"), 10, 64)
			if err != nil || n < 0 {
				return telemetry.Filter{}, fmt.Errorf("bad since_seq %q (want a non-negative integer)", q.Get("since_seq"))
			}
			f.SinceSeq = n
		case "limit":
			n, err := strconv.Atoi(q.Get("limit"))
			if err != nil || n < 0 {
				return telemetry.Filter{}, fmt.Errorf("bad limit %q (want a non-negative integer)", q.Get("limit"))
			}
			if n == 0 || n > maxEventsLimit {
				n = maxEventsLimit
			}
			f.Limit = n
		default:
			return telemetry.Filter{}, fmt.Errorf("unknown parameter %q (want kind, since, since_seq, limit)", key)
		}
	}
	return f, nil
}
