package main

// The fleet-wide query surface: /topk ranks frame labels across every
// matching series via the store's close-time aggregates, /search finds
// the series containing a given frame via the inverted frame index. Both
// parsers take url.Values directly so the fuzz tests drive them without a
// server.

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"deepcontext/internal/profstore"
)

// topkQuery is the parsed form of /topk's parameters.
type topkQuery struct {
	filter   profstore.Labels
	from, to time.Time
	metric   string
	k        int
}

// parseTopKQuery maps /topk query parameters to a store query. k bounds
// the result rows (default 20, 0 = unbounded).
func parseTopKQuery(q url.Values) (topkQuery, error) {
	out := topkQuery{
		filter: profstore.Labels{
			Workload:  q.Get("workload"),
			Vendor:    q.Get("vendor"),
			Framework: q.Get("framework"),
		},
		metric: q.Get("metric"),
		k:      20,
	}
	var err error
	if out.from, err = parseTime(q.Get("from")); err != nil {
		return out, err
	}
	if out.to, err = parseTime(q.Get("to")); err != nil {
		return out, err
	}
	if s := q.Get("k"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return out, fmt.Errorf("bad k %q (want a non-negative integer)", s)
		}
		out.k = n
	}
	return out, nil
}

// searchQuery is the parsed form of /search's parameters.
type searchQuery struct {
	filter   profstore.Labels
	from, to time.Time
	frame    string
	metric   string
	limit    int
}

// parseSearchQuery maps /search query parameters to a store query. frame
// (the display label to look for, e.g. a kernel name) is required; limit
// bounds the result rows (default 50, 0 = unbounded).
func parseSearchQuery(q url.Values) (searchQuery, error) {
	out := searchQuery{
		filter: profstore.Labels{
			Workload:  q.Get("workload"),
			Vendor:    q.Get("vendor"),
			Framework: q.Get("framework"),
		},
		frame:  q.Get("frame"),
		metric: q.Get("metric"),
		limit:  50,
	}
	if out.frame == "" {
		return out, fmt.Errorf("search needs frame= (a frame label, e.g. a kernel name)")
	}
	var err error
	if out.from, err = parseTime(q.Get("from")); err != nil {
		return out, err
	}
	if out.to, err = parseTime(q.Get("to")); err != nil {
		return out, err
	}
	if s := q.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return out, fmt.Errorf("bad limit %q (want a non-negative integer)", s)
		}
		out.limit = n
	}
	return out, nil
}

// GET /topk?metric=&k=&workload=&vendor=&framework=&from=&to= —
// fleet-wide frame ranking over the close-time aggregates.
func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	q, err := parseTopKQuery(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var rows []profstore.TopKRow
	var info profstore.AggregateInfo
	if s.cluster != nil {
		// The coordinator's partials requests carry Sweep, so every node
		// (this one included) closes due windows before answering.
		rows, info, err = s.cluster.TopK(r.Context(), q.from, q.to, q.filter, q.metric, q.k)
	} else {
		// Sweep first so windows that closed since the last ingest are
		// aggregated — the indexed fast path stays current on a quiet store.
		s.store.TrendSweep()
		rows, info, err = s.store.TopK(r.Context(), q.from, q.to, q.filter, q.metric, q.k)
	}
	if err != nil {
		writeQueryError(w, err)
		return
	}
	metric := q.metric
	if metric == "" {
		metric = defaultMetric
	}
	writeJSON(w, struct {
		Metric string                  `json:"metric"`
		Info   profstore.AggregateInfo `json:"info"`
		Rows   []profstore.TopKRow     `json:"rows"`
	}{metric, info, rows})
}

// GET /search?frame=&metric=&limit=&workload=&vendor=&framework=&from=&to=
// — which series contain the frame, ranked by its exclusive metric.
func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q, err := parseSearchQuery(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var rows []profstore.SearchRow
	var info profstore.AggregateInfo
	if s.cluster != nil {
		rows, info, err = s.cluster.Search(r.Context(), q.from, q.to, q.filter, q.frame, q.metric, q.limit)
	} else {
		s.store.TrendSweep()
		rows, info, err = s.store.Search(r.Context(), q.from, q.to, q.filter, q.frame, q.metric, q.limit)
	}
	if err != nil {
		writeQueryError(w, err)
		return
	}
	metric := q.metric
	if metric == "" {
		metric = defaultMetric
	}
	writeJSON(w, struct {
		Frame  string                  `json:"frame"`
		Metric string                  `json:"metric"`
		Info   profstore.AggregateInfo `json:"info"`
		Rows   []profstore.SearchRow   `json:"rows"`
	}{q.frame, metric, info, rows})
}
