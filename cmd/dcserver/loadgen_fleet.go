package main

// loadgen -fleet: the fleet-wide query benchmark — many series (a few
// profiled trees re-labeled into `series` distinct label sets), few hot
// kernels, readers hammering /topk and /search while the store holds two
// closed windows per series. Run it with and without -no-index to measure
// the indexed fast path (CI's fleet smoke gates the qps ratio).

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deepcontext"
	"deepcontext/internal/profdb"
	"deepcontext/internal/profstore"
)

// runLoadgenFleet seeds a fleet-shaped store (seriesN series over the
// workload matrix, two closed windows each) in-process, then drives
// `readers` query clients alternating fleet-wide /topk with /search for
// the fleet's hottest kernel over `duration`, and emits a RESULT qps
// line. The query cache is forced off so the figure measures the
// close-time aggregates and the inverted index, not result memoization.
func runLoadgenFleet(cfg profstore.Config, seriesN, readers int, loads string, iters int, duration time.Duration, maxBody int64) error {
	var workloads []string
	known := make(map[string]bool)
	for _, w := range deepcontext.WorkloadNames() {
		known[w] = true
	}
	for _, w := range strings.Split(loads, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		if !known[w] {
			return fmt.Errorf("loadgen: unknown workload %q (known: %s)",
				w, strings.Join(deepcontext.WorkloadNames(), ", "))
		}
		workloads = append(workloads, w)
	}
	if len(workloads) == 0 {
		return fmt.Errorf("loadgen: no workloads")
	}
	if seriesN <= 0 {
		seriesN = 200
	}
	if readers <= 0 {
		readers = 4
	}
	if duration <= 0 {
		duration = 5 * time.Second
	}
	if cfg.CacheSize != 0 {
		fmt.Fprintln(os.Stderr, "dcserver: -fleet forces -query-cache 0 (the benchmark measures the index, not the cache)")
		cfg.CacheSize = 0
	}

	base := time.Now()
	var offset atomic.Int64
	cfg.Now = func() time.Time { return base.Add(time.Duration(offset.Load())) }
	store := profstore.New(cfg)
	defer store.Close()

	// One profiled tree per workload, re-labeled into seriesN distinct
	// series — the fleet shape: many series sharing few hot kernels.
	hotKernel, err := pickTopKernel(workloads[0], iters, defaultMetric)
	if err != nil {
		return fmt.Errorf("loadgen: pick kernel: %w", err)
	}
	profiles := make(map[string]*deepcontext.Profile, len(workloads))
	for _, w := range workloads {
		s, err := deepcontext.NewSession(deepcontext.Config{Vendor: "nvidia", Framework: "pytorch", Shards: 1})
		if err != nil {
			return err
		}
		if err := s.RunWorkload(w, deepcontext.Knobs{}, iters); err != nil {
			return err
		}
		profiles[w] = s.Stop()
	}
	bodies := make([][]byte, seriesN)
	for i := 0; i < seriesN; i++ {
		wl := workloads[i%len(workloads)]
		p := profiles[wl]
		p.Meta.Workload = fmt.Sprintf("%s-%04d", wl, i)
		p.Meta.Iterations = iters
		p.Meta.Vendor = "nvidia"
		if i%2 == 1 {
			p.Meta.Vendor = "amd"
		}
		p.Meta.Framework = "pytorch"
		if (i/2)%2 == 1 {
			p.Meta.Framework = "jax"
		}
		var buf bytes.Buffer
		if err := profdb.Save(&buf, p); err != nil {
			return fmt.Errorf("loadgen: encode series %d: %w", i, err)
		}
		bodies[i] = buf.Bytes()
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := newHTTPServer("", newHandler(store, maxBody, 0, false))
	go srv.Serve(ln)
	defer srv.Close()
	baseURL := "http://" + ln.Addr().String()
	window := store.Config().Window
	fmt.Printf("loadgen-fleet: server on %s — %d series x %d workloads, %d readers, %v, shards=%d indexed=%v\n",
		baseURL, seriesN, len(workloads), readers, duration, store.Config().Shards, !cfg.IndexDisabled)

	// Seed two windows, then advance the clock past them so both close
	// (the query handlers' sweep aggregates and indexes them).
	httpc := &http.Client{Timeout: time.Minute}
	for r := 0; r < 2; r++ {
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		per := (len(bodies) + 7) / 8
		for w := 0; w < 8; w++ {
			lo, hi := w*per, (w+1)*per
			if hi > len(bodies) {
				hi = len(bodies)
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(chunk [][]byte) {
				defer wg.Done()
				wc := &http.Client{Timeout: time.Minute}
				for _, body := range chunk {
					if err := postBody(wc, baseURL, body); err != nil {
						select {
						case errs <- err:
						default:
						}
					}
				}
			}(bodies[lo:hi])
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			return fmt.Errorf("loadgen: seed ingest: %w", err)
		}
		offset.Add(int64(window))
	}
	fmt.Printf("loadgen-fleet: seeded %d profiles across 2 windows; hot kernel %q\n", 2*len(bodies), hotKernel)

	searchQ := url.Values{}
	searchQ.Set("frame", hotKernel)
	searchQ.Set("limit", "10")
	queries := []string{
		"/topk?k=10",
		"/search?" + searchQ.Encode(),
	}

	var queryCount, queryFail atomic.Int64
	latencies := make([][]time.Duration, readers)
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rc := &http.Client{Timeout: time.Minute}
			for i := 0; time.Now().Before(deadline); i++ {
				q := queries[i%len(queries)]
				t0 := time.Now()
				resp, err := rc.Get(baseURL + q)
				if err != nil || resp.StatusCode != http.StatusOK {
					queryFail.Add(1)
					if resp != nil {
						resp.Body.Close()
					}
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				latencies[r] = append(latencies[r], time.Since(t0))
				queryCount.Add(1)
			}
		}(r)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	if queryFail.Load() > 0 {
		return fmt.Errorf("loadgen: %d failed queries", queryFail.Load())
	}
	if queryCount.Load() == 0 {
		return fmt.Errorf("loadgen: no queries completed")
	}
	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration { return all[int(p*float64(len(all)-1))] }
	qps := float64(queryCount.Load()) / elapsed.Seconds()

	var stats struct {
		Store profstore.Stats `json:"store"`
	}
	if err := getJSON(httpc, baseURL+"/stats", &stats); err != nil {
		return fmt.Errorf("loadgen: stats: %w", err)
	}
	if ix := stats.Store.Index; ix != nil {
		fmt.Printf("loadgen-fleet: index frames=%d postings=%d rebuilds=%d\n", ix.Frames, ix.Postings, ix.Rebuilds)
	}
	fmt.Printf("loadgen-fleet: %d queries in %v, latency p50=%v p95=%v\n",
		queryCount.Load(), elapsed.Round(time.Millisecond),
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond))
	expo, err := fetchMetrics(httpc, baseURL)
	if err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}
	fmt.Printf("loadgen-fleet: RESULT qps=%.1f p50_us=%d series=%d indexed=%v%s\n",
		qps, pct(0.50).Microseconds(), seriesN, !cfg.IndexDisabled,
		scrapedLatencies(expo, "/topk", "/search"))
	return nil
}
