// POST /stream — the profdb v3 delta-ingest session endpoint.
//
// A session is a client-chosen id carried in ?session=; its state (the
// shared frame dictionary plus one apply cursor per series) persists on
// the server across POSTs, so a client uploads the full profile once and
// then ships only changed subtrees. Each POST body is a gob stream of
// profdb.StreamBatch records; every batch is applied through the store's
// batch path — one shard-lock acquisition per shard per batch — and the
// store's WAL records the materialized full profile, so recovery
// semantics are identical to /ingest.
//
// Per-frame failures (stale base, corrupt delta) are NACKed in the JSON
// acknowledgement and the client resyncs that series with a full frame;
// anything that desyncs the whole session (an undecodable stream, an
// ingest error) drops the session so the client's next POST starts
// fresh. The acknowledgement also reports the server's dictionary
// length: a client whose own dictionary disagrees (a lost batch, a
// server restart) abandons the session and re-establishes every series
// with full uploads.
package main

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"deepcontext/internal/cluster"
	"deepcontext/internal/profdb"
	"deepcontext/internal/profstore"
	"deepcontext/internal/telemetry"
)

const (
	// maxStreamSessions caps server-side session state; the least
	// recently used session is evicted beyond it (the client notices via
	// the dictionary-length check and resyncs).
	maxStreamSessions = 256
	// maxSessionIDLen bounds the client-chosen session id.
	maxSessionIDLen = 128
)

var errDeltaDisabled = errors.New("delta ingest disabled (-no-delta); POST full profiles to /ingest")

// streamAck is the JSON response to one POST /stream: what was applied,
// which frames were rejected, and the server's dictionary length for the
// client's desync check.
type streamAck struct {
	Session string       `json:"session"`
	Batches int          `json:"batches"`
	Frames  int          `json:"frames"`
	Applied int          `json:"applied"`
	Dict    int          `json:"dict"`
	Closed  bool         `json:"closed,omitempty"`
	Nacks   []streamNack `json:"nacks,omitempty"`
}

// streamNack reports one rejected frame. Reason is "stale" (resend that
// series as a full frame) or "corrupt" (the frame was malformed; the
// series cursor is reset, so a full resync is also required).
type streamNack struct {
	Seq    uint64 `json:"seq"`
	Series string `json:"series"`
	Reason string `json:"reason"`
	Error  string `json:"error"`
}

// streamSession is the server half of one v3 session. The mutex
// serializes POSTs racing on the same id; gone marks a session that was
// dropped or evicted while a racing POST waited on it.
type streamSession struct {
	id      string
	mu      sync.Mutex
	dec     *profdb.DeltaDecoder
	cursors map[string]*profdb.SeriesCursor
	lastSeq uint64
	gone    atomic.Bool
	lastUse atomic.Int64 // unix nanoseconds, for LRU eviction
}

// streamMetrics is the delta-ingest telemetry handle set, resolved once
// at wiring time.
type streamMetrics struct {
	deltaBytes    *telemetry.Counter
	fullBytes     *telemetry.Counter
	deltaFrames   *telemetry.Counter
	fullFrames    *telemetry.Counter
	fullFallbacks *telemetry.Counter
	batches       *telemetry.Counter
	batchFrames   *telemetry.Counter
	nacks         *telemetry.Counter
	opened        *telemetry.Counter
	closed        *telemetry.Counter
	dropped       *telemetry.Counter
	evicted       *telemetry.Counter
}

func newStreamMetrics(reg *telemetry.Registry) *streamMetrics {
	return &streamMetrics{
		deltaBytes:    reg.Counter("dcserver_ingest_delta_bytes_total", "Wire bytes received as delta frames on /stream (batch framing included)."),
		fullBytes:     reg.Counter("dcserver_ingest_full_bytes_total", "Wire bytes received as embedded full payloads on /stream (initial uploads and resyncs)."),
		deltaFrames:   reg.Counter("dcserver_ingest_delta_frames_total", "Delta frames applied on /stream."),
		fullFrames:    reg.Counter("dcserver_ingest_full_frames_total", "Full frames applied on /stream (initial uploads and resyncs)."),
		fullFallbacks: reg.Counter("dcserver_ingest_full_fallbacks_total", "Full frames applied to a series the session had already seen — resyncs after a NACK, an unencodable change, or a restart."),
		batches:       reg.Counter("dcserver_stream_batches_total", "Stream batches received (each applied under one shard-lock acquisition per shard)."),
		batchFrames:   reg.Counter("dcserver_stream_batch_frames_total", "Frames received across all stream batches (divide by batches for the mean batch size)."),
		nacks:         reg.Counter("dcserver_stream_nacks_total", "Frames rejected with a NACK (stale base or corrupt delta)."),
		opened:        reg.Counter("dcserver_stream_sessions_opened_total", "Stream sessions opened."),
		closed:        reg.Counter("dcserver_stream_sessions_closed_total", "Stream sessions closed gracefully by a Close batch."),
		dropped:       reg.Counter("dcserver_stream_sessions_dropped_total", "Stream sessions dropped on error to force a client resync."),
		evicted:       reg.Counter("dcserver_stream_sessions_evicted_total", "Stream sessions evicted by the LRU cap."),
	}
}

// streamRegistry owns the live sessions. Lock order: registry mutex and
// session mutexes are never held together — acquire releases the
// registry before locking the session, and drop/evict flip the session's
// atomic gone flag instead of taking its lock.
type streamRegistry struct {
	mu       sync.Mutex
	sessions map[string]*streamSession
	met      *streamMetrics
	journal  *telemetry.Journal
}

func newStreamRegistry(reg *telemetry.Registry) *streamRegistry {
	g := &streamRegistry{
		sessions: make(map[string]*streamSession),
		met:      newStreamMetrics(reg),
		journal:  reg.Journal(),
	}
	reg.GaugeFunc("dcserver_stream_sessions", "Stream sessions currently held.",
		func() float64 {
			g.mu.Lock()
			defer g.mu.Unlock()
			return float64(len(g.sessions))
		})
	return g
}

// acquire returns the session for id with its mutex held, creating it
// (and evicting the LRU session past the cap) as needed. The loop
// re-resolves when the session it waited on was dropped meanwhile.
func (g *streamRegistry) acquire(id string, maxBody int64) *streamSession {
	for {
		g.mu.Lock()
		sess := g.sessions[id]
		if sess == nil {
			if len(g.sessions) >= maxStreamSessions {
				g.evictLocked()
			}
			sess = &streamSession{
				id:      id,
				dec:     profdb.NewDeltaDecoder(),
				cursors: make(map[string]*profdb.SeriesCursor),
			}
			sess.dec.MaxBytes = maxBody
			g.sessions[id] = sess
			g.met.opened.Inc()
			g.journal.Record("stream_open", id)
		}
		sess.lastUse.Store(time.Now().UnixNano())
		g.mu.Unlock()
		sess.mu.Lock()
		if !sess.gone.Load() {
			return sess
		}
		sess.mu.Unlock()
	}
}

// evictLocked removes the least recently used session. Called with the
// registry mutex held.
func (g *streamRegistry) evictLocked() {
	var victim *streamSession
	for _, s := range g.sessions {
		if victim == nil || s.lastUse.Load() < victim.lastUse.Load() {
			victim = s
		}
	}
	if victim == nil {
		return
	}
	victim.gone.Store(true)
	delete(g.sessions, victim.id)
	g.met.evicted.Inc()
	g.journal.Record("stream_evict", victim.id)
}

// remove deletes sess from the registry. Safe to call with sess.mu held
// (see the lock-order note on streamRegistry).
func (g *streamRegistry) remove(sess *streamSession) {
	sess.gone.Store(true)
	g.mu.Lock()
	if g.sessions[sess.id] == sess {
		delete(g.sessions, sess.id)
	}
	g.mu.Unlock()
}

// drop removes a desynced session so the client's next POST starts
// fresh with full uploads.
func (g *streamRegistry) drop(sess *streamSession, reason string) {
	g.remove(sess)
	g.met.dropped.Inc()
	g.journal.Record("stream_drop", sess.id, "reason", reason)
}

// close removes a gracefully closed session.
func (g *streamRegistry) close(sess *streamSession) {
	g.remove(sess)
	g.met.closed.Inc()
	g.journal.Record("stream_close", sess.id)
}

// countingReader counts bytes consumed from the request body so wire
// bytes can be attributed to delta versus full traffic.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// POST /stream?session=<id> — body is a gob stream of profdb.StreamBatch;
// response is one streamAck covering every batch in the body.
func (s *server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.noDelta {
		writeError(w, http.StatusServiceUnavailable, errDeltaDisabled)
		return
	}
	if !s.beginWrite() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	defer s.endWrite()
	id := r.URL.Query().Get("session")
	if id == "" || len(id) > maxSessionIDLen {
		writeError(w, http.StatusBadRequest, fmt.Errorf("stream needs ?session=<id> (at most %d bytes)", maxSessionIDLen))
		return
	}
	met := s.streams.met
	cr := &countingReader{r: http.MaxBytesReader(w, r.Body, s.maxBody)}
	gdec := gob.NewDecoder(cr)

	// Wire accounting happens whatever way the request ends: everything
	// that is not an embedded full payload is delta/framing traffic.
	var fullPayload int64
	defer func() {
		if d := cr.n - fullPayload; d > 0 {
			met.deltaBytes.Add(d)
		}
		met.fullBytes.Add(fullPayload)
	}()

	sess := s.streams.acquire(id, s.maxBody)
	defer sess.mu.Unlock()

	ack := streamAck{Session: id}
	for {
		b, err := profdb.ReadBatch(gdec)
		if err == io.EOF {
			break
		}
		if err != nil {
			// An undecodable stream poisons the whole session: the
			// dictionary may have desynced, so force a fresh start.
			s.streams.drop(sess, "corrupt_stream")
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge, err)
			} else {
				writeError(w, http.StatusBadRequest, err)
			}
			return
		}
		ack.Batches++
		ack.Frames += len(b.Frames)
		met.batches.Inc()
		met.batchFrames.Add(int64(len(b.Frames)))

		// In cluster mode, frames whose series another node owns are
		// re-encoded as full frames the moment they materialize (the
		// session base mutates under the next delta) and forwarded per
		// destination after the local share lands.
		var fwd map[string]*cluster.Forwarder
		var prep []profstore.PreparedProfile
		for i := range b.Frames {
			f := &b.Frames[i]
			if !f.Delta {
				fullPayload += int64(len(f.Full))
			}
			// Dictionary additions are applied for every received frame,
			// accepted or not — the sender's dictionary grew when it
			// encoded the frame, and the two must stay in lockstep.
			if err := sess.dec.AddFrames(f); err != nil {
				s.streams.drop(sess, "corrupt_dictionary")
				writeError(w, http.StatusBadRequest, err)
				return
			}
			key := profstore.LabelsOf(f.Meta).Key()
			seen := sess.cursors[key] != nil
			cur := sess.cursors[key]
			if cur == nil {
				cur = &profdb.SeriesCursor{}
				sess.cursors[key] = cur
			}
			p, err := sess.dec.Apply(cur, f)
			if err != nil {
				reason := "corrupt"
				if errors.Is(err, profdb.ErrStaleBase) {
					reason = "stale"
				}
				ack.Nacks = append(ack.Nacks, streamNack{Seq: f.Seq, Series: key, Reason: reason, Error: err.Error()})
				met.nacks.Inc()
				s.streams.journal.Record("stream_resync", id, "series", key, "reason", reason)
				continue
			}
			if f.Delta {
				met.deltaFrames.Inc()
			} else {
				met.fullFrames.Inc()
				if seen {
					met.fullFallbacks.Inc()
					s.streams.journal.Record("stream_resync", id, "series", key, "reason", "full_resync")
				}
			}
			if s.cluster != nil {
				if owner := s.cluster.OwnerOf(profstore.LabelsOf(f.Meta)); owner != s.cluster.Self() {
					if fwd == nil {
						fwd = map[string]*cluster.Forwarder{}
					}
					fw := fwd[owner]
					if fw == nil {
						fw = cluster.NewForwarder()
						fwd[owner] = fw
					}
					if err := fw.Add(p); err != nil {
						s.streams.drop(sess, "forward_encode_error")
						writeError(w, http.StatusInternalServerError, err)
						return
					}
					ack.Applied++
					continue
				}
			}
			// Prepare snapshots the materialized profile (encode for the
			// WAL, normalize addresses) immediately: the session base
			// mutates in place when the next delta frame applies.
			pp, err := s.store.Prepare(p)
			if err != nil {
				s.streams.drop(sess, "prepare_error")
				writeError(w, http.StatusBadRequest, err)
				return
			}
			prep = append(prep, pp)
			ack.Applied++
		}
		if len(prep) > 0 {
			if _, err := s.store.IngestPrepared(prep); err != nil {
				// The client cannot tell how much of the batch landed;
				// dropping the session forces a clean full resync.
				s.streams.drop(sess, "ingest_error")
				writeError(w, http.StatusInternalServerError, err)
				return
			}
		}
		for _, owner := range sortedKeys(fwd) {
			fw := fwd[owner]
			body, err := fw.Bytes()
			if err != nil {
				s.streams.drop(sess, "forward_encode_error")
				writeError(w, http.StatusInternalServerError, err)
				return
			}
			if _, err := s.cluster.ForwardBytes(r.Context(), owner, body, fw.Len()); err != nil {
				// Never retried — a re-delivered merge would double-count.
				// Drop the session and surface the failure; the client
				// decides whether to re-drive the round.
				s.streams.drop(sess, "forward_error")
				writeError(w, http.StatusBadGateway, err)
				return
			}
		}
		sess.lastSeq = b.Seq
		if b.Close {
			s.streams.close(sess)
			ack.Closed = true
			break
		}
	}
	ack.Dict = sess.dec.DictLen()
	writeJSON(w, ack)
}
