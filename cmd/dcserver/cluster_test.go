package main

// Cluster-mode server tests: the byte-equivalence matrix (a cluster of
// any size must answer every query endpoint byte-identically to a single
// node holding the union of the data, whatever the shard count or cache
// setting), the kill/restart stress test, the canceled-query status
// mapping, and the shutdown write drain.

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"deepcontext/internal/cct"
	"deepcontext/internal/cluster"
	"deepcontext/internal/profdb"
	"deepcontext/internal/profiler"
	"deepcontext/internal/profstore"
)

// labeledProfile is testProfile with the full label triple under the
// caller's control, so a test can spread series across ring owners.
func labeledProfile(workload, vendor, framework string, scale float64) *profiler.Profile {
	p := testProfile(workload, scale)
	p.Meta.Vendor = vendor
	p.Meta.Framework = framework
	return p
}

// tcNode is one cluster member under test. Unlike the loadgen harness it
// keeps the coordinator and address around so a test can kill the HTTP
// front end and later re-serve the same store at the same address.
type tcNode struct {
	id    string
	addr  string
	store *profstore.Store
	coord *cluster.Coordinator
	srv   *http.Server
}

func (nd *tcNode) url() string { return "http://" + nd.addr }

// serve builds a fresh handler over the node's store and coordinator and
// starts serving ln — used both at boot and to restart a killed node.
func (nd *tcNode) serve(t *testing.T, ln net.Listener) {
	t.Helper()
	_, h := newServerHandler(nd.store, nd.coord, profdb.DefaultMaxBytes, 0, false)
	nd.srv = newHTTPServer("", h)
	srv := nd.srv
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
}

// bootTestCluster starts n nodes on ephemeral ports under one routing
// table. n == 1 boots without a coordinator — the single-node control.
func bootTestCluster(t *testing.T, cfg profstore.Config, n int) []*tcNode {
	t.Helper()
	nodes := make([]*tcNode, n)
	lns := make([]net.Listener, n)
	tbl := &cluster.Table{Generation: 1}
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		id := fmt.Sprintf("n%d", i+1)
		nodes[i] = &tcNode{id: id, addr: ln.Addr().String()}
		tbl.Nodes = append(tbl.Nodes, cluster.Node{ID: id, Addr: "http://" + ln.Addr().String()})
	}
	for i, nd := range nodes {
		nd.store = profstore.New(cfg)
		t.Cleanup(nd.store.Close)
		if n > 1 {
			coord, err := cluster.New(cluster.Config{
				Self: nd.id, Store: nd.store, Table: tbl, Telemetry: nd.store.Telemetry(),
				// Fast backoff: the stress test queries through a dead
				// peer's retry path on every request.
				Options: cluster.Options{Timeout: 5 * time.Second, Backoff: 2 * time.Millisecond},
			})
			if err != nil {
				t.Fatal(err)
			}
			nd.coord = coord
		}
		nd.serve(t, lns[i])
	}
	return nodes
}

// rawGet returns the status code and raw body of one GET — raw, because
// the equivalence tests compare responses byte for byte.
func rawGet(t *testing.T, hc *http.Client, url string) (int, string) {
	t.Helper()
	resp, err := hc.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// equivalenceSeries spreads across all three ring owners of the test
// tables built by bootTestCluster.
var equivalenceSeries = []struct{ w, v, f string }{
	{"unet", "nvidia", "pytorch"},
	{"unet", "amd", "jax"},
	{"dlrm", "nvidia", "jax"},
	{"dlrm", "amd", "pytorch"},
	{"gpt", "nvidia", "pytorch"},
	{"bert", "amd", "pytorch"},
	{"resnet", "nvidia", "jax"},
}

// ingestEquivalenceRounds drives the same deterministic ingest timeline
// (bundles through the router node, one window per round) into any
// deployment.
func ingestEquivalenceRounds(t *testing.T, hc *http.Client, url string, clock *testClock, rounds int) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		var entries []profdb.Entry
		for i, sp := range equivalenceSeries {
			entries = append(entries, profdb.Entry{
				Name:    fmt.Sprintf("p%d", i),
				Profile: labeledProfile(sp.w, sp.v, sp.f, float64(1+r+i)),
			})
		}
		var buf bytes.Buffer
		if err := profdb.SaveBundle(&buf, entries); err != nil {
			t.Fatal(err)
		}
		resp, err := hc.Post(url+"/ingest", "application/octet-stream", bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("round %d: ingest status = %d", r, resp.StatusCode)
		}
		clock.Advance(time.Minute)
	}
}

// TestClusterEquivalenceMatrix is the tentpole invariant as a matrix:
// every deployment shape — cluster of 1, 2 or 3 nodes, sharded or not,
// query cache on or off — fed the identical ingest timeline must answer
// every query endpoint (including the error responses) byte-identically.
func TestClusterEquivalenceMatrix(t *testing.T) {
	queries := []string{
		"/hotspots?top=10",
		"/hotspots?metric=bogus_metric&top=3",
		"/diff?before=2026-01-01T00:00:00Z&after=2026-01-01T00:02:00Z&top=10",
		"/topk?k=5",
		"/search?frame=gemm&limit=10",
		"/regressions?dir=both&limit=0",
	}
	type answer struct {
		code int
		body string
	}

	run := func(t *testing.T, nodes, shards, cache int) map[string]answer {
		clock := &testClock{t: testBase}
		cfg := profstore.Config{Window: time.Minute, Now: clock.Now, Shards: shards, CacheSize: cache}
		cl := bootTestCluster(t, cfg, nodes)
		hc := &http.Client{Timeout: 30 * time.Second}
		ingestEquivalenceRounds(t, hc, cl[0].url(), clock, 4)
		out := map[string]answer{}
		for _, q := range queries {
			code, body := rawGet(t, hc, cl[0].url()+q)
			out[q] = answer{code, body}
			// A second hit must repeat the answer — with the cache on this
			// is the cached path, with it off plain determinism.
			if code2, body2 := rawGet(t, hc, cl[0].url()+q); code2 != code || body2 != body {
				t.Errorf("%s: second fetch diverged from first (status %d vs %d)", q, code2, code)
			}
		}
		return out
	}

	var golden map[string]answer
	for _, nodes := range []int{1, 2, 3} {
		for _, shards := range []int{1, 4} {
			for _, cache := range []int{0, 64} {
				name := fmt.Sprintf("nodes=%d,shards=%d,cache=%d", nodes, shards, cache)
				t.Run(name, func(t *testing.T) {
					got := run(t, nodes, shards, cache)
					if golden == nil {
						golden = got
						for _, q := range queries {
							if strings.Contains(q, "bogus") {
								if got[q].code != http.StatusBadRequest {
									t.Errorf("%s: status = %d, want 400", q, got[q].code)
								}
							} else if got[q].code != http.StatusOK {
								t.Errorf("%s: status = %d, want 200: %s", q, got[q].code, got[q].body)
							}
						}
						return
					}
					for _, q := range queries {
						if got[q].code != golden[q].code {
							t.Errorf("%s: status = %d, want %d", q, got[q].code, golden[q].code)
						}
						if got[q].body != golden[q].body {
							t.Errorf("%s: body diverged from single-node golden:\n got %s\nwant %s",
								q, got[q].body, golden[q].body)
						}
					}
				})
			}
		}
	}
}

// hotspotsBody mirrors handleHotspots' response shape.
type hotspotsBody struct {
	Metric string                  `json:"metric"`
	Info   profstore.AggregateInfo `json:"info"`
	Rows   []profstore.Hotspot     `json:"rows"`
}

// TestClusterStress kills a node under concurrent query load, checks the
// survivors degrade (200 with a coverage annotation and conserved sums,
// 502 for ingest owned by the dead node), then restarts the node at the
// same address and requires the cluster to answer byte-identically to its
// pre-kill self. Run under -race in CI.
func TestClusterStress(t *testing.T) {
	clock := &testClock{t: testBase}
	cfg := profstore.Config{Window: time.Minute, Now: clock.Now}
	cl := bootTestCluster(t, cfg, 3)
	hc := &http.Client{Timeout: 10 * time.Second}
	ingestEquivalenceRounds(t, hc, cl[0].url(), clock, 3)

	goldenQueries := []string{"/hotspots?top=50", "/topk?k=50"}
	golden := map[string]string{}
	for _, q := range goldenQueries {
		code, body := rawGet(t, hc, cl[0].url()+q)
		if code != http.StatusOK {
			t.Fatalf("%s: status = %d before kill: %s", q, code, body)
		}
		golden[q] = body
	}

	// Concurrent queriers keep the scatter-gather path busy through the
	// kill and the degraded phase; every response must be a 200 (a down
	// peer degrades coverage, it does not fail the query).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			qc := &http.Client{Timeout: 10 * time.Second}
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := qc.Get(cl[0].url() + "/hotspots?top=5")
				if err != nil {
					t.Errorf("querier: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("querier: status = %d", resp.StatusCode)
					return
				}
			}
		}()
	}

	cl[2].srv.Close()

	// Degraded: still 200, coverage annotated, and the surviving rows are
	// a conserved subset of the full answer (never inflated, never
	// invented).
	var full hotspotsBody
	if err := json.Unmarshal([]byte(golden["/hotspots?top=50"]), &full); err != nil {
		t.Fatal(err)
	}
	fullExcl := map[string]float64{}
	for _, row := range full.Rows {
		fullExcl[row.Kind+"\x00"+row.Label] = row.Excl
	}
	var degraded hotspotsBody
	waitFor(t, 5*time.Second, "degraded coverage on survivor", func() bool {
		code, body := rawGet(t, hc, cl[0].url()+"/hotspots?top=50")
		if code != http.StatusOK {
			t.Fatalf("degraded hotspots status = %d: %s", code, body)
		}
		if err := json.Unmarshal([]byte(body), &degraded); err != nil {
			t.Fatal(err)
		}
		return degraded.Info.Coverage != nil
	})
	cov := degraded.Info.Coverage
	if cov.NodesTotal != 3 || cov.NodesUp != 2 || len(cov.Down) != 1 || cov.Down[0] != "n3" {
		t.Fatalf("coverage = %+v, want 2/3 up with n3 down", cov)
	}
	for _, row := range degraded.Rows {
		fullV, ok := fullExcl[row.Kind+"\x00"+row.Label]
		if !ok {
			t.Errorf("degraded answer invented row %s %q", row.Kind, row.Label)
			continue
		}
		if row.Excl > fullV+1e-9 {
			t.Errorf("degraded row %q excl %v exceeds full answer %v", row.Label, row.Excl, fullV)
		}
	}
	var st cluster.Status
	if err := getJSON(hc, cl[0].url()+"/cluster/status", &st); err != nil {
		t.Fatal(err)
	}
	if !st.Degraded {
		t.Fatalf("cluster status not degraded with n3 down: %+v", st)
	}

	// Ingest owned entirely by the dead node: the router must answer 502
	// without mutating any surviving store (the bundle has no local
	// share), so the post-restart byte-equality below still holds.
	var orphan *profiler.Profile
	for i := 0; orphan == nil && i < 1000; i++ {
		p := labeledProfile(fmt.Sprintf("w%03d", i), "nvidia", "pytorch", 1)
		if cl[0].coord.OwnerOf(profstore.LabelsOf(p.Meta)) == "n3" {
			orphan = p
		}
	}
	if orphan == nil {
		t.Fatal("no candidate series owned by n3")
	}
	resp, err := hc.Post(cl[0].url()+"/ingest", "application/octet-stream",
		bytes.NewReader(dcpBytes(t, orphan)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("ingest for dead owner: status = %d, want 502", resp.StatusCode)
	}

	close(stop)
	wg.Wait()

	// Restart: same store, same coordinator, same address, fresh listener
	// and handler. The retry loop rides out the closed socket's release.
	var ln net.Listener
	for i := 0; i < 250; i++ {
		if ln, err = net.Listen("tcp", cl[2].addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", cl[2].addr, err)
	}
	cl[2].serve(t, ln)

	// Full coverage returns and the answers are byte-identical to the
	// pre-kill golden — nothing was lost or double-counted on the way
	// through the degraded phase.
	for _, q := range goldenQueries {
		q := q
		waitFor(t, 5*time.Second, q+" back to golden", func() bool {
			code, body := rawGet(t, hc, cl[0].url()+q)
			return code == http.StatusOK && body == golden[q]
		})
	}
	if err := getJSON(hc, cl[0].url()+"/cluster/status", &st); err != nil {
		t.Fatal(err)
	}
	if st.Degraded {
		t.Fatalf("cluster status still degraded after restart: %+v", st)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCanceledQueryReturns499 checks the cancellation plumbing end to
// end: a request whose context is already canceled must abandon the fold
// at the first bucket boundary and map to 499, not 404 or a fabricated
// empty answer.
func TestCanceledQueryReturns499(t *testing.T) {
	clock := &testClock{t: testBase}
	store := profstore.New(profstore.Config{Window: time.Minute, Now: clock.Now})
	defer store.Close()
	h := newHandler(store, profdb.DefaultMaxBytes, 0, false)
	for r := 0; r < 2; r++ {
		if _, err := store.Ingest(testProfile("UNet", float64(1+r))); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Minute)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, path := range []string{
		"/hotspots?top=5",
		"/diff?before=2026-01-01T00:00:00Z&after=2026-01-01T00:01:00Z",
		"/topk?k=3",
		"/search?frame=gemm&limit=5",
		"/analyze",
	} {
		req := httptest.NewRequest(http.MethodGet, path, nil).WithContext(ctx)
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != statusClientClosedRequest {
			t.Errorf("%s with canceled context: status = %d, want %d (body %s)",
				path, rr.Code, statusClientClosedRequest, rr.Body.String())
			continue
		}
		var eb errorBody
		if err := json.Unmarshal(rr.Body.Bytes(), &eb); err != nil {
			t.Errorf("%s: undecodable error body %q", path, rr.Body.String())
			continue
		}
		if !strings.Contains(eb.Error, "canceled") {
			t.Errorf("%s: error %q does not mention cancellation", path, eb.Error)
		}
	}
}

// TestDrainWaitsForStreamBatch reproduces the shutdown race the drain
// closes: a /stream request is mid-body when shutdown begins. The drain
// must refuse new writes immediately, wait for the open request's applied
// batches to finish, and only then let the shutdown snapshot run — so a
// restart recovers the batch exactly once.
func TestDrainWaitsForStreamBatch(t *testing.T) {
	dir := t.TempDir()
	clock := &testClock{t: testBase}
	cfg := profstore.Config{Window: time.Minute, Now: clock.Now, Dir: dir}
	store := profstore.New(cfg)
	app, h := newServerHandler(store, nil, profdb.DefaultMaxBytes, 0, false)
	ts := httptest.NewServer(h)
	defer ts.Close()

	// One full frame, encoded client-side exactly as streamClient would.
	enc := profdb.NewDeltaEncoder()
	fr, err := enc.EncodeFull(streamTestProfile("unet", 4), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var batch bytes.Buffer
	if err := profdb.WriteBatch(gob.NewEncoder(&batch), &profdb.StreamBatch{Seq: 1, Frames: []profdb.StreamFrame{fr}}); err != nil {
		t.Fatal(err)
	}

	// POST the batch through a pipe held open: the batch applies, the
	// request does not end — the shape http.Server.Shutdown gives up on.
	pr, pw := io.Pipe()
	postDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/stream?session=drain-test", "application/octet-stream", pr)
		if err != nil {
			postDone <- err
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			postDone <- fmt.Errorf("stream: HTTP %d", resp.StatusCode)
			return
		}
		postDone <- nil
	}()
	if _, err := pw.Write(batch.Bytes()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "stream batch applied", func() bool {
		return store.Stats().Ingested == 1
	})

	drainDone := make(chan bool, 1)
	go func() { drainDone <- app.drain(10 * time.Second) }()
	select {
	case ok := <-drainDone:
		t.Fatalf("drain returned %v while the stream request was still open", ok)
	case <-time.After(150 * time.Millisecond):
	}

	// Draining: new writes are refused up front.
	for _, post := range []struct{ path, what string }{
		{"/ingest", "ingest"},
		{"/stream?session=late", "stream"},
	} {
		resp, err := http.Post(ts.URL+post.path, "application/octet-stream",
			bytes.NewReader(dcpBytes(t, testProfile("DLRM", 1))))
		if err != nil {
			t.Fatal(err)
		}
		var eb errorBody
		decodeJSON(t, resp, &eb)
		if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(eb.Error, "shutting down") {
			t.Fatalf("%s while draining: status = %d, error %q; want 503 %q",
				post.what, resp.StatusCode, eb.Error, errDraining)
		}
	}

	// The client finishes its body; the in-flight request completes and
	// the drain reports quiescence.
	pw.Close()
	if err := <-postDone; err != nil {
		t.Fatal(err)
	}
	if ok := <-drainDone; !ok {
		t.Fatal("drain timed out with the stream request finished")
	}

	// Shutdown snapshot, then recovery: exactly one copy of the batch.
	refJSON := storeStateJSON(t, store)
	if _, err := store.Snapshot(); err != nil {
		t.Fatal(err)
	}
	store.Close()
	recovered := profstore.New(cfg)
	defer recovered.Close()
	if _, err := recovered.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := recovered.Stats().Ingested; got != 1 {
		t.Fatalf("recovered ingested = %d, want exactly 1 (the drained batch)", got)
	}
	if got := storeStateJSON(t, recovered); got != refJSON {
		t.Fatalf("recovered store diverged (double- or zero-applied batch):\n got %s\nwant %s", got, refJSON)
	}
}

// storeStateJSON reduces a store's queryable state (hotspots over all
// windows, plus the window list) to one comparable string.
func storeStateJSON(t *testing.T, s *profstore.Store) string {
	t.Helper()
	rows, info, err := s.Hotspots(context.Background(), time.Time{}, time.Time{}, profstore.Labels{}, cct.MetricGPUTime, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(struct {
		Rows    []profstore.Hotspot
		Info    profstore.AggregateInfo
		Windows any
	}{rows, info, s.Windows()})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
