package main

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"deepcontext/internal/profdb"
	"deepcontext/internal/profiler"
	"deepcontext/internal/profstore"
)

// streamClient drives a profdb v3 delta session against POST /stream. It
// mirrors the server's receive state with a shadow decoder: after each
// acknowledged frame the client applies it locally, so the next delta is
// encoded against exactly the profile the server materialized (the full
// frame's embedded payload round-trips through the decoder too, which is
// why acknowledged bases never alias the caller's profiles).
//
// Recovery is two-tier. A NACKed frame resets only that series' cursor:
// the next send carries a full frame for it. Anything that can desync
// the shared dictionary — a transport error, a non-200 response, or an
// acknowledgement whose dictionary length disagrees with the encoder's —
// abandons the session wholesale: fresh session id, fresh dictionary,
// bumped epoch, every series re-established by full upload.
//
// One client per goroutine; not safe for concurrent use.
type streamClient struct {
	baseURL  string
	httpc    *http.Client
	idPrefix string
	idSerial int
	id       string

	enc      *profdb.DeltaEncoder
	shadow   *profdb.DeltaDecoder
	cursors  map[string]*profdb.SeriesCursor
	epoch    uint64
	batchSeq uint64

	// Accounting for RESULT lines and gates.
	sentBatches int64
	deltaFrames int64
	fullFrames  int64
	wireBytes   int64
	resyncs     int64 // whole-session resets
	nacks       int64 // per-series NACKs received
}

// newStreamClient opens a session against baseURL. idPrefix must be
// unique per client (it namespaces the deterministic session ids).
func newStreamClient(httpc *http.Client, baseURL, idPrefix string) *streamClient {
	c := &streamClient{baseURL: baseURL, httpc: httpc, idPrefix: idPrefix}
	c.reset()
	c.resyncs = 0 // the initial session is not a resync
	return c
}

// reset abandons the current session: every series re-establishes with a
// full frame under a new epoch, through a new session id and dictionary.
func (c *streamClient) reset() {
	c.idSerial++
	c.id = fmt.Sprintf("%s-%d", c.idPrefix, c.idSerial)
	c.enc = profdb.NewDeltaEncoder()
	c.shadow = profdb.NewDeltaDecoder()
	// The shadow only replays frames this client encoded; re-verifying
	// their checksums would double the client's per-upload walk cost.
	c.shadow.TrustChecksums = true
	c.cursors = make(map[string]*profdb.SeriesCursor)
	c.epoch++
	c.batchSeq = 0
	c.resyncs++
}

// sendResult reports one send round: which series were rejected (their
// current profiles were not ingested and should be resent) and whether
// the whole session reset (after a reset the server may or may not have
// applied the batch — callers needing exactly-once must arrange the
// failure injection so undelivered batches were not applied).
type sendResult struct {
	Acked  int
	Nacked map[string]bool
	Reset  bool
}

// send uploads one batch carrying the current state of each profile:
// deltas for established series, full frames otherwise. Profiles may be
// mutated freely by the caller between sends.
func (c *streamClient) send(ps []*profiler.Profile) (sendResult, error) {
	return c.post(ps, false)
}

// closeSession sends an empty Close batch and forgets the session.
func (c *streamClient) closeSession() error {
	_, err := c.post(nil, true)
	// The session is gone server-side either way; start fresh next time.
	c.reset()
	c.resyncs--
	return err
}

func (c *streamClient) post(ps []*profiler.Profile, closeBatch bool) (sendResult, error) {
	c.batchSeq++
	b := profdb.StreamBatch{Seq: c.batchSeq, Close: closeBatch}
	keys := make([]string, 0, len(ps))
	for _, p := range ps {
		key := profstore.LabelsOf(p.Meta).Key()
		keys = append(keys, key)
		cur := c.cursors[key]
		if cur == nil {
			cur = &profdb.SeriesCursor{}
			c.cursors[key] = cur
		}
		var fr profdb.StreamFrame
		encoded := false
		if cur.Base != nil {
			df, ok, err := c.enc.EncodeDeltaFrom(cur.Base, cur.Sum, p, c.epoch, cur.Seq+1)
			if err != nil {
				return sendResult{}, err
			}
			if ok {
				fr, encoded = df, true
				c.deltaFrames++
			}
		}
		if !encoded {
			ff, err := c.enc.EncodeFull(p, c.epoch, cur.Seq+1)
			if err != nil {
				return sendResult{}, err
			}
			fr = ff
			c.fullFrames++
		}
		b.Frames = append(b.Frames, fr)
	}

	var buf bytes.Buffer
	if err := profdb.WriteBatch(gob.NewEncoder(&buf), &b); err != nil {
		return sendResult{}, err
	}
	c.sentBatches++
	c.wireBytes += int64(buf.Len())

	resp, err := c.httpc.Post(c.baseURL+"/stream?session="+c.id, "application/octet-stream", &buf)
	if err != nil {
		c.reset()
		return sendResult{Reset: true}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		c.reset()
		return sendResult{Reset: true}, fmt.Errorf("stream: HTTP %d: %s", resp.StatusCode, eb.Error)
	}
	var ack streamAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		c.reset()
		return sendResult{Reset: true}, fmt.Errorf("stream: decode ack: %w", err)
	}
	io.Copy(io.Discard, resp.Body)

	res := sendResult{Nacked: make(map[string]bool)}
	for _, n := range ack.Nacks {
		res.Nacked[n.Series] = true
		c.nacks++
	}
	// Advance the shadow state exactly as the server did: dictionary
	// additions for every frame, apply only for the acknowledged ones.
	for i := range b.Frames {
		fr := &b.Frames[i]
		if err := c.shadow.AddFrames(fr); err != nil {
			c.reset()
			return sendResult{Reset: true}, err
		}
		cur := c.cursors[keys[i]]
		if res.Nacked[keys[i]] {
			// The server's cursor is stale or poisoned; a fresh local
			// cursor makes the next frame for this series a full one.
			*cur = profdb.SeriesCursor{}
			continue
		}
		if _, err := c.shadow.Apply(cur, fr); err != nil {
			c.reset()
			return sendResult{Reset: true}, fmt.Errorf("stream: shadow apply: %w", err)
		}
		res.Acked++
	}
	if ack.Dict != c.enc.DictLen() {
		// The server saw a different frame history (restart, eviction, a
		// lost batch): nothing referencing the old dictionary can be
		// trusted, so start over.
		c.reset()
		res.Reset = true
	}
	return res, nil
}
