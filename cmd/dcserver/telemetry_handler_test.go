package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"deepcontext/internal/profdb"
	"deepcontext/internal/profstore"
	"deepcontext/internal/telemetry"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	clock := &testClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
	ts, _ := newTestServer(t, clock, profdb.DefaultMaxBytes)

	resp := postIngest(t, ts, dcpBytes(t, testProfile("UNet", 1)))
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: HTTP %d", resp.StatusCode)
	}
	if code, _ := getBody(t, ts.URL+"/hotspots?top=5"); code != http.StatusOK {
		t.Fatalf("hotspots: HTTP %d", code)
	}

	code, expo := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", code)
	}
	for _, want := range []string{
		"# TYPE dcserver_requests_total counter",
		`dcserver_requests_total{code="2xx",endpoint="/ingest"} 1`,
		`dcserver_requests_total{code="4xx",endpoint="/ingest"} 0`,
		"# TYPE dcserver_request_seconds histogram",
		`dcserver_request_seconds_bucket{endpoint="/hotspots",le="+Inf"} 1`,
		"dcserver_inflight_requests",
		"profstore_ingested_profiles_total 1",
		"profstore_ingest_seconds_count 1",
		"profstore_cache_entries",
		"profstore_trend_series",
		"profstore_index_frames",
		"go_goroutines",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// A scrape observes itself on the next render.
	_, expo2 := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(expo2, `dcserver_requests_total{code="2xx",endpoint="/metrics"} 1`) {
		t.Error("second scrape does not count the first")
	}
}

type eventsResponse struct {
	Total   int64             `json:"total"`
	Dropped int64             `json:"dropped"`
	Events  []telemetry.Event `json:"events"`
}

func TestEventsEndpoint(t *testing.T) {
	clock := &testClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
	store := profstore.New(profstore.Config{Window: time.Minute, Now: clock.Now})
	// A nanosecond threshold journals every request as slow, giving the
	// endpoint something to filter.
	ts := httptest.NewServer(newHandler(store, profdb.DefaultMaxBytes, time.Nanosecond, false))
	t.Cleanup(ts.Close)

	resp := postIngest(t, ts, dcpBytes(t, testProfile("UNet", 1)))
	resp.Body.Close()
	clock.Advance(2 * time.Minute)
	// The second ingest lands in a later window, closing the first — the
	// close is what puts a window_close event in the journal.
	resp = postIngest(t, ts, dcpBytes(t, testProfile("UNet", 2)))
	resp.Body.Close()
	if code, _ := getBody(t, ts.URL+"/hotspots?top=3"); code != http.StatusOK {
		t.Fatalf("hotspots: HTTP %d", code)
	}

	code, body := getBody(t, ts.URL+"/debug/events")
	if code != http.StatusOK {
		t.Fatalf("/debug/events: HTTP %d: %s", code, body)
	}
	var ev eventsResponse
	if err := json.Unmarshal([]byte(body), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Total == 0 || len(ev.Events) == 0 {
		t.Fatalf("no events recorded: %s", body)
	}
	kinds := map[string]bool{}
	for _, e := range ev.Events {
		kinds[e.Kind] = true
	}
	for _, want := range []string{"slow_request", "window_close"} {
		if !kinds[want] {
			t.Errorf("journal missing a %q event (got %v)", want, kinds)
		}
	}

	// kind filtering, and seq cursoring off the filtered view.
	code, body = getBody(t, ts.URL+"/debug/events?kind=slow_request&limit=2")
	if code != http.StatusOK {
		t.Fatalf("filtered: HTTP %d", code)
	}
	var slow eventsResponse
	if err := json.Unmarshal([]byte(body), &slow); err != nil {
		t.Fatal(err)
	}
	if len(slow.Events) == 0 || len(slow.Events) > 2 {
		t.Fatalf("kind+limit filter returned %d events", len(slow.Events))
	}
	for _, e := range slow.Events {
		if e.Kind != "slow_request" {
			t.Fatalf("kind filter leaked a %q event", e.Kind)
		}
		if e.Fields["query"] == "" && e.Message == "/hotspots" {
			t.Fatalf("slow_request for /hotspots lost its query string: %+v", e)
		}
	}
	cursor := slow.Events[0].Seq
	code, body = getBody(t, ts.URL+"/debug/events?since_seq="+strconv.FormatInt(cursor, 10))
	if code != http.StatusOK {
		t.Fatalf("since_seq: HTTP %d", code)
	}
	var after eventsResponse
	if err := json.Unmarshal([]byte(body), &after); err != nil {
		t.Fatal(err)
	}
	for _, e := range after.Events {
		if e.Seq <= cursor {
			t.Fatalf("since_seq=%d returned seq %d", cursor, e.Seq)
		}
	}

	for _, bad := range []string{"?bogus=1", "?limit=x", "?limit=-1", "?since=never", "?since_seq=-2"} {
		if code, _ := getBody(t, ts.URL+"/debug/events"+bad); code != http.StatusBadRequest {
			t.Errorf("/debug/events%s: HTTP %d, want 400", bad, code)
		}
	}
}
