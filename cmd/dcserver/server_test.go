package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"deepcontext/internal/cct"
	"deepcontext/internal/profdb"
	"deepcontext/internal/profiler"
	"deepcontext/internal/profstore"
)

var testBase = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testProfile(workload string, scale float64) *profiler.Profile {
	tree := cct.New()
	gid := tree.MetricID(cct.MetricGPUTime)
	leaf := tree.InsertPath([]cct.Frame{
		cct.PythonFrame("train.py", 10, "main"),
		cct.OperatorFrame("aten::conv2d"),
		{Kind: cct.KindKernel, Name: "gemm", Lib: "[gpu]", PC: 0x100},
	})
	tree.AddMetric(leaf, gid, 100*scale)
	return &profiler.Profile{
		Tree: tree,
		Meta: profiler.Meta{Workload: workload, Vendor: "Nvidia", Framework: "pytorch"},
	}
}

func dcpBytes(t *testing.T, p *profiler.Profile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := profdb.Save(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, clock *testClock, maxBody int64) (*httptest.Server, *profstore.Store) {
	t.Helper()
	store := profstore.New(profstore.Config{Window: time.Minute, Now: clock.Now})
	ts := httptest.NewServer(newHandler(store, maxBody, defaultSlowRequest, false))
	t.Cleanup(ts.Close)
	return ts, store
}

func postIngest(t *testing.T, ts *httptest.Server, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/ingest", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJSON(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestIngestAndQueryEndpoints(t *testing.T) {
	clock := &testClock{t: testBase}
	ts, _ := newTestServer(t, clock, profdb.DefaultMaxBytes)

	// Single profile plus a v2 bundle through the same endpoint.
	resp := postIngest(t, ts, dcpBytes(t, testProfile("UNet", 1)))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("ingest Content-Type = %q", ct)
	}
	var ir struct {
		Ingested int      `json:"ingested"`
		Series   []string `json:"series"`
	}
	decodeJSON(t, resp, &ir)
	if ir.Ingested != 1 || len(ir.Series) != 1 || ir.Series[0] != "unet/nvidia/pytorch" {
		t.Fatalf("ingest response = %+v", ir)
	}

	var bundle bytes.Buffer
	if err := profdb.SaveBundle(&bundle, []profdb.Entry{
		{Name: "a", Profile: testProfile("UNet", 2)},
		{Name: "b", Profile: testProfile("DLRM", 4)},
	}); err != nil {
		t.Fatal(err)
	}
	resp = postIngest(t, ts, bundle.Bytes())
	var ir2 struct {
		Ingested int `json:"ingested"`
	}
	decodeJSON(t, resp, &ir2)
	if ir2.Ingested != 2 {
		t.Fatalf("bundle ingest = %+v", ir2)
	}

	// Hotspots across everything, then filtered.
	var hot struct {
		Metric string `json:"metric"`
		Rows   []struct {
			Label string  `json:"label"`
			Excl  float64 `json:"excl"`
		} `json:"rows"`
	}
	resp, err := http.Get(ts.URL + "/hotspots?top=5")
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, resp, &hot)
	if hot.Metric != cct.MetricGPUTime || len(hot.Rows) == 0 {
		t.Fatalf("hotspots = %+v", hot)
	}
	if hot.Rows[0].Label != "gemm" || hot.Rows[0].Excl != 700 {
		t.Fatalf("top row = %+v", hot.Rows[0])
	}
	resp, err = http.Get(ts.URL + "/hotspots?workload=DLRM")
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, resp, &hot)
	if len(hot.Rows) == 0 || hot.Rows[0].Excl != 400 {
		t.Fatalf("filtered hotspots = %+v", hot.Rows)
	}
	// No data for the filter → 404; a bad metric name → 400.
	resp, err = http.Get(ts.URL + "/hotspots?workload=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing-filter status = %d", resp.StatusCode)
	}
	for _, ep := range []string{"/hotspots?metric=bogus", "/flame?metric=bogus"} {
		resp, err = http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s status = %d, want 400", ep, resp.StatusCode)
		}
	}

	// Windows, stats, healthz.
	var wins []profstore.WindowInfo
	resp, err = http.Get(ts.URL + "/windows")
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, resp, &wins)
	if len(wins) != 1 || wins[0].Profiles != 3 {
		t.Fatalf("windows = %+v", wins)
	}
	var st struct {
		Store profstore.Stats `json:"store"`
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, resp, &st)
	if st.Store.Ingested != 3 {
		t.Fatalf("stats = %+v", st)
	}
	var hz struct {
		Status string `json:"status"`
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, resp, &hz)
	if hz.Status != "ok" {
		t.Fatalf("healthz = %+v", hz)
	}

	// Flame graph: HTML and folded renderings of the aggregate.
	resp, err = http.Get(ts.URL + "/flame")
	if err != nil {
		t.Fatal(err)
	}
	html, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(html), "<html") {
		t.Fatalf("flame html status=%d body=%.80s", resp.StatusCode, html)
	}
	resp, err = http.Get(ts.URL + "/flame?format=folded")
	if err != nil {
		t.Fatal(err)
	}
	folded, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(folded), "gemm") {
		t.Fatalf("folded = %.120s", folded)
	}

	// Analyzer over the aggregate.
	var ar struct {
		Report struct {
			Findings int `json:"findings"`
			Issues   []struct {
				Analysis string `json:"analysis"`
				Severity string `json:"severity"`
			} `json:"issues"`
		} `json:"report"`
	}
	resp, err = http.Get(ts.URL + "/analyze")
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, resp, &ar)
	if ar.Report.Findings != len(ar.Report.Issues) {
		t.Fatalf("analyze = %+v", ar)
	}
}

func TestDiffEndpointAcrossWindows(t *testing.T) {
	clock := &testClock{t: testBase}
	ts, _ := newTestServer(t, clock, profdb.DefaultMaxBytes)

	postIngest(t, ts, dcpBytes(t, testProfile("UNet", 1))).Body.Close()
	clock.Advance(time.Minute)
	postIngest(t, ts, dcpBytes(t, testProfile("UNet", 3))).Body.Close()

	q := url.Values{}
	q.Set("before", testBase.Format(time.RFC3339Nano))
	q.Set("after", testBase.Add(time.Minute).Format(time.RFC3339Nano))
	q.Set("metric", cct.MetricGPUTime)
	var dr struct {
		Net  float64 `json:"net"`
		Rows []struct {
			Label  string  `json:"label"`
			Delta  float64 `json:"delta"`
			Before float64 `json:"before"`
			After  float64 `json:"after"`
		} `json:"rows"`
	}
	resp, err := http.Get(ts.URL + "/diff?" + q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, resp, &dr)
	if dr.Net != 200 || len(dr.Rows) != 1 {
		t.Fatalf("diff = %+v", dr)
	}
	if r := dr.Rows[0]; r.Label != "gemm" || r.Delta != 200 || r.Before != 100 || r.After != 300 {
		t.Fatalf("diff row = %+v", r)
	}

	// The signed diff flame renders too.
	resp, err = http.Get(ts.URL + "/flame?format=folded&" + q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "gemm") {
		t.Fatalf("diff flame status=%d body=%.120s", resp.StatusCode, body)
	}

	// Missing params → 400.
	resp, err = http.Get(ts.URL + "/diff")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bare diff status = %d", resp.StatusCode)
	}
}

func TestMethodAndBodyRejections(t *testing.T) {
	clock := &testClock{t: testBase}
	ts, _ := newTestServer(t, clock, 512)

	// Wrong methods → 405.
	resp, err := http.Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest status = %d", resp.StatusCode)
	}
	for _, ep := range []string{"/hotspots", "/diff", "/flame", "/analyze", "/regressions", "/windows", "/stats", "/healthz"} {
		resp, err := http.Post(ts.URL+ep, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s status = %d", ep, resp.StatusCode)
		}
	}

	// HEAD stays allowed for probes (served body-suppressed by net/http).
	resp, err = http.Head(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD /healthz status = %d", resp.StatusCode)
	}

	// Corrupt body → 400 with a JSON error.
	resp = postIngest(t, ts, []byte("definitely not a profile"))
	var eb errorBody
	decodeJSON(t, resp, &eb)
	if resp.StatusCode != http.StatusBadRequest || eb.Error == "" {
		t.Fatalf("corrupt ingest: status=%d body=%+v", resp.StatusCode, eb)
	}

	// Oversized body (server capped at 512 bytes) → 413.
	big := dcpBytes(t, testProfile("UNet", 1))
	if len(big) <= 512 {
		t.Fatalf("fixture too small to exceed cap: %d bytes", len(big))
	}
	resp = postIngest(t, ts, big)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest status = %d", resp.StatusCode)
	}
}

// getBytes fetches one endpoint's full response body.
func getBytes(t *testing.T, ts *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s status = %d: %s", path, resp.StatusCode, body)
	}
	return body
}

// The acceptance criterion end-to-end: a server started with a data
// directory survives a restart with byte-identical /hotspots and /diff
// responses — whether the shutdown was graceful (snapshot written) or a
// hard kill (WAL-only recovery).
func TestRestartWithDataDirIsByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name     string
		graceful bool
	}{{"graceful-snapshot", true}, {"hard-kill-wal-only", false}} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			clock := &testClock{t: testBase}
			cfg := profstore.Config{Window: time.Minute, Now: clock.Now, Dir: dir}

			store := profstore.New(cfg)
			if _, err := store.Recover(); err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(newHandler(store, profdb.DefaultMaxBytes, defaultSlowRequest, false))
			postIngest(t, ts, dcpBytes(t, testProfile("UNet", 1))).Body.Close()
			postIngest(t, ts, dcpBytes(t, testProfile("DLRM", 2))).Body.Close()
			clock.Advance(time.Minute)
			postIngest(t, ts, dcpBytes(t, testProfile("UNet", 5))).Body.Close()

			q := url.Values{}
			q.Set("before", testBase.Format(time.RFC3339Nano))
			q.Set("after", testBase.Add(time.Minute).Format(time.RFC3339Nano))
			diffPath := "/diff?" + q.Encode()
			wantHot := getBytes(t, ts, "/hotspots?top=10")
			wantDiff := getBytes(t, ts, diffPath)
			wantWindows := getBytes(t, ts, "/windows")
			ts.Close()
			if tc.graceful {
				if _, err := store.Snapshot(); err != nil {
					t.Fatal(err)
				}
			}
			store.Close()

			revived := profstore.New(cfg)
			rs, err := revived.Recover()
			if err != nil {
				t.Fatal(err)
			}
			defer revived.Close()
			if rs.SnapshotLoaded != tc.graceful {
				t.Fatalf("snapshot loaded = %v, want %v (%+v)", rs.SnapshotLoaded, tc.graceful, rs)
			}
			ts2 := httptest.NewServer(newHandler(revived, profdb.DefaultMaxBytes, defaultSlowRequest, false))
			defer ts2.Close()
			if got := getBytes(t, ts2, "/hotspots?top=10"); !bytes.Equal(got, wantHot) {
				t.Fatalf("/hotspots changed across restart:\n got %s\nwant %s", got, wantHot)
			}
			if got := getBytes(t, ts2, diffPath); !bytes.Equal(got, wantDiff) {
				t.Fatalf("/diff changed across restart:\n got %s\nwant %s", got, wantDiff)
			}
			if got := getBytes(t, ts2, "/windows"); !bytes.Equal(got, wantWindows) {
				t.Fatalf("/windows changed across restart:\n got %s\nwant %s", got, wantWindows)
			}

			// /stats exposes the persistence counters.
			var st struct {
				Store profstore.Stats `json:"store"`
			}
			resp, err := http.Get(ts2.URL + "/stats")
			if err != nil {
				t.Fatal(err)
			}
			decodeJSON(t, resp, &st)
			if st.Store.Persist == nil || st.Store.Persist.Dir != dir || st.Store.Persist.Recovery == nil {
				t.Fatalf("persist stats = %+v", st.Store.Persist)
			}
		})
	}
}

// shareProfile builds a two-kernel profile whose gemm/relu GPU-time split
// the trend detector will track as shares.
func shareProfile(workload string, gemm, relu float64) *profiler.Profile {
	tree := cct.New()
	gid := tree.MetricID(cct.MetricGPUTime)
	py := cct.PythonFrame("train.py", 10, "main")
	g := tree.InsertPath([]cct.Frame{py, cct.OperatorFrame("aten::conv2d"),
		{Kind: cct.KindKernel, Name: "gemm", Lib: "[gpu]", PC: 0x100}})
	tree.AddMetric(g, gid, gemm)
	r := tree.InsertPath([]cct.Frame{py, cct.OperatorFrame("aten::relu"),
		{Kind: cct.KindKernel, Name: "relu", Lib: "[gpu]", PC: 0x108}})
	tree.AddMetric(r, gid, relu)
	return &profiler.Profile{
		Tree: tree,
		Meta: profiler.Meta{Workload: workload, Vendor: "Nvidia", Framework: "pytorch"},
	}
}

// ingestShareWindows lands one shareProfile per window: gemm at 70 through
// window 5, then 180 (share 0.7 → ~0.857) — a sustained shift the default
// detector (warmup 3, K 3) confirms in window 8. The window index is read
// off the clock, so consecutive calls continue the same schedule.
func ingestShareWindows(t *testing.T, ts *httptest.Server, clock *testClock, windows int) {
	t.Helper()
	for i := 0; i < windows; i++ {
		gemm := 70.0
		if clock.Now().Sub(testBase) >= 6*time.Minute {
			gemm = 180
		}
		postIngest(t, ts, dcpBytes(t, shareProfile("UNet", gemm, 30))).Body.Close()
		clock.Advance(time.Minute)
	}
}

func TestRegressionsEndpoint(t *testing.T) {
	clock := &testClock{t: testBase}
	ts, _ := newTestServer(t, clock, profdb.DefaultMaxBytes)
	ingestShareWindows(t, ts, clock, 10)

	type rr struct {
		Count int                   `json:"count"`
		Trend *profstore.TrendStats `json:"trend"`
		Rows  []struct {
			Series    string `json:"series"`
			Frame     string `json:"frame"`
			Direction int    `json:"direction"`
			Severity  string `json:"severity"`
			Message   string `json:"message"`
			FlameURL  string `json:"flame_url"`
		} `json:"rows"`
	}
	var up rr
	resp, err := http.Get(ts.URL + "/regressions")
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, resp, &up)
	if up.Count != 1 || len(up.Rows) != 1 {
		t.Fatalf("default (up) view = %+v", up)
	}
	row := up.Rows[0]
	if row.Frame != "gemm" || row.Direction != 1 || row.Series != "unet/nvidia/pytorch" {
		t.Fatalf("row = %+v", row)
	}
	// 0.7 → ~0.857 is more than twice the 0.05 band over the baseline.
	if row.Severity != "critical" || !strings.Contains(row.Message, "rose") {
		t.Fatalf("grading: %+v", row)
	}
	if up.Trend == nil || up.Trend.Series != 1 || up.Trend.Findings != 2 {
		t.Fatalf("trend stats = %+v", up.Trend)
	}

	// The drill-down link renders the signed diff flame directly.
	if row.FlameURL == "" {
		t.Fatal("no flame_url")
	}
	resp, err = http.Get(ts.URL + row.FlameURL)
	if err != nil {
		t.Fatal(err)
	}
	html, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(html), "<html") {
		t.Fatalf("flame_url %q: status=%d body=%.80s", row.FlameURL, resp.StatusCode, html)
	}

	// Direction and label filters.
	var down rr
	resp, err = http.Get(ts.URL + "/regressions?dir=down")
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, resp, &down)
	if down.Count != 1 || down.Rows[0].Frame != "relu" || down.Rows[0].Severity != "info" {
		t.Fatalf("down view = %+v", down)
	}
	var both rr
	resp, err = http.Get(ts.URL + "/regressions?dir=both")
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, resp, &both)
	if both.Count != 2 {
		t.Fatalf("both view = %+v", both)
	}
	var none rr
	resp, err = http.Get(ts.URL + "/regressions?workload=DLRM")
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, resp, &none)
	if none.Count != 0 {
		t.Fatalf("filtered view = %+v", none)
	}

	// Malformed parameters are the client's mistake.
	for _, q := range []string{"?dir=sideways", "?limit=-1", "?limit=x", "?since=nope"} {
		resp, err := http.Get(ts.URL + "/regressions" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /regressions%s status = %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestWebhookNotifierPostsNewFindings(t *testing.T) {
	clock := &testClock{t: testBase}
	ts, store := newTestServer(t, clock, profdb.DefaultMaxBytes)

	var mu sync.Mutex
	var posts [][]byte
	recv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		mu.Lock()
		posts = append(posts, body)
		mu.Unlock()
	}))
	defer recv.Close()

	// Drive poll() directly: the timing loop is trivial, the dedup and
	// payload logic is what needs holding still.
	n := &notifier{store: store, url: recv.URL, client: recv.Client(), seen: map[string]bool{}}

	// Priming poll on a quiet store: nothing posted, ever after restart.
	ingestShareWindows(t, ts, clock, 5)
	if posted, err := n.poll(); err != nil || posted != 0 {
		t.Fatalf("priming poll: posted=%d err=%v", posted, err)
	}

	// The shift confirms (windows 6..8): one POST with both findings.
	ingestShareWindows(t, ts, clock, 5)
	posted, err := n.poll()
	if err != nil || posted != 2 {
		t.Fatalf("confirming poll: posted=%d err=%v", posted, err)
	}
	mu.Lock()
	got := len(posts)
	var payload webhookPayload
	if got == 1 {
		if err := json.Unmarshal(posts[0], &payload); err != nil {
			t.Fatal(err)
		}
	}
	mu.Unlock()
	if got != 1 || payload.Source != "dcserver" || payload.Count != 2 {
		t.Fatalf("webhook delivery: posts=%d payload=%+v", got, payload)
	}
	frames := map[string]int{}
	for _, f := range payload.Findings {
		frames[f.Frame] = f.Direction
	}
	if frames["gemm"] != 1 || frames["relu"] != -1 {
		t.Fatalf("payload findings = %+v", payload.Findings)
	}

	// Already-notified findings stay quiet on the next poll.
	if posted, err := n.poll(); err != nil || posted != 0 {
		t.Fatalf("repeat poll: posted=%d err=%v", posted, err)
	}
	mu.Lock()
	got = len(posts)
	mu.Unlock()
	if got != 1 {
		t.Fatalf("dedup failed: %d posts", got)
	}
}

func TestConcurrentHTTPIngest(t *testing.T) {
	clock := &testClock{t: testBase}
	ts, store := newTestServer(t, clock, profdb.DefaultMaxBytes)

	const clients = 8
	const per = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients*per)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				body := dcpBytes(t, testProfile(fmt.Sprintf("W%d", c%3), 1))
				resp, err := http.Post(ts.URL+"/ingest", "application/octet-stream", bytes.NewReader(body))
				if err != nil {
					errs <- err
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := store.Stats().Ingested; got != clients*per {
		t.Fatalf("ingested = %d, want %d", got, clients*per)
	}
}
