package main

// The /regressions surface and the webhook notifier: both read the
// profstore trend detector's confirmed change points, grade them with the
// analyzer's trend rules, and attach a signed-flame drill-down link so one
// click shows which calling contexts grew between the flagged windows.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"sync"
	"time"

	"deepcontext/internal/analyzer"
	"deepcontext/internal/profstore"
	"deepcontext/internal/profstore/trend"
)

// regressionRow is one finding on the wire: the raw change point plus its
// analyzer grade and the signed-diff flame link for drill-down.
type regressionRow struct {
	trend.Finding
	Severity   string `json:"severity"`
	Analysis   string `json:"analysis"`
	Message    string `json:"message"`
	Suggestion string `json:"suggestion,omitempty"`
	// FlameURL renders the before→after signed diff flame for the
	// finding's series (relative to the server root; valid while both
	// windows are retained).
	FlameURL string `json:"flame_url"`
}

// regressionRows grades findings into wire rows.
func regressionRows(findings []trend.Finding) []regressionRow {
	rows := make([]regressionRow, 0, len(findings))
	for _, f := range findings {
		is := analyzer.GradeTrend(f)
		rows = append(rows, regressionRow{
			Finding:    f,
			Severity:   is.Severity.String(),
			Analysis:   is.Analysis,
			Message:    is.Message,
			Suggestion: is.Suggestion,
			FlameURL:   flameURL(f),
		})
	}
	return rows
}

// flameURL builds the signed-diff drill-down link for one finding.
func flameURL(f trend.Finding) string {
	q := url.Values{}
	q.Set("before", strconv.FormatInt(f.BeforeUnixNano, 10))
	q.Set("after", strconv.FormatInt(f.AfterUnixNano, 10))
	q.Set("workload", f.Workload)
	q.Set("vendor", f.Vendor)
	q.Set("framework", f.Framework)
	q.Set("metric", f.Metric)
	return "/flame?" + q.Encode()
}

// parseRegressionQuery maps /regressions query parameters to a store
// query. dir selects up (share increases — regressions, the default),
// down (improvements) or both; limit bounds the result to the newest N
// findings (default 100, 0 = unbounded).
func parseRegressionQuery(q url.Values) (profstore.RegressionQuery, error) {
	out := profstore.RegressionQuery{
		Filter: profstore.Labels{
			Workload:  q.Get("workload"),
			Vendor:    q.Get("vendor"),
			Framework: q.Get("framework"),
		},
		Direction: 1,
		Limit:     100,
	}
	switch dir := q.Get("dir"); dir {
	case "", "up":
		// regressions — the default view
	case "down":
		out.Direction = -1
	case "both":
		out.Direction = 0
	default:
		return out, fmt.Errorf("bad dir %q (want up, down or both)", dir)
	}
	if s := q.Get("since"); s != "" {
		t, err := parseTime(s)
		if err != nil {
			return out, err
		}
		out.Since = t
	}
	if s := q.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return out, fmt.Errorf("bad limit %q (want a non-negative integer)", s)
		}
		out.Limit = n
	}
	return out, nil
}

// GET /regressions?workload=&vendor=&framework=&since=&dir=up|down|both&limit=
// — confirmed change points, graded and linked to their diff flames.
func (s *server) handleRegressions(w http.ResponseWriter, r *http.Request) {
	q, err := parseRegressionQuery(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var rows []regressionRow
	var stats *profstore.TrendStats
	var cov *profstore.Coverage
	if s.cluster != nil {
		// Every node sweeps and reports raw findings; the coordinator
		// ownership-filters, merges in canonical order and applies the
		// limit globally. Trend stats sum across nodes.
		findings, st, coverage, err := s.cluster.Regressions(r.Context(), q)
		if err != nil {
			writeQueryError(w, err)
			return
		}
		rows, stats, cov = regressionRows(findings), st, coverage
	} else {
		// Sweep first so windows that closed since the last ingest are
		// observed — findings stay current even on a quiet store.
		s.store.TrendSweep()
		rows, stats = regressionRows(s.store.Regressions(q)), s.store.Stats().Trend
	}
	writeJSON(w, struct {
		Count    int                   `json:"count"`
		Trend    *profstore.TrendStats `json:"trend"`
		Coverage *profstore.Coverage   `json:"coverage,omitempty"`
		Rows     []regressionRow       `json:"rows"`
	}{len(rows), stats, cov, rows})
}

// webhookPayload is the body POSTed to -webhook-url: the newly confirmed
// findings since the previous poll, graded like /regressions rows.
type webhookPayload struct {
	Source   string          `json:"source"`
	Count    int             `json:"count"`
	Findings []regressionRow `json:"findings"`
}

// encodeWebhookPayload builds the webhook body for a batch of findings.
func encodeWebhookPayload(findings []trend.Finding) ([]byte, error) {
	rows := regressionRows(findings)
	return json.Marshal(webhookPayload{Source: "dcserver", Count: len(rows), Findings: rows})
}

// findingKey identifies one confirmed change point for webhook dedup.
// Series and frame labels never contain '\x00'.
func findingKey(f trend.Finding) string {
	return fmt.Sprintf("%s\x00%s\x00%d\x00%d", f.Series, f.Frame, f.AfterUnixNano, f.Direction)
}

// notifier polls the store and POSTs newly confirmed findings (both
// directions) to a webhook. The first poll primes the seen-set without
// posting, so a restart does not replay findings already notified before
// the previous shutdown. Delivery is at-most-once: a failed POST is
// logged and not retried.
type notifier struct {
	store    *profstore.Store
	url      string
	interval time.Duration
	client   *http.Client

	mu     sync.Mutex
	seen   map[string]bool
	primed bool

	stop chan struct{}
	done chan struct{}
}

// startNotifier begins polling in the background; Close stops it.
func startNotifier(store *profstore.Store, url string, interval time.Duration) *notifier {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	n := &notifier{
		store:    store,
		url:      url,
		interval: interval,
		client:   &http.Client{Timeout: 30 * time.Second},
		seen:     make(map[string]bool),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go func() {
		defer close(n.done)
		tick := time.NewTicker(n.interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				if _, err := n.poll(); err != nil {
					fmt.Fprintln(os.Stderr, "dcserver: webhook:", err)
				}
			case <-n.stop:
				return
			}
		}
	}()
	return n
}

// Close stops the polling goroutine and waits for it to exit.
func (n *notifier) Close() {
	close(n.stop)
	<-n.done
}

// poll sweeps the store, diffs the retained findings against the
// seen-set, and POSTs the fresh ones. It returns how many findings were
// posted (0 on the priming poll and when nothing is new).
func (n *notifier) poll() (int, error) {
	n.store.TrendSweep()
	findings := n.store.Regressions(profstore.RegressionQuery{})

	n.mu.Lock()
	cur := make(map[string]bool, len(findings))
	var fresh []trend.Finding
	for _, f := range findings {
		k := findingKey(f)
		cur[k] = true
		if !n.seen[k] {
			fresh = append(fresh, f)
		}
	}
	prime := !n.primed
	n.seen, n.primed = cur, true
	n.mu.Unlock()

	if prime || len(fresh) == 0 {
		return 0, nil
	}
	body, err := encodeWebhookPayload(fresh)
	if err != nil {
		return 0, err
	}
	resp, err := n.client.Post(n.url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, fmt.Errorf("POST %s: %w", n.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return 0, fmt.Errorf("POST %s: HTTP %d", n.url, resp.StatusCode)
	}
	return len(fresh), nil
}
