package main

// The /cluster/* control surface — only registered when dcserver boots
// with -node-id/-peers. Four groups:
//
//	POST /cluster/partials   one node's share of a scatter-gather query
//	POST /cluster/ingest     forwarded profiles from the ingest router
//	POST /cluster/export     }
//	POST /cluster/import     } the staged join/handoff protocol —
//	POST /cluster/table      } see internal/cluster/handoff.go
//	POST /cluster/drop       }
//	POST /cluster/join       drive a membership change from this node
//	GET  /cluster/status     routing table + per-peer health
//
// Peers are trusted: the /cluster/* surface shares the public listener,
// so deployments that cannot trust the network should front it with
// transport auth (see docs/OPERATIONS.md §11).

import (
	"encoding/json"
	"fmt"
	"net/http"

	"deepcontext/internal/cluster"
	"deepcontext/internal/profstore"
)

// readJSONBody decodes a bounded JSON request body into v.
func (s *server) readJSONBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: decode request: %w", err))
		return false
	}
	return true
}

// POST /cluster/partials — evaluate one scatter-gather share locally.
func (s *server) handleClusterPartials(w http.ResponseWriter, r *http.Request) {
	var req cluster.PartialsRequest
	if !s.readJSONBody(w, r, &req) {
		return
	}
	resp, err := cluster.ServePartials(r.Context(), s.store, &req)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, resp)
}

// POST /cluster/ingest — apply a forwarded batch of full v3 frames.
func (s *server) handleClusterIngest(w http.ResponseWriter, r *http.Request) {
	if !s.beginWrite() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	defer s.endWrite()
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	sum, err := cluster.ApplyForward(s.store, body, s.maxBody)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSONStatus(w, http.StatusAccepted, sum)
}

// POST /cluster/export — compute this node's handoff export for a
// proposed table.
func (s *server) handleClusterExport(w http.ResponseWriter, r *http.Request) {
	var req cluster.ExportRequest
	if !s.readJSONBody(w, r, &req) {
		return
	}
	if req.Table == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: export needs a proposed table"))
		return
	}
	set, err := cluster.ExportMoved(r.Context(), s.store, s.cluster.Self(), req.Table)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, struct {
		Set profstore.PartialSet `json:"set"`
	}{set})
}

// POST /cluster/import — install a handoff delivery (durable before the
// response).
func (s *server) handleClusterImport(w http.ResponseWriter, r *http.Request) {
	if !s.beginWrite() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	defer s.endWrite()
	var set profstore.PartialSet
	if !s.readJSONBody(w, r, &set) {
		return
	}
	n, err := cluster.ImportSet(s.store, set)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, struct {
		Imported int `json:"imported"`
	}{n})
}

// POST /cluster/table — commit a new routing table on this node.
func (s *server) handleClusterTable(w http.ResponseWriter, r *http.Request) {
	var t cluster.Table
	if !s.readJSONBody(w, r, &t) {
		return
	}
	if err := s.cluster.SetTable(&t); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, struct {
		Generation uint64 `json:"generation"`
	}{s.cluster.Table().Generation})
}

// POST /cluster/drop — drop every series this node no longer owns under
// its committed table.
func (s *server) handleClusterDrop(w http.ResponseWriter, r *http.Request) {
	if !s.beginWrite() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	defer s.endWrite()
	n, err := s.cluster.DropUnowned()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, struct {
		Dropped int `json:"dropped"`
	}{n})
}

// POST /cluster/join — drive a membership change from this node: body is
// the proposed table (generation bumped past the current one).
func (s *server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	var t cluster.Table
	if !s.readJSONBody(w, r, &t) {
		return
	}
	rep, err := s.cluster.Join(r.Context(), &t)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, rep)
}

// GET /cluster/status — routing table, per-peer health, degraded flag.
func (s *server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.cluster.Status(r.Context()))
}
