package main

import (
	"strings"
	"testing"
	"time"
)

// An endpoint absent from the exposition must render explicit n/a
// fragments, not silently vanish from the RESULT line.
func TestScrapedLatenciesEmptyExposition(t *testing.T) {
	got := scrapedLatencies("", "/ingest", "/hotspots")
	want := " ingest_p50_ms=n/a ingest_p99_ms=n/a hotspots_p50_ms=n/a hotspots_p99_ms=n/a"
	if got != want {
		t.Fatalf("scrapedLatencies on empty exposition = %q, want %q", got, want)
	}
}

// A histogram that exists but saw zero observations must not be
// interpolated — rank 0 against all-zero cumulative counts would
// fabricate a 0ms latency that looks like a measurement.
func TestScrapedLatenciesZeroObservations(t *testing.T) {
	expo := strings.Join([]string{
		`dcserver_request_seconds_bucket{endpoint="/ingest",le="0.001"} 0`,
		`dcserver_request_seconds_bucket{endpoint="/ingest",le="0.01"} 0`,
		`dcserver_request_seconds_bucket{endpoint="/ingest",le="+Inf"} 0`,
		``,
	}, "\n")
	if _, ok := endpointQuantiles(expo, "/ingest", 0.5); ok {
		t.Fatal("endpointQuantiles reported ok for a zero-observation histogram")
	}
	got := scrapedLatencies(expo, "/ingest")
	want := " ingest_p50_ms=n/a ingest_p99_ms=n/a"
	if got != want {
		t.Fatalf("scrapedLatencies on zero observations = %q, want %q", got, want)
	}
}

// A single overflow-only bucket has no finite bound to interpolate
// within; the quantile degrades to the last finite bound (zero) rather
// than dividing by an empty range.
func TestEndpointQuantilesSingleOverflowBucket(t *testing.T) {
	expo := `dcserver_request_seconds_bucket{endpoint="/ingest",le="+Inf"} 5` + "\n"
	qs, ok := endpointQuantiles(expo, "/ingest", 0.5, 0.99)
	if !ok {
		t.Fatal("endpointQuantiles reported no data for a populated overflow bucket")
	}
	for i, q := range qs {
		if q != 0 {
			t.Fatalf("quantile %d = %v, want 0s (no finite bound to interpolate)", i, q)
		}
	}
}

// The happy path still interpolates: all mass in one finite bucket puts
// every quantile inside it.
func TestEndpointQuantilesInterpolation(t *testing.T) {
	expo := strings.Join([]string{
		`dcserver_request_seconds_bucket{endpoint="/ingest",le="0.01"} 0`,
		`dcserver_request_seconds_bucket{endpoint="/ingest",le="0.1"} 10`,
		`dcserver_request_seconds_bucket{endpoint="/ingest",le="+Inf"} 10`,
		``,
	}, "\n")
	qs, ok := endpointQuantiles(expo, "/ingest", 0.5)
	if !ok {
		t.Fatal("endpointQuantiles reported no data")
	}
	want := time.Duration(0.055 * float64(time.Second))
	if diff := qs[0] - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("p50 = %v, want ~%v", qs[0], want)
	}
}
