package main

import (
	"encoding/json"
	"math"
	"net/url"
	"strconv"
	"testing"
	"unicode/utf8"

	"deepcontext/internal/profstore/trend"
)

// FuzzRegressionQueryParams holds the /regressions query parser to its
// contract: arbitrary raw query strings either parse into a well-formed
// store query or are rejected — never a panic, never an out-of-range
// direction, never a negative limit (which would silently mean
// "unbounded" to the store).
func FuzzRegressionQueryParams(f *testing.F) {
	f.Add("dir=up&limit=10")
	f.Add("dir=down&workload=UNet&vendor=Nvidia&framework=pytorch")
	f.Add("dir=both&since=2026-01-01T00:00:00Z")
	f.Add("since=1767225960000000000&limit=0")
	f.Add("dir=sideways")
	f.Add("limit=-3")
	f.Add("limit=9999999999999999999999")
	f.Add("since=not-a-time")
	f.Add("%gh&&=%zz")
	f.Fuzz(func(t *testing.T, raw string) {
		q, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		rq, err := parseRegressionQuery(q)
		if err != nil {
			return
		}
		if rq.Direction < -1 || rq.Direction > 1 {
			t.Fatalf("direction out of range for %q: %+v", raw, rq)
		}
		if rq.Limit < 0 {
			t.Fatalf("negative limit accepted for %q: %+v", raw, rq)
		}
		if d := q.Get("dir"); d != "" && d != "up" && d != "down" && d != "both" {
			t.Fatalf("bad dir %q accepted", d)
		}
	})
}

// FuzzTopKQueryParams holds the /topk query parser to the same contract:
// arbitrary raw query strings either parse into a well-formed store query
// or are rejected — never a panic, never a negative k (which would
// silently mean "unbounded" to the store), and the default k survives
// every unrelated parameter.
func FuzzTopKQueryParams(f *testing.F) {
	f.Add("k=10&metric=gpu_time_ns")
	f.Add("workload=UNet&vendor=Nvidia&framework=pytorch&k=0")
	f.Add("from=2026-01-01T00:00:00Z&to=1767225960000000000")
	f.Add("k=-1")
	f.Add("k=9999999999999999999999")
	f.Add("from=not-a-time")
	f.Add("%gh&&=%zz")
	f.Fuzz(func(t *testing.T, raw string) {
		q, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		tq, err := parseTopKQuery(q)
		if err != nil {
			return
		}
		if tq.k < 0 {
			t.Fatalf("negative k accepted for %q: %+v", raw, tq)
		}
		if q.Get("k") == "" && tq.k != 20 {
			t.Fatalf("default k = %d for %q, want 20", tq.k, raw)
		}
	})
}

// FuzzSearchQueryParams holds the /search query parser to its contract:
// never a panic, never an accepted empty frame (the store would scan for
// a label no tree can carry), never a negative limit.
func FuzzSearchQueryParams(f *testing.F) {
	f.Add("frame=gemm&limit=10")
	f.Add("frame=a%26b%3Dc&metric=cpu_time_ns")
	f.Add("limit=5")
	f.Add("frame=gemm&limit=-2")
	f.Add("frame=gemm&limit=9999999999999999999999")
	f.Add("frame=gemm&from=junk")
	f.Add("%gh&&=%zz")
	f.Fuzz(func(t *testing.T, raw string) {
		q, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		sq, err := parseSearchQuery(q)
		if err != nil {
			return
		}
		if sq.frame == "" {
			t.Fatalf("empty frame accepted for %q: %+v", raw, sq)
		}
		if sq.limit < 0 {
			t.Fatalf("negative limit accepted for %q: %+v", raw, sq)
		}
		if q.Get("limit") == "" && sq.limit != 50 {
			t.Fatalf("default limit = %d for %q, want 50", sq.limit, raw)
		}
	})
}

// FuzzWebhookPayloadEncoder round-trips arbitrary finding field values
// through the webhook body encoder: the payload must marshal, decode back
// to the same finding, and carry a flame URL whose query parameters
// survive URL encoding (labels are free-form strings — a kernel named
// "a&b=c#d" must not corrupt the link).
func FuzzWebhookPayloadEncoder(f *testing.F) {
	f.Add("unet/nvidia/pytorch", "UNet", "Nvidia", "pytorch", "gemm", int64(100), int64(400), 0.3, 0.6, 1)
	f.Add("d/l/r", "DLRM", "AMD", "jax", "a&b=c#d", int64(-5), int64(0), 0.0, 1.0, -1)
	f.Add("", "", "", "", "", int64(0), int64(0), 0.0, 0.0, 0)
	f.Fuzz(func(t *testing.T, series, workload, vendor, fw, frame string, beforeNS, afterNS int64, beforeShare, share float64, dir int) {
		for _, v := range []float64{beforeShare, share} {
			// The detector only emits finite shares; JSON has no encoding
			// for anything else.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
		}
		for _, s := range []string{series, workload, vendor, fw, frame} {
			// Labels are interned from valid UTF-8; json replaces invalid
			// bytes with U+FFFD, so they cannot round-trip byte-for-byte.
			if !utf8.ValidString(s) {
				return
			}
		}
		fd := trend.Finding{
			Series: series, Workload: workload, Vendor: vendor, Framework: fw,
			Frame: frame, Metric: "gpu_time_ns", Direction: dir,
			BeforeUnixNano: beforeNS, AfterUnixNano: afterNS,
			BeforeShare: beforeShare, Share: share,
			BaselineShare: beforeShare, Band: 0.05, Windows: 3,
		}
		body, err := encodeWebhookPayload([]trend.Finding{fd})
		if err != nil {
			t.Fatalf("encode failed: %v", err)
		}
		var got webhookPayload
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatalf("payload does not decode: %v\n%s", err, body)
		}
		if got.Source != "dcserver" || got.Count != 1 || len(got.Findings) != 1 {
			t.Fatalf("payload shape: %+v", got)
		}
		r := got.Findings[0]
		if r.Series != series || r.Frame != frame || r.Direction != dir ||
			r.BeforeUnixNano != beforeNS || r.AfterUnixNano != afterNS ||
			r.BeforeShare != beforeShare || r.Share != share {
			t.Fatalf("finding did not round-trip:\n in %+v\nout %+v", fd, r)
		}
		if r.Severity == "" || r.Message == "" {
			t.Fatalf("ungraded row: %+v", r)
		}
		u, err := url.Parse(r.FlameURL)
		if err != nil || u.Path != "/flame" {
			t.Fatalf("flame URL %q: %v", r.FlameURL, err)
		}
		uq := u.Query()
		if uq.Get("workload") != workload || uq.Get("vendor") != vendor || uq.Get("framework") != fw {
			t.Fatalf("flame URL lost labels: %q vs %q/%q/%q", r.FlameURL, workload, vendor, fw)
		}
		if uq.Get("before") != strconv.FormatInt(beforeNS, 10) || uq.Get("after") != strconv.FormatInt(afterNS, 10) {
			t.Fatalf("flame URL lost the window pair: %q", r.FlameURL)
		}
	})
}

// FuzzEventsQueryParams holds the /debug/events query parser to the same
// contract: arbitrary raw query strings either parse into a well-formed
// journal filter or are rejected — never a panic, never a negative
// sequence cursor, and the limit always lands in (0, maxEventsLimit].
func FuzzEventsQueryParams(f *testing.F) {
	f.Add("kind=window_close&limit=10")
	f.Add("kind=snapshot,compaction&kind=slow_request")
	f.Add("since=2026-01-01T00:00:00Z&since_seq=42")
	f.Add("since=1767225960000000000&limit=0")
	f.Add("kind=, , ,")
	f.Add("limit=-3")
	f.Add("limit=9999999999999999999999")
	f.Add("since_seq=-1")
	f.Add("since=not-a-time")
	f.Add("kinds=typo")
	f.Add("%gh&&=%zz")
	f.Fuzz(func(t *testing.T, raw string) {
		q, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		ef, err := parseEventsQuery(q)
		if err != nil {
			return
		}
		if ef.SinceSeq < 0 {
			t.Fatalf("negative since_seq accepted for %q: %+v", raw, ef)
		}
		if ef.Limit <= 0 || ef.Limit > maxEventsLimit {
			t.Fatalf("limit out of range for %q: %+v", raw, ef)
		}
		for _, k := range ef.Kinds {
			if k == "" {
				t.Fatalf("empty kind accepted for %q: %+v", raw, ef)
			}
		}
		if len(q["kind"]) == 0 && len(ef.Kinds) != 0 {
			t.Fatalf("kinds appeared from nowhere for %q: %+v", raw, ef)
		}
	})
}
