package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deepcontext"
	"deepcontext/internal/profdb"
	"deepcontext/internal/profstore"
)

// runLoadgen demonstrates sustained multi-client ingest: it starts the
// server in-process on an ephemeral port, then drives `clients` concurrent
// clients that each profile every requested workload (on alternating
// vendors and frameworks, so several label series populate) and POST the
// result through the real HTTP ingest path. Rounds land in distinct
// aggregation windows — the store runs on a virtual clock the generator
// advances by one window per round — so the run finishes by exercising the
// query API: /hotspots over everything and /diff between the first and last
// round's windows (rounds use different iteration counts, so the diff is
// non-trivial).
func runLoadgen(cfg profstore.Config, clients int, loads string, iters, rounds int, maxBody int64) error {
	var workloads []string
	known := make(map[string]bool)
	for _, w := range deepcontext.WorkloadNames() {
		known[w] = true
	}
	for _, w := range strings.Split(loads, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		if !known[w] {
			return fmt.Errorf("loadgen: unknown workload %q (known: %s)",
				w, strings.Join(deepcontext.WorkloadNames(), ", "))
		}
		workloads = append(workloads, w)
	}
	if len(workloads) == 0 {
		return fmt.Errorf("loadgen: no workloads")
	}
	if clients <= 0 {
		clients = 1
	}
	if rounds <= 0 {
		rounds = 1
	}

	// The store runs on a virtual clock so rounds land in distinct windows
	// without sleeping a real window width between them.
	base := time.Now()
	var offset atomic.Int64
	cfg.Now = func() time.Time { return base.Add(time.Duration(offset.Load())) }
	store := profstore.New(cfg)
	defer store.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := newHTTPServer("", newHandler(store, maxBody))
	go srv.Serve(ln)
	defer srv.Close()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("loadgen: server on %s — %d clients x %d workloads x %d rounds (iters %d per round step)\n",
		baseURL, clients, len(workloads), rounds, iters)

	var ok, failed atomic.Int64
	httpc := &http.Client{Timeout: time.Minute}
	windowStarts := make([]time.Time, 0, rounds)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		windowStarts = append(windowStarts, cfg.Now().Truncate(store.Config().Window))
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i, w := range workloads {
					if err := postOne(httpc, baseURL, w, c, i, iters*(r+1)); err != nil {
						failed.Add(1)
						fmt.Printf("loadgen: client %d %s: %v\n", c, w, err)
					} else {
						ok.Add(1)
					}
				}
			}(c)
		}
		wg.Wait()
		// Next round lands in the following window.
		offset.Add(int64(store.Config().Window))
	}
	elapsed := time.Since(start)
	fmt.Printf("loadgen: %d ingests ok, %d failed in %v (%.1f ingests/s)\n",
		ok.Load(), failed.Load(), elapsed.Round(time.Millisecond),
		float64(ok.Load())/elapsed.Seconds())
	if failed.Load() > 0 {
		return fmt.Errorf("loadgen: %d failed ingests", failed.Load())
	}

	// Exercise the query path over what was just ingested.
	var hot struct {
		Metric string `json:"metric"`
		Rows   []struct {
			Label string  `json:"label"`
			Excl  float64 `json:"excl"`
			Frac  float64 `json:"frac"`
		} `json:"rows"`
	}
	if err := getJSON(httpc, baseURL+"/hotspots?top=5", &hot); err != nil {
		return fmt.Errorf("loadgen: hotspots: %w", err)
	}
	if len(hot.Rows) == 0 {
		return fmt.Errorf("loadgen: hotspot query returned no rows")
	}
	fmt.Printf("loadgen: top hotspot by %s: %s (%.0f ns, %.1f%% of total)\n",
		hot.Metric, hot.Rows[0].Label, hot.Rows[0].Excl, 100*hot.Rows[0].Frac)

	if len(windowStarts) >= 2 {
		// RFC3339 offsets contain '+', which must be escaped or the server
		// decodes it as a space.
		q := url.Values{}
		q.Set("before", windowStarts[0].Format(time.RFC3339Nano))
		q.Set("after", windowStarts[len(windowStarts)-1].Format(time.RFC3339Nano))
		q.Set("top", "3")
		var diff struct {
			Net  float64 `json:"net"`
			Rows []struct {
				Label string  `json:"label"`
				Delta float64 `json:"delta"`
			} `json:"rows"`
		}
		if err := getJSON(httpc, baseURL+"/diff?"+q.Encode(), &diff); err != nil {
			return fmt.Errorf("loadgen: diff: %w", err)
		}
		fmt.Printf("loadgen: window diff (round 1 -> round %d): net %+.0f ns across %d changed contexts\n",
			rounds, diff.Net, len(diff.Rows))
		for _, row := range diff.Rows {
			fmt.Printf("loadgen:   %+14.0f  %s\n", row.Delta, row.Label)
		}
	}

	var stats struct {
		Store profstore.Stats `json:"store"`
	}
	if err := getJSON(httpc, baseURL+"/stats", &stats); err != nil {
		return fmt.Errorf("loadgen: stats: %w", err)
	}
	fmt.Printf("loadgen: store holds %d windows, %d series, %d CCT nodes after %d ingests\n",
		stats.Store.FineWindows+stats.Store.CoarseWindows, stats.Store.Series,
		stats.Store.Nodes, stats.Store.Ingested)
	return nil
}

// postOne profiles one workload cell and POSTs it through /ingest. Vendor
// and framework alternate by client and workload index so the store sees
// several distinct label series.
func postOne(httpc *http.Client, baseURL, workload string, client, index, iters int) error {
	body, err := encodeOne(workload, client, index, iters)
	if err != nil {
		return err
	}
	return postBody(httpc, baseURL, body)
}

func getJSON(httpc *http.Client, url string, v any) error {
	resp, err := httpc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, eb.Error)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// runLoadgenMixed hammers the query API concurrently with sustained
// ingest — the workload shape the query cache exists for. Two seeding
// rounds land every series in two closed windows; then, for `duration`,
// `clients` writers re-POST pre-encoded profiles through /ingest (the
// store's virtual clock advancing one window per `rounds`-th of the run)
// while `readers` query clients loop over a dashboard-like mix: hotspots
// over everything (invalidated by every live ingest), per-workload
// filtered hotspots, bounded hotspots and a window diff over the two
// closed seed windows (stable, so a cache can serve them). It reports
// aggregate query throughput, /hotspots latency and the store's cache
// counters — run it with -query-cache 0 and again with the cache on to
// measure the cache's contribution (CI's bench-smoke does exactly that).
func runLoadgenMixed(cfg profstore.Config, clients, readers int, loads string, iters, rounds int, duration time.Duration, maxBody int64) error {
	var workloads []string
	known := make(map[string]bool)
	for _, w := range deepcontext.WorkloadNames() {
		known[w] = true
	}
	for _, w := range strings.Split(loads, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		if !known[w] {
			return fmt.Errorf("loadgen: unknown workload %q (known: %s)",
				w, strings.Join(deepcontext.WorkloadNames(), ", "))
		}
		workloads = append(workloads, w)
	}
	if len(workloads) == 0 {
		return fmt.Errorf("loadgen: no workloads")
	}
	if clients <= 0 {
		clients = 1
	}
	if readers <= 0 {
		readers = 2 * clients
	}
	if rounds <= 0 {
		rounds = 1
	}
	if duration <= 0 {
		duration = 5 * time.Second
	}

	base := time.Now()
	var offset atomic.Int64
	cfg.Now = func() time.Time { return base.Add(time.Duration(offset.Load())) }
	store := profstore.New(cfg)
	defer store.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := newHTTPServer("", newHandler(store, maxBody))
	go srv.Serve(ln)
	defer srv.Close()
	baseURL := "http://" + ln.Addr().String()
	window := store.Config().Window
	fmt.Printf("loadgen-mixed: server on %s — %d writers, %d readers, %d workloads, %v, shards=%d cache=%d\n",
		baseURL, clients, readers, len(workloads), duration, store.Config().Shards, store.Config().CacheSize)

	// Profile every (client, workload) cell once up front: the mixed phase
	// re-POSTs these bodies, so write pressure is bounded by the ingest
	// path, not by profile collection.
	bodies := make([][]byte, clients*len(workloads))
	var genWg sync.WaitGroup
	genErrs := make(chan error, len(bodies))
	for c := 0; c < clients; c++ {
		for i, w := range workloads {
			genWg.Add(1)
			go func(c, i int, w string) {
				defer genWg.Done()
				body, err := encodeOne(w, c, i, iters)
				if err != nil {
					genErrs <- err
					return
				}
				bodies[c*len(workloads)+i] = body
			}(c, i, w)
		}
	}
	genWg.Wait()
	close(genErrs)
	for err := range genErrs {
		return fmt.Errorf("loadgen: profile generation: %w", err)
	}

	// Seed two closed windows so bounded queries and the window diff have
	// stable targets no live ingest will touch.
	httpc := &http.Client{Timeout: time.Minute}
	seedWindows := make([]time.Time, 0, 2)
	for r := 0; r < 2; r++ {
		seedWindows = append(seedWindows, cfg.Now().Truncate(window))
		for _, body := range bodies {
			if err := postBody(httpc, baseURL, body); err != nil {
				return fmt.Errorf("loadgen: seed ingest: %w", err)
			}
		}
		offset.Add(int64(window))
	}
	fmt.Printf("loadgen-mixed: seeded %d windows with %d profiles\n", len(seedWindows), 2*len(bodies))

	// The query mix. RFC3339 offsets contain '+': always url.Values.
	fmtT := func(t time.Time) string { return t.Format(time.RFC3339Nano) }
	boundedQ := url.Values{}
	boundedQ.Set("from", fmtT(seedWindows[0]))
	boundedQ.Set("to", fmtT(seedWindows[0].Add(window)))
	boundedQ.Set("top", "10")
	diffQ := url.Values{}
	diffQ.Set("before", fmtT(seedWindows[0]))
	diffQ.Set("after", fmtT(seedWindows[1]))
	diffQ.Set("top", "5")
	queries := []string{
		"/hotspots?top=10",
		"/hotspots?" + boundedQ.Encode(),
		"/diff?" + diffQ.Encode(),
	}
	for _, w := range workloads {
		wq := url.Values{}
		wq.Set("workload", w)
		wq.Set("top", "10")
		queries = append(queries, "/hotspots?"+wq.Encode())
	}

	var (
		ingestOK, ingestFail atomic.Int64
		queryCount           atomic.Int64
		queryFail            atomic.Int64
	)
	latencies := make([][]time.Duration, readers)
	deadline := time.Now().Add(duration)
	stop := make(chan struct{})

	// One goroutine walks the virtual clock so live ingest spreads over
	// `rounds` windows during the run. It is stopped after the writers and
	// readers drain, so it lives outside their WaitGroup.
	var wg sync.WaitGroup
	go func() {
		tick := time.NewTicker(duration / time.Duration(rounds))
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				offset.Add(int64(window))
			case <-stop:
				return
			}
		}
	}()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			wc := &http.Client{Timeout: time.Minute}
			for i := 0; time.Now().Before(deadline); i++ {
				body := bodies[(c*len(workloads)+i)%len(bodies)]
				if err := postBody(wc, baseURL, body); err != nil {
					ingestFail.Add(1)
				} else {
					ingestOK.Add(1)
				}
			}
		}(c)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rc := &http.Client{Timeout: time.Minute}
			for i := 0; time.Now().Before(deadline); i++ {
				q := queries[i%len(queries)]
				t0 := time.Now()
				resp, err := rc.Get(baseURL + q)
				if err != nil || resp.StatusCode != http.StatusOK {
					queryFail.Add(1)
					if resp != nil {
						resp.Body.Close()
					}
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				latencies[r] = append(latencies[r], time.Since(t0))
				queryCount.Add(1)
			}
		}(r)
	}
	start := time.Now()
	wg.Wait()
	close(stop)
	elapsed := time.Since(start)

	if ingestFail.Load() > 0 {
		return fmt.Errorf("loadgen: %d failed ingests", ingestFail.Load())
	}
	if queryFail.Load() > 0 {
		return fmt.Errorf("loadgen: %d failed queries", queryFail.Load())
	}
	if queryCount.Load() == 0 {
		return fmt.Errorf("loadgen: no queries completed")
	}
	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration { return all[int(p*float64(len(all)-1))] }
	qps := float64(queryCount.Load()) / elapsed.Seconds()
	fmt.Printf("loadgen-mixed: ingests=%d ok (%.1f/s) concurrent with queries=%d in %v\n",
		ingestOK.Load(), float64(ingestOK.Load())/elapsed.Seconds(), queryCount.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("loadgen-mixed: query latency p50=%v p95=%v p99=%v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond), pct(0.99).Round(time.Microsecond))

	var stats struct {
		Store profstore.Stats `json:"store"`
	}
	if err := getJSON(httpc, baseURL+"/stats", &stats); err != nil {
		return fmt.Errorf("loadgen: stats: %w", err)
	}
	hitRate := 0.0
	if c := stats.Store.Cache; c != nil && c.Hits+c.Misses > 0 {
		hitRate = 100 * float64(c.Hits) / float64(c.Hits+c.Misses)
		fmt.Printf("loadgen-mixed: cache hits=%d misses=%d invalidations=%d evictions=%d hit_rate=%.1f%%\n",
			c.Hits, c.Misses, c.Invalidations, c.Evictions, hitRate)
	}
	fmt.Printf("loadgen-mixed: RESULT qps=%.1f p50_us=%d hit_rate=%.1f\n",
		qps, pct(0.50).Microseconds(), hitRate)
	return nil
}

// encodeOne profiles one workload cell (same vendor/framework alternation
// as postOne) and returns its encoded .dcp body.
func encodeOne(workload string, client, index, iters int) ([]byte, error) {
	vendor := "nvidia"
	if (client+index)%2 == 1 {
		vendor = "amd"
	}
	fw := "pytorch"
	if client%2 == 1 {
		fw = "jax"
	}
	s, err := deepcontext.NewSession(deepcontext.Config{Vendor: vendor, Framework: fw, Shards: 1})
	if err != nil {
		return nil, err
	}
	if err := s.RunWorkload(workload, deepcontext.Knobs{}, iters); err != nil {
		return nil, err
	}
	p := s.Stop()
	p.Meta.Workload = workload
	p.Meta.Iterations = iters

	var buf bytes.Buffer
	if err := profdb.Save(&buf, p); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// postBody POSTs one pre-encoded profile through /ingest.
func postBody(httpc *http.Client, baseURL string, body []byte) error {
	resp, err := httpc.Post(baseURL+"/ingest", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		return fmt.Errorf("ingest: HTTP %d: %s", resp.StatusCode, eb.Error)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
