package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deepcontext"
	"deepcontext/internal/profdb"
	"deepcontext/internal/profstore"
)

// runLoadgen demonstrates sustained multi-client ingest: it starts the
// server in-process on an ephemeral port, then drives `clients` concurrent
// clients that each profile every requested workload (on alternating
// vendors and frameworks, so several label series populate) and POST the
// result through the real HTTP ingest path. Rounds land in distinct
// aggregation windows — the store runs on a virtual clock the generator
// advances by one window per round — so the run finishes by exercising the
// query API: /hotspots over everything and /diff between the first and last
// round's windows (rounds use different iteration counts, so the diff is
// non-trivial).
func runLoadgen(cfg profstore.Config, clients int, loads string, iters, rounds int, maxBody int64) error {
	var workloads []string
	known := make(map[string]bool)
	for _, w := range deepcontext.WorkloadNames() {
		known[w] = true
	}
	for _, w := range strings.Split(loads, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		if !known[w] {
			return fmt.Errorf("loadgen: unknown workload %q (known: %s)",
				w, strings.Join(deepcontext.WorkloadNames(), ", "))
		}
		workloads = append(workloads, w)
	}
	if len(workloads) == 0 {
		return fmt.Errorf("loadgen: no workloads")
	}
	if clients <= 0 {
		clients = 1
	}
	if rounds <= 0 {
		rounds = 1
	}

	// The store runs on a virtual clock so rounds land in distinct windows
	// without sleeping a real window width between them.
	base := time.Now()
	var offset atomic.Int64
	cfg.Now = func() time.Time { return base.Add(time.Duration(offset.Load())) }
	store := profstore.New(cfg)
	defer store.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := newHTTPServer("", newHandler(store, maxBody))
	go srv.Serve(ln)
	defer srv.Close()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("loadgen: server on %s — %d clients x %d workloads x %d rounds (iters %d per round step)\n",
		baseURL, clients, len(workloads), rounds, iters)

	var ok, failed atomic.Int64
	httpc := &http.Client{Timeout: time.Minute}
	windowStarts := make([]time.Time, 0, rounds)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		windowStarts = append(windowStarts, cfg.Now().Truncate(store.Config().Window))
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i, w := range workloads {
					if err := postOne(httpc, baseURL, w, c, i, iters*(r+1)); err != nil {
						failed.Add(1)
						fmt.Printf("loadgen: client %d %s: %v\n", c, w, err)
					} else {
						ok.Add(1)
					}
				}
			}(c)
		}
		wg.Wait()
		// Next round lands in the following window.
		offset.Add(int64(store.Config().Window))
	}
	elapsed := time.Since(start)
	fmt.Printf("loadgen: %d ingests ok, %d failed in %v (%.1f ingests/s)\n",
		ok.Load(), failed.Load(), elapsed.Round(time.Millisecond),
		float64(ok.Load())/elapsed.Seconds())
	if failed.Load() > 0 {
		return fmt.Errorf("loadgen: %d failed ingests", failed.Load())
	}

	// Exercise the query path over what was just ingested.
	var hot struct {
		Metric string `json:"metric"`
		Rows   []struct {
			Label string  `json:"label"`
			Excl  float64 `json:"excl"`
			Frac  float64 `json:"frac"`
		} `json:"rows"`
	}
	if err := getJSON(httpc, baseURL+"/hotspots?top=5", &hot); err != nil {
		return fmt.Errorf("loadgen: hotspots: %w", err)
	}
	if len(hot.Rows) == 0 {
		return fmt.Errorf("loadgen: hotspot query returned no rows")
	}
	fmt.Printf("loadgen: top hotspot by %s: %s (%.0f ns, %.1f%% of total)\n",
		hot.Metric, hot.Rows[0].Label, hot.Rows[0].Excl, 100*hot.Rows[0].Frac)

	if len(windowStarts) >= 2 {
		// RFC3339 offsets contain '+', which must be escaped or the server
		// decodes it as a space.
		q := url.Values{}
		q.Set("before", windowStarts[0].Format(time.RFC3339Nano))
		q.Set("after", windowStarts[len(windowStarts)-1].Format(time.RFC3339Nano))
		q.Set("top", "3")
		var diff struct {
			Net  float64 `json:"net"`
			Rows []struct {
				Label string  `json:"label"`
				Delta float64 `json:"delta"`
			} `json:"rows"`
		}
		if err := getJSON(httpc, baseURL+"/diff?"+q.Encode(), &diff); err != nil {
			return fmt.Errorf("loadgen: diff: %w", err)
		}
		fmt.Printf("loadgen: window diff (round 1 -> round %d): net %+.0f ns across %d changed contexts\n",
			rounds, diff.Net, len(diff.Rows))
		for _, row := range diff.Rows {
			fmt.Printf("loadgen:   %+14.0f  %s\n", row.Delta, row.Label)
		}
	}

	var stats struct {
		Store profstore.Stats `json:"store"`
	}
	if err := getJSON(httpc, baseURL+"/stats", &stats); err != nil {
		return fmt.Errorf("loadgen: stats: %w", err)
	}
	fmt.Printf("loadgen: store holds %d windows, %d series, %d CCT nodes after %d ingests\n",
		stats.Store.FineWindows+stats.Store.CoarseWindows, stats.Store.Series,
		stats.Store.Nodes, stats.Store.Ingested)
	return nil
}

// postOne profiles one workload cell and POSTs it through /ingest. Vendor
// and framework alternate by client and workload index so the store sees
// several distinct label series.
func postOne(httpc *http.Client, baseURL, workload string, client, index, iters int) error {
	vendor := "nvidia"
	if (client+index)%2 == 1 {
		vendor = "amd"
	}
	fw := "pytorch"
	if client%2 == 1 {
		fw = "jax"
	}
	s, err := deepcontext.NewSession(deepcontext.Config{Vendor: vendor, Framework: fw, Shards: 1})
	if err != nil {
		return err
	}
	if err := s.RunWorkload(workload, deepcontext.Knobs{}, iters); err != nil {
		return err
	}
	p := s.Stop()
	p.Meta.Workload = workload
	p.Meta.Iterations = iters

	var buf bytes.Buffer
	if err := profdb.Save(&buf, p); err != nil {
		return err
	}
	resp, err := httpc.Post(baseURL+"/ingest", "application/octet-stream", &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		return fmt.Errorf("ingest: HTTP %d: %s", resp.StatusCode, eb.Error)
	}
	return nil
}

func getJSON(httpc *http.Client, url string, v any) error {
	resp, err := httpc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, eb.Error)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
