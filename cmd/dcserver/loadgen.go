package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deepcontext"
	"deepcontext/internal/cct"
	"deepcontext/internal/profdb"
	"deepcontext/internal/profstore"
)

// injectOptions configures loadgen's -inject-regression mode: from Round
// on, every profiled body has Kernel's exclusive cost multiplied by
// Factor before encoding, simulating a deploy that regressed one kernel.
// The run finishes by asserting /regressions flags exactly that kernel.
type injectOptions struct {
	Factor float64 // > 1 enables the mode
	Kernel string  // "" picks the run's top kernel by the trend metric
	Round  int     // 0 = rounds/2
}

func (o injectOptions) enabled() bool { return o.Factor > 1 }

// runLoadgen demonstrates sustained multi-client ingest: it starts the
// server in-process on an ephemeral port, then drives `clients` concurrent
// clients that each profile every requested workload (on alternating
// vendors and frameworks, so several label series populate) and POST the
// result through the real HTTP ingest path. Rounds land in distinct
// aggregation windows — the store runs on a virtual clock the generator
// advances by one window per round — so the run finishes by exercising the
// query API: /hotspots over everything and /diff between the first and last
// round's windows (rounds use different iteration counts, so the diff is
// non-trivial).
//
// With inject enabled the run turns into the regression-detection smoke:
// rounds use a constant iteration count (identical bodies, so every
// series' shares are perfectly steady), the chosen kernel's cost is
// multiplied from inject.Round on, and the run ends by querying
// /regressions and failing unless exactly that kernel is flagged.
func runLoadgen(cfg profstore.Config, clients int, loads string, iters, rounds int, maxBody int64, inject injectOptions) error {
	var workloads []string
	known := make(map[string]bool)
	for _, w := range deepcontext.WorkloadNames() {
		known[w] = true
	}
	for _, w := range strings.Split(loads, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		if !known[w] {
			return fmt.Errorf("loadgen: unknown workload %q (known: %s)",
				w, strings.Join(deepcontext.WorkloadNames(), ", "))
		}
		workloads = append(workloads, w)
	}
	if len(workloads) == 0 {
		return fmt.Errorf("loadgen: no workloads")
	}
	if clients <= 0 {
		clients = 1
	}
	if rounds <= 0 {
		rounds = 1
	}

	// The store runs on a virtual clock so rounds land in distinct windows
	// without sleeping a real window width between them.
	base := time.Now()
	var offset atomic.Int64
	cfg.Now = func() time.Time { return base.Add(time.Duration(offset.Load())) }
	store := profstore.New(cfg)
	defer store.Close()

	trendCfg := store.Config().Trend
	if inject.enabled() {
		if trendCfg.Disabled {
			return fmt.Errorf("loadgen: -inject-regression needs trend tracking enabled")
		}
		if inject.Round <= 0 {
			inject.Round = rounds / 2
		}
		// The baseline needs Warmup windows plus one armed in-band window
		// before the shift; K shifted windows then confirm it.
		if need := trendCfg.Warmup + 1; inject.Round < need {
			inject.Round = need
		}
		if need := inject.Round + trendCfg.K; rounds < need {
			fmt.Printf("loadgen: raising rounds to %d (%d baseline + %d confirmation windows)\n",
				need, inject.Round, trendCfg.K)
			rounds = need
		}
		if inject.Kernel == "" {
			k, err := pickTopKernel(workloads[0], iters, trendCfg.Metric)
			if err != nil {
				return fmt.Errorf("loadgen: pick kernel: %w", err)
			}
			inject.Kernel = k
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := newHTTPServer("", newHandler(store, maxBody, 0, false))
	go srv.Serve(ln)
	defer srv.Close()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("loadgen: server on %s — %d clients x %d workloads x %d rounds (iters %d per round step)\n",
		baseURL, clients, len(workloads), rounds, iters)
	if inject.enabled() {
		fmt.Printf("loadgen: injecting a %gx cost regression into kernel %q from round %d\n",
			inject.Factor, inject.Kernel, inject.Round)
	}

	var ok, failed atomic.Int64
	httpc := &http.Client{Timeout: time.Minute}
	windowStarts := make([]time.Time, 0, rounds)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		windowStarts = append(windowStarts, cfg.Now().Truncate(store.Config().Window))
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i, w := range workloads {
					n := iters * (r + 1)
					var scale kernelScale
					if inject.enabled() {
						// Constant iterations keep every series' shares
						// steady; the injected scale is the only drift.
						n = iters
						if r >= inject.Round {
							scale = kernelScale{Kernel: inject.Kernel, Metric: trendCfg.Metric, Factor: inject.Factor}
						}
					}
					if err := postOne(httpc, baseURL, w, c, i, n, scale); err != nil {
						failed.Add(1)
						fmt.Printf("loadgen: client %d %s: %v\n", c, w, err)
					} else {
						ok.Add(1)
					}
				}
			}(c)
		}
		wg.Wait()
		// Next round lands in the following window.
		offset.Add(int64(store.Config().Window))
	}
	elapsed := time.Since(start)
	fmt.Printf("loadgen: %d ingests ok, %d failed in %v (%.1f ingests/s)\n",
		ok.Load(), failed.Load(), elapsed.Round(time.Millisecond),
		float64(ok.Load())/elapsed.Seconds())
	if failed.Load() > 0 {
		return fmt.Errorf("loadgen: %d failed ingests", failed.Load())
	}

	// Exercise the query path over what was just ingested.
	var hot struct {
		Metric string `json:"metric"`
		Rows   []struct {
			Label string  `json:"label"`
			Excl  float64 `json:"excl"`
			Frac  float64 `json:"frac"`
		} `json:"rows"`
	}
	if err := getJSON(httpc, baseURL+"/hotspots?top=5", &hot); err != nil {
		return fmt.Errorf("loadgen: hotspots: %w", err)
	}
	if len(hot.Rows) == 0 {
		return fmt.Errorf("loadgen: hotspot query returned no rows")
	}
	fmt.Printf("loadgen: top hotspot by %s: %s (%.0f ns, %.1f%% of total)\n",
		hot.Metric, hot.Rows[0].Label, hot.Rows[0].Excl, 100*hot.Rows[0].Frac)

	if len(windowStarts) >= 2 {
		// RFC3339 offsets contain '+', which must be escaped or the server
		// decodes it as a space.
		q := url.Values{}
		q.Set("before", windowStarts[0].Format(time.RFC3339Nano))
		q.Set("after", windowStarts[len(windowStarts)-1].Format(time.RFC3339Nano))
		q.Set("top", "3")
		var diff struct {
			Net  float64 `json:"net"`
			Rows []struct {
				Label string  `json:"label"`
				Delta float64 `json:"delta"`
			} `json:"rows"`
		}
		if err := getJSON(httpc, baseURL+"/diff?"+q.Encode(), &diff); err != nil {
			return fmt.Errorf("loadgen: diff: %w", err)
		}
		fmt.Printf("loadgen: window diff (round 1 -> round %d): net %+.0f ns across %d changed contexts\n",
			rounds, diff.Net, len(diff.Rows))
		for _, row := range diff.Rows {
			fmt.Printf("loadgen:   %+14.0f  %s\n", row.Delta, row.Label)
		}
	}

	var stats struct {
		Store profstore.Stats `json:"store"`
	}
	if err := getJSON(httpc, baseURL+"/stats", &stats); err != nil {
		return fmt.Errorf("loadgen: stats: %w", err)
	}
	fmt.Printf("loadgen: store holds %d windows, %d series, %d CCT nodes after %d ingests\n",
		stats.Store.FineWindows+stats.Store.CoarseWindows, stats.Store.Series,
		stats.Store.Nodes, stats.Store.Ingested)

	// The server's own telemetry is the benchmark's latency source: a
	// broken /metrics fails the run, not just the dashboard.
	expo, err := fetchMetrics(httpc, baseURL)
	if err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}
	lat := scrapedLatencies(expo, "/ingest", "/hotspots")
	if inject.enabled() {
		return checkInjectedRegression(httpc, baseURL, inject, lat)
	}
	fmt.Printf("loadgen: RESULT ingest ok=%d failed=%d%s\n", ok.Load(), failed.Load(), lat)
	return nil
}

// checkInjectedRegression queries /regressions after an injected run and
// fails unless the flagged regressions are exactly the injected kernel —
// at least one finding, and no finding for any other frame. The final
// round already closed its window (the round loop advances the clock one
// window past it), so the handler's sweep observes everything.
func checkInjectedRegression(httpc *http.Client, baseURL string, inject injectOptions, lat string) error {
	var rr struct {
		Count int `json:"count"`
		Rows  []struct {
			Series      string  `json:"series"`
			Frame       string  `json:"frame"`
			BeforeShare float64 `json:"before_share"`
			Share       float64 `json:"share"`
			Severity    string  `json:"severity"`
		} `json:"rows"`
	}
	if err := getJSON(httpc, baseURL+"/regressions?dir=up&limit=0", &rr); err != nil {
		return fmt.Errorf("loadgen: regressions: %w", err)
	}
	spurious := 0
	for _, row := range rr.Rows {
		fmt.Printf("loadgen: regression [%s] %s: %s %.1f%% -> %.1f%%\n",
			row.Severity, row.Series, row.Frame, 100*row.BeforeShare, 100*row.Share)
		if row.Frame != inject.Kernel {
			spurious++
		}
	}
	ok := len(rr.Rows) > 0 && spurious == 0
	fmt.Printf("loadgen: RESULT inject kernel=%s factor=%g up_findings=%d spurious=%d ok=%v%s\n",
		inject.Kernel, inject.Factor, len(rr.Rows), spurious, ok, lat)
	if !ok {
		return fmt.Errorf("loadgen: injected regression not cleanly detected (%d findings, %d spurious)",
			len(rr.Rows), spurious)
	}
	return nil
}

// postOne profiles one workload cell and POSTs it through /ingest. Vendor
// and framework alternate by client and workload index so the store sees
// several distinct label series.
func postOne(httpc *http.Client, baseURL, workload string, client, index, iters int, scale kernelScale) error {
	body, err := encodeOne(workload, client, index, iters, scale)
	if err != nil {
		return err
	}
	return postBody(httpc, baseURL, body)
}

func getJSON(httpc *http.Client, url string, v any) error {
	resp, err := httpc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, eb.Error)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// runLoadgenMixed hammers the query API concurrently with sustained
// ingest — the workload shape the query cache exists for. Two seeding
// rounds land every series in two closed windows; then, for `duration`,
// `clients` writers re-POST pre-encoded profiles through /ingest (the
// store's virtual clock advancing one window per `rounds`-th of the run)
// while `readers` query clients loop over a dashboard-like mix: hotspots
// over everything (invalidated by every live ingest), per-workload
// filtered hotspots, bounded hotspots and a window diff over the two
// closed seed windows (stable, so a cache can serve them). It reports
// aggregate query throughput, /hotspots latency and the store's cache
// counters — run it with -query-cache 0 and again with the cache on to
// measure the cache's contribution (CI's bench-smoke does exactly that).
func runLoadgenMixed(cfg profstore.Config, clients, readers int, loads string, iters, rounds int, duration time.Duration, maxBody int64) error {
	var workloads []string
	known := make(map[string]bool)
	for _, w := range deepcontext.WorkloadNames() {
		known[w] = true
	}
	for _, w := range strings.Split(loads, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		if !known[w] {
			return fmt.Errorf("loadgen: unknown workload %q (known: %s)",
				w, strings.Join(deepcontext.WorkloadNames(), ", "))
		}
		workloads = append(workloads, w)
	}
	if len(workloads) == 0 {
		return fmt.Errorf("loadgen: no workloads")
	}
	if clients <= 0 {
		clients = 1
	}
	if readers <= 0 {
		readers = 2 * clients
	}
	if rounds <= 0 {
		rounds = 1
	}
	if duration <= 0 {
		duration = 5 * time.Second
	}

	base := time.Now()
	var offset atomic.Int64
	cfg.Now = func() time.Time { return base.Add(time.Duration(offset.Load())) }
	store := profstore.New(cfg)
	defer store.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := newHTTPServer("", newHandler(store, maxBody, 0, false))
	go srv.Serve(ln)
	defer srv.Close()
	baseURL := "http://" + ln.Addr().String()
	window := store.Config().Window
	fmt.Printf("loadgen-mixed: server on %s — %d writers, %d readers, %d workloads, %v, shards=%d cache=%d\n",
		baseURL, clients, readers, len(workloads), duration, store.Config().Shards, store.Config().CacheSize)

	// Profile every (client, workload) cell once up front: the mixed phase
	// re-POSTs these bodies, so write pressure is bounded by the ingest
	// path, not by profile collection.
	bodies := make([][]byte, clients*len(workloads))
	var genWg sync.WaitGroup
	genErrs := make(chan error, len(bodies))
	for c := 0; c < clients; c++ {
		for i, w := range workloads {
			genWg.Add(1)
			go func(c, i int, w string) {
				defer genWg.Done()
				body, err := encodeOne(w, c, i, iters, kernelScale{})
				if err != nil {
					genErrs <- err
					return
				}
				bodies[c*len(workloads)+i] = body
			}(c, i, w)
		}
	}
	genWg.Wait()
	close(genErrs)
	for err := range genErrs {
		return fmt.Errorf("loadgen: profile generation: %w", err)
	}

	// Seed two closed windows so bounded queries and the window diff have
	// stable targets no live ingest will touch.
	httpc := &http.Client{Timeout: time.Minute}
	seedWindows := make([]time.Time, 0, 2)
	for r := 0; r < 2; r++ {
		seedWindows = append(seedWindows, cfg.Now().Truncate(window))
		for _, body := range bodies {
			if err := postBody(httpc, baseURL, body); err != nil {
				return fmt.Errorf("loadgen: seed ingest: %w", err)
			}
		}
		offset.Add(int64(window))
	}
	fmt.Printf("loadgen-mixed: seeded %d windows with %d profiles\n", len(seedWindows), 2*len(bodies))

	// The query mix. RFC3339 offsets contain '+': always url.Values.
	fmtT := func(t time.Time) string { return t.Format(time.RFC3339Nano) }
	boundedQ := url.Values{}
	boundedQ.Set("from", fmtT(seedWindows[0]))
	boundedQ.Set("to", fmtT(seedWindows[0].Add(window)))
	boundedQ.Set("top", "10")
	diffQ := url.Values{}
	diffQ.Set("before", fmtT(seedWindows[0]))
	diffQ.Set("after", fmtT(seedWindows[1]))
	diffQ.Set("top", "5")
	queries := []string{
		"/hotspots?top=10",
		"/hotspots?" + boundedQ.Encode(),
		"/diff?" + diffQ.Encode(),
	}
	for _, w := range workloads {
		wq := url.Values{}
		wq.Set("workload", w)
		wq.Set("top", "10")
		queries = append(queries, "/hotspots?"+wq.Encode())
	}

	var (
		ingestOK, ingestFail atomic.Int64
		queryCount           atomic.Int64
		queryFail            atomic.Int64
	)
	latencies := make([][]time.Duration, readers)
	deadline := time.Now().Add(duration)
	stop := make(chan struct{})

	// One goroutine walks the virtual clock so live ingest spreads over
	// `rounds` windows during the run. It is stopped after the writers and
	// readers drain, so it lives outside their WaitGroup.
	var wg sync.WaitGroup
	go func() {
		tick := time.NewTicker(duration / time.Duration(rounds))
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				offset.Add(int64(window))
			case <-stop:
				return
			}
		}
	}()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			wc := &http.Client{Timeout: time.Minute}
			for i := 0; time.Now().Before(deadline); i++ {
				body := bodies[(c*len(workloads)+i)%len(bodies)]
				if err := postBody(wc, baseURL, body); err != nil {
					ingestFail.Add(1)
				} else {
					ingestOK.Add(1)
				}
			}
		}(c)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rc := &http.Client{Timeout: time.Minute}
			for i := 0; time.Now().Before(deadline); i++ {
				q := queries[i%len(queries)]
				t0 := time.Now()
				resp, err := rc.Get(baseURL + q)
				if err != nil || resp.StatusCode != http.StatusOK {
					queryFail.Add(1)
					if resp != nil {
						resp.Body.Close()
					}
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				latencies[r] = append(latencies[r], time.Since(t0))
				queryCount.Add(1)
			}
		}(r)
	}
	start := time.Now()
	wg.Wait()
	close(stop)
	elapsed := time.Since(start)

	if ingestFail.Load() > 0 {
		return fmt.Errorf("loadgen: %d failed ingests", ingestFail.Load())
	}
	if queryFail.Load() > 0 {
		return fmt.Errorf("loadgen: %d failed queries", queryFail.Load())
	}
	if queryCount.Load() == 0 {
		return fmt.Errorf("loadgen: no queries completed")
	}
	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration { return all[int(p*float64(len(all)-1))] }
	qps := float64(queryCount.Load()) / elapsed.Seconds()
	fmt.Printf("loadgen-mixed: ingests=%d ok (%.1f/s) concurrent with queries=%d in %v\n",
		ingestOK.Load(), float64(ingestOK.Load())/elapsed.Seconds(), queryCount.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("loadgen-mixed: query latency p50=%v p95=%v p99=%v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond), pct(0.99).Round(time.Microsecond))

	var stats struct {
		Store profstore.Stats `json:"store"`
	}
	if err := getJSON(httpc, baseURL+"/stats", &stats); err != nil {
		return fmt.Errorf("loadgen: stats: %w", err)
	}
	hitRate := 0.0
	if c := stats.Store.Cache; c != nil && c.Hits+c.Misses > 0 {
		hitRate = 100 * float64(c.Hits) / float64(c.Hits+c.Misses)
		fmt.Printf("loadgen-mixed: cache hits=%d misses=%d invalidations=%d evictions=%d hit_rate=%.1f%%\n",
			c.Hits, c.Misses, c.Invalidations, c.Evictions, hitRate)
	}
	expo, err := fetchMetrics(httpc, baseURL)
	if err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}
	fmt.Printf("loadgen-mixed: RESULT qps=%.1f p50_us=%d hit_rate=%.1f%s\n",
		qps, pct(0.50).Microseconds(), hitRate,
		scrapedLatencies(expo, "/ingest", "/hotspots", "/diff"))
	return nil
}

// kernelScale optionally inflates one kernel's exclusive metric before a
// profile is encoded (the -inject-regression mechanism). A Factor of 1 or
// less, or an empty Kernel, leaves the profile untouched.
type kernelScale struct {
	Kernel string
	Metric string
	Factor float64
}

// encodeOne profiles one workload cell (same vendor/framework alternation
// as postOne), applies scale, and returns its encoded .dcp body.
func encodeOne(workload string, client, index, iters int, scale kernelScale) ([]byte, error) {
	vendor := "nvidia"
	if (client+index)%2 == 1 {
		vendor = "amd"
	}
	fw := "pytorch"
	if client%2 == 1 {
		fw = "jax"
	}
	s, err := deepcontext.NewSession(deepcontext.Config{Vendor: vendor, Framework: fw, Shards: 1})
	if err != nil {
		return nil, err
	}
	if err := s.RunWorkload(workload, deepcontext.Knobs{}, iters); err != nil {
		return nil, err
	}
	p := s.Stop()
	p.Meta.Workload = workload
	p.Meta.Iterations = iters
	if scale.Factor > 1 && scale.Kernel != "" {
		scaleKernel(p.Tree, scale.Kernel, scale.Metric, scale.Factor)
	}

	var buf bytes.Buffer
	if err := profdb.Save(&buf, p); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// scaleKernel multiplies kernel's exclusive metric by factor at every
// calling context it appears in, propagating the delta to ancestors. A
// profile without the kernel (another vendor may name it differently) is
// left untouched, which simply keeps that series steady.
func scaleKernel(t *cct.Tree, kernel, metric string, factor float64) {
	id, ok := t.Schema.Lookup(metric)
	if !ok {
		return
	}
	t.Visit(func(n *cct.Node) {
		if n.Kind != cct.KindKernel || n.Label() != kernel {
			return
		}
		if v := n.ExclValue(id); v != 0 {
			t.AddMetric(n, id, v*(factor-1))
		}
	})
}

// pickTopKernel profiles one run of workload (on the vendor/framework
// cell client 0 uses) and returns the kernel label with the largest
// exclusive sum of metric, ties broken lexicographically.
func pickTopKernel(workload string, iters int, metric string) (string, error) {
	s, err := deepcontext.NewSession(deepcontext.Config{Vendor: "nvidia", Framework: "pytorch", Shards: 1})
	if err != nil {
		return "", err
	}
	if err := s.RunWorkload(workload, deepcontext.Knobs{}, iters); err != nil {
		return "", err
	}
	p := s.Stop()
	id, ok := p.Tree.Schema.Lookup(metric)
	if !ok {
		return "", fmt.Errorf("metric %q not in a %s profile", metric, workload)
	}
	sums := map[string]float64{}
	p.Tree.Visit(func(n *cct.Node) {
		if n.Kind == cct.KindKernel {
			sums[n.Label()] += n.ExclValue(id)
		}
	})
	best, bestV := "", -1.0
	for label, v := range sums {
		if v > bestV || (v == bestV && label < best) {
			best, bestV = label, v
		}
	}
	if best == "" {
		return "", fmt.Errorf("no kernels in a %s profile", workload)
	}
	return best, nil
}

// postBody POSTs one pre-encoded profile through /ingest.
func postBody(httpc *http.Client, baseURL string, body []byte) error {
	resp, err := httpc.Post(baseURL+"/ingest", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		return fmt.Errorf("ingest: HTTP %d: %s", resp.StatusCode, eb.Error)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
