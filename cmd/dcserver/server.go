package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"deepcontext"
	"deepcontext/internal/cct"
	"deepcontext/internal/cluster"
	"deepcontext/internal/profdb"
	"deepcontext/internal/profstore"
)

// newHandler wires the ingest/query API over one store. maxBody caps
// POST /ingest and /stream bodies in bytes; requests taking slow or
// longer land in the event journal (0 disables); noDelta is the kill
// switch that refuses /stream sessions (clients fall back to full
// /ingest uploads). Every route is instrumented into the store's
// telemetry registry, which /metrics and /debug/events expose.
func newHandler(store *profstore.Store, maxBody int64, slow time.Duration, noDelta bool) http.Handler {
	_, h := newServerHandler(store, nil, maxBody, slow, noDelta)
	return h
}

// newServerHandler is newHandler plus the pieces main needs a handle on:
// the *server itself (for the shutdown write drain) and, when coord is
// non-nil, cluster mode — /ingest and /stream route each series to its
// owning node, the query endpoints scatter-gather across the table, and
// the /cluster/* control surface is registered.
func newServerHandler(store *profstore.Store, coord *cluster.Coordinator, maxBody int64, slow time.Duration, noDelta bool) (*server, http.Handler) {
	s := &server{store: store, cluster: coord, maxBody: maxBody, noDelta: noDelta, started: time.Now()}
	s.streams = newStreamRegistry(store.Telemetry())
	m := newServerMetrics(store.Telemetry(), slow)
	mux := http.NewServeMux()
	handle := func(route string, h http.HandlerFunc) {
		mux.HandleFunc(route, m.wrap(route, h))
	}
	handle("/ingest", s.handleIngest)
	handle("/stream", s.handleStream)
	handle("/hotspots", get(s.handleHotspots))
	handle("/diff", get(s.handleDiff))
	handle("/flame", get(s.handleFlame))
	handle("/analyze", get(s.handleAnalyze))
	handle("/regressions", get(s.handleRegressions))
	handle("/topk", get(s.handleTopK))
	handle("/search", get(s.handleSearch))
	handle("/windows", get(s.handleWindows))
	handle("/stats", get(s.handleStats))
	handle("/healthz", get(s.handleHealthz))
	handle("/metrics", get(s.handleMetrics))
	handle("/debug/events", get(s.handleEvents))
	if coord != nil {
		handle("/cluster/status", get(s.handleClusterStatus))
		handle("/cluster/partials", post(s.handleClusterPartials))
		handle("/cluster/ingest", post(s.handleClusterIngest))
		handle("/cluster/export", post(s.handleClusterExport))
		handle("/cluster/import", post(s.handleClusterImport))
		handle("/cluster/table", post(s.handleClusterTable))
		handle("/cluster/drop", post(s.handleClusterDrop))
		handle("/cluster/join", post(s.handleClusterJoin))
	}
	return s, mux
}

// newHTTPServer wraps the handler in an http.Server with sane production
// timeouts (a stuck client must not pin a connection forever).
func newHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

type server struct {
	store   *profstore.Store
	cluster *cluster.Coordinator
	maxBody int64
	noDelta bool
	streams *streamRegistry
	started time.Time

	// Shutdown write drain: beginWrite/endWrite bracket every mutating
	// handler; drain flips draining (new writes get 503) and waits for the
	// in-flight ones, so the shutdown snapshot never races an /ingest or
	// /stream batch that http.Server.Shutdown gave up waiting on.
	drainMu  sync.RWMutex
	draining bool
	writes   sync.WaitGroup
}

// beginWrite registers an in-flight mutating request; it reports false
// (and the caller must 503) once the server is draining.
func (s *server) beginWrite() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return false
	}
	s.writes.Add(1)
	return true
}

func (s *server) endWrite() { s.writes.Done() }

// drain stops accepting writes and waits up to timeout for the in-flight
// ones to finish, reporting whether the store is quiescent. Called after
// Serve returns and before the shutdown snapshot.
func (s *server) drain(timeout time.Duration) bool {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.writes.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

var errDraining = errors.New("server is shutting down")

// get rejects every method but GET (and HEAD, which net/http serves
// through the GET handler body-suppressed — liveness probes use it) with
// 405.
func get(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// post rejects every method but POST with 405.
func post(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	// Content-Type must be set before WriteHeader flushes the headers.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

// statusClientClosedRequest is nginx's 499: the client went away before
// the response. Nothing reads the body, but the code keeps the request
// distinguishable in the endpoint metrics.
const statusClientClosedRequest = 499

// writeQueryError maps store query failures to HTTP codes: a bad metric
// name is the client's mistake (400, retrying is pointless), a canceled
// or timed-out request is 499 (the client is gone; the fold was
// abandoned mid-way), while an empty window range is 404 (data may
// arrive later).
func writeQueryError(w http.ResponseWriter, err error) {
	if errors.Is(err, profstore.ErrUnknownMetric) {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		writeError(w, statusClientClosedRequest, err)
		return
	}
	writeError(w, http.StatusNotFound, err)
}

// queryLabels builds the series filter from workload/vendor/framework
// query parameters.
func queryLabels(r *http.Request) profstore.Labels {
	q := r.URL.Query()
	return profstore.Labels{
		Workload:  q.Get("workload"),
		Vendor:    q.Get("vendor"),
		Framework: q.Get("framework"),
	}
}

// parseTime accepts RFC3339 or integer unix seconds/nanoseconds; empty
// means zero (open bound).
func parseTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	if t, err := time.Parse(time.RFC3339Nano, s); err == nil {
		return t, nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		if n > 1e15 { // nanoseconds
			return time.Unix(0, n), nil
		}
		return time.Unix(n, 0), nil
	}
	return time.Time{}, fmt.Errorf("bad time %q (want RFC3339 or unix seconds)", s)
}

func queryRange(r *http.Request) (from, to time.Time, err error) {
	q := r.URL.Query()
	if from, err = parseTime(q.Get("from")); err != nil {
		return
	}
	to, err = parseTime(q.Get("to"))
	return
}

func queryInt(r *http.Request, name string, def int) int {
	if s := r.URL.Query().Get(name); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			return n
		}
	}
	return def
}

// POST /ingest — body is a .dcp database (single profile or v2 bundle);
// every contained profile is folded into the current window. In cluster
// mode the handler is the ingest router: entries this node owns land
// locally, the rest travel to their owning node as one forwarded batch
// per destination.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if !s.beginWrite() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	defer s.endWrite()
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	entries, err := profdb.LoadBundleLimit(body, s.maxBody)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.Is(err, profdb.ErrTooLarge) || errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	var out cluster.IngestSummary
	seenWin := map[string]bool{}
	var forwards map[string][]*deepcontext.Profile
	for _, e := range entries {
		if s.cluster != nil {
			if owner := s.cluster.OwnerOf(profstore.LabelsOf(e.Profile.Meta)); owner != s.cluster.Self() {
				if forwards == nil {
					forwards = map[string][]*deepcontext.Profile{}
				}
				forwards[owner] = append(forwards[owner], e.Profile)
				continue
			}
		}
		start, err := s.store.Ingest(e.Profile)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		out.Ingested++
		out.Series = append(out.Series, profstore.LabelsOf(e.Profile.Meta).Key())
		if ws := start.Format(time.RFC3339Nano); !seenWin[ws] {
			seenWin[ws] = true
			out.Windows = append(out.Windows, ws)
		}
	}
	for _, owner := range sortedKeys(forwards) {
		sum, err := s.cluster.ForwardIngest(r.Context(), owner, forwards[owner])
		if err != nil {
			// The local share (and any earlier forward) already landed;
			// 502 tells the client this bundle was only partially applied.
			writeError(w, http.StatusBadGateway, err)
			return
		}
		out.Ingested += sum.Ingested
		out.Series = append(out.Series, sum.Series...)
		for _, ws := range sum.Windows {
			if !seenWin[ws] {
				seenWin[ws] = true
				out.Windows = append(out.Windows, ws)
			}
		}
	}
	writeJSONStatus(w, http.StatusAccepted, out)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// queryHotspots dispatches to the local store or, in cluster mode, the
// scatter-gather coordinator. Healthy-cluster responses are
// byte-identical to a single node holding the union of the data; with a
// node down the result carries a coverage annotation instead.
func (s *server) queryHotspots(ctx context.Context, from, to time.Time, filter profstore.Labels, metric string, top int) ([]profstore.Hotspot, profstore.AggregateInfo, error) {
	if s.cluster != nil {
		return s.cluster.Hotspots(ctx, from, to, filter, metric, top)
	}
	return s.store.Hotspots(ctx, from, to, filter, metric, top)
}

// queryDiff is queryHotspots' /diff counterpart.
func (s *server) queryDiff(ctx context.Context, before, after time.Time, filter profstore.Labels, metric string, top int) (*profstore.DiffResult, error) {
	if s.cluster != nil {
		return s.cluster.Diff(ctx, before, after, filter, metric, top)
	}
	return s.store.Diff(ctx, before, after, filter, metric, top)
}

// queryAggregate is queryHotspots' counterpart for the aggregate-shaped
// endpoints (/flame, /analyze).
func (s *server) queryAggregate(ctx context.Context, from, to time.Time, filter profstore.Labels) (*cct.Tree, profstore.AggregateInfo, error) {
	if s.cluster != nil {
		return s.cluster.Aggregate(ctx, from, to, filter)
	}
	return s.store.Aggregate(ctx, from, to, filter)
}

// GET /hotspots?metric=&top=&workload=&vendor=&framework=&from=&to=
func (s *server) handleHotspots(w http.ResponseWriter, r *http.Request) {
	from, to, err := queryRange(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	metric := r.URL.Query().Get("metric")
	rows, info, err := s.queryHotspots(r.Context(), from, to, queryLabels(r), metric, queryInt(r, "top", 20))
	if err != nil {
		writeQueryError(w, err)
		return
	}
	if metric == "" {
		metric = defaultMetric
	}
	writeJSON(w, struct {
		Metric string                  `json:"metric"`
		Info   profstore.AggregateInfo `json:"info"`
		Rows   []profstore.Hotspot     `json:"rows"`
	}{metric, info, rows})
}

// GET /diff?before=&after=&metric=&top=&workload=&vendor=&framework=
func (s *server) handleDiff(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	before, err := parseTime(q.Get("before"))
	if err != nil || before.IsZero() {
		writeError(w, http.StatusBadRequest, fmt.Errorf("diff needs before= and after= window times: %v", err))
		return
	}
	after, err := parseTime(q.Get("after"))
	if err != nil || after.IsZero() {
		writeError(w, http.StatusBadRequest, fmt.Errorf("diff needs before= and after= window times: %v", err))
		return
	}
	res, err := s.queryDiff(r.Context(), before, after, queryLabels(r), q.Get("metric"), queryInt(r, "top", 20))
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, res)
}

// GET /flame?format=html|folded&metric=&bottomup=1&from=&to=&filters...
// With before= and after= set it renders the signed diff flame instead.
func (s *server) handleFlame(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	metric := q.Get("metric")
	signed := false
	var p *deepcontext.Profile
	if q.Get("before") != "" || q.Get("after") != "" {
		before, err1 := parseTime(q.Get("before"))
		after, err2 := parseTime(q.Get("after"))
		if err1 != nil || err2 != nil || before.IsZero() || after.IsZero() {
			writeError(w, http.StatusBadRequest, fmt.Errorf("signed flame needs both before= and after="))
			return
		}
		res, err := s.queryDiff(r.Context(), before, after, queryLabels(r), metric, 0)
		if err != nil {
			writeQueryError(w, err)
			return
		}
		p = &deepcontext.Profile{Tree: res.Tree}
		p.Meta.Workload = "diff"
		signed = true
	} else {
		from, to, err := queryRange(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		tree, info, err := s.queryAggregate(r.Context(), from, to, queryLabels(r))
		if err != nil {
			writeQueryError(w, err)
			return
		}
		p = &deepcontext.Profile{Tree: tree}
		p.Meta.Workload = strings.Join(info.Series, "+")
	}
	// A bad metric name is the client's mistake; catch it here so it maps
	// to 400 like /hotspots and /diff, not the renderer's 500.
	if metric != "" {
		if _, ok := p.Tree.Schema.Lookup(metric); !ok {
			writeError(w, http.StatusBadRequest, fmt.Errorf("metric %q not present (known: %s)",
				metric, strings.Join(p.Tree.Schema.Names(), ", ")))
			return
		}
	}
	switch q.Get("format") {
	case "folded":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := deepcontext.WriteFolded(w, p, metric); err != nil {
			writeError(w, http.StatusInternalServerError, err)
		}
	case "", "html":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		opts := deepcontext.FlameOptions{Metric: metric, Signed: signed, BottomUp: q.Get("bottomup") != ""}
		if err := deepcontext.WriteFlameGraph(w, p, opts); err != nil {
			writeError(w, http.StatusInternalServerError, err)
		}
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want html or folded)", q.Get("format")))
	}
}

// GET /analyze?from=&to=&filters... — the automated analyzer over the
// window aggregate, as JSON.
func (s *server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	from, to, err := queryRange(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tree, info, err := s.queryAggregate(r.Context(), from, to, queryLabels(r))
	if err != nil {
		writeQueryError(w, err)
		return
	}
	p := &deepcontext.Profile{Tree: tree}
	rep := deepcontext.Analyze(p)
	writeJSON(w, struct {
		Info   profstore.AggregateInfo `json:"info"`
		Report any                     `json:"report"`
	}{info, rep.JSON()})
}

// GET /windows — retained buckets, oldest first.
func (s *server) handleWindows(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.store.Windows())
}

// GET /stats — store occupancy plus server uptime and limits.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	cfg := s.store.Config()
	writeJSON(w, struct {
		Store           profstore.Stats `json:"store"`
		UptimeSeconds   float64         `json:"uptime_seconds"`
		MaxBodyBytes    int64           `json:"max_body_bytes"`
		WindowSeconds   float64         `json:"window_seconds"`
		Retention       int             `json:"retention"`
		CoarseFactor    int             `json:"coarse_factor"`
		CoarseRetention int             `json:"coarse_retention"`
	}{s.store.Stats(), time.Since(s.started).Seconds(), s.maxBody,
		cfg.Window.Seconds(), cfg.Retention, cfg.CoarseFactor, cfg.CoarseRetention})
}

// GET /healthz
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, struct {
		Status   string `json:"status"`
		Ingested int64  `json:"ingested"`
	}{"ok", s.store.Stats().Ingested})
}
