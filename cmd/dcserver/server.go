package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"deepcontext"
	"deepcontext/internal/profdb"
	"deepcontext/internal/profstore"
)

// newHandler wires the ingest/query API over one store. maxBody caps
// POST /ingest and /stream bodies in bytes; requests taking slow or
// longer land in the event journal (0 disables); noDelta is the kill
// switch that refuses /stream sessions (clients fall back to full
// /ingest uploads). Every route is instrumented into the store's
// telemetry registry, which /metrics and /debug/events expose.
func newHandler(store *profstore.Store, maxBody int64, slow time.Duration, noDelta bool) http.Handler {
	s := &server{store: store, maxBody: maxBody, noDelta: noDelta, started: time.Now()}
	s.streams = newStreamRegistry(store.Telemetry())
	m := newServerMetrics(store.Telemetry(), slow)
	mux := http.NewServeMux()
	handle := func(route string, h http.HandlerFunc) {
		mux.HandleFunc(route, m.wrap(route, h))
	}
	handle("/ingest", s.handleIngest)
	handle("/stream", s.handleStream)
	handle("/hotspots", get(s.handleHotspots))
	handle("/diff", get(s.handleDiff))
	handle("/flame", get(s.handleFlame))
	handle("/analyze", get(s.handleAnalyze))
	handle("/regressions", get(s.handleRegressions))
	handle("/topk", get(s.handleTopK))
	handle("/search", get(s.handleSearch))
	handle("/windows", get(s.handleWindows))
	handle("/stats", get(s.handleStats))
	handle("/healthz", get(s.handleHealthz))
	handle("/metrics", get(s.handleMetrics))
	handle("/debug/events", get(s.handleEvents))
	return mux
}

// newHTTPServer wraps the handler in an http.Server with sane production
// timeouts (a stuck client must not pin a connection forever).
func newHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

type server struct {
	store   *profstore.Store
	maxBody int64
	noDelta bool
	streams *streamRegistry
	started time.Time
}

// get rejects every method but GET (and HEAD, which net/http serves
// through the GET handler body-suppressed — liveness probes use it) with
// 405.
func get(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	// Content-Type must be set before WriteHeader flushes the headers.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

// writeQueryError maps store query failures to HTTP codes: a bad metric
// name is the client's mistake (400, retrying is pointless), while an
// empty window range is 404 (data may arrive later).
func writeQueryError(w http.ResponseWriter, err error) {
	if errors.Is(err, profstore.ErrUnknownMetric) {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeError(w, http.StatusNotFound, err)
}

// queryLabels builds the series filter from workload/vendor/framework
// query parameters.
func queryLabels(r *http.Request) profstore.Labels {
	q := r.URL.Query()
	return profstore.Labels{
		Workload:  q.Get("workload"),
		Vendor:    q.Get("vendor"),
		Framework: q.Get("framework"),
	}
}

// parseTime accepts RFC3339 or integer unix seconds/nanoseconds; empty
// means zero (open bound).
func parseTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	if t, err := time.Parse(time.RFC3339Nano, s); err == nil {
		return t, nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		if n > 1e15 { // nanoseconds
			return time.Unix(0, n), nil
		}
		return time.Unix(n, 0), nil
	}
	return time.Time{}, fmt.Errorf("bad time %q (want RFC3339 or unix seconds)", s)
}

func queryRange(r *http.Request) (from, to time.Time, err error) {
	q := r.URL.Query()
	if from, err = parseTime(q.Get("from")); err != nil {
		return
	}
	to, err = parseTime(q.Get("to"))
	return
}

func queryInt(r *http.Request, name string, def int) int {
	if s := r.URL.Query().Get(name); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			return n
		}
	}
	return def
}

// POST /ingest — body is a .dcp database (single profile or v2 bundle);
// every contained profile is folded into the current window.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	entries, err := profdb.LoadBundleLimit(body, s.maxBody)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.Is(err, profdb.ErrTooLarge) || errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	type resp struct {
		Ingested int      `json:"ingested"`
		Series   []string `json:"series"`
		Windows  []string `json:"windows"`
	}
	var out resp
	seenWin := map[string]bool{}
	for _, e := range entries {
		start, err := s.store.Ingest(e.Profile)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		out.Ingested++
		out.Series = append(out.Series, profstore.LabelsOf(e.Profile.Meta).Key())
		if ws := start.Format(time.RFC3339Nano); !seenWin[ws] {
			seenWin[ws] = true
			out.Windows = append(out.Windows, ws)
		}
	}
	writeJSONStatus(w, http.StatusAccepted, out)
}

// GET /hotspots?metric=&top=&workload=&vendor=&framework=&from=&to=
func (s *server) handleHotspots(w http.ResponseWriter, r *http.Request) {
	from, to, err := queryRange(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	metric := r.URL.Query().Get("metric")
	rows, info, err := s.store.Hotspots(from, to, queryLabels(r), metric, queryInt(r, "top", 20))
	if err != nil {
		writeQueryError(w, err)
		return
	}
	if metric == "" {
		metric = defaultMetric
	}
	writeJSON(w, struct {
		Metric string                  `json:"metric"`
		Info   profstore.AggregateInfo `json:"info"`
		Rows   []profstore.Hotspot     `json:"rows"`
	}{metric, info, rows})
}

// GET /diff?before=&after=&metric=&top=&workload=&vendor=&framework=
func (s *server) handleDiff(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	before, err := parseTime(q.Get("before"))
	if err != nil || before.IsZero() {
		writeError(w, http.StatusBadRequest, fmt.Errorf("diff needs before= and after= window times: %v", err))
		return
	}
	after, err := parseTime(q.Get("after"))
	if err != nil || after.IsZero() {
		writeError(w, http.StatusBadRequest, fmt.Errorf("diff needs before= and after= window times: %v", err))
		return
	}
	res, err := s.store.Diff(before, after, queryLabels(r), q.Get("metric"), queryInt(r, "top", 20))
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, res)
}

// GET /flame?format=html|folded&metric=&bottomup=1&from=&to=&filters...
// With before= and after= set it renders the signed diff flame instead.
func (s *server) handleFlame(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	metric := q.Get("metric")
	signed := false
	var p *deepcontext.Profile
	if q.Get("before") != "" || q.Get("after") != "" {
		before, err1 := parseTime(q.Get("before"))
		after, err2 := parseTime(q.Get("after"))
		if err1 != nil || err2 != nil || before.IsZero() || after.IsZero() {
			writeError(w, http.StatusBadRequest, fmt.Errorf("signed flame needs both before= and after="))
			return
		}
		res, err := s.store.Diff(before, after, queryLabels(r), metric, 0)
		if err != nil {
			writeQueryError(w, err)
			return
		}
		p = &deepcontext.Profile{Tree: res.Tree}
		p.Meta.Workload = "diff"
		signed = true
	} else {
		from, to, err := queryRange(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		tree, info, err := s.store.Aggregate(from, to, queryLabels(r))
		if err != nil {
			writeQueryError(w, err)
			return
		}
		p = &deepcontext.Profile{Tree: tree}
		p.Meta.Workload = strings.Join(info.Series, "+")
	}
	// A bad metric name is the client's mistake; catch it here so it maps
	// to 400 like /hotspots and /diff, not the renderer's 500.
	if metric != "" {
		if _, ok := p.Tree.Schema.Lookup(metric); !ok {
			writeError(w, http.StatusBadRequest, fmt.Errorf("metric %q not present (known: %s)",
				metric, strings.Join(p.Tree.Schema.Names(), ", ")))
			return
		}
	}
	switch q.Get("format") {
	case "folded":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := deepcontext.WriteFolded(w, p, metric); err != nil {
			writeError(w, http.StatusInternalServerError, err)
		}
	case "", "html":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		opts := deepcontext.FlameOptions{Metric: metric, Signed: signed, BottomUp: q.Get("bottomup") != ""}
		if err := deepcontext.WriteFlameGraph(w, p, opts); err != nil {
			writeError(w, http.StatusInternalServerError, err)
		}
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want html or folded)", q.Get("format")))
	}
}

// GET /analyze?from=&to=&filters... — the automated analyzer over the
// window aggregate, as JSON.
func (s *server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	from, to, err := queryRange(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tree, info, err := s.store.Aggregate(from, to, queryLabels(r))
	if err != nil {
		writeQueryError(w, err)
		return
	}
	p := &deepcontext.Profile{Tree: tree}
	rep := deepcontext.Analyze(p)
	writeJSON(w, struct {
		Info   profstore.AggregateInfo `json:"info"`
		Report any                     `json:"report"`
	}{info, rep.JSON()})
}

// GET /windows — retained buckets, oldest first.
func (s *server) handleWindows(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.store.Windows())
}

// GET /stats — store occupancy plus server uptime and limits.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	cfg := s.store.Config()
	writeJSON(w, struct {
		Store           profstore.Stats `json:"store"`
		UptimeSeconds   float64         `json:"uptime_seconds"`
		MaxBodyBytes    int64           `json:"max_body_bytes"`
		WindowSeconds   float64         `json:"window_seconds"`
		Retention       int             `json:"retention"`
		CoarseFactor    int             `json:"coarse_factor"`
		CoarseRetention int             `json:"coarse_retention"`
	}{s.store.Stats(), time.Since(s.started).Seconds(), s.maxBody,
		cfg.Window.Seconds(), cfg.Retention, cfg.CoarseFactor, cfg.CoarseRetention})
}

// GET /healthz
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, struct {
		Status   string `json:"status"`
		Ingested int64  `json:"ingested"`
	}{"ok", s.store.Stats().Ingested})
}
