package main

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"deepcontext/internal/cct"
	"deepcontext/internal/profdb"
	"deepcontext/internal/profiler"
	"deepcontext/internal/profstore"
	"deepcontext/internal/telemetry"
)

// These tests drive POST /stream through the same streamClient the
// loadgen uses and hold it to the delta≡full contract: whatever faults
// hit the session — corrupted checksums, a connection cut mid-batch, the
// server restarting underneath an established session — the client's
// own recovery protocol must converge the store to exactly the state an
// all-full-upload run produces.

// streamTestProfile builds a profile with enough kernel contexts that a
// one-kernel delta is visibly cheaper on the wire than the whole tree.
func streamTestProfile(workload string, kernels int) *profiler.Profile {
	tree := cct.New()
	gid := tree.MetricID(cct.MetricGPUTime)
	for i := 0; i < kernels; i++ {
		leaf := tree.InsertPath([]cct.Frame{
			cct.PythonFrame("train.py", 10+i, "main"),
			cct.OperatorFrame(fmt.Sprintf("aten::op_%d", i%8)),
			{Kind: cct.KindKernel, Name: fmt.Sprintf("kern_%d", i), Lib: "[gpu]", PC: uint64(0x1000 + 64*i)},
		})
		tree.AddMetric(leaf, gid, float64(100+i))
	}
	return &profiler.Profile{
		Tree: tree,
		Meta: profiler.Meta{Workload: workload, Vendor: "Nvidia", Framework: "pytorch"},
	}
}

// bumpKernels adds one gpu_time sample to every kernel context, the
// small-delta mutation shape between uploads.
func bumpKernels(p *profiler.Profile, v float64) {
	tr := p.Tree
	id := tr.MetricID(cct.MetricGPUTime)
	for _, n := range kernelNodes(tr) {
		tr.AddMetric(n, id, v)
	}
}

// bumpOneKernel adds one sample to a single kernel context — the
// steady-state shape where almost all of the tree is unchanged.
func bumpOneKernel(p *profiler.Profile, i int, v float64) {
	tr := p.Tree
	ks := kernelNodes(tr)
	tr.AddMetric(ks[i%len(ks)], tr.MetricID(cct.MetricGPUTime), v)
}

// assertStoresAgree requires the streamed store to answer Hotspots and
// Windows byte-identically to the reference store fed the same evolution
// through plain Ingest.
func assertStoresAgree(t *testing.T, got, want *profstore.Store) {
	t.Helper()
	asJSON := func(vs ...any) string {
		b, err := json.Marshal(vs)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	gr, gi, gerr := got.Hotspots(context.Background(), time.Time{}, time.Time{}, profstore.Labels{}, cct.MetricGPUTime, 0)
	wr, wi, werr := want.Hotspots(context.Background(), time.Time{}, time.Time{}, profstore.Labels{}, cct.MetricGPUTime, 0)
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("hotspots: stream err %v, reference err %v", gerr, werr)
	}
	if gerr == nil && asJSON(gr, gi) != asJSON(wr, wi) {
		t.Fatalf("streamed store diverged from full-upload reference:\n got %s\nwant %s",
			asJSON(gr, gi), asJSON(wr, wi))
	}
	if g, w := asJSON(got.Windows()), asJSON(want.Windows()); g != w {
		t.Fatalf("windows diverged:\n got %s\nwant %s", g, w)
	}
}

// scrapeMetric fetches /metrics and returns the integer value of one
// unlabeled series.
func scrapeMetric(t *testing.T, ts *httptest.Server, name string) int64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: unparsable value %q", name, rest)
			}
			return int64(v)
		}
	}
	t.Fatalf("metric %s not in exposition", name)
	return 0
}

func journalEvents(store *profstore.Store, kinds ...string) []telemetry.Event {
	return store.Telemetry().Journal().Select(telemetry.Filter{Kinds: kinds})
}

func TestStreamSessionLifecycle(t *testing.T) {
	clock := &testClock{t: testBase}
	ts, store := newTestServer(t, clock, profdb.DefaultMaxBytes)
	ref := profstore.New(profstore.Config{Window: time.Minute, Now: clock.Now})
	defer ref.Close()

	p1, p2 := streamTestProfile("UNet", 32), streamTestProfile("DLRM", 32)
	sc := newStreamClient(&http.Client{Timeout: 30 * time.Second}, ts.URL, "life")
	const rounds = 3
	for r := 0; r < rounds; r++ {
		if r > 0 {
			bumpOneKernel(p1, r, float64(10*r))
			bumpOneKernel(p2, r+5, float64(7*r))
		}
		res, err := sc.send([]*profiler.Profile{p1, p2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Acked != 2 || len(res.Nacked) != 0 || res.Reset {
			t.Fatalf("round %d: send = %+v", r, res)
		}
		for _, p := range []*profiler.Profile{p1, p2} {
			if _, err := ref.Ingest(p); err != nil {
				t.Fatal(err)
			}
		}
		clock.Advance(time.Minute)
	}
	if err := sc.closeSession(); err != nil {
		t.Fatal(err)
	}
	assertStoresAgree(t, store, ref)

	// Wire accounting: round one establishes both series with full
	// frames, every later round ships deltas only — and a delta frame
	// must cost far fewer wire bytes than a full one.
	if got := scrapeMetric(t, ts, "dcserver_ingest_full_frames_total"); got != 2 {
		t.Fatalf("full frames = %d, want 2", got)
	}
	if got := scrapeMetric(t, ts, "dcserver_ingest_delta_frames_total"); got != 2*(rounds-1) {
		t.Fatalf("delta frames = %d, want %d", got, 2*(rounds-1))
	}
	fullPer := scrapeMetric(t, ts, "dcserver_ingest_full_bytes_total") / 2
	deltaPer := scrapeMetric(t, ts, "dcserver_ingest_delta_bytes_total") / int64(2*(rounds-1))
	if deltaPer == 0 || deltaPer*2 >= fullPer {
		t.Fatalf("delta frames not cheaper on the wire: %d B/frame vs full %d B/frame", deltaPer, fullPer)
	}
	for name, want := range map[string]int64{
		"dcserver_stream_batches_total":          rounds + 1, // the Close batch counts
		"dcserver_stream_sessions_opened_total":  1,
		"dcserver_stream_sessions_closed_total":  1,
		"dcserver_stream_sessions_dropped_total": 0,
		"dcserver_stream_nacks_total":            0,
		"dcserver_ingest_full_fallbacks_total":   0,
		"dcserver_stream_sessions":               0,
	} {
		if got := scrapeMetric(t, ts, name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if ev := journalEvents(store, "stream_open"); len(ev) != 1 {
		t.Errorf("stream_open events = %d, want 1", len(ev))
	}
	if ev := journalEvents(store, "stream_close"); len(ev) != 1 {
		t.Errorf("stream_close events = %d, want 1", len(ev))
	}
}

func TestStreamKillSwitchAndValidation(t *testing.T) {
	clock := &testClock{t: testBase}
	store := profstore.New(profstore.Config{Window: time.Minute, Now: clock.Now})
	defer store.Close()

	// The -no-delta kill switch refuses sessions outright; clients fall
	// back to full /ingest uploads.
	off := httptest.NewServer(newHandler(store, profdb.DefaultMaxBytes, defaultSlowRequest, true))
	defer off.Close()
	resp, err := http.Post(off.URL+"/stream?session=s1", "application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("kill switch: status %d, want 503", resp.StatusCode)
	}

	ts := httptest.NewServer(newHandler(store, profdb.DefaultMaxBytes, defaultSlowRequest, false))
	defer ts.Close()
	resp, err = http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodPost {
		t.Fatalf("GET /stream: status %d allow %q, want 405 POST", resp.StatusCode, resp.Header.Get("Allow"))
	}
	for _, url := range []string{
		ts.URL + "/stream",
		ts.URL + "/stream?session=" + strings.Repeat("x", 129),
	} {
		resp, err = http.Post(url, "application/octet-stream", bytes.NewReader(nil))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s: status %d, want 400", url, resp.StatusCode)
		}
	}

	// A body that is not a gob stream drops the (just-opened) session.
	resp, err = http.Post(ts.URL+"/stream?session=garbage", "application/octet-stream",
		strings.NewReader("this is not a stream batch"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d, want 400", resp.StatusCode)
	}
	if got := store.Stats().Ingested; got != 0 {
		t.Fatalf("garbage body ingested %d profiles", got)
	}
	if ev := journalEvents(store, "stream_drop"); len(ev) != 1 || ev[0].Fields["reason"] != "corrupt_stream" {
		t.Fatalf("stream_drop events = %+v, want one with reason corrupt_stream", ev)
	}
}

// TestStreamChecksumMismatchResync desyncs the client's base checksum —
// the frame reaches the server structurally intact but claims the wrong
// base — and requires a NACK, a full-frame resync, and a final state
// byte-equal to an all-full-upload run.
func TestStreamChecksumMismatchResync(t *testing.T) {
	clock := &testClock{t: testBase}
	ts, store := newTestServer(t, clock, profdb.DefaultMaxBytes)
	ref := profstore.New(profstore.Config{Window: time.Minute, Now: clock.Now})
	defer ref.Close()

	p := testProfile("UNet", 1)
	key := profstore.LabelsOf(p.Meta).Key()
	sc := newStreamClient(&http.Client{Timeout: 30 * time.Second}, ts.URL, "sum")
	res, err := sc.send([]*profiler.Profile{p})
	if err != nil || res.Acked != 1 {
		t.Fatalf("establish: res=%+v err=%v", res, err)
	}
	if _, err := ref.Ingest(p); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Minute)

	bumpKernels(p, 50)
	sc.cursors[key].Sum ^= 0xdeadbeef // desync: the next delta claims a wrong base
	res, err = sc.send([]*profiler.Profile{p})
	if err != nil {
		t.Fatal(err)
	}
	if res.Acked != 0 || !res.Nacked[key] || res.Reset {
		t.Fatalf("desynced send = %+v, want a per-series NACK without a session reset", res)
	}
	if got := store.Stats().Ingested; got != 1 {
		t.Fatalf("NACKed frame ingested anyway: %d profiles", got)
	}

	// The NACK cleared the client cursor; the retry re-establishes the
	// series with a full frame in the same session.
	res, err = sc.send([]*profiler.Profile{p})
	if err != nil || res.Acked != 1 || res.Reset {
		t.Fatalf("resync send: res=%+v err=%v", res, err)
	}
	if _, err := ref.Ingest(p); err != nil {
		t.Fatal(err)
	}
	assertStoresAgree(t, store, ref)

	if got := scrapeMetric(t, ts, "dcserver_stream_nacks_total"); got != 1 {
		t.Errorf("nacks = %d, want 1", got)
	}
	if got := scrapeMetric(t, ts, "dcserver_ingest_full_fallbacks_total"); got != 1 {
		t.Errorf("full fallbacks = %d, want 1", got)
	}
	ev := journalEvents(store, "stream_resync")
	if len(ev) == 0 || ev[0].Fields["series"] != key {
		t.Errorf("stream_resync events = %+v, want one for %s", ev, key)
	}
	if sc.resyncs != 0 {
		t.Errorf("client reset the whole session (%d resyncs); a NACK must stay per-series", sc.resyncs)
	}
}

// retryUntilAcked drives the client's recovery loop (the loadgen's retry
// shape): resend whatever was NACKed — or everything, after a session
// reset — until the batch lands. Returns how many send rounds it took.
func retryUntilAcked(t *testing.T, sc *streamClient, ref *profstore.Store, ps []*profiler.Profile) int {
	t.Helper()
	pending := ps
	for attempt := 1; attempt <= 3; attempt++ {
		res, err := sc.send(pending)
		if err != nil {
			t.Fatal(err)
		}
		var retry []*profiler.Profile
		for _, p := range pending {
			key := profstore.LabelsOf(p.Meta).Key()
			if res.Reset || res.Nacked[key] {
				retry = append(retry, p)
				continue
			}
			if _, err := ref.Ingest(p); err != nil {
				t.Fatal(err)
			}
		}
		if pending = retry; len(pending) == 0 {
			return attempt
		}
	}
	t.Fatalf("batch did not converge in 3 attempts (%d profiles still pending)", len(pending))
	return 0
}

// TestStreamTruncatedBatchDropsSession cuts the connection mid-batch —
// the server sees a gob stream that ends early — and requires the batch
// to be rejected atomically (nothing ingested), the session dropped, and
// the client's next sends to converge to the full-upload state.
func TestStreamTruncatedBatchDropsSession(t *testing.T) {
	clock := &testClock{t: testBase}
	ts, store := newTestServer(t, clock, profdb.DefaultMaxBytes)
	ref := profstore.New(profstore.Config{Window: time.Minute, Now: clock.Now})
	defer ref.Close()

	p := testProfile("UNet", 1)
	sc := newStreamClient(&http.Client{Timeout: 30 * time.Second}, ts.URL, "cut")
	retryUntilAcked(t, sc, ref, []*profiler.Profile{p})
	clock.Advance(time.Minute)

	// Forge the next batch and ship only its first half: what the server
	// sees when the connection dies mid-upload.
	enc := profdb.NewDeltaEncoder()
	full, err := enc.EncodeFull(p, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := profdb.WriteBatch(gob.NewEncoder(&buf),
		&profdb.StreamBatch{Seq: 2, Frames: []profdb.StreamFrame{full}}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/stream?session="+sc.id, "application/octet-stream",
		bytes.NewReader(buf.Bytes()[:buf.Len()/2]))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated batch: status %d, want 400", resp.StatusCode)
	}
	if got := store.Stats().Ingested; got != 1 {
		t.Fatalf("truncated batch was not atomic: ingested %d, want 1", got)
	}
	if got := scrapeMetric(t, ts, "dcserver_stream_sessions_dropped_total"); got != 1 {
		t.Fatalf("dropped sessions = %d, want 1", got)
	}

	// The client, unaware its session is gone, keeps going; its recovery
	// loop must converge without double-ingesting anything.
	bumpKernels(p, 25)
	attempts := retryUntilAcked(t, sc, ref, []*profiler.Profile{p})
	if attempts < 2 {
		t.Fatalf("post-drop batch landed in %d attempt(s); the dead session must be rejected first", attempts)
	}
	if got := store.Stats().Ingested; got != 2 {
		t.Fatalf("ingested = %d, want 2 (exactly once per acknowledged state)", got)
	}
	assertStoresAgree(t, store, ref)
}

// TestStreamServerRestartMidSession re-creates the handler (fresh stream
// registry, same store) underneath an established session — a server
// restart from the client's point of view. The client must detect the
// dictionary mismatch, reset, re-establish by full upload, and converge.
func TestStreamServerRestartMidSession(t *testing.T) {
	clock := &testClock{t: testBase}
	store := profstore.New(profstore.Config{Window: time.Minute, Now: clock.Now})
	defer store.Close()
	ref := profstore.New(profstore.Config{Window: time.Minute, Now: clock.Now})
	defer ref.Close()

	var h atomic.Value
	h.Store(newHandler(store, profdb.DefaultMaxBytes, defaultSlowRequest, false))
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.Load().(http.Handler).ServeHTTP(w, r)
	}))
	defer ts.Close()

	// Three rounds establish the series and flow deltas, so the shared
	// frame dictionary is non-empty on both ends — the state a restart
	// actually destroys.
	p1, p2 := testProfile("UNet", 1), testProfile("DLRM", 2)
	sc := newStreamClient(&http.Client{Timeout: 30 * time.Second}, ts.URL, "boot")
	const preRounds = 3
	for r := 0; r < preRounds; r++ {
		if r > 0 {
			bumpKernels(p1, float64(10*r))
			bumpKernels(p2, float64(20*r))
		}
		retryUntilAcked(t, sc, ref, []*profiler.Profile{p1, p2})
		clock.Advance(time.Minute)
	}
	if sc.deltaFrames == 0 {
		t.Fatal("no delta frames flowed before the restart; the test would not exercise dictionary loss")
	}

	// "Restart": the store survives, every session (and its dictionary)
	// is gone.
	h.Store(newHandler(store, profdb.DefaultMaxBytes, defaultSlowRequest, false))

	// The next delta touches only known structure, so it ships no
	// dictionary additions — the fresh server dictionary cannot match and
	// the client must reset wholesale, not just resync one series.
	bumpKernels(p1, 30)
	bumpKernels(p2, 60)
	attempts := retryUntilAcked(t, sc, ref, []*profiler.Profile{p1, p2})
	if attempts < 2 {
		t.Fatalf("post-restart batch landed in %d attempt(s); the stale session must be rejected first", attempts)
	}
	if sc.resyncs == 0 {
		t.Fatal("client never reset its session after the server restart")
	}
	if got := store.Stats().Ingested; got != 2*(preRounds+1) {
		t.Fatalf("ingested = %d, want %d (2 series x %d rounds, exactly once each)",
			got, 2*(preRounds+1), preRounds+1)
	}
	assertStoresAgree(t, store, ref)
}
