package main

// End-of-run /metrics scraping for the loadgen harnesses: every mode
// finishes by deriving per-endpoint latency quantiles from the server's
// own dcserver_request_seconds histograms and appending them to its
// RESULT line — the benchmark reports what the telemetry measured, so a
// broken exposition fails the benchmark, not just the dashboard.

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// fetchMetrics GETs the Prometheus exposition from baseURL/metrics.
func fetchMetrics(httpc *http.Client, baseURL string) (string, error) {
	resp, err := httpc.Get(baseURL + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("/metrics: HTTP %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// endpointQuantiles derives latency quantiles for one endpoint from the
// dcserver_request_seconds histogram in a scraped exposition, using the
// same linear within-bucket interpolation as histogram_quantile. Returns
// false when the endpoint has no observations.
func endpointQuantiles(expo, endpoint string, qs ...float64) ([]time.Duration, bool) {
	type bucket struct{ bound, cum float64 }
	var buckets []bucket
	needle := `endpoint="` + endpoint + `"`
	for _, line := range strings.Split(expo, "\n") {
		if !strings.HasPrefix(line, "dcserver_request_seconds_bucket{") || !strings.Contains(line, needle) {
			continue
		}
		le := strings.Index(line, `le="`)
		if le < 0 {
			continue
		}
		rest := line[le+4:]
		q := strings.IndexByte(rest, '"')
		sp := strings.LastIndexByte(line, ' ')
		if q < 0 || sp < 0 {
			continue
		}
		bound, err1 := strconv.ParseFloat(rest[:q], 64)
		cum, err2 := strconv.ParseFloat(line[sp+1:], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		buckets = append(buckets, bucket{bound, cum})
	}
	if len(buckets) == 0 {
		return nil, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].bound < buckets[j].bound })
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return nil, false
	}
	quantile := func(q float64) time.Duration {
		rank := q * total
		prevBound, prevCum := 0.0, 0.0
		for _, b := range buckets {
			if b.cum >= rank {
				if math.IsInf(b.bound, 1) {
					// Overflow bucket: the last finite bound is all we know.
					return time.Duration(prevBound * float64(time.Second))
				}
				frac := 0.0
				if b.cum > prevCum {
					frac = (rank - prevCum) / (b.cum - prevCum)
				}
				sec := prevBound + (b.bound-prevBound)*frac
				return time.Duration(sec * float64(time.Second))
			}
			prevBound, prevCum = b.bound, b.cum
		}
		return time.Duration(buckets[len(buckets)-1].bound * float64(time.Second))
	}
	out := make([]time.Duration, len(qs))
	for i, q := range qs {
		out[i] = quantile(q)
	}
	return out, true
}

// scrapedLatencies renders " <name>_p50_ms=… <name>_p99_ms=…" fragments
// for each endpoint (leading space included), ready to append to a
// RESULT line. An endpoint with no observations (or missing from the
// exposition entirely) renders explicit n/a values — silently skipping
// it made a zero-traffic run's RESULT line indistinguishable from a
// scrape that failed to parse, and interpolating a quantile out of an
// all-zero histogram would fabricate a latency.
func scrapedLatencies(expo string, endpoints ...string) string {
	var sb strings.Builder
	for _, ep := range endpoints {
		name := strings.TrimPrefix(ep, "/")
		qs, ok := endpointQuantiles(expo, ep, 0.50, 0.99)
		if !ok {
			fmt.Fprintf(&sb, " %s_p50_ms=n/a %s_p99_ms=n/a", name, name)
			continue
		}
		fmt.Fprintf(&sb, " %s_p50_ms=%.3f %s_p99_ms=%.3f",
			name, float64(qs[0].Nanoseconds())/1e6, name, float64(qs[1].Nanoseconds())/1e6)
	}
	return sb.String()
}
