package main

// loadgen -cluster: the multi-node ingest benchmark. It boots a 3-node
// in-process cluster (each node a full dcserver handler over its own
// store, all on one shared virtual clock) plus a single-node control,
// drives the same pre-encoded ingest load through both, and then checks
// the tentpole invariant the hard way: /hotspots and /topk answered by
// the cluster must be byte-identical to the single node holding the
// union of the data. The RESULT line reports both throughputs and their
// ratio; the >=1.8x scaling gate is only asserted on multi-core hosts —
// on one CPU three in-process nodes time-slice one core and the ratio
// measures scheduling overhead, not scaling (see docs/OPERATIONS.md §11).

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deepcontext"
	"deepcontext/internal/cluster"
	"deepcontext/internal/profstore"
)

// clusterBenchRatio is the ingest scaling the 3-node RESULT line asserts
// on hosts with more than one CPU.
const clusterBenchRatio = 1.8

// lgNode is one in-process cluster member.
type lgNode struct {
	id    string
	url   string
	ln    net.Listener
	store *profstore.Store
	srv   *http.Server
}

func (n *lgNode) close() {
	if n.srv != nil {
		n.srv.Close()
	}
	if n.store != nil {
		n.store.Close()
	}
}

// bootLGCluster starts n dcserver nodes on ephemeral ports. With n == 1
// the node runs without a coordinator — the single-node control.
func bootLGCluster(cfg profstore.Config, n int, maxBody int64) ([]*lgNode, *cluster.Table, error) {
	nodes := make([]*lgNode, n)
	tbl := &cluster.Table{Generation: 1}
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		id := fmt.Sprintf("n%d", i+1)
		nodes[i] = &lgNode{id: id, ln: ln, url: "http://" + ln.Addr().String()}
		tbl.Nodes = append(tbl.Nodes, cluster.Node{ID: id, Addr: nodes[i].url})
	}
	for _, nd := range nodes {
		nd.store = profstore.New(cfg)
		var coord *cluster.Coordinator
		if n > 1 {
			var err error
			coord, err = cluster.New(cluster.Config{
				Self: nd.id, Store: nd.store, Table: tbl, Telemetry: nd.store.Telemetry(),
			})
			if err != nil {
				return nil, nil, err
			}
		}
		_, h := newServerHandler(nd.store, coord, maxBody, 0, false)
		nd.srv = newHTTPServer("", h)
		go nd.srv.Serve(nd.ln)
	}
	return nodes, tbl, nil
}

// cellLabels is the label series postOne/encodeOne assigns one (client,
// workload-index) cell — duplicated here so the generator can route a
// body to its owning node without decoding it.
func cellLabels(workload string, client, index int) profstore.Labels {
	vendor := "nvidia"
	if (client+index)%2 == 1 {
		vendor = "amd"
	}
	fw := "pytorch"
	if client%2 == 1 {
		fw = "jax"
	}
	return profstore.Labels{Workload: workload, Vendor: vendor, Framework: fw}
}

// runLoadgenCluster drives the cluster ingest benchmark and equivalence
// check described at the top of the file.
func runLoadgenCluster(cfg profstore.Config, clients int, loads string, iters, rounds int, maxBody int64) error {
	var workloads []string
	known := make(map[string]bool)
	for _, w := range deepcontext.WorkloadNames() {
		known[w] = true
	}
	for _, w := range strings.Split(loads, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		if !known[w] {
			return fmt.Errorf("loadgen: unknown workload %q (known: %s)",
				w, strings.Join(deepcontext.WorkloadNames(), ", "))
		}
		workloads = append(workloads, w)
	}
	if len(workloads) == 0 {
		return fmt.Errorf("loadgen: no workloads")
	}
	if clients <= 0 {
		clients = 1
	}
	if rounds <= 0 {
		rounds = 1
	}

	// Both deployments share one virtual clock, so every profile lands in
	// the same window on either side and the byte-equality check is exact.
	base := time.Now()
	var offset atomic.Int64
	cfg.Now = func() time.Time { return base.Add(time.Duration(offset.Load())) }

	// Pre-encode every (client, workload) cell once; the bench re-POSTs
	// these bodies so throughput measures the ingest path.
	type cell struct {
		body []byte
		key  string
	}
	cells := make([]cell, clients*len(workloads))
	var genWg sync.WaitGroup
	genErrs := make(chan error, len(cells))
	for c := 0; c < clients; c++ {
		for i, w := range workloads {
			genWg.Add(1)
			go func(c, i int, w string) {
				defer genWg.Done()
				body, err := encodeOne(w, c, i, iters, kernelScale{})
				if err != nil {
					genErrs <- err
					return
				}
				cells[c*len(workloads)+i] = cell{body: body, key: cellLabels(w, c, i).Key()}
			}(c, i, w)
		}
	}
	genWg.Wait()
	close(genErrs)
	for err := range genErrs {
		return fmt.Errorf("loadgen: profile generation: %w", err)
	}

	// ingestPhase drives `clients` concurrent posters for `rounds` rounds
	// against target(cellIndex), advancing the shared clock one window per
	// round, and returns the achieved qps.
	window := cfg.Window
	if window <= 0 {
		window = time.Minute
	}
	ingestPhase := func(target func(i int) string) (float64, error) {
		var fail atomic.Int64
		start := time.Now()
		total := 0
		for r := 0; r < rounds; r++ {
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					hc := &http.Client{Timeout: time.Minute}
					for i := range workloads {
						idx := c*len(workloads) + i
						if err := postBody(hc, target(idx), cells[idx].body); err != nil {
							fail.Add(1)
							fmt.Printf("loadgen-cluster: client %d: %v\n", c, err)
						}
					}
				}(c)
			}
			wg.Wait()
			total += clients * len(workloads)
			offset.Add(int64(window))
		}
		elapsed := time.Since(start)
		if fail.Load() > 0 {
			return 0, fmt.Errorf("loadgen: %d failed ingests", fail.Load())
		}
		return float64(total) / elapsed.Seconds(), nil
	}

	// Single-node control first.
	single, _, err := bootLGCluster(cfg, 1, maxBody)
	if err != nil {
		return err
	}
	defer func() {
		for _, nd := range single {
			nd.close()
		}
	}()
	singleQPS, err := ingestPhase(func(int) string { return single[0].url })
	if err != nil {
		return err
	}
	fmt.Printf("loadgen-cluster: single node: %.1f ingests/s (%d clients x %d workloads x %d rounds)\n",
		singleQPS, clients, len(workloads), rounds)

	// Reset the clock so the cluster run replays the identical timeline.
	offset.Store(0)

	nodes, tbl, err := bootLGCluster(cfg, 3, maxBody)
	if err != nil {
		return err
	}
	defer func() {
		for _, nd := range nodes {
			nd.close()
		}
	}()
	urlByID := map[string]string{}
	for _, nd := range nodes {
		urlByID[nd.id] = nd.url
	}
	ring := tbl.Ring()
	// Clients route each series to its owning node — the scatter half of
	// the design; the router path is exercised separately below.
	clusterQPS, err := ingestPhase(func(i int) string { return urlByID[ring.Owner(cells[i].key)] })
	if err != nil {
		return err
	}
	fmt.Printf("loadgen-cluster: 3 nodes (owner-routed): %.1f ingests/s\n", clusterQPS)

	// Router path: one extra round POSTed entirely to node 1, which must
	// forward the remote-owned series. Both deployments get the round so
	// they stay equal.
	hc := &http.Client{Timeout: time.Minute}
	for idx := range cells {
		if err := postBody(hc, nodes[0].url, cells[idx].body); err != nil {
			return fmt.Errorf("loadgen: router ingest: %w", err)
		}
		if err := postBody(hc, single[0].url, cells[idx].body); err != nil {
			return fmt.Errorf("loadgen: control ingest: %w", err)
		}
	}
	offset.Add(int64(window))

	// The tentpole invariant: scatter-gathered answers are byte-identical
	// to the single node holding the union of the data.
	for _, q := range []string{"/hotspots?top=10", "/topk?k=10"} {
		got, err := fetchRaw(hc, nodes[0].url+q)
		if err != nil {
			return fmt.Errorf("loadgen: cluster %s: %w", q, err)
		}
		want, err := fetchRaw(hc, single[0].url+q)
		if err != nil {
			return fmt.Errorf("loadgen: single %s: %w", q, err)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("loadgen: cluster %s diverged from single node (%d vs %d bytes)", q, len(got), len(want))
		}
		fmt.Printf("loadgen-cluster: %s byte-identical across deployments (%d bytes)\n", q, len(want))
	}
	var st cluster.Status
	if err := getJSON(hc, nodes[0].url+"/cluster/status", &st); err != nil {
		return fmt.Errorf("loadgen: cluster status: %w", err)
	}
	if st.Degraded {
		return fmt.Errorf("loadgen: cluster unexpectedly degraded: %+v", st)
	}

	ratio := clusterQPS / singleQPS
	gated := runtime.NumCPU() > 1
	ok := !gated || ratio >= clusterBenchRatio
	note := ""
	if !gated {
		note = " (1 cpu: scaling gate skipped — nodes time-slice one core)"
	}
	fmt.Printf("loadgen-cluster: RESULT nodes=3 qps=%.1f single_qps=%.1f ratio=%.2f ok=%v%s\n",
		clusterQPS, singleQPS, ratio, ok, note)
	if !ok {
		return fmt.Errorf("loadgen: cluster ingest scaled %.2fx, want >= %.1fx", ratio, clusterBenchRatio)
	}
	return nil
}

// fetchRaw GETs a URL and returns the raw response body, failing on any
// non-200 status.
func fetchRaw(hc *http.Client, url string) ([]byte, error) {
	resp, err := hc.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	return data, nil
}
