// Command dcanalyze runs DeepContext's automated performance analyzer over a
// saved profile database and prints the findings.
//
// Example:
//
//	dcanalyze -p unet.dcp -hotspot-frac 0.05
package main

import (
	"flag"
	"fmt"
	"os"

	"deepcontext"
)

func main() {
	var (
		path        = flag.String("p", "", "profile database (.dcp)")
		hotspotFrac = flag.Float64("hotspot-frac", 0, "override hotspot fraction threshold")
		bwdRatio    = flag.Float64("bwd-ratio", 0, "override backward/forward ratio threshold")
		jsonOut     = flag.Bool("json", false, "dump the profile as JSON instead of analyzing")
	)
	flag.Parse()
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}
	p, err := deepcontext.LoadProfile(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcanalyze:", err)
		os.Exit(1)
	}
	if *jsonOut {
		if err := deepcontext.ExportJSON(os.Stdout, p); err != nil {
			fmt.Fprintln(os.Stderr, "dcanalyze:", err)
			os.Exit(1)
		}
		return
	}
	th := deepcontext.DefaultThresholds()
	if *hotspotFrac > 0 {
		th.HotspotFrac = *hotspotFrac
	}
	if *bwdRatio > 0 {
		th.BwdFwdRatio = *bwdRatio
	}
	rep := deepcontext.AnalyzeWith(p, th)
	fmt.Printf("%s on %s (%s, %s): %d findings\n",
		p.Meta.Workload, p.Meta.Device, p.Meta.Framework, p.Meta.Substrate, len(rep.Issues))
	for _, is := range rep.Issues {
		fmt.Println(" ", is)
		if is.Suggestion != "" {
			fmt.Println("      suggestion:", is.Suggestion)
		}
	}
}
