// Command dcviz renders a saved profile as a flame graph: an interactive
// HTML page served over HTTP (the WebView of the paper's VSCode GUI), a
// static HTML file, an ASCII tree, or folded stacks.
//
// Examples:
//
//	dcviz -p unet.dcp -http :8080         # serve interactive views
//	dcviz -p unet.dcp -html unet.html     # static page
//	dcviz -p unet.dcp -text               # terminal rendering
//	dcviz -p unet.dcp -folded > out.txt   # for external flame tooling
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"deepcontext"
)

func main() {
	var (
		path   = flag.String("p", "", "profile database (.dcp)")
		addr   = flag.String("http", "", "serve the GUI on this address (e.g. :8080)")
		html   = flag.String("html", "", "write a static HTML flame graph")
		text   = flag.Bool("text", false, "print an ASCII flame tree")
		folded = flag.Bool("folded", false, "print folded stacks")
		metric = flag.String("metric", "", "metric to size boxes by (default gpu_time_ns)")
		bottom = flag.Bool("bottom-up", false, "invert the view")
	)
	flag.Parse()
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}
	p, err := deepcontext.LoadProfile(*path)
	if err != nil {
		fail(err)
	}
	rep := deepcontext.Analyze(p)
	opts := deepcontext.FlameOptions{Metric: *metric, BottomUp: *bottom, Annotate: rep}

	switch {
	case *addr != "":
		serve(*addr, p, rep, *metric)
	case *html != "":
		f, err := os.Create(*html)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := deepcontext.WriteFlameGraph(f, p, opts); err != nil {
			fail(err)
		}
		fmt.Println("wrote", *html)
	case *text:
		if err := deepcontext.WriteFlameText(os.Stdout, p, opts, 0); err != nil {
			fail(err)
		}
	case *folded:
		if err := deepcontext.WriteFolded(os.Stdout, p, *metric); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// newMux builds the GUI's routes. Every endpoint is read-only, so non-GET
// methods are rejected with 405.
func newMux(p *deepcontext.Profile, rep *deepcontext.Report, metric string) *http.ServeMux {
	get := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			// HEAD stays allowed: net/http serves it through the GET
			// handler with the body suppressed, and probes rely on it.
			if r.Method != http.MethodGet && r.Method != http.MethodHead {
				w.Header().Set("Allow", "GET, HEAD")
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			h(w, r)
		}
	}
	render := func(w http.ResponseWriter, bottomUp bool) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		opts := deepcontext.FlameOptions{Metric: metric, BottomUp: bottomUp, Annotate: rep}
		if err := deepcontext.WriteFlameGraph(w, p, opts); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", get(func(w http.ResponseWriter, r *http.Request) { render(w, false) }))
	mux.HandleFunc("/bottom-up", get(func(w http.ResponseWriter, r *http.Request) { render(w, true) }))
	mux.HandleFunc("/json", get(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := deepcontext.ExportJSON(w, p); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}))
	mux.HandleFunc("/healthz", get(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	}))
	return mux
}

func serve(addr string, p *deepcontext.Profile, rep *deepcontext.Report, metric string) {
	srv := &http.Server{
		Addr:              addr,
		Handler:           newMux(p, rep, metric),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Printf("serving %s: top-down at http://%s/, bottom-up at /bottom-up, raw at /json\n",
		p.Meta.Workload, addr)
	if err := srv.ListenAndServe(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dcviz:", err)
	os.Exit(1)
}
