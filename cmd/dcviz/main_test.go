package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"deepcontext"
	"deepcontext/internal/cct"
	"deepcontext/internal/profiler"
)

func vizProfile() *deepcontext.Profile {
	tree := cct.New()
	gid := tree.MetricID(cct.MetricGPUTime)
	leaf := tree.InsertPath([]cct.Frame{
		cct.PythonFrame("train.py", 1, "main"),
		cct.OperatorFrame("aten::conv2d"),
		{Kind: cct.KindKernel, Name: "gemm", Lib: "[gpu]", PC: 0x1},
	})
	tree.AddMetric(leaf, gid, 100)
	return &deepcontext.Profile{Tree: tree, Meta: profiler.Meta{Workload: "unit"}}
}

func TestMuxServesViewsAndHealth(t *testing.T) {
	p := vizProfile()
	ts := httptest.NewServer(newMux(p, deepcontext.Analyze(p), ""))
	defer ts.Close()

	for path, want := range map[string]string{
		"/":          "<html",
		"/bottom-up": "<html",
		"/json":      "gemm",
		"/healthz":   "ok",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s status = %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), want) {
			t.Fatalf("GET %s body lacks %q: %.80s", path, want, body)
		}
	}
}

func TestMuxRejectsNonGET(t *testing.T) {
	p := vizProfile()
	ts := httptest.NewServer(newMux(p, nil, ""))
	defer ts.Close()

	for _, path := range []string{"/", "/bottom-up", "/json", "/healthz"} {
		resp, err := http.Post(ts.URL+path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s status = %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != "GET, HEAD" {
			t.Fatalf("POST %s Allow = %q", path, allow)
		}
		// HEAD stays allowed for probes.
		head, err := http.Head(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		head.Body.Close()
		if head.StatusCode != http.StatusOK {
			t.Fatalf("HEAD %s status = %d", path, head.StatusCode)
		}
	}
}
