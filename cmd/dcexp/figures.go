package main

import (
	"fmt"
	"os"

	"deepcontext"
	"deepcontext/internal/cct"
	"deepcontext/internal/dlmonitor"
	"deepcontext/internal/framework"
	"deepcontext/internal/framework/jaxsim"
	"deepcontext/internal/framework/torchsim"
	"deepcontext/internal/gpu"
	"deepcontext/internal/gpu/cupti"
	"deepcontext/internal/vtime"
)

// fig3 prints the unified call path at a kernel launch with and without
// DLMonitor's context sources (paper Figs. 1 and 3).
func fig3() error {
	m := framework.NewMachine(gpu.A100())
	e := torchsim.New(m)
	tr, err := cupti.New(m.GPU)
	if err != nil {
		return err
	}
	mn, err := dlmonitor.Init(dlmonitor.Config{Machine: m, Frameworks: []framework.Hooks{e}, Tracer: tr})
	if err != nil {
		return err
	}
	th := m.NewThread("python-main")
	var with, without []cct.Frame
	mn.RegisterGPUCallback(func(ev *gpu.APIEvent) {
		if ev.Site == gpu.SiteLaunchKernel {
			with = mn.CallPath(th, dlmonitor.FullContext()).Frames
			without = mn.CallPath(th, dlmonitor.PathOptions{Native: true}).Frames
		}
	})
	th.WithPy("train.py", 10, "main", func() {
		th.WithPy("model.py", 42, "forward", func() {
			e.Run(th, torchsim.Op{
				Name:           "aten::conv2d",
				CPUCost:        20 * vtime.Microsecond,
				InternalFrames: 4,
				Kernels:        []gpu.KernelSpec{{Name: "implicit_gemm", Grid: gpu.D3(432), Block: gpu.D3(256), FLOPs: 1e9}},
			})
		})
	})
	print := func(title string, frames []cct.Frame) {
		fmt.Println(title)
		for i, f := range frames {
			fmt.Printf("%*s%s  [%s]\n", 2*i, "", f.Label(), f.Kind)
		}
		fmt.Println()
	}
	print("(a) w/o DLMonitor — native call path only:", without)
	print("(b) w/ DLMonitor — unified Python + framework + native + GPU path:", with)
	return nil
}

// fig4 shows the fused-to-original operator mapping captured during JAX
// compilation (paper Fig. 4).
func fig4() error {
	m := framework.NewMachine(gpu.A100())
	je := jaxsim.New(m)
	th := m.NewThread("python-main")
	var g *jaxsim.Graph
	th.WithPy("train.py", 5, "step", func() {
		g = je.Trace(th, "step", func(tc *jaxsim.TraceContext) {
			th.WithPy("model.py", 9, "mlp", func() {
				tc.Emit(jaxsim.Op{Name: "jax::op1", Kind: jaxsim.Matmul, Kernel: gpu.KernelSpec{Name: "dot", Grid: gpu.D3(8), Block: gpu.D3(128), FLOPs: 1e6}})
				tc.Emit(jaxsim.Op{Name: "jax::op2", Kind: jaxsim.Elementwise, Kernel: gpu.KernelSpec{Name: "add", Grid: gpu.D3(8), Block: gpu.D3(128), Bytes: 1e5}})
				tc.Emit(jaxsim.Op{Name: "jax::op3", Kind: jaxsim.Elementwise, Kernel: gpu.KernelSpec{Name: "gelu", Grid: gpu.D3(8), Block: gpu.D3(128), Bytes: 1e5}})
				tc.Emit(jaxsim.Op{Name: "jax::op4", Kind: jaxsim.Matmul, Kernel: gpu.KernelSpec{Name: "dot", Grid: gpu.D3(8), Block: gpu.D3(128), FLOPs: 1e6}})
			})
		})
	})
	ex := je.Compile(th, g)
	fmt.Printf("traced %d ops -> compiled %d ops after just-in-time compilation\n\n", len(g.Ops), len(ex.Ops))
	for _, c := range ex.Ops {
		if !c.IsFused() {
			fmt.Printf("runtime op %-28s <- %s (unchanged)\n", c.Name, c.Origins[0].Name)
			continue
		}
		fmt.Printf("runtime op %-28s <- fused from:\n", c.Name)
		for _, o := range ex.FusionMap[c.Name] {
			loc := "?"
			if n := len(o.PyPath); n > 0 {
				loc = fmt.Sprintf("%s:%d", o.PyPath[n-1].File, o.PyPath[n-1].Line)
			}
			fmt.Printf("    %-12s captured during the compilation phase at %s\n", o.Name, loc)
		}
	}
	return nil
}

// figView profiles a workload and renders the named flame view.
func figView(workload, vendor string, knobs deepcontext.Knobs, bottomUp bool, depth, iters int) error {
	s, err := deepcontext.NewSession(deepcontext.Config{Vendor: vendor})
	if err != nil {
		return err
	}
	if err := s.RunWorkload(workload, knobs, iters); err != nil {
		return err
	}
	p := s.Stop()
	p.Meta.Workload = workload
	rep := deepcontext.Analyze(p)
	return deepcontext.WriteFlameText(os.Stdout, p,
		deepcontext.FlameOptions{BottomUp: bottomUp, Annotate: rep}, depth)
}

// fig7: DLRM forward/backward association view — backward kernels appear
// under the forward python/operator context.
func fig7(iters int) error {
	fmt.Println("-- DLRM-small, forward/backward association (top-down) --")
	return figView("DLRM-small", "nvidia", deepcontext.Knobs{}, false, 7, iters)
}

// fig8: U-Net bottom-up view.
func fig8(iters int) error {
	fmt.Println("-- U-Net, bottom-up view --")
	return figView("UNet", "nvidia", deepcontext.Knobs{LoaderWorkers: 6}, true, 2, iters)
}

// fig9: Transformer-Big top-down view (loss_fn small kernels visible).
func fig9(iters int) error {
	fmt.Println("-- Transformer-Big, top-down view --")
	return figView("Transformer-Big", "nvidia", deepcontext.Knobs{}, false, 5, iters)
}

// fig10: U-Net flame graphs on both vendors.
func fig10(iters int) error {
	for _, vendor := range []string{"nvidia", "amd"} {
		fmt.Printf("-- U-Net on %s (bottom-up) --\n", vendor)
		if err := figView("UNet", vendor, deepcontext.Knobs{LoaderWorkers: 6}, true, 1, iters); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
