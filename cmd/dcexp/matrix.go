package main

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"deepcontext"
	"deepcontext/internal/cct"
)

// shard is one cell of the experiment matrix: a workload on one vendor
// under one framework.
type shard struct {
	workload  string
	vendor    string
	framework string
}

func (s shard) name() string { return s.workload + "/" + s.vendor + "/" + s.framework }

type shardResult struct {
	shard   shard
	profile *deepcontext.Profile
	endET   deepcontext.Duration
	wall    time.Duration
	err     error
}

// runMatrix profiles the full workload × {nvidia,amd} × {pytorch,jax} matrix
// concurrently on a bounded worker pool, merges the per-shard profiles into
// one aggregate, and saves aggregate (plus per-shard profiles when bundle is
// set) to out. Each shard simulates its own machine, so shards share nothing
// and any merge order yields the same aggregate (cct.Merge is associative).
func runMatrix(iters, workers int, out string, bundle bool) error {
	var shards []shard
	for _, w := range deepcontext.WorkloadNames() {
		for _, vendor := range []string{"nvidia", "amd"} {
			for _, fw := range []string{"pytorch", "jax"} {
				shards = append(shards, shard{workload: w, vendor: vendor, framework: fw})
			}
		}
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(shards) {
		workers = len(shards)
	}
	fmt.Printf("matrix: %d shards (%d workloads x 2 vendors x 2 frameworks), %d workers, %d iters\n",
		len(shards), len(deepcontext.WorkloadNames()), workers, iters)

	jobs := make(chan shard)
	results := make(chan shardResult, len(shards))
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sh := range jobs {
				results <- runShard(sh, iters)
			}
		}()
	}
	start := time.Now()
	for _, sh := range shards {
		jobs <- sh
	}
	close(jobs)
	wg.Wait()
	close(results)

	byName := make(map[string]shardResult, len(shards))
	for r := range results {
		if r.err != nil {
			return fmt.Errorf("shard %s: %w", r.shard.name(), r.err)
		}
		byName[r.shard.name()] = r
	}
	elapsed := time.Since(start)

	// Report in matrix order regardless of completion order.
	fmt.Printf("\n%-18s %-8s %-9s %14s %10s %10s %9s\n",
		"workload", "vendor", "framework", "end-to-end", "contexts", "kernels", "wall")
	var ordered []shardResult
	for _, sh := range shards {
		ordered = append(ordered, byName[sh.name()])
	}
	for _, r := range ordered {
		kid, _ := r.profile.Tree.Schema.Lookup(cct.MetricKernelCount)
		fmt.Printf("%-18s %-8s %-9s %14v %10d %10.0f %9v\n",
			r.shard.workload, r.shard.vendor, r.shard.framework,
			r.endET, r.profile.Tree.NodeCount(),
			r.profile.Tree.Root.InclValue(kid), r.wall.Round(time.Millisecond))
	}

	profiles := make([]*deepcontext.Profile, len(ordered))
	for i, r := range ordered {
		profiles[i] = r.profile
	}
	agg, err := deepcontext.MergeProfiles(profiles...)
	if err != nil {
		return err
	}
	gid, _ := agg.Tree.Schema.Lookup(cct.MetricGPUTime)
	fmt.Printf("\naggregate: %d calling contexts, %d metrics, %.0f ns total GPU time across the matrix\n",
		agg.Tree.NodeCount(), agg.Tree.Schema.Len(), agg.Tree.Root.InclValue(gid))
	fmt.Printf("matrix wall time: %v with %d workers\n", elapsed.Round(time.Millisecond), workers)

	entries := []deepcontext.BundleEntry{{Name: "aggregate", Profile: agg}}
	if bundle {
		names := make([]string, 0, len(byName))
		for n := range byName {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			entries = append(entries, deepcontext.BundleEntry{Name: n, Profile: byName[n].profile})
		}
	}
	if err := deepcontext.SaveProfileBundle(out, entries); err != nil {
		return err
	}
	what := "aggregate profile"
	if bundle {
		what = fmt.Sprintf("aggregate + %d shard profiles", len(entries)-1)
	}
	fmt.Printf("saved %s to %s (load with dcanalyze/dcviz, first entry is the aggregate)\n", what, out)
	return nil
}

// runShard profiles one matrix cell on its own simulated machine. CCT
// ingestion is pinned to one shard: the matrix's parallelism lives at the
// runner level (one goroutine per cell), and the serial path keeps saved
// .dcp artifacts byte-stable across hosts with different GOMAXPROCS.
func runShard(sh shard, iters int) shardResult {
	wallStart := time.Now()
	s, err := deepcontext.NewSession(deepcontext.Config{Vendor: sh.vendor, Framework: sh.framework, Shards: 1})
	if err != nil {
		return shardResult{shard: sh, err: err}
	}
	if err := s.RunWorkload(sh.workload, deepcontext.Knobs{}, iters); err != nil {
		return shardResult{shard: sh, err: err}
	}
	p := s.Stop()
	p.Meta.Workload = sh.workload
	p.Meta.Iterations = iters
	return shardResult{shard: sh, profile: p, endET: s.EndToEnd(), wall: time.Since(wallStart)}
}
