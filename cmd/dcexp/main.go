// Command dcexp regenerates the paper's tables and figures from the
// simulation. Run `dcexp -list` for the experiment index.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"deepcontext/internal/eval"
	"deepcontext/internal/gpu"
)

var experiments = []struct {
	id   string
	desc string
}{
	{"matrix", "full workload x {nvidia,amd} x {pytorch,jax} sweep on a worker pool; saves a merged aggregate profile"},
	{"table1", "feature matrix of profiling tools"},
	{"table2", "evaluation platforms"},
	{"fig6a", "time overhead, PyTorch workloads, Nvidia+AMD"},
	{"fig6b", "time overhead, JAX workloads, Nvidia+AMD"},
	{"fig6c", "memory overhead, PyTorch workloads, Nvidia+AMD"},
	{"fig6d", "memory overhead, JAX workloads, Nvidia+AMD"},
	{"cases", "all Table 3 case studies"},
	{"cs-dlrm", "§6.1 DLRM aten::index -> index_select"},
	{"cs-gnn", "§6.1 GNN aten::index -> index_select"},
	{"cs-unet-layout", "§6.2 U-Net channels_last"},
	{"cs-unet-loader", "§6.4 U-Net loader workers"},
	{"cs-transformer", "§6.3 Transformer-Big loss fusion"},
	{"cs-llama", "§6.7 Llama3 stall analysis"},
	{"cs-amd-nv", "§6.5 AMD vs Nvidia hotspots"},
	{"jax-vs-pytorch", "§6.6 JAX vs PyTorch comparison"},
	{"fig3", "Fig. 1/3: call path with vs without DLMonitor context"},
	{"fig4", "Fig. 4: JAX fused-to-original operator mapping"},
	{"fig7", "Fig. 7: DLRM forward/backward association view"},
	{"fig8", "Fig. 8: U-Net bottom-up view"},
	{"fig9", "Fig. 9: Transformer-Big top-down view"},
	{"fig10", "Fig. 10: AMD vs Nvidia U-Net flame graphs"},
}

func main() {
	exp := flag.String("exp", "", "experiment id (see -list)")
	iters := flag.Int("iters", 100, "iterations per run (paper: 100)")
	list := flag.Bool("list", false, "list experiments")
	workers := flag.Int("workers", 0, "matrix: worker pool size (0 = NumCPU)")
	out := flag.String("out", "matrix.dcp", "matrix: output profile database path")
	bundle := flag.Bool("bundle", false, "matrix: also save every per-shard profile alongside the aggregate")
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range experiments {
			fmt.Printf("  %-16s %s\n", e.id, e.desc)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}
	var err error
	if *exp == "matrix" {
		err = runMatrix(*iters, *workers, *out, *bundle)
	} else {
		err = run(*exp, *iters)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcexp:", err)
		os.Exit(1)
	}
}

func fig6(fw string, mem bool, iters int) error {
	for _, vendor := range []gpu.Vendor{gpu.VendorNvidia, gpu.VendorAMD} {
		rows, err := eval.OverheadSweep(fw, vendor, iters)
		if err != nil {
			return err
		}
		kind := "time"
		if mem {
			kind = "memory"
		}
		title := fmt.Sprintf("-- %s overhead, %s workloads on %v --", kind, fw, vendor)
		fmt.Println(eval.FormatOverheadRows(title, rows, mem))
	}
	return nil
}

func printCase(c eval.CaseResult) {
	fmt.Printf("case:         %s\n", c.Name)
	fmt.Printf("model:        %s on %s\n", c.Model, c.Platform)
	fmt.Printf("client:       %s\n", c.Client)
	fmt.Printf("finding:      %s\n", c.Finding)
	if c.Optimization != "" {
		fmt.Printf("optimization: %s\n", c.Optimization)
	}
	if c.Speedup > 0 {
		unit := "end-to-end"
		if c.GPUOnly {
			unit = "total GPU time"
		}
		fmt.Printf("speedup:      %.2fx (%s: %v -> %v)\n", c.Speedup, unit, c.Before, c.After)
	} else {
		fmt.Printf("speedup:      N/A\n")
	}
	if c.Notes != "" {
		fmt.Printf("notes:        %s\n", c.Notes)
	}
	fmt.Println()
}

func run(exp string, iters int) error {
	switch exp {
	case "table1":
		fmt.Print(eval.FormatTable1())
	case "table2":
		fmt.Print(eval.FormatTable2())
	case "fig6a":
		return fig6("pytorch", false, iters)
	case "fig6b":
		return fig6("jax", false, iters)
	case "fig6c":
		return fig6("pytorch", true, iters)
	case "fig6d":
		return fig6("jax", true, iters)
	case "cases":
		cases, err := eval.AllCases(iters)
		if err != nil {
			return err
		}
		for _, c := range cases {
			printCase(c)
		}
	case "cs-dlrm":
		return oneCase(eval.CaseDLRMIndex, iters)
	case "cs-gnn":
		return oneCase(eval.CaseGNNIndex, iters)
	case "cs-unet-layout":
		return oneCase(eval.CaseUNetLayout, iters)
	case "cs-unet-loader":
		return oneCase(eval.CaseUNetLoader, iters)
	case "cs-transformer":
		return oneCase(eval.CaseTransformerFusion, iters)
	case "cs-llama":
		return oneCase(eval.CaseLlamaStalls, iters)
	case "cs-amd-nv":
		nv, amd, err := eval.CaseAMDvsNV(iters)
		if err != nil {
			return err
		}
		printCase(nv)
		printCase(amd)
	case "fig3":
		return fig3()
	case "fig4":
		return fig4()
	case "fig7":
		return fig7(min(iters, 20))
	case "fig8":
		return fig8(min(iters, 20))
	case "fig9":
		return fig9(min(iters, 20))
	case "fig10":
		return fig10(min(iters, 20))
	case "jax-vs-pytorch":
		rows, err := eval.JAXvsPyTorch(iters)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %14s %14s %9s %10s %10s\n",
			"Workload", "PyTorch", "JAX", "Speedup", "PTKernels", "JAXKernels")
		for _, r := range rows {
			fmt.Printf("%-14s %14s %14s %8.2fx %10d %10d\n",
				r.Workload, r.PyTorchE2E, r.JAXE2E, r.Speedup, r.PTKernels, r.JAXKernels)
		}
	default:
		var ids []string
		for _, e := range experiments {
			ids = append(ids, e.id)
		}
		return fmt.Errorf("unknown experiment %q (known: %s)", exp, strings.Join(ids, ", "))
	}
	return nil
}

func oneCase(fn func(int) (eval.CaseResult, error), iters int) error {
	c, err := fn(iters)
	if err != nil {
		return err
	}
	printCase(c)
	return nil
}
