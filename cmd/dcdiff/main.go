// Command dcdiff compares two saved profile databases — typically the same
// workload before and after an optimization knob — and reports where the
// metric moved: a signed hotspot table ranked by magnitude of change, plus
// optional signed flame-graph renderings (ASCII and interactive HTML).
//
// Positive deltas are regressions (the "after" run spends more), negative
// deltas are improvements.
//
// Example:
//
//	dcdiff before.dcp after.dcp
//	dcdiff -metric cpu_time_ns -top 10 -flame -html diff.html before.dcp after.dcp
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"deepcontext"
	"deepcontext/internal/cct"
)

func main() {
	var (
		metric = flag.String("metric", cct.MetricGPUTime, "metric to diff")
		top    = flag.Int("top", 20, "rows in the hotspot table")
		flame  = flag.Bool("flame", false, "also print the signed ASCII flame tree")
		depth  = flag.Int("depth", 6, "max depth of the ASCII flame tree")
		html   = flag.String("html", "", "write a signed interactive HTML flame graph to this path")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dcdiff [flags] before.dcp after.dcp\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Arg(1), *metric, *top, *flame, *depth, *html); err != nil {
		fmt.Fprintln(os.Stderr, "dcdiff:", err)
		os.Exit(1)
	}
}

// row is one hotspot-table entry: a calling context whose exclusive metric
// moved, with the per-side values for context.
type row struct {
	label  string
	kind   string
	delta  float64
	before float64
	after  float64
}

// exclByPath flattens a tree into path-key → exclusive value for the metric.
func exclByPath(t *cct.Tree, metric string) map[string]float64 {
	out := make(map[string]float64)
	id, ok := t.Schema.Lookup(metric)
	if !ok {
		return out
	}
	t.Visit(func(n *cct.Node) {
		if v := n.ExclValue(id); v != 0 {
			out[pathKey(n)] = v
		}
	})
	return out
}

func pathKey(n *cct.Node) string {
	var sb strings.Builder
	for _, f := range n.Path() {
		sb.WriteString(f.Key())
		sb.WriteByte(';')
	}
	return sb.String()
}

func run(beforePath, afterPath, metric string, top int, flame bool, depth int, htmlPath string) error {
	before, err := deepcontext.LoadProfile(beforePath)
	if err != nil {
		return fmt.Errorf("load %s: %w", beforePath, err)
	}
	after, err := deepcontext.LoadProfile(afterPath)
	if err != nil {
		return fmt.Errorf("load %s: %w", afterPath, err)
	}
	// Frames must match by cross-run stable identity, and the table's
	// before/after lookups must land on the same path keys as the delta
	// tree — so normalize each side once and diff those trees directly
	// (DiffProfiles would normalize a second time).
	before.Tree = cct.NormalizeAddresses(before.Tree)
	after.Tree = cct.NormalizeAddresses(after.Tree)
	diff := &deepcontext.Profile{Tree: cct.Diff(after.Tree, before.Tree), Meta: after.Meta}
	id, ok := diff.Tree.Schema.Lookup(metric)
	if !ok {
		return fmt.Errorf("metric %q not present in either profile (known: %s)",
			metric, strings.Join(diff.Tree.Schema.Names(), ", "))
	}

	beforeVals := exclByPath(before.Tree, metric)
	afterVals := exclByPath(after.Tree, metric)
	var rows []row
	diff.Tree.Visit(func(n *cct.Node) {
		d := n.ExclValue(id)
		if d == 0 || n.Kind == cct.KindRoot {
			return
		}
		key := pathKey(n)
		rows = append(rows, row{
			label:  n.Label(),
			kind:   n.Kind.String(),
			delta:  d,
			before: beforeVals[key],
			after:  afterVals[key],
		})
	})
	sort.SliceStable(rows, func(i, j int) bool {
		return math.Abs(rows[i].delta) > math.Abs(rows[j].delta)
	})

	fmt.Printf("dcdiff: %s (%s) -> %s (%s), metric %s\n",
		before.Meta.Workload, beforePath, after.Meta.Workload, afterPath, metric)
	var bTotal, aTotal float64
	bid, bok := before.Tree.Schema.Lookup(metric)
	aid, aok := after.Tree.Schema.Lookup(metric)
	if bok {
		bTotal = before.Tree.Root.InclValue(bid)
	}
	if aok {
		aTotal = after.Tree.Root.InclValue(aid)
	}
	net := aTotal - bTotal
	verdict := "regression"
	if net < 0 {
		verdict = "improvement"
	} else if net == 0 {
		verdict = "no net change"
	}
	relative := ""
	if bTotal != 0 {
		relative = fmt.Sprintf(" (%+.2f%%)", 100*net/bTotal)
	}
	fmt.Printf("net: %s -> %s, delta %+.0f%s — %s\n\n",
		fmtVal(bTotal), fmtVal(aTotal), net, relative, verdict)

	shown := len(rows)
	if top > 0 && shown > top {
		shown = top
	}
	fmt.Printf("%-4s %14s %14s %14s %8s  %s\n", "#", "before", "after", "delta", "kind", "frame")
	for i := 0; i < shown; i++ {
		r := rows[i]
		fmt.Printf("%-4d %14s %14s %+14.0f %8s  %s\n",
			i+1, fmtVal(r.before), fmtVal(r.after), r.delta, r.kind, r.label)
	}
	if shown < len(rows) {
		fmt.Printf("... and %d more changed contexts (raise -top)\n", len(rows)-shown)
	}

	if flame {
		fmt.Println()
		if err := deepcontext.WriteFlameText(os.Stdout, diff,
			deepcontext.FlameOptions{Metric: metric, Signed: true}, depth); err != nil {
			return err
		}
	}
	if htmlPath != "" {
		f, err := os.Create(htmlPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := deepcontext.WriteFlameGraph(f, diff,
			deepcontext.FlameOptions{Metric: metric, Signed: true}); err != nil {
			return err
		}
		fmt.Printf("\nwrote signed flame graph to %s\n", htmlPath)
	}
	return nil
}

func fmtVal(v float64) string {
	return fmt.Sprintf("%.0f", v)
}
