package deepcontext

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"deepcontext/internal/cct"
)

func TestMergeProfilesAcrossShards(t *testing.T) {
	nv, err := ProfileWorkload("DLRM-small", Config{Vendor: "nvidia"}, Knobs{})
	if err != nil {
		t.Fatal(err)
	}
	amd, err := ProfileWorkload("DLRM-small", Config{Vendor: "amd"}, Knobs{})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := MergeProfiles(nv, amd)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Meta.Vendor != "Nvidia+AMD" {
		t.Fatalf("vendor = %q", agg.Meta.Vendor)
	}
	gid, ok := agg.Tree.Schema.Lookup(cct.MetricGPUTime)
	if !ok {
		t.Fatal("merged schema lost gpu time")
	}
	nvID, _ := nv.Tree.Schema.Lookup(cct.MetricGPUTime)
	amdID, _ := amd.Tree.Schema.Lookup(cct.MetricGPUTime)
	want := nv.Tree.Root.InclValue(nvID) + amd.Tree.Root.InclValue(amdID)
	if got := agg.Tree.Root.InclValue(gid); got != want {
		t.Fatalf("merged gpu total = %v, want %v", got, want)
	}
	if agg.Stats.APICallbacks != nv.Stats.APICallbacks+amd.Stats.APICallbacks {
		t.Fatal("stats not summed")
	}
	// Inputs untouched.
	if nv.Tree.Root.InclValue(nvID) == agg.Tree.Root.InclValue(gid) {
		t.Fatal("merge did not aggregate (or mutated an input)")
	}
	if _, err := MergeProfiles(); err == nil {
		t.Fatal("empty merge should fail")
	}
}

func TestDiffProfilesFindsKnobImprovement(t *testing.T) {
	before, err := ProfileWorkload("DLRM-small", Config{}, Knobs{})
	if err != nil {
		t.Fatal(err)
	}
	after, err := ProfileWorkload("DLRM-small", Config{}, Knobs{UseIndexSelect: true})
	if err != nil {
		t.Fatal(err)
	}
	d := DiffProfiles(after, before)
	id, ok := d.Tree.Schema.Lookup(cct.MetricGPUTime)
	if !ok {
		t.Fatal("diff lost schema")
	}
	// The index_select knob is the paper's §6.1 win: GPU time must drop.
	if got := d.Tree.Root.InclValue(id); got >= 0 {
		t.Fatalf("diff total = %v, want negative (optimization should help)", got)
	}

	// The signed renderers accept the delta profile end to end.
	var txt bytes.Buffer
	if err := WriteFlameText(&txt, d, FlameOptions{Signed: true}, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "diff flame graph") {
		t.Fatalf("not a diff render:\n%s", txt.String())
	}
	var html bytes.Buffer
	if err := WriteFlameGraph(&html, d, FlameOptions{Signed: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html.String(), "SIGNED") {
		t.Fatal("html diff render not signed")
	}
}

func TestProfileBundleRoundTripThroughFacade(t *testing.T) {
	a, err := ProfileWorkload("GNN", Config{}, Knobs{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ProfileWorkload("GNN", Config{Framework: "jax"}, Knobs{})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := MergeProfiles(a, b)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "matrix.dcp")
	entries := []BundleEntry{
		{Name: "aggregate", Profile: agg},
		{Name: "GNN/nvidia/pytorch", Profile: a},
		{Name: "GNN/nvidia/jax", Profile: b},
	}
	if err := SaveProfileBundle(path, entries); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfileBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Name != "aggregate" {
		t.Fatalf("bundle = %d entries, first %q", len(got), got[0].Name)
	}
	if got[0].Profile.Tree.NodeCount() != agg.Tree.NodeCount() {
		t.Fatal("aggregate lost nodes in bundle round trip")
	}
	// LoadProfile on a bundle yields the first entry (the aggregate).
	first, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if first.Tree.NodeCount() != agg.Tree.NodeCount() {
		t.Fatal("LoadProfile did not return the first bundle entry")
	}
}
