module deepcontext

go 1.24
