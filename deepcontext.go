// Package deepcontext is the public facade of the DeepContext reproduction:
// a context-aware, cross-platform, cross-framework profiler for (simulated)
// deep learning workloads, after Zhao et al., ASPLOS 2025.
//
// The package wires the internal subsystems together — the DLMonitor shim,
// the CCT-building profiler, the automated analyzer and the flame-graph
// GUI — behind a small API:
//
//	profile, _ := deepcontext.ProfileWorkload("UNet", deepcontext.Config{}, deepcontext.Knobs{})
//	report := deepcontext.Analyze(profile)
//	for _, issue := range report.Issues {
//	    fmt.Println(issue)
//	}
//	deepcontext.WriteFlameGraph(os.Stdout, profile, deepcontext.FlameOptions{})
//
// For custom workloads, open a Session, drive the simulated frameworks
// through Env(), and Stop() to collect the profile.
package deepcontext

import (
	"fmt"
	"io"
	"runtime"
	"strings"

	"deepcontext/internal/analyzer"
	"deepcontext/internal/cct"
	"deepcontext/internal/dlmonitor"
	"deepcontext/internal/eval"
	"deepcontext/internal/flamegraph"
	"deepcontext/internal/framework"
	"deepcontext/internal/gpu"
	"deepcontext/internal/profdb"
	"deepcontext/internal/profiler"
	"deepcontext/internal/vtime"
	"deepcontext/internal/workloads"
)

// Re-exported types so callers need only this package.
type (
	// Profile is a collected profile: the calling context tree plus
	// metadata and statistics.
	Profile = profiler.Profile
	// Report is the automated analyzer's output.
	Report = analyzer.Report
	// Issue is one analyzer finding.
	Issue = analyzer.Issue
	// Thresholds tunes the built-in analyses.
	Thresholds = analyzer.Thresholds
	// Knobs toggles the case-study workload optimizations.
	Knobs = workloads.Knobs
	// Env exposes the simulated machine and framework engines for
	// custom workloads.
	Env = workloads.Env
	// Workload is one of the ten evaluation workloads.
	Workload = workloads.Workload
	// Duration is virtual time in nanoseconds.
	Duration = vtime.Duration
)

// DefaultThresholds mirrors analyzer.DefaultThresholds.
func DefaultThresholds() Thresholds { return analyzer.DefaultThresholds() }

// Config selects platform, framework and collection options for a session.
type Config struct {
	// Vendor is "nvidia" (default) or "amd".
	Vendor string
	// Framework is "pytorch" (default) or "jax".
	Framework string
	// NativeCallPaths enables C/C++ call-path unwinding (higher
	// overhead, deeper context).
	NativeCallPaths bool
	// CPUSampling enables timer-based CPU profiling.
	CPUSampling bool
	// PCSampling enables GPU instruction sampling with stall reasons.
	PCSampling bool
	// Shards is the number of per-thread CCT shards the ingestion hot
	// path records into; threads map to shards by ID and the shards fold
	// into one tree (cct.Merge) when the session stops. 0 selects
	// GOMAXPROCS. Shards = 1 forces the serial single-tree path, whose
	// output is bit-for-bit identical to the unsharded implementation;
	// any shard count produces an equivalent profile (same contexts, same
	// aggregates — see cct.Equivalent), differing only in child order.
	Shards int
}

func (c Config) vendor() (gpu.Vendor, error) {
	switch strings.ToLower(c.Vendor) {
	case "", "nvidia", "cuda":
		return gpu.VendorNvidia, nil
	case "amd", "rocm":
		return gpu.VendorAMD, nil
	}
	return 0, fmt.Errorf("deepcontext: unknown vendor %q (want nvidia or amd)", c.Vendor)
}

func (c Config) framework() (string, error) {
	switch strings.ToLower(c.Framework) {
	case "", "pytorch", "torch":
		return "pytorch", nil
	case "jax":
		return "jax", nil
	}
	return "", fmt.Errorf("deepcontext: unknown framework %q (want pytorch or jax)", c.Framework)
}

// Session is an active profiling session over a simulated machine.
type Session struct {
	env  *workloads.Env
	mn   *dlmonitor.Monitor
	sess *profiler.Session
	fw   string
}

// NewSession builds a machine for cfg, initializes DLMonitor (the LD_PRELOAD
// moment) and starts the profiler.
func NewSession(cfg Config) (*Session, error) {
	vendor, err := cfg.vendor()
	if err != nil {
		return nil, err
	}
	fw, err := cfg.framework()
	if err != nil {
		return nil, err
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	env := workloads.NewEnv(eval.DeviceFor(vendor))
	tracer, err := eval.NewTracer(env)
	if err != nil {
		return nil, err
	}
	mn, err := dlmonitor.Init(dlmonitor.Config{
		Machine:    env.M,
		Frameworks: []framework.Hooks{env.Torch, env.Jax},
		Tracer:     tracer,
		Shards:     shards,
	})
	if err != nil {
		return nil, err
	}
	pcfg := profiler.DefaultConfig()
	if cfg.NativeCallPaths {
		pcfg.Path = dlmonitor.FullContext()
	}
	pcfg.CPUSampling = cfg.CPUSampling
	pcfg.PCSampling = cfg.PCSampling
	pcfg.Shards = shards
	sess := profiler.NewSession(mn, env.M, tracer, pcfg)
	sess.SetMeta(profiler.Meta{Framework: fw})
	if err := sess.Start(); err != nil {
		return nil, err
	}
	if cfg.CPUSampling {
		sess.AttachCPUSampler(env.Main)
		env.M.AddThreadHook(sess.AttachCPUSampler)
	}
	return &Session{env: env, mn: mn, sess: sess, fw: fw}, nil
}

// Env returns the simulated machine and framework engines; custom workloads
// drive them directly (see examples/).
func (s *Session) Env() *Env { return s.env }

// RunWorkload executes one of the bundled evaluation workloads under this
// session for iters iterations (0 selects the paper's 100).
func (s *Session) RunWorkload(name string, knobs Knobs, iters int) error {
	w, ok := workloads.ByName(name)
	if !ok {
		return fmt.Errorf("deepcontext: unknown workload %q (known: %s)",
			name, strings.Join(WorkloadNames(), ", "))
	}
	if iters <= 0 {
		iters = w.DefaultIters
	}
	switch s.fw {
	case "jax":
		workloads.RunJAX(s.env, w, knobs, iters)
	default:
		workloads.RunPyTorch(s.env, w, knobs, iters)
	}
	return nil
}

// Stop flushes collection and returns the profile. The session cannot be
// reused afterwards.
func (s *Session) Stop() *Profile { return s.sess.Stop() }

// EndToEnd reports the run's virtual makespan so far.
func (s *Session) EndToEnd() Duration { return s.env.M.EndToEnd() }

// WorkloadNames lists the bundled workloads in the paper's order.
func WorkloadNames() []string {
	var out []string
	for _, w := range workloads.All() {
		out = append(out, w.Name)
	}
	return out
}

// ProfileWorkload profiles one bundled workload end to end and returns the
// profile with metadata filled in.
func ProfileWorkload(name string, cfg Config, knobs Knobs) (*Profile, error) {
	s, err := NewSession(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.RunWorkload(name, knobs, 0); err != nil {
		return nil, err
	}
	p := s.Stop()
	p.Meta.Workload = name
	return p, nil
}

// Analyze runs all built-in analyses with default thresholds.
func Analyze(p *Profile) *Report { return analyzer.Run(p, analyzer.DefaultThresholds()) }

// AnalyzeWith runs the analyzer with custom thresholds (and optionally a
// custom analysis set via analyzer.Analysis implementations).
func AnalyzeWith(p *Profile, th Thresholds, analyses ...analyzer.Analysis) *Report {
	return analyzer.Run(p, th, analyses...)
}

// MergeProfiles aggregates profiles into one: trees are unioned with metric
// combination (schemas unify by name, frames by their equivalence key),
// stats are summed, and fused-operator origins are pooled. Because the
// inputs come from different runs (or machines), address-unified frames are
// first normalized to their stable name/library identity — run-specific
// program counters are not comparable across processes. The inputs are not
// modified. Merging is associative, so shards of a batch run may be
// combined in any order — including completion order of a worker pool.
func MergeProfiles(ps ...*Profile) (*Profile, error) {
	if len(ps) == 0 {
		return nil, fmt.Errorf("deepcontext: MergeProfiles needs at least one profile")
	}
	out := &Profile{
		Tree:  cct.New(),
		Fused: make(map[string][]framework.FusedOrigin),
	}
	var workloads, frameworks, vendors, devices, substrates []string
	for _, p := range ps {
		if p == nil {
			return nil, fmt.Errorf("deepcontext: MergeProfiles given a nil profile")
		}
		cct.Merge(out.Tree, cct.NormalizeAddresses(p.Tree))
		workloads = appendUnique(workloads, p.Meta.Workload)
		frameworks = appendUnique(frameworks, p.Meta.Framework)
		vendors = appendUnique(vendors, p.Meta.Vendor)
		devices = appendUnique(devices, p.Meta.Device)
		substrates = appendUnique(substrates, p.Meta.Substrate)
		out.Meta.Iterations += p.Meta.Iterations
		addStats(&out.Stats, p.Stats, 1)
		out.MonitorStats = addMonitorStats(out.MonitorStats, p.MonitorStats, 1)
		out.FootprintBytes += p.FootprintBytes
		for name, origins := range p.Fused {
			out.Fused[name] = mergeOrigins(out.Fused[name], origins)
		}
	}
	out.Meta.Workload = strings.Join(workloads, "+")
	out.Meta.Framework = strings.Join(frameworks, "+")
	out.Meta.Vendor = strings.Join(vendors, "+")
	out.Meta.Device = strings.Join(devices, "+")
	out.Meta.Substrate = strings.Join(substrates, "+")
	return out, nil
}

// DiffProfiles returns the signed delta profile after − before: the tree is
// the union of both calling contexts with per-node signed metric deltas
// (positive = regression, negative = improvement). As in MergeProfiles,
// frames are normalized to cross-run stable identities before matching.
// Render the result with FlameOptions.Signed or feed it to cmd/dcdiff's
// hotspot table.
func DiffProfiles(after, before *Profile) *Profile {
	out := &Profile{
		Tree: cct.Diff(cct.NormalizeAddresses(after.Tree), cct.NormalizeAddresses(before.Tree)),
		Meta: after.Meta,
		Fused: func() map[string][]framework.FusedOrigin {
			f := make(map[string][]framework.FusedOrigin, len(after.Fused)+len(before.Fused))
			for n, o := range before.Fused {
				f[n] = mergeOrigins(nil, o)
			}
			for n, o := range after.Fused {
				f[n] = mergeOrigins(f[n], o)
			}
			return f
		}(),
		FootprintBytes: after.FootprintBytes - before.FootprintBytes,
	}
	if before.Meta.Workload != after.Meta.Workload {
		out.Meta.Workload = after.Meta.Workload + " vs " + before.Meta.Workload
	}
	addStats(&out.Stats, after.Stats, 1)
	addStats(&out.Stats, before.Stats, -1)
	out.MonitorStats = addMonitorStats(out.MonitorStats, after.MonitorStats, 1)
	out.MonitorStats = addMonitorStats(out.MonitorStats, before.MonitorStats, -1)
	out.Meta.Iterations = after.Meta.Iterations - before.Meta.Iterations
	return out
}

// mergeOrigins pools fused-operator origin lists, deduplicating by original
// operator name and never aliasing an input slice.
func mergeOrigins(have, add []framework.FusedOrigin) []framework.FusedOrigin {
	out := append([]framework.FusedOrigin(nil), have...)
	for _, o := range add {
		seen := false
		for _, h := range out {
			if h.Name == o.Name {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, o)
		}
	}
	return out
}

func appendUnique(list []string, s string) []string {
	if s == "" {
		return list
	}
	for _, have := range list {
		if have == s {
			return list
		}
	}
	return append(list, s)
}

// addStats folds src into dst with sign (+1 merge, −1 diff).
func addStats(dst *profiler.Stats, src profiler.Stats, sign int64) {
	dst.APICallbacks += sign * src.APICallbacks
	dst.ActivitiesHandled += sign * src.ActivitiesHandled
	dst.SamplesAttributed += sign * src.SamplesAttributed
	dst.CPUSamples += sign * src.CPUSamples
	dst.OpsTimed += sign * src.OpsTimed
	dst.DroppedActivities += sign * src.DroppedActivities
}

func addMonitorStats(dst dlmonitor.Stats, src dlmonitor.Stats, sign int64) dlmonitor.Stats {
	dst.OpsIntercepted += sign * src.OpsIntercepted
	dst.GPUEvents += sign * src.GPUEvents
	dst.PathsBuilt += sign * src.PathsBuilt
	dst.CacheHits += sign * src.CacheHits
	dst.CacheMisses += sign * src.CacheMisses
	dst.UnwindSteps += sign * src.UnwindSteps
	dst.FwdPathsRecorded += sign * src.FwdPathsRecorded
	dst.BwdAssociations += sign * src.BwdAssociations
	return dst
}

// SaveProfile writes a profile database to path.
func SaveProfile(path string, p *Profile) error { return profdb.SaveFile(path, p) }

// LoadProfile reads a profile database from path (any format version; the
// first profile of a multi-profile bundle).
func LoadProfile(path string) (*Profile, error) { return profdb.LoadFile(path) }

// BundleEntry is one named profile of a multi-profile bundle.
type BundleEntry = profdb.Entry

// SaveProfileBundle writes several named profiles into one database file —
// the batch runner's per-shard results next to their merged aggregate.
func SaveProfileBundle(path string, entries []BundleEntry) error {
	return profdb.SaveBundleFile(path, entries)
}

// LoadProfileBundle reads every profile of a database file.
func LoadProfileBundle(path string) ([]BundleEntry, error) {
	return profdb.LoadBundleFile(path)
}

// ExportJSON writes the profile as nested JSON.
func ExportJSON(w io.Writer, p *Profile) error { return profdb.ExportJSON(w, p) }

// FlameOptions configures flame-graph rendering.
type FlameOptions struct {
	// Metric sizes the boxes (default gpu_time_ns).
	Metric string
	// BottomUp inverts the view, aggregating per innermost frame.
	BottomUp bool
	// Signed renders a delta profile (from DiffProfiles): box widths follow
	// the magnitude of change and colour encodes regression vs improvement.
	Signed bool
	// Annotate colours analyzer findings into the graph.
	Annotate *Report
}

func buildModel(p *Profile, o FlameOptions) (*flamegraph.Model, error) {
	opts := flamegraph.Options{Metric: o.Metric, Signed: o.Signed}
	if o.BottomUp {
		opts.View = flamegraph.BottomUp
	}
	if o.Annotate != nil {
		opts.Annotations = make(map[*cct.Node]flamegraph.Annotation)
		for n, issues := range o.Annotate.ByNode() {
			opts.Annotations[n] = flamegraph.Annotation{
				Text:     issues[0].Message,
				Severity: issues[0].Severity.String(),
			}
		}
	}
	return flamegraph.Build(p.Tree, opts)
}

// WriteFlameGraph renders a self-contained interactive HTML flame graph.
func WriteFlameGraph(w io.Writer, p *Profile, o FlameOptions) error {
	m, err := buildModel(p, o)
	if err != nil {
		return err
	}
	return flamegraph.RenderHTML(w, m)
}

// WriteFlameText renders an ASCII flame tree (maxDepth 0 means unlimited).
func WriteFlameText(w io.Writer, p *Profile, o FlameOptions, maxDepth int) error {
	m, err := buildModel(p, o)
	if err != nil {
		return err
	}
	var sb strings.Builder
	flamegraph.RenderText(&sb, m, maxDepth)
	_, err = io.WriteString(w, sb.String())
	return err
}

// WriteFolded emits Brendan Gregg folded stacks for external flame tooling.
func WriteFolded(w io.Writer, p *Profile, metric string) error {
	if metric == "" {
		metric = cct.MetricGPUTime
	}
	var sb strings.Builder
	if err := flamegraph.Folded(&sb, p.Tree, metric); err != nil {
		return err
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
