package deepcontext

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestProfileWorkloadEndToEnd(t *testing.T) {
	p, err := ProfileWorkload("ViT", Config{}, Knobs{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Meta.Workload != "ViT" || p.Meta.Vendor != "Nvidia" {
		t.Fatalf("meta = %+v", p.Meta)
	}
	if p.Tree.NodeCount() < 50 {
		t.Fatalf("tree too small: %d nodes", p.Tree.NodeCount())
	}
	rep := Analyze(p)
	if rep == nil {
		t.Fatal("nil report")
	}
}

func TestSessionCustomWorkload(t *testing.T) {
	s, err := NewSession(Config{Vendor: "amd", Framework: "pytorch", NativeCallPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	env := s.Env()
	if env.M.GPU.Spec.WarpSize != 64 {
		t.Fatal("amd session should have warp 64")
	}
	if err := s.RunWorkload("GNN", Knobs{}, 3); err != nil {
		t.Fatal(err)
	}
	if s.EndToEnd() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	p := s.Stop()
	if p.Meta.Substrate != "RocTracer" {
		t.Fatalf("substrate = %q", p.Meta.Substrate)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewSession(Config{Vendor: "intel"}); err == nil {
		t.Fatal("unknown vendor should fail")
	}
	if _, err := NewSession(Config{Framework: "tensorflow"}); err == nil {
		t.Fatal("unknown framework should fail")
	}
	s, _ := NewSession(Config{})
	if err := s.RunWorkload("nope", Knobs{}, 1); err == nil {
		t.Fatal("unknown workload should fail")
	}
}

func TestWorkloadNames(t *testing.T) {
	names := WorkloadNames()
	if len(names) != 10 || names[0] != "Conformer" {
		t.Fatalf("names = %v", names)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	p, err := ProfileWorkload("NanoGPT", Config{PCSampling: true}, Knobs{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.dcp")
	if err := SaveProfile(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tree.NodeCount() != p.Tree.NodeCount() {
		t.Fatal("round trip lost nodes")
	}
	var buf bytes.Buffer
	if err := ExportJSON(&buf, got); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "NanoGPT") {
		t.Fatal("JSON export missing metadata")
	}
}

func TestFlameRenderers(t *testing.T) {
	p, err := ProfileWorkload("GNN", Config{}, Knobs{})
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(p)
	var html bytes.Buffer
	if err := WriteFlameGraph(&html, p, FlameOptions{Annotate: rep}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html.String(), "<!DOCTYPE html>") {
		t.Fatal("not html")
	}
	var txt bytes.Buffer
	if err := WriteFlameText(&txt, p, FlameOptions{BottomUp: true}, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "bottom-up") {
		t.Fatal("text render missing view label")
	}
	var folded bytes.Buffer
	if err := WriteFolded(&folded, p, ""); err != nil {
		t.Fatal(err)
	}
	if len(folded.String()) == 0 {
		t.Fatal("empty folded output")
	}
}

func TestJAXSessionCarriesFusedOrigins(t *testing.T) {
	p, err := ProfileWorkload("GNN", Config{Framework: "jax"}, Knobs{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Fused) == 0 {
		t.Fatal("JAX profile should record fused-operator origins")
	}
	for name, origins := range p.Fused {
		if !strings.HasPrefix(name, "fusion_") || len(origins) < 2 {
			t.Fatalf("fused entry %q malformed: %d origins", name, len(origins))
		}
	}
}
