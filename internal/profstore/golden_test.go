package profstore

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"deepcontext/internal/cct"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/queries.golden.json from the current store")

// goldenCorpus ingests a fixed six-window, four-series profile sequence and
// runs one compaction, so the corpus spans fine and coarse buckets. The
// clock ends two windows past the last ingest.
func goldenCorpus(t *testing.T, s *Store, clock *fakeClock) {
	t.Helper()
	series := []struct {
		workload, vendor, fw string
	}{
		{"UNet", "Nvidia", "pytorch"},
		{"UNet", "AMD", "pytorch"},
		{"DLRM", "Nvidia", "jax"},
		{"Bert", "AMD", "jax"},
	}
	for w := 0; w < 6; w++ {
		for si, sp := range series {
			// Not every series appears in every window, and PCs shift per
			// "run" so normalization must fold them.
			if (w+si)%4 == 3 {
				continue
			}
			p := synthProfile(sp.workload, sp.vendor, sp.fw,
				uint64(0x1000+w*512+si*64), float64(w+si%3+1))
			mustIngest(t, s, p)
		}
		clock.Advance(time.Minute)
	}
	clock.Advance(2 * time.Minute)
	s.CompactNow()
}

// goldenImage renders the full query surface over the corpus as one
// deterministic JSON blob: hotspot variants (filters, metrics, bounds),
// window-vs-window diffs across fine and coarse buckets, and the retained
// window listing.
func goldenImage(t *testing.T, s *Store) []byte {
	t.Helper()
	type hotKey struct {
		Name     string
		From, To time.Time
		Filter   Labels
		Metric   string
		Top      int
		Rows     []Hotspot
		Info     AggregateInfo
	}
	var hots []hotKey
	for _, q := range []struct {
		name     string
		from, to time.Time
		filter   Labels
		metric   string
		top      int
	}{
		{"all", time.Time{}, time.Time{}, Labels{}, cct.MetricGPUTime, 0},
		{"cpu-top3", time.Time{}, time.Time{}, Labels{}, cct.MetricCPUTime, 3},
		{"nvidia", time.Time{}, time.Time{}, Labels{Vendor: "nvidia"}, cct.MetricGPUTime, 0},
		{"unet-jax-none-ok", time.Time{}, time.Time{}, Labels{Workload: "unet"}, cct.MetricGPUTime, 5},
		{"bounded", base.Add(time.Minute), base.Add(4 * time.Minute), Labels{}, cct.MetricGPUTime, 0},
	} {
		rows, info, err := s.Hotspots(context.Background(), q.from, q.to, q.filter, q.metric, q.top)
		if err != nil {
			t.Fatalf("hotspots %s: %v", q.name, err)
		}
		hots = append(hots, hotKey{q.name, q.from, q.to, q.filter, q.metric, q.top, rows, info})
	}

	var diffs []*DiffResult
	for _, q := range []struct {
		before, after time.Time
		filter        Labels
	}{
		// base's fine window has been folded coarse by the compaction;
		// base+5m is still fine — the diff crosses resolutions.
		{base, base.Add(5 * time.Minute), Labels{}},
		{base.Add(4 * time.Minute), base.Add(5 * time.Minute), Labels{Workload: "unet"}},
	} {
		res, err := s.Diff(context.Background(), q.before, q.after, q.filter, cct.MetricGPUTime, 0)
		if err != nil {
			t.Fatalf("diff %v vs %v: %v", q.before, q.after, err)
		}
		diffs = append(diffs, res)
	}

	type topkKey struct {
		Name     string
		From, To time.Time
		Filter   Labels
		Metric   string
		K        int
		Rows     []TopKRow
		Info     AggregateInfo
	}
	var topks []topkKey
	for _, q := range []struct {
		name     string
		from, to time.Time
		filter   Labels
		metric   string
		k        int
	}{
		{"all", time.Time{}, time.Time{}, Labels{}, "", 0},
		{"amd-top2", time.Time{}, time.Time{}, Labels{Vendor: "amd"}, "", 2},
		{"cpu", time.Time{}, time.Time{}, Labels{}, cct.MetricCPUTime, 0},
		{"bounded", base.Add(time.Minute), base.Add(4 * time.Minute), Labels{}, "", 0},
	} {
		rows, info, err := s.TopK(context.Background(), q.from, q.to, q.filter, q.metric, q.k)
		if err != nil {
			t.Fatalf("topk %s: %v", q.name, err)
		}
		topks = append(topks, topkKey{q.name, q.from, q.to, q.filter, q.metric, q.k, rows, info})
	}

	type searchKey struct {
		Name   string
		Frame  string
		Filter Labels
		Metric string
		Limit  int
		Rows   []SearchRow
		Info   AggregateInfo
	}
	var searches []searchKey
	for _, q := range []struct {
		name   string
		frame  string
		filter Labels
		metric string
		limit  int
	}{
		{"gemm", "gemm", Labels{}, "", 0},
		{"relu-jax-top2", "relu", Labels{Framework: "jax"}, "", 2},
		{"operator-cpu", "aten::relu", Labels{}, cct.MetricCPUTime, 0},
		{"python-frame", "train.py:10 (main)", Labels{}, "", 0},
	} {
		rows, info, err := s.Search(context.Background(), time.Time{}, time.Time{}, q.filter, q.frame, q.metric, q.limit)
		if err != nil {
			t.Fatalf("search %s: %v", q.name, err)
		}
		searches = append(searches, searchKey{q.name, q.frame, q.filter, q.metric, q.limit, rows, info})
	}

	img, err := json.MarshalIndent(struct {
		Hotspots []hotKey
		Diffs    []*DiffResult
		TopK     []topkKey
		Search   []searchKey
		Windows  []WindowInfo
	}{hots, diffs, topks, searches, s.Windows()}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// goldenConfigs enumerates the store configurations that must all answer
// the golden corpus byte-identically: the shards=1/cache-off baseline (the
// pre-shard store's exact shape), striped variants, and cached variants —
// sharding and caching must be invisible to query results.
func goldenConfigs() []Config {
	base := Config{Window: time.Minute, Retention: 3, CoarseFactor: 2}
	var out []Config
	for _, shards := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		for _, cache := range []int{0, 128} {
			cfg := base
			cfg.Shards = shards
			cfg.CacheSize = cache
			out = append(out, cfg)
		}
	}
	return out
}

// TestQueryGolden is the acceptance gate for query-path refactors: every
// store configuration must answer the fixed corpus byte-identical to the
// recorded pre-refactor output. Regenerate with -update-golden only when a
// query-semantics change is intended.
func TestQueryGolden(t *testing.T) {
	goldenPath := filepath.Join("testdata", "queries.golden.json")
	if *updateGolden {
		clock := newClock(base)
		cfg := goldenConfigs()[0]
		cfg.Now = clock.Now
		s := New(cfg)
		defer s.Close()
		goldenCorpus(t, s, clock)
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, goldenImage(t, s), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update-golden to create): %v", err)
	}
	for i, cfg := range goldenConfigs() {
		clock := newClock(base)
		cfg.Now = clock.Now
		s := New(cfg)
		goldenCorpus(t, s, clock)
		// Two passes: the second is served from the cache when enabled,
		// and must be just as byte-identical as the first.
		for pass := 0; pass < 2; pass++ {
			if got := goldenImage(t, s); !bytes.Equal(got, want) {
				t.Errorf("config %d (shards=%d cache=%d) pass %d: query image diverged from pre-refactor golden",
					i, cfg.Shards, cfg.CacheSize, pass)
			}
		}
		if cfg.CacheSize > 0 {
			if cs := s.Stats().Cache; cs == nil || cs.Hits == 0 {
				t.Errorf("config %d: cache recorded no hits on the repeat pass (%+v)", i, s.Stats().Cache)
			}
		}
		s.Close()
	}
}

// TestQueryGoldenAcrossRestart pins the restart half of the acceptance
// matrix: a durable store answers the golden corpus byte-identical to the
// in-memory recording after a graceful restart (snapshot adopted, index
// blob included) AND after a hard one (snapshots deleted, WAL-only replay
// rebuilds everything — including the frame index), for every shard and
// cache combination.
func TestQueryGoldenAcrossRestart(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "queries.golden.json"))
	if err != nil {
		t.Fatalf("missing golden (run TestQueryGolden with -update-golden to create): %v", err)
	}
	for _, shards := range []int{1, 2, 4} {
		for _, cache := range []int{0, 128} {
			for _, hard := range []bool{false, true} {
				t.Run(fmt.Sprintf("shards=%d/cache=%d/hard=%v", shards, cache, hard), func(t *testing.T) {
					clock := newClock(base)
					cfg := goldenConfigs()[0]
					cfg.Shards = shards
					cfg.CacheSize = cache
					cfg.Now = clock.Now
					cfg.Dir = t.TempDir()
					s := New(cfg)
					goldenCorpus(t, s, clock)
					if !hard {
						if _, err := s.Snapshot(); err != nil {
							t.Fatal(err)
						}
					}
					s.Close()
					if hard {
						// A hard crash that also lost the snapshots: recovery
						// must rebuild from the WAL alone.
						for _, pat := range []string{"shard-*/snap-*", "shard-*/CURRENT"} {
							paths, err := filepath.Glob(filepath.Join(cfg.Dir, pat))
							if err != nil {
								t.Fatal(err)
							}
							for _, p := range paths {
								if err := os.RemoveAll(p); err != nil {
									t.Fatal(err)
								}
							}
						}
					}
					revived := New(cfg)
					rs, err := revived.Recover()
					if err != nil {
						t.Fatal(err)
					}
					defer revived.Close()
					if hard && rs.SnapshotLoaded {
						t.Fatalf("hard restart loaded a snapshot: %+v", rs)
					}
					if !hard && !rs.SnapshotLoaded {
						t.Fatalf("graceful restart missed the snapshot: %+v", rs)
					}
					// Two passes so the second is served from the cache when
					// enabled.
					for pass := 0; pass < 2; pass++ {
						if got := goldenImage(t, revived); !bytes.Equal(got, want) {
							t.Errorf("pass %d: recovered query image diverged from golden", pass)
						}
					}
				})
			}
		}
	}
}
