package profstore

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"deepcontext/internal/telemetry"
)

// Pinned BenchmarkIngestStoreMemory profile, asserted exactly: telemetry
// is on by default and must cost the ingest hot path nothing. Any change
// that adds an allocation (or a byte) to Ingest shows up here before it
// shows up in a benchmark diff.
const (
	pinnedIngestAllocs = 56
	pinnedIngestBytes  = 14304
)

// bytesPerRun is testing.AllocsPerRun's missing sibling: average bytes
// allocated per call of f, measured single-threaded over runs calls.
func bytesPerRun(runs int, f func()) uint64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm up once outside the window
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&m1)
	return (m1.TotalAlloc - m0.TotalAlloc) / uint64(runs)
}

func TestIngestAllocGate(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement is slow")
	}
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Now: clock.Now})
	defer s.Close()
	p := synthProfile("UNet", "Nvidia", "pytorch", 0x1000, 1)
	ingest := func() {
		if _, err := s.Ingest(p); err != nil {
			t.Fatal(err)
		}
	}
	// Let maps, the interner and the window tree reach steady state so
	// the measurement sees only the per-ingest cost.
	for i := 0; i < 200; i++ {
		ingest()
	}
	// A stray runtime allocation can smear one measurement; the pin holds
	// if any of three attempts lands exactly.
	var allocs float64
	var bytes uint64
	for attempt := 0; attempt < 3; attempt++ {
		allocs = testing.AllocsPerRun(200, ingest)
		bytes = bytesPerRun(200, ingest)
		if allocs == pinnedIngestAllocs && bytes == pinnedIngestBytes {
			return
		}
	}
	t.Fatalf("ingest profile moved: %.1f allocs/op (want %d), %d B/op (want %d)",
		allocs, pinnedIngestAllocs, bytes, pinnedIngestBytes)
}

// TestTelemetryScrapeRace hammers the store's write paths while scrapers
// render /metrics-style expositions and read the journal — the gauge
// callbacks take the all-shard read lock under the registry mutex, so
// this is also the lock-order check between the two subsystems.
func TestTelemetryScrapeRace(t *testing.T) {
	reg := telemetry.NewRegistry()
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Now: clock.Now, Shards: 4, Telemetry: reg})
	defer s.Close()

	const writers, ingestsPer = 4, 200
	var writeWG, scrapeWG sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			p := synthProfile(fmt.Sprintf("W%d", w), "Nvidia", "pytorch", uint64(0x1000*(w+1)), 1)
			for i := 0; i < ingestsPer; i++ {
				if _, err := s.Ingest(p); err != nil {
					t.Error(err)
					return
				}
				if i%50 == 49 {
					clock.Advance(time.Minute)
					s.CompactNow()
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if err := reg.WritePrometheus(io.Discard); err != nil {
					t.Error(err)
					return
				}
				reg.Journal().Select(telemetry.Filter{Kinds: []string{"window_close"}, Limit: 10})
				reg.Journal().Stats()
				s.Stats()
				s.TrendSweep()
			}
		}()
	}
	writeWG.Wait()
	close(done)
	scrapeWG.Wait()

	// The exposition must reflect everything the writers did.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	expo := sb.String()
	want := fmt.Sprintf("profstore_ingested_profiles_total %d", writers*ingestsPer)
	if !strings.Contains(expo, want) {
		t.Fatalf("exposition missing %q", want)
	}
	if s.Stats().Ingested != writers*ingestsPer {
		t.Fatalf("Stats().Ingested = %d, want %d", s.Stats().Ingested, writers*ingestsPer)
	}
}

// The JSON surface and the exposition are backed by the same counters;
// spot-check that they cannot drift by comparing Stats() against the
// rendered text after a workload with compaction and cache traffic.
func TestStatsMatchesExposition(t *testing.T) {
	reg := telemetry.NewRegistry()
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Retention: 2, CoarseFactor: 2, Now: clock.Now, Telemetry: reg, CacheSize: 8})
	defer s.Close()
	p := synthProfile("UNet", "Nvidia", "pytorch", 0x1000, 1)
	for i := 0; i < 6; i++ {
		if _, err := s.Ingest(p); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Minute)
		s.CompactNow()
	}
	if _, _, err := s.Hotspots(context.Background(), time.Time{}, time.Time{}, Labels{}, "", 5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Hotspots(context.Background(), time.Time{}, time.Time{}, Labels{}, "", 5); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	expo := sb.String()
	st := s.Stats()
	for _, pair := range [][2]string{
		{"profstore_ingested_profiles_total", fmt.Sprint(st.Ingested)},
		{"profstore_compactions_total", fmt.Sprint(st.Compactions)},
		{"profstore_cache_hits_total", fmt.Sprint(st.Cache.Hits)},
		{"profstore_cache_misses_total", fmt.Sprint(st.Cache.Misses)},
	} {
		want := pair[0] + " " + pair[1]
		if !strings.Contains(expo, want+"\n") {
			t.Errorf("exposition missing %q", want)
		}
	}
	if st.Cache.Hits == 0 {
		t.Fatal("second identical Hotspots call did not hit the cache")
	}
}
