package profstore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"deepcontext/internal/cct"
)

// seriesTotal reads one series' aggregate GPU total; absent data reads 0.
func seriesTotal(t *testing.T, s *Store, filter Labels) float64 {
	t.Helper()
	tree, _, err := s.Aggregate(context.Background(), time.Time{}, time.Time{}, filter)
	if err != nil {
		if errors.Is(err, ErrNoData) {
			return 0
		}
		t.Error(err)
		return 0
	}
	id, ok := tree.Schema.Lookup(cct.MetricGPUTime)
	if !ok {
		return 0
	}
	return tree.Root.InclValue(id)
}

// TestShardedStressConservedSumsAndFreshReads is the -race stress
// satellite: concurrent ingest, queries, snapshots and compaction across
// shards with the cache on. Each writer owns one series; a paired reader
// polls that series' total, which must be non-decreasing (merges only add,
// and the clock never crosses the retention horizon) — a stale cache read
// after an invalidation would show a smaller total than one already
// observed. The run ends with exact conserved sums and a byte-equal
// crash recovery of whatever the last snapshot + WAL hold.
func TestShardedStressConservedSumsAndFreshReads(t *testing.T) {
	dir := t.TempDir()
	clock := newClock(base)
	cfg := Config{
		Window: time.Minute, Retention: 60, CoarseFactor: 2,
		Shards: 4, CacheSize: 256, Now: clock.Now, Dir: dir,
	}
	s := New(cfg)

	const writers = 8
	const perWriter = 12
	// Each profile contributes 140 GPU ns (see synthProfile).
	const perProfile = 140.0

	stopBg := make(chan struct{})
	var bgWg sync.WaitGroup
	for _, bg := range []func(){
		func() { s.CompactNow() },
		func() { s.Snapshot() },
		func() { s.Hotspots(context.Background(), time.Time{}, time.Time{}, Labels{}, cct.MetricGPUTime, 5) },
		func() { s.Windows(); s.Stats() },
		func() {
			if len(s.Windows()) >= 1 {
				s.Diff(context.Background(), base, clock.Now(), Labels{}, cct.MetricGPUTime, 3)
			}
		},
	} {
		bgWg.Add(1)
		go func(tick func()) {
			defer bgWg.Done()
			for {
				select {
				case <-stopBg:
					return
				default:
					tick()
				}
			}
		}(bg)
	}

	var rwWg sync.WaitGroup
	for g := 0; g < writers; g++ {
		workload := fmt.Sprintf("W%d", g)
		filter := Labels{Workload: workload}
		writerDone := make(chan struct{})
		rwWg.Add(2)
		go func(g int) { // writer: owns one series
			defer rwWg.Done()
			defer close(writerDone)
			for i := 0; i < perWriter; i++ {
				mustIngest(t, s, synthProfile(workload, "Nvidia", "pytorch", uint64(g*4096+i*8), 1))
				if i%4 == 0 {
					clock.Advance(time.Second)
				}
			}
		}(g)
		go func() { // reader: monotonic total over the paired series
			defer rwWg.Done()
			last := 0.0
			for {
				got := seriesTotal(t, s, filter)
				if got < last {
					t.Errorf("series %s total went backwards: %v after %v (stale cache read)", workload, got, last)
					return
				}
				last = got
				select {
				case <-writerDone:
					return
				default:
				}
			}
		}()
	}
	rwWg.Wait()
	close(stopBg)
	bgWg.Wait()

	// Exact conservation per series and overall, served through the cache.
	for pass := 0; pass < 2; pass++ {
		for g := 0; g < writers; g++ {
			filter := Labels{Workload: fmt.Sprintf("W%d", g)}
			if got := seriesTotal(t, s, filter); got != perProfile*perWriter {
				t.Fatalf("pass %d: series W%d total = %v, want %v", pass, g, got, perProfile*perWriter)
			}
		}
		if got := seriesTotal(t, s, Labels{}); got != perProfile*writers*perWriter {
			t.Fatalf("pass %d: grand total = %v, want %v", pass, got, perProfile*writers*perWriter)
		}
	}
	st := s.Stats()
	if st.Ingested != writers*perWriter {
		t.Fatalf("ingested = %d, want %d", st.Ingested, writers*perWriter)
	}
	if st.Cache == nil || st.Cache.Hits == 0 {
		t.Fatalf("cache saw no hits under stress: %+v", st.Cache)
	}

	// Crash: abandon without a final snapshot; recovery of the per-shard
	// WALs plus whatever snapshot last committed must conserve the sums.
	s.Close()
	revived := New(cfg)
	if _, err := revived.Recover(); err != nil {
		t.Fatal(err)
	}
	defer revived.Close()
	if got := seriesTotal(t, revived, Labels{}); got != perProfile*writers*perWriter {
		t.Fatalf("recovered grand total = %v, want %v", got, perProfile*writers*perWriter)
	}
	if got := revived.Stats().Ingested; got != writers*perWriter {
		t.Fatalf("recovered ingested = %d, want %d", got, writers*perWriter)
	}
}

// searchExcl reads one series' gemm total through Search; absent data
// (or a series whose gemm never landed yet) reads 0.
func searchExcl(t *testing.T, s *Store, filter Labels) float64 {
	t.Helper()
	rows, _, err := s.Search(context.Background(), time.Time{}, time.Time{}, filter, "gemm", cct.MetricGPUTime, 0)
	if err != nil {
		if errors.Is(err, ErrNoData) {
			return 0
		}
		t.Error(err)
		return 0
	}
	total := 0.0
	for _, r := range rows {
		total += r.Excl
	}
	return total
}

// TestShardedStressTopKSearch is the fleet-query half of the -race stress
// satellite: concurrent ingest, TopK, Search and compaction across shards
// with the cache on. Window closes compute aggregates and index postings
// under the write lock while readers fold them under the read locks; a
// paired reader polls its writer's series through Search("gemm"), which
// must be non-decreasing (merges only add, the clock never crosses the
// retention horizon, and a stale cached row or an unsound index skip
// would read low). The run ends with exact conserved sums through TopK.
func TestShardedStressTopKSearch(t *testing.T) {
	clock := newClock(base)
	s := New(Config{
		Window: time.Minute, Retention: 60, CoarseFactor: 2,
		Shards: 4, CacheSize: 256, Now: clock.Now,
	})
	defer s.Close()

	const writers = 8
	const perWriter = 12
	// Per profile (see synthProfile): gemm 100, relu 40 GPU ns.
	const gemmPer = 100.0
	const reluPer = 40.0

	stopBg := make(chan struct{})
	var bgWg sync.WaitGroup
	for _, bg := range []func(){
		func() { s.CompactNow() },
		func() { s.TopK(context.Background(), time.Time{}, time.Time{}, Labels{}, "", 5) },
		func() { s.Search(context.Background(), time.Time{}, time.Time{}, Labels{}, "relu", "", 0) },
		func() { s.TrendSweep(); s.Stats() },
	} {
		bgWg.Add(1)
		go func(tick func()) {
			defer bgWg.Done()
			for {
				select {
				case <-stopBg:
					return
				default:
					tick()
				}
			}
		}(bg)
	}

	var rwWg sync.WaitGroup
	for g := 0; g < writers; g++ {
		workload := fmt.Sprintf("W%d", g)
		filter := Labels{Workload: workload}
		writerDone := make(chan struct{})
		rwWg.Add(2)
		go func(g int) { // writer: owns one series
			defer rwWg.Done()
			defer close(writerDone)
			for i := 0; i < perWriter; i++ {
				mustIngest(t, s, synthProfile(workload, "Nvidia", "pytorch", uint64(g*4096+i*8), 1))
				if i%4 == 0 {
					clock.Advance(time.Second)
				}
			}
		}(g)
		go func() { // reader: monotonic gemm total over the paired series
			defer rwWg.Done()
			last := 0.0
			for {
				got := searchExcl(t, s, filter)
				if got < last {
					t.Errorf("series %s gemm total went backwards: %v after %v (stale cache or unsound index skip)", workload, got, last)
					return
				}
				last = got
				select {
				case <-writerDone:
					return
				default:
				}
			}
		}()
	}
	rwWg.Wait()
	close(stopBg)
	bgWg.Wait()

	// Exact conservation, twice so the second pass serves from the cache:
	// per series through Search, fleet-wide through TopK.
	for pass := 0; pass < 2; pass++ {
		for g := 0; g < writers; g++ {
			filter := Labels{Workload: fmt.Sprintf("W%d", g)}
			if got := searchExcl(t, s, filter); got != gemmPer*perWriter {
				t.Fatalf("pass %d: series W%d gemm = %v, want %v", pass, g, got, gemmPer*perWriter)
			}
		}
		rows, _, err := s.TopK(context.Background(), time.Time{}, time.Time{}, Labels{}, "", 0)
		if err != nil {
			t.Fatal(err)
		}
		byLabel := make(map[string]TopKRow, len(rows))
		for _, r := range rows {
			byLabel[r.Label] = r
		}
		if got := byLabel["gemm"]; got.Excl != gemmPer*writers*perWriter || got.Series != writers {
			t.Fatalf("pass %d: gemm row = %+v, want excl %v over %d series", pass, got, gemmPer*writers*perWriter, writers)
		}
		if got := byLabel["relu"]; got.Excl != reluPer*writers*perWriter {
			t.Fatalf("pass %d: relu row = %+v, want excl %v", pass, got, reluPer*writers*perWriter)
		}
		if rows[0].Label != "gemm" {
			t.Fatalf("pass %d: top row = %+v, want gemm", pass, rows[0])
		}
	}
	if cs := s.Stats().Cache; cs == nil || cs.Hits == 0 {
		t.Fatalf("cache saw no hits under stress: %+v", s.Stats().Cache)
	}
}

// TestCacheServesAndInvalidatesPrecisely pins the cache semantics the
// mixed read/write workload relies on: repeats hit; an ingest into a
// window a query read invalidates exactly that query; bounded queries
// over other windows keep hitting through unrelated ingest.
func TestCacheServesAndInvalidatesPrecisely(t *testing.T) {
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Shards: 4, CacheSize: 64, Now: clock.Now})
	defer s.Close()

	mustIngest(t, s, synthProfile("UNet", "Nvidia", "pytorch", 0x10, 1))
	clock.Advance(time.Minute)
	mustIngest(t, s, synthProfile("UNet", "Nvidia", "pytorch", 0x20, 2))

	hot := func() float64 {
		rows, _, err := s.Hotspots(context.Background(), time.Time{}, time.Time{}, Labels{}, cct.MetricGPUTime, 1)
		if err != nil {
			t.Fatal(err)
		}
		return rows[0].Excl
	}
	boundedHot := func() float64 {
		rows, _, err := s.Hotspots(context.Background(), base, base.Add(time.Minute), Labels{}, cct.MetricGPUTime, 1)
		if err != nil {
			t.Fatal(err)
		}
		return rows[0].Excl
	}

	if got := hot(); got != 300 { // gemm: 100 + 200
		t.Fatalf("initial top = %v", got)
	}
	cs := s.Stats().Cache
	if cs.Misses != 1 || cs.Hits != 0 {
		t.Fatalf("after first query: %+v", cs)
	}
	if got := hot(); got != 300 {
		t.Fatalf("repeat top = %v", got)
	}
	if cs = s.Stats().Cache; cs.Hits != 1 {
		t.Fatalf("repeat did not hit: %+v", cs)
	}

	// Seed and repeat the bounded query over the (closed) first window.
	if got := boundedHot(); got != 100 {
		t.Fatalf("bounded top = %v", got)
	}
	if got := boundedHot(); got != 100 {
		t.Fatalf("bounded repeat = %v", got)
	}
	base2 := s.Stats().Cache.Hits // 2: one full-range, one bounded

	// Ingest into the CURRENT window: the full-range entry must
	// invalidate and recompute fresh; the bounded entry must keep hitting.
	mustIngest(t, s, synthProfile("UNet", "Nvidia", "pytorch", 0x30, 4))
	if got := hot(); got != 700 { // +400
		t.Fatalf("post-ingest top = %v (stale cache?)", got)
	}
	cs = s.Stats().Cache
	if cs.Invalidations != 1 {
		t.Fatalf("expected exactly one invalidation: %+v", cs)
	}
	if got := boundedHot(); got != 100 {
		t.Fatalf("bounded after unrelated ingest = %v", got)
	}
	if cs = s.Stats().Cache; cs.Hits != base2+1 {
		t.Fatalf("bounded query should still hit after unrelated ingest: %+v", cs)
	}

	// Compaction folds both fine windows into the coarse bucket starting
	// at base — which lies inside the bounded range, so the bounded
	// query's correct answer changes to the full 700. Serving the old 100
	// here would be a stale read; the recompute proves the fold
	// invalidated the entry.
	clock.Advance(90 * time.Minute)
	s.CompactNow()
	if got := boundedHot(); got != 700 {
		t.Fatalf("bounded after compaction = %v (stale cache?)", got)
	}
	if cs = s.Stats().Cache; cs.Invalidations < 2 {
		t.Fatalf("compaction should invalidate the bounded entry: %+v", cs)
	}
}

// TestCacheEviction bounds the cache: distinct queries beyond CacheSize
// evict least-recently-served entries instead of growing without bound.
func TestCacheEviction(t *testing.T) {
	clock := newClock(base)
	s := New(Config{Window: time.Minute, CacheSize: 4, Now: clock.Now})
	defer s.Close()
	mustIngest(t, s, synthProfile("UNet", "Nvidia", "pytorch", 0x10, 1))
	for top := 1; top <= 10; top++ {
		if _, _, err := s.Hotspots(context.Background(), time.Time{}, time.Time{}, Labels{}, cct.MetricGPUTime, top); err != nil {
			t.Fatal(err)
		}
	}
	cs := s.Stats().Cache
	if cs.Entries > 4 {
		t.Fatalf("cache exceeded its cap: %+v", cs)
	}
	if cs.Evictions != 6 {
		t.Fatalf("evictions = %d, want 6 (%+v)", cs.Evictions, cs)
	}
}
