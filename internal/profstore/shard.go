package profstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"deepcontext/internal/cct"
	"deepcontext/internal/profiler"
	"deepcontext/internal/profstore/persist"
	"deepcontext/internal/profstore/trend"
)

// series is one label set's rolling aggregate within a window.
type series struct {
	labels   Labels
	tree     *cct.Tree
	profiles int
	// agg is the close-time per-label aggregate for the fleet queries;
	// nil while the window is open or after late data lands (queries then
	// compute on the fly). Non-nil implies the tree is registered in the
	// owning shard's frame index under this series' key — the invariant
	// Search's posting-list skip relies on (see index.go).
	agg *seriesAgg
}

// window is one time bucket holding per-label merged trees.
type window struct {
	start  time.Time
	dur    time.Duration
	series map[string]*series
}

func (w *window) profiles() int {
	n := 0
	for _, s := range w.series {
		n += s.profiles
	}
	return n
}

func (w *window) nodes() int {
	n := 0
	for _, s := range w.series {
		n += s.tree.NodeCount()
	}
	return n
}

// winKey identifies one bucket within a shard: its start instant and
// resolution tier.
type winKey struct {
	start  int64 // unix nanoseconds
	coarse bool
}

// shard is one lock stripe of the store: a disjoint subset of series (by
// hash of the workload/vendor/framework key) with its own window maps, its
// own WAL segment set under <dir>/shard-<id>, and per-bucket generation
// stamps the query cache validates against. Ingest for different series
// never contends across shards; queries take every shard's read lock (in
// ascending id order — the store-wide lock order) for a consistent cut.
type shard struct {
	id  int
	cfg Config
	dir string // <cfg.Dir>/shard-<id>; "" when the store is memory-only

	mu     sync.RWMutex
	fine   map[int64]*window // unix-nano window start → bucket
	coarse map[int64]*window
	// gens stamps every retained bucket with a content generation, bumped
	// on each mutation (ingest merge, compaction fold). Bucket creation and
	// removal need no extra stamp: cache validation recomputes the bucket
	// set itself and any membership change misses.
	gens map[winKey]uint64

	ingested   int64
	lastIngest time.Time

	// tracker holds the shard's regression-detection state (series are
	// disjoint across shards, so trackers never overlap); nil when trend
	// tracking is disabled. Guarded by mu like the window maps: observation
	// happens under the write lock at ingest/compaction, reads (findings,
	// stats, snapshot capture) under at least the read lock.
	tracker *trend.Tracker
	// idx is the shard's inverted frame index for the fleet queries,
	// fed at the same window-close points as the tracker; nil when
	// Config.IndexDisabled. Guarded by mu like the tracker.
	idx *frameIndex
	// closeCursor marks the window-close frontier: every fine window with
	// start below it has been closed — fed to the tracker and aggregated
	// into the frame index. Closed fine windows are immutable (ingest only
	// lands in the current window), so the cursor only moves forward; an
	// ingest below it is late data the tracker counts but does not re-fold
	// (and which clears the bucket's cached aggregate, see
	// mergeIntoWindowLocked).
	closeCursor int64
	// curWinNS is the newest window start ingest has seen — the cheap
	// per-ingest guard that triggers a close pass only on window
	// transitions.
	curWinNS int64

	wal *persist.WAL
	// met is the store-wide telemetry handle set (shared across shards;
	// every counter is atomic). WAL append/byte/prune counts live there
	// so Stats() and /metrics read one source.
	met *storeMetrics
}

func newShard(id int, cfg Config, met *storeMetrics) *shard {
	sh := &shard{
		id:     id,
		cfg:    cfg,
		fine:   make(map[int64]*window),
		coarse: make(map[int64]*window),
		gens:   make(map[winKey]uint64),
		met:    met,
	}
	if cfg.Dir != "" {
		sh.dir = shardDir(cfg.Dir, id)
	}
	if !cfg.Trend.Disabled {
		sh.tracker = trend.New(cfg.Trend)
	}
	if !cfg.IndexDisabled {
		sh.idx = newFrameIndex()
	}
	return sh
}

func shardDir(dataDir string, id int) string {
	return filepath.Join(dataDir, fmt.Sprintf("shard-%d", id))
}

// ingest appends to the shard's WAL (when durable) and merges the
// normalized tree into the current fine window. payload is nil for
// memory-only stores.
func (sh *shard) ingest(labels Labels, normalized *cct.Tree, payload []byte) (time.Time, error) {
	var t0 time.Time
	if sh.met.timings {
		t0 = time.Now()
	}
	sh.mu.Lock()
	if sh.met.timings {
		sh.met.lockWaitSeconds.Observe(time.Since(t0))
	}
	defer sh.mu.Unlock()
	now := sh.cfg.Now()
	start := now.Truncate(sh.cfg.Window)
	if payload != nil {
		if err := sh.walAppendLocked(start.UnixNano(), now.UnixNano(), payload); err != nil {
			return time.Time{}, err
		}
	}
	if sh.tracker != nil || sh.idx != nil {
		if ns := start.UnixNano(); ns != sh.curWinNS {
			if ns < sh.closeCursor {
				if sh.tracker != nil {
					sh.tracker.NoteLate()
				}
			} else {
				// A new window opened: everything before it has closed.
				sh.closeWindowsLocked(now)
				sh.curWinNS = ns
			}
		}
	}
	sh.mergeIntoWindowLocked(start, labels, normalized)
	sh.ingested++
	sh.lastIngest = now
	return start, nil
}

// ingestBatch applies the batch entries selected by idxs (in order) under
// one acquisition of the shard's write lock: one clock read, one
// window-close pass, then WAL append + merge per entry exactly as ingest.
// A WAL failure aborts the batch; earlier entries are fully applied
// (appended and merged), matching a sequence of single ingests.
func (sh *shard) ingestBatch(batch []PreparedProfile, idxs []int) (time.Time, error) {
	var t0 time.Time
	if sh.met.timings {
		t0 = time.Now()
	}
	sh.mu.Lock()
	if sh.met.timings {
		sh.met.lockWaitSeconds.Observe(time.Since(t0))
	}
	defer sh.mu.Unlock()
	now := sh.cfg.Now()
	start := now.Truncate(sh.cfg.Window)
	if sh.tracker != nil || sh.idx != nil {
		if ns := start.UnixNano(); ns != sh.curWinNS {
			if ns < sh.closeCursor {
				if sh.tracker != nil {
					sh.tracker.NoteLate()
				}
			} else {
				sh.closeWindowsLocked(now)
				sh.curWinNS = ns
			}
		}
	}
	for _, i := range idxs {
		if batch[i].payload != nil {
			if err := sh.walAppendLocked(start.UnixNano(), now.UnixNano(), batch[i].payload); err != nil {
				return time.Time{}, err
			}
		}
		sh.mergeIntoWindowLocked(start, batch[i].labels, batch[i].normalized)
		sh.ingested++
	}
	sh.lastIngest = now
	return start, nil
}

// closeWindowsLocked processes every fine window that closed by asOf —
// and has not been closed yet — oldest first, each series in sorted key
// order: the trend tracker observes it and the frame index gains its
// frames plus the series' close-time aggregate. A window is closed once
// asOf passes its end; from then on its trees are immutable, so one pass
// is final. Callers hold sh.mu exclusively.
func (sh *shard) closeWindowsLocked(asOf time.Time) {
	if sh.tracker == nil && sh.idx == nil {
		return
	}
	var t0 time.Time
	if sh.met.timings {
		t0 = time.Now()
	}
	closed := 0
	asNS := asOf.UnixNano()
	metric := sh.cfg.Trend.Metric
	for _, k := range sortedKeys(sh.fine) {
		if k < sh.closeCursor {
			continue
		}
		w := sh.fine[k]
		if k+int64(w.dur) > asNS {
			break // sorted ascending: every later window is open too
		}
		for _, key := range sortedKeys(w.series) {
			ser := w.series[key]
			if sh.tracker != nil {
				if shares, ok := metricShares(ser.tree, metric); ok {
					sh.tracker.Observe(key, ser.labels.Workload, ser.labels.Vendor, ser.labels.Framework, k, shares)
				}
			}
			if sh.idx != nil && ser.agg == nil {
				ser.agg = computeSeriesAgg(ser.tree)
				sh.idx.addSeries(key, ser.tree)
			}
		}
		sh.closeCursor = k + 1
		closed++
		if sh.met.timings {
			sh.met.journal.Record("window_close", fmt.Sprintf("shard %d closed window %s (%d series)", sh.id, w.start.UTC().Format(time.RFC3339), len(w.series)),
				"shard", fmt.Sprint(sh.id), "start", w.start.UTC().Format(time.RFC3339), "series", fmt.Sprint(len(w.series)))
		}
	}
	if closed > 0 {
		sh.met.windowsClosed.Add(int64(closed))
		if sh.met.timings {
			sh.met.closeSeconds.Observe(time.Since(t0))
		}
	}
}

// mergeIntoWindowLocked folds an already-normalized tree into the fine
// bucket starting at start and bumps its generation. Callers hold sh.mu
// exclusively.
func (sh *shard) mergeIntoWindowLocked(start time.Time, labels Labels, normalized *cct.Tree) {
	w := sh.fine[start.UnixNano()]
	if w == nil {
		w = &window{start: start, dur: sh.cfg.Window, series: make(map[string]*series)}
		sh.fine[start.UnixNano()] = w
	}
	key := labels.Key()
	ser := w.series[key]
	if ser == nil {
		ser = &series{labels: labels, tree: cct.New()}
		w.series[key] = ser
	}
	cct.Merge(ser.tree, normalized)
	// Late data into an already-closed bucket invalidates its close-time
	// aggregate: queries fall back to the tree until the bucket next
	// closes (compaction for fine buckets). The index keeps its old
	// postings — over-approximation is sound — but the skip needs agg.
	ser.agg = nil
	ser.profiles++
	sh.gens[winKey{start.UnixNano(), false}]++
}

// walAppendLocked lazily opens the shard WAL and appends one framed
// record. Callers hold sh.mu exclusively.
func (sh *shard) walAppendLocked(startNS, tstampNS int64, payload []byte) error {
	if err := sh.openWALLocked(); err != nil {
		return err
	}
	n, err := sh.wal.Append(startNS, tstampNS, payload)
	if err != nil {
		return fmt.Errorf("profstore: shard %d wal append: %w", sh.id, err)
	}
	sh.met.walAppends.Inc()
	sh.met.walBytes.Add(n)
	return nil
}

func (sh *shard) openWALLocked() error {
	if sh.wal != nil {
		return nil
	}
	if err := os.MkdirAll(sh.dir, 0o755); err != nil {
		return fmt.Errorf("profstore: shard dir: %w", err)
	}
	w, err := persist.OpenWAL(sh.dir)
	if err != nil {
		return err
	}
	m := persist.WALMetrics{Fsyncs: sh.met.walFsyncs}
	if sh.met.timings {
		m.AppendSeconds = sh.met.walAppendSeconds
		m.FsyncSeconds = sh.met.walFsyncSeconds
	}
	w.SetMetrics(m)
	sh.wal = w
	return nil
}

// compact runs one retention pass against now: fine windows older than the
// horizon fold (in sorted window/series order, so the coarse trees are
// reproducible across recoveries) into their coarse bucket, and expired
// coarse windows drop along with their fine windows' WAL segments. It
// returns how many fine windows folded and how many coarse windows dropped.
func (sh *shard) compact(now time.Time) (folded, dropped int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// Close windows (trend observation + index/aggregate maintenance)
	// before any of them fold away: folding is lossy in time resolution,
	// observation is not.
	sh.closeWindowsLocked(now)
	fineHorizon := now.Add(-time.Duration(sh.cfg.Retention) * sh.cfg.Window).Truncate(sh.cfg.Window)
	for _, key := range sortedKeys(sh.fine) {
		w := sh.fine[key]
		if !w.start.Before(fineHorizon) {
			continue
		}
		cStart := w.start.Truncate(sh.cfg.coarse())
		cw := sh.coarse[cStart.UnixNano()]
		if cw == nil {
			cw = &window{start: cStart, dur: sh.cfg.coarse(), series: make(map[string]*series)}
			sh.coarse[cStart.UnixNano()] = cw
		}
		for _, k := range sortedKeys(w.series) {
			ser := w.series[k]
			dst := cw.series[k]
			if dst == nil {
				dst = &series{labels: ser.labels, tree: cct.New()}
				cw.series[k] = dst
			}
			cct.Merge(dst.tree, ser.tree)
			// The coarse tree changed; its close-time aggregate is
			// recomputed by the sweep below once the fold settles.
			dst.agg = nil
			dst.profiles += ser.profiles
		}
		delete(sh.fine, key)
		delete(sh.gens, winKey{key, false})
		sh.gens[winKey{cStart.UnixNano(), true}]++
		folded++
	}
	if sh.idx != nil {
		// Re-aggregate and index every coarse series whose aggregate was
		// invalidated — by the fold above or by recovery adoption (Recover
		// converges through CompactNow, so adopted coarse windows are
		// indexed here too). Coarse buckets only change at compaction, so
		// between passes their aggregates stay valid.
		for _, key := range sortedKeys(sh.coarse) {
			w := sh.coarse[key]
			for _, k := range sortedKeys(w.series) {
				ser := w.series[k]
				if ser.agg == nil {
					ser.agg = computeSeriesAgg(ser.tree)
					sh.idx.addSeries(k, ser.tree)
				}
			}
		}
	}
	coarseHorizon := now.Add(-time.Duration(sh.cfg.CoarseRetention) * sh.cfg.coarse()).Truncate(sh.cfg.coarse())
	for _, key := range sortedKeys(sh.coarse) {
		w := sh.coarse[key]
		if w.start.Before(coarseHorizon) {
			delete(sh.coarse, key)
			delete(sh.gens, winKey{key, true})
			dropped++
			// Retiring a coarse window retires the WAL segments of every
			// fine window folded into it: the data has aged out, so a
			// WAL-only recovery must not resurrect it.
			sh.pruneWALRangeLocked(w.start.UnixNano(), w.start.Add(w.dur).UnixNano())
		}
	}
	return folded, dropped
}

// pruneWALRangeLocked deletes WAL segments for window starts in [lo, hi).
// Callers hold sh.mu exclusively. Prune failures are recorded nowhere fatal
// — a leftover segment only costs replay time and is re-dropped by the next
// compaction after recovery.
func (sh *shard) pruneWALRangeLocked(lo, hi int64) {
	if sh.dir == "" {
		return
	}
	if err := sh.openWALLocked(); err != nil {
		return
	}
	if n, err := sh.wal.PruneRange(lo, hi); err == nil {
		sh.met.walPruned.Add(int64(n))
	}
}

// snapshot captures the shard's retained windows under its read lock and
// commits them atomically to the shard directory, then prunes WAL segments
// the image fully covers. compactions carries the store-wide compaction
// count (the store passes it on shard 0 only, so the directory-wide sum is
// conserved across snapshot/recover cycles).
func (sh *shard) snapshot(now time.Time, compactions int64) (persist.Info, error) {
	var info persist.Info
	sh.mu.Lock()
	if err := sh.openWALLocked(); err != nil {
		sh.mu.Unlock()
		return info, err
	}
	sh.mu.Unlock()

	sh.mu.RLock()
	offsets, err := sh.wal.Offsets()
	if err != nil {
		sh.mu.RUnlock()
		return info, err
	}
	// CaptureState encodes the live trees, so it must finish before the
	// read lock is released and a writer can mutate them.
	capture, err := sh.captureLocked(now, compactions, offsets)
	sh.mu.RUnlock()
	if err != nil {
		return info, err
	}
	info, err = capture.Commit(sh.dir)
	if err != nil {
		return info, err
	}
	// Segments fully covered by the committed image are dead weight; only
	// the currently-appending segment survives this (see persist.Prune).
	sh.mu.Lock()
	if n, perr := sh.wal.Prune(offsets); perr == nil {
		sh.met.walPruned.Add(int64(n))
	}
	sh.mu.Unlock()
	return info, nil
}

// captureLocked encodes the shard's retained windows into a commit-ready
// image. offsets is the WAL watermark set the image covers; nil for a
// migration export, whose target directory starts WAL-free. Callers hold
// at least sh.mu's read lock.
func (sh *shard) captureLocked(now time.Time, compactions int64, offsets map[int64]int64) (*persist.Capture, error) {
	state := &persist.State{
		CreatedUnixNano: now.UnixNano(),
		Ingested:        sh.ingested,
		Compactions:     compactions,
		WALOffsets:      offsets,
	}
	if !sh.lastIngest.IsZero() {
		state.LastIngestUnixNano = sh.lastIngest.UnixNano()
	}
	if sh.tracker != nil {
		blob, err := sh.tracker.EncodeState()
		if err != nil {
			return nil, fmt.Errorf("profstore: shard %d encode trend state: %w", sh.id, err)
		}
		state.Trend = blob
	}
	if sh.idx != nil {
		blob, err := sh.idx.encodeState()
		if err != nil {
			return nil, fmt.Errorf("profstore: shard %d encode index state: %w", sh.id, err)
		}
		state.Index = blob
	}
	appendWindow := func(w *window, coarse bool) {
		ws := persist.WindowState{Start: w.start.UnixNano(), DurNS: int64(w.dur), Coarse: coarse}
		for key, ser := range w.series {
			ws.Series = append(ws.Series, persist.SeriesState{
				Key:      key,
				Profiles: ser.profiles,
				Profile: &profiler.Profile{
					Tree: ser.tree,
					Meta: profiler.Meta{
						Workload:  ser.labels.Workload,
						Vendor:    ser.labels.Vendor,
						Framework: ser.labels.Framework,
					},
				},
			})
		}
		state.Windows = append(state.Windows, ws)
	}
	for _, w := range sh.fine {
		appendWindow(w, false)
	}
	for _, w := range sh.coarse {
		appendWindow(w, true)
	}
	return persist.CaptureState(state)
}

// exportTo commits the shard's current image into dir — a migration
// staging directory, never sh.dir. Nothing in the shard's own directory
// is touched: no WAL open, no prune, no snapshot rotation, so the source
// layout stays fully authoritative until the migration commits.
func (sh *shard) exportTo(dir string, now time.Time, compactions int64) (persist.Info, error) {
	sh.mu.RLock()
	capture, err := sh.captureLocked(now, compactions, nil)
	sh.mu.RUnlock()
	if err != nil {
		return persist.Info{}, err
	}
	return capture.Commit(dir)
}

// closeWAL syncs the shard's WAL shut.
func (sh *shard) closeWAL() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.wal != nil {
		sh.wal.Close()
	}
}

// sortedKeys returns m's keys ascending — iteration order for every fold
// or drop that must be deterministic.
func sortedKeys[K interface{ ~int | ~int64 | ~string }, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
