// Package profstore is the continuous-profiling backend: it accepts
// profiles from many concurrent clients and aggregates them into
// time-bucketed rolling windows, one merged calling context tree per
// (workload, vendor, framework) label set per window. Profiles are
// normalized at ingest (cct.NormalizeAddresses) so runs from different
// processes and machines unify, the same fleet-aggregation model as
// datacenter-wide profilers: the store's size is proportional to distinct
// calling contexts per window, not to the number of profiles received.
//
// Retention is two-tiered. Fine windows (Config.Window wide) hold recent
// data at full label granularity; a compaction pass — callable directly or
// run by a background goroutine — folds fine windows older than the
// retention horizon into coarser windows (CoarseFactor × Window wide) via
// the associative cct.Merge, and eventually drops coarse windows past their
// own retention. Metric sums are conserved by compaction; only time
// resolution is lost.
//
// Queries (top-N hotspots, window-vs-window signed diffs, merged aggregates
// for flame graphs and the analyzer) run under a read lock and never mutate
// stored trees.
//
// # Durability
//
// With Config.Dir set the store is durable: every ingested profile is
// appended to a write-ahead log (rotated per window bucket) before it is
// merged, and Snapshot writes an atomic compacted image of the retained
// windows. Recover, called on an empty store at boot, loads the latest
// snapshot and replays only the WAL suffix beyond the snapshot's
// per-segment watermarks; because cct.Merge is associative and replay
// preserves ingest order, the recovered store answers Hotspots and Diff
// byte-equal to the pre-crash store. See internal/profstore/persist for
// the on-disk format and corruption policy.
//
// # Locking
//
// One RWMutex (mu) guards all window state. Ingest, CompactNow and replay
// take it exclusively; queries take it shared; Snapshot captures its image
// under the shared lock (blocking writers, so WAL watermarks and window
// state are one consistent cut) and performs disk I/O after release. The
// WAL has an internal mutex that is only ever acquired while mu is held or
// from Snapshot's post-capture prune — mu is always taken first, never
// inside a WAL call, so the order mu → wal.mu is acyclic. snapMu
// serializes whole Snapshot calls against each other only.
package profstore

import (
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"deepcontext/internal/cct"
	"deepcontext/internal/profiler"
	"deepcontext/internal/profstore/persist"
)

// Typed query failures, for errors.Is dispatch at API boundaries (a server
// maps ErrNoData to 404 and ErrUnknownMetric to 400).
var (
	// ErrNoData reports a query that matched no retained window or series.
	ErrNoData = errors.New("profstore: no matching data")
	// ErrUnknownMetric reports a metric name absent from the matched data.
	ErrUnknownMetric = errors.New("profstore: unknown metric")
)

// Labels identify one profile series. As a query filter, empty fields match
// anything (matching is case-insensitive, mirroring the facade's vendor and
// framework parsing).
type Labels struct {
	Workload  string `json:"workload,omitempty"`
	Vendor    string `json:"vendor,omitempty"`
	Framework string `json:"framework,omitempty"`
}

// LabelsOf extracts the series labels from profile metadata.
func LabelsOf(m profiler.Meta) Labels {
	return Labels{Workload: m.Workload, Vendor: m.Vendor, Framework: m.Framework}
}

// Key renders the canonical series key "workload/vendor/framework".
func (l Labels) Key() string {
	return strings.ToLower(l.Workload + "/" + l.Vendor + "/" + l.Framework)
}

// Matches reports whether l satisfies the filter f (empty filter fields are
// wildcards).
func (l Labels) Matches(f Labels) bool {
	return matchField(l.Workload, f.Workload) &&
		matchField(l.Vendor, f.Vendor) &&
		matchField(l.Framework, f.Framework)
}

func matchField(have, want string) bool {
	return want == "" || strings.EqualFold(have, want)
}

// Config tunes windowing, retention and the clock.
type Config struct {
	// Window is the fine bucket width (default one minute).
	Window time.Duration
	// Retention is how many fine windows are kept before compaction folds
	// them into coarse windows (default 60).
	Retention int
	// CoarseFactor is the coarse bucket width in fine windows (default 10).
	CoarseFactor int
	// CoarseRetention is how many coarse windows are kept (default 144).
	CoarseRetention int
	// Now supplies the ingest clock; tests and the load generator inject a
	// virtual clock here. Defaults to time.Now.
	Now func() time.Time
	// Dir, when non-empty, roots the durable state (WAL segments and
	// snapshots; see internal/profstore/persist). Empty keeps the store
	// memory-only.
	Dir string
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.Retention <= 0 {
		c.Retention = 60
	}
	if c.CoarseFactor <= 1 {
		c.CoarseFactor = 10
	}
	if c.CoarseRetention <= 0 {
		c.CoarseRetention = 144
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

func (c Config) coarse() time.Duration { return time.Duration(c.CoarseFactor) * c.Window }

// series is one label set's rolling aggregate within a window.
type series struct {
	labels   Labels
	tree     *cct.Tree
	profiles int
}

// window is one time bucket holding per-label merged trees.
type window struct {
	start  time.Time
	dur    time.Duration
	series map[string]*series
}

func (w *window) profiles() int {
	n := 0
	for _, s := range w.series {
		n += s.profiles
	}
	return n
}

func (w *window) nodes() int {
	n := 0
	for _, s := range w.series {
		n += s.tree.NodeCount()
	}
	return n
}

// Store is a concurrency-safe rolling profile aggregator.
type Store struct {
	cfg Config

	mu     sync.RWMutex
	fine   map[int64]*window // unix-nano window start → bucket
	coarse map[int64]*window

	ingested    int64
	compactions int64
	lastIngest  time.Time

	// Persistence (all guarded by mu except where noted; nil/zero when
	// cfg.Dir is empty).
	wal            *persist.WAL
	walAppends     int64
	walBytes       int64
	snapshots      int64
	lastSnapshot   time.Time
	lastSnapBytes  int64
	lastSnapErr    string
	prunedSegments int64
	recovery       *RecoveryStats

	// snapMu serializes Snapshot calls; it is never held together with mu
	// (Snapshot acquires mu.RLock inside, which is fine — snapMu is
	// strictly outermost and nothing else takes it).
	snapMu sync.Mutex

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New returns an empty store. Call Close when done if StartCompactor was
// used (and always when Config.Dir is set, so the WAL is synced shut).
func New(cfg Config) *Store {
	return &Store{
		cfg:    cfg.withDefaults(),
		fine:   make(map[int64]*window),
		coarse: make(map[int64]*window),
		stop:   make(chan struct{}),
	}
}

// Config returns the store's effective (defaulted) configuration.
func (s *Store) Config() Config { return s.cfg }

// Ingest folds p into the current fine window's series for p's labels and
// returns that window's start. The profile's address-unified frames are
// normalized to cross-run stable identities before merging; p itself is not
// modified and may be discarded by the caller.
//
// With persistence enabled the raw profile is appended to the WAL before
// the merge, under the same critical section, so log order equals merge
// order and a replay reconstructs the exact tree. A WAL append failure
// fails the ingest — an acknowledged profile must be durable.
func (s *Store) Ingest(p *profiler.Profile) (time.Time, error) {
	if p == nil || p.Tree == nil {
		return time.Time{}, fmt.Errorf("profstore: nil profile")
	}
	labels := LabelsOf(p.Meta)
	// Serialization for the WAL and normalization both walk the whole
	// tree — do them outside the lock so concurrent ingests only
	// serialize on the (cheaper) merge and the log write.
	var payload []byte
	if s.cfg.Dir != "" {
		var err error
		if payload, err = persist.EncodeProfile(p); err != nil {
			return time.Time{}, fmt.Errorf("profstore: encode for wal: %w", err)
		}
	}
	normalized := cct.NormalizeAddresses(p.Tree)

	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Now()
	start := now.Truncate(s.cfg.Window)
	if payload != nil {
		if err := s.walAppendLocked(start.UnixNano(), now.UnixNano(), payload); err != nil {
			return time.Time{}, err
		}
	}
	s.mergeIntoWindowLocked(start, labels, normalized)
	s.ingested++
	s.lastIngest = now
	return start, nil
}

// mergeIntoWindowLocked folds an already-normalized tree into the fine
// bucket starting at start. Callers hold mu exclusively.
func (s *Store) mergeIntoWindowLocked(start time.Time, labels Labels, normalized *cct.Tree) {
	w := s.fine[start.UnixNano()]
	if w == nil {
		w = &window{start: start, dur: s.cfg.Window, series: make(map[string]*series)}
		s.fine[start.UnixNano()] = w
	}
	key := labels.Key()
	ser := w.series[key]
	if ser == nil {
		ser = &series{labels: labels, tree: cct.New()}
		w.series[key] = ser
	}
	cct.Merge(ser.tree, normalized)
	ser.profiles++
}

// walAppendLocked lazily opens the WAL and appends one framed record.
// Callers hold mu exclusively.
func (s *Store) walAppendLocked(startNS, tstampNS int64, payload []byte) error {
	if err := s.openWALLocked(); err != nil {
		return err
	}
	n, err := s.wal.Append(startNS, tstampNS, payload)
	if err != nil {
		return fmt.Errorf("profstore: wal append: %w", err)
	}
	s.walAppends++
	s.walBytes += n
	return nil
}

func (s *Store) openWALLocked() error {
	if s.wal != nil {
		return nil
	}
	if err := os.MkdirAll(s.cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("profstore: data dir: %w", err)
	}
	w, err := persist.OpenWAL(s.cfg.Dir)
	if err != nil {
		return err
	}
	s.wal = w
	return nil
}

// WindowInfo describes one retained bucket.
type WindowInfo struct {
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Coarse   bool          `json:"coarse,omitempty"`
	Series   int           `json:"series"`
	Profiles int           `json:"profiles"`
	Nodes    int           `json:"nodes"`
}

// Windows lists retained buckets, oldest first (fine and coarse
// interleaved by start time).
func (s *Store) Windows() []WindowInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]WindowInfo, 0, len(s.fine)+len(s.coarse))
	for _, w := range s.fine {
		out = append(out, WindowInfo{Start: w.start, Duration: w.dur,
			Series: len(w.series), Profiles: w.profiles(), Nodes: w.nodes()})
	}
	for _, w := range s.coarse {
		out = append(out, WindowInfo{Start: w.start, Duration: w.dur, Coarse: true,
			Series: len(w.series), Profiles: w.profiles(), Nodes: w.nodes()})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return !out[i].Coarse && out[j].Coarse
	})
	return out
}

// AggregateInfo summarizes what an aggregate query matched.
type AggregateInfo struct {
	Windows  int      `json:"windows"`
	Profiles int      `json:"profiles"`
	Series   []string `json:"series"`
}

// Aggregate merges every series matching filter in buckets whose start lies
// in [from, to) into one fresh tree. Zero bounds are open (from the oldest
// bucket / through the newest). The stored trees are not modified; the
// result is owned by the caller.
func (s *Store) Aggregate(from, to time.Time, filter Labels) (*cct.Tree, AggregateInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.aggregateLocked(from, to, filter)
}

func (s *Store) aggregateLocked(from, to time.Time, filter Labels) (*cct.Tree, AggregateInfo, error) {
	out := cct.New()
	info := AggregateInfo{}
	seen := make(map[string]bool)
	fold := func(w *window) {
		if !from.IsZero() && w.start.Before(from) {
			return
		}
		if !to.IsZero() && !w.start.Before(to) {
			return
		}
		matched := false
		for _, k := range sortedKeys(w.series) {
			ser := w.series[k]
			if !ser.labels.Matches(filter) {
				continue
			}
			cct.Merge(out, ser.tree)
			info.Profiles += ser.profiles
			matched = true
			if !seen[k] {
				seen[k] = true
				info.Series = append(info.Series, k)
			}
		}
		if matched {
			info.Windows++
		}
	}
	// Sorted iteration makes the merge order — and with it the result
	// tree's child order, hence tie-breaking in ranked queries — fully
	// deterministic across calls and restarts.
	for _, k := range sortedKeys(s.fine) {
		fold(s.fine[k])
	}
	for _, k := range sortedKeys(s.coarse) {
		fold(s.coarse[k])
	}
	if info.Windows == 0 {
		return nil, info, fmt.Errorf("no data for filter %s in [%v, %v): %w", filter.Key(), from, to, ErrNoData)
	}
	sort.Strings(info.Series)
	return out, info, nil
}

// resolveWindowLocked returns the single bucket containing instant t,
// preferring fine windows (full resolution) over coarse ones. Callers hold
// s.mu.
func (s *Store) resolveWindowLocked(t time.Time) (*window, error) {
	if w := s.fine[t.Truncate(s.cfg.Window).UnixNano()]; w != nil {
		return w, nil
	}
	if w := s.coarse[t.Truncate(s.cfg.coarse()).UnixNano()]; w != nil {
		return w, nil
	}
	return nil, fmt.Errorf("no window contains %v: %w", t, ErrNoData)
}

// aggregateWindowLocked merges w's series matching filter into a fresh
// tree. Unlike a time-range aggregate this reads exactly one bucket — a
// coarse fallback must not sweep in fine windows sharing its range.
func (s *Store) aggregateWindowLocked(w *window, filter Labels) (*cct.Tree, error) {
	out := cct.New()
	matched := false
	for _, k := range sortedKeys(w.series) {
		if ser := w.series[k]; ser.labels.Matches(filter) {
			cct.Merge(out, ser.tree)
			matched = true
		}
	}
	if !matched {
		return nil, fmt.Errorf("no series match %s in window %v: %w", filter.Key(), w.start, ErrNoData)
	}
	return out, nil
}

// Hotspot is one top-N query row: a calling context ranked by the magnitude
// of its exclusive metric.
type Hotspot struct {
	Rank  int      `json:"rank"`
	Label string   `json:"label"`
	Kind  string   `json:"kind"`
	Path  []string `json:"path"`
	Excl  float64  `json:"excl"`
	Incl  float64  `json:"incl"`
	// Frac is Excl relative to the root's inclusive total.
	Frac float64 `json:"frac"`
}

// Hotspots returns the top calling contexts by exclusive metric over the
// aggregate of [from, to) under filter.
func (s *Store) Hotspots(from, to time.Time, filter Labels, metric string, top int) ([]Hotspot, AggregateInfo, error) {
	if metric == "" {
		metric = cct.MetricGPUTime
	}
	tree, info, err := s.Aggregate(from, to, filter)
	if err != nil {
		return nil, info, err
	}
	id, ok := tree.Schema.Lookup(metric)
	if !ok {
		return nil, info, fmt.Errorf("metric %q not present (known: %s): %w",
			metric, strings.Join(tree.Schema.Names(), ", "), ErrUnknownMetric)
	}
	total := tree.Root.InclValue(id)
	var rows []Hotspot
	tree.Visit(func(n *cct.Node) {
		v := n.ExclValue(id)
		if v == 0 || n.Kind == cct.KindRoot {
			return
		}
		h := Hotspot{Label: n.Label(), Kind: n.Kind.String(), Excl: v, Incl: n.InclValue(id)}
		for _, f := range n.Path() {
			h.Path = append(h.Path, f.Label())
		}
		if total != 0 {
			h.Frac = v / total
		}
		rows = append(rows, h)
	})
	sort.SliceStable(rows, func(i, j int) bool {
		return math.Abs(rows[i].Excl) > math.Abs(rows[j].Excl)
	})
	if top > 0 && len(rows) > top {
		rows = rows[:top]
	}
	for i := range rows {
		rows[i].Rank = i + 1
	}
	return rows, info, nil
}

// DiffRow is one changed calling context of a window-vs-window comparison,
// with the per-side exclusive values for context (the shape of cmd/dcdiff's
// hotspot table).
type DiffRow struct {
	Rank   int     `json:"rank"`
	Label  string  `json:"label"`
	Kind   string  `json:"kind"`
	Delta  float64 `json:"delta"`
	Before float64 `json:"before"`
	After  float64 `json:"after"`
}

// DiffResult is a signed window-vs-window comparison: positive deltas mean
// the "after" window spent more (a regression when after is the newer one).
type DiffResult struct {
	Metric      string    `json:"metric"`
	BeforeTotal float64   `json:"before_total"`
	AfterTotal  float64   `json:"after_total"`
	Net         float64   `json:"net"`
	Rows        []DiffRow `json:"rows"`
	// Tree is the signed delta tree (after − before) for flame rendering;
	// omitted from JSON.
	Tree *cct.Tree `json:"-"`
}

// Diff compares the window containing the instant "after" against the one
// containing "before" under filter, ranking changed contexts by magnitude.
// Stored trees were normalized at ingest, so the result matches cmd/dcdiff
// over the same profiles (up to child order).
func (s *Store) Diff(before, after time.Time, filter Labels, metric string, top int) (*DiffResult, error) {
	if metric == "" {
		metric = cct.MetricGPUTime
	}
	// Resolve windows and aggregate under one read lock: a compaction pass
	// between the two steps could fold a just-resolved fine window into a
	// coarse bucket, making retained data look absent.
	s.mu.RLock()
	bWin, err := s.resolveWindowLocked(before)
	if err != nil {
		s.mu.RUnlock()
		return nil, fmt.Errorf("profstore: before: %w", err)
	}
	aWin, err := s.resolveWindowLocked(after)
	if err != nil {
		s.mu.RUnlock()
		return nil, fmt.Errorf("profstore: after: %w", err)
	}
	beforeTree, bErr := s.aggregateWindowLocked(bWin, filter)
	afterTree, aErr := s.aggregateWindowLocked(aWin, filter)
	s.mu.RUnlock()
	if bErr != nil {
		return nil, fmt.Errorf("profstore: before: %w", bErr)
	}
	if aErr != nil {
		return nil, fmt.Errorf("profstore: after: %w", aErr)
	}

	diff := cct.Diff(afterTree, beforeTree)
	id, ok := diff.Schema.Lookup(metric)
	if !ok {
		return nil, fmt.Errorf("metric %q not present in either window (known: %s): %w",
			metric, strings.Join(diff.Schema.Names(), ", "), ErrUnknownMetric)
	}
	res := &DiffResult{Metric: metric, Tree: diff}
	if bid, ok := beforeTree.Schema.Lookup(metric); ok {
		res.BeforeTotal = beforeTree.Root.InclValue(bid)
	}
	if aid, ok := afterTree.Schema.Lookup(metric); ok {
		res.AfterTotal = afterTree.Root.InclValue(aid)
	}
	res.Net = res.AfterTotal - res.BeforeTotal

	beforeVals := exclByPath(beforeTree, metric)
	afterVals := exclByPath(afterTree, metric)
	diff.Visit(func(n *cct.Node) {
		d := n.ExclValue(id)
		if d == 0 || n.Kind == cct.KindRoot {
			return
		}
		key := pathKey(n)
		res.Rows = append(res.Rows, DiffRow{
			Label:  n.Label(),
			Kind:   n.Kind.String(),
			Delta:  d,
			Before: beforeVals[key],
			After:  afterVals[key],
		})
	})
	sort.SliceStable(res.Rows, func(i, j int) bool {
		return math.Abs(res.Rows[i].Delta) > math.Abs(res.Rows[j].Delta)
	})
	if top > 0 && len(res.Rows) > top {
		res.Rows = res.Rows[:top]
	}
	for i := range res.Rows {
		res.Rows[i].Rank = i + 1
	}
	return res, nil
}

// exclByPath flattens a tree into path-key → exclusive value for metric.
func exclByPath(t *cct.Tree, metric string) map[string]float64 {
	out := make(map[string]float64)
	id, ok := t.Schema.Lookup(metric)
	if !ok {
		return out
	}
	t.Visit(func(n *cct.Node) {
		if v := n.ExclValue(id); v != 0 {
			out[pathKey(n)] = v
		}
	})
	return out
}

func pathKey(n *cct.Node) string {
	var sb strings.Builder
	for _, f := range n.Path() {
		sb.WriteString(f.Key())
		sb.WriteByte(';')
	}
	return sb.String()
}

// CompactNow runs one compaction pass against the store's clock: fine
// windows older than Retention×Window fold into their coarse bucket
// (series-by-series, via the associative cct.Merge — metric sums are
// conserved), and coarse windows older than CoarseRetention×coarse width
// are dropped. It returns how many fine windows were folded and how many
// coarse windows were dropped.
func (s *Store) CompactNow() (folded, dropped int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

// compactLocked folds and drops in sorted window/series order, so the
// coarse trees a compaction builds are reproducible: recovery relies on
// this to re-fold replayed fine windows into the same coarse trees the
// pre-crash store held (map-order folds would reassociate merges).
func (s *Store) compactLocked() (folded, dropped int) {
	now := s.cfg.Now()
	fineHorizon := now.Add(-time.Duration(s.cfg.Retention) * s.cfg.Window).Truncate(s.cfg.Window)
	for _, key := range sortedKeys(s.fine) {
		w := s.fine[key]
		if !w.start.Before(fineHorizon) {
			continue
		}
		cStart := w.start.Truncate(s.cfg.coarse())
		cw := s.coarse[cStart.UnixNano()]
		if cw == nil {
			cw = &window{start: cStart, dur: s.cfg.coarse(), series: make(map[string]*series)}
			s.coarse[cStart.UnixNano()] = cw
		}
		for _, k := range sortedKeys(w.series) {
			ser := w.series[k]
			dst := cw.series[k]
			if dst == nil {
				dst = &series{labels: ser.labels, tree: cct.New()}
				cw.series[k] = dst
			}
			cct.Merge(dst.tree, ser.tree)
			dst.profiles += ser.profiles
		}
		delete(s.fine, key)
		folded++
	}
	coarseHorizon := now.Add(-time.Duration(s.cfg.CoarseRetention) * s.cfg.coarse()).Truncate(s.cfg.coarse())
	for _, key := range sortedKeys(s.coarse) {
		w := s.coarse[key]
		if w.start.Before(coarseHorizon) {
			delete(s.coarse, key)
			dropped++
			// Retiring a coarse window retires the WAL segments of every
			// fine window folded into it: the data has aged out, so a
			// WAL-only recovery must not resurrect it.
			s.pruneWALRangeLocked(w.start.UnixNano(), w.start.Add(w.dur).UnixNano())
		}
	}
	if folded > 0 || dropped > 0 {
		s.compactions++
	}
	return folded, dropped
}

// sortedKeys returns m's keys ascending — iteration order for every fold
// or drop that must be deterministic.
func sortedKeys[K interface{ ~int64 | ~string }, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// pruneWALRangeLocked deletes WAL segments for window starts in [lo, hi).
// Callers hold mu exclusively. Prune failures are recorded nowhere fatal —
// a leftover segment only costs replay time and is re-dropped by the next
// compaction after recovery.
func (s *Store) pruneWALRangeLocked(lo, hi int64) {
	if s.cfg.Dir == "" {
		return
	}
	if err := s.openWALLocked(); err != nil {
		return
	}
	if n, err := s.wal.PruneRange(lo, hi); err == nil {
		s.prunedSegments += int64(n)
	}
}

// StartCompactor runs CompactNow every interval (default: one fine window)
// until Close. Start background loops before any Close call; beyond that
// they may be started from any goroutine (a shared WaitGroup tracks them —
// PR 3 kept a single done channel here, which raced a concurrent Close).
func (s *Store) StartCompactor(interval time.Duration) {
	if interval <= 0 {
		interval = s.cfg.Window
	}
	s.startLoop(interval, func() { s.CompactNow() })
}

// StartSnapshotter snapshots every interval until Close. Errors are
// retained in Stats (LastSnapshotError); the next tick retries.
func (s *Store) StartSnapshotter(interval time.Duration) {
	if interval <= 0 || s.cfg.Dir == "" {
		return
	}
	s.startLoop(interval, func() { s.Snapshot() })
}

func (s *Store) startLoop(interval time.Duration, tick func()) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				tick()
			case <-s.stop:
				return
			}
		}
	}()
}

// Close stops the background loops and syncs the WAL shut. Idempotent.
func (s *Store) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		s.wal.Close()
	}
}

// Snapshot writes an atomic compacted image of the retained windows to
// Config.Dir and prunes WAL segments the image fully covers. The capture
// runs under the shared lock (blocking ingest, so window state and WAL
// watermarks form one consistent cut); encoding and disk I/O happen after
// release. Concurrent Snapshot calls serialize on snapMu.
func (s *Store) Snapshot() (persist.Info, error) {
	var info persist.Info
	if s.cfg.Dir == "" {
		return info, fmt.Errorf("profstore: snapshot: no Config.Dir")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()

	// Opening the WAL needs the exclusive lock; do it up front so the
	// capture below can run shared.
	s.mu.Lock()
	if err := s.openWALLocked(); err != nil {
		s.mu.Unlock()
		return info, s.noteSnapshotErrLocked(err)
	}
	s.mu.Unlock()

	s.mu.RLock()
	offsets, err := s.wal.Offsets()
	if err != nil {
		s.mu.RUnlock()
		s.mu.Lock()
		defer s.mu.Unlock()
		return info, s.noteSnapshotErrLocked(err)
	}
	state := &persist.State{
		CreatedUnixNano: s.cfg.Now().UnixNano(),
		Ingested:        s.ingested,
		Compactions:     s.compactions,
		WALOffsets:      offsets,
	}
	if !s.lastIngest.IsZero() {
		state.LastIngestUnixNano = s.lastIngest.UnixNano()
	}
	appendWindow := func(w *window, coarse bool) {
		ws := persist.WindowState{Start: w.start.UnixNano(), DurNS: int64(w.dur), Coarse: coarse}
		for key, ser := range w.series {
			ws.Series = append(ws.Series, persist.SeriesState{
				Key:      key,
				Profiles: ser.profiles,
				Profile: &profiler.Profile{
					Tree: ser.tree,
					Meta: profiler.Meta{
						Workload:  ser.labels.Workload,
						Vendor:    ser.labels.Vendor,
						Framework: ser.labels.Framework,
					},
				},
			})
		}
		state.Windows = append(state.Windows, ws)
	}
	for _, w := range s.fine {
		appendWindow(w, false)
	}
	for _, w := range s.coarse {
		appendWindow(w, true)
	}
	// CaptureState encodes the live trees, so it must finish before the
	// read lock is released and a writer can mutate them.
	capture, err := persist.CaptureState(state)
	s.mu.RUnlock()
	if err == nil {
		info, err = capture.Commit(s.cfg.Dir)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		return info, s.noteSnapshotErrLocked(err)
	}
	s.snapshots++
	s.lastSnapshot = s.cfg.Now()
	s.lastSnapBytes = info.Bytes
	s.lastSnapErr = ""
	// Segments fully covered by the committed image are dead weight; only
	// the currently-appending segment survives this (see persist.Prune).
	if n, perr := s.wal.Prune(offsets); perr == nil {
		s.prunedSegments += int64(n)
	}
	return info, nil
}

func (s *Store) noteSnapshotErrLocked(err error) error {
	err = fmt.Errorf("profstore: snapshot: %w", err)
	s.lastSnapErr = err.Error()
	return err
}

// RecoveryStats reports what Recover rebuilt and what it had to skip.
type RecoveryStats struct {
	SnapshotLoaded bool `json:"snapshot_loaded"`
	// SnapshotError is the non-fatal reason the snapshot was unusable
	// (recovery then replays the WAL from the beginning).
	SnapshotError      string   `json:"snapshot_error,omitempty"`
	WindowsRestored    int      `json:"windows_restored"`
	ProfilesFromSnap   int64    `json:"profiles_from_snapshot"`
	WALSegments        int      `json:"wal_segments"`
	WALRecords         int64    `json:"wal_records"`
	WALSkippedRecords  int64    `json:"wal_skipped_records"`
	WALSkippedSegments int      `json:"wal_skipped_segments"`
	Warnings           []string `json:"warnings,omitempty"`
}

// Recover rebuilds the store from Config.Dir: latest snapshot first, then
// the WAL suffix beyond the snapshot's watermarks, re-ingested through the
// same normalize-and-merge path in original order — so recovered Hotspots
// and Diff results are byte-equal to the pre-crash store. It must run on
// an empty store (call it before serving). Corrupt snapshots or WAL tails
// are skipped and reported in RecoveryStats, never fatal; only an unusable
// data directory errors.
func (s *Store) Recover() (RecoveryStats, error) {
	var rs RecoveryStats
	if s.cfg.Dir == "" {
		return rs, fmt.Errorf("profstore: recover: no Config.Dir")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ingested != 0 || len(s.fine) != 0 || len(s.coarse) != 0 {
		return rs, fmt.Errorf("profstore: recover: store is not empty")
	}
	if err := s.openWALLocked(); err != nil {
		return rs, err
	}

	var offsets map[int64]int64
	snap, err := persist.ReadSnapshot(s.cfg.Dir)
	switch {
	case err != nil:
		// A snapshot that fails its checksums is discarded wholesale and
		// recovery degrades to WAL-only — losing the windows whose
		// segments were pruned, but never refusing to boot.
		rs.SnapshotError = err.Error()
	case snap != nil:
		rs.SnapshotLoaded = true
		rs.ProfilesFromSnap = snap.Ingested
		s.ingested = snap.Ingested
		s.compactions = snap.Compactions
		if snap.LastIngestUnixNano != 0 {
			s.lastIngest = time.Unix(0, snap.LastIngestUnixNano)
		}
		for _, ws := range snap.Windows {
			w := &window{
				start:  time.Unix(0, ws.Start),
				dur:    time.Duration(ws.DurNS),
				series: make(map[string]*series, len(ws.Series)),
			}
			for _, ss := range ws.Series {
				// Snapshot trees were normalized at original ingest and
				// are adopted as-is; labels round-trip through Meta.
				w.series[ss.Key] = &series{
					labels:   LabelsOf(ss.Profile.Meta),
					tree:     ss.Profile.Tree,
					profiles: ss.Profiles,
				}
			}
			if ws.Coarse {
				s.coarse[ws.Start] = w
			} else {
				s.fine[ws.Start] = w
			}
			rs.WindowsRestored++
		}
		offsets = snap.WALOffsets
	}

	rep, err := s.wal.Replay(offsets, func(start, tstamp int64, p *profiler.Profile) error {
		if p == nil || p.Tree == nil {
			return fmt.Errorf("nil profile")
		}
		s.mergeIntoWindowLocked(time.Unix(0, start), LabelsOf(p.Meta), cct.NormalizeAddresses(p.Tree))
		s.ingested++
		if ts := time.Unix(0, tstamp); ts.After(s.lastIngest) {
			s.lastIngest = ts
		}
		return nil
	})
	if err != nil {
		return rs, fmt.Errorf("profstore: recover: wal replay: %w", err)
	}
	rs.WALSegments = rep.Segments
	rs.WALRecords = rep.Records
	rs.WALSkippedRecords = rep.SkippedRecords
	rs.WALSkippedSegments = rep.SkippedSegments
	rs.Warnings = rep.Warnings
	// If a compaction ran between the last snapshot and the crash, the
	// replayed data sits in fine windows the pre-crash store had already
	// folded coarse. Re-running the (deterministic, sorted-order) fold
	// converges the recovered arrangement — and the trees themselves —
	// with the pre-crash store before the first query sees it.
	s.compactLocked()
	s.recovery = &rs
	return rs, nil
}

// Stats is a point-in-time snapshot of store occupancy and activity.
type Stats struct {
	Ingested      int64     `json:"ingested"`
	Compactions   int64     `json:"compactions"`
	FineWindows   int       `json:"fine_windows"`
	CoarseWindows int       `json:"coarse_windows"`
	Series        int       `json:"series"`
	Nodes         int       `json:"nodes"`
	LastIngest    time.Time `json:"last_ingest,omitempty"`
	// Persist is present only when Config.Dir is set.
	Persist *PersistStats `json:"persist,omitempty"`
}

// PersistStats counts durability work since boot.
type PersistStats struct {
	Dir               string         `json:"dir"`
	WALAppends        int64          `json:"wal_appends"`
	WALBytes          int64          `json:"wal_bytes"`
	Snapshots         int64          `json:"snapshots"`
	LastSnapshot      time.Time      `json:"last_snapshot,omitempty"`
	LastSnapshotBytes int64          `json:"last_snapshot_bytes,omitempty"`
	LastSnapshotError string         `json:"last_snapshot_error,omitempty"`
	PrunedWALSegments int64          `json:"pruned_wal_segments"`
	Recovery          *RecoveryStats `json:"recovery,omitempty"`
}

// Stats snapshots the store.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Ingested:      s.ingested,
		Compactions:   s.compactions,
		FineWindows:   len(s.fine),
		CoarseWindows: len(s.coarse),
		LastIngest:    s.lastIngest,
	}
	for _, w := range s.fine {
		st.Series += len(w.series)
		st.Nodes += w.nodes()
	}
	for _, w := range s.coarse {
		st.Series += len(w.series)
		st.Nodes += w.nodes()
	}
	if s.cfg.Dir != "" {
		st.Persist = &PersistStats{
			Dir:               s.cfg.Dir,
			WALAppends:        s.walAppends,
			WALBytes:          s.walBytes,
			Snapshots:         s.snapshots,
			LastSnapshot:      s.lastSnapshot,
			LastSnapshotBytes: s.lastSnapBytes,
			LastSnapshotError: s.lastSnapErr,
			PrunedWALSegments: s.prunedSegments,
			Recovery:          s.recovery,
		}
	}
	return st
}
