// Package profstore is the continuous-profiling backend: it accepts
// profiles from many concurrent clients and aggregates them into
// time-bucketed rolling windows, one merged calling context tree per
// (workload, vendor, framework) label set per window. Profiles are
// normalized at ingest (cct.NormalizeAddresses) so runs from different
// processes and machines unify, the same fleet-aggregation model as
// datacenter-wide profilers: the store's size is proportional to distinct
// calling contexts per window, not to the number of profiles received.
//
// Retention is two-tiered. Fine windows (Config.Window wide) hold recent
// data at full label granularity; a compaction pass — callable directly or
// run by a background goroutine — folds fine windows older than the
// retention horizon into coarser windows (CoarseFactor × Window wide) via
// the associative cct.Merge, and eventually drops coarse windows past their
// own retention. Metric sums are conserved by compaction; only time
// resolution is lost.
//
// # Sharding
//
// The store is split into Config.Shards lock-striped shards; each series
// (label set) is routed to one shard by hash of its key, so concurrent
// ingest from disjoint series never contends. Queries (top-N hotspots,
// window-vs-window signed diffs, merged aggregates for flame graphs and
// the analyzer) take every shard's read lock — in ascending shard order,
// the store-wide lock order — for one consistent cut, and fold series in
// globally sorted (window, series-key) order, so query results are
// byte-identical for every shard count.
//
// # Query cache
//
// With Config.CacheSize > 0, hotspot, diff and aggregate results are
// memoized. Each shard stamps every retained bucket with a generation,
// bumped on ingest merge and compaction fold; a cached result records the
// stamps of every bucket it read, and is served only when re-deriving the
// stamp set under the query's read lock matches exactly — so a mutation of
// any (shard, window) a result depends on invalidates precisely the
// queries that read it, and a cache hit is indistinguishable from
// recomputing. Cached results (rows, trees) are shared between callers and
// must be treated as read-only; with the cache disabled (the default)
// every query returns a fresh tree the caller owns.
//
// # Fleet-wide queries
//
// TopK (global frame ranking) and Search (which series contain a frame)
// answer fleet-scale questions without folding trees: when a fine window
// closes — the same transition points the trend tracker hooks — each of
// its series is reduced to a per-label exclusive-sum aggregate and its
// frames are registered in the shard's inverted index (interned identity
// → posting list of series keys; see index.go). Queries fold the cached
// aggregates in the canonical (tier, start, seriesKey) order and Search
// prunes series whose posting lists prove the frame absent. Both paths
// are bit-identical to aggregating the trees on the fly, which the
// equivalence and golden tests pin; Config.IndexDisabled turns the fast
// path off without changing any result.
//
// # Regression detection
//
// Unless Config.Trend.Disabled, each shard feeds every fine window that
// closes (detected at ingest window transitions, compaction passes, and
// explicit TrendSweep calls) to a trend tracker that maintains per-(series,
// frame) EWMA share baselines and flags sustained drifts — see
// internal/profstore/trend. Regressions returns the retained findings in a
// canonical order independent of shard count and restarts; tracker state
// rides in snapshots so detection history survives recovery.
//
// # Durability
//
// With Config.Dir set the store is durable: every ingested profile is
// appended to its shard's write-ahead log (rotated per window bucket)
// before it is merged, and Snapshot writes an atomic compacted image of
// each shard's retained windows under <dir>/shard-<i>/. Recover, called on
// an empty store at boot, loads each shard's latest snapshot and replays
// only the WAL suffix beyond the snapshot's per-segment watermarks;
// because cct.Merge is associative and replay preserves ingest order, the
// recovered store answers Hotspots and Diff byte-equal to the pre-crash
// store. Recover also adopts directories written under other layouts — the
// pre-shard single-store layout, or a different shard count — by routing
// every recovered series to its current shard and re-committing the
// directory, with an atomically-written STORE.json as the migration commit
// point. See internal/profstore/persist for the on-disk format and
// corruption policy.
//
// # Locking
//
// Each shard has one RWMutex guarding its window maps, generation stamps
// and counters. Ingest and compaction take exactly one shard's lock at a
// time; queries and Stats take all shard read locks in ascending order and
// nothing acquires a lower-numbered shard lock while holding a higher one,
// so the order is acyclic. Each shard's WAL has an internal mutex only
// ever acquired under that shard's lock (or from Snapshot's post-capture
// prune) — shard.mu is always taken first, never inside a WAL call. The
// query cache has its own mutex, acquired under shard read locks on
// lookup but never the other way around. snapMu serializes whole Snapshot
// calls against each other only. Store-level counters (compactions,
// snapshot bookkeeping, cache hit counts) are atomic telemetry counters,
// so Stats reads no counter unguarded.
//
// # Telemetry
//
// The store registers its metrics — activity counters, occupancy gauges,
// and latency histograms for ingest, lock wait, WAL append/fsync, window
// close, compaction, snapshot, recovery and trend sweeps — on
// Config.Telemetry (or a private registry when nil; see
// internal/telemetry), and records lifecycle events in the registry's
// journal. Stats() reads the same counters the registry exports, so the
// JSON and /metrics surfaces cannot drift. Hot-path recording is
// zero-alloc and lock-free; Config.TimingsDisabled turns off the latency
// observations and journal events to measure the residual tax.
package profstore

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deepcontext/internal/cct"
	"deepcontext/internal/profiler"
	"deepcontext/internal/profstore/persist"
	"deepcontext/internal/profstore/trend"
	"deepcontext/internal/telemetry"
)

// Typed query failures, for errors.Is dispatch at API boundaries (a server
// maps ErrNoData to 404 and ErrUnknownMetric to 400).
var (
	// ErrNoData reports a query that matched no retained window or series.
	ErrNoData = errors.New("profstore: no matching data")
	// ErrUnknownMetric reports a metric name absent from the matched data.
	ErrUnknownMetric = errors.New("profstore: unknown metric")
)

// Labels identify one profile series. As a query filter, empty fields match
// anything (matching is case-insensitive, mirroring the facade's vendor and
// framework parsing).
type Labels struct {
	Workload  string `json:"workload,omitempty"`
	Vendor    string `json:"vendor,omitempty"`
	Framework string `json:"framework,omitempty"`
}

// LabelsOf extracts the series labels from profile metadata.
func LabelsOf(m profiler.Meta) Labels {
	return Labels{Workload: m.Workload, Vendor: m.Vendor, Framework: m.Framework}
}

// Key renders the canonical series key "workload/vendor/framework".
func (l Labels) Key() string {
	return strings.ToLower(l.Workload + "/" + l.Vendor + "/" + l.Framework)
}

// Matches reports whether l satisfies the filter f (empty filter fields are
// wildcards).
func (l Labels) Matches(f Labels) bool {
	return matchField(l.Workload, f.Workload) &&
		matchField(l.Vendor, f.Vendor) &&
		matchField(l.Framework, f.Framework)
}

func matchField(have, want string) bool {
	return want == "" || strings.EqualFold(have, want)
}

// Config tunes windowing, retention, sharding, caching and the clock.
type Config struct {
	// Window is the fine bucket width (default one minute).
	Window time.Duration
	// Retention is how many fine windows are kept before compaction folds
	// them into coarse windows (default 60).
	Retention int
	// CoarseFactor is the coarse bucket width in fine windows (default 10).
	CoarseFactor int
	// CoarseRetention is how many coarse windows are kept (default 144).
	CoarseRetention int
	// Shards is the lock-stripe count; series route to shards by hash of
	// their label key, so ingest of disjoint series never contends.
	// Default 1. Query results are independent of the shard count.
	Shards int
	// CacheSize bounds the query cache in entries; 0 (the default)
	// disables caching. With caching enabled, results returned by
	// Hotspots, Diff and Aggregate may be shared between callers and must
	// be treated as read-only.
	CacheSize int
	// Now supplies the ingest clock; tests and the load generator inject a
	// virtual clock here. Defaults to time.Now.
	Now func() time.Time
	// Dir, when non-empty, roots the durable state (per-shard WAL segments
	// and snapshots; see internal/profstore/persist). Empty keeps the
	// store memory-only.
	Dir string
	// Trend tunes the regression detector (see internal/profstore/trend).
	// Tracking is on by default; set Trend.Disabled to opt out.
	Trend trend.Config
	// IndexDisabled turns off the fleet-query frame index and close-time
	// aggregates (see index.go). TopK and Search still work — they fall
	// back to aggregating trees on the fly — and return byte-identical
	// results, just without the indexed fast path. On by default.
	IndexDisabled bool
	// Telemetry receives the store's metrics and lifecycle events; nil
	// gives the store a private registry (Stats() is backed by the same
	// counters either way). Stores sharing a registry share counters —
	// give each store its own.
	Telemetry *telemetry.Registry
	// TimingsDisabled turns off latency observation (the clock reads and
	// histogram updates on the ingest, WAL, close, compaction and
	// snapshot paths) and journal events, for measuring the telemetry
	// tax. Counters stay on — they back Stats().
	TimingsDisabled bool
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.Retention <= 0 {
		c.Retention = 60
	}
	if c.CoarseFactor <= 1 {
		c.CoarseFactor = 10
	}
	if c.CoarseRetention <= 0 {
		c.CoarseRetention = 144
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.CacheSize < 0 {
		c.CacheSize = 0
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	c.Trend = c.Trend.WithDefaults()
	return c
}

func (c Config) coarse() time.Duration { return time.Duration(c.CoarseFactor) * c.Window }

// Store is a concurrency-safe, lock-striped rolling profile aggregator.
type Store struct {
	cfg    Config
	shards []*shard
	cache  *queryCache
	// met holds the telemetry handles (counters, histograms, journal)
	// the store records into; the same counters back Stats().
	met *storeMetrics

	// Snapshot bookkeeping. snapMu serializes Snapshot calls; it is never
	// held together with a shard lock (per-shard capture takes its own
	// locks inside).
	snapMu        sync.Mutex
	lastSnapshot  atomic.Int64 // unix nanoseconds; 0 = never
	lastSnapBytes atomic.Int64
	lastSnapErr   atomic.Value // string
	recovery      atomic.Pointer[RecoveryStats]

	// metaOK latches only SUCCESS of the layout check (a transient failure
	// — full disk, unmounted volume — must retry on the next ingest, so
	// errors are never cached).
	metaMu sync.Mutex
	metaOK bool

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New returns an empty store. Call Close when done if StartCompactor was
// used (and always when Config.Dir is set, so the WALs are synced shut).
func New(cfg Config) *Store {
	cfg = cfg.withDefaults()
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	met := newStoreMetrics(reg, !cfg.TimingsDisabled)
	s := &Store{
		cfg:    cfg,
		shards: make([]*shard, cfg.Shards),
		cache:  newQueryCache(cfg.CacheSize, met),
		met:    met,
		stop:   make(chan struct{}),
	}
	for i := range s.shards {
		s.shards[i] = newShard(i, cfg, met)
	}
	s.registerStoreGauges(reg)
	return s
}

// Config returns the store's effective (defaulted) configuration.
func (s *Store) Config() Config { return s.cfg }

// Telemetry returns the registry the store records into — the one from
// Config.Telemetry, or the private registry New created when none was
// supplied. Servers expose it (/metrics, /debug/events) and may register
// their own families on it.
func (s *Store) Telemetry() *telemetry.Registry { return s.met.reg }

// shardFor routes a series key to its shard by FNV-1a hash. The hash is
// deterministic across processes: a restarted store routes every recovered
// series back to the shard directory that wrote it.
func (s *Store) shardFor(key string) *shard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return s.shards[int(h%uint32(len(s.shards)))]
}

// rlockAll acquires every shard's read lock in ascending id order (the
// store-wide lock order), giving queries one consistent cut across shards.
func (s *Store) rlockAll() {
	for _, sh := range s.shards {
		sh.mu.RLock()
	}
}

func (s *Store) runlockAll() {
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.RUnlock()
	}
}

// ensureMeta stamps the data directory with the store's shard layout
// before the first WAL byte lands, and refuses to ingest into a directory
// committed under a different layout — Recover owns migrations. Only
// success is latched; a transient failure retries on the next ingest.
func (s *Store) ensureMeta() error {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	if s.metaOK {
		return nil
	}
	dir := s.cfg.Dir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("profstore: data dir: %w", err)
	}
	meta, err := persist.ReadStoreMeta(dir)
	if err != nil {
		return fmt.Errorf("profstore: %w", err)
	}
	switch {
	case meta == nil && persist.LegacyLayoutPresent(dir):
		return fmt.Errorf("profstore: %s holds a pre-shard store layout; call Recover to migrate it before ingesting", dir)
	case meta == nil:
		if err := persist.WriteStoreMeta(dir, persist.StoreMeta{Shards: len(s.shards)}); err != nil {
			return err
		}
	case meta.Shards != len(s.shards):
		return fmt.Errorf("profstore: %s was committed with %d shards but the store is configured with %d; call Recover to migrate", dir, meta.Shards, len(s.shards))
	case meta.Pending != "":
		return fmt.Errorf("profstore: %s has an unfinished layout swap; call Recover to resume it before ingesting", dir)
	}
	s.metaOK = true
	return nil
}

// noteMetaCommitted marks the layout check as already satisfied (Recover
// calls it after committing the layout).
func (s *Store) noteMetaCommitted() {
	s.metaMu.Lock()
	s.metaOK = true
	s.metaMu.Unlock()
}

// CommittedShards reports the shard count dir was last committed with,
// and false for a directory without a committed sharded layout (fresh, or
// pre-shard legacy). dcserver derives its -store-shards default from this
// so a CPU-count change never triggers an implicit migration.
func CommittedShards(dir string) (int, bool) {
	meta, err := persist.ReadStoreMeta(dir)
	if err != nil || meta == nil {
		return 0, false
	}
	return meta.Shards, true
}

// Ingest folds p into the current fine window of its series' shard and
// returns that window's start. The profile's address-unified frames are
// normalized to cross-run stable identities before merging; p itself is not
// modified and may be discarded by the caller.
//
// With persistence enabled the raw profile is appended to the shard's WAL
// before the merge, under the same critical section, so log order equals
// merge order and a replay reconstructs the exact tree. A WAL append
// failure fails the ingest — an acknowledged profile must be durable.
func (s *Store) Ingest(p *profiler.Profile) (time.Time, error) {
	var t0 time.Time
	if s.met.timings {
		t0 = time.Now()
	}
	if p == nil || p.Tree == nil {
		return time.Time{}, fmt.Errorf("profstore: nil profile")
	}
	labels := LabelsOf(p.Meta)
	// Serialization for the WAL and normalization both walk the whole
	// tree — do them outside the lock so concurrent ingests only
	// serialize on the (cheaper) merge and the log write.
	var payload []byte
	if s.cfg.Dir != "" {
		if err := s.ensureMeta(); err != nil {
			return time.Time{}, err
		}
		var err error
		if payload, err = persist.EncodeProfile(p); err != nil {
			return time.Time{}, fmt.Errorf("profstore: encode for wal: %w", err)
		}
	}
	normalized := cct.NormalizeAddresses(p.Tree)
	start, err := s.shardFor(labels.Key()).ingest(labels, normalized, payload)
	if err == nil && s.met.timings {
		s.met.ingestSeconds.Observe(time.Since(t0))
	}
	return start, err
}

// PreparedProfile is one batch-ingest entry: the profile's series labels,
// its normalized tree, and its WAL payload, all captured at Prepare time.
// Because Prepare snapshots everything ingestion reads, the source profile
// may be mutated (or delta-materialized further) before the batch lands.
type PreparedProfile struct {
	labels     Labels
	normalized *cct.Tree
	payload    []byte
}

// PayloadBytes reports the entry's WAL payload size (0 for a memory-only
// store) — what one full upload of this profile costs on the wire.
func (pp *PreparedProfile) PayloadBytes() int { return len(pp.payload) }

// Prepare runs the lock-free half of Ingest — WAL encoding and address
// normalization, both full-tree walks — and returns an entry for
// IngestPrepared. The streaming ingest session prepares each materialized
// profile as it is decoded, then applies whole batches under one shard
// lock acquisition.
func (s *Store) Prepare(p *profiler.Profile) (PreparedProfile, error) {
	if p == nil || p.Tree == nil {
		return PreparedProfile{}, fmt.Errorf("profstore: nil profile")
	}
	var payload []byte
	if s.cfg.Dir != "" {
		if err := s.ensureMeta(); err != nil {
			return PreparedProfile{}, err
		}
		var err error
		if payload, err = persist.EncodeProfile(p); err != nil {
			return PreparedProfile{}, fmt.Errorf("profstore: encode for wal: %w", err)
		}
	}
	return PreparedProfile{
		labels:     LabelsOf(p.Meta),
		normalized: cct.NormalizeAddresses(p.Tree),
		payload:    payload,
	}, nil
}

// IngestPrepared folds a batch of prepared profiles into the store,
// acquiring each shard's write lock once for all of that shard's entries
// instead of once per profile. Within a shard, entries apply in batch
// order (WAL append before merge, exactly as Ingest), and the whole batch
// shares one clock read — a batch lands in a single window per shard.
// Returned window starts align with the batch; on error, entries of the
// failing shard past the failure and all entries of higher-numbered shards
// are not applied and report zero starts.
func (s *Store) IngestPrepared(batch []PreparedProfile) ([]time.Time, error) {
	var t0 time.Time
	if s.met.timings {
		t0 = time.Now()
	}
	starts := make([]time.Time, len(batch))
	if len(batch) == 0 {
		return starts, nil
	}
	// Group entries by shard, preserving batch order within each group.
	// Shards are locked one at a time in ascending id order — the
	// store-wide lock order — though never nested.
	byShard := make(map[int][]int)
	for i := range batch {
		id := s.shardFor(batch[i].labels.Key()).id
		byShard[id] = append(byShard[id], i)
	}
	for _, id := range sortedKeys(byShard) {
		idxs := byShard[id]
		start, err := s.shards[id].ingestBatch(batch, idxs)
		if err != nil {
			return starts, err
		}
		for _, i := range idxs {
			starts[i] = start
		}
	}
	s.met.batches.Inc()
	s.met.batchProfiles.Add(int64(len(batch)))
	if s.met.timings {
		s.met.ingestSeconds.Observe(time.Since(t0))
	}
	return starts, nil
}

// IngestBatch prepares and ingests profiles as one batch; see
// IngestPrepared. The profiles must be distinct objects — callers reusing
// one evolving profile (the delta session) prepare each state eagerly.
func (s *Store) IngestBatch(ps []*profiler.Profile) ([]time.Time, error) {
	batch := make([]PreparedProfile, len(ps))
	for i, p := range ps {
		var err error
		if batch[i], err = s.Prepare(p); err != nil {
			return make([]time.Time, len(ps)), err
		}
	}
	return s.IngestPrepared(batch)
}

// WindowInfo describes one retained bucket.
type WindowInfo struct {
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Coarse   bool          `json:"coarse,omitempty"`
	Series   int           `json:"series"`
	Profiles int           `json:"profiles"`
	Nodes    int           `json:"nodes"`
}

// Windows lists retained buckets, oldest first (fine and coarse
// interleaved by start time), each combined across shards.
func (s *Store) Windows() []WindowInfo {
	s.rlockAll()
	defer s.runlockAll()
	combine := func(coarse bool) []WindowInfo {
		buckets := s.bucketsLocked(coarse)
		out := make([]WindowInfo, 0, len(buckets))
		for _, start := range sortedKeys(buckets) {
			wins := buckets[start]
			wi := WindowInfo{Start: wins[0].start, Duration: wins[0].dur, Coarse: coarse}
			for _, w := range wins {
				wi.Series += len(w.series)
				wi.Profiles += w.profiles()
				wi.Nodes += w.nodes()
			}
			out = append(out, wi)
		}
		return out
	}
	out := append(combine(false), combine(true)...)
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return !out[i].Coarse && out[j].Coarse
	})
	return out
}

// bucketsLocked gathers one resolution tier's windows from every shard,
// grouped by bucket start. Callers hold all shard read locks.
func (s *Store) bucketsLocked(coarse bool) map[int64][]*window {
	out := make(map[int64][]*window)
	for _, sh := range s.shards {
		m := sh.fine
		if coarse {
			m = sh.coarse
		}
		for k, w := range m {
			out[k] = append(out[k], w)
		}
	}
	return out
}

// AggregateInfo summarizes what an aggregate query matched. Coverage is set
// only on degraded cluster results (see internal/cluster); single-node
// queries always leave it nil so the JSON shape is unchanged.
type AggregateInfo struct {
	Windows  int       `json:"windows"`
	Profiles int       `json:"profiles"`
	Series   []string  `json:"series"`
	Coverage *Coverage `json:"coverage,omitempty"`
}

// Aggregate merges every series matching filter in buckets whose start lies
// in [from, to) into one fresh tree. Zero bounds are open (from the oldest
// bucket / through the newest). The stored trees are never modified; with
// the query cache disabled the result is owned by the caller, with it
// enabled the result may be shared and must be treated as read-only.
// Cancellation of ctx is honored at bucket boundaries; a canceled fold
// returns ctx's error (wrapped) and is never cached.
func (s *Store) Aggregate(ctx context.Context, from, to time.Time, filter Labels) (*cct.Tree, AggregateInfo, error) {
	type aggResult struct {
		tree *cct.Tree
		info AggregateInfo
	}
	var qkey string
	var deps []dep
	s.rlockAll()
	if s.cache != nil {
		qkey = fmt.Sprintf("agg|%d|%d|%s", from.UnixNano(), to.UnixNano(), filter.Key())
		deps = s.rangeDepsLocked(from, to)
		if v, ok := s.cache.serve(qkey, "", deps); ok {
			s.runlockAll()
			r := v.(*aggResult)
			return r.tree, r.info, nil
		}
	}
	tree, info, err := s.aggregateAllLocked(ctx, from, to, filter)
	s.runlockAll()
	if err != nil {
		return nil, info, err
	}
	if s.cache != nil {
		s.cache.put(qkey, "", deps, &aggResult{tree, info})
	}
	return tree, info, nil
}

// aggregateAllLocked folds matching series from every shard in globally
// sorted (tier, bucket start, series key) order — the exact fold order of
// the pre-shard single-map store, so the result tree's child order, hence
// tie-breaking in ranked queries, is identical for every shard count and
// fully deterministic across calls and restarts. Callers hold all shard
// read locks.
func (s *Store) aggregateAllLocked(ctx context.Context, from, to time.Time, filter Labels) (*cct.Tree, AggregateInfo, error) {
	out := cct.New()
	info := AggregateInfo{}
	seen := make(map[string]bool)
	foldTier := func(coarse bool) {
		buckets := s.bucketsLocked(coarse)
		for _, start := range sortedKeys(buckets) {
			// A disconnected client must not keep an all-shard fold
			// running; one atomic load per bucket is noise next to the
			// merges.
			if ctx.Err() != nil {
				return
			}
			wins := buckets[start]
			st := wins[0].start
			if !from.IsZero() && st.Before(from) {
				continue
			}
			if !to.IsZero() && !st.Before(to) {
				continue
			}
			merged := mergeSeriesViews(wins)
			matched := false
			for _, k := range sortedKeys(merged) {
				ser := merged[k]
				if !ser.labels.Matches(filter) {
					continue
				}
				cct.Merge(out, ser.tree)
				info.Profiles += ser.profiles
				matched = true
				if !seen[k] {
					seen[k] = true
					info.Series = append(info.Series, k)
				}
			}
			if matched {
				info.Windows++
			}
		}
	}
	foldTier(false)
	foldTier(true)
	if err := ctx.Err(); err != nil {
		return nil, info, fmt.Errorf("profstore: aggregate canceled: %w", err)
	}
	if info.Windows == 0 {
		return nil, info, fmt.Errorf("no data for filter %s in [%v, %v): %w", filter.Key(), from, to, ErrNoData)
	}
	sort.Strings(info.Series)
	return out, info, nil
}

// mergeSeriesViews flattens one bucket's per-shard windows into a single
// series map. Series keys are disjoint across shards (each key routes to
// exactly one shard), so this is a union, not a merge.
func mergeSeriesViews(wins []*window) map[string]*series {
	if len(wins) == 1 {
		return wins[0].series
	}
	merged := make(map[string]*series)
	for _, w := range wins {
		for k, ser := range w.series {
			merged[k] = ser
		}
	}
	return merged
}

// resolveBucketLocked returns the single bucket containing instant t —
// its per-shard windows and its identity — preferring fine windows (full
// resolution) over coarse ones. Callers hold all shard read locks.
func (s *Store) resolveBucketLocked(t time.Time) ([]*window, winKey, error) {
	fk := t.Truncate(s.cfg.Window).UnixNano()
	var wins []*window
	for _, sh := range s.shards {
		if w := sh.fine[fk]; w != nil {
			wins = append(wins, w)
		}
	}
	if len(wins) > 0 {
		return wins, winKey{fk, false}, nil
	}
	ck := t.Truncate(s.cfg.coarse()).UnixNano()
	for _, sh := range s.shards {
		if w := sh.coarse[ck]; w != nil {
			wins = append(wins, w)
		}
	}
	if len(wins) > 0 {
		return wins, winKey{ck, true}, nil
	}
	return nil, winKey{}, fmt.Errorf("no window contains %v: %w", t, ErrNoData)
}

// aggregateBucketLocked merges one bucket's series matching filter into a
// fresh tree, in sorted series-key order across shards. Unlike a
// time-range aggregate this reads exactly one bucket — a coarse fallback
// must not sweep in fine windows sharing its range. Callers hold all shard
// read locks.
func (s *Store) aggregateBucketLocked(wins []*window, filter Labels) (*cct.Tree, error) {
	merged := mergeSeriesViews(wins)
	out := cct.New()
	matched := false
	for _, k := range sortedKeys(merged) {
		if ser := merged[k]; ser.labels.Matches(filter) {
			cct.Merge(out, ser.tree)
			matched = true
		}
	}
	if !matched {
		return nil, fmt.Errorf("no series match %s in window %v: %w", filter.Key(), wins[0].start, ErrNoData)
	}
	return out, nil
}

// rangeDepsLocked stamps every bucket whose start lies in [from, to): the
// full dependency set of a range query. Any mutation of those buckets, or
// a bucket appearing in or vanishing from the range, changes the derived
// set and misses the cache. Callers hold all shard read locks.
func (s *Store) rangeDepsLocked(from, to time.Time) []dep {
	in := func(st time.Time) bool {
		return (from.IsZero() || !st.Before(from)) && (to.IsZero() || st.Before(to))
	}
	var deps []dep
	for si, sh := range s.shards {
		for _, k := range sortedKeys(sh.fine) {
			if in(sh.fine[k].start) {
				wk := winKey{k, false}
				deps = append(deps, dep{si, wk, sh.gens[wk]})
			}
		}
		for _, k := range sortedKeys(sh.coarse) {
			if in(sh.coarse[k].start) {
				wk := winKey{k, true}
				deps = append(deps, dep{si, wk, sh.gens[wk]})
			}
		}
	}
	return deps
}

// bucketDepsLocked stamps one resolved bucket across the shards that hold
// it. Callers hold all shard read locks.
func (s *Store) bucketDepsLocked(key winKey) []dep {
	var deps []dep
	for si, sh := range s.shards {
		m := sh.fine
		if key.coarse {
			m = sh.coarse
		}
		if m[key.start] != nil {
			deps = append(deps, dep{si, key, sh.gens[key]})
		}
	}
	return deps
}

// Hotspot is one top-N query row: a calling context ranked by the magnitude
// of its exclusive metric.
type Hotspot struct {
	Rank  int      `json:"rank"`
	Label string   `json:"label"`
	Kind  string   `json:"kind"`
	Path  []string `json:"path"`
	Excl  float64  `json:"excl"`
	Incl  float64  `json:"incl"`
	// Frac is Excl relative to the root's inclusive total.
	Frac float64 `json:"frac"`
}

// Hotspots returns the top calling contexts by exclusive metric over the
// aggregate of [from, to) under filter. With the query cache enabled the
// returned rows may be shared and must be treated as read-only.
func (s *Store) Hotspots(ctx context.Context, from, to time.Time, filter Labels, metric string, top int) ([]Hotspot, AggregateInfo, error) {
	if metric == "" {
		metric = cct.MetricGPUTime
	}
	type hotResult struct {
		rows []Hotspot
		info AggregateInfo
	}
	var qkey string
	var deps []dep
	s.rlockAll()
	if s.cache != nil {
		qkey = fmt.Sprintf("hot|%d|%d|%s|%s|%d", from.UnixNano(), to.UnixNano(), filter.Key(), metric, top)
		deps = s.rangeDepsLocked(from, to)
		if v, ok := s.cache.serve(qkey, "", deps); ok {
			s.runlockAll()
			r := v.(*hotResult)
			return r.rows, r.info, nil
		}
	}
	tree, info, err := s.aggregateAllLocked(ctx, from, to, filter)
	s.runlockAll()
	if err != nil {
		return nil, info, err
	}
	rows, err := rankHotspots(tree, metric, top)
	if err != nil {
		return nil, info, err
	}
	if s.cache != nil {
		s.cache.put(qkey, "", deps, &hotResult{rows, info})
	}
	return rows, info, nil
}

// rankHotspots flattens a (fresh, caller-owned) aggregate tree into rows
// ranked by exclusive-metric magnitude.
func rankHotspots(tree *cct.Tree, metric string, top int) ([]Hotspot, error) {
	id, ok := tree.Schema.Lookup(metric)
	if !ok {
		return nil, fmt.Errorf("metric %q not present (known: %s): %w",
			metric, strings.Join(tree.Schema.Names(), ", "), ErrUnknownMetric)
	}
	total := tree.Root.InclValue(id)
	var rows []Hotspot
	tree.Visit(func(n *cct.Node) {
		v := n.ExclValue(id)
		if v == 0 || n.Kind == cct.KindRoot {
			return
		}
		h := Hotspot{Label: n.Label(), Kind: n.Kind.String(), Excl: v, Incl: n.InclValue(id)}
		for _, f := range n.Path() {
			h.Path = append(h.Path, f.Label())
		}
		if total != 0 {
			h.Frac = v / total
		}
		rows = append(rows, h)
	})
	sort.SliceStable(rows, func(i, j int) bool {
		return math.Abs(rows[i].Excl) > math.Abs(rows[j].Excl)
	})
	if top > 0 && len(rows) > top {
		rows = rows[:top]
	}
	for i := range rows {
		rows[i].Rank = i + 1
	}
	return rows, nil
}

// DiffRow is one changed calling context of a window-vs-window comparison,
// with the per-side exclusive values for context (the shape of cmd/dcdiff's
// hotspot table).
type DiffRow struct {
	Rank   int     `json:"rank"`
	Label  string  `json:"label"`
	Kind   string  `json:"kind"`
	Delta  float64 `json:"delta"`
	Before float64 `json:"before"`
	After  float64 `json:"after"`
}

// DiffResult is a signed window-vs-window comparison: positive deltas mean
// the "after" window spent more (a regression when after is the newer one).
type DiffResult struct {
	Metric      string    `json:"metric"`
	BeforeTotal float64   `json:"before_total"`
	AfterTotal  float64   `json:"after_total"`
	Net         float64   `json:"net"`
	Rows        []DiffRow `json:"rows"`
	// Coverage is set only on degraded cluster results (see
	// internal/cluster); single-node diffs always leave it nil.
	Coverage *Coverage `json:"coverage,omitempty"`
	// Tree is the signed delta tree (after − before) for flame rendering;
	// omitted from JSON.
	Tree *cct.Tree `json:"-"`
}

// Diff compares the window containing the instant "after" against the one
// containing "before" under filter, ranking changed contexts by magnitude.
// Stored trees were normalized at ingest, so the result matches cmd/dcdiff
// over the same profiles (up to child order). With the query cache enabled
// the result may be shared and must be treated as read-only.
func (s *Store) Diff(ctx context.Context, before, after time.Time, filter Labels, metric string, top int) (*DiffResult, error) {
	if metric == "" {
		metric = cct.MetricGPUTime
	}
	// Resolve windows and aggregate under one all-shard read lock: a
	// compaction pass between the two steps could fold a just-resolved
	// fine window into a coarse bucket, making retained data look absent.
	s.rlockAll()
	bWins, bKey, err := s.resolveBucketLocked(before)
	if err != nil {
		s.runlockAll()
		return nil, fmt.Errorf("profstore: before: %w", err)
	}
	aWins, aKey, err := s.resolveBucketLocked(after)
	if err != nil {
		s.runlockAll()
		return nil, fmt.Errorf("profstore: after: %w", err)
	}
	var qkey, shape string
	var deps []dep
	if s.cache != nil {
		qkey = fmt.Sprintf("diff|%d|%d|%s|%s|%d", before.UnixNano(), after.UnixNano(), filter.Key(), metric, top)
		// The shape pins which buckets the instants resolved to: a fine
		// window appearing over a previously-coarse instant changes the
		// result even if the cached buckets themselves never mutated.
		shape = fmt.Sprintf("%d.%v|%d.%v", bKey.start, bKey.coarse, aKey.start, aKey.coarse)
		deps = append(s.bucketDepsLocked(bKey), s.bucketDepsLocked(aKey)...)
		if v, ok := s.cache.serve(qkey, shape, deps); ok {
			s.runlockAll()
			return v.(*DiffResult), nil
		}
	}
	// Cancellation is honored between the two bucket folds — each one is a
	// single bucket's worth of work, the same granularity the range queries
	// check at.
	if err := ctx.Err(); err != nil {
		s.runlockAll()
		return nil, fmt.Errorf("profstore: diff canceled: %w", err)
	}
	beforeTree, bErr := s.aggregateBucketLocked(bWins, filter)
	afterTree, aErr := s.aggregateBucketLocked(aWins, filter)
	s.runlockAll()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("profstore: diff canceled: %w", err)
	}
	if bErr != nil {
		return nil, fmt.Errorf("profstore: before: %w", bErr)
	}
	if aErr != nil {
		return nil, fmt.Errorf("profstore: after: %w", aErr)
	}
	res, err := buildDiffResult(beforeTree, afterTree, metric, top)
	if err != nil {
		return nil, err
	}
	if s.cache != nil {
		s.cache.put(qkey, shape, deps, res)
	}
	return res, nil
}

// buildDiffResult assembles the signed comparison of two (fresh,
// caller-owned) single-bucket aggregates: the delta tree, per-side totals,
// and changed contexts ranked by |delta|.
func buildDiffResult(beforeTree, afterTree *cct.Tree, metric string, top int) (*DiffResult, error) {
	diff := cct.Diff(afterTree, beforeTree)
	id, ok := diff.Schema.Lookup(metric)
	if !ok {
		return nil, fmt.Errorf("metric %q not present in either window (known: %s): %w",
			metric, strings.Join(diff.Schema.Names(), ", "), ErrUnknownMetric)
	}
	res := &DiffResult{Metric: metric, Tree: diff}
	if bid, ok := beforeTree.Schema.Lookup(metric); ok {
		res.BeforeTotal = beforeTree.Root.InclValue(bid)
	}
	if aid, ok := afterTree.Schema.Lookup(metric); ok {
		res.AfterTotal = afterTree.Root.InclValue(aid)
	}
	res.Net = res.AfterTotal - res.BeforeTotal

	beforeVals := exclByPath(beforeTree, metric)
	afterVals := exclByPath(afterTree, metric)
	diff.Visit(func(n *cct.Node) {
		d := n.ExclValue(id)
		if d == 0 || n.Kind == cct.KindRoot {
			return
		}
		key := pathKey(n)
		res.Rows = append(res.Rows, DiffRow{
			Label:  n.Label(),
			Kind:   n.Kind.String(),
			Delta:  d,
			Before: beforeVals[key],
			After:  afterVals[key],
		})
	})
	sort.SliceStable(res.Rows, func(i, j int) bool {
		return math.Abs(res.Rows[i].Delta) > math.Abs(res.Rows[j].Delta)
	})
	if top > 0 && len(res.Rows) > top {
		res.Rows = res.Rows[:top]
	}
	for i := range res.Rows {
		res.Rows[i].Rank = i + 1
	}
	return res, nil
}

// exclByPath flattens a tree into path-key → exclusive value for metric.
func exclByPath(t *cct.Tree, metric string) map[string]float64 {
	out := make(map[string]float64)
	id, ok := t.Schema.Lookup(metric)
	if !ok {
		return out
	}
	t.Visit(func(n *cct.Node) {
		if v := n.ExclValue(id); v != 0 {
			out[pathKey(n)] = v
		}
	})
	return out
}

func pathKey(n *cct.Node) string {
	var sb strings.Builder
	for _, f := range n.Path() {
		sb.WriteString(f.Key())
		sb.WriteByte(';')
	}
	return sb.String()
}

// CompactNow runs one compaction pass over every shard against the store's
// clock: fine windows older than Retention×Window fold into their coarse
// bucket (series-by-series, via the associative cct.Merge — metric sums
// are conserved), and coarse windows older than CoarseRetention×coarse
// width are dropped. It returns how many fine windows were folded and how
// many coarse windows were dropped across all shards.
func (s *Store) CompactNow() (folded, dropped int) {
	var t0 time.Time
	if s.met.timings {
		t0 = time.Now()
	}
	now := s.cfg.Now()
	for _, sh := range s.shards {
		f, d := sh.compact(now)
		folded += f
		dropped += d
	}
	if folded > 0 || dropped > 0 {
		s.met.compactions.Inc()
		s.met.windowsFolded.Add(int64(folded))
		s.met.windowsDropped.Add(int64(dropped))
		if s.met.timings {
			d := time.Since(t0)
			s.met.compactSeconds.Observe(d)
			s.met.journal.Record("compaction", fmt.Sprintf("folded %d fine windows, dropped %d coarse", folded, dropped),
				"folded", fmt.Sprint(folded), "dropped", fmt.Sprint(dropped), "duration", d.String())
		}
	}
	return folded, dropped
}

// StartCompactor runs CompactNow every interval (default: one fine window)
// until Close. Start background loops before any Close call; beyond that
// they may be started from any goroutine (a shared WaitGroup tracks them —
// PR 3 kept a single done channel here, which raced a concurrent Close).
func (s *Store) StartCompactor(interval time.Duration) {
	if interval <= 0 {
		interval = s.cfg.Window
	}
	s.startLoop(interval, func() { s.CompactNow() })
}

// StartSnapshotter snapshots every interval until Close. Errors are
// retained in Stats (LastSnapshotError); the next tick retries.
func (s *Store) StartSnapshotter(interval time.Duration) {
	if interval <= 0 || s.cfg.Dir == "" {
		return
	}
	s.startLoop(interval, func() { s.Snapshot() })
}

func (s *Store) startLoop(interval time.Duration, tick func()) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				tick()
			case <-s.stop:
				return
			}
		}
	}()
}

// Close stops the background loops and syncs every shard's WAL shut.
// Idempotent.
func (s *Store) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	for _, sh := range s.shards {
		sh.closeWAL()
	}
}

// Snapshot writes an atomic compacted image of every shard's retained
// windows under Config.Dir and prunes WAL segments the images fully cover.
// Each shard's capture runs under its read lock (blocking that shard's
// ingest, so window state and WAL watermarks form one consistent cut);
// encoding and disk I/O happen per shard after release. Concurrent
// Snapshot calls serialize on snapMu.
func (s *Store) Snapshot() (persist.Info, error) {
	var total persist.Info
	if s.cfg.Dir == "" {
		return total, fmt.Errorf("profstore: snapshot: no Config.Dir")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	var t0 time.Time
	if s.met.timings {
		t0 = time.Now()
	}
	now := s.cfg.Now()
	// The store-wide compaction count rides in shard 0's image, so the
	// directory-wide sum recovers exactly.
	comp := s.met.compactions.Value()
	for i, sh := range s.shards {
		c := int64(0)
		if i == 0 {
			c = comp
		}
		info, err := sh.snapshot(now, c)
		total.Files += info.Files
		total.Bytes += info.Bytes
		if err != nil {
			return total, s.noteSnapshotErr(fmt.Errorf("shard %d: %w", i, err))
		}
	}
	total.Dir = s.cfg.Dir
	s.met.snapshots.Inc()
	s.lastSnapshot.Store(now.UnixNano())
	s.lastSnapBytes.Store(total.Bytes)
	s.lastSnapErr.Store("")
	if s.met.timings {
		d := time.Since(t0)
		s.met.snapshotSeconds.Observe(d)
		s.met.journal.Record("snapshot", fmt.Sprintf("committed %d files, %d bytes", total.Files, total.Bytes),
			"files", fmt.Sprint(total.Files), "bytes", fmt.Sprint(total.Bytes), "duration", d.String())
	}
	return total, nil
}

func (s *Store) noteSnapshotErr(err error) error {
	err = fmt.Errorf("profstore: snapshot: %w", err)
	s.met.snapshotErrors.Inc()
	s.lastSnapErr.Store(err.Error())
	if s.met.timings {
		s.met.journal.Record("snapshot_error", err.Error())
	}
	return err
}

// Stats is a point-in-time snapshot of store occupancy and activity.
type Stats struct {
	Ingested      int64     `json:"ingested"`
	Compactions   int64     `json:"compactions"`
	Shards        int       `json:"shards"`
	FineWindows   int       `json:"fine_windows"`
	CoarseWindows int       `json:"coarse_windows"`
	Series        int       `json:"series"`
	Nodes         int       `json:"nodes"`
	LastIngest    time.Time `json:"last_ingest,omitempty"`
	// Cache is present only when Config.CacheSize > 0.
	Cache *CacheStats `json:"cache,omitempty"`
	// Persist is present only when Config.Dir is set.
	Persist *PersistStats `json:"persist,omitempty"`
	// Trend is present unless Config.Trend.Disabled.
	Trend *TrendStats `json:"trend,omitempty"`
	// Index is present unless Config.IndexDisabled.
	Index *IndexStats `json:"index,omitempty"`
}

// PersistStats counts durability work since boot, summed across shards.
type PersistStats struct {
	Dir               string         `json:"dir"`
	WALAppends        int64          `json:"wal_appends"`
	WALBytes          int64          `json:"wal_bytes"`
	Snapshots         int64          `json:"snapshots"`
	LastSnapshot      time.Time      `json:"last_snapshot,omitempty"`
	LastSnapshotBytes int64          `json:"last_snapshot_bytes,omitempty"`
	LastSnapshotError string         `json:"last_snapshot_error,omitempty"`
	PrunedWALSegments int64          `json:"pruned_wal_segments"`
	Recovery          *RecoveryStats `json:"recovery,omitempty"`
}

// Stats snapshots the store under all shard read locks, so the
// occupancy values form one consistent cut. The activity counters
// (compactions, WAL work, cache effectiveness) are read from the same
// telemetry counters /metrics exports — one source of truth, so the two
// surfaces agree by construction.
func (s *Store) Stats() Stats {
	s.rlockAll()
	defer s.runlockAll()
	st := Stats{
		Compactions: s.met.compactions.Value(),
		Shards:      len(s.shards),
		Cache:       s.cache.stats(),
	}
	fineStarts := make(map[int64]bool)
	coarseStarts := make(map[int64]bool)
	for _, sh := range s.shards {
		st.Ingested += sh.ingested
		if sh.lastIngest.After(st.LastIngest) {
			st.LastIngest = sh.lastIngest
		}
		for k, w := range sh.fine {
			fineStarts[k] = true
			st.Series += len(w.series)
			st.Nodes += w.nodes()
		}
		for k, w := range sh.coarse {
			coarseStarts[k] = true
			st.Series += len(w.series)
			st.Nodes += w.nodes()
		}
		if sh.tracker != nil {
			ts := sh.tracker.Stats()
			if st.Trend == nil {
				st.Trend = &TrendStats{}
			}
			st.Trend.Series += ts.Series
			st.Trend.Frames += ts.Frames
			st.Trend.Findings += ts.Findings
			st.Trend.Suppressed += ts.Suppressed
			st.Trend.Late += ts.Late
		}
		if sh.idx != nil {
			if st.Index == nil {
				st.Index = &IndexStats{Rebuilds: s.met.indexRebuilds.Value()}
			}
			st.Index.Frames += int64(sh.idx.in.Len())
			st.Index.Postings += sh.idx.postings
		}
	}
	st.FineWindows = len(fineStarts)
	st.CoarseWindows = len(coarseStarts)
	if s.cfg.Dir != "" {
		ps := &PersistStats{
			Dir:               s.cfg.Dir,
			WALAppends:        s.met.walAppends.Value(),
			WALBytes:          s.met.walBytes.Value(),
			Snapshots:         s.met.snapshots.Value(),
			LastSnapshotBytes: s.lastSnapBytes.Load(),
			PrunedWALSegments: s.met.walPruned.Value(),
			Recovery:          s.recovery.Load(),
		}
		if ns := s.lastSnapshot.Load(); ns != 0 {
			ps.LastSnapshot = time.Unix(0, ns)
		}
		if e, ok := s.lastSnapErr.Load().(string); ok {
			ps.LastSnapshotError = e
		}
		st.Persist = ps
	}
	return st
}
