// Package profstore is the continuous-profiling backend: it accepts
// profiles from many concurrent clients and aggregates them into
// time-bucketed rolling windows, one merged calling context tree per
// (workload, vendor, framework) label set per window. Profiles are
// normalized at ingest (cct.NormalizeAddresses) so runs from different
// processes and machines unify, the same fleet-aggregation model as
// datacenter-wide profilers: the store's size is proportional to distinct
// calling contexts per window, not to the number of profiles received.
//
// Retention is two-tiered. Fine windows (Config.Window wide) hold recent
// data at full label granularity; a compaction pass — callable directly or
// run by a background goroutine — folds fine windows older than the
// retention horizon into coarser windows (CoarseFactor × Window wide) via
// the associative cct.Merge, and eventually drops coarse windows past their
// own retention. Metric sums are conserved by compaction; only time
// resolution is lost.
//
// Queries (top-N hotspots, window-vs-window signed diffs, merged aggregates
// for flame graphs and the analyzer) run under a read lock and never mutate
// stored trees.
package profstore

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"deepcontext/internal/cct"
	"deepcontext/internal/profiler"
)

// Typed query failures, for errors.Is dispatch at API boundaries (a server
// maps ErrNoData to 404 and ErrUnknownMetric to 400).
var (
	// ErrNoData reports a query that matched no retained window or series.
	ErrNoData = errors.New("profstore: no matching data")
	// ErrUnknownMetric reports a metric name absent from the matched data.
	ErrUnknownMetric = errors.New("profstore: unknown metric")
)

// Labels identify one profile series. As a query filter, empty fields match
// anything (matching is case-insensitive, mirroring the facade's vendor and
// framework parsing).
type Labels struct {
	Workload  string `json:"workload,omitempty"`
	Vendor    string `json:"vendor,omitempty"`
	Framework string `json:"framework,omitempty"`
}

// LabelsOf extracts the series labels from profile metadata.
func LabelsOf(m profiler.Meta) Labels {
	return Labels{Workload: m.Workload, Vendor: m.Vendor, Framework: m.Framework}
}

// Key renders the canonical series key "workload/vendor/framework".
func (l Labels) Key() string {
	return strings.ToLower(l.Workload + "/" + l.Vendor + "/" + l.Framework)
}

// Matches reports whether l satisfies the filter f (empty filter fields are
// wildcards).
func (l Labels) Matches(f Labels) bool {
	return matchField(l.Workload, f.Workload) &&
		matchField(l.Vendor, f.Vendor) &&
		matchField(l.Framework, f.Framework)
}

func matchField(have, want string) bool {
	return want == "" || strings.EqualFold(have, want)
}

// Config tunes windowing, retention and the clock.
type Config struct {
	// Window is the fine bucket width (default one minute).
	Window time.Duration
	// Retention is how many fine windows are kept before compaction folds
	// them into coarse windows (default 60).
	Retention int
	// CoarseFactor is the coarse bucket width in fine windows (default 10).
	CoarseFactor int
	// CoarseRetention is how many coarse windows are kept (default 144).
	CoarseRetention int
	// Now supplies the ingest clock; tests and the load generator inject a
	// virtual clock here. Defaults to time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.Retention <= 0 {
		c.Retention = 60
	}
	if c.CoarseFactor <= 1 {
		c.CoarseFactor = 10
	}
	if c.CoarseRetention <= 0 {
		c.CoarseRetention = 144
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

func (c Config) coarse() time.Duration { return time.Duration(c.CoarseFactor) * c.Window }

// series is one label set's rolling aggregate within a window.
type series struct {
	labels   Labels
	tree     *cct.Tree
	profiles int
}

// window is one time bucket holding per-label merged trees.
type window struct {
	start  time.Time
	dur    time.Duration
	series map[string]*series
}

func (w *window) profiles() int {
	n := 0
	for _, s := range w.series {
		n += s.profiles
	}
	return n
}

func (w *window) nodes() int {
	n := 0
	for _, s := range w.series {
		n += s.tree.NodeCount()
	}
	return n
}

// Store is a concurrency-safe rolling profile aggregator.
type Store struct {
	cfg Config

	mu     sync.RWMutex
	fine   map[int64]*window // unix-nano window start → bucket
	coarse map[int64]*window

	ingested    int64
	compactions int64
	lastIngest  time.Time

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New returns an empty store. Call Close when done if StartCompactor was
// used.
func New(cfg Config) *Store {
	return &Store{
		cfg:    cfg.withDefaults(),
		fine:   make(map[int64]*window),
		coarse: make(map[int64]*window),
		stop:   make(chan struct{}),
	}
}

// Config returns the store's effective (defaulted) configuration.
func (s *Store) Config() Config { return s.cfg }

// Ingest folds p into the current fine window's series for p's labels and
// returns that window's start. The profile's address-unified frames are
// normalized to cross-run stable identities before merging; p itself is not
// modified and may be discarded by the caller.
func (s *Store) Ingest(p *profiler.Profile) (time.Time, error) {
	if p == nil || p.Tree == nil {
		return time.Time{}, fmt.Errorf("profstore: nil profile")
	}
	labels := LabelsOf(p.Meta)
	// Normalization walks and rebuilds the whole tree — do it outside the
	// lock so concurrent ingests only serialize on the (cheaper) merge.
	normalized := cct.NormalizeAddresses(p.Tree)

	s.mu.Lock()
	defer s.mu.Unlock()
	start := s.cfg.Now().Truncate(s.cfg.Window)
	w := s.fine[start.UnixNano()]
	if w == nil {
		w = &window{start: start, dur: s.cfg.Window, series: make(map[string]*series)}
		s.fine[start.UnixNano()] = w
	}
	key := labels.Key()
	ser := w.series[key]
	if ser == nil {
		ser = &series{labels: labels, tree: cct.New()}
		w.series[key] = ser
	}
	cct.Merge(ser.tree, normalized)
	ser.profiles++
	s.ingested++
	s.lastIngest = s.cfg.Now()
	return start, nil
}

// WindowInfo describes one retained bucket.
type WindowInfo struct {
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Coarse   bool          `json:"coarse,omitempty"`
	Series   int           `json:"series"`
	Profiles int           `json:"profiles"`
	Nodes    int           `json:"nodes"`
}

// Windows lists retained buckets, oldest first (fine and coarse
// interleaved by start time).
func (s *Store) Windows() []WindowInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]WindowInfo, 0, len(s.fine)+len(s.coarse))
	for _, w := range s.fine {
		out = append(out, WindowInfo{Start: w.start, Duration: w.dur,
			Series: len(w.series), Profiles: w.profiles(), Nodes: w.nodes()})
	}
	for _, w := range s.coarse {
		out = append(out, WindowInfo{Start: w.start, Duration: w.dur, Coarse: true,
			Series: len(w.series), Profiles: w.profiles(), Nodes: w.nodes()})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return !out[i].Coarse && out[j].Coarse
	})
	return out
}

// AggregateInfo summarizes what an aggregate query matched.
type AggregateInfo struct {
	Windows  int      `json:"windows"`
	Profiles int      `json:"profiles"`
	Series   []string `json:"series"`
}

// Aggregate merges every series matching filter in buckets whose start lies
// in [from, to) into one fresh tree. Zero bounds are open (from the oldest
// bucket / through the newest). The stored trees are not modified; the
// result is owned by the caller.
func (s *Store) Aggregate(from, to time.Time, filter Labels) (*cct.Tree, AggregateInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.aggregateLocked(from, to, filter)
}

func (s *Store) aggregateLocked(from, to time.Time, filter Labels) (*cct.Tree, AggregateInfo, error) {
	out := cct.New()
	info := AggregateInfo{}
	seen := make(map[string]bool)
	fold := func(w *window) {
		if !from.IsZero() && w.start.Before(from) {
			return
		}
		if !to.IsZero() && !w.start.Before(to) {
			return
		}
		matched := false
		for _, ser := range w.series {
			if !ser.labels.Matches(filter) {
				continue
			}
			cct.Merge(out, ser.tree)
			info.Profiles += ser.profiles
			matched = true
			if k := ser.labels.Key(); !seen[k] {
				seen[k] = true
				info.Series = append(info.Series, k)
			}
		}
		if matched {
			info.Windows++
		}
	}
	for _, w := range s.fine {
		fold(w)
	}
	for _, w := range s.coarse {
		fold(w)
	}
	if info.Windows == 0 {
		return nil, info, fmt.Errorf("no data for filter %s in [%v, %v): %w", filter.Key(), from, to, ErrNoData)
	}
	sort.Strings(info.Series)
	return out, info, nil
}

// resolveWindowLocked returns the single bucket containing instant t,
// preferring fine windows (full resolution) over coarse ones. Callers hold
// s.mu.
func (s *Store) resolveWindowLocked(t time.Time) (*window, error) {
	if w := s.fine[t.Truncate(s.cfg.Window).UnixNano()]; w != nil {
		return w, nil
	}
	if w := s.coarse[t.Truncate(s.cfg.coarse()).UnixNano()]; w != nil {
		return w, nil
	}
	return nil, fmt.Errorf("no window contains %v: %w", t, ErrNoData)
}

// aggregateWindowLocked merges w's series matching filter into a fresh
// tree. Unlike a time-range aggregate this reads exactly one bucket — a
// coarse fallback must not sweep in fine windows sharing its range.
func (s *Store) aggregateWindowLocked(w *window, filter Labels) (*cct.Tree, error) {
	out := cct.New()
	matched := false
	for _, ser := range w.series {
		if ser.labels.Matches(filter) {
			cct.Merge(out, ser.tree)
			matched = true
		}
	}
	if !matched {
		return nil, fmt.Errorf("no series match %s in window %v: %w", filter.Key(), w.start, ErrNoData)
	}
	return out, nil
}

// Hotspot is one top-N query row: a calling context ranked by the magnitude
// of its exclusive metric.
type Hotspot struct {
	Rank  int      `json:"rank"`
	Label string   `json:"label"`
	Kind  string   `json:"kind"`
	Path  []string `json:"path"`
	Excl  float64  `json:"excl"`
	Incl  float64  `json:"incl"`
	// Frac is Excl relative to the root's inclusive total.
	Frac float64 `json:"frac"`
}

// Hotspots returns the top calling contexts by exclusive metric over the
// aggregate of [from, to) under filter.
func (s *Store) Hotspots(from, to time.Time, filter Labels, metric string, top int) ([]Hotspot, AggregateInfo, error) {
	if metric == "" {
		metric = cct.MetricGPUTime
	}
	tree, info, err := s.Aggregate(from, to, filter)
	if err != nil {
		return nil, info, err
	}
	id, ok := tree.Schema.Lookup(metric)
	if !ok {
		return nil, info, fmt.Errorf("metric %q not present (known: %s): %w",
			metric, strings.Join(tree.Schema.Names(), ", "), ErrUnknownMetric)
	}
	total := tree.Root.InclValue(id)
	var rows []Hotspot
	tree.Visit(func(n *cct.Node) {
		v := n.ExclValue(id)
		if v == 0 || n.Kind == cct.KindRoot {
			return
		}
		h := Hotspot{Label: n.Label(), Kind: n.Kind.String(), Excl: v, Incl: n.InclValue(id)}
		for _, f := range n.Path() {
			h.Path = append(h.Path, f.Label())
		}
		if total != 0 {
			h.Frac = v / total
		}
		rows = append(rows, h)
	})
	sort.SliceStable(rows, func(i, j int) bool {
		return math.Abs(rows[i].Excl) > math.Abs(rows[j].Excl)
	})
	if top > 0 && len(rows) > top {
		rows = rows[:top]
	}
	for i := range rows {
		rows[i].Rank = i + 1
	}
	return rows, info, nil
}

// DiffRow is one changed calling context of a window-vs-window comparison,
// with the per-side exclusive values for context (the shape of cmd/dcdiff's
// hotspot table).
type DiffRow struct {
	Rank   int     `json:"rank"`
	Label  string  `json:"label"`
	Kind   string  `json:"kind"`
	Delta  float64 `json:"delta"`
	Before float64 `json:"before"`
	After  float64 `json:"after"`
}

// DiffResult is a signed window-vs-window comparison: positive deltas mean
// the "after" window spent more (a regression when after is the newer one).
type DiffResult struct {
	Metric      string    `json:"metric"`
	BeforeTotal float64   `json:"before_total"`
	AfterTotal  float64   `json:"after_total"`
	Net         float64   `json:"net"`
	Rows        []DiffRow `json:"rows"`
	// Tree is the signed delta tree (after − before) for flame rendering;
	// omitted from JSON.
	Tree *cct.Tree `json:"-"`
}

// Diff compares the window containing the instant "after" against the one
// containing "before" under filter, ranking changed contexts by magnitude.
// Stored trees were normalized at ingest, so the result matches cmd/dcdiff
// over the same profiles (up to child order).
func (s *Store) Diff(before, after time.Time, filter Labels, metric string, top int) (*DiffResult, error) {
	if metric == "" {
		metric = cct.MetricGPUTime
	}
	// Resolve windows and aggregate under one read lock: a compaction pass
	// between the two steps could fold a just-resolved fine window into a
	// coarse bucket, making retained data look absent.
	s.mu.RLock()
	bWin, err := s.resolveWindowLocked(before)
	if err != nil {
		s.mu.RUnlock()
		return nil, fmt.Errorf("profstore: before: %w", err)
	}
	aWin, err := s.resolveWindowLocked(after)
	if err != nil {
		s.mu.RUnlock()
		return nil, fmt.Errorf("profstore: after: %w", err)
	}
	beforeTree, bErr := s.aggregateWindowLocked(bWin, filter)
	afterTree, aErr := s.aggregateWindowLocked(aWin, filter)
	s.mu.RUnlock()
	if bErr != nil {
		return nil, fmt.Errorf("profstore: before: %w", bErr)
	}
	if aErr != nil {
		return nil, fmt.Errorf("profstore: after: %w", aErr)
	}

	diff := cct.Diff(afterTree, beforeTree)
	id, ok := diff.Schema.Lookup(metric)
	if !ok {
		return nil, fmt.Errorf("metric %q not present in either window (known: %s): %w",
			metric, strings.Join(diff.Schema.Names(), ", "), ErrUnknownMetric)
	}
	res := &DiffResult{Metric: metric, Tree: diff}
	if bid, ok := beforeTree.Schema.Lookup(metric); ok {
		res.BeforeTotal = beforeTree.Root.InclValue(bid)
	}
	if aid, ok := afterTree.Schema.Lookup(metric); ok {
		res.AfterTotal = afterTree.Root.InclValue(aid)
	}
	res.Net = res.AfterTotal - res.BeforeTotal

	beforeVals := exclByPath(beforeTree, metric)
	afterVals := exclByPath(afterTree, metric)
	diff.Visit(func(n *cct.Node) {
		d := n.ExclValue(id)
		if d == 0 || n.Kind == cct.KindRoot {
			return
		}
		key := pathKey(n)
		res.Rows = append(res.Rows, DiffRow{
			Label:  n.Label(),
			Kind:   n.Kind.String(),
			Delta:  d,
			Before: beforeVals[key],
			After:  afterVals[key],
		})
	})
	sort.SliceStable(res.Rows, func(i, j int) bool {
		return math.Abs(res.Rows[i].Delta) > math.Abs(res.Rows[j].Delta)
	})
	if top > 0 && len(res.Rows) > top {
		res.Rows = res.Rows[:top]
	}
	for i := range res.Rows {
		res.Rows[i].Rank = i + 1
	}
	return res, nil
}

// exclByPath flattens a tree into path-key → exclusive value for metric.
func exclByPath(t *cct.Tree, metric string) map[string]float64 {
	out := make(map[string]float64)
	id, ok := t.Schema.Lookup(metric)
	if !ok {
		return out
	}
	t.Visit(func(n *cct.Node) {
		if v := n.ExclValue(id); v != 0 {
			out[pathKey(n)] = v
		}
	})
	return out
}

func pathKey(n *cct.Node) string {
	var sb strings.Builder
	for _, f := range n.Path() {
		sb.WriteString(f.Key())
		sb.WriteByte(';')
	}
	return sb.String()
}

// CompactNow runs one compaction pass against the store's clock: fine
// windows older than Retention×Window fold into their coarse bucket
// (series-by-series, via the associative cct.Merge — metric sums are
// conserved), and coarse windows older than CoarseRetention×coarse width
// are dropped. It returns how many fine windows were folded and how many
// coarse windows were dropped.
func (s *Store) CompactNow() (folded, dropped int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Now()
	fineHorizon := now.Add(-time.Duration(s.cfg.Retention) * s.cfg.Window).Truncate(s.cfg.Window)
	for key, w := range s.fine {
		if !w.start.Before(fineHorizon) {
			continue
		}
		cStart := w.start.Truncate(s.cfg.coarse())
		cw := s.coarse[cStart.UnixNano()]
		if cw == nil {
			cw = &window{start: cStart, dur: s.cfg.coarse(), series: make(map[string]*series)}
			s.coarse[cStart.UnixNano()] = cw
		}
		for k, ser := range w.series {
			dst := cw.series[k]
			if dst == nil {
				dst = &series{labels: ser.labels, tree: cct.New()}
				cw.series[k] = dst
			}
			cct.Merge(dst.tree, ser.tree)
			dst.profiles += ser.profiles
		}
		delete(s.fine, key)
		folded++
	}
	coarseHorizon := now.Add(-time.Duration(s.cfg.CoarseRetention) * s.cfg.coarse()).Truncate(s.cfg.coarse())
	for key, w := range s.coarse {
		if w.start.Before(coarseHorizon) {
			delete(s.coarse, key)
			dropped++
		}
	}
	if folded > 0 || dropped > 0 {
		s.compactions++
	}
	return folded, dropped
}

// StartCompactor runs CompactNow every interval (default: one fine window)
// until Close. Safe to call at most once.
func (s *Store) StartCompactor(interval time.Duration) {
	if interval <= 0 {
		interval = s.cfg.Window
	}
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.CompactNow()
			case <-s.stop:
				return
			}
		}
	}()
}

// Close stops the background compactor, if any.
func (s *Store) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	if s.done != nil {
		<-s.done
	}
}

// Stats is a point-in-time snapshot of store occupancy and activity.
type Stats struct {
	Ingested      int64     `json:"ingested"`
	Compactions   int64     `json:"compactions"`
	FineWindows   int       `json:"fine_windows"`
	CoarseWindows int       `json:"coarse_windows"`
	Series        int       `json:"series"`
	Nodes         int       `json:"nodes"`
	LastIngest    time.Time `json:"last_ingest,omitempty"`
}

// Stats snapshots the store.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Ingested:      s.ingested,
		Compactions:   s.compactions,
		FineWindows:   len(s.fine),
		CoarseWindows: len(s.coarse),
		LastIngest:    s.lastIngest,
	}
	for _, w := range s.fine {
		st.Series += len(w.series)
		st.Nodes += w.nodes()
	}
	for _, w := range s.coarse {
		st.Series += len(w.series)
		st.Nodes += w.nodes()
	}
	return st
}
