package profstore

// Fleet-wide queries over the close-time aggregates: TopK ranks frame
// labels by exclusive metric across every matching series without folding
// a single tree, and Search finds the series that contain a given frame,
// pruned by the inverted index. Both fold in the store's canonical
// (tier, bucket start, series key) order and go through the same
// generation-stamped cache as Hotspots, so results are byte-identical for
// every shard count, cache setting and restart history — pinned by the
// golden and property tests against the naive uncached reference.

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"time"

	"deepcontext/internal/cct"
)

// TopKRow is one fleet-wide ranking row: a frame label's exclusive metric
// summed across every matched series and bucket.
type TopKRow struct {
	Rank  int     `json:"rank"`
	Label string  `json:"label"`
	Kind  string  `json:"kind"`
	Excl  float64 `json:"excl"`
	// Frac is Excl relative to the sum over all labels.
	Frac float64 `json:"frac"`
	// Series counts distinct series contributing a nonzero value.
	Series int `json:"series"`
}

// SearchRow is one series that contains the searched frame, with the
// frame's exclusive metric summed over the matched buckets.
type SearchRow struct {
	Rank      int     `json:"rank"`
	Series    string  `json:"series"`
	Workload  string  `json:"workload"`
	Vendor    string  `json:"vendor"`
	Framework string  `json:"framework"`
	Excl      float64 `json:"excl"`
	// Windows counts the buckets in range where the series' frame carried
	// a nonzero value.
	Windows int `json:"windows"`
}

// topkAcc accumulates per-label exclusive sums in canonical fold order.
// The store and the reference implementation share it, so both perform
// bit-identical float operations; they differ only in where the
// per-series aggregates come from (cached at window close vs recomputed).
type topkAcc struct {
	metric string
	known  map[string]bool
	order  []string
	accs   map[string]*topkLabelAcc
	// ids assigns each series key a dense id on first contribution, so
	// per-label distinct-series tracking is one bitmap write instead of a
	// string-map insert per (label, series) pair — the dominant cost of a
	// 10k-series fold.
	ids map[string]int
}

type topkLabelAcc struct {
	kind string
	excl float64
	seen bitset
}

// bitset is a grow-on-write bitmap over the accumulator's dense series
// ids.
type bitset []uint64

func (b *bitset) set(i int) {
	w := i >> 6
	for len(*b) <= w {
		*b = append(*b, 0)
	}
	(*b)[w] |= 1 << (uint(i) & 63)
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

func newTopKAcc(metric string) *topkAcc {
	return &topkAcc{metric: metric, known: make(map[string]bool), accs: make(map[string]*topkLabelAcc), ids: make(map[string]int)}
}

// addSeries folds one (bucket, series) aggregate. Labels accumulate in
// the agg's ascending label order.
func (t *topkAcc) addSeries(key string, agg *seriesAgg) {
	for _, m := range agg.metrics {
		t.known[m] = true
	}
	mi := agg.metricIndex(t.metric)
	if mi < 0 {
		return
	}
	id, ok := t.ids[key]
	if !ok {
		id = len(t.ids)
		t.ids[key] = id
	}
	for li, label := range agg.labels {
		v := agg.sums[li][mi]
		if v == 0 {
			continue
		}
		a := t.accs[label]
		if a == nil {
			a = &topkLabelAcc{kind: agg.kinds[li]}
			t.accs[label] = a
			t.order = append(t.order, label)
		}
		a.excl += v
		a.seen.set(id)
	}
}

// finish ranks the accumulated labels: stable sort by |excl| descending
// over the ascending-label pre-order, top k kept (0 = all).
func (t *topkAcc) finish(k int) ([]TopKRow, error) {
	if !t.known[t.metric] {
		names := make([]string, 0, len(t.known))
		for m := range t.known {
			names = append(names, m)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("metric %q not present (known: %s): %w",
			t.metric, strings.Join(names, ", "), ErrUnknownMetric)
	}
	sort.Strings(t.order)
	total := 0.0
	for _, label := range t.order {
		total += t.accs[label].excl
	}
	rows := make([]TopKRow, 0, len(t.order))
	for _, label := range t.order {
		a := t.accs[label]
		if a.excl == 0 {
			continue
		}
		r := TopKRow{Label: label, Kind: a.kind, Excl: a.excl, Series: a.seen.count()}
		if total != 0 {
			r.Frac = a.excl / total
		}
		rows = append(rows, r)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return math.Abs(rows[i].Excl) > math.Abs(rows[j].Excl)
	})
	if k > 0 && len(rows) > k {
		rows = rows[:k]
	}
	for i := range rows {
		rows[i].Rank = i + 1
	}
	return rows, nil
}

// searchAcc accumulates one frame label's per-series sums in canonical
// fold order; shared with the reference implementation like topkAcc.
type searchAcc struct {
	frame  string
	metric string
	known  map[string]bool
	accs   map[string]*searchSeriesAcc
}

type searchSeriesAcc struct {
	labels  Labels
	excl    float64
	windows int
}

func newSearchAcc(frame, metric string) *searchAcc {
	return &searchAcc{frame: frame, metric: metric, known: make(map[string]bool), accs: make(map[string]*searchSeriesAcc)}
}

// addSeries folds one (bucket, series) aggregate: a nonzero exclusive
// value for the searched frame adds to the series' total and window count.
func (s *searchAcc) addSeries(key string, labels Labels, agg *seriesAgg) {
	for _, m := range agg.metrics {
		s.known[m] = true
	}
	li := agg.labelIndex(s.frame)
	if li < 0 {
		return
	}
	mi := agg.metricIndex(s.metric)
	if mi < 0 {
		return
	}
	v := agg.sums[li][mi]
	if v == 0 {
		return
	}
	a := s.accs[key]
	if a == nil {
		a = &searchSeriesAcc{labels: labels}
		s.accs[key] = a
	}
	a.excl += v
	a.windows++
}

// finish ranks the matched series: stable sort by |excl| descending over
// ascending series-key pre-order, top limit kept (0 = all).
func (s *searchAcc) finish(limit int) ([]SearchRow, error) {
	if !s.known[s.metric] {
		names := make([]string, 0, len(s.known))
		for m := range s.known {
			names = append(names, m)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("metric %q not present (known: %s): %w",
			s.metric, strings.Join(names, ", "), ErrUnknownMetric)
	}
	keys := make([]string, 0, len(s.accs))
	for k := range s.accs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rows := make([]SearchRow, 0, len(keys))
	for _, k := range keys {
		a := s.accs[k]
		rows = append(rows, SearchRow{
			Series: k, Workload: a.labels.Workload, Vendor: a.labels.Vendor,
			Framework: a.labels.Framework, Excl: a.excl, Windows: a.windows,
		})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return math.Abs(rows[i].Excl) > math.Abs(rows[j].Excl)
	})
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	for i := range rows {
		rows[i].Rank = i + 1
	}
	return rows, nil
}

// TopK ranks frame labels by exclusive metric across every series
// matching filter in buckets whose start lies in [from, to), reading the
// close-time per-series aggregates instead of folding trees (a series
// whose current window has not closed yet is aggregated on the fly). With
// the query cache enabled the returned rows may be shared and must be
// treated as read-only.
func (s *Store) TopK(ctx context.Context, from, to time.Time, filter Labels, metric string, k int) ([]TopKRow, AggregateInfo, error) {
	if metric == "" {
		metric = cct.MetricGPUTime
	}
	type topkResult struct {
		rows []TopKRow
		info AggregateInfo
	}
	var qkey string
	var deps []dep
	s.rlockAll()
	if s.cache != nil {
		qkey = fmt.Sprintf("topk|%d|%d|%s|%q|%d", from.UnixNano(), to.UnixNano(), filter.Key(), metric, k)
		deps = s.rangeDepsLocked(from, to)
		if v, ok := s.cache.serve(qkey, "", deps); ok {
			s.runlockAll()
			r := v.(*topkResult)
			return r.rows, r.info, nil
		}
	}
	acc := newTopKAcc(metric)
	info, err := s.foldAggsLocked(ctx, from, to, filter, func(key string, _ Labels, ser *series) {
		agg := ser.agg
		if agg == nil {
			agg = computeSeriesAgg(ser.tree)
		}
		acc.addSeries(key, agg)
	})
	s.runlockAll()
	if err != nil {
		return nil, info, err
	}
	rows, err := acc.finish(k)
	if err != nil {
		return nil, info, err
	}
	if s.cache != nil {
		s.cache.put(qkey, "", deps, &topkResult{rows, info})
	}
	return rows, info, nil
}

// Search returns the series matching filter whose trees contain frame (a
// display label, e.g. a kernel name), ranked by the frame's exclusive
// metric over [from, to). Buckets indexed at window close are pruned
// through the inverted index — a series provably without the frame is
// skipped without touching its aggregate; open (still-ingesting) buckets
// are aggregated on the fly and always inspected. With the query cache
// enabled the returned rows may be shared and must be treated as
// read-only.
func (s *Store) Search(ctx context.Context, from, to time.Time, filter Labels, frame, metric string, limit int) ([]SearchRow, AggregateInfo, error) {
	if metric == "" {
		metric = cct.MetricGPUTime
	}
	type searchResult struct {
		rows []SearchRow
		info AggregateInfo
	}
	var qkey string
	var deps []dep
	s.rlockAll()
	if s.cache != nil {
		qkey = fmt.Sprintf("srch|%d|%d|%s|%q|%q|%d", from.UnixNano(), to.UnixNano(), filter.Key(), frame, metric, limit)
		deps = s.rangeDepsLocked(from, to)
		if v, ok := s.cache.serve(qkey, "", deps); ok {
			s.runlockAll()
			r := v.(*searchResult)
			return r.rows, r.info, nil
		}
	}
	acc := newSearchAcc(frame, metric)
	info, err := s.foldAggsLocked(ctx, from, to, filter, func(key string, labels Labels, ser *series) {
		if agg := ser.agg; agg != nil {
			// Indexed bucket: the metric-name union never needs the tree,
			// and the posting list can prove the frame absent.
			for _, m := range agg.metrics {
				acc.known[m] = true
			}
			if !s.shardFor(key).idx.seriesMayHave(frame, key) {
				return
			}
			acc.addSeries(key, labels, agg)
			return
		}
		acc.addSeries(key, labels, computeSeriesAgg(ser.tree))
	})
	s.runlockAll()
	if err != nil {
		return nil, info, err
	}
	rows, err := acc.finish(limit)
	if err != nil {
		return nil, info, err
	}
	if s.cache != nil {
		s.cache.put(qkey, "", deps, &searchResult{rows, info})
	}
	return rows, info, nil
}

// foldAggsLocked enumerates every series matching filter in buckets whose
// start lies in [from, to), in the store's canonical (tier, bucket start,
// series key) fold order, invoking visit for each. It returns the same
// AggregateInfo shape as Aggregate and ErrNoData when nothing matched.
// Callers hold all shard read locks.
func (s *Store) foldAggsLocked(ctx context.Context, from, to time.Time, filter Labels, visit func(key string, labels Labels, ser *series)) (AggregateInfo, error) {
	info := AggregateInfo{}
	seen := make(map[string]bool)
	foldTier := func(coarse bool) {
		buckets := s.bucketsLocked(coarse)
		for _, start := range sortedKeys(buckets) {
			// Same bucket-boundary cancellation as aggregateAllLocked.
			if ctx.Err() != nil {
				return
			}
			wins := buckets[start]
			st := wins[0].start
			if !from.IsZero() && st.Before(from) {
				continue
			}
			if !to.IsZero() && !st.Before(to) {
				continue
			}
			merged := mergeSeriesViews(wins)
			matched := false
			for _, k := range sortedKeys(merged) {
				ser := merged[k]
				if !ser.labels.Matches(filter) {
					continue
				}
				visit(k, ser.labels, ser)
				info.Profiles += ser.profiles
				matched = true
				if !seen[k] {
					seen[k] = true
					info.Series = append(info.Series, k)
				}
			}
			if matched {
				info.Windows++
			}
		}
	}
	foldTier(false)
	foldTier(true)
	if err := ctx.Err(); err != nil {
		return info, fmt.Errorf("profstore: fold canceled: %w", err)
	}
	if info.Windows == 0 {
		return info, fmt.Errorf("no data for filter %s in [%v, %v): %w", filter.Key(), from, to, ErrNoData)
	}
	sort.Strings(info.Series)
	return info, nil
}
