package profstore

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"deepcontext/internal/cct"
	"deepcontext/internal/profiler"
)

// populate fills a store with `windows` windows × `seriesN` series of
// synthetic profiles (distinct PCs folded by normalization), a
// representative dashboard-query working set.
func populate(b *testing.B, s *Store, clock *fakeClock, windows, seriesN, perSeries int) {
	b.Helper()
	for w := 0; w < windows; w++ {
		for si := 0; si < seriesN; si++ {
			for p := 0; p < perSeries; p++ {
				prof := synthProfile(fmt.Sprintf("W%d", si), "Nvidia", "pytorch",
					uint64(0x1000+w*4096+si*256+p*8), float64(p+1))
				if _, err := s.Ingest(prof); err != nil {
					b.Fatal(err)
				}
			}
		}
		clock.Advance(time.Minute)
	}
}

// benchmarkHotspots measures the repeated-query path — the exact shape a
// dashboard produces — with and without the generation-stamped cache.
func benchmarkHotspots(b *testing.B, cacheSize int) {
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Shards: 4, CacheSize: cacheSize, Now: clock.Now})
	defer s.Close()
	populate(b, s, clock, 30, 4, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Hotspots(time.Time{}, time.Time{}, Labels{}, cct.MetricGPUTime, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotspotsUncached(b *testing.B) { benchmarkHotspots(b, 0) }

func BenchmarkHotspotsCached(b *testing.B) { benchmarkHotspots(b, 128) }

// wideProfile builds a profile with `paths` distinct calling contexts, so
// the under-lock merge does representative work (the small synthProfile
// fixture makes ingest benchmarks measure profile construction instead).
func wideProfile(workload string, paths int) *profiler.Profile {
	tree := cct.New()
	gid := tree.MetricID(cct.MetricGPUTime)
	for i := 0; i < paths; i++ {
		n := tree.InsertPath([]cct.Frame{
			cct.PythonFrame("train.py", i%40+1, fmt.Sprintf("fn%d", i%40)),
			cct.OperatorFrame(fmt.Sprintf("aten::op%d", i%60)),
			{Kind: cct.KindKernel, Name: fmt.Sprintf("kern%d", i), Lib: "[gpu]", PC: uint64(0x1000 + i*16)},
		})
		tree.AddMetric(n, gid, float64(i+1))
	}
	return &profiler.Profile{
		Tree: tree,
		Meta: profiler.Meta{Workload: workload, Vendor: "Nvidia", Framework: "pytorch"},
	}
}

// BenchmarkConcurrentIngestShards measures ingest contention across
// disjoint series: every goroutine repeatedly folds its own pre-built
// wide profile into its own series, so shards>1 lets the under-lock
// merges run in parallel where the single-stripe store serialized them.
func benchmarkConcurrentIngest(b *testing.B, shards int) {
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Shards: shards, Now: clock.Now})
	defer s.Close()
	var id atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := id.Add(1)
		p := wideProfile(fmt.Sprintf("W%d", g), 400)
		for pb.Next() {
			if _, err := s.Ingest(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkConcurrentIngestShards1(b *testing.B) { benchmarkConcurrentIngest(b, 1) }

func BenchmarkConcurrentIngestShardsMax(b *testing.B) {
	benchmarkConcurrentIngest(b, runtime.GOMAXPROCS(0))
}
