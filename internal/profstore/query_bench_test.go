package profstore

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"deepcontext/internal/cct"
	"deepcontext/internal/profiler"
)

// populate fills a store with `windows` windows × `seriesN` series of
// synthetic profiles (distinct PCs folded by normalization), a
// representative dashboard-query working set.
func populate(b *testing.B, s *Store, clock *fakeClock, windows, seriesN, perSeries int) {
	b.Helper()
	for w := 0; w < windows; w++ {
		for si := 0; si < seriesN; si++ {
			for p := 0; p < perSeries; p++ {
				prof := synthProfile(fmt.Sprintf("W%d", si), "Nvidia", "pytorch",
					uint64(0x1000+w*4096+si*256+p*8), float64(p+1))
				if _, err := s.Ingest(prof); err != nil {
					b.Fatal(err)
				}
			}
		}
		clock.Advance(time.Minute)
	}
}

// benchmarkHotspots measures the repeated-query path — the exact shape a
// dashboard produces — with and without the generation-stamped cache.
func benchmarkHotspots(b *testing.B, cacheSize int) {
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Shards: 4, CacheSize: cacheSize, Now: clock.Now})
	defer s.Close()
	populate(b, s, clock, 30, 4, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Hotspots(context.Background(), time.Time{}, time.Time{}, Labels{}, cct.MetricGPUTime, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotspotsUncached(b *testing.B) { benchmarkHotspots(b, 0) }

func BenchmarkHotspotsCached(b *testing.B) { benchmarkHotspots(b, 128) }

// populateFleet fills a store with one closed window of seriesN distinct
// series — the fleet-query shape: many series, wide trees (32 calling
// contexts each, the representative profile width; the 6-frame
// synthProfile would make the per-series fold the index skips look
// artificially cheap). Every 100th series additionally carries a rare
// kernel only those series have, so Search benchmarks exercise the
// posting-list skip.
func populateFleet(b *testing.B, s *Store, clock *fakeClock, seriesN int) {
	b.Helper()
	for si := 0; si < seriesN; si++ {
		workload := fmt.Sprintf("W%d", si)
		prof := wideProfile(workload, 32)
		if si%100 == 0 {
			n := prof.Tree.InsertPath([]cct.Frame{
				cct.PythonFrame("train.py", 30, "main"),
				cct.OperatorFrame("aten::rare"),
				{Kind: cct.KindKernel, Name: "rare_kernel", Lib: "[gpu]", PC: 0xdead0},
			})
			prof.Tree.AddMetric(n, prof.Tree.MetricID(cct.MetricGPUTime), 5)
		}
		if _, err := s.Ingest(prof); err != nil {
			b.Fatal(err)
		}
	}
	clock.Advance(2 * time.Minute)
	s.TrendSweep() // closes the window: aggregates computed, index built
}

// benchmarkTopK measures the fleet-wide ranking with the close-time
// aggregates (index on) against the naive per-query tree fold (index
// off). The cache is off in both: this measures the fold, not
// memoization.
func benchmarkTopK(b *testing.B, indexDisabled bool) {
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Shards: 4, CacheSize: 0, Now: clock.Now, IndexDisabled: indexDisabled})
	defer s.Close()
	populateFleet(b, s, clock, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.TopK(context.Background(), time.Time{}, time.Time{}, Labels{}, cct.MetricGPUTime, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopK10kSeriesIndexed(b *testing.B) { benchmarkTopK(b, false) }

func BenchmarkTopK10kSeriesUncachedFold(b *testing.B) { benchmarkTopK(b, true) }

// benchmarkSearchRare measures finding the 1-in-100 series that carry a
// rare kernel: the posting lists prove the frame absent for the other 99%
// without touching their aggregates.
func benchmarkSearchRare(b *testing.B, indexDisabled bool) {
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Shards: 4, CacheSize: 0, Now: clock.Now, IndexDisabled: indexDisabled})
	defer s.Close()
	populateFleet(b, s, clock, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _, err := s.Search(context.Background(), time.Time{}, time.Time{}, Labels{}, "rare_kernel", cct.MetricGPUTime, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 100 {
			b.Fatalf("rows = %d, want 100", len(rows))
		}
	}
}

func BenchmarkSearchRare10kSeriesIndexed(b *testing.B) { benchmarkSearchRare(b, false) }

func BenchmarkSearchRare10kSeriesUncachedFold(b *testing.B) { benchmarkSearchRare(b, true) }

// wideProfile builds a profile with `paths` distinct calling contexts, so
// the under-lock merge does representative work (the small synthProfile
// fixture makes ingest benchmarks measure profile construction instead).
func wideProfile(workload string, paths int) *profiler.Profile {
	tree := cct.New()
	gid := tree.MetricID(cct.MetricGPUTime)
	for i := 0; i < paths; i++ {
		n := tree.InsertPath([]cct.Frame{
			cct.PythonFrame("train.py", i%40+1, fmt.Sprintf("fn%d", i%40)),
			cct.OperatorFrame(fmt.Sprintf("aten::op%d", i%60)),
			{Kind: cct.KindKernel, Name: fmt.Sprintf("kern%d", i), Lib: "[gpu]", PC: uint64(0x1000 + i*16)},
		})
		tree.AddMetric(n, gid, float64(i+1))
	}
	return &profiler.Profile{
		Tree: tree,
		Meta: profiler.Meta{Workload: workload, Vendor: "Nvidia", Framework: "pytorch"},
	}
}

// BenchmarkConcurrentIngestShards measures ingest contention across
// disjoint series: every goroutine repeatedly folds its own pre-built
// wide profile into its own series, so shards>1 lets the under-lock
// merges run in parallel where the single-stripe store serialized them.
func benchmarkConcurrentIngest(b *testing.B, shards int) {
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Shards: shards, Now: clock.Now})
	defer s.Close()
	var id atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := id.Add(1)
		p := wideProfile(fmt.Sprintf("W%d", g), 400)
		for pb.Next() {
			if _, err := s.Ingest(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkConcurrentIngestShards1(b *testing.B) { benchmarkConcurrentIngest(b, 1) }

func BenchmarkConcurrentIngestShardsMax(b *testing.B) {
	benchmarkConcurrentIngest(b, runtime.GOMAXPROCS(0))
}
