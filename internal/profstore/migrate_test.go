package profstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"deepcontext/internal/profstore/persist"
)

// fillShardedStores ingests an identical multi-series sequence — enough
// distinct series to populate several shards — into every store, across
// two windows.
func fillShardedStores(t *testing.T, clock *fakeClock, stores ...*Store) {
	t.Helper()
	pool := equivSeriesPool
	for i := 0; i < 10; i++ {
		lb := pool[i%len(pool)]
		for _, s := range stores {
			mustIngest(t, s, synthProfile(lb.Workload, lb.Vendor, lb.Framework, uint64(0x1000+i*64), float64(i%4+1)))
		}
	}
	clock.Advance(time.Minute)
	for i := 0; i < 6; i++ {
		lb := pool[(i+2)%len(pool)]
		for _, s := range stores {
			mustIngest(t, s, synthProfile(lb.Workload, lb.Vendor, lb.Framework, uint64(0x7000+i*32), float64(i+2)))
		}
	}
}

// The per-shard WAL crash path: a sharded store killed mid-stream — some
// ingests snapshotted, later ones only in the per-shard WALs, no clean
// shutdown — must recover byte-equal to an uninterrupted control store,
// with every replayed record landing back in the shard that logged it.
func TestShardedCrashRecoveryIsByteEqual(t *testing.T) {
	for _, shards := range []int{2, 4} {
		t.Run(map[int]string{2: "shards=2", 4: "shards=4"}[shards], func(t *testing.T) {
			dir := t.TempDir()
			clock := newClock(base)
			cfg := Config{Window: time.Minute, Shards: shards, Now: clock.Now, Dir: dir}
			memCfg := cfg
			memCfg.Dir = ""
			durable := New(cfg)
			control := New(memCfg)

			// First batch lands, a snapshot commits, then a second batch
			// reaches only the WALs before the "kill" (no Close, no final
			// snapshot — the page cache holds the unsynced appends, as it
			// does when a process dies).
			fillShardedStores(t, clock, durable, control)
			if _, err := durable.Snapshot(); err != nil {
				t.Fatal(err)
			}
			clock.Advance(time.Minute)
			for i := 0; i < 5; i++ {
				lb := equivSeriesPool[i%len(equivSeriesPool)]
				p := synthProfile(lb.Workload, lb.Vendor, lb.Framework, uint64(0x9000+i*16), float64(i+3))
				mustIngest(t, durable, p)
				mustIngest(t, control, synthProfile(lb.Workload, lb.Vendor, lb.Framework, uint64(0x9000+i*16), float64(i+3)))
			}
			want := queryImage(t, control, base, base.Add(2*time.Minute))
			if got := queryImage(t, durable, base, base.Add(2*time.Minute)); string(got) != string(want) {
				t.Fatal("durable store diverged from control before the crash")
			}

			// Sanity: the stripes really did fan out on disk.
			dirs, err := shardDirsIn(dir)
			if err != nil || len(dirs) != shards {
				t.Fatalf("shard dirs = %v (%v), want %d", dirs, err, shards)
			}

			revived := New(cfg)
			rs, err := revived.Recover()
			if err != nil {
				t.Fatal(err)
			}
			defer revived.Close()
			if !rs.SnapshotLoaded || rs.Migrated {
				t.Fatalf("recovery = %+v", rs)
			}
			if rs.WALRecords != 5 {
				t.Fatalf("replayed %d records, want only the 5 past the snapshot (%+v)", rs.WALRecords, rs)
			}
			if got := queryImage(t, revived, base, base.Add(2*time.Minute)); string(got) != string(want) {
				t.Fatalf("recovered image differs from uninterrupted store:\n got %s\nwant %s", got, want)
			}
			if st := revived.Stats(); st.Ingested != 21 {
				t.Fatalf("recovered ingested = %d, want 21", st.Ingested)
			}
		})
	}
}

// legacyRootFrom builds a genuine pre-shard single-store layout at dst: a
// shards=1 store's shard directory IS the legacy layout, so its contents
// (wal/, snap-*, CURRENT) are lifted to the root, exactly where the
// pre-shard store wrote them.
func legacyRootFrom(t *testing.T, clock *fakeClock, dst string, withSnapshot bool) *Store {
	t.Helper()
	staging := t.TempDir()
	cfg := Config{Window: time.Minute, Shards: 1, Now: clock.Now, Dir: staging}
	memCfg := cfg
	memCfg.Dir = ""
	s := New(cfg)
	control := New(memCfg)
	fillShardedStores(t, clock, s, control)
	if withSnapshot {
		if _, err := s.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	clock.Advance(time.Minute)
	for _, st := range []*Store{s, control} {
		mustIngest(t, st, synthProfile("UNet", "Nvidia", "pytorch", 0xABC0, 7))
	}
	s.Close()
	src := filepath.Join(staging, "shard-0")
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if err := os.Rename(filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())); err != nil {
			t.Fatal(err)
		}
	}
	return control
}

// The migration satellite: a data directory written by the pre-shard
// store (root-level wal/ + snapshot) is adopted on first boot of a
// sharded store — byte-equal queries, data re-routed to per-shard
// directories, legacy files gone — and the second boot is an ordinary
// (non-migrating) recovery that still answers byte-equal.
func TestMigrationAdoptsLegacySingleStoreLayout(t *testing.T) {
	for _, tc := range []struct {
		name         string
		withSnapshot bool
	}{{"snapshot-plus-wal", true}, {"wal-only", false}} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			clock := newClock(base)
			control := legacyRootFrom(t, clock, dir, tc.withSnapshot)
			if !persist.LegacyLayoutPresent(dir) {
				t.Fatal("setup: no legacy layout at root")
			}
			want := queryImage(t, control, base, base.Add(2*time.Minute))

			cfg := Config{Window: time.Minute, Shards: 4, Now: clock.Now, Dir: dir}
			revived := New(cfg)
			rs, err := revived.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if !rs.Migrated {
				t.Fatalf("legacy layout not migrated: %+v", rs)
			}
			if rs.SnapshotLoaded != tc.withSnapshot {
				t.Fatalf("snapshot loaded = %v, want %v (%+v)", rs.SnapshotLoaded, tc.withSnapshot, rs)
			}
			if got := queryImage(t, revived, base, base.Add(2*time.Minute)); string(got) != string(want) {
				t.Fatalf("migrated image differs from control:\n got %s\nwant %s", got, want)
			}
			if persist.LegacyLayoutPresent(dir) {
				t.Fatal("legacy artifacts survived a committed migration")
			}
			meta, err := persist.ReadStoreMeta(dir)
			if err != nil || meta == nil || meta.Shards != 4 {
				t.Fatalf("store meta after migration = %+v (%v)", meta, err)
			}
			// New ingest lands in per-shard WALs on top of the migrated
			// image…
			mustIngest(t, revived, synthProfile("DLRM", "AMD", "pytorch", 0xF00, 2))
			mustIngest(t, control, synthProfile("DLRM", "AMD", "pytorch", 0xF00, 2))
			want = queryImage(t, control, base, base.Add(2*time.Minute))
			revived.Close()

			// …and the second boot is a plain recovery, still byte-equal.
			again := New(cfg)
			rs2, err := again.Recover()
			if err != nil {
				t.Fatal(err)
			}
			defer again.Close()
			if rs2.Migrated {
				t.Fatalf("second boot re-migrated: %+v", rs2)
			}
			if got := queryImage(t, again, base, base.Add(2*time.Minute)); string(got) != string(want) {
				t.Fatalf("second boot diverged:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// Changing -store-shards over an existing directory re-commits it under
// the new count — growth and shrink — without double-replaying any WAL
// record or losing a series.
func TestMigrationAcrossShardCountChanges(t *testing.T) {
	dir := t.TempDir()
	clock := newClock(base)
	cfg := func(shards int) Config {
		return Config{Window: time.Minute, Shards: shards, Now: clock.Now, Dir: dir}
	}
	memCfg := Config{Window: time.Minute, Now: clock.Now}
	control := New(memCfg)

	first := New(cfg(2))
	if _, err := first.Recover(); err != nil { // fresh dir: commits layout
		t.Fatal(err)
	}
	fillShardedStores(t, clock, first, control)
	if _, err := first.Snapshot(); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Minute)
	for _, s := range []*Store{first, control} {
		mustIngest(t, s, synthProfile("Bert", "AMD", "jax", 0xD00, 3))
	}
	first.Close() // WAL suffix beyond the snapshot survives in shard WALs

	for _, step := range []struct {
		shards      int
		wantMigrate bool
	}{
		{5, true},  // grow 2 → 5
		{3, true},  // shrink 5 → 3
		{3, false}, // steady state
	} {
		s := New(cfg(step.shards))
		rs, err := s.Recover()
		if err != nil {
			t.Fatalf("shards=%d: %v", step.shards, err)
		}
		if rs.Migrated != step.wantMigrate {
			t.Fatalf("shards=%d: migrated = %v, want %v (%+v)", step.shards, rs.Migrated, step.wantMigrate, rs)
		}
		want := queryImage(t, control, base, base.Add(2*time.Minute))
		if got := queryImage(t, s, base, base.Add(2*time.Minute)); string(got) != string(want) {
			t.Fatalf("shards=%d: image diverged:\n got %s\nwant %s", step.shards, got, want)
		}
		if st := s.Stats(); st.Ingested != 17 {
			t.Fatalf("shards=%d: ingested = %d, want 17 (double replay?)", step.shards, st.Ingested)
		}
		meta, err := persist.ReadStoreMeta(dir)
		if err != nil || meta == nil || meta.Shards != step.shards {
			t.Fatalf("shards=%d: meta = %+v (%v)", step.shards, meta, err)
		}
		if dirs, _ := shardDirsIn(dir); len(dirs) > step.shards {
			t.Fatalf("shards=%d: stale shard dirs remain: %v", step.shards, dirs)
		}
		s.Close()
	}
}

// A migration that crashes BEFORE its STORE.json commit leaves the old
// layout fully authoritative: staging junk under .migrate/ must be
// ignored and wiped, whether the next boot re-migrates or boots the old
// count. This pins the non-destructive property — staging a 2→4
// migration must not have touched the 2-shard sources at all.
func TestMigrationCrashBeforeCommitKeepsOldLayoutAuthoritative(t *testing.T) {
	dir := t.TempDir()
	clock := newClock(base)
	cfg := func(shards int) Config {
		return Config{Window: time.Minute, Shards: shards, Now: clock.Now, Dir: dir}
	}
	control := New(Config{Window: time.Minute, Now: clock.Now})
	first := New(cfg(2))
	if _, err := first.Recover(); err != nil {
		t.Fatal(err)
	}
	fillShardedStores(t, clock, first, control)
	if _, err := first.Snapshot(); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Minute)
	for _, s := range []*Store{first, control} {
		mustIngest(t, s, synthProfile("Bert", "AMD", "jax", 0xE10, 4))
	}
	first.Close()
	want := queryImage(t, control, base, base.Add(2*time.Minute))

	// Simulate the pre-commit crash: a partially (or even fully) staged
	// new layout exists, but STORE.json still names 2 shards.
	staging := filepath.Join(dir, ".migrate")
	if err := os.MkdirAll(filepath.Join(staging, "shard-0"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(staging, "shard-0", "CURRENT"), []byte("snap-99\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{2, 4} { // same-count boot, then a re-migration
		s := New(cfg(shards))
		rs, err := s.Recover()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if rs.Migrated != (shards != 2) {
			t.Fatalf("shards=%d: migrated=%v (%+v)", shards, rs.Migrated, rs)
		}
		if got := queryImage(t, s, base, base.Add(2*time.Minute)); string(got) != string(want) {
			t.Fatalf("shards=%d: image diverged after pre-commit crash:\n got %s\nwant %s", shards, got, want)
		}
		if st := s.Stats(); st.Ingested != 17 {
			t.Fatalf("shards=%d: ingested = %d, want 17", shards, st.Ingested)
		}
		if _, err := os.Stat(staging); !os.IsNotExist(err) {
			t.Fatalf("shards=%d: staging junk survived the boot", shards)
		}
		s.Close()
		if shards == 2 {
			// Re-seed the fake staging junk for the second (migrating) boot.
			if err := os.MkdirAll(filepath.Join(staging, "shard-1"), 0o755); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// A migration that crashes AFTER its STORE.json commit but mid-swap is
// resumed by the next boot: staged shard directories still present are
// swapped in, already-swapped ones are kept, and queries answer
// byte-equal to the uninterrupted store.
func TestMigrationCrashMidSwapResumes(t *testing.T) {
	dir := t.TempDir()
	clock := newClock(base)
	cfg := func(shards int) Config {
		return Config{Window: time.Minute, Shards: shards, Now: clock.Now, Dir: dir}
	}
	control := New(Config{Window: time.Minute, Now: clock.Now})
	first := New(cfg(2))
	if _, err := first.Recover(); err != nil {
		t.Fatal(err)
	}
	fillShardedStores(t, clock, first, control)
	first.Close()
	want := queryImage(t, control, base, base.Add(time.Minute))

	// Run the 2→4 migration for real, then rewind it to the mid-swap
	// crash state: two shards back in staging, pending marker restored.
	migrated := New(cfg(4))
	if rs, err := migrated.Recover(); err != nil || !rs.Migrated {
		t.Fatalf("setup migration: %+v, %v", rs, err)
	}
	if got := queryImage(t, migrated, base, base.Add(time.Minute)); string(got) != string(want) {
		t.Fatal("setup: migrated image diverged")
	}
	migrated.Close()
	staging := filepath.Join(dir, ".migrate")
	if err := os.MkdirAll(staging, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"shard-2", "shard-3"} {
		if err := os.Rename(filepath.Join(dir, name), filepath.Join(staging, name)); err != nil {
			t.Fatal(err)
		}
	}
	if err := persist.WriteStoreMeta(dir, persist.StoreMeta{Shards: 4, Pending: ".migrate"}); err != nil {
		t.Fatal(err)
	}

	revived := New(cfg(4))
	rs, err := revived.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer revived.Close()
	if rs.Migrated {
		t.Fatalf("resumed swap must not count as a new migration: %+v", rs)
	}
	found := false
	for _, w := range rs.Warnings {
		if strings.Contains(w, "resumed an interrupted layout swap") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no resume warning: %v", rs.Warnings)
	}
	if got := queryImage(t, revived, base, base.Add(time.Minute)); string(got) != string(want) {
		t.Fatalf("resumed-swap image diverged:\n got %s\nwant %s", got, want)
	}
	meta, err := persist.ReadStoreMeta(dir)
	if err != nil || meta == nil || meta.Shards != 4 || meta.Pending != "" {
		t.Fatalf("meta after resume = %+v (%v)", meta, err)
	}
	if _, err := os.Stat(staging); !os.IsNotExist(err) {
		t.Fatal("staging survived the resumed swap")
	}
}

// Ingesting into a directory committed under another layout must refuse
// (Recover owns migrations); a directory matching the configured layout
// ingests fine without an explicit Recover.
func TestIngestRefusesForeignLayout(t *testing.T) {
	dir := t.TempDir()
	clock := newClock(base)
	s2 := New(Config{Window: time.Minute, Shards: 2, Now: clock.Now, Dir: dir})
	mustIngest(t, s2, synthProfile("UNet", "Nvidia", "pytorch", 0x1, 1))
	s2.Close()

	s4 := New(Config{Window: time.Minute, Shards: 4, Now: clock.Now, Dir: dir})
	defer s4.Close()
	if _, err := s4.Ingest(synthProfile("UNet", "Nvidia", "pytorch", 0x2, 1)); err == nil {
		t.Fatal("ingest into a 2-shard directory from a 4-shard store should refuse")
	}

	again := New(Config{Window: time.Minute, Shards: 2, Now: clock.Now, Dir: dir})
	defer again.Close()
	if _, err := again.Recover(); err != nil {
		t.Fatal(err)
	}
	mustIngest(t, again, synthProfile("UNet", "Nvidia", "pytorch", 0x3, 1))
}
