package profstore

import (
	"sort"
	"time"

	"deepcontext/internal/cct"
	"deepcontext/internal/profstore/trend"
)

// RegressionQuery filters the store's retained trend findings.
type RegressionQuery struct {
	// Filter matches findings by series labels (empty fields are
	// wildcards, case-insensitive — the same semantics as every query).
	Filter Labels
	// Since, when non-zero, keeps only findings whose confirming window
	// starts at or after it.
	Since time.Time
	// Direction keeps only +1 (share increases — regressions) or -1
	// (decreases — improvements) findings; 0 keeps both.
	Direction int
	// Limit bounds the result, keeping the newest findings; 0 is
	// unbounded.
	Limit int
}

// Regressions returns the retained change-point findings matching q,
// sorted by (confirming window, series, frame, direction) — an order
// independent of shard count, cache configuration and restart history.
// Findings reflect windows already observed; call TrendSweep first to
// observe windows that closed since the last ingest.
func (s *Store) Regressions(q RegressionQuery) []trend.Finding {
	if s.cfg.Trend.Disabled {
		return nil
	}
	s.rlockAll()
	var all []trend.Finding
	for _, sh := range s.shards {
		all = sh.tracker.AppendFindings(all)
	}
	s.runlockAll()

	out := all[:0]
	for _, f := range all {
		if q.Direction != 0 && f.Direction != q.Direction {
			continue
		}
		if !q.Since.IsZero() && f.AfterUnixNano < q.Since.UnixNano() {
			continue
		}
		labels := Labels{Workload: f.Workload, Vendor: f.Vendor, Framework: f.Framework}
		if !labels.Matches(q.Filter) {
			continue
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.AfterUnixNano != b.AfterUnixNano {
			return a.AfterUnixNano < b.AfterUnixNano
		}
		if a.Series != b.Series {
			return a.Series < b.Series
		}
		if a.Frame != b.Frame {
			return a.Frame < b.Frame
		}
		return a.Direction > b.Direction
	})
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[len(out)-q.Limit:] // keep the newest
	}
	return out
}

// TrendSweep closes every fine window that has ended under the store's
// clock but has not been processed yet — trend observation plus frame
// index/aggregate maintenance, the same pass ingest and compaction run
// incrementally. Query handlers call it so findings and the fleet-query
// index are current even when ingest has gone quiet.
func (s *Store) TrendSweep() {
	if s.cfg.Trend.Disabled && s.cfg.IndexDisabled {
		return
	}
	var t0 time.Time
	if s.met.timings {
		t0 = time.Now()
	}
	now := s.cfg.Now()
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.closeWindowsLocked(now)
		sh.mu.Unlock()
	}
	if s.met.timings {
		s.met.sweepSeconds.Observe(time.Since(t0))
	}
}

// TrendStats summarizes the regression detector across all shards.
type TrendStats struct {
	Series     int   `json:"series"`
	Frames     int   `json:"frames"`
	Findings   int64 `json:"findings"`
	Suppressed int64 `json:"suppressed"`
	Late       int64 `json:"late,omitempty"`
}

// metricShares reduces one series' window tree to frame label → share of
// the root's inclusive metric total. Shares aggregate by label across
// calling contexts (per-label exclusive sums are accumulated first, then
// divided once, so the same tree always yields the same floats). Returns
// false when the metric is absent or the total is not positive.
func metricShares(t *cct.Tree, metric string) (map[string]float64, bool) {
	id, ok := t.Schema.Lookup(metric)
	if !ok {
		return nil, false
	}
	total := t.Root.InclValue(id)
	if total <= 0 {
		return nil, false
	}
	sums := make(map[string]float64)
	t.Visit(func(n *cct.Node) {
		if n.Kind == cct.KindRoot {
			return
		}
		if v := n.ExclValue(id); v != 0 {
			sums[n.Label()] += v
		}
	})
	out := make(map[string]float64, len(sums))
	for label, v := range sums {
		out[label] = v / total
	}
	return out, true
}
