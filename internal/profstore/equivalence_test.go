package profstore

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"

	"deepcontext/internal/cct"
	"deepcontext/internal/profiler"
)

// refStore is the naive single-map reference implementation the sharded,
// cached store is checked against: one flat bucket map per tier, linear
// scans, no locks, no cache, no persistence. It shares only the cct
// substrate (Merge/Diff/Normalize) and the pure ranking helpers with the
// real store — everything the tentpole changed (routing, striped locking,
// generation-stamped caching, per-shard compaction) is reimplemented here
// in the simplest possible form.
type refStore struct {
	cfg    Config
	fine   map[int64]map[string]*refSeries
	coarse map[int64]map[string]*refSeries
}

type refSeries struct {
	labels   Labels
	tree     *cct.Tree
	profiles int
}

func newRefStore(cfg Config) *refStore {
	return &refStore{
		cfg:    cfg.withDefaults(),
		fine:   make(map[int64]map[string]*refSeries),
		coarse: make(map[int64]map[string]*refSeries),
	}
}

func (r *refStore) ingest(p *profiler.Profile) {
	start := r.cfg.Now().Truncate(r.cfg.Window).UnixNano()
	w := r.fine[start]
	if w == nil {
		w = make(map[string]*refSeries)
		r.fine[start] = w
	}
	labels := LabelsOf(p.Meta)
	ser := w[labels.Key()]
	if ser == nil {
		ser = &refSeries{labels: labels, tree: cct.New()}
		w[labels.Key()] = ser
	}
	cct.Merge(ser.tree, cct.NormalizeAddresses(p.Tree))
	ser.profiles++
}

func (r *refStore) compact(now time.Time) {
	fineHorizon := now.Add(-time.Duration(r.cfg.Retention) * r.cfg.Window).Truncate(r.cfg.Window)
	for _, start := range sortedKeys(r.fine) {
		if !time.Unix(0, start).Before(fineHorizon) {
			continue
		}
		cStart := time.Unix(0, start).Truncate(r.cfg.coarse()).UnixNano()
		cw := r.coarse[cStart]
		if cw == nil {
			cw = make(map[string]*refSeries)
			r.coarse[cStart] = cw
		}
		w := r.fine[start]
		for _, k := range sortedKeys(w) {
			ser := w[k]
			dst := cw[k]
			if dst == nil {
				dst = &refSeries{labels: ser.labels, tree: cct.New()}
				cw[k] = dst
			}
			cct.Merge(dst.tree, ser.tree)
			dst.profiles += ser.profiles
		}
		delete(r.fine, start)
	}
	coarseHorizon := now.Add(-time.Duration(r.cfg.CoarseRetention) * r.cfg.coarse()).Truncate(r.cfg.coarse())
	for _, start := range sortedKeys(r.coarse) {
		if time.Unix(0, start).Before(coarseHorizon) {
			delete(r.coarse, start)
		}
	}
}

func (r *refStore) aggregate(from, to time.Time, filter Labels) (*cct.Tree, AggregateInfo, error) {
	out := cct.New()
	info := AggregateInfo{}
	seen := make(map[string]bool)
	fold := func(buckets map[int64]map[string]*refSeries) {
		for _, start := range sortedKeys(buckets) {
			st := time.Unix(0, start)
			if !from.IsZero() && st.Before(from) {
				continue
			}
			if !to.IsZero() && !st.Before(to) {
				continue
			}
			matched := false
			w := buckets[start]
			for _, k := range sortedKeys(w) {
				ser := w[k]
				if !ser.labels.Matches(filter) {
					continue
				}
				cct.Merge(out, ser.tree)
				info.Profiles += ser.profiles
				matched = true
				if !seen[k] {
					seen[k] = true
					info.Series = append(info.Series, k)
				}
			}
			if matched {
				info.Windows++
			}
		}
	}
	fold(r.fine)
	fold(r.coarse)
	if info.Windows == 0 {
		return nil, info, ErrNoData
	}
	sort.Strings(info.Series)
	return out, info, nil
}

// foldAggs enumerates every matched series in the canonical (tier,
// bucket start, series key) order, visiting each once per bucket — the
// naive reference enumeration behind topK and search.
func (r *refStore) foldAggs(from, to time.Time, filter Labels, visit func(key string, labels Labels, ser *refSeries)) (AggregateInfo, error) {
	info := AggregateInfo{}
	seen := make(map[string]bool)
	fold := func(buckets map[int64]map[string]*refSeries) {
		for _, start := range sortedKeys(buckets) {
			st := time.Unix(0, start)
			if !from.IsZero() && st.Before(from) {
				continue
			}
			if !to.IsZero() && !st.Before(to) {
				continue
			}
			matched := false
			w := buckets[start]
			for _, k := range sortedKeys(w) {
				ser := w[k]
				if !ser.labels.Matches(filter) {
					continue
				}
				visit(k, ser.labels, ser)
				info.Profiles += ser.profiles
				matched = true
				if !seen[k] {
					seen[k] = true
					info.Series = append(info.Series, k)
				}
			}
			if matched {
				info.Windows++
			}
		}
	}
	fold(r.fine)
	fold(r.coarse)
	if info.Windows == 0 {
		return info, ErrNoData
	}
	sort.Strings(info.Series)
	return info, nil
}

// topK is the uncached reference for Store.TopK: every (bucket, series)
// aggregate recomputed fresh from the tree, no close-time cache, no
// index. It shares the accumulator with the store so the float operations
// are bit-identical; only the aggregate provenance differs.
func (r *refStore) topK(from, to time.Time, filter Labels, metric string, k int) ([]TopKRow, AggregateInfo, error) {
	if metric == "" {
		metric = cct.MetricGPUTime
	}
	acc := newTopKAcc(metric)
	info, err := r.foldAggs(from, to, filter, func(key string, _ Labels, ser *refSeries) {
		acc.addSeries(key, computeSeriesAgg(ser.tree))
	})
	if err != nil {
		return nil, info, err
	}
	rows, err := acc.finish(k)
	return rows, info, err
}

// search is the uncached reference for Store.Search: every series
// inspected (no posting-list skip), aggregates recomputed fresh.
func (r *refStore) search(from, to time.Time, filter Labels, frame, metric string, limit int) ([]SearchRow, AggregateInfo, error) {
	if metric == "" {
		metric = cct.MetricGPUTime
	}
	acc := newSearchAcc(frame, metric)
	info, err := r.foldAggs(from, to, filter, func(key string, labels Labels, ser *refSeries) {
		acc.addSeries(key, labels, computeSeriesAgg(ser.tree))
	})
	if err != nil {
		return nil, info, err
	}
	rows, err := acc.finish(limit)
	return rows, info, err
}

func (r *refStore) hotspots(from, to time.Time, filter Labels, metric string, top int) ([]Hotspot, AggregateInfo, error) {
	tree, info, err := r.aggregate(from, to, filter)
	if err != nil {
		return nil, info, err
	}
	rows, err := rankHotspots(tree, metric, top)
	return rows, info, err
}

func (r *refStore) diff(before, after time.Time, filter Labels, metric string, top int) (*DiffResult, error) {
	resolveFold := func(t time.Time) (*cct.Tree, error) {
		w := r.fine[t.Truncate(r.cfg.Window).UnixNano()]
		if w == nil {
			w = r.coarse[t.Truncate(r.cfg.coarse()).UnixNano()]
		}
		if w == nil {
			return nil, ErrNoData
		}
		out := cct.New()
		matched := false
		for _, k := range sortedKeys(w) {
			if ser := w[k]; ser.labels.Matches(filter) {
				cct.Merge(out, ser.tree)
				matched = true
			}
		}
		if !matched {
			return nil, ErrNoData
		}
		return out, nil
	}
	bTree, err := resolveFold(before)
	if err != nil {
		return nil, err
	}
	aTree, err := resolveFold(after)
	if err != nil {
		return nil, err
	}
	return buildDiffResult(bTree, aTree, metric, top)
}

// mustJSON renders v for byte comparison.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// equivSeriesPool is the label universe of the property test: enough
// distinct series to land on several shards, including pairs differing in
// one field only (filter edge cases).
var equivSeriesPool = []Labels{
	{"UNet", "Nvidia", "pytorch"},
	{"UNet", "AMD", "pytorch"},
	{"UNet", "Nvidia", "jax"},
	{"DLRM", "Nvidia", "jax"},
	{"DLRM", "AMD", "pytorch"},
	{"Bert", "AMD", "jax"},
	{"Resnet", "Nvidia", "pytorch"},
}

// TestPropertyEquivalenceWithReferenceStore drives randomized
// ingest/advance/compact/retain interleavings against the naive reference
// store and every (shards, cache) variant simultaneously, and requires
// Hotspots, Diff, Windows and Aggregate to match the reference at every
// checkpoint.
func TestPropertyEquivalenceWithReferenceStore(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runEquivalenceScript(t, seed)
		})
	}
}

func runEquivalenceScript(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	clock := newClock(base)
	cfgBase := Config{Window: time.Minute, Retention: 4, CoarseFactor: 3, CoarseRetention: 5, Now: clock.Now}

	type variant struct {
		name string
		s    *Store
	}
	var variants []variant
	for _, shards := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		for _, cacheSize := range []int{0, 64} {
			cfg := cfgBase
			cfg.Shards = shards
			cfg.CacheSize = cacheSize
			v := variant{fmt.Sprintf("shards=%d/cache=%d", shards, cacheSize), New(cfg)}
			variants = append(variants, v)
			defer v.s.Close()
		}
	}
	// One variant runs with the fleet-query index disabled: TopK/Search
	// must fall back to folding trees and still match byte-for-byte.
	{
		cfg := cfgBase
		cfg.Shards = 4
		cfg.CacheSize = 64
		cfg.IndexDisabled = true
		v := variant{"shards=4/cache=64/noindex", New(cfg)}
		variants = append(variants, v)
		defer v.s.Close()
	}
	ref := newRefStore(cfgBase)

	var windowStarts []time.Time
	noteWindow := func(ts time.Time) {
		start := ts.Truncate(cfgBase.Window)
		for _, w := range windowStarts {
			if w.Equal(start) {
				return
			}
		}
		windowStarts = append(windowStarts, start)
	}

	verify := func(step int) {
		t.Helper()
		// Hotspot variants: unfiltered, one-field filters, a bounded range,
		// and the cpu metric.
		queries := []struct {
			from, to time.Time
			filter   Labels
			metric   string
			top      int
		}{
			{time.Time{}, time.Time{}, Labels{}, cct.MetricGPUTime, 0},
			{time.Time{}, time.Time{}, Labels{Vendor: "nvidia"}, cct.MetricGPUTime, 5},
			{time.Time{}, time.Time{}, Labels{Workload: "unet", Framework: "jax"}, cct.MetricCPUTime, 3},
		}
		if len(windowStarts) > 1 {
			lo := windowStarts[rng.Intn(len(windowStarts))]
			queries = append(queries, struct {
				from, to time.Time
				filter   Labels
				metric   string
				top      int
			}{lo, lo.Add(3 * cfgBase.Window), Labels{}, cct.MetricGPUTime, 0})
		}
		for qi, q := range queries {
			wantRows, wantInfo, wantErr := ref.hotspots(q.from, q.to, q.filter, q.metric, q.top)
			for _, v := range variants {
				gotRows, gotInfo, gotErr := v.s.Hotspots(context.Background(), q.from, q.to, q.filter, q.metric, q.top)
				if (gotErr == nil) != (wantErr == nil) || (wantErr != nil && !errors.Is(gotErr, ErrNoData) && !errors.Is(gotErr, ErrUnknownMetric)) {
					t.Fatalf("step %d %s hotspots[%d]: err %v, ref err %v", step, v.name, qi, gotErr, wantErr)
				}
				if wantErr != nil {
					continue
				}
				if mustJSON(t, gotRows) != mustJSON(t, wantRows) || mustJSON(t, gotInfo) != mustJSON(t, wantInfo) {
					t.Fatalf("step %d %s hotspots[%d] diverged from reference:\n got %s %s\nwant %s %s",
						step, v.name, qi, mustJSON(t, gotRows), mustJSON(t, gotInfo), mustJSON(t, wantRows), mustJSON(t, wantInfo))
				}
			}
		}
		// Fleet queries: TopK over the close-time aggregates and Search
		// through the inverted index must match the naive reference that
		// recomputes every aggregate and inspects every series.
		topkQueries := []struct {
			from, to time.Time
			filter   Labels
			metric   string
			k        int
		}{
			{time.Time{}, time.Time{}, Labels{}, "", 0},
			{time.Time{}, time.Time{}, Labels{Vendor: "nvidia"}, cct.MetricGPUTime, 3},
			{time.Time{}, time.Time{}, Labels{}, cct.MetricCPUTime, 0},
		}
		if len(windowStarts) > 1 {
			lo := windowStarts[rng.Intn(len(windowStarts))]
			topkQueries = append(topkQueries, struct {
				from, to time.Time
				filter   Labels
				metric   string
				k        int
			}{lo, lo.Add(2 * cfgBase.Window), Labels{}, "", 2})
		}
		for qi, q := range topkQueries {
			wantRows, wantInfo, wantErr := ref.topK(q.from, q.to, q.filter, q.metric, q.k)
			for _, v := range variants {
				gotRows, gotInfo, gotErr := v.s.TopK(context.Background(), q.from, q.to, q.filter, q.metric, q.k)
				if (gotErr == nil) != (wantErr == nil) || (wantErr != nil && !errors.Is(gotErr, ErrNoData) && !errors.Is(gotErr, ErrUnknownMetric)) {
					t.Fatalf("step %d %s topk[%d]: err %v, ref err %v", step, v.name, qi, gotErr, wantErr)
				}
				if wantErr != nil {
					continue
				}
				if mustJSON(t, gotRows) != mustJSON(t, wantRows) || mustJSON(t, gotInfo) != mustJSON(t, wantInfo) {
					t.Fatalf("step %d %s topk[%d] diverged from reference:\n got %s %s\nwant %s %s",
						step, v.name, qi, mustJSON(t, gotRows), mustJSON(t, gotInfo), mustJSON(t, wantRows), mustJSON(t, wantInfo))
				}
			}
		}
		searchQueries := []struct {
			frame  string
			filter Labels
			metric string
			limit  int
		}{
			{"gemm", Labels{}, "", 0},
			{"relu", Labels{Framework: "pytorch"}, cct.MetricGPUTime, 2},
			{"aten::conv2d", Labels{}, cct.MetricCPUTime, 0},
			{"no_such_kernel", Labels{}, "", 0},
		}
		for qi, q := range searchQueries {
			wantRows, wantInfo, wantErr := ref.search(time.Time{}, time.Time{}, q.filter, q.frame, q.metric, q.limit)
			for _, v := range variants {
				gotRows, gotInfo, gotErr := v.s.Search(context.Background(), time.Time{}, time.Time{}, q.filter, q.frame, q.metric, q.limit)
				if (gotErr == nil) != (wantErr == nil) || (wantErr != nil && !errors.Is(gotErr, ErrNoData) && !errors.Is(gotErr, ErrUnknownMetric)) {
					t.Fatalf("step %d %s search[%d]: err %v, ref err %v", step, v.name, qi, gotErr, wantErr)
				}
				if wantErr != nil {
					continue
				}
				if mustJSON(t, gotRows) != mustJSON(t, wantRows) || mustJSON(t, gotInfo) != mustJSON(t, wantInfo) {
					t.Fatalf("step %d %s search[%d] diverged from reference:\n got %s %s\nwant %s %s",
						step, v.name, qi, mustJSON(t, gotRows), mustJSON(t, gotInfo), mustJSON(t, wantRows), mustJSON(t, wantInfo))
				}
			}
		}
		if len(windowStarts) >= 2 {
			b := windowStarts[rng.Intn(len(windowStarts))]
			a := windowStarts[rng.Intn(len(windowStarts))]
			filter := Labels{}
			if rng.Intn(2) == 1 {
				filter = Labels{Workload: equivSeriesPool[rng.Intn(len(equivSeriesPool))].Workload}
			}
			wantDiff, wantErr := ref.diff(b, a, filter, cct.MetricGPUTime, 0)
			for _, v := range variants {
				gotDiff, gotErr := v.s.Diff(context.Background(), b, a, filter, cct.MetricGPUTime, 0)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("step %d %s diff(%v,%v): err %v, ref err %v", step, v.name, b, a, gotErr, wantErr)
				}
				if wantErr != nil {
					continue
				}
				if mustJSON(t, gotDiff) != mustJSON(t, wantDiff) {
					t.Fatalf("step %d %s diff diverged from reference:\n got %s\nwant %s",
						step, v.name, mustJSON(t, gotDiff), mustJSON(t, wantDiff))
				}
			}
		}
		// Window listings must agree between variants (the reference does
		// not model WindowInfo; the shards=1/cache=0 variant is the
		// pre-shard shape, golden-pinned by TestQueryGolden).
		want := mustJSON(t, variants[0].s.Windows())
		for _, v := range variants[1:] {
			if got := mustJSON(t, v.s.Windows()); got != want {
				t.Fatalf("step %d %s windows diverged: got %s want %s", step, v.name, got, want)
			}
		}
	}

	const steps = 150
	for i := 0; i < steps; i++ {
		switch r := rng.Intn(10); {
		case r < 5: // ingest one profile into every store
			lb := equivSeriesPool[rng.Intn(len(equivSeriesPool))]
			pc := uint64(0x1000 + rng.Intn(1<<14)*8)
			scale := float64(rng.Intn(9) + 1)
			ref.ingest(synthProfile(lb.Workload, lb.Vendor, lb.Framework, pc, scale))
			for _, v := range variants {
				mustIngest(t, v.s, synthProfile(lb.Workload, lb.Vendor, lb.Framework, pc, scale))
			}
			noteWindow(clock.Now())
		case r < 7: // advance the shared clock
			clock.Advance(time.Duration(rng.Intn(90)+15) * time.Second)
		case r < 8: // retention jump: expire fine (sometimes coarse) windows
			clock.Advance(time.Duration(rng.Intn(8)+4) * time.Minute)
			fallthrough
		case r < 9: // compaction everywhere
			now := clock.Now()
			ref.compact(now)
			for _, v := range variants {
				v.s.CompactNow()
			}
		default: // repeat queries back-to-back so cached paths serve
			verify(i)
		}
		if i%7 == 0 {
			verify(i)
		}
	}
	verify(steps)

	// The cached variants must actually have exercised the cache.
	for _, v := range variants {
		if cs := v.s.Stats().Cache; cs != nil && cs.Hits == 0 {
			t.Errorf("%s: cache never hit during the property run (%+v)", v.name, cs)
		}
	}
}
