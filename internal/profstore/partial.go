package profstore

// Cluster partials: the export/fold layer under internal/cluster's
// scatter-gather queries. Each node serializes its matched (bucket, series)
// pairs — tree bytes for the aggregate-shaped queries, close-time aggregates
// for the fleet queries — and the coordinator folds the union in the exact
// (tier, bucket start, series key) order of the single-node fold, driving
// the same unexported accumulators (rankHotspots, topkAcc, searchAcc,
// buildDiffResult). A cluster of N therefore answers byte-identical to one
// node holding the same data, which the multi-node equivalence matrix pins.
//
// The same partial encoding doubles as the handoff payload: a node joining
// the cluster imports moved series with replace semantics (idempotent under
// re-delivery) plus their trend-tracker state, and the old owner drops what
// it no longer owns after the routing table commits.

import (
	"context"
	"fmt"
	"sort"
	"time"

	"deepcontext/internal/cct"
	"deepcontext/internal/profiler"
	"deepcontext/internal/profstore/persist"
	"deepcontext/internal/profstore/trend"
)

// Coverage annotates a degraded cluster result: how many nodes were asked
// and how many answered. Complete results — including every single-node
// query — leave it nil, so healthy responses stay byte-identical to the
// single-node goldens.
type Coverage struct {
	NodesTotal int      `json:"nodes_total"`
	NodesUp    int      `json:"nodes_up"`
	Down       []string `json:"down,omitempty"`
}

// PartialBucket identifies one resolution bucket of a partial.
type PartialBucket struct {
	Coarse  bool  `json:"coarse"`
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
}

// AggData is the wire form of a close-time series aggregate (index.go's
// seriesAgg): parallel label/kind rows with one metric-sum vector each.
// JSON float64 round-trips are exact, so a folded aggregate is bit-equal
// whether it traveled or not.
type AggData struct {
	Labels  []string    `json:"labels"`
	Kinds   []string    `json:"kinds"`
	Metrics []string    `json:"metrics"`
	Sums    [][]float64 `json:"sums"`
}

func (a *AggData) toSeriesAgg() *seriesAgg {
	return &seriesAgg{labels: a.Labels, kinds: a.Kinds, metrics: a.Metrics, sums: a.Sums}
}

func aggData(a *seriesAgg) *AggData {
	return &AggData{Labels: a.labels, Kinds: a.kinds, Metrics: a.metrics, Sums: a.sums}
}

// SeriesPartial is one (bucket, series) contribution to a scatter-gather
// fold: the series' tree bytes (persist's profdb encoding) or its close-time
// aggregate, depending on the query kind.
type SeriesPartial struct {
	Bucket   PartialBucket `json:"bucket"`
	Key      string        `json:"key"`
	Labels   Labels        `json:"labels"`
	Profiles int           `json:"profiles"`
	Tree     []byte        `json:"tree,omitempty"`
	Agg      *AggData      `json:"agg,omitempty"`
}

// DecodeTree decodes the partial's tree bytes.
func (p *SeriesPartial) DecodeTree() (*cct.Tree, error) {
	prof, err := persist.DecodeProfile(p.Tree)
	if err != nil {
		return nil, fmt.Errorf("profstore: partial %s@%d: %w", p.Key, p.Bucket.StartNS, err)
	}
	return prof.Tree, nil
}

// PartialMode selects what each exported partial carries.
type PartialMode int

const (
	// PartialTrees exports encoded series trees — the aggregate-shaped
	// queries (hotspots, diff, flame, analyze) and handoff need them.
	PartialTrees PartialMode = iota
	// PartialAggs exports close-time aggregates — all TopK and Search need.
	PartialAggs
)

// PartialsQuery selects what Partials exports.
type PartialsQuery struct {
	From, To time.Time
	Filter   Labels
	Mode     PartialMode
	// Keep, when set, restricts the export to series keys it accepts —
	// handoff exports pass "new owner differs from me" here.
	Keep func(key string) bool
	// WithTrend carries the exported series' trend-tracker state, so a
	// handed-off series keeps its regression history and watermark.
	WithTrend bool
}

// PartialSet is one node's export: matched partials in canonical fold order
// plus, for handoff, the moved series' trend state (trend.EncodeStates).
type PartialSet struct {
	Series []SeriesPartial `json:"series,omitempty"`
	Trend  []byte          `json:"trend,omitempty"`
}

// Partials exports this store's contribution to a scatter-gather fold (or a
// handoff) under one all-shard read lock. Trees are encoded under the lock —
// the coordinator folds decoded copies, never live trees, so ingest can
// proceed the moment the lock drops. Matching nothing returns an empty set,
// not ErrNoData: only the coordinator sees the whole cluster.
func (s *Store) Partials(ctx context.Context, q PartialsQuery) (PartialSet, error) {
	var set PartialSet
	var encErr error
	s.rlockAll()
	foldTier := func(coarse bool) {
		if encErr != nil || ctx.Err() != nil {
			return
		}
		buckets := s.bucketsLocked(coarse)
		for _, start := range sortedKeys(buckets) {
			if encErr != nil || ctx.Err() != nil {
				return
			}
			wins := buckets[start]
			st := wins[0].start
			if !q.From.IsZero() && st.Before(q.From) {
				continue
			}
			if !q.To.IsZero() && !st.Before(q.To) {
				continue
			}
			bucket := PartialBucket{Coarse: coarse, StartNS: start, DurNS: int64(wins[0].dur)}
			merged := mergeSeriesViews(wins)
			for _, k := range sortedKeys(merged) {
				ser := merged[k]
				if !ser.labels.Matches(q.Filter) {
					continue
				}
				if q.Keep != nil && !q.Keep(k) {
					continue
				}
				p, err := makePartial(bucket, k, ser, q.Mode)
				if err != nil {
					encErr = err
					return
				}
				set.Series = append(set.Series, p)
			}
		}
	}
	foldTier(false)
	foldTier(true)
	if encErr == nil && q.WithTrend {
		set.Trend, encErr = s.exportTrendLocked(q.Keep)
	}
	s.runlockAll()
	if encErr != nil {
		return PartialSet{}, encErr
	}
	if err := ctx.Err(); err != nil {
		return PartialSet{}, fmt.Errorf("profstore: partials canceled: %w", err)
	}
	return set, nil
}

func makePartial(bucket PartialBucket, key string, ser *series, mode PartialMode) (SeriesPartial, error) {
	p := SeriesPartial{Bucket: bucket, Key: key, Labels: ser.labels, Profiles: ser.profiles}
	switch mode {
	case PartialAggs:
		agg := ser.agg
		if agg == nil {
			agg = computeSeriesAgg(ser.tree)
		}
		p.Agg = aggData(agg)
	default:
		blob, err := persist.EncodeProfile(&profiler.Profile{
			Tree: ser.tree,
			Meta: profiler.Meta{
				Workload:  ser.labels.Workload,
				Vendor:    ser.labels.Vendor,
				Framework: ser.labels.Framework,
			},
		})
		if err != nil {
			return p, fmt.Errorf("profstore: encode partial %s@%d: %w", key, bucket.StartNS, err)
		}
		p.Tree = blob
	}
	return p, nil
}

// exportTrendLocked collects the trend state of every series keep accepts,
// across all shards. Callers hold all shard read locks.
func (s *Store) exportTrendLocked(keep func(key string) bool) ([]byte, error) {
	moved := make(map[string]*trend.SeriesState)
	for _, sh := range s.shards {
		if sh.tracker == nil {
			continue
		}
		blob, err := sh.tracker.EncodeState()
		if err != nil {
			return nil, fmt.Errorf("profstore: export trend state: %w", err)
		}
		if len(blob) == 0 {
			continue
		}
		states, err := trend.DecodeState(blob)
		if err != nil {
			return nil, fmt.Errorf("profstore: export trend state: %w", err)
		}
		for key, st := range states {
			if keep == nil || keep(key) {
				moved[key] = st
			}
		}
	}
	return trend.EncodeStates(moved)
}

// sortPartials orders a multi-node union into the store's canonical fold
// order: fine tier first, bucket starts ascending, series keys ascending.
// Series keys are disjoint across nodes (each routes to one owner), so the
// order is total.
func sortPartials(parts []SeriesPartial) {
	sort.SliceStable(parts, func(i, j int) bool {
		a, b := parts[i], parts[j]
		if a.Bucket.Coarse != b.Bucket.Coarse {
			return !a.Bucket.Coarse
		}
		if a.Bucket.StartNS != b.Bucket.StartNS {
			return a.Bucket.StartNS < b.Bucket.StartNS
		}
		return a.Key < b.Key
	})
}

// foldPartialInfo walks sorted partials computing the same AggregateInfo a
// single-node fold reports, invoking visit per partial in canonical order.
func foldPartialInfo(parts []SeriesPartial, visit func(p *SeriesPartial) error) (AggregateInfo, error) {
	info := AggregateInfo{}
	seen := make(map[string]bool)
	haveBucket := false
	var lastBucket PartialBucket
	for i := range parts {
		p := &parts[i]
		if !haveBucket || p.Bucket != lastBucket {
			haveBucket = true
			lastBucket = p.Bucket
			info.Windows++
		}
		if err := visit(p); err != nil {
			return info, err
		}
		info.Profiles += p.Profiles
		if !seen[p.Key] {
			seen[p.Key] = true
			info.Series = append(info.Series, p.Key)
		}
	}
	sort.Strings(info.Series)
	return info, nil
}

// FoldAggregate merges a multi-node union of tree partials into one fresh
// tree, byte-equal to Store.Aggregate over the same data. The from/to/filter
// arguments only shape the ErrNoData message, which mirrors the single-node
// text exactly (HTTP error bodies are compared too).
func FoldAggregate(parts []SeriesPartial, from, to time.Time, filter Labels) (*cct.Tree, AggregateInfo, error) {
	sortPartials(parts)
	out := cct.New()
	info, err := foldPartialInfo(parts, func(p *SeriesPartial) error {
		tree, err := p.DecodeTree()
		if err != nil {
			return err
		}
		cct.Merge(out, tree)
		return nil
	})
	if err != nil {
		return nil, info, err
	}
	if info.Windows == 0 {
		return nil, info, fmt.Errorf("no data for filter %s in [%v, %v): %w", filter.Key(), from, to, ErrNoData)
	}
	return out, info, nil
}

// FoldHotspots ranks a multi-node union of tree partials, byte-equal to
// Store.Hotspots.
func FoldHotspots(parts []SeriesPartial, from, to time.Time, filter Labels, metric string, top int) ([]Hotspot, AggregateInfo, error) {
	if metric == "" {
		metric = cct.MetricGPUTime
	}
	tree, info, err := FoldAggregate(parts, from, to, filter)
	if err != nil {
		return nil, info, err
	}
	rows, err := rankHotspots(tree, metric, top)
	if err != nil {
		return nil, info, err
	}
	return rows, info, nil
}

// FoldTopK ranks a multi-node union of aggregate partials, byte-equal to
// Store.TopK.
func FoldTopK(parts []SeriesPartial, from, to time.Time, filter Labels, metric string, k int) ([]TopKRow, AggregateInfo, error) {
	if metric == "" {
		metric = cct.MetricGPUTime
	}
	sortPartials(parts)
	acc := newTopKAcc(metric)
	info, err := foldPartialInfo(parts, func(p *SeriesPartial) error {
		if p.Agg == nil {
			return fmt.Errorf("profstore: partial %s@%d carries no aggregate", p.Key, p.Bucket.StartNS)
		}
		acc.addSeries(p.Key, p.Agg.toSeriesAgg())
		return nil
	})
	if err != nil {
		return nil, info, err
	}
	if info.Windows == 0 {
		return nil, info, fmt.Errorf("no data for filter %s in [%v, %v): %w", filter.Key(), from, to, ErrNoData)
	}
	rows, err := acc.finish(k)
	if err != nil {
		return nil, info, err
	}
	return rows, info, nil
}

// FoldSearch ranks a multi-node union of aggregate partials, byte-equal to
// Store.Search. The coordinator folds without the inverted index — the index
// only prunes work, never changes results.
func FoldSearch(parts []SeriesPartial, from, to time.Time, filter Labels, frame, metric string, limit int) ([]SearchRow, AggregateInfo, error) {
	if metric == "" {
		metric = cct.MetricGPUTime
	}
	sortPartials(parts)
	acc := newSearchAcc(frame, metric)
	info, err := foldPartialInfo(parts, func(p *SeriesPartial) error {
		if p.Agg == nil {
			return fmt.Errorf("profstore: partial %s@%d carries no aggregate", p.Key, p.Bucket.StartNS)
		}
		acc.addSeries(p.Key, p.Labels, p.Agg.toSeriesAgg())
		return nil
	})
	if err != nil {
		return nil, info, err
	}
	if info.Windows == 0 {
		return nil, info, fmt.Errorf("no data for filter %s in [%v, %v): %w", filter.Key(), from, to, ErrNoData)
	}
	rows, err := acc.finish(limit)
	if err != nil {
		return nil, info, err
	}
	return rows, info, nil
}

// DiffPartials is one node's export for one diff instant: whether each tier
// holds a bucket containing the instant, and the filter-matched series of
// each. The coordinator needs both tiers because resolution — fine preferred
// over coarse — is a cluster-wide decision: one node still holding a fine
// window pins the whole diff to the fine tier, exactly as one shard does on
// a single node.
type DiffPartials struct {
	FineStartNS   int64           `json:"fine_start_ns"`
	CoarseStartNS int64           `json:"coarse_start_ns"`
	FineExists    bool            `json:"fine_exists"`
	CoarseExists  bool            `json:"coarse_exists"`
	Fine          []SeriesPartial `json:"fine,omitempty"`
	Coarse        []SeriesPartial `json:"coarse,omitempty"`
}

// DiffPartials exports this store's contribution to one diff instant.
func (s *Store) DiffPartials(ctx context.Context, t time.Time, filter Labels) (DiffPartials, error) {
	out := DiffPartials{
		FineStartNS:   t.Truncate(s.cfg.Window).UnixNano(),
		CoarseStartNS: t.Truncate(s.cfg.coarse()).UnixNano(),
	}
	var encErr error
	s.rlockAll()
	collect := func(coarse bool, startNS int64) (bool, []SeriesPartial) {
		var wins []*window
		for _, sh := range s.shards {
			m := sh.fine
			if coarse {
				m = sh.coarse
			}
			if w := m[startNS]; w != nil {
				wins = append(wins, w)
			}
		}
		if len(wins) == 0 {
			return false, nil
		}
		bucket := PartialBucket{Coarse: coarse, StartNS: startNS, DurNS: int64(wins[0].dur)}
		merged := mergeSeriesViews(wins)
		var parts []SeriesPartial
		for _, k := range sortedKeys(merged) {
			ser := merged[k]
			if !ser.labels.Matches(filter) {
				continue
			}
			p, err := makePartial(bucket, k, ser, PartialTrees)
			if err != nil {
				encErr = err
				return true, nil
			}
			parts = append(parts, p)
		}
		return true, parts
	}
	out.FineExists, out.Fine = collect(false, out.FineStartNS)
	if encErr == nil {
		out.CoarseExists, out.Coarse = collect(true, out.CoarseStartNS)
	}
	s.runlockAll()
	if encErr != nil {
		return DiffPartials{}, encErr
	}
	if err := ctx.Err(); err != nil {
		return DiffPartials{}, fmt.Errorf("profstore: partials canceled: %w", err)
	}
	return out, nil
}

// FoldDiffSide resolves and merges one side of a cluster diff: fine tier if
// any node holds a fine bucket containing t, else coarse, else the same
// "no window contains" error a single node reports. The caller wraps the
// error with the before/after prefix, mirroring Store.Diff.
func FoldDiffSide(parts []DiffPartials, t time.Time, filter Labels) (*cct.Tree, error) {
	coarse := true
	var series []SeriesPartial
	exists := false
	for _, p := range parts {
		if p.FineExists {
			coarse = false
		}
	}
	for _, p := range parts {
		if coarse {
			exists = exists || p.CoarseExists
			series = append(series, p.Coarse...)
		} else {
			exists = exists || p.FineExists
			series = append(series, p.Fine...)
		}
	}
	if !exists {
		return nil, fmt.Errorf("no window contains %v: %w", t, ErrNoData)
	}
	if len(series) == 0 {
		return nil, fmt.Errorf("no series match %s in window %v: %w",
			filter.Key(), time.Unix(0, series0Start(parts, coarse)), ErrNoData)
	}
	sortPartials(series)
	out := cct.New()
	for i := range series {
		tree, err := series[i].DecodeTree()
		if err != nil {
			return nil, err
		}
		cct.Merge(out, tree)
	}
	return out, nil
}

func series0Start(parts []DiffPartials, coarse bool) int64 {
	for _, p := range parts {
		if coarse && p.CoarseExists {
			return p.CoarseStartNS
		}
		if !coarse && p.FineExists {
			return p.FineStartNS
		}
	}
	return 0
}

// BuildDiff assembles the signed comparison of two folded sides, byte-equal
// to Store.Diff over the same data.
func BuildDiff(beforeTree, afterTree *cct.Tree, metric string, top int) (*DiffResult, error) {
	if metric == "" {
		metric = cct.MetricGPUTime
	}
	return buildDiffResult(beforeTree, afterTree, metric, top)
}

// SortFindings orders a multi-node union of findings in the canonical
// /regressions order — (window start, series, frame, direction) — and
// applies limit by keeping the newest, exactly like Store.Regressions.
func SortFindings(fs []trend.Finding, limit int) []trend.Finding {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.AfterUnixNano != b.AfterUnixNano {
			return a.AfterUnixNano < b.AfterUnixNano
		}
		if a.Series != b.Series {
			return a.Series < b.Series
		}
		if a.Frame != b.Frame {
			return a.Frame < b.Frame
		}
		return a.Direction > b.Direction
	})
	if limit > 0 && len(fs) > limit {
		fs = fs[len(fs)-limit:]
	}
	return fs
}

// ImportPartials installs handed-off series with replace semantics — a
// re-delivered import overwrites rather than double-counts, so a crashed
// handoff can simply re-run — and adopts the carried trend state (watermark
// rules make that idempotent too). It returns how many series-buckets were
// installed.
func (s *Store) ImportPartials(set PartialSet) (int, error) {
	n := 0
	for i := range set.Series {
		p := &set.Series[i]
		tree, err := p.DecodeTree()
		if err != nil {
			return n, err
		}
		sh := s.shardFor(p.Key)
		sh.mu.Lock()
		sh.replaceSeriesLocked(p.Bucket.StartNS, p.Bucket.DurNS, p.Bucket.Coarse, p.Key, p.Labels, tree, p.Profiles)
		sh.mu.Unlock()
		n++
	}
	if len(set.Trend) > 0 && !s.cfg.Trend.Disabled {
		states, err := trend.DecodeState(set.Trend)
		if err != nil {
			return n, fmt.Errorf("profstore: import trend state: %w", err)
		}
		for _, key := range sortedKeys(states) {
			sh := s.shardFor(key)
			sh.mu.Lock()
			sh.tracker.Adopt(key, states[key])
			sh.mu.Unlock()
		}
	}
	return n, nil
}

// replaceSeriesLocked installs one handed-off series tree, overwriting any
// existing series of the same key in the bucket (adoptSeriesLocked's merge
// semantics would double-count a re-delivered handoff). Callers hold sh.mu
// exclusively.
func (sh *shard) replaceSeriesLocked(startNS, durNS int64, coarse bool, key string, labels Labels, tree *cct.Tree, profiles int) {
	m := sh.fine
	if coarse {
		m = sh.coarse
	}
	w := m[startNS]
	if w == nil {
		w = &window{
			start:  time.Unix(0, startNS),
			dur:    time.Duration(durNS),
			series: make(map[string]*series),
		}
		m[startNS] = w
	}
	w.series[key] = &series{labels: labels, tree: tree, profiles: profiles}
	sh.gens[winKey{startNS, coarse}]++
}

// DropSeries removes every series whose key drop accepts, from both tiers of
// every shard, along with its trend state — the old owner's cleanup after a
// handoff commits. Emptied windows are deleted. Frame-index postings stay
// (they are over-approximate, hence sound); WAL records of dropped series
// are neutralized by the snapshot the caller takes right after. It returns
// how many series-buckets were removed.
func (s *Store) DropSeries(drop func(key string) bool) int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, coarse := range []bool{false, true} {
			m := sh.fine
			if coarse {
				m = sh.coarse
			}
			for _, start := range sortedKeys(m) {
				w := m[start]
				for _, key := range sortedKeys(w.series) {
					if !drop(key) {
						continue
					}
					delete(w.series, key)
					n++
					sh.gens[winKey{start, coarse}]++
					if sh.tracker != nil {
						sh.tracker.Remove(key)
					}
				}
				if len(w.series) == 0 {
					delete(m, start)
					delete(sh.gens, winKey{start, coarse})
				}
			}
		}
		sh.mu.Unlock()
	}
	return n
}
