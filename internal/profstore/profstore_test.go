package profstore

import (
	"context"
	"errors"
	"math"
	"sort"
	"sync"
	"testing"
	"time"

	"deepcontext/internal/cct"
	"deepcontext/internal/profiler"
)

// fakeClock is a mutex-guarded manual clock for deterministic windowing.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock(t time.Time) *fakeClock { return &fakeClock{t: t} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// base is aligned to every window width the tests use.
var base = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// synthProfile builds a small deterministic profile. pcBase shifts kernel
// program counters (normalization must unify them across "runs"); scale
// scales every metric.
func synthProfile(workload, vendor, fw string, pcBase uint64, scale float64) *profiler.Profile {
	tree := cct.New()
	gid := tree.MetricID(cct.MetricGPUTime)
	cid := tree.MetricID(cct.MetricCPUTime)
	conv := tree.InsertPath([]cct.Frame{
		cct.PythonFrame("train.py", 10, "main"),
		cct.OperatorFrame("aten::conv2d"),
		{Kind: cct.KindKernel, Name: "gemm", Lib: "[gpu]", PC: pcBase},
	})
	tree.AddMetric(conv, gid, 100*scale)
	relu := tree.InsertPath([]cct.Frame{
		cct.PythonFrame("train.py", 20, "main"),
		cct.OperatorFrame("aten::relu"),
		{Kind: cct.KindKernel, Name: "relu", Lib: "[gpu]", PC: pcBase + 8},
	})
	tree.AddMetric(relu, gid, 40*scale)
	tree.AddMetric(relu.Parent, cid, 7*scale)
	return &profiler.Profile{
		Tree: tree,
		Meta: profiler.Meta{Workload: workload, Vendor: vendor, Framework: fw},
	}
}

func TestIngestWindowingAndHotspots(t *testing.T) {
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Now: clock.Now})

	for i := 0; i < 3; i++ {
		start, err := s.Ingest(synthProfile("UNet", "Nvidia", "pytorch", uint64(0x1000+i*64), 1))
		if err != nil {
			t.Fatal(err)
		}
		if !start.Equal(base) {
			t.Fatalf("window start = %v, want %v", start, base)
		}
	}
	wins := s.Windows()
	if len(wins) != 1 || wins[0].Series != 1 || wins[0].Profiles != 3 {
		t.Fatalf("windows = %+v", wins)
	}

	rows, info, err := s.Hotspots(context.Background(), time.Time{}, time.Time{}, Labels{}, cct.MetricGPUTime, 10)
	if err != nil {
		t.Fatal(err)
	}
	if info.Profiles != 3 || len(info.Series) != 1 {
		t.Fatalf("info = %+v", info)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	// Normalization unified the shifting PCs: 3 profiles × 100 on gemm.
	if rows[0].Label != "gemm" || rows[0].Excl != 300 {
		t.Fatalf("top hotspot = %+v", rows[0])
	}
	if rows[1].Label != "relu" || rows[1].Excl != 120 {
		t.Fatalf("second hotspot = %+v", rows[1])
	}
	if math.Abs(rows[0].Frac-300.0/420.0) > 1e-12 {
		t.Fatalf("frac = %v", rows[0].Frac)
	}
	if rows[0].Rank != 1 || rows[1].Rank != 2 {
		t.Fatalf("ranks = %d, %d", rows[0].Rank, rows[1].Rank)
	}

	// Unknown metric is a typed failure, not empty rows.
	if _, _, err := s.Hotspots(context.Background(), time.Time{}, time.Time{}, Labels{}, "bogus_metric", 10); err == nil {
		t.Fatal("bogus metric should fail")
	}
}

func TestLabelFiltering(t *testing.T) {
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Now: clock.Now})
	mustIngest(t, s, synthProfile("UNet", "Nvidia", "pytorch", 0x10, 1))
	mustIngest(t, s, synthProfile("UNet", "AMD", "pytorch", 0x20, 2))
	mustIngest(t, s, synthProfile("DLRM", "Nvidia", "jax", 0x30, 4))

	total := func(filter Labels) float64 {
		tree, _, err := s.Aggregate(context.Background(), time.Time{}, time.Time{}, filter)
		if err != nil {
			t.Fatal(err)
		}
		id, _ := tree.Schema.Lookup(cct.MetricGPUTime)
		return tree.Root.InclValue(id)
	}
	if got := total(Labels{}); got != 140*(1+2+4) {
		t.Fatalf("unfiltered total = %v", got)
	}
	// Filters are case-insensitive wildcards per field.
	if got := total(Labels{Vendor: "nvidia"}); got != 140*(1+4) {
		t.Fatalf("nvidia total = %v", got)
	}
	if got := total(Labels{Workload: "unet", Vendor: "amd"}); got != 280 {
		t.Fatalf("unet/amd total = %v", got)
	}
	if _, _, err := s.Aggregate(context.Background(), time.Time{}, time.Time{}, Labels{Workload: "nope"}); err == nil {
		t.Fatal("unmatched filter should fail")
	}
}

// The satellite test: many goroutines ingest while queries run, and the
// final aggregate must be equivalent to a serial MergeAll over the same
// (normalized) inputs.
func TestConcurrentIngestMatchesSerialMerge(t *testing.T) {
	const goroutines = 16
	const perGoroutine = 8
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Now: clock.Now})

	inputs := make([]*profiler.Profile, 0, goroutines*perGoroutine)
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perGoroutine; i++ {
			// Distinct PCs per input: normalization must fold them all.
			p := synthProfile("UNet", "Nvidia", "pytorch",
				uint64(0x1000+(g*perGoroutine+i)*32), float64(i%5+1))
			inputs = append(inputs, p)
		}
	}

	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				// Results vary while ingestion races on; only panics and
				// data races (under -race) are failures here.
				s.Hotspots(context.Background(), time.Time{}, time.Time{}, Labels{}, cct.MetricGPUTime, 5)
				s.Windows()
				s.Stats()
			}
		}()
	}

	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < perGoroutine; i++ {
				if _, err := s.Ingest(inputs[g*perGoroutine+i]); err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	writers.Wait()
	close(done)
	readers.Wait()

	got, info, err := s.Aggregate(context.Background(), time.Time{}, time.Time{}, Labels{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Profiles != len(inputs) {
		t.Fatalf("profiles = %d, want %d", info.Profiles, len(inputs))
	}
	trees := make([]*cct.Tree, len(inputs))
	for i, p := range inputs {
		trees[i] = cct.NormalizeAddresses(p.Tree)
	}
	want := cct.MergeAll(trees...)
	if err := cct.Equivalent(got, want); err != nil {
		t.Fatalf("concurrent aggregate differs from serial MergeAll: %v", err)
	}
	if st := s.Stats(); st.Ingested != int64(len(inputs)) {
		t.Fatalf("stats.Ingested = %d", st.Ingested)
	}
}

func TestCompactionConservesTotalsAndDropsExpired(t *testing.T) {
	clock := newClock(base)
	s := New(Config{
		Window:          time.Minute,
		Retention:       2,
		CoarseFactor:    3,
		CoarseRetention: 2,
		Now:             clock.Now,
	})
	for i := 0; i < 3; i++ {
		mustIngest(t, s, synthProfile("UNet", "Nvidia", "pytorch", uint64(0x100*i), float64(i+1)))
		clock.Advance(time.Minute)
	}
	totalOf := func() float64 {
		tree, _, err := s.Aggregate(context.Background(), time.Time{}, time.Time{}, Labels{})
		if err != nil {
			t.Fatal(err)
		}
		id, _ := tree.Schema.Lookup(cct.MetricGPUTime)
		return tree.Root.InclValue(id)
	}
	before := totalOf()
	if before != 140*(1+2+3) {
		t.Fatalf("pre-compaction total = %v", before)
	}

	// The clock is at +3m, so the retention horizon is +1m: only the +0m
	// window is past it and folds into the coarse bucket starting at +0m;
	// +1m and +2m stay fine.
	folded, dropped := s.CompactNow()
	if folded != 1 || dropped != 0 {
		t.Fatalf("folded=%d dropped=%d", folded, dropped)
	}
	st := s.Stats()
	if st.FineWindows != 2 || st.CoarseWindows != 1 {
		t.Fatalf("stats after compaction = %+v", st)
	}
	if after := totalOf(); after != before {
		t.Fatalf("compaction changed total: %v -> %v", before, after)
	}

	// Far in the future everything folds and then ages out entirely.
	clock.Advance(24 * time.Hour)
	s.CompactNow()
	s.CompactNow() // second pass drops coarse buckets created by the first
	st = s.Stats()
	if st.FineWindows != 0 || st.CoarseWindows != 0 {
		t.Fatalf("store not empty after retention: %+v", st)
	}
	if _, _, err := s.Aggregate(context.Background(), time.Time{}, time.Time{}, Labels{}); err == nil {
		t.Fatal("empty store should fail aggregate")
	}
}

// diffRowKey identifies a diff row independent of ordering among equal
// magnitudes.
type diffRowKey struct {
	label         string
	delta, before float64
	after         float64
}

// The acceptance check: a /diff of two windows must match what cmd/dcdiff
// computes for the same profiles — normalize each side, cct.Diff(context.Background(), after,
// before), rank changed contexts by |delta| — up to child order.
func TestDiffMatchesDcdiffSemantics(t *testing.T) {
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Now: clock.Now})

	beforeP := synthProfile("UNet", "Nvidia", "pytorch", 0x9000, 2)
	afterP := synthProfile("UNet", "Nvidia", "pytorch", 0x5000, 3)
	// Give the after run an extra context so structure differs too.
	gid, _ := afterP.Tree.Schema.Lookup(cct.MetricGPUTime)
	extra := afterP.Tree.InsertPath([]cct.Frame{cct.OperatorFrame("aten::extra")})
	afterP.Tree.AddMetric(extra, gid, 55)

	mustIngest(t, s, beforeP)
	clock.Advance(time.Minute)
	mustIngest(t, s, afterP)

	res, err := s.Diff(context.Background(), base, base.Add(time.Minute), Labels{}, cct.MetricGPUTime, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: dcdiff's computation over the same two profiles.
	bTree := cct.NormalizeAddresses(beforeP.Tree)
	aTree := cct.NormalizeAddresses(afterP.Tree)
	refDiff := cct.Diff(aTree, bTree)
	refID, _ := refDiff.Schema.Lookup(cct.MetricGPUTime)
	want := map[diffRowKey]bool{}
	refDiff.Visit(func(n *cct.Node) {
		if d := n.ExclValue(refID); d != 0 && n.Kind != cct.KindRoot {
			want[diffRowKey{label: n.Label(), delta: d}] = true
		}
	})
	got := map[diffRowKey]bool{}
	for _, r := range res.Rows {
		got[diffRowKey{label: r.Label, delta: r.Delta}] = true
	}
	if len(got) != len(want) {
		t.Fatalf("row sets differ: got %v want %v", got, want)
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing row %+v (got %v)", k, got)
		}
	}

	bID, _ := bTree.Schema.Lookup(cct.MetricGPUTime)
	aID, _ := aTree.Schema.Lookup(cct.MetricGPUTime)
	if res.BeforeTotal != bTree.Root.InclValue(bID) || res.AfterTotal != aTree.Root.InclValue(aID) {
		t.Fatalf("totals = %v/%v", res.BeforeTotal, res.AfterTotal)
	}
	if res.Net != res.AfterTotal-res.BeforeTotal {
		t.Fatalf("net = %v", res.Net)
	}
	// Rows are ranked by magnitude, like dcdiff's table.
	if !sort.SliceIsSorted(res.Rows, func(i, j int) bool {
		return math.Abs(res.Rows[i].Delta) > math.Abs(res.Rows[j].Delta)
	}) {
		t.Fatalf("rows not ranked by |delta|: %+v", res.Rows)
	}
	// The per-side values come from the matching calling context.
	for _, r := range res.Rows {
		if r.Label == "gemm" {
			if r.Before != 200 || r.After != 300 || r.Delta != 100 {
				t.Fatalf("gemm row = %+v", r)
			}
		}
		if r.Label == "aten::extra" {
			if r.Before != 0 || r.After != 55 || r.Delta != 55 {
				t.Fatalf("extra row = %+v", r)
			}
		}
	}
}

// A diff instant whose fine window has been compacted resolves to the
// coarse bucket — and must read only that bucket, not every fine window
// sharing the coarse range (which could include the other diff side).
func TestDiffCoarseFallbackReadsOnlyThatBucket(t *testing.T) {
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Retention: 2, CoarseFactor: 10, Now: clock.Now})
	mustIngest(t, s, synthProfile("UNet", "Nvidia", "pytorch", 0x1, 1))
	clock.Advance(3 * time.Minute)
	s.CompactNow() // folds the base window into coarse[base]
	// A newer fine window inside the same coarse range [base, base+10m).
	mustIngest(t, s, synthProfile("UNet", "Nvidia", "pytorch", 0x2, 5))
	if st := s.Stats(); st.FineWindows != 1 || st.CoarseWindows != 1 {
		t.Fatalf("setup stats = %+v", st)
	}

	res, err := s.Diff(context.Background(), base, base.Add(3*time.Minute), Labels{}, cct.MetricGPUTime, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The before side is the coarse bucket alone (scale 1), not coarse
	// plus the after window's fine data.
	if res.BeforeTotal != 140 || res.AfterTotal != 700 {
		t.Fatalf("totals = %v/%v, want 140/700", res.BeforeTotal, res.AfterTotal)
	}
	if res.Net != 560 {
		t.Fatalf("net = %v", res.Net)
	}
}

func TestTypedQueryErrors(t *testing.T) {
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Now: clock.Now})
	if _, _, err := s.Aggregate(context.Background(), time.Time{}, time.Time{}, Labels{}); !errors.Is(err, ErrNoData) {
		t.Fatalf("empty store: err = %v, want ErrNoData", err)
	}
	mustIngest(t, s, synthProfile("UNet", "Nvidia", "pytorch", 0x1, 1))
	if _, _, err := s.Hotspots(context.Background(), time.Time{}, time.Time{}, Labels{}, "bogus", 5); !errors.Is(err, ErrUnknownMetric) {
		t.Fatalf("bogus metric: err = %v, want ErrUnknownMetric", err)
	}
	if _, err := s.Diff(context.Background(), base, base.Add(time.Hour), Labels{}, cct.MetricGPUTime, 0); !errors.Is(err, ErrNoData) {
		t.Fatalf("missing window: err = %v, want ErrNoData", err)
	}
}

func TestDiffMissingWindowFails(t *testing.T) {
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Now: clock.Now})
	mustIngest(t, s, synthProfile("UNet", "Nvidia", "pytorch", 0x1, 1))
	if _, err := s.Diff(context.Background(), base.Add(time.Hour), base, Labels{}, cct.MetricGPUTime, 0); err == nil {
		t.Fatal("diff against an absent window should fail")
	}
}

func TestCompactorLifecycle(t *testing.T) {
	s := New(Config{Window: 10 * time.Millisecond})
	s.StartCompactor(time.Millisecond)
	mustIngest(t, s, synthProfile("UNet", "Nvidia", "pytorch", 0x1, 1))
	time.Sleep(5 * time.Millisecond)
	s.Close() // must stop the goroutine and not deadlock
	s.Close() // idempotent
}

func mustIngest(t *testing.T, s *Store, p *profiler.Profile) {
	t.Helper()
	if _, err := s.Ingest(p); err != nil {
		t.Fatal(err)
	}
}
