package profstore

import (
	"container/list"
	"sync"

	"deepcontext/internal/telemetry"
)

// dep is one generation stamp a cached result depends on: bucket key.start
// of shard dep.shard was at generation gen when the result was computed.
type dep struct {
	shard int
	key   winKey
	gen   uint64
}

// queryCache memoizes Hotspots, Diff and Aggregate results behind the
// shards. Entries are never pushed out by writes; instead each entry
// carries the generation stamps of every bucket it read (captured under the
// same all-shard read lock as the computation), and a lookup re-derives the
// current stamp set and serves the entry only on an exact match. Ingest,
// compaction and retention each bump or remove stamps, so any mutation of a
// (shard, window) a result depends on — including a bucket appearing or
// vanishing inside the queried range — misses and recomputes. Validation
// is O(buckets in range), orders of magnitude cheaper than re-folding
// merged CCTs.
//
// Cached values (hotspot rows, diff results, aggregate trees) are shared
// between callers and must be treated as read-only.
type queryCache struct {
	max int

	mu      sync.Mutex
	entries map[string]*cacheEntry
	lru     *list.List // front = most recently served

	// Effectiveness counters are telemetry handles (shared with /metrics
	// and Stats — one source of truth); recording stays off the cache
	// mutex.
	hits          *telemetry.Counter
	misses        *telemetry.Counter
	invalidations *telemetry.Counter
	evictions     *telemetry.Counter
}

type cacheEntry struct {
	qkey string
	// shape pins query-resolution outcomes that deps alone cannot (the
	// fine-vs-coarse buckets a diff instant resolved to); "" for range
	// queries, whose bucket set is fully carried by deps.
	shape string
	deps  []dep
	value any
	elem  *list.Element
}

// newQueryCache returns nil when max <= 0 — a nil *queryCache is a valid,
// permanently-disabled cache (every method no-ops).
func newQueryCache(max int, met *storeMetrics) *queryCache {
	if max <= 0 {
		return nil
	}
	return &queryCache{
		max:           max,
		entries:       make(map[string]*cacheEntry),
		lru:           list.New(),
		hits:          met.cacheHits,
		misses:        met.cacheMisses,
		invalidations: met.cacheInvalidations,
		evictions:     met.cacheEvictions,
	}
}

// serve returns the cached value for qkey when its recorded stamps match
// deps exactly. deps must have been computed under the all-shard read lock
// still (or just) held by the caller, so a hit is indistinguishable from
// recomputing at that lock point.
func (c *queryCache) serve(qkey, shape string, deps []dep) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	ent, ok := c.entries[qkey]
	if ok && ent.shape == shape && depsEqual(ent.deps, deps) {
		c.lru.MoveToFront(ent.elem)
		c.mu.Unlock()
		c.hits.Inc()
		return ent.value, true
	}
	c.mu.Unlock()
	if ok {
		c.invalidations.Inc()
	}
	c.misses.Inc()
	return nil, false
}

// put records a freshly computed value under qkey, replacing any stale
// entry and evicting the least recently served entry beyond the cap.
func (c *queryCache) put(qkey, shape string, deps []dep, value any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ent, ok := c.entries[qkey]; ok {
		ent.shape, ent.deps, ent.value = shape, deps, value
		c.lru.MoveToFront(ent.elem)
		return
	}
	ent := &cacheEntry{qkey: qkey, shape: shape, deps: deps, value: value}
	ent.elem = c.lru.PushFront(ent)
	c.entries[qkey] = ent
	for len(c.entries) > c.max {
		oldest := c.lru.Back()
		old := oldest.Value.(*cacheEntry)
		c.lru.Remove(oldest)
		delete(c.entries, old.qkey)
		c.evictions.Inc()
	}
}

func depsEqual(a, b []dep) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CacheStats reports query-cache occupancy and effectiveness since boot.
type CacheStats struct {
	Entries int `json:"entries"`
	Max     int `json:"max"`
	// Hits are queries answered from the cache (stamps matched).
	Hits int64 `json:"hits"`
	// Misses are queries that had to fold trees (no entry, or stale).
	Misses int64 `json:"misses"`
	// Invalidations are the subset of misses where an entry existed but a
	// depended-on (shard, window) had mutated since it was cached.
	Invalidations int64 `json:"invalidations"`
	Evictions     int64 `json:"evictions"`
}

func (c *queryCache) stats() *CacheStats {
	if c == nil {
		return nil
	}
	return &CacheStats{
		Entries:       c.len(),
		Max:           c.max,
		Hits:          c.hits.Value(),
		Misses:        c.misses.Value(),
		Invalidations: c.invalidations.Value(),
		Evictions:     c.evictions.Value(),
	}
}

// len reports current occupancy (0 for a nil/disabled cache).
func (c *queryCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
