package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"deepcontext/internal/profdb"
	"deepcontext/internal/profiler"
	"deepcontext/internal/telemetry"
)

const (
	walDirName   = "wal"
	walSuffix    = ".wal"
	segMagic     = "DEEPCONTEXT-WAL-1\n"
	frameHdrSize = 8 // uint32 length + uint32 CRC
	// maxRecordBytes bounds one WAL record body on replay; it mirrors the
	// profdb ingest cap so a corrupted length field cannot drive an
	// arbitrarily large allocation.
	maxRecordBytes = profdb.DefaultMaxBytes
)

// WAL is the append-only profile log of one data directory, rotated per
// window bucket. It is safe for concurrent use, but the store serializes
// appends under its own lock anyway so that record order matches merge
// order (which is what makes replay byte-exact).
type WAL struct {
	dir string // <dataDir>/wal

	mu       sync.Mutex
	curStart int64
	f        *os.File
	size     int64
	// tornStart marks a bucket whose segment tore mid-append and could
	// not be truncated back to a frame boundary (e.g. EIO on both the
	// write and the repair): further appends to it would land beyond the
	// tear and be dropped by replay, so they are refused instead.
	tornStart int64
	met       WALMetrics
}

// WALMetrics holds optional telemetry hooks for the append and fsync
// paths. Histograms are observed only when non-nil (skipping the clock
// reads entirely when timing is off); the fsync counter is nil-safe.
type WALMetrics struct {
	// AppendSeconds observes each Append, including any segment rotation
	// (and its fsync) the append triggered — rotation stalls are exactly
	// what an append-latency histogram must not hide.
	AppendSeconds *telemetry.Histogram
	// FsyncSeconds observes each segment fsync (rotation, Sync, Close).
	FsyncSeconds *telemetry.Histogram
	// Fsyncs counts segment fsyncs.
	Fsyncs *telemetry.Counter
}

// SetMetrics installs telemetry hooks. Call before the first Append;
// not safe to call concurrently with WAL use.
func (w *WAL) SetMetrics(m WALMetrics) {
	w.mu.Lock()
	w.met = m
	w.mu.Unlock()
}

// syncLocked fsyncs f under the telemetry hooks. Callers hold w.mu.
func (w *WAL) syncLocked(f *os.File) error {
	if w.met.FsyncSeconds == nil {
		w.met.Fsyncs.Inc()
		return f.Sync()
	}
	t0 := time.Now()
	err := f.Sync()
	w.met.FsyncSeconds.Observe(time.Since(t0))
	w.met.Fsyncs.Inc()
	return err
}

// OpenWAL opens (creating if needed) the WAL under dataDir.
func OpenWAL(dataDir string) (*WAL, error) {
	dir := filepath.Join(dataDir, walDirName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: open wal: %w", err)
	}
	return &WAL{dir: dir, curStart: -1, tornStart: -1}, nil
}

func segName(start int64) string { return strconv.FormatInt(start, 10) + walSuffix }

func parseSegName(name string) (int64, bool) {
	if !strings.HasSuffix(name, walSuffix) {
		return 0, false
	}
	n, err := strconv.ParseInt(strings.TrimSuffix(name, walSuffix), 10, 64)
	return n, err == nil
}

// Append frames one encoded profile (see EncodeProfile) into the segment
// for the window bucket starting at start (unix nanoseconds), rotating
// segments when the bucket changes. tstamp is the ingest wall time in unix
// nanoseconds, restored as the store's last-ingest mark on replay. It
// returns the number of bytes written.
//
// Records are not fsynced individually: a process crash loses nothing (the
// page cache survives the process), and the OS-crash window is bounded by
// the snapshot interval. Rotation and Sync fsync the segment.
func (w *WAL) Append(start, tstamp int64, payload []byte) (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.met.AppendSeconds != nil {
		t0 := time.Now()
		defer func() { w.met.AppendSeconds.Observe(time.Since(t0)) }()
	}
	if start == w.tornStart {
		return 0, fmt.Errorf("persist: wal segment %d is torn beyond repair; refusing append", start)
	}
	if w.f == nil || start != w.curStart {
		if err := w.rotateLocked(start); err != nil {
			return 0, err
		}
	}
	// One frame, one Write call: header, timestamp, payload. A failed or
	// partial write is rolled back by truncating to the last frame
	// boundary, so acknowledged records never land beyond a tear (replay
	// drops everything after the first broken frame).
	rec := make([]byte, frameHdrSize+8+len(payload))
	body := rec[frameHdrSize:]
	binary.LittleEndian.PutUint64(body, uint64(tstamp))
	copy(body[8:], payload)
	binary.LittleEndian.PutUint32(rec[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(body))
	if _, err := w.f.Write(rec); err != nil {
		if terr := w.f.Truncate(w.size); terr != nil {
			// Could not repair in place: poison the bucket so no later
			// append is acknowledged into the unreadable tail.
			w.f.Close()
			w.f, w.curStart, w.tornStart = nil, -1, start
			return 0, fmt.Errorf("persist: wal append: %v (tail repair failed: %v)", err, terr)
		}
		return 0, fmt.Errorf("persist: wal append: %w", err)
	}
	n := int64(len(rec))
	w.size += n
	return n, nil
}

// rotateLocked syncs and closes the open segment and opens (or resumes)
// the one for bucket start. Resuming an existing segment — a boot after a
// crash, typically — first scans it and truncates any torn tail back to
// the last valid frame, so records appended from now on stay reachable by
// replay instead of hiding behind undecodable bytes.
func (w *WAL) rotateLocked(start int64) error {
	if w.f != nil {
		w.syncLocked(w.f)
		w.f.Close()
		w.f = nil
	}
	path := filepath.Join(w.dir, segName(start))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("persist: wal rotate: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("persist: wal rotate: %w", err)
	}
	size := st.Size()
	switch {
	case size == 0:
		if _, err := f.WriteString(segMagic); err != nil {
			f.Close()
			return fmt.Errorf("persist: wal header: %w", err)
		}
		size = int64(len(segMagic))
	case size > int64(len(segMagic)):
		valid := validSegmentLength(path)
		if valid < size {
			if err := f.Truncate(valid); err != nil {
				f.Close()
				w.tornStart = start
				return fmt.Errorf("persist: wal resume: cannot repair torn tail of %s: %w", segName(start), err)
			}
			size = valid
		}
		if size < int64(len(segMagic)) {
			// The whole segment was garbage (bad magic): it was reset to
			// empty above, so give it a fresh header.
			if _, err := f.WriteString(segMagic); err != nil {
				f.Close()
				return fmt.Errorf("persist: wal header: %w", err)
			}
			size = int64(len(segMagic))
		}
	default:
		// A bare or short header: rewrite the segment from scratch —
		// there is nothing decodable to preserve.
		if err := f.Truncate(0); err != nil {
			f.Close()
			w.tornStart = start
			return fmt.Errorf("persist: wal resume: cannot reset short segment %s: %w", segName(start), err)
		}
		if _, err := f.WriteString(segMagic); err != nil {
			f.Close()
			return fmt.Errorf("persist: wal header: %w", err)
		}
		size = int64(len(segMagic))
	}
	w.f, w.curStart, w.size = f, start, size
	return nil
}

// validSegmentLength scans a segment and returns the byte offset just past
// the last intact frame (header and CRC both good). An unreadable or
// bad-magic segment scans to zero, which resume rewrites wholesale — its
// content was already lost to replay anyway.
func validSegmentLength(path string) int64 {
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != segMagic {
		return 0
	}
	valid := int64(len(segMagic))
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		var hdr [frameHdrSize]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return valid
		}
		length := binary.LittleEndian.Uint32(hdr[0:])
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if length < 8 || int64(length) > maxRecordBytes {
			return valid
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(r, body); err != nil {
			return valid
		}
		if crc32.ChecksumIEEE(body) != sum {
			return valid
		}
		valid += int64(frameHdrSize) + int64(length)
	}
}

// Sync fsyncs the open segment, if any.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	return w.syncLocked(w.f)
}

// Close syncs and closes the open segment.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.syncLocked(w.f)
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// segments lists on-disk segments sorted by window start.
func (w *WAL) segments() ([]int64, error) {
	ents, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, err
	}
	var out []int64
	for _, e := range ents {
		if start, ok := parseSegName(e.Name()); ok && !e.IsDir() {
			out = append(out, start)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Offsets reports the current byte size of every segment, the watermark set
// a snapshot records: replay resumes each segment from its snapshotted
// size. The caller must ensure no appends run concurrently (the store holds
// its write-blocking lock while capturing a snapshot).
func (w *WAL) Offsets() (map[int64]int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	starts, err := w.segments()
	if err != nil {
		return nil, err
	}
	out := make(map[int64]int64, len(starts))
	for _, start := range starts {
		if start == w.curStart && w.f != nil {
			out[start] = w.size
			continue
		}
		st, err := os.Stat(filepath.Join(w.dir, segName(start)))
		if err != nil {
			return nil, err
		}
		out[start] = st.Size()
	}
	return out, nil
}

// Prune deletes segments fully covered by a snapshot: present in covered
// with an offset at or beyond the segment's current size, and not the
// segment currently open for appends. Only the current bucket's segment
// ever grows (time moves forward), so a frozen fully-covered segment is
// safe to drop. Returns how many were removed.
func (w *WAL) Prune(covered map[int64]int64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	starts, err := w.segments()
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, start := range starts {
		off, ok := covered[start]
		if !ok || (start == w.curStart && w.f != nil) {
			continue
		}
		path := filepath.Join(w.dir, segName(start))
		st, err := os.Stat(path)
		if err != nil || off < st.Size() {
			continue
		}
		if err := os.Remove(path); err == nil {
			removed++
		}
	}
	return removed, nil
}

// PruneRange deletes segments whose window start lies in [lo, hi),
// regardless of coverage — used when retention drops a coarse window, so
// the aged-out data cannot resurrect on a WAL-only recovery. Unlike Prune,
// this may retire the segment currently open for appends: its bucket has
// aged past retention, so the clock can never route another append to it
// (the next append rotates to a fresh segment).
func (w *WAL) PruneRange(lo, hi int64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	starts, err := w.segments()
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, start := range starts {
		if start < lo || start >= hi {
			continue
		}
		if start == w.curStart && w.f != nil {
			w.f.Close()
			w.f, w.curStart = nil, -1
		}
		if err := os.Remove(filepath.Join(w.dir, segName(start))); err == nil {
			removed++
		}
	}
	return removed, nil
}

// ReplayStats summarizes one Replay pass.
type ReplayStats struct {
	Segments        int   // segments visited
	Records         int64 // records delivered to the callback
	SkippedRecords  int64 // intact frames whose body failed to decode or apply
	SkippedSegments int   // segments with a bad header (or torn tail, counted once)
	Bytes           int64 // payload bytes replayed
	// Warnings are human-readable skip-and-log lines for the operator.
	Warnings []string
}

// Replay re-reads every segment in window order and calls fn for each
// decodable record beyond the covered watermark (covered may be nil:
// replay everything). A broken frame or CRC ends that segment — an
// append-only file is untrustworthy past a torn write — while an intact
// frame whose profile fails profdb decoding (or whose application returns
// an error) is skipped individually. Neither aborts the replay: recovery
// must never crash on corrupt input.
func (w *WAL) Replay(covered map[int64]int64, fn func(start, tstamp int64, p *profiler.Profile) error) (ReplayStats, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var stats ReplayStats
	starts, err := w.segments()
	if err != nil {
		return stats, err
	}
	for _, start := range starts {
		stats.Segments++
		w.replaySegment(start, covered[start], fn, &stats)
	}
	return stats, nil
}

func (w *WAL) replaySegment(start, offset int64, fn func(start, tstamp int64, p *profiler.Profile) error, stats *ReplayStats) {
	name := segName(start)
	f, err := os.Open(filepath.Join(w.dir, name))
	if err != nil {
		stats.SkippedSegments++
		stats.Warnings = append(stats.Warnings, fmt.Sprintf("wal segment %s: open: %v", name, err))
		return
	}
	defer f.Close()
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != segMagic {
		stats.SkippedSegments++
		stats.Warnings = append(stats.Warnings, fmt.Sprintf("wal segment %s: bad header, skipping segment", name))
		return
	}
	if offset > int64(len(segMagic)) {
		if _, err := f.Seek(offset, io.SeekStart); err != nil {
			stats.SkippedSegments++
			stats.Warnings = append(stats.Warnings, fmt.Sprintf("wal segment %s: seek %d: %v", name, offset, err))
			return
		}
	}
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		var hdr [frameHdrSize]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if !errors.Is(err, io.EOF) {
				stats.SkippedSegments++
				stats.Warnings = append(stats.Warnings, fmt.Sprintf("wal segment %s: torn frame header, dropping tail", name))
			}
			return
		}
		length := binary.LittleEndian.Uint32(hdr[0:])
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if length < 8 || int64(length) > maxRecordBytes {
			stats.SkippedSegments++
			stats.Warnings = append(stats.Warnings, fmt.Sprintf("wal segment %s: implausible record length %d, dropping tail", name, length))
			return
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(r, body); err != nil {
			stats.SkippedSegments++
			stats.Warnings = append(stats.Warnings, fmt.Sprintf("wal segment %s: truncated record, dropping tail", name))
			return
		}
		if crc32.ChecksumIEEE(body) != sum {
			stats.SkippedSegments++
			stats.Warnings = append(stats.Warnings, fmt.Sprintf("wal segment %s: CRC mismatch, dropping tail", name))
			return
		}
		tstamp := int64(binary.LittleEndian.Uint64(body[:8]))
		p, err := DecodeProfile(body[8:])
		if err != nil {
			// Framing is intact, so the next record is trustworthy:
			// skip just this one.
			stats.SkippedRecords++
			stats.Warnings = append(stats.Warnings, fmt.Sprintf("wal segment %s: undecodable record skipped: %v", name, err))
			continue
		}
		if err := fn(start, tstamp, p); err != nil {
			stats.SkippedRecords++
			stats.Warnings = append(stats.Warnings, fmt.Sprintf("wal segment %s: record rejected: %v", name, err))
			continue
		}
		stats.Records++
		stats.Bytes += int64(length) - 8
	}
}
