package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"deepcontext/internal/profdb"
	"deepcontext/internal/profiler"
)

const (
	manifestName    = "MANIFEST.json"
	manifestVersion = 1
	currentName     = "CURRENT"
	snapPrefix      = "snap-"
	snapTmpName     = "snap.tmp"
)

// SeriesState is one label set's merged aggregate inside a window: the
// series key, how many profiles were folded in, and the merged tree carried
// as a profile whose Meta holds the labels.
type SeriesState struct {
	Key      string
	Profiles int
	Profile  *profiler.Profile
}

// WindowState is one retained bucket of a snapshot.
type WindowState struct {
	Start  int64 // unix nanoseconds
	DurNS  int64
	Coarse bool
	Series []SeriesState
}

// State is everything a snapshot persists: the retained windows, the
// store's monotonic counters, the per-segment WAL watermarks the snapshot
// already covers, and the shard's trend-tracker state (an opaque blob the
// trend package encodes/decodes; nil when tracking is disabled or empty).
type State struct {
	CreatedUnixNano    int64
	Ingested           int64
	Compactions        int64
	LastIngestUnixNano int64
	Windows            []WindowState
	WALOffsets         map[int64]int64
	Trend              []byte
	// Index is the shard's fleet-query frame index (an opaque blob the
	// profstore encodes/decodes; nil when the index is disabled or empty).
	Index []byte
}

// manifest is the JSON index of one snapshot directory.
type manifest struct {
	Version            int               `json:"version"`
	CreatedUnixNano    int64             `json:"created_unix_nano"`
	Ingested           int64             `json:"ingested"`
	Compactions        int64             `json:"compactions"`
	LastIngestUnixNano int64             `json:"last_ingest_unix_nano,omitempty"`
	Windows            []manifestWindow  `json:"windows"`
	WAL                []manifestSegment `json:"wal,omitempty"`
	// TrendFile/TrendSHA256 name and checksum the trend-state blob.
	// Optional and additive: snapshots written before trend tracking
	// simply lack them.
	TrendFile   string `json:"trend_file,omitempty"`
	TrendSHA256 string `json:"trend_sha256,omitempty"`
	// IndexFile/IndexSHA256 name and checksum the fleet-query frame index
	// blob; same additive policy as the trend pair.
	IndexFile   string `json:"index_file,omitempty"`
	IndexSHA256 string `json:"index_sha256,omitempty"`
}

type manifestWindow struct {
	File   string         `json:"file"`
	SHA256 string         `json:"sha256"`
	Start  int64          `json:"start_unix_nano"`
	DurNS  int64          `json:"dur_ns"`
	Coarse bool           `json:"coarse,omitempty"`
	Series map[string]int `json:"series"` // series key → profiles folded in
}

type manifestSegment struct {
	Start  int64 `json:"start_unix_nano"`
	Offset int64 `json:"offset"`
}

// Capture is an encoded snapshot not yet on disk. CaptureState runs under
// the store's lock (pure CPU: gob encoding plus hashing); Commit does the
// disk I/O afterwards, outside the lock.
type Capture struct {
	man   manifest
	files []capturedFile
}

type capturedFile struct {
	name string
	data []byte
}

// Info describes a committed snapshot.
type Info struct {
	Dir   string // snapshot directory name (e.g. "snap-3")
	Files int
	Bytes int64
}

func windowFileName(w *WindowState) string {
	kind := "fine"
	if w.Coarse {
		kind = "coarse"
	}
	return fmt.Sprintf("%s-%d.dcp", kind, w.Start)
}

// CaptureState encodes st into an in-memory snapshot: one profdb v2 bundle
// per window (entries named by series key, sorted for determinism) plus the
// manifest with per-file SHA-256 checksums.
func CaptureState(st *State) (*Capture, error) {
	c := &Capture{man: manifest{
		Version:            manifestVersion,
		CreatedUnixNano:    st.CreatedUnixNano,
		Ingested:           st.Ingested,
		Compactions:        st.Compactions,
		LastIngestUnixNano: st.LastIngestUnixNano,
	}}
	for i := range st.Windows {
		w := &st.Windows[i]
		series := append([]SeriesState(nil), w.Series...)
		sort.Slice(series, func(i, j int) bool { return series[i].Key < series[j].Key })
		entries := make([]profdb.Entry, 0, len(series))
		counts := make(map[string]int, len(series))
		for _, s := range series {
			entries = append(entries, profdb.Entry{Name: s.Key, Profile: s.Profile})
			counts[s.Key] = s.Profiles
		}
		if len(entries) == 0 {
			continue // profstore never retains an empty window; don't persist one
		}
		var buf bytes.Buffer
		if err := profdb.SaveBundle(&buf, entries); err != nil {
			return nil, fmt.Errorf("persist: encode window %d: %w", w.Start, err)
		}
		sum := sha256.Sum256(buf.Bytes())
		name := windowFileName(w)
		c.files = append(c.files, capturedFile{name: name, data: buf.Bytes()})
		c.man.Windows = append(c.man.Windows, manifestWindow{
			File: name, SHA256: hex.EncodeToString(sum[:]),
			Start: w.Start, DurNS: w.DurNS, Coarse: w.Coarse, Series: counts,
		})
	}
	if len(st.Trend) > 0 {
		sum := sha256.Sum256(st.Trend)
		c.files = append(c.files, capturedFile{name: "trend.json", data: st.Trend})
		c.man.TrendFile = "trend.json"
		c.man.TrendSHA256 = hex.EncodeToString(sum[:])
	}
	if len(st.Index) > 0 {
		sum := sha256.Sum256(st.Index)
		c.files = append(c.files, capturedFile{name: "index.json", data: st.Index})
		c.man.IndexFile = "index.json"
		c.man.IndexSHA256 = hex.EncodeToString(sum[:])
	}
	segs := make([]manifestSegment, 0, len(st.WALOffsets))
	for start, off := range st.WALOffsets {
		segs = append(segs, manifestSegment{Start: start, Offset: off})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Start < segs[j].Start })
	c.man.WAL = segs
	return c, nil
}

// Commit publishes the capture atomically under dataDir: window files and
// manifest into a temp directory (each fsynced), one rename to
// snap-<seq>, then the CURRENT pointer flips. Older snapshot directories
// are removed once the new one is live.
func (c *Capture) Commit(dataDir string) (Info, error) {
	var info Info
	tmp := filepath.Join(dataDir, snapTmpName)
	if err := os.RemoveAll(tmp); err != nil {
		return info, err
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return info, err
	}
	for _, f := range c.files {
		if err := writeAndSync(filepath.Join(tmp, f.name), f.data); err != nil {
			return info, err
		}
		info.Files++
		info.Bytes += int64(len(f.data))
	}
	manBytes, err := json.MarshalIndent(&c.man, "", "  ")
	if err != nil {
		return info, err
	}
	if err := writeAndSync(filepath.Join(tmp, manifestName), manBytes); err != nil {
		return info, err
	}
	info.Bytes += int64(len(manBytes))
	if err := syncDir(tmp); err != nil {
		return info, err
	}

	seq, err := nextSnapSeq(dataDir)
	if err != nil {
		return info, err
	}
	name := snapPrefix + strconv.FormatInt(seq, 10)
	if err := os.Rename(tmp, filepath.Join(dataDir, name)); err != nil {
		return info, err
	}
	if err := syncDir(dataDir); err != nil {
		return info, err
	}
	if err := writeFileAtomic(filepath.Join(dataDir, currentName), []byte(name+"\n")); err != nil {
		return info, err
	}
	info.Dir = name
	removeOldSnapshots(dataDir, name)
	return info, nil
}

func writeAndSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	serr := f.Sync()
	cerr := f.Close()
	if werr != nil || serr != nil || cerr != nil {
		return fmt.Errorf("persist: write %s: %v %v %v", path, werr, serr, cerr)
	}
	return nil
}

func nextSnapSeq(dataDir string) (int64, error) {
	ents, err := os.ReadDir(dataDir)
	if err != nil {
		return 0, err
	}
	var max int64
	for _, e := range ents {
		if !strings.HasPrefix(e.Name(), snapPrefix) {
			continue
		}
		if n, err := strconv.ParseInt(strings.TrimPrefix(e.Name(), snapPrefix), 10, 64); err == nil && n > max {
			max = n
		}
	}
	return max + 1, nil
}

func removeOldSnapshots(dataDir, keep string) {
	ents, err := os.ReadDir(dataDir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if name == keep || (!strings.HasPrefix(name, snapPrefix) && name != snapTmpName) {
			continue
		}
		os.RemoveAll(filepath.Join(dataDir, name))
	}
}

// ReadSnapshot loads the live snapshot under dataDir, verifying every
// window file against its manifest checksum and decoding through profdb's
// hardened loader. It returns (nil, nil) when no snapshot exists, and an
// error when one exists but cannot be trusted — the caller decides whether
// to fall back to a WAL-only recovery.
func ReadSnapshot(dataDir string) (*State, error) {
	cur, err := os.ReadFile(filepath.Join(dataDir, currentName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	name := strings.TrimSpace(string(cur))
	if !strings.HasPrefix(name, snapPrefix) || strings.ContainsAny(name, "/\\") {
		return nil, fmt.Errorf("persist: CURRENT names invalid snapshot %q", name)
	}
	dir := filepath.Join(dataDir, name)
	manBytes, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("persist: snapshot %s: %w", name, err)
	}
	var man manifest
	if err := json.Unmarshal(manBytes, &man); err != nil {
		return nil, fmt.Errorf("persist: snapshot %s: bad manifest: %w", name, err)
	}
	if man.Version != manifestVersion {
		return nil, fmt.Errorf("persist: snapshot %s: unsupported manifest version %d", name, man.Version)
	}
	st := &State{
		CreatedUnixNano:    man.CreatedUnixNano,
		Ingested:           man.Ingested,
		Compactions:        man.Compactions,
		LastIngestUnixNano: man.LastIngestUnixNano,
		WALOffsets:         make(map[int64]int64, len(man.WAL)),
	}
	for _, seg := range man.WAL {
		st.WALOffsets[seg.Start] = seg.Offset
	}
	if man.TrendFile != "" {
		if strings.ContainsAny(man.TrendFile, "/\\") {
			return nil, fmt.Errorf("persist: snapshot %s: invalid trend file name %q", name, man.TrendFile)
		}
		data, err := os.ReadFile(filepath.Join(dir, man.TrendFile))
		if err != nil {
			return nil, fmt.Errorf("persist: snapshot %s: %w", name, err)
		}
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != man.TrendSHA256 {
			return nil, fmt.Errorf("persist: snapshot %s: checksum mismatch on %s", name, man.TrendFile)
		}
		st.Trend = data
	}
	if man.IndexFile != "" {
		if strings.ContainsAny(man.IndexFile, "/\\") {
			return nil, fmt.Errorf("persist: snapshot %s: invalid index file name %q", name, man.IndexFile)
		}
		data, err := os.ReadFile(filepath.Join(dir, man.IndexFile))
		if err != nil {
			return nil, fmt.Errorf("persist: snapshot %s: %w", name, err)
		}
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != man.IndexSHA256 {
			return nil, fmt.Errorf("persist: snapshot %s: checksum mismatch on %s", name, man.IndexFile)
		}
		st.Index = data
	}
	for _, mw := range man.Windows {
		if strings.ContainsAny(mw.File, "/\\") {
			return nil, fmt.Errorf("persist: snapshot %s: invalid window file name %q", name, mw.File)
		}
		data, err := os.ReadFile(filepath.Join(dir, mw.File))
		if err != nil {
			return nil, fmt.Errorf("persist: snapshot %s: %w", name, err)
		}
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != mw.SHA256 {
			return nil, fmt.Errorf("persist: snapshot %s: checksum mismatch on %s", name, mw.File)
		}
		entries, err := profdb.LoadBundleLimit(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return nil, fmt.Errorf("persist: snapshot %s: %s: %w", name, mw.File, err)
		}
		w := WindowState{Start: mw.Start, DurNS: mw.DurNS, Coarse: mw.Coarse}
		for _, e := range entries {
			profiles, ok := mw.Series[e.Name]
			if !ok {
				return nil, fmt.Errorf("persist: snapshot %s: %s holds series %q absent from manifest", name, mw.File, e.Name)
			}
			w.Series = append(w.Series, SeriesState{Key: e.Name, Profiles: profiles, Profile: e.Profile})
		}
		if len(w.Series) != len(mw.Series) {
			return nil, fmt.Errorf("persist: snapshot %s: %s series count mismatch (file %d, manifest %d)",
				name, mw.File, len(w.Series), len(mw.Series))
		}
		st.Windows = append(st.Windows, w)
	}
	return st, nil
}
