package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

const (
	metaName    = "STORE.json"
	metaVersion = 1
)

// StoreMeta is the layout descriptor at the root of a sharded data
// directory. Its atomic write is the commit point of every layout
// migration: recovery trusts only the shard directories it names
// (shard-0 … shard-<Shards-1>) and treats everything else — legacy
// single-store files, shard directories beyond the count — as migration
// leftovers to be cleaned, never as data.
type StoreMeta struct {
	Version int `json:"version"`
	// Shards is the shard count the directory was last committed with.
	Shards int `json:"shards"`
	// Pending, when non-empty, names the staging subdirectory holding the
	// already-committed new layout mid-swap: a migration writes the full
	// new layout into staging first, then flips authority to it by
	// writing this field, then swaps the staged shard directories into
	// place and clears it. A boot that finds Pending set resumes the swap
	// (it is idempotent: a staged directory still present has not been
	// swapped yet; an absent one has).
	Pending string `json:"pending,omitempty"`
}

// ReadStoreMeta loads the layout descriptor from dataDir. It returns
// (nil, nil) when none exists — a fresh directory or a legacy
// single-store layout.
func ReadStoreMeta(dataDir string) (*StoreMeta, error) {
	b, err := os.ReadFile(filepath.Join(dataDir, metaName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var m StoreMeta
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("persist: bad %s: %w", metaName, err)
	}
	if m.Version != metaVersion {
		return nil, fmt.Errorf("persist: unsupported %s version %d", metaName, m.Version)
	}
	if m.Shards <= 0 {
		return nil, fmt.Errorf("persist: %s names %d shards", metaName, m.Shards)
	}
	return &m, nil
}

// WriteStoreMeta atomically publishes the layout descriptor (temp file +
// rename + directory fsync). Once this returns, a crash at any later point
// of a migration leaves the directory recoverable under the new layout.
func WriteStoreMeta(dataDir string, m StoreMeta) error {
	m.Version = metaVersion
	b, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dataDir, metaName), append(b, '\n'))
}

// LegacyLayoutPresent reports whether dataDir holds single-store (pre-shard)
// persistence artifacts: a root-level WAL directory or snapshot pointer.
func LegacyLayoutPresent(dataDir string) bool {
	if st, err := os.Stat(filepath.Join(dataDir, walDirName)); err == nil && st.IsDir() {
		return true
	}
	_, err := os.Stat(filepath.Join(dataDir, currentName))
	return err == nil
}

// RemoveLegacyLayout deletes single-store artifacts (wal/, snap-*, CURRENT,
// snap.tmp) from dataDir, best-effort: the caller has already committed the
// sharded layout via WriteStoreMeta, so leftovers are ignored by recovery
// and this cleanup can safely retry on the next boot. It returns the first
// error for logging.
func RemoveLegacyLayout(dataDir string) error {
	var firstErr error
	note := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	note(os.RemoveAll(filepath.Join(dataDir, walDirName)))
	note(os.RemoveAll(filepath.Join(dataDir, snapTmpName)))
	if err := os.Remove(filepath.Join(dataDir, currentName)); err != nil && !os.IsNotExist(err) {
		note(err)
	}
	ents, err := os.ReadDir(dataDir)
	if err != nil {
		note(err)
		return firstErr
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), snapPrefix) {
			note(os.RemoveAll(filepath.Join(dataDir, e.Name())))
		}
	}
	return firstErr
}
