// Package persist is the durability layer under internal/profstore: an
// append-only write-ahead log of ingested profiles plus periodic compacted
// snapshots of the merged per-series window trees, both rooted in one data
// directory. The store stays authoritative in memory; this package only
// guarantees that a restarted process can rebuild byte-equal query state.
//
// Layout of a data directory:
//
//	<dir>/
//	  wal/<windowStartUnixNano>.wal   one segment per fine window bucket
//	  snap-<seq>/                     one complete snapshot
//	    MANIFEST.json                 windows, checksums, WAL watermarks
//	    fine-<start>.dcp              profdb v2 bundle, one entry per series
//	    coarse-<start>.dcp
//	  CURRENT                         name of the live snapshot directory
//
// WAL records reuse the profdb binary encoding (the same size-capped,
// fuzz-hardened decoder guards recovery) inside a minimal frame:
// a little-endian uint32 length, a uint32 IEEE CRC of the body, and the
// body itself — an 8-byte ingest timestamp followed by the profdb bytes.
// Segments rotate per window bucket, so pruning a retired window is one
// file deletion, and replay knows each record's bucket from the segment
// name alone (recovery must not re-bucket old profiles by the current
// clock).
//
// Snapshots are written atomically: every window file and the manifest land
// in a temp directory first, each fsynced, then one rename publishes the
// snapshot and a CURRENT pointer file (itself written via temp + rename)
// makes it live. A crash at any point leaves either the old snapshot or the
// new one — never a torn mix. The manifest records a SHA-256 per window
// file and, per WAL segment, the byte offset the snapshot already covers;
// recovery loads the snapshot and replays only the WAL suffix beyond those
// watermarks, so nothing is double-counted.
//
// Corruption policy (the WAL is written without per-record fsync, so an OS
// crash may tear the tail): a record whose frame or CRC is broken ends that
// segment's replay — everything after a torn write is untrustworthy — while
// a record whose frame is intact but whose profdb body fails to decode is
// skipped individually. Both paths are counted and reported, and neither
// ever fails the boot.
package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"deepcontext/internal/profdb"
	"deepcontext/internal/profiler"
)

// EncodeProfile serializes p in the profdb single-profile encoding, the
// payload format of both WAL records and snapshot bundle entries.
func EncodeProfile(p *profiler.Profile) ([]byte, error) {
	var buf bytes.Buffer
	if err := profdb.Save(&buf, p); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeProfile reverses EncodeProfile through profdb's size-capped,
// fuzz-hardened loader; failures match profdb.ErrCorrupt.
func DecodeProfile(b []byte) (*profiler.Profile, error) {
	return profdb.LoadLimit(bytes.NewReader(b), int64(len(b)))
}

// syncDir fsyncs a directory so a just-created or just-renamed entry
// survives a power failure.
func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// writeFileAtomic writes data to path via a temp file in the same
// directory, fsyncs it, and renames it into place.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("persist: write %s: %v %v %v", path, werr, serr, cerr)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}
