package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deepcontext/internal/cct"
	"deepcontext/internal/profiler"
)

func testProfile(workload string, scale float64) *profiler.Profile {
	tree := cct.New()
	gid := tree.MetricID(cct.MetricGPUTime)
	leaf := tree.InsertPath([]cct.Frame{
		cct.PythonFrame("train.py", 10, "main"),
		cct.OperatorFrame("aten::conv2d"),
		{Kind: cct.KindKernel, Name: "gemm", Lib: "[gpu]", PC: 0x100},
	})
	tree.AddMetric(leaf, gid, 100*scale)
	return &profiler.Profile{
		Tree: tree,
		Meta: profiler.Meta{Workload: workload, Vendor: "Nvidia", Framework: "pytorch"},
	}
}

func mustEncode(t *testing.T, p *profiler.Profile) []byte {
	t.Helper()
	b, err := EncodeProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Two buckets, three records; rotation happens on the bucket change.
	payloads := []struct {
		start, ts int64
		scale     float64
	}{{1000, 1001, 1}, {1000, 1002, 2}, {2000, 2003, 4}}
	for _, rec := range payloads {
		if _, err := w.Append(rec.start, rec.ts, mustEncode(t, testProfile("UNet", rec.scale))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []struct {
		start, ts int64
		total     float64
	}
	stats, err := r.Replay(nil, func(start, ts int64, p *profiler.Profile) error {
		id, _ := p.Tree.Schema.Lookup(cct.MetricGPUTime)
		got = append(got, struct {
			start, ts int64
			total     float64
		}{start, ts, p.Tree.Root.InclValue(id)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Segments != 2 || stats.Records != 3 || stats.SkippedRecords != 0 || stats.SkippedSegments != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	want := []struct {
		start, ts int64
		total     float64
	}{{1000, 1001, 100}, {1000, 1002, 200}, {2000, 2003, 400}}
	for i, g := range got {
		if g != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, g, want[i])
		}
	}
}

func TestWALReplayRespectsOffsets(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(1000, 1, mustEncode(t, testProfile("UNet", 1))); err != nil {
		t.Fatal(err)
	}
	offsets, err := w.Offsets()
	if err != nil {
		t.Fatal(err)
	}
	// A record appended after the watermark is the only one replayed.
	if _, err := w.Append(1000, 2, mustEncode(t, testProfile("UNet", 7))); err != nil {
		t.Fatal(err)
	}
	var totals []float64
	stats, err := w.Replay(offsets, func(start, ts int64, p *profiler.Profile) error {
		id, _ := p.Tree.Schema.Lookup(cct.MetricGPUTime)
		totals = append(totals, p.Tree.Root.InclValue(id))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 1 || len(totals) != 1 || totals[0] != 700 {
		t.Fatalf("stats=%+v totals=%v", stats, totals)
	}
	w.Close()
}

// corruptedWAL builds a segment with a valid record, then a framed record
// whose body is drawn from the profdb fuzz corpus's malformed shapes
// (intact frame, undecodable body — must be skipped individually), then a
// trailing valid record, then a torn tail.
func TestWALReplayCorruptionPolicy(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(1000, 1, mustEncode(t, testProfile("UNet", 1))); err != nil {
		t.Fatal(err)
	}

	// The malformed-but-framed shapes FuzzLoad seeds profdb with: wrong
	// magic, truncated gob, plain garbage. All must skip, not crash.
	var wrongMagic bytes.Buffer
	gob.NewEncoder(&wrongMagic).Encode(struct{ Magic string }{"DEEPCONTEXT-PROFDB-99"})
	valid := mustEncode(t, testProfile("UNet", 2))
	for _, body := range [][]byte{wrongMagic.Bytes(), valid[:len(valid)/2], []byte("not a profile at all")} {
		if _, err := w.Append(1000, 2, body); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Append(1000, 3, mustEncode(t, testProfile("UNet", 4))); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Torn tail: append half a record by hand.
	seg := filepath.Join(dir, walDirName, segName(1000))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	body := append(make([]byte, 8), mustEncode(t, testProfile("UNet", 8))...)
	var hdr [frameHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(body))
	f.Write(hdr[:])
	f.Write(body[:len(body)/3])
	f.Close()

	r, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	var totals []float64
	stats, err := r.Replay(nil, func(start, ts int64, p *profiler.Profile) error {
		id, _ := p.Tree.Schema.Lookup(cct.MetricGPUTime)
		totals = append(totals, p.Tree.Root.InclValue(id))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both valid records survive; the three undecodable ones are skipped;
	// the torn tail ends the segment (counted as a skipped segment).
	if stats.Records != 2 || stats.SkippedRecords != 3 || stats.SkippedSegments != 1 {
		t.Fatalf("stats = %+v (warnings %v)", stats, stats.Warnings)
	}
	if len(totals) != 2 || totals[0] != 100 || totals[1] != 400 {
		t.Fatalf("totals = %v", totals)
	}
	if len(stats.Warnings) == 0 {
		t.Fatal("corruption must be logged")
	}
}

// Resuming a torn segment must truncate the tail back to the last intact
// frame BEFORE appending, or every post-resume acknowledged record would
// hide behind the tear and be dropped by replay.
func TestWALResumeRepairsTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(1000, 1, mustEncode(t, testProfile("UNet", 1))); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Tear the tail: half a frame of a would-be second record.
	seg := filepath.Join(dir, walDirName, segName(1000))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	body := append(make([]byte, 8), mustEncode(t, testProfile("UNet", 2))...)
	var hdr [frameHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(body))
	f.Write(hdr[:])
	f.Write(body[:len(body)/2])
	f.Close()

	// A restarted WAL appends to the same bucket; the record must land at
	// the repaired frame boundary and survive replay alongside the first.
	r, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Append(1000, 3, mustEncode(t, testProfile("UNet", 4))); err != nil {
		t.Fatal(err)
	}
	r.Close()

	r2, _ := OpenWAL(dir)
	var totals []float64
	stats, err := r2.Replay(nil, func(start, ts int64, p *profiler.Profile) error {
		id, _ := p.Tree.Schema.Lookup(cct.MetricGPUTime)
		totals = append(totals, p.Tree.Root.InclValue(id))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 2 || stats.SkippedSegments != 0 || stats.SkippedRecords != 0 {
		t.Fatalf("stats = %+v (warnings %v)", stats, stats.Warnings)
	}
	if len(totals) != 2 || totals[0] != 100 || totals[1] != 400 {
		t.Fatalf("totals = %v", totals)
	}
}

// A resumed segment whose header is garbage is reset wholesale: new
// appends must still be replayable.
func TestWALResumeResetsGarbageSegment(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, walDirName), 0o755); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, walDirName, segName(1000))
	if err := os.WriteFile(seg, []byte("this is not a wal segment at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(1000, 1, mustEncode(t, testProfile("UNet", 1))); err != nil {
		t.Fatal(err)
	}
	w.Close()
	r, _ := OpenWAL(dir)
	stats, err := r.Replay(nil, func(start, ts int64, p *profiler.Profile) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 1 || stats.SkippedSegments != 0 {
		t.Fatalf("stats = %+v (warnings %v)", stats, stats.Warnings)
	}
}

func TestWALReplayBadHeaderSkipsSegment(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(2000, 1, mustEncode(t, testProfile("UNet", 1))); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// A garbage segment alongside a healthy one.
	if err := os.WriteFile(filepath.Join(dir, walDirName, segName(1000)), []byte("garbage header"), 0o644); err != nil {
		t.Fatal(err)
	}

	r, _ := OpenWAL(dir)
	stats, err := r.Replay(nil, func(start, ts int64, p *profiler.Profile) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 1 || stats.SkippedSegments != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestWALPrune(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(1000, 1, mustEncode(t, testProfile("UNet", 1)))
	w.Append(2000, 2, mustEncode(t, testProfile("UNet", 2)))
	covered, err := w.Offsets()
	if err != nil {
		t.Fatal(err)
	}
	// Segment 2000 is currently open for appends: it must survive Prune
	// even though it is fully covered.
	n, err := w.Prune(covered)
	if err != nil || n != 1 {
		t.Fatalf("pruned %d (%v), want 1", n, err)
	}
	if _, err := os.Stat(filepath.Join(dir, walDirName, segName(2000))); err != nil {
		t.Fatalf("open segment pruned: %v", err)
	}
	// PruneRange drops it regardless once closed.
	w.Close()
	r, _ := OpenWAL(dir)
	if n, _ := r.PruneRange(0, 3000); n != 1 {
		t.Fatalf("range-pruned %d, want 1", n)
	}
}

func TestSnapshotRoundTripAndAtomicity(t *testing.T) {
	dir := t.TempDir()
	st := &State{
		CreatedUnixNano: 42, Ingested: 3, Compactions: 1, LastIngestUnixNano: 41,
		Windows: []WindowState{{
			Start: 1000, DurNS: 60e9,
			Series: []SeriesState{{Key: "unet/nvidia/pytorch", Profiles: 3, Profile: testProfile("UNet", 3)}},
		}, {
			Start: 0, DurNS: 600e9, Coarse: true,
			Series: []SeriesState{{Key: "dlrm/nvidia/pytorch", Profiles: 1, Profile: testProfile("DLRM", 1)}},
		}},
		WALOffsets: map[int64]int64{1000: 123},
	}
	cap1, err := CaptureState(st)
	if err != nil {
		t.Fatal(err)
	}
	info, err := cap1.Commit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Dir != "snap-1" || info.Files != 2 {
		t.Fatalf("info = %+v", info)
	}

	got, err := ReadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ingested != 3 || got.Compactions != 1 || got.LastIngestUnixNano != 41 {
		t.Fatalf("counters = %+v", got)
	}
	if len(got.Windows) != 2 || got.WALOffsets[1000] != 123 {
		t.Fatalf("state = %+v", got)
	}
	var fine *WindowState
	for i := range got.Windows {
		if !got.Windows[i].Coarse {
			fine = &got.Windows[i]
		}
	}
	if fine == nil || fine.Start != 1000 || len(fine.Series) != 1 {
		t.Fatalf("fine window = %+v", fine)
	}
	s := fine.Series[0]
	if s.Key != "unet/nvidia/pytorch" || s.Profiles != 3 || s.Profile.Meta.Workload != "UNet" {
		t.Fatalf("series = %+v", s)
	}
	id, _ := s.Profile.Tree.Schema.Lookup(cct.MetricGPUTime)
	if s.Profile.Tree.Root.InclValue(id) != 300 {
		t.Fatalf("tree total = %v", s.Profile.Tree.Root.InclValue(id))
	}

	// A second commit supersedes the first and removes it.
	cap2, _ := CaptureState(st)
	info2, err := cap2.Commit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Dir != "snap-2" {
		t.Fatalf("second snapshot dir = %s", info2.Dir)
	}
	if _, err := os.Stat(filepath.Join(dir, "snap-1")); !os.IsNotExist(err) {
		t.Fatalf("old snapshot not removed: %v", err)
	}
}

func TestReadSnapshotDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	if st, err := ReadSnapshot(dir); st != nil || err != nil {
		t.Fatalf("empty dir: %v %v", st, err)
	}
	st := &State{Windows: []WindowState{{
		Start: 1000, DurNS: 60e9,
		Series: []SeriesState{{Key: "k", Profiles: 1, Profile: testProfile("UNet", 1)}},
	}}}
	cap1, _ := CaptureState(st)
	info, err := cap1.Commit(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one byte of the window file: the checksum must catch it.
	winFile := filepath.Join(dir, info.Dir, "fine-1000.dcp")
	data, err := os.ReadFile(winFile)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	os.WriteFile(winFile, data, 0o644)
	if _, err := ReadSnapshot(dir); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted window file: err = %v, want checksum mismatch", err)
	}

	// A CURRENT pointing nowhere is an error, not a crash.
	os.WriteFile(filepath.Join(dir, currentName), []byte("snap-99\n"), 0o644)
	if _, err := ReadSnapshot(dir); err == nil {
		t.Fatal("dangling CURRENT should error")
	}
	// Path traversal in CURRENT is rejected.
	os.WriteFile(filepath.Join(dir, currentName), []byte("../evil\n"), 0o644)
	if _, err := ReadSnapshot(dir); err == nil {
		t.Fatal("traversal CURRENT should error")
	}
}
