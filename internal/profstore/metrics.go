package profstore

import (
	"time"

	"deepcontext/internal/telemetry"
)

// storeMetrics holds every telemetry handle the store records into. The
// handles are resolved once at New — hot-path recording is a few atomic
// adds, never a registry lookup — and the same counters back Stats(), so
// the JSON surface and /metrics cannot drift apart.
//
// timings gates the latency observations (the time.Now reads plus
// histogram updates on the ingest, WAL, close, compaction and snapshot
// paths) and journal events; Config.TimingsDisabled turns it off to
// measure the telemetry tax. Counters are never gated: they are the
// single source of truth for Stats().
type storeMetrics struct {
	timings bool
	reg     *telemetry.Registry
	journal *telemetry.Journal

	ingestSeconds    *telemetry.Histogram
	lockWaitSeconds  *telemetry.Histogram
	closeSeconds     *telemetry.Histogram
	compactSeconds   *telemetry.Histogram
	snapshotSeconds  *telemetry.Histogram
	recoverySeconds  *telemetry.Histogram
	sweepSeconds     *telemetry.Histogram
	walAppendSeconds *telemetry.Histogram
	walFsyncSeconds  *telemetry.Histogram

	compactions    *telemetry.Counter
	windowsFolded  *telemetry.Counter
	windowsDropped *telemetry.Counter
	windowsClosed  *telemetry.Counter
	snapshots      *telemetry.Counter
	snapshotErrors *telemetry.Counter
	batches        *telemetry.Counter
	batchProfiles  *telemetry.Counter
	walAppends     *telemetry.Counter
	walBytes       *telemetry.Counter
	walFsyncs      *telemetry.Counter
	walPruned      *telemetry.Counter
	indexRebuilds  *telemetry.Counter

	cacheHits          *telemetry.Counter
	cacheMisses        *telemetry.Counter
	cacheInvalidations *telemetry.Counter
	cacheEvictions     *telemetry.Counter
}

// newStoreMetrics registers the store's metric families on reg and
// resolves the recording handles. Registration is idempotent, but the
// counters are shared per registry — give each store its own registry
// (Config.Telemetry nil does this automatically).
func newStoreMetrics(reg *telemetry.Registry, timings bool) *storeMetrics {
	return &storeMetrics{
		timings: timings,
		reg:     reg,
		journal: reg.Journal(),

		ingestSeconds:    reg.Histogram("profstore_ingest_seconds", "Full Store.Ingest latency (encode, normalize, WAL append, merge)."),
		lockWaitSeconds:  reg.Histogram("profstore_shard_lock_wait_seconds", "Time an ingest waited to acquire its shard's write lock."),
		closeSeconds:     reg.Histogram("profstore_window_close_seconds", "Window-close pass latency (trend observation plus index aggregation)."),
		compactSeconds:   reg.Histogram("profstore_compaction_seconds", "Full CompactNow pass latency across all shards."),
		snapshotSeconds:  reg.Histogram("profstore_snapshot_seconds", "Full Snapshot latency (capture, encode, commit, prune)."),
		recoverySeconds:  reg.Histogram("profstore_recovery_seconds", "Full Recover latency (snapshot load plus WAL replay)."),
		sweepSeconds:     reg.Histogram("profstore_trend_sweep_seconds", "TrendSweep pass latency across all shards."),
		walAppendSeconds: reg.Histogram("profstore_wal_append_seconds", "One WAL record append, including any segment rotation it triggered."),
		walFsyncSeconds:  reg.Histogram("profstore_wal_fsync_seconds", "One WAL segment fsync (rotation, explicit sync, or close)."),

		compactions:    reg.Counter("profstore_compactions_total", "Compaction passes that folded or dropped at least one window."),
		windowsFolded:  reg.Counter("profstore_compaction_windows_folded_total", "Fine windows folded into coarse buckets by compaction."),
		windowsDropped: reg.Counter("profstore_compaction_windows_dropped_total", "Coarse windows dropped by retention."),
		windowsClosed:  reg.Counter("profstore_windows_closed_total", "Fine windows closed (observed by the trend tracker and indexed)."),
		snapshots:      reg.Counter("profstore_snapshots_total", "Snapshots committed."),
		snapshotErrors: reg.Counter("profstore_snapshot_errors_total", "Snapshot attempts that failed."),
		batches:        reg.Counter("profstore_ingest_batches_total", "Batch ingests applied (one shard-lock acquisition per shard per batch)."),
		batchProfiles:  reg.Counter("profstore_ingest_batch_profiles_total", "Profiles ingested through the batch path."),
		walAppends:     reg.Counter("profstore_wal_appends_total", "WAL records appended."),
		walBytes:       reg.Counter("profstore_wal_appended_bytes_total", "WAL bytes appended (frame headers included)."),
		walFsyncs:      reg.Counter("profstore_wal_fsyncs_total", "WAL segment fsyncs."),
		walPruned:      reg.Counter("profstore_wal_pruned_segments_total", "WAL segments deleted after snapshot coverage or retention."),
		indexRebuilds:  reg.Counter("profstore_index_rebuilds_total", "Recoveries that rebuilt the frame index from retained windows."),

		cacheHits:          reg.Counter("profstore_cache_hits_total", "Query-cache hits (generation stamps matched)."),
		cacheMisses:        reg.Counter("profstore_cache_misses_total", "Query-cache misses (no entry, or stale)."),
		cacheInvalidations: reg.Counter("profstore_cache_invalidations_total", "Query-cache misses where a depended-on window had mutated."),
		cacheEvictions:     reg.Counter("profstore_cache_evictions_total", "Query-cache LRU evictions."),
	}
}

// registerStoreGauges installs the scrape-time callbacks for occupancy
// and bookkeeping values that live under the store's own locks. They run
// under the registry mutex at render time; each takes the all-shard read
// lock briefly. Re-registering (a second store over the same registry)
// repoints the callbacks at the newest store.
func (s *Store) registerStoreGauges(reg *telemetry.Registry) {
	reg.CounterFunc("profstore_ingested_profiles_total", "Profiles ingested since the directory was created (survives restarts).",
		func() int64 { return s.occupancy().ingested })
	reg.GaugeFunc("profstore_fine_windows", "Fine windows currently retained.",
		func() float64 { return float64(s.occupancy().fine) })
	reg.GaugeFunc("profstore_coarse_windows", "Coarse windows currently retained.",
		func() float64 { return float64(s.occupancy().coarse) })
	reg.GaugeFunc("profstore_series", "Per-window series currently retained (a series in two windows counts twice).",
		func() float64 { return float64(s.occupancy().series) })
	reg.GaugeFunc("profstore_tree_nodes", "Calling-context-tree nodes currently retained.",
		func() float64 { return float64(s.occupancy().nodes) })
	reg.GaugeFunc("profstore_last_ingest_timestamp_seconds", "Unix time of the newest ingested profile; 0 when empty.",
		func() float64 { return unixSeconds(s.occupancy().lastIngest) })
	reg.GaugeFunc("profstore_cache_entries", "Query-cache entries currently held.",
		func() float64 { return float64(s.cache.len()) })
	reg.GaugeFunc("profstore_last_snapshot_timestamp_seconds", "Unix time of the last successful snapshot; 0 when never.",
		func() float64 {
			ns := s.lastSnapshot.Load()
			if ns == 0 {
				return 0
			}
			return float64(ns) / 1e9
		})
	reg.GaugeFunc("profstore_last_snapshot_bytes", "Bytes committed by the last successful snapshot.",
		func() float64 { return float64(s.lastSnapBytes.Load()) })
	reg.GaugeFunc("profstore_trend_series", "Series the regression detector tracks.",
		func() float64 { return float64(s.trendStats().Series) })
	reg.GaugeFunc("profstore_trend_frames", "Per-series frames the regression detector tracks.",
		func() float64 { return float64(s.trendStats().Frames) })
	reg.GaugeFunc("profstore_trend_findings", "Regression findings currently retained.",
		func() float64 { return float64(s.trendStats().Findings) })
	reg.GaugeFunc("profstore_trend_suppressed", "Trend drifts suppressed below the confirmation threshold.",
		func() float64 { return float64(s.trendStats().Suppressed) })
	reg.GaugeFunc("profstore_index_frames", "Distinct frames in the fleet-query index.",
		func() float64 { return float64(s.indexOccupancy().frames) })
	reg.GaugeFunc("profstore_index_postings", "Series postings in the fleet-query index.",
		func() float64 { return float64(s.indexOccupancy().postings) })
}

func unixSeconds(t time.Time) float64 {
	if t.IsZero() {
		return 0
	}
	return float64(t.UnixNano()) / 1e9
}

// storeOccupancy is one consistent cut of the per-shard occupancy values
// Stats() also reports.
type storeOccupancy struct {
	fine, coarse  int
	series, nodes int
	ingested      int64
	lastIngest    time.Time
}

func (s *Store) occupancy() storeOccupancy {
	s.rlockAll()
	defer s.runlockAll()
	var oc storeOccupancy
	fineStarts := make(map[int64]bool)
	coarseStarts := make(map[int64]bool)
	for _, sh := range s.shards {
		oc.ingested += sh.ingested
		if sh.lastIngest.After(oc.lastIngest) {
			oc.lastIngest = sh.lastIngest
		}
		for k, w := range sh.fine {
			fineStarts[k] = true
			oc.series += len(w.series)
			oc.nodes += w.nodes()
		}
		for k, w := range sh.coarse {
			coarseStarts[k] = true
			oc.series += len(w.series)
			oc.nodes += w.nodes()
		}
	}
	oc.fine, oc.coarse = len(fineStarts), len(coarseStarts)
	return oc
}

// trendStats sums the per-shard tracker stats (zero when tracking is
// disabled).
func (s *Store) trendStats() TrendStats {
	var ts TrendStats
	s.rlockAll()
	defer s.runlockAll()
	for _, sh := range s.shards {
		if sh.tracker == nil {
			continue
		}
		st := sh.tracker.Stats()
		ts.Series += st.Series
		ts.Frames += st.Frames
		ts.Findings += st.Findings
		ts.Suppressed += st.Suppressed
		ts.Late += st.Late
	}
	return ts
}

type indexOccupancy struct {
	frames, postings int64
}

func (s *Store) indexOccupancy() indexOccupancy {
	var oc indexOccupancy
	s.rlockAll()
	defer s.runlockAll()
	for _, sh := range s.shards {
		if sh.idx != nil {
			oc.frames += int64(sh.idx.in.Len())
			oc.postings += sh.idx.postings
		}
	}
	return oc
}
