package profstore

import (
	"context"
	"sync"
	"testing"
	"time"

	"deepcontext/internal/cct"
)

// TestComputeSeriesAggMatchesManualFold checks the close-time aggregate
// against a hand-rolled DFS over the same tree: same labels (ascending),
// same kinds, same exclusive sums per metric.
func TestComputeSeriesAggMatchesManualFold(t *testing.T) {
	tree := cct.NormalizeAddresses(synthProfile("UNet", "Nvidia", "pytorch", 0x1000, 3).Tree)
	agg := computeSeriesAgg(tree)

	names := tree.Schema.Names()
	want := make(map[string][]float64)
	kinds := make(map[string]string)
	tree.Visit(func(n *cct.Node) {
		if n.Kind == cct.KindRoot {
			return
		}
		label := n.Label()
		sums := want[label]
		if sums == nil {
			sums = make([]float64, len(names))
			want[label] = sums
			kinds[label] = n.Kind.String()
		}
		for m := range names {
			sums[m] += n.ExclValue(cct.MetricID(m))
		}
	})

	if len(agg.labels) != len(want) {
		t.Fatalf("labels = %v, want %d entries", agg.labels, len(want))
	}
	for i, label := range agg.labels {
		if i > 0 && agg.labels[i-1] >= label {
			t.Fatalf("labels not strictly ascending: %v", agg.labels)
		}
		if agg.kinds[i] != kinds[label] {
			t.Errorf("kind[%s] = %s, want %s", label, agg.kinds[i], kinds[label])
		}
		for m := range names {
			if agg.sums[i][m] != want[label][m] {
				t.Errorf("sum[%s][%s] = %v, want %v", label, names[m], agg.sums[i][m], want[label][m])
			}
		}
	}
	// The gemm kernel carries exactly 100·scale GPU ns exclusively.
	li := agg.labelIndex("gemm")
	mi := agg.metricIndex(cct.MetricGPUTime)
	if li < 0 || mi < 0 || agg.sums[li][mi] != 300 {
		t.Fatalf("gemm gpu sum: li=%d mi=%d", li, mi)
	}
	if agg.labelIndex("nope") != -1 || agg.metricIndex("nope") != -1 {
		t.Fatal("absent lookups must return -1")
	}
}

// TestFrameIndexSeriesMayHave pins the posting-list contract: false
// proves absence, true after registration, idempotent re-adds.
func TestFrameIndexSeriesMayHave(t *testing.T) {
	x := newFrameIndex()
	tree := cct.NormalizeAddresses(synthProfile("UNet", "Nvidia", "pytorch", 0x1000, 1).Tree)
	x.addSeries("unet/nvidia/pytorch", tree)

	for _, label := range []string{"gemm", "relu", "aten::conv2d", "train.py:10 (main)"} {
		if !x.seriesMayHave(label, "unet/nvidia/pytorch") {
			t.Errorf("seriesMayHave(%q) = false for an indexed frame", label)
		}
	}
	if x.seriesMayHave("gemm", "other/series") {
		t.Error("posting leaked to an unregistered series")
	}
	if x.seriesMayHave("no_such_frame", "unet/nvidia/pytorch") {
		t.Error("unknown label matched")
	}

	frames, postings := len(x.post), x.postings
	x.addSeries("unet/nvidia/pytorch", tree) // idempotent
	if len(x.post) != frames || x.postings != postings {
		t.Fatalf("re-add changed the index: frames %d→%d postings %d→%d", frames, len(x.post), postings, x.postings)
	}
}

// TestIndexStateRoundTrip: encode → decode → adopt must reproduce the
// same frames, postings and label routing.
func TestIndexStateRoundTrip(t *testing.T) {
	x := newFrameIndex()
	x.addSeries("a", cct.NormalizeAddresses(synthProfile("UNet", "Nvidia", "pytorch", 0x1000, 1).Tree))
	x.addSeries("b", cct.NormalizeAddresses(synthProfile("DLRM", "AMD", "jax", 0x9000, 2).Tree))
	blob, err := x.encodeState()
	if err != nil {
		t.Fatal(err)
	}
	st, err := decodeIndexState(blob)
	if err != nil {
		t.Fatal(err)
	}
	y := newFrameIndex()
	for _, fs := range st.Frames {
		y.adoptFrame(fs, fs.Series)
	}
	if len(y.post) != len(x.post) || y.postings != x.postings {
		t.Fatalf("adopted index: frames=%d postings=%d, want frames=%d postings=%d",
			len(y.post), y.postings, len(x.post), x.postings)
	}
	for _, key := range []string{"a", "b"} {
		for _, label := range []string{"gemm", "relu"} {
			if x.seriesMayHave(label, key) != y.seriesMayHave(label, key) {
				t.Errorf("seriesMayHave(%q, %q) diverged across the round trip", label, key)
			}
		}
	}
	// And the re-encoding is deterministic.
	blob2, err := y.encodeState()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatalf("re-encode not byte-identical:\n%s\n%s", blob, blob2)
	}
}

// TestDecodeIndexStateDropsBadKinds: out-of-range kinds (corrupt or
// adversarial blobs) are dropped, not kept and never a panic; a frame
// persisted without labels falls back to its identity label on adoption.
func TestDecodeIndexStateDropsBadKinds(t *testing.T) {
	blob := []byte(`{"frames":[
		{"kind":99,"name":"junk","series":["a"]},
		{"kind":-1,"name":"junk","series":["a"]},
		{"kind":0,"name":"root","series":["a"]},
		{"kind":4,"name":"gemm","lib":"[gpu]","series":["a"]}]}`)
	st, err := decodeIndexState(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Frames) != 1 || st.Frames[0].Name != "gemm" {
		t.Fatalf("kept frames = %+v, want only gemm", st.Frames)
	}
	x := newFrameIndex()
	x.adoptFrame(st.Frames[0], st.Frames[0].Series)
	// No labels in the blob: adoption falls back to the identity's label.
	f := cct.Frame{Kind: cct.FrameKind(st.Frames[0].Kind), Name: "gemm", Lib: "[gpu]"}
	if !x.seriesMayHave(f.Label(), "a") {
		t.Fatalf("label fallback %q not registered", f.Label())
	}
}

// TestIndexStatsRaceUnderIngest is the Stats() half of the stats
// satellite: Index counters are read under the shard locks while writers
// roll windows, so the cut is consistent and race-clean (this runs in the
// CI -race job).
func TestIndexStatsRaceUnderIngest(t *testing.T) {
	clock := newClock(base)
	s := New(Config{Window: 10 * time.Millisecond, Retention: 60, CoarseFactor: 2, Shards: 4, CacheSize: 32, Now: clock.Now})
	defer s.Close()

	done := make(chan struct{})
	// The clock runs outside the writer WaitGroup (a ticking goroutine
	// blocked on wg.Wait deadlocks — see the loadgen postmortem in
	// CHANGES.md); it just stops with done.
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				clock.Advance(3 * time.Millisecond)
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	var wg sync.WaitGroup
	workloads := []string{"UNet", "DLRM", "Bert", "GPT"}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				mustIngest(t, s, synthProfile(workloads[w], "Nvidia", "pytorch", uint64(0x1000+w*64+i*8), 1))
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				st := s.Stats()
				if st.Index == nil {
					t.Error("index stats missing while the index is enabled")
					return
				}
				if st.Index.Frames < 0 || st.Index.Postings < 0 {
					t.Errorf("negative index counters: %+v", st.Index)
					return
				}
				s.TopK(context.Background(), time.Time{}, time.Time{}, Labels{}, "", 3)
				s.TrendSweep()
			}
		}()
	}
	wg.Wait()
	close(done)

	// Close every window deterministically before asserting: the racing
	// goroutines may all finish before the clock crosses a boundary.
	clock.Advance(time.Second)
	s.TrendSweep()
	st := s.Stats()
	if st.Index == nil || st.Index.Frames == 0 || st.Index.Postings == 0 {
		t.Fatalf("index empty after concurrent ingest: %+v", st.Index)
	}
	if st.Index.Rebuilds != 0 {
		t.Fatalf("rebuilds = %d on a store that never recovered", st.Index.Rebuilds)
	}
}

// TestIndexStatsAcrossRecover pins the counter-reset semantics: a
// graceful restart adopts the persisted index (same frames and postings,
// zero rebuilds); a hard WAL-only restart (no snapshot ever committed —
// snapshotting prunes covered WAL segments, so a crash after one keeps
// the snapshot authoritative) rebuilds the index from replayed windows,
// counts it in Rebuilds, and converges to the same frames and postings.
func TestIndexStatsAcrossRecover(t *testing.T) {
	// seed builds a two-window, seven-series durable store with every
	// window closed (aggregated + indexed) and returns it with its
	// pre-restart index stats.
	seed := func(t *testing.T, dir string, clock *fakeClock) (*Store, Config, *IndexStats) {
		t.Helper()
		cfg := Config{Window: time.Minute, Retention: 60, CoarseFactor: 2, Shards: 2, Now: clock.Now, Dir: dir}
		s := New(cfg)
		for i, lb := range equivSeriesPool {
			mustIngest(t, s, synthProfile(lb.Workload, lb.Vendor, lb.Framework, uint64(0x1000+i*256), float64(i+1)))
		}
		clock.Advance(time.Minute)
		mustIngest(t, s, synthProfile("UNet", "Nvidia", "pytorch", 0x8000, 2))
		clock.Advance(time.Minute)
		s.TrendSweep() // closes both windows: aggregates + index built
		want := s.Stats().Index
		if want == nil || want.Frames == 0 || want.Postings == 0 || want.Rebuilds != 0 {
			t.Fatalf("pre-restart index stats = %+v", want)
		}
		return s, cfg, want
	}

	t.Run("graceful", func(t *testing.T) {
		s, cfg, want := seed(t, t.TempDir(), newClock(base))
		if _, err := s.Snapshot(); err != nil {
			t.Fatal(err)
		}
		s.Close()
		// The snapshot carries index.json per shard; adoption must
		// reproduce the counters without a rebuild.
		revived := New(cfg)
		if rs, err := revived.Recover(); err != nil || !rs.SnapshotLoaded {
			t.Fatalf("recover = %+v, %v", rs, err)
		}
		defer revived.Close()
		got := revived.Stats().Index
		if got == nil || got.Frames != want.Frames || got.Postings != want.Postings || got.Rebuilds != 0 {
			t.Fatalf("after graceful restart: %+v, want %+v with 0 rebuilds", got, want)
		}
	})

	t.Run("hard", func(t *testing.T) {
		s, cfg, want := seed(t, t.TempDir(), newClock(base))
		s.Close() // crash: no snapshot, only the WAL survives
		rebuilt := New(cfg)
		if rs, err := rebuilt.Recover(); err != nil || rs.SnapshotLoaded {
			t.Fatalf("recover = %+v, %v", rs, err)
		}
		defer rebuilt.Close()
		got := rebuilt.Stats().Index
		if got == nil || got.Rebuilds == 0 {
			t.Fatalf("hard restart did not count a rebuild: %+v", got)
		}
		if got.Frames != want.Frames || got.Postings != want.Postings {
			t.Fatalf("rebuilt index diverged: %+v, want frames=%d postings=%d", got, want.Frames, want.Postings)
		}
	})
}
