package profstore

// The fleet-wide query layer's data structures: per-(bucket, series)
// coarse aggregates computed once at window close, and a per-shard
// inverted frame index mapping interned frame identities to the series
// keys whose retained trees contain them. Both are maintained only at the
// points where the trend detector already hooks window lifecycle — ingest
// window roll, compaction and recovery — so the in-window ingest hot path
// stays untouched (one int64 compare, zero allocations).
//
// Soundness invariant, relied on by Store.Search's posting-list skip:
// whenever a bucket's series has ser.agg != nil, every frame of that
// series' tree (identity AND display label) is registered in the owning
// shard's index under that series key. The index is over-approximate —
// postings are never removed when windows age out — which only costs a
// wasted aggregate lookup, never a wrong skip. A series whose closed
// bucket receives late data has its agg cleared (mergeIntoWindowLocked),
// which both disables the skip and forces queries to re-derive the
// aggregate from the tree.

import (
	"encoding/json"
	"fmt"
	"sort"

	"deepcontext/internal/cct"
)

// seriesAgg is one series' close-time aggregate within one bucket:
// exclusive metric sums per frame label, accumulated in the tree's
// deterministic DFS order and then sorted by label. It answers TopK and
// Search without re-walking the merged CCT. The float operations are
// exactly those of a fresh DFS over the same tree, so a cached agg is
// bit-identical to recomputing (the equivalence harness pins this).
type seriesAgg struct {
	labels  []string    // frame labels, ascending
	kinds   []string    // kinds[i] classifies labels[i] (first DFS sighting)
	metrics []string    // the tree's schema names, in schema order
	sums    [][]float64 // sums[i][m] = Σ excl of labels[i] for metrics[m]
}

// computeSeriesAgg reduces one series tree to its per-label exclusive
// sums for every schema metric. Root is skipped (it carries no exclusive
// cost and is not a queryable frame). Accumulation happens in DFS order
// per label before the final sort, so the same tree always yields the
// same floats regardless of when the aggregate is computed.
func computeSeriesAgg(t *cct.Tree) *seriesAgg {
	a := &seriesAgg{metrics: t.Schema.Names()}
	nm := len(a.metrics)
	idx := make(map[string]int)
	t.Visit(func(n *cct.Node) {
		if n.Kind == cct.KindRoot {
			return
		}
		label := n.Label()
		i, ok := idx[label]
		if !ok {
			i = len(a.labels)
			idx[label] = i
			a.labels = append(a.labels, label)
			a.kinds = append(a.kinds, n.Kind.String())
			a.sums = append(a.sums, make([]float64, nm))
		}
		for m := 0; m < nm; m++ {
			a.sums[i][m] += n.ExclValue(cct.MetricID(m))
		}
	})
	order := make([]int, len(a.labels))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return a.labels[order[i]] < a.labels[order[j]] })
	labels := make([]string, len(order))
	kinds := make([]string, len(order))
	sums := make([][]float64, len(order))
	for to, from := range order {
		labels[to], kinds[to], sums[to] = a.labels[from], a.kinds[from], a.sums[from]
	}
	a.labels, a.kinds, a.sums = labels, kinds, sums
	return a
}

// labelIndex locates label in the sorted label set; -1 when absent.
func (a *seriesAgg) labelIndex(label string) int {
	i := sort.SearchStrings(a.labels, label)
	if i < len(a.labels) && a.labels[i] == label {
		return i
	}
	return -1
}

// metricIndex locates metric in the schema names; -1 when absent.
func (a *seriesAgg) metricIndex(metric string) int {
	for i, m := range a.metrics {
		if m == metric {
			return i
		}
	}
	return -1
}

// frameIndex is one shard's inverted index: interned frame identity →
// the series keys whose indexed trees contain it, plus a label → identity
// map so queries by display label resolve every identity ever observed
// under that label. Guarded by the owning shard's mutex (writes under the
// write lock at window close/compaction/recovery, reads under the query
// read lock); the interner's own lock makes its accessors safe for the
// lock-free Stats path too.
type frameIndex struct {
	in      *cct.Interner
	byLabel map[string][]cct.FrameID
	post    []map[string]struct{} // FrameID → series keys
	// postings counts the (frame, series) pairs across post — the stats
	// figure; maintained here so Stats never walks the posting lists.
	postings int64
}

func newFrameIndex() *frameIndex {
	return &frameIndex{in: cct.NewInterner(), byLabel: make(map[string][]cct.FrameID)}
}

// addSeries registers every non-root frame of tree under key. Idempotent:
// re-adding an already-indexed tree changes nothing, so recovery sweeps
// and repeated compactions are safe.
func (x *frameIndex) addSeries(key string, tree *cct.Tree) {
	tree.Visit(func(n *cct.Node) {
		if n.Kind == cct.KindRoot {
			return
		}
		x.add(n.Frame, n.Label(), key)
	})
}

// add registers one (identity, label, series) observation.
func (x *frameIndex) add(f cct.Frame, label, key string) {
	id := x.in.Intern(f)
	if int(id) == len(x.post) {
		x.post = append(x.post, make(map[string]struct{}))
	}
	ids := x.byLabel[label]
	found := false
	for _, have := range ids {
		if have == id {
			found = true
			break
		}
	}
	if !found {
		x.byLabel[label] = append(ids, id)
	}
	if _, ok := x.post[id][key]; !ok {
		x.post[id][key] = struct{}{}
		x.postings++
	}
}

// seriesMayHave reports whether any identity observed under label has a
// posting for key. False proves the frame is absent from every indexed
// tree of that series (the Search skip); true may be stale
// over-approximation and only means "look at the aggregate".
func (x *frameIndex) seriesMayHave(label, key string) bool {
	for _, id := range x.byLabel[label] {
		if _, ok := x.post[id][key]; ok {
			return true
		}
	}
	return false
}

// indexFrameState is one interned identity on disk: the representative
// frame's identity fields, every display label observed for it, and its
// sorted posting list.
type indexFrameState struct {
	Kind   int      `json:"kind"`
	Name   string   `json:"name,omitempty"`
	File   string   `json:"file,omitempty"`
	Line   int      `json:"line,omitempty"`
	Lib    string   `json:"lib,omitempty"`
	PC     uint64   `json:"pc,omitempty"`
	Labels []string `json:"labels"`
	Series []string `json:"series"`
}

// indexState is the snapshot codec for one shard's frame index.
type indexState struct {
	Frames []indexFrameState `json:"frames"`
}

// encodeState renders the index deterministically: frames in dense
// FrameID order, labels and postings sorted. Callers hold at least the
// shard's read lock.
func (x *frameIndex) encodeState() ([]byte, error) {
	st := indexState{Frames: make([]indexFrameState, len(x.post))}
	for id := range x.post {
		f := x.in.FrameOf(cct.FrameID(id))
		fs := &st.Frames[id]
		fs.Kind, fs.Name, fs.File, fs.Line, fs.Lib, fs.PC =
			int(f.Kind), f.Name, f.File, f.Line, f.Lib, f.PC
		for key := range x.post[id] {
			fs.Series = append(fs.Series, key)
		}
		sort.Strings(fs.Series)
	}
	for label, ids := range x.byLabel {
		for _, id := range ids {
			st.Frames[id].Labels = append(st.Frames[id].Labels, label)
		}
	}
	for i := range st.Frames {
		sort.Strings(st.Frames[i].Labels)
	}
	data, err := json.Marshal(&st)
	if err != nil {
		return nil, fmt.Errorf("profstore: encode index state: %w", err)
	}
	return data, nil
}

// decodeIndexState parses a persisted index blob, dropping entries whose
// kind is out of range (a corrupt or adversarial blob must degrade to a
// smaller index, never a panic — the posting list is an over-approximation
// anyway, so dropping entries is always sound).
func decodeIndexState(data []byte) (*indexState, error) {
	var st indexState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("profstore: decode index state: %w", err)
	}
	kept := st.Frames[:0]
	for _, f := range st.Frames {
		if !cct.FrameKind(f.Kind).Valid() || f.Kind == int(cct.KindRoot) {
			continue
		}
		kept = append(kept, f)
	}
	st.Frames = kept
	return &st, nil
}

// adoptFrame installs one decoded identity's observations for the series
// keys routed to this shard. Callers hold the shard's write lock.
func (x *frameIndex) adoptFrame(fs indexFrameState, keys []string) {
	f := cct.Frame{Kind: cct.FrameKind(fs.Kind), Name: fs.Name, File: fs.File, Line: fs.Line, Lib: fs.Lib, PC: fs.PC}
	labels := fs.Labels
	if len(labels) == 0 {
		labels = []string{f.Label()}
	}
	for _, key := range keys {
		for _, label := range labels {
			x.add(f, label, key)
		}
	}
}

// IndexStats reports the fleet-query index across all shards.
type IndexStats struct {
	// Frames counts interned frame identities, summed per shard (an
	// identity appearing in series on two shards counts twice).
	Frames int64 `json:"frames"`
	// Postings counts (frame, series) posting entries.
	Postings int64 `json:"postings"`
	// Rebuilds counts recoveries that found no usable persisted index for
	// a source directory and rebuilt it from retained windows instead.
	Rebuilds int64 `json:"rebuilds"`
}
