package profstore

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"time"

	"deepcontext/internal/cct"
	"deepcontext/internal/profiler"
	"deepcontext/internal/profstore/persist"
	"deepcontext/internal/profstore/trend"
)

// RecoveryStats reports what Recover rebuilt and what it had to skip,
// summed across every source directory it read.
type RecoveryStats struct {
	SnapshotLoaded bool `json:"snapshot_loaded"`
	// SnapshotError is the non-fatal reason a snapshot was unusable
	// (recovery then replays that source's WAL from the beginning).
	SnapshotError      string `json:"snapshot_error,omitempty"`
	WindowsRestored    int    `json:"windows_restored"`
	ProfilesFromSnap   int64  `json:"profiles_from_snapshot"`
	WALSegments        int    `json:"wal_segments"`
	WALRecords         int64  `json:"wal_records"`
	WALSkippedRecords  int64  `json:"wal_skipped_records"`
	WALSkippedSegments int    `json:"wal_skipped_segments"`
	// Migrated reports that the directory was adopted from another layout
	// (the pre-shard single-store layout, or a different shard count) and
	// re-committed under the current one.
	Migrated bool     `json:"migrated,omitempty"`
	Warnings []string `json:"warnings,omitempty"`
}

// migrateDirName is the staging subdirectory a layout migration builds
// the complete new layout in before committing it (see commitMigration).
const migrateDirName = ".migrate"

var shardDirPattern = regexp.MustCompile(`^shard-(\d+)$`)

// shardDirsIn lists the shard subdirectory indices present under dataDir.
func shardDirsIn(dataDir string) ([]int, error) {
	ents, err := os.ReadDir(dataDir)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		if m := shardDirPattern.FindStringSubmatch(e.Name()); m != nil {
			if n, err := strconv.Atoi(m[1]); err == nil {
				out = append(out, n)
			}
		}
	}
	return out, nil
}

// wipeShardDirs removes every shard subdirectory with index >= from —
// migration leftovers the committed layout does not name.
func wipeShardDirs(dataDir string, from int) {
	idxs, err := shardDirsIn(dataDir)
	if err != nil {
		return
	}
	for _, i := range idxs {
		if i >= from {
			os.RemoveAll(shardDir(dataDir, i))
		}
	}
}

// Recover rebuilds the store from Config.Dir: each source directory's
// latest snapshot first, then the WAL suffix beyond that snapshot's
// watermarks, re-ingested through the same normalize-and-merge path in
// original order — so recovered Hotspots and Diff results are byte-equal
// to the pre-crash store. It must run on an empty store (call it before
// serving). Corrupt snapshots or WAL tails are skipped and reported in
// RecoveryStats, never fatal; only an unusable data directory errors.
//
// Recover is also the migration path. The directory's committed layout is
// named by its STORE.json (written atomically — the commit point of every
// migration): shard directories it does not name, and pre-shard
// single-store artifacts after a committed migration, are leftovers and
// are wiped, never read. A directory committed under another layout — the
// legacy single-store root, or a different shard count — is adopted by
// routing every recovered series to its current shard and staging the
// complete new layout under .migrate/ while every source file stays
// untouched; one STORE.json write (naming the staging directory as
// pending) then flips authority to the new layout, and the staged shard
// directories swap into place before the old layout's files are removed.
// A crash before the STORE.json write leaves the old layout fully
// authoritative (staging is junk the next boot wipes); a crash after it
// is resumed by the next boot's swap — at every instant exactly one
// layout is authoritative, never a torn mix.
func (s *Store) Recover() (RecoveryStats, error) {
	var rs RecoveryStats
	var t0 time.Time
	if s.met.timings {
		t0 = time.Now()
	}
	if s.cfg.Dir == "" {
		return rs, fmt.Errorf("profstore: recover: no Config.Dir")
	}
	if !s.emptyForRecover() {
		return rs, fmt.Errorf("profstore: recover: store is not empty")
	}
	dir := s.cfg.Dir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return rs, fmt.Errorf("profstore: recover: data dir: %w", err)
	}
	meta, err := persist.ReadStoreMeta(dir)
	if err != nil {
		return rs, fmt.Errorf("profstore: recover: %w", err)
	}
	if meta != nil && meta.Pending != "" {
		// A committed migration died mid-swap. The staged layout is
		// authoritative; finish the swap before reading any shard
		// directory.
		if err := completeSwap(dir, meta); err != nil {
			return rs, fmt.Errorf("profstore: recover: resume layout swap: %w", err)
		}
		rs.Warnings = append(rs.Warnings, "resumed an interrupted layout swap")
	}
	legacy := persist.LegacyLayoutPresent(dir)

	var sources []string
	migrate := false
	switch {
	case meta == nil && legacy:
		// First boot over a pre-shard directory: the root itself is the
		// only trusted source. Shard directories, if any, are handcrafted
		// junk (an uncommitted migration never writes them — it stages
		// under .migrate/) — wipe them.
		wipeShardDirs(dir, 0)
		sources = []string{dir}
		migrate = true
	case meta == nil:
		// No committed layout. Normally a fresh directory; shard
		// directories can only appear here handcrafted (ingest writes the
		// meta before the first WAL byte), so adopt whatever exists and
		// re-commit it under the configured layout.
		idxs, err := shardDirsIn(dir)
		if err != nil {
			return rs, fmt.Errorf("profstore: recover: %w", err)
		}
		for _, i := range idxs {
			sources = append(sources, shardDir(dir, i))
		}
		migrate = len(sources) > 0
	default:
		if legacy {
			// A committed migration's leftovers; the data already lives in
			// the shard directories. Clean, never read.
			if err := persist.RemoveLegacyLayout(dir); err != nil {
				rs.Warnings = append(rs.Warnings, fmt.Sprintf("legacy layout cleanup: %v", err))
			}
		}
		// Shard directories beyond the committed count are leftovers the
		// committed layout does not name — wipe, never read.
		wipeShardDirs(dir, meta.Shards)
		for i := 0; i < meta.Shards; i++ {
			d := shardDir(dir, i)
			if _, err := os.Stat(d); err == nil {
				sources = append(sources, d)
			}
		}
		migrate = meta.Shards != len(s.shards)
	}
	// Staging left by a migration that crashed before its commit point is
	// junk (the sources above are still authoritative and complete).
	os.RemoveAll(filepath.Join(dir, migrateDirName))

	for _, src := range sources {
		if err := s.recoverSource(src, &rs); err != nil {
			return rs, err
		}
	}
	// If a compaction ran between the last snapshot and the crash, the
	// replayed data sits in fine windows the pre-crash store had already
	// folded coarse. Re-running the (deterministic, sorted-order) fold
	// converges the recovered arrangement — and the trees themselves —
	// with the pre-crash store before the first query sees it.
	s.CompactNow()

	if migrate {
		rs.Migrated = true
		if err := s.commitMigration(dir); err != nil {
			return rs, fmt.Errorf("profstore: recover: migrate: %w", err)
		}
	} else if meta == nil {
		// Fresh directory: commit the layout before serving.
		if err := persist.WriteStoreMeta(dir, persist.StoreMeta{Shards: len(s.shards)}); err != nil {
			return rs, fmt.Errorf("profstore: recover: %w", err)
		}
	}
	// The layout is committed and matches this store; skip ensureMeta's
	// disk round-trip on the first ingest.
	s.noteMetaCommitted()
	s.recovery.Store(&rs)
	if s.met.timings {
		d := time.Since(t0)
		s.met.recoverySeconds.Observe(d)
		s.met.journal.Record("recovery",
			fmt.Sprintf("restored %d windows, replayed %d WAL records", rs.WindowsRestored, rs.WALRecords),
			"windows", fmt.Sprint(rs.WindowsRestored),
			"wal_records", fmt.Sprint(rs.WALRecords),
			"skipped_records", fmt.Sprint(rs.WALSkippedRecords),
			"migrated", fmt.Sprint(rs.Migrated),
			"duration", d.String())
	}
	return rs, nil
}

// commitMigration re-commits the store's recovered in-memory state under
// the configured layout without touching any source file until the new
// layout is durable: the complete new layout (snapshot-only shard images,
// no WAL) is staged under .migrate/, one atomic STORE.json write naming
// the staging directory flips authority to it, and completeSwap then
// moves the staged directories into place and removes the old layout.
func (s *Store) commitMigration(dir string) error {
	staging := filepath.Join(dir, migrateDirName)
	if err := os.RemoveAll(staging); err != nil {
		return err
	}
	now := s.cfg.Now()
	comp := s.met.compactions.Value()
	for i, sh := range s.shards {
		c := int64(0)
		if i == 0 {
			c = comp
		}
		if _, err := sh.exportTo(filepath.Join(staging, fmt.Sprintf("shard-%d", i)), now, c); err != nil {
			return fmt.Errorf("stage shard %d: %w", i, err)
		}
	}
	meta := persist.StoreMeta{Shards: len(s.shards), Pending: migrateDirName}
	if err := persist.WriteStoreMeta(dir, meta); err != nil {
		return err
	}
	return completeSwap(dir, &meta)
}

// completeSwap finishes a committed migration: every staged shard
// directory still present swaps into place (one atomic rename each — an
// absent one was swapped by an earlier interrupted attempt), then the old
// layout's remnants — shard directories beyond the committed count,
// legacy single-store files, the staging directory — are removed and
// STORE.json is rewritten without the pending marker. Idempotent: a boot
// finding Pending set calls this before reading any shard directory.
func completeSwap(dataDir string, meta *persist.StoreMeta) error {
	staging := filepath.Join(dataDir, meta.Pending)
	for i := 0; i < meta.Shards; i++ {
		name := fmt.Sprintf("shard-%d", i)
		src := filepath.Join(staging, name)
		if _, err := os.Stat(src); err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return err
		}
		dst := filepath.Join(dataDir, name)
		if err := os.RemoveAll(dst); err != nil {
			return err
		}
		if err := os.Rename(src, dst); err != nil {
			return err
		}
	}
	wipeShardDirs(dataDir, meta.Shards)
	persist.RemoveLegacyLayout(dataDir)
	os.RemoveAll(staging)
	meta.Pending = ""
	return persist.WriteStoreMeta(dataDir, *meta)
}

func (s *Store) emptyForRecover() bool {
	s.rlockAll()
	defer s.runlockAll()
	for _, sh := range s.shards {
		if sh.ingested != 0 || len(sh.fine) != 0 || len(sh.coarse) != 0 {
			return false
		}
	}
	return true
}

// recoverSource loads one persist layout (a shard directory, or the legacy
// single-store root) into the store, routing every recovered series and
// WAL record to its current shard. Within one series all data comes from
// one source and replays in original ingest order, so per-series trees are
// rebuilt byte-equal regardless of how routing changed.
func (s *Store) recoverSource(src string, rs *RecoveryStats) error {
	var offsets map[int64]int64
	indexAdopted := false
	snap, err := persist.ReadSnapshot(src)
	switch {
	case err != nil:
		// A snapshot that fails its checksums is discarded wholesale and
		// this source degrades to WAL-only — losing the windows whose
		// segments were pruned, but never refusing to boot.
		if rs.SnapshotError != "" {
			rs.SnapshotError += "; "
		}
		rs.SnapshotError += err.Error()
	case snap != nil:
		rs.SnapshotLoaded = true
		rs.ProfilesFromSnap += snap.Ingested
		// Counter remainders (all-time ingest total, ages-out data
		// included) ride on shard 0 so directory-wide sums are conserved
		// across snapshot/recover cycles regardless of routing.
		sh0 := s.shards[0]
		sh0.mu.Lock()
		sh0.ingested += snap.Ingested
		if snap.LastIngestUnixNano != 0 {
			if ts := time.Unix(0, snap.LastIngestUnixNano); ts.After(sh0.lastIngest) {
				sh0.lastIngest = ts
			}
		}
		sh0.mu.Unlock()
		s.met.compactions.Add(snap.Compactions)
		for _, ws := range snap.Windows {
			for _, ss := range ws.Series {
				// Snapshot trees were normalized at original ingest and
				// are adopted as-is; labels round-trip through Meta.
				labels := LabelsOf(ss.Profile.Meta)
				sh := s.shardFor(labels.Key())
				sh.mu.Lock()
				sh.adoptSeriesLocked(ws.Start, ws.DurNS, ws.Coarse, ss.Key, labels, ss.Profile.Tree, ss.Profiles)
				sh.mu.Unlock()
			}
			rs.WindowsRestored++
		}
		// Adopt the snapshot's trend-tracker state, each series routed to
		// its current shard (so trend state survives shard-count
		// migrations too). Windows observed after this snapshot are
		// re-observed by the catch-up pass Recover's CompactNow runs —
		// replayed windows recover byte-equal and are fed in the same
		// per-series order, so the tracker converges with the pre-crash
		// store. A corrupt blob degrades to rebuilding from retained
		// windows only, reported but never fatal.
		if len(snap.Trend) > 0 && !s.cfg.Trend.Disabled {
			states, terr := trend.DecodeState(snap.Trend)
			if terr != nil {
				rs.Warnings = append(rs.Warnings, fmt.Sprintf("trend state discarded: %v", terr))
			} else {
				for _, key := range sortedKeys(states) {
					sh := s.shardFor(key)
					sh.mu.Lock()
					sh.tracker.Adopt(key, states[key])
					sh.mu.Unlock()
				}
			}
		}
		// Adopt the snapshot's frame index, each posting routed to the
		// series' current shard (like trend state, so the index survives
		// shard-count migrations). Postings are over-approximate, so
		// adopting historical ones is always sound; windows replayed beyond
		// the snapshot re-register their frames when the catch-up
		// CompactNow closes them. A corrupt blob degrades to rebuilding
		// from retained windows, reported but never fatal.
		if !s.cfg.IndexDisabled && len(snap.Index) > 0 {
			st, ierr := decodeIndexState(snap.Index)
			if ierr != nil {
				rs.Warnings = append(rs.Warnings, fmt.Sprintf("index state discarded: %v", ierr))
			} else {
				for _, sh := range s.shards {
					sh.mu.Lock()
					for _, fs := range st.Frames {
						var keys []string
						for _, key := range fs.Series {
							if s.shardFor(key) == sh {
								keys = append(keys, key)
							}
						}
						if len(keys) > 0 {
							sh.idx.adoptFrame(fs, keys)
						}
					}
					sh.mu.Unlock()
				}
				indexAdopted = true
			}
		}
		offsets = snap.WALOffsets
	}

	wal, err := persist.OpenWAL(src)
	if err != nil {
		return fmt.Errorf("profstore: recover: %w", err)
	}
	rep, err := wal.Replay(offsets, func(start, tstamp int64, p *profiler.Profile) error {
		if p == nil || p.Tree == nil {
			return fmt.Errorf("nil profile")
		}
		labels := LabelsOf(p.Meta)
		sh := s.shardFor(labels.Key())
		sh.mu.Lock()
		sh.mergeIntoWindowLocked(time.Unix(0, start), labels, cct.NormalizeAddresses(p.Tree))
		sh.ingested++
		if ts := time.Unix(0, tstamp); ts.After(sh.lastIngest) {
			sh.lastIngest = ts
		}
		sh.mu.Unlock()
		return nil
	})
	if err != nil {
		return fmt.Errorf("profstore: recover: wal replay: %w", err)
	}
	rs.WALSegments += rep.Segments
	rs.WALRecords += rep.Records
	rs.WALSkippedRecords += rep.SkippedRecords
	rs.WALSkippedSegments += rep.SkippedSegments
	// A source that carried data but no usable index blob (pre-index
	// snapshot, corrupt blob, or WAL-only recovery) forces an index
	// rebuild from the retained windows — Recover's CompactNow does the
	// actual work; here we only count it for Stats.
	if !s.cfg.IndexDisabled && !indexAdopted &&
		(rep.Records > 0 || (snap != nil && len(snap.Windows) > 0)) {
		s.met.indexRebuilds.Inc()
		if s.met.timings {
			s.met.journal.Record("index_rebuild",
				fmt.Sprintf("source %s carried no usable frame index; rebuilding from retained windows", filepath.Base(src)),
				"source", filepath.Base(src))
		}
	}
	if len(rep.Warnings) > 0 && src != s.cfg.Dir {
		prefix := filepath.Base(src) + ": "
		for _, w := range rep.Warnings {
			rs.Warnings = append(rs.Warnings, prefix+w)
		}
	} else {
		rs.Warnings = append(rs.Warnings, rep.Warnings...)
	}
	return nil
}

// adoptSeriesLocked installs one snapshot-recovered series tree into the
// bucket starting at startNS, merging if the series already exists (which
// only happens for handcrafted multi-source overlaps). Callers hold sh.mu
// exclusively.
func (sh *shard) adoptSeriesLocked(startNS, durNS int64, coarse bool, key string, labels Labels, tree *cct.Tree, profiles int) {
	m := sh.fine
	if coarse {
		m = sh.coarse
	}
	w := m[startNS]
	if w == nil {
		w = &window{
			start:  time.Unix(0, startNS),
			dur:    time.Duration(durNS),
			series: make(map[string]*series),
		}
		m[startNS] = w
	}
	if ser := w.series[key]; ser != nil {
		cct.Merge(ser.tree, tree)
		ser.agg = nil // tree changed; re-aggregated at the next close pass
		ser.profiles += profiles
	} else {
		w.series[key] = &series{labels: labels, tree: tree, profiles: profiles}
	}
	sh.gens[winKey{startNS, coarse}]++
}
