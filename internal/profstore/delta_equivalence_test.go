package profstore

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deepcontext/internal/cct"
	"deepcontext/internal/profdb"
	"deepcontext/internal/profiler"
)

// This file proves the profdb v3 delta path is an encoding change, never a
// data change: a store fed exclusively through mutate→delta-encode→apply→
// ingest must answer every query surface byte-identically to a store fed
// the same evolution as whole profiles, across shard counts, cache
// configurations, injected stream faults, and durable restarts.

// deltaAgent is one simulated long-lived profiling client: a cumulative
// profile it keeps mutating, plus both halves of a v3 session (the
// encoder a sender would run and the decoder its receiver would run).
// The decoder verifies checksums — this is the untrusted-receiver
// configuration, not the client shadow's TrustChecksums mode.
type deltaAgent struct {
	labels  Labels
	cum     *profiler.Profile
	targets []*cct.Node
	pcBase  uint64
	serial  int

	enc   *profdb.DeltaEncoder
	dec   *profdb.DeltaDecoder
	cur   profdb.SeriesCursor
	epoch uint64

	deltas, fulls, rejects int
}

func newDeltaAgent(lb Labels, pcBase uint64) *deltaAgent {
	a := &deltaAgent{
		labels: lb,
		cum:    synthProfile(lb.Workload, lb.Vendor, lb.Framework, pcBase, 1),
		pcBase: pcBase,
		enc:    profdb.NewDeltaEncoder(),
		dec:    profdb.NewDeltaDecoder(),
	}
	a.cum.Tree.Visit(func(n *cct.Node) {
		if n.Kind != cct.KindRoot {
			a.targets = append(a.targets, n)
		}
	})
	return a
}

// mutate advances the cumulative profile by one step: mostly new samples
// at existing contexts (the steady-state shape deltas exploit), sometimes
// a new call path or a metric name the schema has not seen.
func (a *deltaAgent) mutate(rng *rand.Rand) {
	tr := a.cum.Tree
	switch rng.Intn(10) {
	case 0, 1:
		a.serial++
		leaf := tr.InsertPath([]cct.Frame{
			cct.PythonFrame("train.py", 10+a.serial, "main"),
			cct.OperatorFrame(fmt.Sprintf("aten::op_%d", a.serial%7)),
			{Kind: cct.KindKernel, Name: fmt.Sprintf("kern_%d", a.serial), Lib: "[gpu]",
				PC: a.pcBase + uint64(64*a.serial)},
		})
		a.targets = append(a.targets, leaf)
		tr.AddMetric(leaf, tr.MetricID(cct.MetricGPUTime), float64(10+a.serial))
	case 2:
		a.serial++
		id := tr.MetricID(fmt.Sprintf("aux_%d", a.serial%3))
		tr.AddMetric(a.targets[rng.Intn(len(a.targets))], id, float64(rng.Intn(50)+1))
	default:
		id := tr.MetricID(cct.MetricGPUTime)
		if rng.Intn(2) == 0 {
			id = tr.MetricID(cct.MetricCPUTime)
		}
		tr.AddMetric(a.targets[rng.Intn(len(a.targets))], id, float64(rng.Intn(1000)+1))
	}
}

// upload ships the current cumulative state through the session and
// returns the receiver-side materialized profile. Established series send
// deltas; occasionally the frame is corrupted in flight first, and the
// typed rejection (ErrStaleBase for a desynced base, ErrCorrupt for wire
// damage) must leave the session recoverable by the client's own
// protocol: a full frame under a bumped epoch.
func (a *deltaAgent) upload(t *testing.T, rng *rand.Rand) *profiler.Profile {
	t.Helper()
	if a.cur.Base != nil {
		f, ok, err := a.enc.EncodeDeltaFrom(a.cur.Base, a.cur.Sum, a.cum, a.epoch, a.cur.Seq+1)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			fault := rng.Intn(12)
			if fault == 1 && len(f.Nodes) == 0 {
				fault = 12
			}
			switch fault {
			case 0:
				// Desynced sender: the base checksum disagrees. The frame
				// must be rejected before the cursor is touched.
				f.BaseSum ^= 0x5a5a5a5a
				if err := a.dec.AddFrames(&f); err != nil {
					t.Fatal(err)
				}
				if _, err := a.dec.Apply(&a.cur, &f); !errors.Is(err, profdb.ErrStaleBase) {
					t.Fatalf("corrupted base checksum applied: err=%v, want ErrStaleBase", err)
				}
				a.rejects++
			case 1:
				// Wire damage inside a node: rejected with ErrCorrupt and
				// the cursor poisoned (the base may be half-mutated).
				f.Nodes[0].Excl = append([]profdb.MetricEntry{{Idx: 9998}}, f.Nodes[0].Excl...)
				if err := a.dec.AddFrames(&f); err != nil {
					t.Fatal(err)
				}
				if _, err := a.dec.Apply(&a.cur, &f); !errors.Is(err, profdb.ErrCorrupt) {
					t.Fatalf("corrupt metric index applied: err=%v, want ErrCorrupt", err)
				}
				a.rejects++
			default:
				if err := a.dec.AddFrames(&f); err != nil {
					t.Fatal(err)
				}
				p, err := a.dec.Apply(&a.cur, &f)
				if err != nil {
					t.Fatal(err)
				}
				a.deltas++
				return p
			}
		}
	}
	// Establishment, fallback or resync: a full frame under a bumped
	// epoch — the client's two-tier recovery.
	a.epoch++
	f, err := a.enc.EncodeFull(a.cum, a.epoch, a.cur.Seq+1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.dec.AddFrames(&f); err != nil {
		t.Fatal(err)
	}
	p, err := a.dec.Apply(&a.cur, &f)
	if err != nil {
		t.Fatal(err)
	}
	a.fulls++
	return p
}

// TestPropertyDeltaFullEquivalence drives randomized
// mutate/upload/advance/compact interleavings through paired stores — one
// fed materialized delta-session output, one fed the identical evolution
// as whole profiles — and requires Hotspots, TopK, Search, Diff and
// Windows to match byte-for-byte at every checkpoint, across
// shards{1,2,4} x cache{off,on} plus two durable variants restarted
// mid-script (graceful: snapshot then close; hard: WAL-only replay).
func TestPropertyDeltaFullEquivalence(t *testing.T) {
	for _, seed := range []int64{3, 11, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runDeltaEquivalenceScript(t, seed)
		})
	}
}

func runDeltaEquivalenceScript(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	clock := newClock(base)
	cfgBase := Config{Window: time.Minute, Retention: 4, CoarseFactor: 3, CoarseRetention: 6, Now: clock.Now}

	type pair struct {
		name    string
		cfg     Config // the delta side's config (Dir set on restart pairs)
		full    *Store
		delta   *Store
		restart string // "", "graceful", "hard"
	}
	var pairs []*pair
	newPair := func(name string, cfg Config, restart string) {
		fullCfg := cfg
		fullCfg.Dir = "" // the control store is always in-memory
		pr := &pair{name: name, cfg: cfg, full: New(fullCfg), delta: New(cfg), restart: restart}
		pairs = append(pairs, pr)
		t.Cleanup(func() { pr.full.Close(); pr.delta.Close() })
	}
	for _, shards := range []int{1, 2, 4} {
		for _, cacheSize := range []int{0, 64} {
			cfg := cfgBase
			cfg.Shards = shards
			cfg.CacheSize = cacheSize
			newPair(fmt.Sprintf("shards=%d/cache=%d", shards, cacheSize), cfg, "")
		}
	}
	for _, mode := range []string{"graceful", "hard"} {
		cfg := cfgBase
		cfg.Shards = 2
		cfg.CacheSize = 8
		cfg.Dir = t.TempDir()
		newPair("restart="+mode, cfg, mode)
	}

	var agents []*deltaAgent
	for i, lb := range equivSeriesPool[:5] {
		agents = append(agents, newDeltaAgent(lb, uint64(0x1000*(i+1))))
	}

	// uploadRound mutates a random subset of agents, ships each through
	// its session, and lands the results in every pair: the control side
	// ingests the cumulative profiles one by one (the v2 path), the delta
	// side ingests the materialized session output through the same
	// Prepare/IngestPrepared batch path the /stream handler uses.
	uploadRound := func() {
		count := rng.Intn(len(agents)) + 1
		perm := rng.Perm(len(agents))[:count]
		var chosen []*deltaAgent
		mats := make([]*profiler.Profile, 0, count)
		for _, ai := range perm {
			a := agents[ai]
			for m := rng.Intn(3) + 1; m > 0; m-- {
				a.mutate(rng)
			}
			mats = append(mats, a.upload(t, rng))
			chosen = append(chosen, a)
		}
		for _, pr := range pairs {
			for _, a := range chosen {
				mustIngest(t, pr.full, a.cum)
			}
			batch := make([]PreparedProfile, 0, len(mats))
			for _, p := range mats {
				pp, err := pr.delta.Prepare(p)
				if err != nil {
					t.Fatal(err)
				}
				batch = append(batch, pp)
			}
			if _, err := pr.delta.IngestPrepared(batch); err != nil {
				t.Fatal(err)
			}
		}
	}

	verify := func(step int) {
		t.Helper()
		hotspotQueries := []struct {
			filter Labels
			metric string
			top    int
		}{
			{Labels{}, cct.MetricGPUTime, 0},
			{Labels{Vendor: "nvidia"}, cct.MetricGPUTime, 5},
			{Labels{Workload: "unet"}, cct.MetricCPUTime, 3},
		}
		for _, pr := range pairs {
			for qi, q := range hotspotQueries {
				wantRows, wantInfo, wantErr := pr.full.Hotspots(context.Background(), time.Time{}, time.Time{}, q.filter, q.metric, q.top)
				gotRows, gotInfo, gotErr := pr.delta.Hotspots(context.Background(), time.Time{}, time.Time{}, q.filter, q.metric, q.top)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("step %d %s hotspots[%d]: delta err %v, full err %v", step, pr.name, qi, gotErr, wantErr)
				}
				if wantErr == nil && (mustJSON(t, gotRows) != mustJSON(t, wantRows) ||
					mustJSON(t, gotInfo) != mustJSON(t, wantInfo)) {
					t.Fatalf("step %d %s hotspots[%d] diverged:\n got %s\nwant %s",
						step, pr.name, qi, mustJSON(t, gotRows), mustJSON(t, wantRows))
				}
			}
			wantRows, wantInfo, wantErr := pr.full.TopK(context.Background(), time.Time{}, time.Time{}, Labels{}, cct.MetricGPUTime, 0)
			gotRows, gotInfo, gotErr := pr.delta.TopK(context.Background(), time.Time{}, time.Time{}, Labels{}, cct.MetricGPUTime, 0)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("step %d %s topk: delta err %v, full err %v", step, pr.name, gotErr, wantErr)
			}
			if wantErr == nil && (mustJSON(t, gotRows) != mustJSON(t, wantRows) ||
				mustJSON(t, gotInfo) != mustJSON(t, wantInfo)) {
				t.Fatalf("step %d %s topk diverged:\n got %s\nwant %s",
					step, pr.name, mustJSON(t, gotRows), mustJSON(t, wantRows))
			}
			wantSearch, _, wantErr := pr.full.Search(context.Background(), time.Time{}, time.Time{}, Labels{}, "gemm", cct.MetricGPUTime, 0)
			gotSearch, _, gotErr := pr.delta.Search(context.Background(), time.Time{}, time.Time{}, Labels{}, "gemm", cct.MetricGPUTime, 0)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("step %d %s search: delta err %v, full err %v", step, pr.name, gotErr, wantErr)
			}
			if wantErr == nil && mustJSON(t, gotSearch) != mustJSON(t, wantSearch) {
				t.Fatalf("step %d %s search diverged:\n got %s\nwant %s",
					step, pr.name, mustJSON(t, gotSearch), mustJSON(t, wantSearch))
			}
			wins := pr.full.Windows()
			if gw := pr.delta.Windows(); mustJSON(t, gw) != mustJSON(t, wins) {
				t.Fatalf("step %d %s windows diverged:\n got %s\nwant %s",
					step, pr.name, mustJSON(t, gw), mustJSON(t, wins))
			}
			if len(wins) >= 2 {
				before, after := wins[0].Start, wins[len(wins)-1].Start
				wantDiff, wantErr := pr.full.Diff(context.Background(), before, after, Labels{}, cct.MetricGPUTime, 5)
				gotDiff, gotErr := pr.delta.Diff(context.Background(), before, after, Labels{}, cct.MetricGPUTime, 5)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("step %d %s diff: delta err %v, full err %v", step, pr.name, gotErr, wantErr)
				}
				if wantErr == nil && mustJSON(t, gotDiff) != mustJSON(t, wantDiff) {
					t.Fatalf("step %d %s diff diverged:\n got %s\nwant %s",
						step, pr.name, mustJSON(t, gotDiff), mustJSON(t, wantDiff))
				}
			}
		}
	}

	const steps = 110
	for step := 0; step < steps; step++ {
		if step == steps/2 {
			// Restart the durable delta stores mid-script: the recovered
			// state must keep answering identically to the uninterrupted
			// control store.
			for _, pr := range pairs {
				if pr.restart == "" {
					continue
				}
				if pr.restart == "graceful" {
					if _, err := pr.delta.Snapshot(); err != nil {
						t.Fatal(err)
					}
				}
				pr.delta.Close()
				pr.delta = New(pr.cfg)
				if _, err := pr.delta.Recover(); err != nil {
					t.Fatal(err)
				}
				// Recover ends with a catch-up CompactNow; the control
				// store must run the same pass or it retains windows the
				// recovered store's horizons already folded or dropped.
				pr.full.CompactNow()
			}
			verify(step)
		}
		switch r := rng.Intn(10); {
		case r < 5:
			uploadRound()
		case r < 7:
			clock.Advance(time.Duration(rng.Intn(3)+1) * cfgBase.Window)
		case r < 8:
			for _, pr := range pairs {
				pr.full.CompactNow()
				pr.delta.CompactNow()
			}
		default:
			verify(step)
		}
	}

	// Final round: every series uploads once more, then the session cursor
	// checksum must equal the cumulative profile's — the delta≡full
	// invariant at the encoding layer — and every surface must agree.
	for _, a := range agents {
		a.mutate(rng)
		mat := a.upload(t, rng)
		for _, pr := range pairs {
			mustIngest(t, pr.full, a.cum)
			pp, err := pr.delta.Prepare(mat)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := pr.delta.IngestPrepared([]PreparedProfile{pp}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, a := range agents {
		if got := profdb.Checksum(a.cum); got != a.cur.Sum {
			t.Errorf("series %s: materialized checksum %x != cumulative %x", a.labels.Key(), a.cur.Sum, got)
		}
		if a.deltas == 0 || a.fulls == 0 {
			t.Errorf("series %s exercised deltas=%d fulls=%d; the script must cover both paths",
				a.labels.Key(), a.deltas, a.fulls)
		}
	}
	verify(steps)
}

// TestDeltaStreamStress hammers one store with concurrent delta sessions
// (each driving mutate→encode→apply→Prepare→IngestPrepared), plain full
// uploads, window-advancing compaction, and scraping readers. Run under
// -race in CI. Two invariants survive the interleaving: reads are
// monotonic (Stats().Ingested never goes backwards) and metric mass is
// conserved (the final full-range aggregate equals the sum every writer
// contributed, nothing lost or double-counted by the batch path).
func TestDeltaStreamStress(t *testing.T) {
	clock := newClock(base)
	// CoarseRetention is effectively unbounded so compaction folds but
	// never drops — dropping would break conservation by design.
	s := New(Config{Window: time.Minute, Retention: 3, CoarseFactor: 4, CoarseRetention: 1 << 20,
		Shards: 4, CacheSize: 16, Now: clock.Now})
	defer s.Close()

	const deltaWriters, fullWriters, uploadsPer = 3, 2, 50
	var wg sync.WaitGroup
	contrib := make([]float64, deltaWriters+fullWriters)

	for w := 0; w < deltaWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			lb := Labels{Workload: fmt.Sprintf("D%d", w), Vendor: "Nvidia", Framework: "pytorch"}
			a := newDeltaAgent(lb, uint64(0x100000*(w+1)))
			running := 140.0 // synthProfile's initial gpu_time mass
			for i := 0; i < uploadsPer; i++ {
				id := a.cum.Tree.MetricID(cct.MetricGPUTime)
				v := float64(rng.Intn(500) + 1)
				a.cum.Tree.AddMetric(a.targets[rng.Intn(len(a.targets))], id, v)
				running += v
				mat := a.upload(t, rng)
				pp, err := s.Prepare(mat)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := s.IngestPrepared([]PreparedProfile{pp}); err != nil {
					t.Error(err)
					return
				}
				contrib[w] += running // cumulative profiles re-land their whole mass
			}
		}(w)
	}
	for w := 0; w < fullWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lb := Labels{Workload: fmt.Sprintf("F%d", w), Vendor: "AMD", Framework: "jax"}
			for i := 0; i < uploadsPer; i++ {
				p := synthProfile(lb.Workload, lb.Vendor, lb.Framework, uint64(0x200000*(w+1)), 1)
				if _, err := s.Ingest(p); err != nil {
					t.Error(err)
					return
				}
				contrib[deltaWriters+w] += 140 // gpu_time mass per synthProfile
			}
		}(w)
	}

	done := make(chan struct{})
	var compactWG sync.WaitGroup
	compactWG.Add(1)
	go func() {
		defer compactWG.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			clock.Advance(time.Minute)
			s.CompactNow()
		}
	}()
	var lastIngested atomic.Int64
	for r := 0; r < 2; r++ {
		compactWG.Add(1)
		go func() {
			defer compactWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				n := int64(s.Stats().Ingested)
				for {
					prev := lastIngested.Load()
					if n < prev {
						t.Errorf("Stats().Ingested went backwards: %d after %d", n, prev)
						return
					}
					if prev >= n || lastIngested.CompareAndSwap(prev, n) {
						break
					}
				}
				s.Hotspots(context.Background(), time.Time{}, time.Time{}, Labels{}, cct.MetricGPUTime, 5)
				s.Windows()
			}
		}()
	}
	wg.Wait()
	close(done)
	compactWG.Wait()

	if got := s.Stats().Ingested; got != (deltaWriters+fullWriters)*uploadsPer {
		t.Fatalf("ingested = %d, want %d", got, (deltaWriters+fullWriters)*uploadsPer)
	}
	tree, _, err := s.Aggregate(context.Background(), time.Time{}, time.Time{}, Labels{})
	if err != nil {
		t.Fatal(err)
	}
	id, ok := tree.Schema.Lookup(cct.MetricGPUTime)
	if !ok {
		t.Fatal("aggregate lost the gpu_time metric")
	}
	var want float64
	for _, c := range contrib {
		want += c
	}
	got := tree.Root.InclValue(id)
	if diff := got - want; diff < -1e-6*want || diff > 1e-6*want {
		t.Fatalf("gpu_time mass not conserved: aggregate %v, writers contributed %v", got, want)
	}
}
