package profstore_test

import (
	"context"
	"fmt"
	"os"
	"time"

	"deepcontext/internal/cct"
	"deepcontext/internal/profiler"
	"deepcontext/internal/profstore"
)

// Example_snapshotAndRecover shows the durable-store lifecycle: ingest into
// a store rooted at a data directory, snapshot it, then rebuild a fresh
// store from disk and query it — the recovered hotspots match exactly.
func Example_snapshotAndRecover() {
	dir, err := os.MkdirTemp("", "profstore-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	cfg := profstore.Config{
		Window: time.Minute,
		Now:    func() time.Time { return clock },
		Dir:    dir, // enables the WAL and snapshots
	}

	profile := func(gpuNanos float64) *profiler.Profile {
		tree := cct.New()
		gid := tree.MetricID(cct.MetricGPUTime)
		leaf := tree.InsertPath([]cct.Frame{
			cct.OperatorFrame("aten::conv2d"),
			{Kind: cct.KindKernel, Name: "gemm", Lib: "[gpu]", PC: 0x100},
		})
		tree.AddMetric(leaf, gid, gpuNanos)
		return &profiler.Profile{
			Tree: tree,
			Meta: profiler.Meta{Workload: "UNet", Vendor: "Nvidia", Framework: "pytorch"},
		}
	}

	store := profstore.New(cfg)
	store.Ingest(profile(100))
	store.Ingest(profile(250))
	if _, err := store.Snapshot(); err != nil {
		panic(err)
	}
	store.Close()

	// A new process: same directory, empty store, Recover before serving.
	revived := profstore.New(cfg)
	rs, err := revived.Recover()
	if err != nil {
		panic(err)
	}
	defer revived.Close()
	fmt.Printf("snapshot loaded: %v, windows restored: %d\n", rs.SnapshotLoaded, rs.WindowsRestored)

	rows, info, err := revived.Hotspots(context.Background(), time.Time{}, time.Time{}, profstore.Labels{}, cct.MetricGPUTime, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("profiles: %d, top hotspot: %s %.0f\n", info.Profiles, rows[0].Label, rows[0].Excl)
	// Output:
	// snapshot loaded: true, windows restored: 1
	// profiles: 2, top hotspot: gemm 350
}
