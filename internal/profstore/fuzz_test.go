package profstore

import (
	"testing"

	"deepcontext/internal/cct"
)

// FuzzIndexStateCodec holds the frame-index snapshot codec to its
// contract: arbitrary bytes either decode into well-formed state or are
// rejected — never a panic, never a kept frame with an out-of-range kind
// (a corrupt or adversarial blob degrades to a smaller index) — and
// whatever decodes can be adopted into a live index and re-encoded into a
// blob that decodes again.
func FuzzIndexStateCodec(f *testing.F) {
	// A real blob seeds the corpus: the index of one normalized series.
	x := newFrameIndex()
	x.addSeries("unet/nvidia/pytorch", cct.NormalizeAddresses(synthProfile("UNet", "Nvidia", "pytorch", 0x1000, 1).Tree))
	blob, err := x.encodeState()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte(`{"frames":[{"kind":99,"labels":["x"],"series":["a"]}]}`))
	f.Add([]byte(`{"frames":[{"kind":-1,"name":"gemm"}]}`))
	f.Add([]byte(`{"frames":[{"kind":0,"series":["root-must-drop"]}]}`))
	f.Add([]byte(`{"frames":null}`))
	f.Add([]byte("{broken"))
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := decodeIndexState(data)
		if err != nil {
			return
		}
		idx := newFrameIndex()
		for _, fs := range st.Frames {
			if !cct.FrameKind(fs.Kind).Valid() || fs.Kind == int(cct.KindRoot) {
				t.Fatalf("decode kept an out-of-range kind: %+v", fs)
			}
			idx.adoptFrame(fs, fs.Series)
		}
		out, err := idx.encodeState()
		if err != nil {
			t.Fatalf("adopted state does not re-encode: %v", err)
		}
		if _, err := decodeIndexState(out); err != nil {
			t.Fatalf("re-encoded state does not decode: %v\n%s", err, out)
		}
	})
}
