package profstore

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"deepcontext/internal/cct"
)

// queryImage renders every query surface the acceptance criteria cover —
// hotspots over the full range, a window-vs-window diff, windows and the
// aggregate info — as one JSON blob, so "recovered state answers byte-equal"
// is literally a byte comparison.
func queryImage(t *testing.T, s *Store, before, after time.Time) []byte {
	t.Helper()
	rows, info, err := s.Hotspots(context.Background(), time.Time{}, time.Time{}, Labels{}, cct.MetricGPUTime, 0)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := s.Diff(context.Background(), before, after, Labels{}, cct.MetricGPUTime, 0)
	if err != nil {
		t.Fatal(err)
	}
	img, err := json.Marshal(struct {
		Rows    []Hotspot
		Info    AggregateInfo
		Diff    *DiffResult
		Windows []WindowInfo
	}{rows, info, diff, s.Windows()})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// fillStores ingests the same profile sequence into every store: two
// windows, two series, shifting PCs that normalization must fold.
func fillStores(t *testing.T, clock *fakeClock, stores ...*Store) {
	t.Helper()
	for i := 0; i < 4; i++ {
		for _, s := range stores {
			mustIngest(t, s, synthProfile("UNet", "Nvidia", "pytorch", uint64(0x1000+i*64), float64(i+1)))
		}
	}
	for _, s := range stores {
		mustIngest(t, s, synthProfile("DLRM", "AMD", "jax", 0x9000, 2))
	}
	clock.Advance(time.Minute)
	for i := 0; i < 3; i++ {
		for _, s := range stores {
			mustIngest(t, s, synthProfile("UNet", "Nvidia", "pytorch", uint64(0x5000+i*32), float64(i+5)))
		}
	}
}

// The WAL-only path: a store killed between WAL append and any snapshot
// (there is none at all here) recovers byte-equal from the log alone.
func TestRecoverFromWALOnlyIsByteEqual(t *testing.T) {
	dir := t.TempDir()
	clock := newClock(base)
	durable := New(Config{Window: time.Minute, Now: clock.Now, Dir: dir})
	control := New(Config{Window: time.Minute, Now: clock.Now})
	fillStores(t, clock, durable, control)
	want := queryImage(t, control, base, base.Add(time.Minute))
	if got := queryImage(t, durable, base, base.Add(time.Minute)); string(got) != string(want) {
		t.Fatal("durable store diverged from control before the crash")
	}
	durable.Close() // "crash": nothing snapshotted, only the WAL survives

	revived := New(Config{Window: time.Minute, Now: clock.Now, Dir: dir})
	rs, err := revived.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer revived.Close()
	if rs.SnapshotLoaded || rs.WALRecords != 8 || rs.WALSkippedRecords != 0 || rs.WALSkippedSegments != 0 {
		t.Fatalf("recovery = %+v", rs)
	}
	if got := queryImage(t, revived, base, base.Add(time.Minute)); string(got) != string(want) {
		t.Fatalf("recovered image differs from uninterrupted store:\n got %s\nwant %s", got, want)
	}
	if st := revived.Stats(); st.Ingested != 8 || !st.LastIngest.Equal(base.Add(time.Minute)) {
		t.Fatalf("stats = %+v", st)
	}
}

// The snapshot-plus-suffix path: kill after more ingests landed beyond the
// last snapshot. Recovery loads the snapshot and replays only the WAL
// suffix; nothing is double-counted, and the result is byte-equal.
func TestRecoverSnapshotPlusWALSuffixIsByteEqual(t *testing.T) {
	dir := t.TempDir()
	clock := newClock(base)
	durable := New(Config{Window: time.Minute, Now: clock.Now, Dir: dir})
	control := New(Config{Window: time.Minute, Now: clock.Now})

	for i := 0; i < 3; i++ {
		p := synthProfile("UNet", "Nvidia", "pytorch", uint64(0x100*i), float64(i+1))
		mustIngest(t, durable, p)
		mustIngest(t, control, p)
	}
	if _, err := durable.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// The crash happens after these appends but before any later snapshot.
	clock.Advance(time.Minute)
	for i := 0; i < 2; i++ {
		p := synthProfile("UNet", "Nvidia", "pytorch", uint64(0x700*(i+1)), float64(i+9))
		mustIngest(t, durable, p)
		mustIngest(t, control, p)
	}
	want := queryImage(t, control, base, base.Add(time.Minute))
	durable.Close()

	revived := New(Config{Window: time.Minute, Now: clock.Now, Dir: dir})
	rs, err := revived.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer revived.Close()
	if !rs.SnapshotLoaded || rs.WindowsRestored != 1 || rs.ProfilesFromSnap != 3 {
		t.Fatalf("recovery = %+v", rs)
	}
	// Only the post-snapshot suffix replays (the covered first-window
	// records must not be re-ingested).
	if rs.WALRecords != 2 || rs.WALSkippedRecords != 0 {
		t.Fatalf("recovery = %+v", rs)
	}
	if got := queryImage(t, revived, base, base.Add(time.Minute)); string(got) != string(want) {
		t.Fatalf("recovered image differs from uninterrupted store:\n got %s\nwant %s", got, want)
	}
	if st := revived.Stats(); st.Ingested != 5 {
		t.Fatalf("ingested = %d, want 5", st.Ingested)
	}
}

// A snapshot prunes the WAL segments it fully covers; the segment still
// receiving appends survives.
func TestSnapshotPrunesCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Now: clock.Now, Dir: dir})
	defer s.Close()
	mustIngest(t, s, synthProfile("UNet", "Nvidia", "pytorch", 0x1, 1))
	clock.Advance(time.Minute)
	mustIngest(t, s, synthProfile("UNet", "Nvidia", "pytorch", 0x2, 2))

	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "shard-0", "wal", "*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("segments after snapshot = %v, want only the open one", segs)
	}
	st := s.Stats()
	if st.Persist == nil || st.Persist.Snapshots != 1 || st.Persist.PrunedWALSegments != 1 || st.Persist.WALAppends != 2 {
		t.Fatalf("persist stats = %+v", st.Persist)
	}
}

// Retention drops a coarse window; its fine windows' WAL segments must go
// with it, or a WAL-only recovery would resurrect aged-out data.
func TestCompactionPrunesWALOfDroppedCoarseWindows(t *testing.T) {
	dir := t.TempDir()
	clock := newClock(base)
	s := New(Config{
		Window: time.Minute, Retention: 2, CoarseFactor: 3, CoarseRetention: 2,
		Now: clock.Now, Dir: dir,
	})
	defer s.Close()
	for i := 0; i < 3; i++ {
		mustIngest(t, s, synthProfile("UNet", "Nvidia", "pytorch", uint64(0x10*i), 1))
		clock.Advance(time.Minute)
	}
	clock.Advance(24 * time.Hour)
	s.CompactNow() // folds everything into coarse buckets
	s.CompactNow() // drops the (now expired) coarse buckets

	if st := s.Stats(); st.FineWindows != 0 || st.CoarseWindows != 0 {
		t.Fatalf("store not empty: %+v", st)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "shard-0", "wal", "*.wal"))
	if len(segs) != 0 {
		t.Fatalf("WAL segments survived retention: %v", segs)
	}

	// And a recovery over the emptied directory starts empty.
	s.Close()
	revived := New(Config{Window: time.Minute, Now: clock.Now, Dir: dir})
	rs, err := revived.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer revived.Close()
	if rs.WALRecords != 0 {
		t.Fatalf("aged-out data resurrected: %+v", rs)
	}
}

// A compaction that runs AFTER the last snapshot folds fine windows the
// snapshot still holds as fine. Recovery must converge: replay, then the
// deterministic sorted-order re-fold, so the recovered arrangement AND the
// coarse trees match the pre-crash store byte-for-byte.
func TestRecoverAfterPostSnapshotCompactionIsByteEqual(t *testing.T) {
	dir := t.TempDir()
	clock := newClock(base)
	cfg := Config{Window: time.Minute, Retention: 2, CoarseFactor: 3, Now: clock.Now, Dir: dir}
	durable := New(cfg)

	for i := 0; i < 3; i++ {
		mustIngest(t, durable, synthProfile("UNet", "Nvidia", "pytorch", uint64(0x100*i), float64(i+1)))
		mustIngest(t, durable, synthProfile("DLRM", "AMD", "jax", uint64(0x900*i), float64(i+2)))
		clock.Advance(time.Minute)
	}
	if _, err := durable.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Time passes; compaction folds the oldest windows into a coarse
	// bucket — a state the snapshot has never seen. Then the crash.
	clock.Advance(2 * time.Minute)
	if folded, _ := durable.CompactNow(); folded == 0 {
		t.Fatal("setup: compaction folded nothing")
	}
	preStats := durable.Stats()
	if preStats.CoarseWindows == 0 {
		t.Fatalf("setup: no coarse window (%+v)", preStats)
	}
	// The diff's before side resolves through the coarse bucket now.
	want := queryImage(t, durable, base, base.Add(2*time.Minute))
	durable.Close()

	revived := New(cfg)
	if _, err := revived.Recover(); err != nil {
		t.Fatal(err)
	}
	defer revived.Close()
	st := revived.Stats()
	if st.FineWindows != preStats.FineWindows || st.CoarseWindows != preStats.CoarseWindows {
		t.Fatalf("window arrangement diverged: pre %+v post %+v", preStats, st)
	}
	if got := queryImage(t, revived, base, base.Add(2*time.Minute)); string(got) != string(want) {
		t.Fatalf("recovered image differs after post-snapshot compaction:\n got %s\nwant %s", got, want)
	}
}

// A corrupted snapshot must not stop the boot: recovery degrades to
// WAL-only replay and reports why.
func TestRecoverSurvivesCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Now: clock.Now, Dir: dir})
	mustIngest(t, s, synthProfile("UNet", "Nvidia", "pytorch", 0x1, 1))
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// More data lands after the snapshot, then the snapshot rots. The
	// snapshot prune already removed nothing (open segment), so the full
	// WAL is still there to recover from.
	mustIngest(t, s, synthProfile("UNet", "Nvidia", "pytorch", 0x2, 2))
	s.Close()
	snaps, _ := filepath.Glob(filepath.Join(dir, "shard-0", "snap-*", "MANIFEST.json"))
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %v", snaps)
	}
	if err := os.WriteFile(snaps[0], []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}

	revived := New(Config{Window: time.Minute, Now: clock.Now, Dir: dir})
	rs, err := revived.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer revived.Close()
	if rs.SnapshotLoaded || rs.SnapshotError == "" {
		t.Fatalf("recovery = %+v", rs)
	}
	if rs.WALRecords != 2 {
		t.Fatalf("WAL-only replay records = %d, want 2", rs.WALRecords)
	}
	rows, _, err := revived.Hotspots(context.Background(), time.Time{}, time.Time{}, Labels{}, cct.MetricGPUTime, 1)
	if err != nil || rows[0].Excl != 300 {
		t.Fatalf("rows = %+v (%v)", rows, err)
	}
}

// Truncated or garbage WAL segments are skipped and logged, never fatal —
// the store boots with whatever decodes.
func TestRecoverSkipsCorruptWALTail(t *testing.T) {
	dir := t.TempDir()
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Now: clock.Now, Dir: dir})
	mustIngest(t, s, synthProfile("UNet", "Nvidia", "pytorch", 0x1, 1))
	mustIngest(t, s, synthProfile("UNet", "Nvidia", "pytorch", 0x2, 2))
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "shard-0", "wal", "*.wal"))
	if len(segs) != 1 {
		t.Fatalf("segments = %v", segs)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Tear the second record in half.
	if err := os.WriteFile(segs[0], data[:len(data)-len(data)/4], 0o644); err != nil {
		t.Fatal(err)
	}

	revived := New(Config{Window: time.Minute, Now: clock.Now, Dir: dir})
	rs, err := revived.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer revived.Close()
	if rs.WALRecords != 1 || rs.WALSkippedSegments != 1 || len(rs.Warnings) == 0 {
		t.Fatalf("recovery = %+v", rs)
	}
	rows, _, err := revived.Hotspots(context.Background(), time.Time{}, time.Time{}, Labels{}, cct.MetricGPUTime, 1)
	if err != nil || rows[0].Excl != 100 {
		t.Fatalf("rows = %+v (%v)", rows, err)
	}
}

func TestRecoverGuards(t *testing.T) {
	clock := newClock(base)
	if _, err := New(Config{Now: clock.Now}).Recover(); err == nil {
		t.Fatal("Recover without Dir should fail")
	}
	dir := t.TempDir()
	s := New(Config{Window: time.Minute, Now: clock.Now, Dir: dir})
	defer s.Close()
	mustIngest(t, s, synthProfile("UNet", "Nvidia", "pytorch", 0x1, 1))
	if _, err := s.Recover(); err == nil {
		t.Fatal("Recover on a non-empty store should fail")
	}
	if _, err := New(Config{Now: clock.Now}).Snapshot(); err == nil {
		t.Fatal("Snapshot without Dir should fail")
	}
}

// The PR 3 lock-ordering audit, held to under the race detector: ingest,
// compaction, snapshotting and queries all run concurrently against the
// same series, and metric totals are conserved throughout (the clock never
// advances past the retention horizon, so nothing is dropped — only folded).
func TestCompactionSnapshotIngestRace(t *testing.T) {
	dir := t.TempDir()
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Retention: 5, CoarseFactor: 2, Now: clock.Now, Dir: dir})
	defer s.Close()

	const writers = 8
	const perWriter = 10
	var wg sync.WaitGroup
	stopBg := make(chan struct{})
	for _, bg := range []func(){
		func() { s.CompactNow() },
		func() { s.Snapshot() },
		func() { s.Hotspots(context.Background(), time.Time{}, time.Time{}, Labels{}, cct.MetricGPUTime, 5) },
		func() { s.Windows(); s.Stats() },
	} {
		wg.Add(1)
		go func(tick func()) {
			defer wg.Done()
			for {
				select {
				case <-stopBg:
					return
				default:
					tick()
				}
			}
		}(bg)
	}
	var writerWg sync.WaitGroup
	for g := 0; g < writers; g++ {
		writerWg.Add(1)
		go func(g int) {
			defer writerWg.Done()
			for i := 0; i < perWriter; i++ {
				// Everyone ingests the SAME series so compaction's fold
				// and ingest's merge contend on one tree.
				mustIngest(t, s, synthProfile("UNet", "Nvidia", "pytorch", uint64(g*1000+i), 1))
				if i%3 == 0 {
					clock.Advance(time.Second)
				}
			}
		}(g)
	}
	writerWg.Wait()
	close(stopBg)
	wg.Wait()

	tree, info, err := s.Aggregate(context.Background(), time.Time{}, time.Time{}, Labels{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Profiles != writers*perWriter {
		t.Fatalf("profiles = %d, want %d", info.Profiles, writers*perWriter)
	}
	id, _ := tree.Schema.Lookup(cct.MetricGPUTime)
	if got := tree.Root.InclValue(id); got != 140*writers*perWriter {
		t.Fatalf("total = %v, want %v", got, 140*writers*perWriter)
	}

	// And the durable image is coherent: a recovery of whatever the last
	// snapshot + WAL holds reproduces the same totals.
	s.Close()
	revived := New(Config{Window: time.Minute, Retention: 5, CoarseFactor: 2, Now: clock.Now, Dir: dir})
	if _, err := revived.Recover(); err != nil {
		t.Fatal(err)
	}
	defer revived.Close()
	rTree, rInfo, err := revived.Aggregate(context.Background(), time.Time{}, time.Time{}, Labels{})
	if err != nil {
		t.Fatal(err)
	}
	if rInfo.Profiles != info.Profiles {
		t.Fatalf("recovered profiles = %d, want %d", rInfo.Profiles, info.Profiles)
	}
	rid, _ := rTree.Schema.Lookup(cct.MetricGPUTime)
	if got := rTree.Root.InclValue(rid); got != 140*writers*perWriter {
		t.Fatalf("recovered total = %v, want %v", got, 140*writers*perWriter)
	}
}

// Warnings surface the skip-and-log contract in a form an operator can
// grep: every skipped record or segment appears in the recovery warnings.
func TestRecoveryWarningsMentionSegment(t *testing.T) {
	dir := t.TempDir()
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Now: clock.Now, Dir: dir})
	mustIngest(t, s, synthProfile("UNet", "Nvidia", "pytorch", 0x1, 1))
	s.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "shard-0", "wal", "*.wal"))
	os.WriteFile(segs[0], []byte("junk"), 0o644)

	revived := New(Config{Window: time.Minute, Now: clock.Now, Dir: dir})
	rs, err := revived.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer revived.Close()
	if len(rs.Warnings) != 1 || !strings.Contains(rs.Warnings[0], filepath.Base(segs[0])) {
		t.Fatalf("warnings = %v", rs.Warnings)
	}
}
