package profstore

import (
	"testing"
	"time"

	"deepcontext/internal/profstore/trend"
)

// The ingest-path durability tax: the same Store.Ingest call with and
// without a WAL behind it. The delta is the full per-profile cost of
// persistence — profdb encoding, record framing/CRC, and the (unsynced)
// file append — measured for docs/PERFORMANCE.md § "WAL cost".
func benchmarkIngest(b *testing.B, dir string) {
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Now: clock.Now, Dir: dir})
	defer s.Close()
	p := synthProfile("UNet", "Nvidia", "pytorch", 0x1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Ingest(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIngestStoreMemory(b *testing.B) { benchmarkIngest(b, "") }

func BenchmarkIngestStoreWAL(b *testing.B) { benchmarkIngest(b, b.TempDir()) }

// The telemetry tax on the hot path: identical to IngestStoreMemory but
// with the latency timings off (counters stay on — they back Stats()).
// The delta is the cost of two time.Now reads and two histogram bucket
// increments per ingest; the alloc profile must be identical.
func BenchmarkIngestStoreMemoryNoTimings(b *testing.B) {
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Now: clock.Now, TimingsDisabled: true})
	defer s.Close()
	p := synthProfile("UNet", "Nvidia", "pytorch", 0x1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Ingest(p); err != nil {
			b.Fatal(err)
		}
	}
}

// The regression-detection tax on the ingest path. Observation happens
// when an ingest rolls to a new window (the previous one just closed), so
// each iteration advances the clock one window and compacts — the
// steady-state production rhythm — with the detector on vs off.
func benchmarkIngestRolling(b *testing.B, disabled bool) {
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Now: clock.Now, Trend: trend.Config{Disabled: disabled}})
	defer s.Close()
	p := synthProfile("UNet", "Nvidia", "pytorch", 0x1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Ingest(p); err != nil {
			b.Fatal(err)
		}
		clock.Advance(time.Minute)
		s.CompactNow()
	}
}

func BenchmarkIngestWindowRollTrendOn(b *testing.B) { benchmarkIngestRolling(b, false) }

func BenchmarkIngestWindowRollTrendOff(b *testing.B) { benchmarkIngestRolling(b, true) }

// The fleet-index tax on the same rolling rhythm, isolated from the trend
// detector: every iteration closes a window, which computes the series
// aggregate and registers its frames. In-window ingest (the hot path) is
// untouched either way — one int64 compare guards the close pass; the
// pinned BenchmarkIngestStoreMemory profile must not move.
func benchmarkIngestRollingIndex(b *testing.B, disabled bool) {
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Now: clock.Now, Trend: trend.Config{Disabled: true}, IndexDisabled: disabled})
	defer s.Close()
	p := synthProfile("UNet", "Nvidia", "pytorch", 0x1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Ingest(p); err != nil {
			b.Fatal(err)
		}
		clock.Advance(time.Minute)
		s.CompactNow()
	}
}

func BenchmarkIngestWindowRollIndexOn(b *testing.B) { benchmarkIngestRollingIndex(b, false) }

func BenchmarkIngestWindowRollIndexOff(b *testing.B) { benchmarkIngestRollingIndex(b, true) }

// Snapshot cost at a representative occupancy (60 windows × 1 series).
func BenchmarkSnapshot(b *testing.B) {
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Now: clock.Now, Dir: b.TempDir()})
	defer s.Close()
	for i := 0; i < 60; i++ {
		if _, err := s.Ingest(synthProfile("UNet", "Nvidia", "pytorch", uint64(0x100*i), 1)); err != nil {
			b.Fatal(err)
		}
		clock.Advance(time.Minute)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
}
