package profstore

import (
	"testing"
	"time"
)

// The ingest-path durability tax: the same Store.Ingest call with and
// without a WAL behind it. The delta is the full per-profile cost of
// persistence — profdb encoding, record framing/CRC, and the (unsynced)
// file append — measured for docs/PERFORMANCE.md § "WAL cost".
func benchmarkIngest(b *testing.B, dir string) {
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Now: clock.Now, Dir: dir})
	defer s.Close()
	p := synthProfile("UNet", "Nvidia", "pytorch", 0x1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Ingest(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIngestStoreMemory(b *testing.B) { benchmarkIngest(b, "") }

func BenchmarkIngestStoreWAL(b *testing.B) { benchmarkIngest(b, b.TempDir()) }

// Snapshot cost at a representative occupancy (60 windows × 1 series).
func BenchmarkSnapshot(b *testing.B) {
	clock := newClock(base)
	s := New(Config{Window: time.Minute, Now: clock.Now, Dir: b.TempDir()})
	defer s.Close()
	for i := 0; i < 60; i++ {
		if _, err := s.Ingest(synthProfile("UNet", "Nvidia", "pytorch", uint64(0x100*i), 1)); err != nil {
			b.Fatal(err)
		}
		clock.Advance(time.Minute)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
}
