package profstore

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"deepcontext/internal/cct"
	"deepcontext/internal/profiler"
	"deepcontext/internal/profstore/trend"
)

// trendProfile builds a three-kernel profile with explicit per-kernel GPU
// costs, so scenarios control metric shares exactly. pcBase shifts kernel
// PCs per "run" (normalization must fold them).
func trendProfile(workload, vendor, fw string, pcBase uint64, gemm, relu, vecadd float64) *profiler.Profile {
	tree := cct.New()
	gid := tree.MetricID(cct.MetricGPUTime)
	insert := func(op, kernel string, pc uint64, v float64) {
		n := tree.InsertPath([]cct.Frame{
			cct.PythonFrame("train.py", 10, "main"),
			cct.OperatorFrame(op),
			{Kind: cct.KindKernel, Name: kernel, Lib: "[gpu]", PC: pc},
		})
		tree.AddMetric(n, gid, v)
	}
	insert("aten::conv2d", "gemm", pcBase, gemm)
	insert("aten::relu", "relu", pcBase+8, relu)
	insert("aten::add", "vecadd", pcBase+16, vecadd)
	return &profiler.Profile{
		Tree: tree,
		Meta: profiler.Meta{Workload: workload, Vendor: vendor, Framework: fw},
	}
}

// regressionScenario drives the deterministic injected-regression script:
// two series over twelve windows, series A's gemm kernel tripling from
// window 7 on (shares 0.5/0.2/0.3 → 0.75/0.1/0.15), series B steady
// throughout, one mid-run compaction, and a final sweep so the last window
// is observed. windows limits how many windows run (12 for the full
// script); the clock ends one window past the last ingest.
func regressionScenario(t *testing.T, s *Store, clock *fakeClock, windows int) {
	t.Helper()
	for w := 0; w < windows; w++ {
		gemm := 100.0
		if w >= 7 {
			gemm = 300.0
		}
		pc := uint64(0x1000 + w*512)
		mustIngest(t, s, trendProfile("UNet", "Nvidia", "pytorch", pc, gemm, 40, 60))
		mustIngest(t, s, trendProfile("UNet", "Nvidia", "pytorch", pc+0x8000, gemm, 40, 60))
		mustIngest(t, s, trendProfile("DLRM", "AMD", "jax", pc+0x100, 50, 25, 25))
		clock.Advance(time.Minute)
		if w == 8 {
			s.CompactNow()
		}
	}
	s.TrendSweep()
}

// regressionsImage renders the /regressions query surface as one
// deterministic JSON blob: the unfiltered findings plus filtered variants,
// and the trend counters.
func regressionsImage(t *testing.T, s *Store) []byte {
	t.Helper()
	img, err := json.MarshalIndent(struct {
		All         []trend.Finding
		Regressions []trend.Finding
		UNetOnly    []trend.Finding
		Limited     []trend.Finding
		Since       []trend.Finding
		Trend       *TrendStats
	}{
		All:         s.Regressions(RegressionQuery{}),
		Regressions: s.Regressions(RegressionQuery{Direction: 1}),
		UNetOnly:    s.Regressions(RegressionQuery{Filter: Labels{Workload: "unet"}}),
		Limited:     s.Regressions(RegressionQuery{Limit: 2}),
		Since:       s.Regressions(RegressionQuery{Since: base.Add(9 * time.Minute)}),
		Trend:       s.Stats().Trend,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// trendConfigs enumerates the configurations whose findings must be
// byte-identical: shard striping and the query cache must be invisible to
// detection. Retention is short enough that the scenario's mid-run
// compaction folds early windows — observation must beat the fold.
func trendConfigs() []Config {
	base := Config{Window: time.Minute, Retention: 6, CoarseFactor: 4}
	var out []Config
	for _, shards := range []int{1, 2, 4} {
		for _, cache := range []int{0, 128} {
			cfg := base
			cfg.Shards = shards
			cfg.CacheSize = cache
			out = append(out, cfg)
		}
	}
	return out
}

// TestRegressionsGolden pins the detector's end-to-end output: every store
// configuration must produce the recorded findings byte-for-byte from the
// injected-regression scenario. Regenerate with -update-golden only when a
// detection-semantics change is intended.
func TestRegressionsGolden(t *testing.T) {
	goldenPath := filepath.Join("testdata", "regressions.golden.json")
	if *updateGolden {
		clock := newClock(base)
		cfg := trendConfigs()[0]
		cfg.Now = clock.Now
		s := New(cfg)
		defer s.Close()
		regressionScenario(t, s, clock, 12)
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, regressionsImage(t, s), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update-golden to create): %v", err)
	}
	for i, cfg := range trendConfigs() {
		clock := newClock(base)
		cfg.Now = clock.Now
		s := New(cfg)
		regressionScenario(t, s, clock, 12)
		// Two passes: the second must be idempotent (sweeps with no new
		// closed windows change nothing), cached or not.
		for pass := 0; pass < 2; pass++ {
			if got := regressionsImage(t, s); !bytes.Equal(got, want) {
				t.Errorf("config %d (shards=%d cache=%d) pass %d: regression findings diverged from golden",
					i, cfg.Shards, cfg.CacheSize, pass)
			}
		}
		s.Close()
	}
}

// TestRegressionsGoldenSemantics spot-checks the recorded scenario beyond
// byte equality: the injected kernel is flagged as the only regression,
// within K windows of the injection, with its exact before/after shares.
func TestRegressionsGoldenSemantics(t *testing.T) {
	clock := newClock(base)
	cfg := trendConfigs()[0]
	cfg.Now = clock.Now
	s := New(cfg)
	defer s.Close()
	regressionScenario(t, s, clock, 12)

	ups := s.Regressions(RegressionQuery{Direction: 1})
	if len(ups) != 1 {
		t.Fatalf("want exactly the injected kernel flagged, got %+v", ups)
	}
	f := ups[0]
	if f.Frame != "gemm" || f.Series != "unet/nvidia/pytorch" {
		t.Fatalf("wrong finding: %+v", f)
	}
	k := s.Config().Trend.K
	confirm := base.Add(time.Duration(7+k-1) * time.Minute).UnixNano()
	if f.AfterUnixNano != confirm {
		t.Fatalf("confirmed at %d, want within K=%d windows of injection (%d)", f.AfterUnixNano, k, confirm)
	}
	if f.BeforeUnixNano != base.Add(6*time.Minute).UnixNano() {
		t.Fatalf("before anchor = %d, want last pre-injection window", f.BeforeUnixNano)
	}
	if f.BeforeShare != 0.5 || f.Share != 0.75 {
		t.Fatalf("shares: before=%v after=%v, want 0.5 → 0.75", f.BeforeShare, f.Share)
	}
	// The improvements are the other two kernels' shrinking shares — and
	// nothing else.
	downs := s.Regressions(RegressionQuery{Direction: -1})
	if len(downs) != 2 || downs[0].Frame != "relu" || downs[1].Frame != "vecadd" {
		t.Fatalf("improvements = %+v", downs)
	}
	// Exact-share re-derivation from the raw (uncached: CacheSize=0)
	// store: both flagged windows are still fine, so a single-window
	// aggregate reproduces the finding's shares bit-for-bit.
	for _, check := range []struct {
		ns    int64
		share float64
	}{{f.BeforeUnixNano, f.BeforeShare}, {f.AfterUnixNano, f.Share}} {
		from := time.Unix(0, check.ns)
		tree, _, err := s.Aggregate(context.Background(), from, from.Add(cfg.Window), Labels{Workload: f.Workload, Vendor: f.Vendor, Framework: f.Framework})
		if err != nil {
			t.Fatalf("re-derive window %d: %v", check.ns, err)
		}
		shares, ok := metricShares(tree, f.Metric)
		if !ok || shares[f.Frame] != check.share {
			t.Fatalf("window %d: re-derived share %v, finding says %v", check.ns, shares[f.Frame], check.share)
		}
	}
}

// TestRegressionsRestartEquivalence is the SIGKILL gate: a store killed
// mid-scenario — with a snapshot plus WAL suffix, or with only the WAL —
// must finish the scenario with findings byte-equal to a store that never
// restarted, including across a shard-count migration.
func TestRegressionsRestartEquivalence(t *testing.T) {
	control := func() []byte {
		clock := newClock(base)
		cfg := trendConfigs()[0]
		cfg.Now = clock.Now
		s := New(cfg)
		defer s.Close()
		regressionScenario(t, s, clock, 12)
		return regressionsImage(t, s)
	}()

	for _, tc := range []struct {
		name         string
		snapshot     bool
		reviveShards int
	}{
		{"wal-only", false, 2},
		{"snapshot-plus-suffix", true, 2},
		{"migrate-shards", true, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			clock := newClock(base)
			cfg := trendConfigs()[0]
			cfg.Shards = 2
			cfg.Now = clock.Now
			cfg.Dir = dir
			s := New(cfg)
			// Run the scenario through the first drift windows, snapshot
			// mid-way (so trend state must ride the snapshot), then crash.
			regressionScenario(t, s, clock, 9)
			if tc.snapshot {
				if _, err := s.Snapshot(); err != nil {
					t.Fatal(err)
				}
			}
			s.Close() // the crash: nothing after this is flushed

			rcfg := cfg
			rcfg.Shards = tc.reviveShards
			revived := New(rcfg)
			defer revived.Close()
			if _, err := revived.Recover(); err != nil {
				t.Fatal(err)
			}
			// Finish the scenario: windows 9..11 land post-restart. The
			// clock continues where the crashed store left off (the
			// scenario already advanced past window 8).
			for w := 9; w < 12; w++ {
				pc := uint64(0x1000 + w*512)
				mustIngest(t, revived, trendProfile("UNet", "Nvidia", "pytorch", pc, 300, 40, 60))
				mustIngest(t, revived, trendProfile("UNet", "Nvidia", "pytorch", pc+0x8000, 300, 40, 60))
				mustIngest(t, revived, trendProfile("DLRM", "AMD", "jax", pc+0x100, 50, 25, 25))
				clock.Advance(time.Minute)
			}
			revived.TrendSweep()
			if got := regressionsImage(t, revived); !bytes.Equal(got, control) {
				t.Errorf("findings diverged from the never-crashed store\ngot:  %s\nwant: %s", got, control)
			}
		})
	}
}

// TestRegressionsPropertyRederivable randomizes ingest/advance/compact
// scripts and holds the detector to its contract: every finding's series
// was actually ingested, every finding clears its own recorded noise band,
// and — while the flagged windows are retained at fine resolution — an
// uncached Store.Diff over the flagged pair reproduces the finding's share
// delta exactly. The store under test runs sharded with the cache on; the
// replica is the 1-shard uncached reference.
func TestRegressionsPropertyRederivable(t *testing.T) {
	var totalFindings, totalVerified int
	for _, seed := range []int64{3, 11, 77} {
		rng := rand.New(rand.NewSource(seed))
		clock := newClock(base)
		cfg := Config{Window: time.Minute, Retention: 10, CoarseFactor: 3, Shards: 3, CacheSize: 64, Now: clock.Now}
		s := New(cfg)
		refClock := newClock(base)
		ref := New(Config{Window: time.Minute, Retention: 10, CoarseFactor: 3, Now: refClock.Now})

		type seriesSpec struct {
			labels Labels
			gemm   float64 // current sustained level
		}
		specs := []*seriesSpec{
			{Labels{"UNet", "Nvidia", "pytorch"}, 100},
			{Labels{"DLRM", "AMD", "jax"}, 80},
			{Labels{"Bert", "Nvidia", "jax"}, 120},
		}
		ingested := map[string]bool{}
		verified := map[string]bool{}

		fineRetained := func(st *Store, ns int64) bool {
			for _, w := range st.Windows() {
				if !w.Coarse && w.Start.UnixNano() == ns {
					return true
				}
			}
			return false
		}

		for step := 0; step < 60; step++ {
			for si, sp := range specs {
				if rng.Intn(8) == 0 {
					// A sustained level shift the detector should flag.
					if rng.Intn(2) == 0 {
						sp.gemm *= 2.5
					} else {
						sp.gemm /= 2.5
					}
				}
				for n := rng.Intn(3); n >= 0; n-- {
					pc := uint64(0x1000 + step*4096 + si*512 + n*64)
					p := trendProfile(sp.labels.Workload, sp.labels.Vendor, sp.labels.Framework, pc, sp.gemm, 40, 60)
					mustIngest(t, s, p)
					p2 := trendProfile(sp.labels.Workload, sp.labels.Vendor, sp.labels.Framework, pc, sp.gemm, 40, 60)
					mustIngest(t, ref, p2)
					ingested[sp.labels.Key()] = true
				}
			}
			adv := time.Minute
			if rng.Intn(10) == 0 {
				adv = 2 * time.Minute
			}
			clock.Advance(adv)
			refClock.Advance(adv)
			if rng.Intn(6) == 0 {
				s.CompactNow()
				ref.CompactNow()
			}
			s.TrendSweep()

			for _, f := range s.Regressions(RegressionQuery{}) {
				if !ingested[f.Series] {
					t.Fatalf("seed %d step %d: finding references never-ingested series %q", seed, step, f.Series)
				}
				if math.Abs(f.Share-f.BaselineShare) <= f.Band {
					t.Fatalf("seed %d step %d: finding inside its own band: %+v", seed, step, f)
				}
				fkey, _ := json.Marshal(f)
				if verified[string(fkey)] {
					continue
				}
				totalFindings++
				if !fineRetained(ref, f.BeforeUnixNano) || !fineRetained(ref, f.AfterUnixNano) {
					continue // window already folded coarse; share-exact replay needs fine data
				}
				labels := Labels{Workload: f.Workload, Vendor: f.Vendor, Framework: f.Framework}
				res, err := ref.Diff(context.Background(), time.Unix(0, f.BeforeUnixNano), time.Unix(0, f.AfterUnixNano), labels, f.Metric, 0)
				if err != nil {
					t.Fatalf("seed %d step %d: uncached diff over flagged pair failed: %v (%+v)", seed, step, err, f)
				}
				var deltaSum float64
				for _, row := range res.Rows {
					if row.Label == f.Frame {
						deltaSum += row.Delta
					}
				}
				want := f.Share*res.AfterTotal - f.BeforeShare*res.BeforeTotal
				if tol := 1e-9 * math.Max(1, math.Abs(want)); math.Abs(deltaSum-want) > tol {
					t.Fatalf("seed %d step %d: diff does not reproduce finding: delta %v, shares imply %v (%+v)",
						seed, step, deltaSum, want, f)
				}
				verified[string(fkey)] = true
				totalVerified++
			}
		}
		s.Close()
		ref.Close()
	}
	if totalFindings == 0 || totalVerified == 0 {
		t.Fatalf("property test was vacuous: %d findings, %d verified", totalFindings, totalVerified)
	}
}

// TestTrendStatsRaceUnderIngest hammers Stats and the regression surface
// while writers ingest across window transitions — the -race gate for the
// tracker's lock discipline (all tracker access rides the shard mutexes).
func TestTrendStatsRaceUnderIngest(t *testing.T) {
	clock := newClock(base)
	s := New(Config{Window: 10 * time.Millisecond, Retention: 5, CoarseFactor: 2, Shards: 4, CacheSize: 32, Now: clock.Now})
	defer s.Close()

	done := make(chan struct{})
	// The clock runs outside the writer WaitGroup (a ticking goroutine
	// blocked on wg.Wait deadlocks — see the loadgen postmortem in
	// CHANGES.md); it just stops with done.
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				clock.Advance(3 * time.Millisecond)
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	var wg sync.WaitGroup
	workloads := []string{"UNet", "DLRM", "Bert", "GPT"}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				p := trendProfile(workloads[w], "Nvidia", "pytorch", uint64(0x1000+w*64+i), float64(100+i%7*20), 40, 60)
				if _, err := s.Ingest(p); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				st := s.Stats()
				if st.Trend == nil {
					t.Error("trend stats missing while tracking enabled")
					return
				}
				s.TrendSweep()
				s.Regressions(RegressionQuery{Direction: 1})
				s.CompactNow()
			}
		}()
	}
	wg.Wait()
	close(done)

	// Close every window deterministically before asserting: the racing
	// goroutines may all finish before the virtual clock crosses even one
	// window boundary.
	clock.Advance(time.Second)
	s.TrendSweep()
	st := s.Stats()
	if st.Trend == nil || st.Trend.Series == 0 {
		t.Fatalf("no series tracked after concurrent ingest: %+v", st.Trend)
	}
	if got := len(s.Regressions(RegressionQuery{})); int64(got) > st.Trend.Findings {
		t.Fatalf("retained findings (%d) exceed emitted counter (%d)", got, st.Trend.Findings)
	}
}
