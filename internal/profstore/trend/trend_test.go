package trend

import (
	"bytes"
	"encoding/json"
	"testing"
)

func testConfig() Config {
	return Config{Band: 0.05, Z: 3, Alpha: 0.3, K: 3, Warmup: 3, MinShare: 0.01}
}

const win = int64(60e9) // one-minute windows in unix nanos

// observeSteady feeds n windows of a fixed share split starting at startNS
// and returns the next window start.
func observeSteady(t *Tracker, series string, startNS int64, n int, shares map[string]float64) int64 {
	for i := 0; i < n; i++ {
		t.Observe(series, "w", "v", "f", startNS, shares)
		startNS += win
	}
	return startNS
}

func TestNoFindingsOnSteadyShares(t *testing.T) {
	tr := New(testConfig())
	observeSteady(tr, "w/v/f", win, 20, map[string]float64{"gemm": 0.7, "relu": 0.3})
	if got := tr.AppendFindings(nil); len(got) != 0 {
		t.Fatalf("steady shares produced findings: %+v", got)
	}
	st := tr.Stats()
	if st.Series != 1 || st.Frames != 2 || st.Findings != 0 || st.Suppressed != 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestSustainedShiftConfirmsAfterKWindows(t *testing.T) {
	tr := New(testConfig())
	next := observeSteady(tr, "w/v/f", win, 6, map[string]float64{"gemm": 0.7, "relu": 0.3})
	shifted := map[string]float64{"gemm": 0.85, "relu": 0.15}
	// K-1 drift windows: no finding yet.
	next = observeSteady(tr, "w/v/f", next, 2, shifted)
	if got := tr.AppendFindings(nil); len(got) != 0 {
		t.Fatalf("finding before K windows: %+v", got)
	}
	confirmNS := next
	observeSteady(tr, "w/v/f", next, 1, shifted)
	got := tr.AppendFindings(nil)
	if len(got) != 2 {
		t.Fatalf("want gemm up + relu down, got %+v", got)
	}
	byFrame := map[string]Finding{}
	for _, f := range got {
		byFrame[f.Frame] = f
	}
	g, ok := byFrame["gemm"]
	if !ok || g.Direction != 1 {
		t.Fatalf("missing gemm regression: %+v", got)
	}
	if g.AfterUnixNano != confirmNS {
		t.Fatalf("after window = %d, want %d", g.AfterUnixNano, confirmNS)
	}
	if g.BeforeUnixNano != confirmNS-3*win {
		t.Fatalf("before window = %d, want last in-band window %d", g.BeforeUnixNano, confirmNS-3*win)
	}
	if g.BeforeShare != 0.7 || g.Share != 0.85 {
		t.Fatalf("shares: before=%v after=%v", g.BeforeShare, g.Share)
	}
	if g.Windows != 3 || g.Metric != "gpu_time_ns" || g.Workload != "w" {
		t.Fatalf("finding metadata: %+v", g)
	}
	if r := byFrame["relu"]; r.Direction != -1 {
		t.Fatalf("relu should improve: %+v", r)
	}
	// The baseline re-armed at the new level: the shift reports once.
	observeSteady(tr, "w/v/f", confirmNS+win, 10, shifted)
	if again := tr.AppendFindings(nil); len(again) != 2 {
		t.Fatalf("sustained shift reported more than once: %+v", again)
	}
}

func TestTransientBlipIsSuppressed(t *testing.T) {
	tr := New(testConfig())
	steady := map[string]float64{"gemm": 0.7, "relu": 0.3}
	next := observeSteady(tr, "w/v/f", win, 6, steady)
	next = observeSteady(tr, "w/v/f", next, 2, map[string]float64{"gemm": 0.9, "relu": 0.1})
	observeSteady(tr, "w/v/f", next, 8, steady)
	if got := tr.AppendFindings(nil); len(got) != 0 {
		t.Fatalf("blip shorter than K produced findings: %+v", got)
	}
	if st := tr.Stats(); st.Suppressed != 2 { // one discharged run per frame
		t.Fatalf("suppressed = %d, want 2", st.Suppressed)
	}
}

func TestDirectionFlipRestartsRun(t *testing.T) {
	tr := New(testConfig())
	next := observeSteady(tr, "w/v/f", win, 6, map[string]float64{"gemm": 0.5, "relu": 0.5})
	// Two up, then flip down before K: no finding from the up run.
	next = observeSteady(tr, "w/v/f", next, 2, map[string]float64{"gemm": 0.7, "relu": 0.3})
	next = observeSteady(tr, "w/v/f", next, 2, map[string]float64{"gemm": 0.3, "relu": 0.7})
	_ = next
	for _, f := range tr.AppendFindings(nil) {
		if f.Windows >= 3 {
			t.Fatalf("flip should not confirm: %+v", f)
		}
	}
}

func TestNoiseFloorFramesIgnored(t *testing.T) {
	tr := New(testConfig())
	// tiny never crosses MinShare: it must not be tracked at all.
	next := observeSteady(tr, "w/v/f", win, 6, map[string]float64{"gemm": 0.995, "tiny": 0.005})
	observeSteady(tr, "w/v/f", next, 6, map[string]float64{"gemm": 0.992, "tiny": 0.008})
	if st := tr.Stats(); st.Frames != 1 {
		t.Fatalf("noise-floor frame tracked: %+v", st)
	}
}

func TestVanishedFrameFlagsImprovement(t *testing.T) {
	tr := New(testConfig())
	next := observeSteady(tr, "w/v/f", win, 6, map[string]float64{"gemm": 0.6, "relu": 0.4})
	observeSteady(tr, "w/v/f", next, 4, map[string]float64{"gemm": 1.0})
	var reluDown bool
	for _, f := range tr.AppendFindings(nil) {
		if f.Frame == "relu" && f.Direction == -1 && f.Share == 0 {
			reluDown = true
		}
	}
	if !reluDown {
		t.Fatalf("vanished frame not flagged: %+v", tr.AppendFindings(nil))
	}
}

func TestObserveIgnoresStaleWindows(t *testing.T) {
	tr := New(testConfig())
	shares := map[string]float64{"gemm": 1.0}
	tr.Observe("w/v/f", "w", "v", "f", 5*win, shares)
	if wm := tr.Watermark("w/v/f"); wm != 5*win {
		t.Fatalf("watermark = %d", wm)
	}
	before, _ := tr.EncodeState()
	tr.Observe("w/v/f", "w", "v", "f", 5*win, shares) // same window again
	tr.Observe("w/v/f", "w", "v", "f", 3*win, shares) // older window
	after, _ := tr.EncodeState()
	if !bytes.Equal(before, after) {
		t.Fatalf("stale observations mutated state:\n%s\n%s", before, after)
	}
}

func TestStateRoundTripPreservesBehavior(t *testing.T) {
	mk := func() *Tracker { return New(testConfig()) }
	steady := map[string]float64{"gemm": 0.7, "relu": 0.3}
	shifted := map[string]float64{"gemm": 0.85, "relu": 0.15}

	// Continuous run.
	live := mk()
	next := observeSteady(live, "w/v/f", win, 6, steady)
	observeSteady(live, "w/v/f", next, 4, shifted)

	// Same sequence with an encode/decode/adopt cycle in the middle.
	a := mk()
	mid := observeSteady(a, "w/v/f", win, 6, steady)
	blob, err := a.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	states, err := DecodeState(blob)
	if err != nil {
		t.Fatal(err)
	}
	b := mk()
	for key, st := range states {
		b.Adopt(key, st)
	}
	observeSteady(b, "w/v/f", mid, 4, shifted)

	liveBytes, _ := live.EncodeState()
	restBytes, _ := b.EncodeState()
	if !bytes.Equal(liveBytes, restBytes) {
		t.Fatalf("state diverged across round trip:\nlive: %s\nrest: %s", liveBytes, restBytes)
	}
	lf, _ := json.Marshal(live.AppendFindings(nil))
	rf, _ := json.Marshal(b.AppendFindings(nil))
	if !bytes.Equal(lf, rf) {
		t.Fatalf("findings diverged:\nlive: %s\nrest: %s", lf, rf)
	}
}

func TestAdoptKeepsHigherWatermark(t *testing.T) {
	tr := New(testConfig())
	observeSteady(tr, "w/v/f", win, 5, map[string]float64{"gemm": 1.0})
	stale := &SeriesState{WatermarkUnixNano: 2 * win, Frames: map[string]*FrameState{}}
	tr.Adopt("w/v/f", stale)
	if tr.Watermark("w/v/f") != 5*win {
		t.Fatal("stale adopt overwrote newer state")
	}
}

func TestFindingsCapDropsOldest(t *testing.T) {
	cfg := testConfig()
	cfg.MaxFindingsPerSeries = 2
	tr := New(cfg)
	next := observeSteady(tr, "w/v/f", win, 6, map[string]float64{"a": 0.5, "b": 0.5})
	// Three alternating level shifts; each confirmed shift emits two
	// findings (one per frame), so the per-series log must stay at 2.
	levels := []map[string]float64{
		{"a": 0.8, "b": 0.2},
		{"a": 0.4, "b": 0.6},
		{"a": 0.9, "b": 0.1},
	}
	for _, lv := range levels {
		next = observeSteady(tr, "w/v/f", next, 4, lv)
	}
	got := tr.AppendFindings(nil)
	if len(got) != 2 {
		t.Fatalf("cap not enforced: %d findings", len(got))
	}
	if st := tr.Stats(); st.Findings < 4 {
		t.Fatalf("emitted counter should keep counting past the cap: %+v", st)
	}
}

func TestDecodeStateRejectsGarbage(t *testing.T) {
	if _, err := DecodeState([]byte("{nope")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := DecodeState([]byte(`{"k": null}`)); err == nil {
		t.Fatal("nil series accepted")
	}
	if _, err := DecodeState([]byte(`{"k": {"frames": {"f": null}}}`)); err == nil {
		t.Fatal("nil frame accepted")
	}
}
