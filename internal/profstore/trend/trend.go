// Package trend maintains per-(series, frame) rolling statistics over the
// profstore's closed fine windows and flags sustained drifts in a frame's
// metric share — the regression-detection layer behind dcserver's
// /regressions surface.
//
// # Model
//
// Each observation is one closed fine window of one series: the caller
// reduces the window's merged tree to a frame → share map (a frame's
// exclusive metric over the window's root inclusive total) and feeds it to
// Observe in window-start order. Shares, not absolute sums, are tracked so
// detection is invariant to how many profiles landed in a window.
//
// Per frame the tracker keeps an exponentially-weighted moving average of
// the share and its EWMA variance. A window whose share deviates from the
// baseline mean by more than the noise band — max(Config.Band,
// Config.Z·σ) — does not update the baseline; instead it extends a drift
// run. K consecutive same-direction out-of-band windows confirm a change
// point and emit a Finding; the baseline then re-arms at the new level so
// the same shift is reported once. A run that ends before K windows (the
// share returns in band, or flips direction) is discharged back into the
// baseline and counted as suppressed.
//
// # Determinism and concurrency
//
// Tracker state is a pure function of the per-series observation sequence:
// no wall-clock reads, no randomness, and each series evolves
// independently, so a store that replays the same windows in the same
// per-series order — whatever its shard count — reproduces findings
// byte-for-byte. The tracker itself is not synchronized; profstore guards
// each shard's tracker with the shard mutex.
package trend

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Config tunes the detector. The zero value means "use defaults"; set
// Disabled to opt out entirely.
type Config struct {
	// Disabled turns trend tracking off (no state, no findings).
	Disabled bool
	// Metric is the tracked metric name (default gpu_time_ns).
	Metric string
	// Band is the absolute share-deviation noise floor (default 0.05: a
	// frame must move at least five share points to start a drift run).
	Band float64
	// Z widens the band to Z standard deviations of the baseline when the
	// observed noise exceeds Band (default 3).
	Z float64
	// Alpha is the EWMA weight of a new in-band window (default 0.3).
	Alpha float64
	// K is how many consecutive out-of-band windows confirm a change point
	// (default 3).
	K int
	// Warmup is how many windows a frame's baseline absorbs before
	// detection arms (default 3).
	Warmup int
	// MinShare ignores frames whose share and baseline are both below this
	// floor (default 0.01): sub-percent kernels flap without being
	// actionable.
	MinShare float64
	// MaxFindingsPerSeries bounds retained findings per series, oldest
	// dropped first (default 64).
	MaxFindingsPerSeries int
}

// WithDefaults fills zero fields with the documented defaults.
func (c Config) WithDefaults() Config {
	if c.Metric == "" {
		c.Metric = "gpu_time_ns"
	}
	if c.Band <= 0 {
		c.Band = 0.05
	}
	if c.Z <= 0 {
		c.Z = 3
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.K <= 0 {
		c.K = 3
	}
	if c.Warmup <= 0 {
		c.Warmup = 3
	}
	if c.MinShare <= 0 {
		c.MinShare = 0.01
	}
	if c.MaxFindingsPerSeries <= 0 {
		c.MaxFindingsPerSeries = 64
	}
	return c
}

// Finding is one confirmed change point: a frame whose share of the series'
// metric drifted out of the noise band for K consecutive windows.
type Finding struct {
	Series    string `json:"series"`
	Workload  string `json:"workload"`
	Vendor    string `json:"vendor"`
	Framework string `json:"framework"`
	Frame     string `json:"frame"`
	Metric    string `json:"metric"`
	// Direction is +1 for a share increase (a regression when the metric
	// is a cost) and -1 for a decrease.
	Direction int `json:"direction"`
	// BeforeUnixNano is the last in-band window before the drift began;
	// AfterUnixNano is the window that confirmed it. The pair is a valid
	// Diff argument while both windows are retained.
	BeforeUnixNano int64 `json:"before_unix_nano"`
	AfterUnixNano  int64 `json:"after_unix_nano"`
	// BeforeShare and Share are the frame's exact shares in those two
	// windows — re-derivable from the raw store.
	BeforeShare float64 `json:"before_share"`
	Share       float64 `json:"share"`
	// BaselineShare and BaselineSigma describe the EWMA baseline the drift
	// was measured against; Band is the noise band in force.
	BaselineShare float64 `json:"baseline_share"`
	BaselineSigma float64 `json:"baseline_sigma"`
	Band          float64 `json:"band"`
	// Windows is the run length that confirmed the change (== Config.K).
	Windows int `json:"windows"`
}

// FrameState is one frame's rolling baseline and drift run. Exported (with
// JSON tags) so snapshots can round-trip tracker state.
type FrameState struct {
	Mean      float64 `json:"mean"`
	Var       float64 `json:"var"`
	N         int64   `json:"n"`
	LastShare float64 `json:"last_share"`

	Run            int       `json:"run,omitempty"`
	RunDir         int       `json:"run_dir,omitempty"`
	RunBeforeNS    int64     `json:"run_before_ns,omitempty"`
	RunBeforeShare float64   `json:"run_before_share,omitempty"`
	RunShares      []float64 `json:"run_shares,omitempty"`
}

// SeriesState is one series' complete tracker state: the observation
// watermark, per-frame baselines, retained findings and counters.
type SeriesState struct {
	Workload  string `json:"workload"`
	Vendor    string `json:"vendor"`
	Framework string `json:"framework"`
	// WatermarkUnixNano is the start of the newest observed window;
	// Observe ignores anything at or below it.
	WatermarkUnixNano int64 `json:"watermark_unix_nano"`
	// PrevUnixNano is the window observed immediately before the
	// watermark — the "before" anchor if a drift run starts next window.
	PrevUnixNano int64                  `json:"prev_unix_nano,omitempty"`
	Frames       map[string]*FrameState `json:"frames"`
	Findings     []Finding              `json:"findings,omitempty"`
	Emitted      int64                  `json:"emitted,omitempty"`
	Suppressed   int64                  `json:"suppressed,omitempty"`
}

// Stats summarizes one tracker.
type Stats struct {
	Series     int   `json:"series"`
	Frames     int   `json:"frames"`
	Findings   int64 `json:"findings"`
	Suppressed int64 `json:"suppressed"`
	Late       int64 `json:"late,omitempty"`
}

// Tracker holds trend state for a disjoint set of series (in profstore, the
// series routed to one shard). Not synchronized: the owner serializes all
// calls, including Observe against EncodeState.
type Tracker struct {
	cfg    Config
	series map[string]*SeriesState
	late   int64
}

// New returns an empty tracker with cfg's defaults applied.
func New(cfg Config) *Tracker {
	return &Tracker{cfg: cfg.WithDefaults(), series: make(map[string]*SeriesState)}
}

// Config returns the tracker's effective configuration.
func (t *Tracker) Config() Config { return t.cfg }

// Observe folds one closed window of one series into the tracker. shares
// maps frame label → share of the window's metric total; startNS is the
// window start. Observations at or below the series watermark are ignored,
// so replaying a window sequence over adopted state is idempotent.
func (t *Tracker) Observe(key, workload, vendor, framework string, startNS int64, shares map[string]float64) {
	st := t.series[key]
	if st == nil {
		st = &SeriesState{Frames: make(map[string]*FrameState)}
		t.series[key] = st
	}
	if startNS <= st.WatermarkUnixNano {
		return
	}
	st.Workload, st.Vendor, st.Framework = workload, vendor, framework
	prevNS := st.WatermarkUnixNano
	st.PrevUnixNano = prevNS
	st.WatermarkUnixNano = startNS

	// Walk the union of tracked and observed frames in sorted order: a
	// tracked frame absent from this window observed a share of zero (the
	// frame vanishing is a drift too), and the order makes any map-driven
	// behavior deterministic.
	universe := make([]string, 0, len(st.Frames)+len(shares))
	for f := range st.Frames {
		universe = append(universe, f)
	}
	for f := range shares {
		if _, tracked := st.Frames[f]; !tracked {
			universe = append(universe, f)
		}
	}
	sort.Strings(universe)
	for _, frame := range universe {
		share := shares[frame]
		fs := st.Frames[frame]
		if fs == nil {
			if share < t.cfg.MinShare {
				continue // never start tracking noise-floor frames
			}
			fs = &FrameState{}
			st.Frames[frame] = fs
		}
		t.observeFrame(st, key, frame, fs, prevNS, startNS, share)
	}
}

func (t *Tracker) observeFrame(st *SeriesState, key, frame string, fs *FrameState, prevNS, startNS int64, share float64) {
	defer func() { fs.LastShare = share }()
	if fs.N < int64(t.cfg.Warmup) {
		fs.fold(t.cfg.Alpha, share)
		return
	}
	dev := share - fs.Mean
	sigma := math.Sqrt(math.Max(fs.Var, 0))
	band := math.Max(t.cfg.Band, t.cfg.Z*sigma)
	inBand := math.Abs(dev) <= band ||
		(share < t.cfg.MinShare && fs.Mean < t.cfg.MinShare)
	if inBand {
		if fs.Run > 0 {
			fs.dischargeRun(t.cfg.Alpha)
			st.Suppressed++
		}
		fs.fold(t.cfg.Alpha, share)
		return
	}
	dir := 1
	if dev < 0 {
		dir = -1
	}
	if fs.Run > 0 && fs.RunDir != dir {
		fs.dischargeRun(t.cfg.Alpha)
		st.Suppressed++
	}
	if fs.Run == 0 {
		fs.RunDir = dir
		fs.RunBeforeNS = prevNS
		fs.RunBeforeShare = fs.LastShare
	}
	fs.Run++
	fs.RunShares = append(fs.RunShares, share)
	if fs.Run < t.cfg.K {
		return
	}
	f := Finding{
		Series:         key,
		Workload:       st.Workload,
		Vendor:         st.Vendor,
		Framework:      st.Framework,
		Frame:          frame,
		Metric:         t.cfg.Metric,
		Direction:      dir,
		BeforeUnixNano: fs.RunBeforeNS,
		AfterUnixNano:  startNS,
		BeforeShare:    fs.RunBeforeShare,
		Share:          share,
		BaselineShare:  fs.Mean,
		BaselineSigma:  sigma,
		Band:           band,
		Windows:        fs.Run,
	}
	st.Findings = append(st.Findings, f)
	if len(st.Findings) > t.cfg.MaxFindingsPerSeries {
		st.Findings = st.Findings[len(st.Findings)-t.cfg.MaxFindingsPerSeries:]
	}
	st.Emitted++
	// Re-arm at the new level: the run's windows become the new baseline,
	// so a sustained shift is reported exactly once.
	var sum float64
	for _, s := range fs.RunShares {
		sum += s
	}
	fs.Mean = sum / float64(len(fs.RunShares))
	fs.Var = 0
	fs.N = int64(len(fs.RunShares))
	fs.resetRun()
}

// fold updates the EWMA baseline with one in-band share.
func (fs *FrameState) fold(alpha, share float64) {
	if fs.N == 0 {
		fs.Mean, fs.Var, fs.N = share, 0, 1
		return
	}
	d := share - fs.Mean
	incr := alpha * d
	fs.Mean += incr
	fs.Var = (1 - alpha) * (fs.Var + d*incr)
	fs.N++
}

// dischargeRun folds an unconfirmed drift run back into the baseline in
// observation order and clears it.
func (fs *FrameState) dischargeRun(alpha float64) {
	for _, s := range fs.RunShares {
		fs.fold(alpha, s)
	}
	fs.resetRun()
}

func (fs *FrameState) resetRun() {
	fs.Run, fs.RunDir, fs.RunBeforeNS, fs.RunBeforeShare = 0, 0, 0, 0
	fs.RunShares = nil
}

// NoteLate counts an ingest that landed in an already-observed window
// (clock regression or far-late data); its contribution is not re-folded.
func (t *Tracker) NoteLate() { t.late++ }

// Watermark returns the series' newest observed window start (0 when the
// series is untracked).
func (t *Tracker) Watermark(key string) int64 {
	if st := t.series[key]; st != nil {
		return st.WatermarkUnixNano
	}
	return 0
}

// AppendFindings appends every retained finding (all series, per-series
// detection order) to dst and returns it. The findings are copies.
func (t *Tracker) AppendFindings(dst []Finding) []Finding {
	for _, key := range sortedSeriesKeys(t.series) {
		dst = append(dst, t.series[key].Findings...)
	}
	return dst
}

// Stats sums the tracker's occupancy and counters.
func (t *Tracker) Stats() Stats {
	s := Stats{Late: t.late}
	for _, st := range t.series {
		s.Series++
		s.Frames += len(st.Frames)
		s.Findings += st.Emitted
		s.Suppressed += st.Suppressed
	}
	return s
}

// EncodeState serializes the tracker's full state (JSON; map keys sort, so
// equal state encodes to equal bytes). Late is diagnostic and not carried.
func (t *Tracker) EncodeState() ([]byte, error) {
	if len(t.series) == 0 {
		return nil, nil
	}
	return json.Marshal(t.series)
}

// EncodeStates serializes a filtered per-series state map in EncodeState's
// format — cluster handoff exports carry only the moved series' states.
func EncodeStates(states map[string]*SeriesState) ([]byte, error) {
	if len(states) == 0 {
		return nil, nil
	}
	return json.Marshal(states)
}

// Remove forgets one series entirely — state, watermark and retained
// findings. A node dropping a handed-off series calls this so the new owner
// (which adopted the state) is the single source of its findings.
func (t *Tracker) Remove(key string) {
	delete(t.series, key)
}

// DecodeState parses an EncodeState blob into per-series states, so a
// recovering store can route each series to its current shard.
func DecodeState(data []byte) (map[string]*SeriesState, error) {
	out := make(map[string]*SeriesState)
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("trend: decode state: %w", err)
	}
	for key, st := range out {
		if st == nil {
			return nil, fmt.Errorf("trend: decode state: nil series %q", key)
		}
		if st.Frames == nil {
			st.Frames = make(map[string]*FrameState)
		}
		for frame, fs := range st.Frames {
			if fs == nil {
				return nil, fmt.Errorf("trend: decode state: nil frame %q in series %q", frame, key)
			}
		}
	}
	return out, nil
}

// Adopt installs one recovered series state. When the series already exists
// the state with the higher watermark wins (multi-source overlaps only
// happen with handcrafted directories).
func (t *Tracker) Adopt(key string, st *SeriesState) {
	if st == nil {
		return
	}
	if cur := t.series[key]; cur != nil && cur.WatermarkUnixNano >= st.WatermarkUnixNano {
		return
	}
	t.series[key] = st
}

func sortedSeriesKeys(m map[string]*SeriesState) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
