package profiler

import (
	"strings"
	"testing"

	"deepcontext/internal/cct"
	"deepcontext/internal/dlmonitor"
	"deepcontext/internal/framework"
	"deepcontext/internal/framework/torchsim"
	"deepcontext/internal/gpu"
	"deepcontext/internal/gpu/cupti"
	"deepcontext/internal/vtime"
)

type rig struct {
	m    *framework.Machine
	e    *torchsim.Engine
	mn   *dlmonitor.Monitor
	sess *Session
	th   *framework.Thread
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	m := framework.NewMachine(gpu.A100())
	e := torchsim.New(m)
	tr, err := cupti.New(m.GPU)
	if err != nil {
		t.Fatal(err)
	}
	mn, err := dlmonitor.Init(dlmonitor.Config{Machine: m, Frameworks: []framework.Hooks{e}, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(mn, m, tr, cfg)
	if err := sess.Start(); err != nil {
		t.Fatal(err)
	}
	return &rig{m: m, e: e, mn: mn, sess: sess, th: m.NewThread("python-main")}
}

func convOp(grad bool) torchsim.Op {
	return torchsim.Op{
		Name:         "aten::conv2d",
		CPUCost:      20 * vtime.Microsecond,
		Kernels:      []gpu.KernelSpec{{Name: "implicit_gemm", Grid: gpu.D3(512), Block: gpu.D3(256), SharedMemBytes: 48 << 10, RegsPerThread: 64, FLOPs: 1e9, Bytes: 1e7}},
		RequiresGrad: grad,
	}
}

func findNode(t *cct.Tree, pred func(*cct.Node) bool) *cct.Node {
	var found *cct.Node
	t.Visit(func(n *cct.Node) {
		if found == nil && pred(n) {
			found = n
		}
	})
	return found
}

func TestKernelMetricsAttributedToUnifiedPath(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.th.WithPy("train.py", 10, "main", func() {
		r.e.Run(r.th, convOp(false))
	})
	p := r.sess.Stop()
	tree := p.Tree
	gid, _ := tree.Schema.Lookup(cct.MetricGPUTime)

	kernel := findNode(tree, func(n *cct.Node) bool { return n.Kind == cct.KindKernel && n.Name == "implicit_gemm" })
	if kernel == nil {
		t.Fatal("kernel node missing")
	}
	if kernel.ExclValue(gid) <= 0 {
		t.Fatal("kernel has no gpu time")
	}
	// The kernel hangs under api under operator under python.
	path := kernel.Path()
	var ks []cct.FrameKind
	for _, f := range path {
		ks = append(ks, f.Kind)
	}
	want := []cct.FrameKind{cct.KindPython, cct.KindOperator, cct.KindGPUAPI, cct.KindKernel}
	if len(ks) != len(want) {
		t.Fatalf("path kinds = %v, want %v", ks, want)
	}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("path kinds = %v, want %v", ks, want)
		}
	}
	// Root inclusive equals kernel time (conservation through the path).
	if tree.Root.InclValue(gid) != kernel.ExclValue(gid) {
		t.Fatal("gpu time not propagated to root")
	}
	// Launch geometry metrics present.
	for _, name := range []string{cct.MetricWarps, cct.MetricBlocks, cct.MetricSharedMem, cct.MetricRegisters} {
		id, ok := tree.Schema.Lookup(name)
		if !ok || kernel.ExclValue(id) <= 0 {
			t.Fatalf("metric %s missing on kernel node", name)
		}
	}
}

func TestAggregationAcrossIterationsBoundsTreeSize(t *testing.T) {
	r := newRig(t, DefaultConfig())
	var sizes []int
	r.th.WithPy("train.py", 10, "main", func() {
		for i := 0; i < 50; i++ {
			r.e.Run(r.th, convOp(false))
			if i == 4 || i == 49 {
				r.m.GPU.FlushActivity()
				sizes = append(sizes, r.sess.Tree().NodeCount())
			}
		}
	})
	if sizes[0] != sizes[1] {
		t.Fatalf("tree grew across identical iterations: %v", sizes)
	}
	p := r.sess.Stop()
	gid, _ := p.Tree.Schema.Lookup(cct.MetricGPUTime)
	kernel := findNode(p.Tree, func(n *cct.Node) bool { return n.Kind == cct.KindKernel })
	m := kernel.ExclMetric(gid)
	if m == nil || m.Count != 50 {
		t.Fatalf("kernel samples = %+v, want count 50", m)
	}
	if m.Min <= 0 || m.Max < m.Min || m.Mean <= 0 {
		t.Fatalf("aggregates wrong: %+v", m)
	}
}

func TestBackwardKernelsLandInForwardContext(t *testing.T) {
	r := newRig(t, DefaultConfig())
	op := convOp(true)
	op.BwdName = "aten::convolution_backward"
	op.BwdKernels = []gpu.KernelSpec{{Name: "dgrad_kernel", Grid: gpu.D3(512), Block: gpu.D3(256), FLOPs: 2e9, Bytes: 2e7}}
	r.th.WithPy("train.py", 10, "train_step", func() {
		r.e.Run(r.th, op)
		r.e.Backward(r.th)
	})
	p := r.sess.Stop()
	bwd := findNode(p.Tree, func(n *cct.Node) bool { return n.Kind == cct.KindKernel && n.Name == "dgrad_kernel" })
	if bwd == nil {
		t.Fatal("backward kernel missing")
	}
	// The backward kernel's path must include the forward python frame.
	var sawPy, sawFwdOp, sawBwdOp bool
	for _, f := range bwd.Path() {
		if f.Kind == cct.KindPython && f.File == "train.py" {
			sawPy = true
		}
		if f.Kind == cct.KindOperator && f.Name == "aten::conv2d" {
			sawFwdOp = true
		}
		if f.Kind == cct.KindOperator && f.Name == "aten::convolution_backward" {
			sawBwdOp = true
		}
	}
	if !sawPy || !sawFwdOp || !sawBwdOp {
		t.Fatalf("backward path incomplete: %v", bwd.Path())
	}
}

func TestPCSamplingCreatesInstructionNodes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PCSampling = true
	cfg.PCSamplePeriod = vtime.Microsecond
	r := newRig(t, cfg)
	op := convOp(false)
	op.Kernels[0].Bytes = 2e9 // long kernel, many samples
	op.Kernels[0].ConstHeavy = true
	r.th.WithPy("infer.py", 5, "rmsnorm", func() {
		r.e.Run(r.th, op)
	})
	p := r.sess.Stop()
	inst := findNode(p.Tree, func(n *cct.Node) bool { return n.Kind == cct.KindInstruction })
	if inst == nil {
		t.Fatal("no instruction nodes")
	}
	stallID, ok := p.Tree.Schema.Lookup("stall:constant_memory_miss")
	if !ok {
		t.Fatal("stall metric not registered")
	}
	if p.Tree.Root.InclValue(stallID) <= 0 {
		t.Fatal("no constant-memory stall samples attributed")
	}
	if p.Stats.SamplesAttributed <= 0 {
		t.Fatal("stats missing samples")
	}
}

func TestOpTimingAttributesCPUTime(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.th.WithPy("train.py", 10, "main", func() {
		r.e.Run(r.th, convOp(false))
	})
	p := r.sess.Stop()
	cid, _ := p.Tree.Schema.Lookup(cct.MetricCPUTime)
	opNode := findNode(p.Tree, func(n *cct.Node) bool { return n.Kind == cct.KindOperator })
	if opNode == nil {
		t.Fatal("operator node missing")
	}
	if opNode.ExclValue(cid) < float64(20*vtime.Microsecond) {
		t.Fatalf("op cpu time = %v, want >= body cost", opNode.ExclValue(cid))
	}
	if p.Stats.OpsTimed != 1 {
		t.Fatalf("ops timed = %d", p.Stats.OpsTimed)
	}
}

func TestCPUSamplerAttributesPythonTime(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CPUSampling = true
	cfg.CPUSamplePeriod = vtime.Millisecond
	r := newRig(t, cfg)
	r.sess.AttachCPUSampler(r.th)
	r.th.WithPy("data.py", 88, "data_selection", func() {
		r.th.Clock.Advance(10 * vtime.Millisecond) // pure-CPU work
	})
	p := r.sess.Stop()
	if p.Stats.CPUSamples < 9 {
		t.Fatalf("cpu samples = %d, want ~10", p.Stats.CPUSamples)
	}
	cid, _ := p.Tree.Schema.Lookup(cct.MetricCPUTime)
	n := findNode(p.Tree, func(n *cct.Node) bool {
		return n.Kind == cct.KindPython && strings.Contains(n.File, "data.py")
	})
	if n == nil {
		t.Fatal("sampled python node missing")
	}
	if n.InclValue(cid) < float64(9*vtime.Millisecond) {
		t.Fatalf("sampled time = %v", n.InclValue(cid))
	}
}

func TestMemcpyAndAllocAttribution(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.th.WithPy("train.py", 2, "load", func() {
		r.e.Alloc(r.th, 1<<20)
		r.m.GPU.Memcpy(r.th.GPUCtx(), 0, gpu.SiteMemcpyH2D, 1<<20)
	})
	p := r.sess.Stop()
	mid, _ := p.Tree.Schema.Lookup(cct.MetricMemcpyBytes)
	aid, _ := p.Tree.Schema.Lookup(cct.MetricAllocBytes)
	if p.Tree.Root.InclValue(mid) != float64(1<<20) {
		t.Fatalf("memcpy bytes = %v", p.Tree.Root.InclValue(mid))
	}
	if p.Tree.Root.InclValue(aid) != float64(1<<20) {
		t.Fatalf("alloc bytes = %v", p.Tree.Root.InclValue(aid))
	}
}

func TestStopFlushesPending(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.th.WithPy("t.py", 1, "m", func() {
		r.e.Run(r.th, convOp(false))
	})
	// No explicit flush: Stop must deliver buffered activities.
	p := r.sess.Stop()
	if p.Stats.ActivitiesHandled == 0 {
		t.Fatal("Stop did not flush activities")
	}
	if r.sess.Stop() != nil {
		t.Fatal("second Stop should return nil")
	}
}

func TestFootprintBoundedVsIterations(t *testing.T) {
	foot := func(iters int) int64 {
		r := newRig(t, DefaultConfig())
		r.th.WithPy("train.py", 10, "main", func() {
			for i := 0; i < iters; i++ {
				r.e.Run(r.th, convOp(false))
			}
		})
		return r.sess.Stop().FootprintBytes
	}
	f10, f100 := foot(10), foot(100)
	// Online aggregation: footprint growth must be sublinear (identical
	// contexts collapse into the same nodes).
	if f100 > f10*2 {
		t.Fatalf("footprint scaled with iterations: %d -> %d", f10, f100)
	}
}

func TestNativeModeCostsMoreTime(t *testing.T) {
	run := func(cfg Config) vtime.Duration {
		r := newRig(t, cfg)
		r.th.WithPy("train.py", 10, "main", func() {
			for i := 0; i < 100; i++ {
				r.e.Run(r.th, convOp(false))
			}
		})
		r.sess.Stop()
		return r.m.EndToEnd()
	}
	light := DefaultConfig()
	full := DefaultConfig()
	full.Path = dlmonitor.FullContext()
	if l, f := run(light), run(full); f <= l {
		t.Fatalf("native mode (%v) should cost more than light (%v)", f, l)
	}
}

func TestDoubleStartFails(t *testing.T) {
	r := newRig(t, DefaultConfig())
	if err := r.sess.Start(); err == nil {
		t.Fatal("second Start should error")
	}
}

func TestMetaFilledFromTracer(t *testing.T) {
	r := newRig(t, DefaultConfig())
	p := r.sess.Stop()
	if p.Meta.Substrate != "CUPTI" || p.Meta.Vendor != "Nvidia" {
		t.Fatalf("meta = %+v", p.Meta)
	}
}
