package profiler

import (
	"strings"
	"testing"

	"deepcontext/internal/cct"
	"deepcontext/internal/vtime"
)

func TestHWCountersAttributed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CPUSampling = true
	cfg.CPUSamplePeriod = vtime.Millisecond
	cfg.HWCounters = true
	r := newRig(t, cfg)
	r.sess.AttachCPUSampler(r.th)
	r.th.WithPy("data.py", 88, "data_selection", func() {
		r.th.Clock.Advance(10 * vtime.Millisecond)
	})
	p := r.sess.Stop()
	cyc, ok := p.Tree.Schema.Lookup("papi:PAPI_TOT_CYC")
	if !ok {
		t.Fatal("cycle metric not registered")
	}
	ins, ok := p.Tree.Schema.Lookup("papi:PAPI_TOT_INS")
	if !ok {
		t.Fatal("instruction metric not registered")
	}
	totalCyc := p.Tree.Root.InclValue(cyc)
	totalIns := p.Tree.Root.InclValue(ins)
	if totalCyc <= 0 || totalIns <= 0 {
		t.Fatalf("counters empty: cyc=%v ins=%v", totalCyc, totalIns)
	}
	// Default rates: 3 GHz at IPC 2 — instructions = 2x cycles.
	if ratio := totalIns / totalCyc; ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("IPC = %v, want ~2", ratio)
	}
	// ~3e9 cycles/s over ~10ms of sampled CPU time.
	if totalCyc < 2e7 {
		t.Fatalf("cycles = %v, want ~3e7", totalCyc)
	}
	// Counters attribute to the sampled Python frame.
	n := findNode(p.Tree, func(n *cct.Node) bool {
		return n.Kind == cct.KindPython && strings.Contains(n.File, "data.py")
	})
	if n == nil || n.InclValue(cyc) <= 0 {
		t.Fatal("counters not attributed to the sampled frame")
	}
}

func TestHWCountersOffByDefault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CPUSampling = true
	r := newRig(t, cfg)
	r.sess.AttachCPUSampler(r.th)
	r.th.Clock.Advance(10 * vtime.Millisecond)
	p := r.sess.Stop()
	if _, ok := p.Tree.Schema.Lookup("papi:PAPI_TOT_CYC"); ok {
		t.Fatal("HW counters registered without opt-in")
	}
}
