// Package profiler implements DeepContext's profiler component (paper §4.2):
// it registers callbacks through DLMonitor, emits correlation IDs at GPU API
// callbacks, retrieves unified call paths, and attributes asynchronously
// collected GPU metrics — plus timer-sampled CPU metrics — to a calling
// context tree with online aggregation and root-ward propagation.
package profiler

import (
	"fmt"

	"deepcontext/internal/cct"
	"deepcontext/internal/cpumetrics"
	"deepcontext/internal/dlmonitor"
	"deepcontext/internal/framework"
	"deepcontext/internal/gpu"
	"deepcontext/internal/native"
	"deepcontext/internal/vtime"
)

// Costs are the calibrated virtual-time costs of the profiler's own work.
type Costs struct {
	// InsertPerFrame is CCT insertion/unification per call-path frame,
	// charged to the intercepted thread at API callbacks.
	InsertPerFrame vtime.Duration
	// PropagatePerLevel is metric propagation per tree level, charged to
	// the tool thread during activity attribution.
	PropagatePerLevel vtime.Duration
	// AttributePerActivity is fixed attribution work per activity record.
	AttributePerActivity vtime.Duration
}

// DefaultCosts returns the calibration-pass values.
func DefaultCosts() Costs {
	return Costs{
		InsertPerFrame:       300 * vtime.Nanosecond,
		PropagatePerLevel:    10 * vtime.Nanosecond,
		AttributePerActivity: 250 * vtime.Nanosecond,
	}
}

// Config selects what a session collects.
type Config struct {
	// Path selects call-path sources (python/framework/native).
	Path dlmonitor.PathOptions
	// GPUActivity enables asynchronous GPU metric collection.
	GPUActivity bool
	// ActivityBufCap is the activity buffer capacity before a flush.
	ActivityBufCap int
	// PCSampling enables GPU instruction sampling.
	PCSampling bool
	// PCSamplePeriod is the instruction sampling period.
	PCSamplePeriod vtime.Duration
	// CPUSampling enables timer-based CPU sampling on attached threads.
	CPUSampling bool
	// CPUSamplePeriod is the CPU sampling period (default 4 ms).
	CPUSamplePeriod vtime.Duration
	// HWCounters additionally samples perf/PAPI hardware counters
	// (cycles, instructions, cache misses) at each CPU sample.
	HWCounters bool
	// OpTiming attributes per-operator CPU time at operator exits.
	OpTiming bool
	// Shards is the number of CCT shards ingestion records into. Threads
	// map to shards by thread ID, so the cupti/roctracer buffer-completion
	// thread records on its own shard instead of contending with the
	// dispatch path; the shards fold into one tree at Stop through
	// cct.Merge. 0 or 1 selects the single-tree path, whose output is
	// identical to the unsharded implementation.
	Shards int
	// Costs overrides the calibrated self-costs.
	Costs *Costs
}

// DefaultConfig collects everything except native call paths, matching the
// paper's recommended low-overhead mode.
func DefaultConfig() Config {
	return Config{
		Path:            dlmonitor.LightContext(),
		GPUActivity:     true,
		ActivityBufCap:  4096,
		OpTiming:        true,
		CPUSamplePeriod: 4 * vtime.Millisecond,
	}
}

// Meta describes the profiled run.
type Meta struct {
	Workload   string
	Framework  string
	Vendor     string
	Device     string
	Substrate  string // "CUPTI" or "RocTracer"
	Iterations int
}

// Stats counts profiler work.
type Stats struct {
	APICallbacks      int64
	ActivitiesHandled int64
	SamplesAttributed int64
	CPUSamples        int64
	OpsTimed          int64
	DroppedActivities int64
}

// Profile is the result of a profiling session.
type Profile struct {
	Tree  *cct.Tree
	Meta  Meta
	Stats Stats
	// Fused maps fused-operator names to their original operators for
	// the GUI's original-call-path display.
	Fused map[string][]framework.FusedOrigin
	// MonitorStats carries DLMonitor counters.
	MonitorStats dlmonitor.Stats
	// FootprintBytes is the modeled profiler memory footprint at Stop.
	FootprintBytes int64
}

// Session is one active profiling session.
type Session struct {
	mn     *dlmonitor.Monitor
	m      *framework.Machine
	tracer gpu.Tracer
	cfg    Config
	costs  Costs

	// shards holds the per-thread CCT shards; tree is the folded result,
	// set at Stop (and equal to the only shard when Shards <= 1).
	shards *cct.Sharded
	tree   *cct.Tree
	// mirror caches dispatch-shard → tool-shard node translations so
	// asynchronous attribution re-resolves each parked calling context
	// only once (repeated kernel launches reuse contexts heavily).
	mirror  map[*cct.Node]*cct.Node
	pending map[uint64]*cct.Node
	fused   map[string][]framework.FusedOrigin

	// tool is the profiler's own worker thread (the CUPTI/RocTracer
	// buffer-completion thread); attribution costs accrue here.
	tool *framework.Thread

	threadByClock map[*vtime.Clock]*framework.Thread
	opEnterTimes  map[*framework.Thread][]vtime.Time
	samplers      []*cpumetrics.TimerSampler

	idGPUTime, idCPUTime, idKernels, idAPICalls cct.MetricID
	idMemcpyBytes, idAllocBytes                 cct.MetricID
	idWarps, idBlocks, idSharedMem, idRegs      cct.MetricID
	idInstSamples                               cct.MetricID
	stallIDs                                    map[gpu.StallReason]cct.MetricID
	stats                                       Stats
	meta                                        Meta
	started, stopped                            bool
}

// NewSession builds a session over an initialized DLMonitor.
func NewSession(mn *dlmonitor.Monitor, m *framework.Machine, tracer gpu.Tracer, cfg Config) *Session {
	costs := DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	if cfg.ActivityBufCap <= 0 {
		cfg.ActivityBufCap = 4096
	}
	if cfg.CPUSamplePeriod <= 0 {
		cfg.CPUSamplePeriod = 4 * vtime.Millisecond
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	s := &Session{
		mn:            mn,
		m:             m,
		tracer:        tracer,
		cfg:           cfg,
		costs:         costs,
		shards:        cct.NewSharded(cfg.Shards),
		mirror:        make(map[*cct.Node]*cct.Node),
		pending:       make(map[uint64]*cct.Node),
		fused:         make(map[string][]framework.FusedOrigin),
		threadByClock: make(map[*vtime.Clock]*framework.Thread),
		opEnterTimes:  make(map[*framework.Thread][]vtime.Time),
		stallIDs:      make(map[gpu.StallReason]cct.MetricID),
	}
	// Pre-intern the fixed metric schema into every shard in one order, so
	// the cached IDs below are valid against any shard's tree.
	for i := 0; i < s.shards.Len(); i++ {
		t := s.shards.Shard(i)
		s.idGPUTime = t.MetricID(cct.MetricGPUTime)
		s.idCPUTime = t.MetricID(cct.MetricCPUTime)
		s.idKernels = t.MetricID(cct.MetricKernelCount)
		s.idAPICalls = t.MetricID(cct.MetricAPICount)
		s.idMemcpyBytes = t.MetricID(cct.MetricMemcpyBytes)
		s.idAllocBytes = t.MetricID(cct.MetricAllocBytes)
		s.idWarps = t.MetricID(cct.MetricWarps)
		s.idBlocks = t.MetricID(cct.MetricBlocks)
		s.idSharedMem = t.MetricID(cct.MetricSharedMem)
		s.idRegs = t.MetricID(cct.MetricRegisters)
		s.idInstSamples = t.MetricID(cct.MetricInstSamples)
	}
	return s
}

// shardOf returns the CCT shard th records into.
func (s *Session) shardOf(th *framework.Thread) *cct.Tree { return s.shards.Shard(th.ID) }

// toolShard returns the shard owned by the profiler's worker thread, where
// asynchronously attributed metrics land when sharding is on.
func (s *Session) toolShard() *cct.Tree { return s.shards.Shard(s.tool.ID) }

// SetMeta records run metadata for the produced profile.
func (s *Session) SetMeta(meta Meta) { s.meta = meta }

// Start registers the session's callbacks and enables collection.
func (s *Session) Start() error {
	if s.started {
		return fmt.Errorf("profiler: session already started")
	}
	s.started = true
	s.tool = s.m.NewThread("dc-tool")
	if s.cfg.GPUActivity && s.tracer != nil {
		s.tracer.EnableActivity(s.cfg.ActivityBufCap, s.onActivities)
		if s.cfg.PCSampling {
			s.tracer.EnablePCSampling(s.cfg.PCSamplePeriod)
		}
	}
	s.mn.RegisterGPUCallback(s.onGPU)
	if s.cfg.OpTiming {
		s.mn.RegisterFrameworkCallback(s.onOp)
	}
	if s.meta.Substrate == "" && s.tracer != nil {
		s.meta.Substrate = s.tracer.Name()
		s.meta.Vendor = s.tracer.Vendor().String()
		s.meta.Device = s.tracer.Device().Name
	}
	return nil
}

// hwEvents are the hardware counters sampled when Config.HWCounters is set.
var hwEvents = []cpumetrics.Event{cpumetrics.Cycles, cpumetrics.Instructions, cpumetrics.CacheMisses}

// AttachCPUSampler installs the CPU timer sampler on th. Call it for each
// thread whose CPU time should be profiled.
func (s *Session) AttachCPUSampler(th *framework.Thread) {
	if !s.cfg.CPUSampling {
		return
	}
	tree := s.shardOf(th)
	var counters *cpumetrics.Counters
	var hwIDs []cct.MetricID
	if s.cfg.HWCounters {
		counters = cpumetrics.NewCounters(&th.Clock, nil)
		for _, ev := range hwEvents {
			hwIDs = append(hwIDs, tree.MetricID("papi:"+ev.String()))
			counters.Reset(ev)
		}
	}
	sampler := cpumetrics.NewTimerSampler(&th.Clock, cpumetrics.CPUTime, s.cfg.CPUSamplePeriod,
		func(at vtime.Time, interval vtime.Duration) {
			s.stats.CPUSamples++
			path := s.mn.CallPath(th, s.cfg.Path)
			node := tree.InsertPath(path.Frames)
			th.Clock.Advance(vtime.Duration(len(path.Frames)) * s.costs.InsertPerFrame)
			s.addMetric(tree, node, s.idCPUTime, float64(interval))
			if counters != nil {
				for i, ev := range hwEvents {
					delta := counters.Read(ev)
					counters.Reset(ev)
					s.addMetric(tree, node, hwIDs[i], float64(delta))
				}
			}
		})
	s.samplers = append(s.samplers, sampler)
}

// threadOf resolves the framework thread owning clk.
func (s *Session) threadOf(clk *vtime.Clock) *framework.Thread {
	if th, ok := s.threadByClock[clk]; ok {
		return th
	}
	for _, th := range s.m.Threads() {
		if &th.Clock == clk {
			s.threadByClock[clk] = th
			return th
		}
	}
	return nil
}

// onOp attributes per-operator CPU time at operator exits.
func (s *Session) onOp(ev *framework.OpEvent, ph native.Phase) {
	th := ev.Thread
	if ph == native.Enter {
		s.opEnterTimes[th] = append(s.opEnterTimes[th], th.Clock.Now())
		return
	}
	stack := s.opEnterTimes[th]
	if len(stack) == 0 {
		return
	}
	enter := stack[len(stack)-1]
	s.opEnterTimes[th] = stack[:len(stack)-1]
	s.stats.OpsTimed++
	path := s.mn.CallPath(th, dlmonitor.PathOptions{Python: s.cfg.Path.Python, Framework: s.cfg.Path.Framework})
	tree := s.shardOf(th)
	node := tree.InsertPath(path.Frames)
	th.Clock.Advance(vtime.Duration(len(path.Frames)) * s.costs.InsertPerFrame)
	s.addMetric(tree, node, s.idCPUTime, float64(th.Clock.Now().Sub(enter)))
	if len(path.Fused) > 0 {
		s.rememberFused(ev.Name, path.Fused)
	}
}

func (s *Session) rememberFused(name string, origins []framework.FusedOrigin) {
	if _, ok := s.fused[name]; !ok {
		s.fused[name] = origins
	}
}

// onGPU handles driver API callbacks: emit/retrieve the call path, insert it
// into the CCT, and park the node under the correlation ID for asynchronous
// metric attribution.
func (s *Session) onGPU(ev *gpu.APIEvent) {
	if ev.Phase != native.Enter {
		return
	}
	th := s.threadOf(ev.Thread.Clock)
	if th == nil {
		return
	}
	s.stats.APICallbacks++
	path := s.mn.CallPath(th, s.cfg.Path)
	frames := path.Frames
	tree := s.shardOf(th)
	node := tree.InsertPath(frames)
	inserted := len(frames)
	if !s.cfg.Path.Native {
		// Without native unwinding the API frame is appended from the
		// callback's own information; it extends the already-inserted
		// path, so the borrowed CallPath slice never needs copying.
		if sym := apiSymbolOf(s.m.GPU, ev.Site); sym != nil {
			node = tree.InsertUnder(node, []cct.Frame{{
				Kind: cct.KindGPUAPI, Name: sym.Name, Lib: sym.Lib.Name, PC: uint64(sym.Addr),
			}})
			inserted++
		}
	}
	th.Clock.Advance(vtime.Duration(inserted) * s.costs.InsertPerFrame)
	s.addMetric(tree, node, s.idAPICalls, 1)
	if len(path.Fused) > 0 && ev.Kernel != nil {
		s.rememberFused(ev.Kernel.Name, path.Fused)
	}
	s.pending[ev.Correlation] = node
}

func apiSymbolOf(rt *gpu.Runtime, site gpu.APISite) *native.Symbol { return rt.APISymbol(site) }

// onActivities attributes flushed activity records to their parked call
// paths; it models the tracer's buffer-completion worker, so its costs go to
// the tool thread — and, when sharding is on, its metrics go to the tool
// thread's own shard (resolved through the mirror cache) so attribution
// never touches the dispatch threads' shards.
func (s *Session) onActivities(acts []gpu.Activity) {
	tree := s.toolShard()
	for i := range acts {
		act := &acts[i]
		s.tool.Clock.Advance(s.costs.AttributePerActivity)
		node, ok := s.pending[act.Correlation]
		if !ok {
			s.stats.DroppedActivities++
			continue
		}
		delete(s.pending, act.Correlation)
		s.stats.ActivitiesHandled++
		node = s.mirrorNode(tree, node)
		switch act.Kind {
		case gpu.ActivityKernel:
			s.attributeKernel(tree, node, act)
		case gpu.ActivityMemcpy:
			s.addMetric(tree, node, s.idGPUTime, float64(act.Duration()))
			s.addMetric(tree, node, s.idMemcpyBytes, float64(act.Bytes))
		case gpu.ActivityMalloc, gpu.ActivityFree:
			s.addMetric(tree, node, s.idAllocBytes, float64(act.Bytes))
		}
	}
}

// mirrorNode translates a calling context parked by a dispatch thread into
// the tool shard, re-inserting its path on first sight and serving repeats
// from the mirror cache. With a single shard the node is its own mirror.
func (s *Session) mirrorNode(tree *cct.Tree, n *cct.Node) *cct.Node {
	if s.shards.Len() == 1 {
		return n
	}
	if m, ok := s.mirror[n]; ok {
		return m
	}
	path := n.Path()
	m := tree.InsertPath(path)
	s.tool.Clock.Advance(vtime.Duration(len(path)) * s.costs.InsertPerFrame)
	s.mirror[n] = m
	return m
}

func (s *Session) attributeKernel(tree *cct.Tree, apiNode *cct.Node, act *gpu.Activity) {
	kframe := cct.Frame{
		Kind: cct.KindKernel,
		Name: act.Name,
		Lib:  "[gpu device code]",
	}
	if act.KernelSym != nil {
		kframe.PC = uint64(act.KernelSym.Addr)
	}
	knode := tree.InsertUnder(apiNode, []cct.Frame{kframe})
	dev := s.tracer.Device()
	warps := float64((act.Block.Volume() + dev.WarpSize - 1) / dev.WarpSize)
	s.addMetric(tree, knode, s.idGPUTime, float64(act.Duration()))
	s.addMetric(tree, knode, s.idKernels, 1)
	s.addMetric(tree, knode, s.idWarps, warps)
	s.addMetric(tree, knode, s.idBlocks, float64(act.Grid.Volume()))
	s.addMetric(tree, knode, s.idSharedMem, float64(act.SharedMemBytes))
	s.addMetric(tree, knode, s.idRegs, float64(act.RegsPerThread))
	for _, sample := range act.Samples {
		inode := tree.InsertUnder(knode, []cct.Frame{{
			Kind: cct.KindInstruction,
			Name: fmt.Sprintf("%s+0x%x", act.Name, sample.PC-native.Addr(kframe.PC)),
			Lib:  kframe.Lib,
			PC:   uint64(sample.PC),
		}})
		s.stats.SamplesAttributed += sample.Count
		s.addMetric(tree, inode, s.idInstSamples, float64(sample.Count))
		s.addMetric(tree, inode, s.stallID(tree, sample.Stall), float64(sample.Count))
	}
}

// stallID interns the per-stall-reason sample metric. Stall samples are
// only ever attributed by the tool thread, so the cache is valid against
// the one tree attribution writes to.
func (s *Session) stallID(tree *cct.Tree, r gpu.StallReason) cct.MetricID {
	if id, ok := s.stallIDs[r]; ok {
		return id
	}
	id := tree.MetricID("stall:" + r.String())
	s.stallIDs[r] = id
	return id
}

// addMetric records a sample on tree and charges propagation cost to the
// tool thread.
func (s *Session) addMetric(tree *cct.Tree, n *cct.Node, id cct.MetricID, v float64) {
	tree.AddMetric(n, id, v)
	s.tool.Clock.Advance(vtime.Duration(n.Depth()+1) * s.costs.PropagatePerLevel)
}

// FootprintBytes models the profiler's resident memory: the CCT shards,
// parked correlations, fused-origin notes and DLMonitor's forward-path
// table.
func (s *Session) FootprintBytes() int64 {
	const pendingBytes, fusedBytes, fwdBytes = 64, 256, 512
	var trees int64
	if s.tree != nil {
		trees = s.tree.FootprintBytes()
	} else {
		for i := 0; i < s.shards.Len(); i++ {
			trees += s.shards.Shard(i).FootprintBytes()
		}
	}
	return trees +
		int64(len(s.pending))*pendingBytes +
		int64(len(s.fused))*fusedBytes +
		int64(s.mn.FwdPathsLive())*fwdBytes
}

// Stop flushes outstanding activity, detaches samplers, folds the shard
// CCTs into the final tree, and returns the profile.
func (s *Session) Stop() *Profile {
	if s.stopped {
		return nil
	}
	s.stopped = true
	if s.tracer != nil {
		s.tracer.Flush()
	}
	for _, sm := range s.samplers {
		sm.Stop()
	}
	footprint := s.FootprintBytes() // pre-fold: the session's peak shape
	s.tree = s.shards.Fold()
	return &Profile{
		Tree:           s.tree,
		Meta:           s.meta,
		Stats:          s.stats,
		Fused:          s.fused,
		MonitorStats:   s.mn.Stats(),
		FootprintBytes: footprint,
	}
}

// Tree exposes the session's tree (tests and incremental GUIs): the folded
// tree after Stop, the only shard when unsharded, and otherwise a merged
// snapshot of the live shards.
func (s *Session) Tree() *cct.Tree {
	if s.tree != nil {
		return s.tree
	}
	if s.shards.Len() == 1 {
		return s.shards.Shard(0)
	}
	snap := cct.New()
	for i := 0; i < s.shards.Len(); i++ {
		cct.Merge(snap, s.shards.Shard(i))
	}
	return snap
}

// Stats returns collection counters.
func (s *Session) Stats() Stats { return s.stats }
