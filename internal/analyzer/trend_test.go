package analyzer

import (
	"strings"
	"testing"

	"deepcontext/internal/profstore/trend"
)

func trendFinding(dir int, baseline, share float64) trend.Finding {
	return trend.Finding{
		Series: "unet/nvidia/pytorch", Workload: "UNet", Vendor: "Nvidia", Framework: "pytorch",
		Frame: "gemm", Metric: "gpu_time_ns", Direction: dir,
		BeforeUnixNano: 100, AfterUnixNano: 400,
		BeforeShare: baseline, Share: share, BaselineShare: baseline,
		Band: 0.05, Windows: 3,
	}
}

func TestGradeTrendSeverities(t *testing.T) {
	cases := []struct {
		name     string
		f        trend.Finding
		analysis string
		severity Severity
	}{
		// 0.30 → 0.38: out of band but modest — a warning.
		{"modest-regression", trendFinding(1, 0.30, 0.38), TrendRegressionAnalysis, Warning},
		// 0.30 → 0.55: drift is 5× the band — critical.
		{"large-regression", trendFinding(1, 0.30, 0.55), TrendRegressionAnalysis, Critical},
		// 0.12 → 0.25: more than doubled into dominant share — critical.
		{"doubled-regression", trendFinding(1, 0.12, 0.25), TrendRegressionAnalysis, Critical},
		// Any improvement is informational.
		{"improvement", trendFinding(-1, 0.40, 0.20), TrendImprovementAnalysis, Info},
	}
	for _, tc := range cases {
		is := GradeTrend(tc.f)
		if is.Analysis != tc.analysis || is.Severity != tc.severity {
			t.Errorf("%s: got (%s, %s), want (%s, %s)", tc.name, is.Analysis, is.Severity, tc.analysis, tc.severity)
		}
		if !strings.Contains(is.Message, "gemm") || !strings.Contains(is.Message, tc.f.Series) {
			t.Errorf("%s: message lacks frame/series context: %q", tc.name, is.Message)
		}
		if tc.f.Direction > 0 && !strings.Contains(is.Suggestion, "before=100") {
			t.Errorf("%s: regression suggestion should point at the window pair: %q", tc.name, is.Suggestion)
		}
	}
}

func TestTrendReportOrdering(t *testing.T) {
	rep := TrendReport([]trend.Finding{
		trendFinding(-1, 0.40, 0.20),
		trendFinding(1, 0.30, 0.38),
		trendFinding(1, 0.30, 0.55),
	})
	if len(rep.Issues) != 3 {
		t.Fatalf("issues = %d", len(rep.Issues))
	}
	if rep.Issues[0].Severity != Critical || rep.Issues[1].Severity != Warning || rep.Issues[2].Severity != Info {
		t.Fatalf("report not severity-sorted: %+v", rep.Issues)
	}
	// The wire form flattens cleanly (no Node on trend issues).
	js := rep.JSON()
	if js.Findings != 3 || js.Issues[0].Severity != "critical" {
		t.Fatalf("JSON form: %+v", js)
	}
}
