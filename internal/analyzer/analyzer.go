// Package analyzer implements DeepContext's automated performance analyzer
// (paper §4.3): a pattern-matching framework over the calling context tree
// with a query API (call-path search, metric filters) and the paper's five
// example analyses — hotspot identification, kernel-fusion opportunities,
// forward/backward abnormalities, fine-grained stall attribution, and CPU
// latency imbalance. Flagged issues carry messages and suggestions that the
// GUI colour-codes.
package analyzer

import (
	"fmt"
	"sort"
	"strings"

	"deepcontext/internal/cct"
	"deepcontext/internal/profiler"
	"deepcontext/internal/vtime"
)

// Severity ranks issues for GUI colour-coding.
type Severity int

const (
	// Info is an observation.
	Info Severity = iota
	// Warning is a likely inefficiency.
	Warning
	// Critical is a dominant bottleneck.
	Critical
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Critical:
		return "critical"
	case Warning:
		return "warning"
	}
	return "info"
}

// Issue is one flagged finding.
type Issue struct {
	Analysis   string
	Severity   Severity
	Node       *cct.Node
	Path       []cct.Frame
	Message    string
	Suggestion string
	// Value is the analysis's key quantity (fraction, ratio or time).
	Value float64
}

// String renders the issue on one line.
func (i Issue) String() string {
	loc := "<root>"
	if len(i.Path) > 0 {
		loc = i.Path[len(i.Path)-1].Label()
	}
	return fmt.Sprintf("[%s] %s: %s @ %s", i.Severity, i.Analysis, i.Message, loc)
}

// Report is the analyzer output.
type Report struct {
	Issues []Issue
}

// ByAnalysis groups issues by analysis name.
func (r *Report) ByAnalysis() map[string][]Issue {
	out := make(map[string][]Issue)
	for _, is := range r.Issues {
		out[is.Analysis] = append(out[is.Analysis], is)
	}
	return out
}

// ByNode indexes issues by flagged node (for GUI annotation).
func (r *Report) ByNode() map[*cct.Node][]Issue {
	out := make(map[*cct.Node][]Issue)
	for _, is := range r.Issues {
		if is.Node != nil {
			out[is.Node] = append(out[is.Node], is)
		}
	}
	return out
}

// Thresholds tune the built-in analyses.
type Thresholds struct {
	// HotspotFrac flags kernels above this fraction of total GPU time.
	HotspotFrac float64
	// SmallKernelTime is the per-launch GPU time under which kernels are
	// "small" for the fusion analysis.
	SmallKernelTime vtime.Duration
	// SmallKernelMinCount is the minimum launches under one frame to
	// consider fusion.
	SmallKernelMinCount int64
	// BwdFwdRatio flags operators whose backward exceeds forward by this
	// factor.
	BwdFwdRatio float64
	// StallFrac flags kernels whose stalled-sample fraction exceeds it.
	StallFrac float64
	// CPUGPURatio flags frames whose CPU time exceeds GPU time by this
	// factor.
	CPUGPURatio float64
	// MinCPUTime is the minimum CPU time for CPU-latency findings.
	MinCPUTime vtime.Duration
}

// DefaultThresholds returns the paper-informed defaults.
func DefaultThresholds() Thresholds {
	return Thresholds{
		HotspotFrac:         0.10,
		SmallKernelTime:     120 * vtime.Microsecond,
		SmallKernelMinCount: 128,
		BwdFwdRatio:         2.0,
		StallFrac:           0.30,
		CPUGPURatio:         3.0,
		MinCPUTime:          50 * vtime.Millisecond,
	}
}

// Context is handed to each analysis.
type Context struct {
	Profile    *profiler.Profile
	Tree       *cct.Tree
	Thresholds Thresholds

	GPUTime cct.MetricID
	CPUTime cct.MetricID
	Kernels cct.MetricID
	Samples cct.MetricID
	haveGPU bool
	haveCPU bool
}

// TotalGPUTime is the root's inclusive GPU time.
func (c *Context) TotalGPUTime() float64 { return c.Tree.Root.InclValue(c.GPUTime) }

// TotalCPUTime is the root's inclusive CPU time.
func (c *Context) TotalCPUTime() float64 { return c.Tree.Root.InclValue(c.CPUTime) }

// Analysis is one pluggable analysis client. Users add custom analyses by
// implementing this interface, mirroring the paper's flexible Python rules.
type Analysis interface {
	Name() string
	Run(ctx *Context) []Issue
}

// Run executes analyses (default: all built-ins) over p.
func Run(p *profiler.Profile, th Thresholds, analyses ...Analysis) *Report {
	if len(analyses) == 0 {
		analyses = BuiltinAnalyses()
	}
	ctx := &Context{Profile: p, Tree: p.Tree, Thresholds: th}
	if id, ok := p.Tree.Schema.Lookup(cct.MetricGPUTime); ok {
		ctx.GPUTime, ctx.haveGPU = id, true
	}
	if id, ok := p.Tree.Schema.Lookup(cct.MetricCPUTime); ok {
		ctx.CPUTime, ctx.haveCPU = id, true
	}
	if id, ok := p.Tree.Schema.Lookup(cct.MetricKernelCount); ok {
		ctx.Kernels = id
	}
	if id, ok := p.Tree.Schema.Lookup(cct.MetricInstSamples); ok {
		ctx.Samples = id
	}
	rep := &Report{}
	for _, a := range analyses {
		rep.Issues = append(rep.Issues, a.Run(ctx)...)
	}
	sortIssues(rep.Issues)
	return rep
}

// sortIssues orders issues by severity, then by the analysis's key
// quantity — the report order every producer (Run, TrendReport) shares.
func sortIssues(issues []Issue) {
	sort.SliceStable(issues, func(i, j int) bool {
		if issues[i].Severity != issues[j].Severity {
			return issues[i].Severity > issues[j].Severity
		}
		return issues[i].Value > issues[j].Value
	})
}

// BuiltinAnalyses returns the paper's five example analyses.
func BuiltinAnalyses() []Analysis {
	return []Analysis{
		Hotspot{},
		KernelFusion{},
		ForwardBackward{},
		Stall{},
		CPULatency{},
	}
}

// --- Query API -------------------------------------------------------------

// Kernels returns all kernel nodes.
func Kernels(t *cct.Tree) []*cct.Node {
	return Match(t, func(n *cct.Node) bool { return n.Kind == cct.KindKernel })
}

// Operators returns all framework-operator nodes.
func Operators(t *cct.Tree) []*cct.Node {
	return Match(t, func(n *cct.Node) bool { return n.Kind == cct.KindOperator })
}

// Match returns nodes satisfying pred in BFS order.
func Match(t *cct.Tree, pred func(*cct.Node) bool) []*cct.Node {
	var out []*cct.Node
	t.BFS(func(n *cct.Node) bool {
		if pred(n) {
			out = append(out, n)
		}
		return true
	})
	return out
}

// MatchName returns nodes whose label contains substr.
func MatchName(t *cct.Tree, substr string) []*cct.Node {
	return Match(t, func(n *cct.Node) bool { return strings.Contains(n.Label(), substr) })
}

// IsBackwardName reports whether an operator name denotes a backward op.
func IsBackwardName(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "backward") || strings.HasSuffix(lower, "_bwd")
}
