package analyzer

// Trend-backed rules: unlike the tree-based analyses, these grade the
// profstore trend detector's change-point findings (a frame's metric share
// drifting out of its noise band for K consecutive windows) into the same
// Issue/Report shape the /analyze surface serves, so dcserver's
// /regressions endpoint colour-codes findings with one vocabulary.

import (
	"fmt"

	"deepcontext/internal/profstore/trend"
)

// Analysis names for trend-backed issues.
const (
	TrendRegressionAnalysis  = "trend-regression"
	TrendImprovementAnalysis = "trend-improvement"
)

// GradeTrend maps one change-point finding to a graded issue. Share
// increases are regressions: Critical when the drift dwarfs the noise band
// (≥ 2× the band) or the frame at least doubled its share into dominant
// territory (≥ 20% of the series' metric); Warning otherwise. Share
// decreases are improvements and grade Info. Value carries the absolute
// share delta, matching the analyzer's severity-then-value sort.
func GradeTrend(f trend.Finding) Issue {
	delta := f.Share - f.BaselineShare
	is := Issue{
		Analysis: TrendImprovementAnalysis,
		Severity: Info,
		Value:    delta,
	}
	if delta < 0 {
		is.Value = -delta
	}
	verb := "fell"
	if f.Direction > 0 {
		verb = "rose"
		is.Analysis = TrendRegressionAnalysis
		is.Severity = Warning
		if delta >= 2*f.Band || (f.BaselineShare > 0 && f.Share >= 2*f.BaselineShare && f.Share >= 0.2) {
			is.Severity = Critical
		}
	}
	is.Message = fmt.Sprintf("%s: %q's %s share %s from %.1f%% to %.1f%% (baseline %.1f%% ± %.1f, band %.1f%%) over %d consecutive windows",
		f.Series, f.Frame, f.Metric, verb,
		f.BeforeShare*100, f.Share*100, f.BaselineShare*100, f.BaselineSigma*100, f.Band*100, f.Windows)
	if f.Direction > 0 {
		is.Suggestion = fmt.Sprintf("diff the flagged windows (before=%d, after=%d) to see which calling contexts grew, and correlate with deploys to %s on %s",
			f.BeforeUnixNano, f.AfterUnixNano, f.Workload, f.Vendor)
	}
	return is
}

// TrendReport grades a finding list into a Report, sorted by the
// analyzer's severity-then-value order (ties keep the input order, which
// profstore already makes canonical).
func TrendReport(findings []trend.Finding) *Report {
	rep := &Report{}
	for _, f := range findings {
		rep.Issues = append(rep.Issues, GradeTrend(f))
	}
	sortIssues(rep.Issues)
	return rep
}
