package analyzer

import (
	"fmt"
	"sort"
	"strings"

	"deepcontext/internal/cct"
	"deepcontext/internal/vtime"
)

// Hotspot implements example analysis 1 (Hotspot Identification): kernels
// whose inclusive GPU time exceeds a fraction of the run's total.
type Hotspot struct{}

// Name identifies the analysis.
func (Hotspot) Name() string { return "hotspot" }

// Run flags hot kernels with their full call paths.
func (Hotspot) Run(ctx *Context) []Issue {
	if !ctx.haveGPU {
		return nil
	}
	total := ctx.TotalGPUTime()
	if total <= 0 {
		return nil
	}
	var out []Issue
	for _, n := range Kernels(ctx.Tree) {
		frac := n.InclValue(ctx.GPUTime) / total
		if frac <= ctx.Thresholds.HotspotFrac {
			continue
		}
		sev := Warning
		if frac > 2*ctx.Thresholds.HotspotFrac {
			sev = Critical
		}
		out = append(out, Issue{
			Analysis: "hotspot",
			Severity: sev,
			Node:     n,
			Path:     n.Path(),
			Value:    frac,
			Message:  fmt.Sprintf("kernel %s takes %.1f%% of total GPU time", n.Name, 100*frac),
			Suggestion: "inspect the highlighted call path to find the operator and source " +
				"line responsible; consider algorithmic or layout changes there",
		})
	}
	return out
}

// KernelFusion implements example analysis 2 (Kernel Fusion Analysis):
// frames that launch many kernels with short average GPU execution time.
type KernelFusion struct{}

// Name identifies the analysis.
func (KernelFusion) Name() string { return "kernel_fusion" }

// Run flags frames containing many small kernels.
func (KernelFusion) Run(ctx *Context) []Issue {
	if !ctx.haveGPU {
		return nil
	}
	var out []Issue
	flagged := make(map[*cct.Node]bool)
	ctx.Tree.BFS(func(n *cct.Node) bool {
		if n.Kind == cct.KindKernel || n.Kind == cct.KindInstruction {
			return false
		}
		// Skip descendants of already-flagged frames: report the
		// topmost frame that exhibits the pattern.
		for p := n.Parent; p != nil; p = p.Parent {
			if flagged[p] {
				return false
			}
		}
		count := n.InclValue(ctx.Kernels)
		if int64(count) < ctx.Thresholds.SmallKernelMinCount {
			return true
		}
		avg := n.InclValue(ctx.GPUTime) / count
		if avg >= float64(ctx.Thresholds.SmallKernelTime) {
			return true
		}
		// Only report frames with meaning to the user (python or
		// operator frames), not the root or raw API nodes.
		if n.Kind != cct.KindPython && n.Kind != cct.KindOperator {
			return true
		}
		flagged[n] = true
		out = append(out, Issue{
			Analysis: "kernel_fusion",
			Severity: Warning,
			Node:     n,
			Path:     n.Path(),
			Value:    count,
			Message: fmt.Sprintf("small GPU kernels: %d launches averaging %s under %s",
				int64(count), vtime.Duration(avg).String(), n.Label()),
			Suggestion: "fuse these kernels (e.g. torch.compile or a hand-fused kernel) " +
				"to cut launch and memory-round-trip overhead",
		})
		return false
	})
	return out
}

// ForwardBackward implements example analysis 3 (Forward/Backward Operator
// Analysis): operators whose backward pass is disproportionately slower than
// the forward pass.
type ForwardBackward struct{}

// Name identifies the analysis.
func (ForwardBackward) Name() string { return "forward_backward" }

// Run exploits the CCT shape produced by sequence-ID association: backward
// operator nodes are children of their forward operator node.
func (ForwardBackward) Run(ctx *Context) []Issue {
	if !ctx.haveGPU {
		return nil
	}
	var out []Issue
	for _, fwd := range Operators(ctx.Tree) {
		if IsBackwardName(fwd.Name) {
			continue
		}
		var bwdTime float64
		for _, c := range fwd.Children() {
			if c.Kind == cct.KindOperator && IsBackwardName(c.Name) {
				bwdTime += c.InclValue(ctx.GPUTime)
			}
		}
		if bwdTime == 0 {
			continue
		}
		fwdTime := fwd.InclValue(ctx.GPUTime) - bwdTime
		if fwdTime <= 0 {
			fwdTime = 1
		}
		ratio := bwdTime / fwdTime
		if ratio <= ctx.Thresholds.BwdFwdRatio {
			continue
		}
		sev := Warning
		if ratio > 5*ctx.Thresholds.BwdFwdRatio {
			sev = Critical
		}
		out = append(out, Issue{
			Analysis: "forward_backward",
			Severity: sev,
			Node:     fwd,
			Path:     fwd.Path(),
			Value:    ratio,
			Message: fmt.Sprintf("backward of %s takes %.1fx its forward GPU time (%s vs %s)",
				fwd.Name, ratio, vtime.Duration(bwdTime), vtime.Duration(fwdTime)),
			Suggestion: "a backward pass should not vastly exceed its forward; check for " +
				"serializing implementations (e.g. deterministic aten::index — " +
				"replace with aten::index_select) or missing fused backward kernels",
		})
	}
	return out
}

// Stall implements example analysis 4 (Fine-grained Stall Analysis): within
// hotspot kernels, rank the sampled stall reasons.
type Stall struct{}

// Name identifies the analysis.
func (Stall) Name() string { return "stall" }

// Run inspects instruction-sample children of hot kernels.
func (Stall) Run(ctx *Context) []Issue {
	if !ctx.haveGPU {
		return nil
	}
	stallIDs := stallMetricIDs(ctx.Tree.Schema)
	if len(stallIDs) == 0 {
		return nil
	}
	hot := (Hotspot{}).Run(ctx)
	var out []Issue
	for _, h := range hot {
		k := h.Node
		total := k.InclValue(ctx.Samples)
		if total <= 0 {
			continue
		}
		byReason := make(map[string]float64)
		for name, id := range stallIDs {
			if v := k.InclValue(id); v > 0 && name != "selected" {
				byReason[name] += v
			}
		}
		var stalled float64
		for _, v := range byReason {
			stalled += v
		}
		if stalled/total <= ctx.Thresholds.StallFrac {
			continue
		}
		top := topReasons(byReason, 2)
		out = append(out, Issue{
			Analysis: "stall",
			Severity: Warning,
			Node:     k,
			Path:     k.Path(),
			Value:    stalled / total,
			Message: fmt.Sprintf("kernel %s is mainly stalled by %s (%.0f%% of samples stalled)",
				k.Name, strings.Join(top, ", "), 100*stalled/total),
			Suggestion: suggestionForStalls(top),
		})
	}
	return out
}

func stallMetricIDs(s *cct.Schema) map[string]cct.MetricID {
	out := make(map[string]cct.MetricID)
	for _, name := range s.Names() {
		if strings.HasPrefix(name, "stall:") {
			id, _ := s.Lookup(name)
			out[strings.TrimPrefix(name, "stall:")] = id
		}
	}
	return out
}

func topReasons(byReason map[string]float64, k int) []string {
	type kv struct {
		name string
		v    float64
	}
	var all []kv
	for n, v := range byReason {
		all = append(all, kv{n, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].name < all[j].name
	})
	var out []string
	for i := 0; i < len(all) && i < k; i++ {
		out = append(out, all[i].name)
	}
	return out
}

func suggestionForStalls(top []string) string {
	for _, r := range top {
		switch r {
		case "constant_memory_miss":
			return "constant-memory misses dominate: ensure each block loads the minimum " +
				"bytes needed, use vectorized conversion instructions, and fuse the " +
				"conversion with neighbouring operators"
		case "math_dependency":
			return "long arithmetic dependency chains: vectorize data conversions and " +
				"increase instruction-level parallelism"
		case "memory_dependency", "memory_throttle":
			return "memory-bound stalls: improve coalescing, use wider loads, or change " +
				"the data layout"
		case "synchronization":
			return "barrier stalls: reduce __syncthreads frequency or rebalance work " +
				"across the block"
		}
	}
	return "inspect the sampled instructions and their source lines"
}

// CPULatency implements example analysis 5 (CPU Latency Analysis): top-down
// traversal flagging frames whose CPU time dwarfs their GPU time.
type CPULatency struct{}

// Name identifies the analysis.
func (CPULatency) Name() string { return "cpu_latency" }

// Run walks top-down and stops descending below a flagged frame.
func (CPULatency) Run(ctx *Context) []Issue {
	if !ctx.haveCPU {
		return nil
	}
	var out []Issue
	ctx.Tree.BFS(func(n *cct.Node) bool {
		if n.Kind == cct.KindRoot {
			return true
		}
		cpu := n.InclValue(ctx.CPUTime)
		if cpu < float64(ctx.Thresholds.MinCPUTime) {
			return false
		}
		gpuShown := n.InclValue(ctx.GPUTime)
		gpuTime := gpuShown
		if gpuTime <= 0 {
			gpuTime = 1
		}
		ratio := cpu / gpuTime
		if ratio <= ctx.Thresholds.CPUGPURatio {
			return true
		}
		out = append(out, Issue{
			Analysis: "cpu_latency",
			Severity: Warning,
			Node:     n,
			Path:     n.Path(),
			Value:    ratio,
			Message: fmt.Sprintf("CPU time abnormality: %s spends %s on CPU vs %s on GPU",
				n.Label(), vtime.Duration(cpu), vtime.Duration(gpuShown)),
			Suggestion: "the GPU is starved under this frame; check data-loading " +
				"parallelism (match worker count to physical cores), host-side " +
				"preprocessing and synchronization",
		})
		return false
	})
	return out
}
