package analyzer

import (
	"strings"
	"testing"

	"deepcontext/internal/cct"
	"deepcontext/internal/profiler"
	"deepcontext/internal/vtime"
)

// buildProfile constructs a synthetic profile exercising every analysis.
func buildProfile() *profiler.Profile {
	t := cct.New()
	gid := t.MetricID(cct.MetricGPUTime)
	cid := t.MetricID(cct.MetricCPUTime)
	kid := t.MetricID(cct.MetricKernelCount)
	sid := t.MetricID(cct.MetricInstSamples)
	stConst := t.MetricID("stall:constant_memory_miss")
	stMath := t.MetricID("stall:math_dependency")
	stSel := t.MetricID("stall:selected")

	// Hot kernel with heavy stalls: 60s of 80s total.
	hot := t.InsertPath([]cct.Frame{
		cct.PythonFrame("model.py", 7, "embed"),
		cct.OperatorFrame("aten::index"),
		cct.OperatorFrame("aten::index_backward"),
		{Kind: cct.KindKernel, Name: "indexing_backward_kernel", Lib: "[gpu]", PC: 0x100},
	})
	t.AddMetric(hot, gid, float64(60*vtime.Second))
	t.AddMetric(hot, kid, 100)
	inst := t.InsertUnder(hot, []cct.Frame{{Kind: cct.KindInstruction, Name: "+0x40", Lib: "[gpu]", PC: 0x140}})
	t.AddMetric(inst, sid, 1000)
	t.AddMetric(inst, stConst, 500)
	t.AddMetric(inst, stMath, 300)
	t.AddMetric(inst, stSel, 200)

	// The forward aten::index kernel: tiny (fwd/bwd imbalance).
	fwdK := t.InsertPath([]cct.Frame{
		cct.PythonFrame("model.py", 7, "embed"),
		cct.OperatorFrame("aten::index"),
		{Kind: cct.KindKernel, Name: "index_fwd", Lib: "[gpu]", PC: 0x200},
	})
	t.AddMetric(fwdK, gid, float64(1*vtime.Second))
	t.AddMetric(fwdK, kid, 100)

	// A frame launching many small kernels (fusion candidate): 10s total.
	loss := t.InsertPath([]cct.Frame{
		cct.PythonFrame("train.py", 30, "loss_fn"),
	})
	for i, name := range []string{"softmax", "copy", "nll_loss"} {
		k := t.InsertUnder(loss, []cct.Frame{
			cct.OperatorFrame("aten::" + name),
			{Kind: cct.KindKernel, Name: name + "_kernel", Lib: "[gpu]", PC: uint64(0x300 + i)},
		})
		t.AddMetric(k, gid, float64(500*vtime.Millisecond))
		t.AddMetric(k, kid, 100000)
	}

	// A CPU-bound data loader: 40s CPU, negligible GPU.
	loader := t.InsertPath([]cct.Frame{
		cct.PythonFrame("data.py", 88, "data_selection"),
	})
	t.AddMetric(loader, cid, float64(40*vtime.Second))
	t.AddMetric(loader, gid, float64(1*vtime.Second))

	// Remaining GPU time elsewhere so totals are sane: ~17.5s.
	rest := t.InsertPath([]cct.Frame{
		cct.PythonFrame("model.py", 20, "mlp"),
		cct.OperatorFrame("aten::linear"),
		{Kind: cct.KindKernel, Name: "sgemm", Lib: "[gpu]", PC: 0x400},
	})
	t.AddMetric(rest, gid, float64(17500*vtime.Millisecond))
	t.AddMetric(rest, kid, 100)

	return &profiler.Profile{Tree: t, Meta: profiler.Meta{Workload: "synthetic"}}
}

func TestHotspotFlagsDominantKernel(t *testing.T) {
	rep := Run(buildProfile(), DefaultThresholds(), Hotspot{})
	if len(rep.Issues) == 0 {
		t.Fatal("no hotspot issues")
	}
	top := rep.Issues[0]
	if top.Node.Name != "indexing_backward_kernel" {
		t.Fatalf("top hotspot = %s", top.Node.Name)
	}
	if top.Severity != Critical {
		t.Fatalf("severity = %v", top.Severity)
	}
	if top.Value < 0.5 || top.Value > 0.9 {
		t.Fatalf("fraction = %v", top.Value)
	}
	// sgemm at ~22% is also flagged; the small kernels are not.
	for _, is := range rep.Issues {
		if strings.Contains(is.Node.Name, "softmax") {
			t.Fatal("small kernel wrongly flagged as hotspot")
		}
	}
}

func TestKernelFusionFlagsSmallKernelFrame(t *testing.T) {
	rep := Run(buildProfile(), DefaultThresholds(), KernelFusion{})
	if len(rep.Issues) != 1 {
		t.Fatalf("issues = %v", rep.Issues)
	}
	is := rep.Issues[0]
	if is.Node.Kind != cct.KindPython || !strings.Contains(is.Node.File, "train.py") {
		t.Fatalf("flagged node = %v", is.Node.Frame)
	}
	if !strings.Contains(is.Message, "small GPU kernels") {
		t.Fatalf("message = %q", is.Message)
	}
	if !strings.Contains(is.Suggestion, "torch.compile") {
		t.Fatalf("suggestion = %q", is.Suggestion)
	}
}

func TestForwardBackwardImbalance(t *testing.T) {
	rep := Run(buildProfile(), DefaultThresholds(), ForwardBackward{})
	if len(rep.Issues) != 1 {
		t.Fatalf("issues = %v", rep.Issues)
	}
	is := rep.Issues[0]
	if is.Node.Name != "aten::index" {
		t.Fatalf("flagged op = %s", is.Node.Name)
	}
	if is.Value < 50 { // 60s bwd vs 1s fwd
		t.Fatalf("ratio = %v", is.Value)
	}
	if !strings.Contains(is.Suggestion, "index_select") {
		t.Fatalf("suggestion = %q", is.Suggestion)
	}
}

func TestStallAnalysisRanksReasons(t *testing.T) {
	rep := Run(buildProfile(), DefaultThresholds(), Stall{})
	if len(rep.Issues) != 1 {
		t.Fatalf("issues = %v", rep.Issues)
	}
	is := rep.Issues[0]
	if !strings.Contains(is.Message, "constant_memory_miss") {
		t.Fatalf("message = %q", is.Message)
	}
	// constant_memory_miss (500) should lead math_dependency (300).
	if strings.Index(is.Message, "constant_memory_miss") > strings.Index(is.Message, "math_dependency") {
		t.Fatalf("reasons not ranked: %q", is.Message)
	}
	if !strings.Contains(is.Suggestion, "vectorized") {
		t.Fatalf("suggestion = %q", is.Suggestion)
	}
}

func TestCPULatencyFlagsLoader(t *testing.T) {
	rep := Run(buildProfile(), DefaultThresholds(), CPULatency{})
	if len(rep.Issues) != 1 {
		t.Fatalf("issues = %v", rep.Issues)
	}
	is := rep.Issues[0]
	if !strings.Contains(is.Node.File, "data.py") {
		t.Fatalf("flagged = %v", is.Node.Frame)
	}
	if !strings.Contains(is.Suggestion, "physical cores") {
		t.Fatalf("suggestion = %q", is.Suggestion)
	}
}

func TestRunAllSortsBySeverityThenValue(t *testing.T) {
	rep := Run(buildProfile(), DefaultThresholds())
	if len(rep.Issues) < 4 {
		t.Fatalf("expected multiple issues, got %d", len(rep.Issues))
	}
	for i := 1; i < len(rep.Issues); i++ {
		if rep.Issues[i].Severity > rep.Issues[i-1].Severity {
			t.Fatal("issues not sorted by severity")
		}
	}
	by := rep.ByAnalysis()
	for _, name := range []string{"hotspot", "kernel_fusion", "forward_backward", "stall", "cpu_latency"} {
		if len(by[name]) == 0 {
			t.Fatalf("analysis %s produced nothing", name)
		}
	}
	if len(rep.ByNode()) == 0 {
		t.Fatal("ByNode empty")
	}
}

type custom struct{ hits *int }

func (custom) Name() string { return "custom" }
func (c custom) Run(ctx *Context) []Issue {
	for _, n := range MatchName(ctx.Tree, "sgemm") {
		*c.hits++
		return []Issue{{Analysis: "custom", Node: n, Message: "found sgemm"}}
	}
	return nil
}

func TestCustomAnalysisViaInterface(t *testing.T) {
	hits := 0
	rep := Run(buildProfile(), DefaultThresholds(), custom{hits: &hits})
	if hits != 1 || len(rep.Issues) != 1 {
		t.Fatalf("custom analysis: hits=%d issues=%d", hits, len(rep.Issues))
	}
}

func TestQueryHelpers(t *testing.T) {
	p := buildProfile()
	if len(Kernels(p.Tree)) != 6 {
		t.Fatalf("kernels = %d", len(Kernels(p.Tree)))
	}
	ops := Operators(p.Tree)
	if len(ops) < 5 {
		t.Fatalf("operators = %d", len(ops))
	}
	if !IsBackwardName("aten::index_backward") || !IsBackwardName("IndexBackward0") {
		t.Fatal("backward name detection broken")
	}
	if IsBackwardName("aten::conv2d") {
		t.Fatal("false backward")
	}
}

func TestEmptyProfileNoIssues(t *testing.T) {
	p := &profiler.Profile{Tree: cct.New()}
	rep := Run(p, DefaultThresholds())
	if len(rep.Issues) != 0 {
		t.Fatalf("issues on empty profile: %v", rep.Issues)
	}
}

func TestIssueString(t *testing.T) {
	rep := Run(buildProfile(), DefaultThresholds(), Hotspot{})
	s := rep.Issues[0].String()
	if !strings.Contains(s, "hotspot") || !strings.Contains(s, "critical") {
		t.Fatalf("issue string = %q", s)
	}
}
