package analyzer

// JSON shapes for serving analyzer reports over HTTP (cmd/dcserver's
// /analyze endpoint) and for external tooling. Issue itself is not
// marshalable — it carries a *cct.Node — so the export flattens the node to
// its call path.

// IssueJSON is one finding in wire form.
type IssueJSON struct {
	Analysis   string   `json:"analysis"`
	Severity   string   `json:"severity"`
	Message    string   `json:"message"`
	Suggestion string   `json:"suggestion,omitempty"`
	Value      float64  `json:"value,omitempty"`
	Path       []string `json:"path,omitempty"`
}

// ReportJSON is a marshalable analyzer report.
type ReportJSON struct {
	Findings int         `json:"findings"`
	Issues   []IssueJSON `json:"issues"`
}

// JSON flattens the report into its wire form.
func (r *Report) JSON() ReportJSON {
	out := ReportJSON{Findings: len(r.Issues), Issues: make([]IssueJSON, 0, len(r.Issues))}
	for _, is := range r.Issues {
		ij := IssueJSON{
			Analysis:   is.Analysis,
			Severity:   is.Severity.String(),
			Message:    is.Message,
			Suggestion: is.Suggestion,
			Value:      is.Value,
		}
		for _, f := range is.Path {
			ij.Path = append(ij.Path, f.Label())
		}
		out.Issues = append(out.Issues, ij)
	}
	return out
}
