package analyzer

import (
	"encoding/json"
	"testing"

	"deepcontext/internal/cct"
)

func TestReportJSONFlattensIssues(t *testing.T) {
	rep := &Report{Issues: []Issue{
		{
			Analysis:   "hotspot",
			Severity:   Critical,
			Path:       []cct.Frame{cct.OperatorFrame("aten::conv2d"), {Kind: cct.KindKernel, Name: "gemm", Lib: "[gpu]"}},
			Message:    "dominant kernel",
			Suggestion: "fuse it",
			Value:      0.42,
		},
		{Analysis: "stalls", Severity: Info, Message: "minor"},
	}}
	out := rep.JSON()
	if out.Findings != 2 || len(out.Issues) != 2 {
		t.Fatalf("out = %+v", out)
	}
	if out.Issues[0].Severity != "critical" || out.Issues[0].Value != 0.42 {
		t.Fatalf("issue 0 = %+v", out.Issues[0])
	}
	if len(out.Issues[0].Path) != 2 || out.Issues[0].Path[1] != "gemm" {
		t.Fatalf("path = %v", out.Issues[0].Path)
	}
	// The whole shape must marshal (Issue itself cannot: it holds a *cct.Node).
	raw, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	var round ReportJSON
	if err := json.Unmarshal(raw, &round); err != nil {
		t.Fatal(err)
	}
	if round.Issues[0].Message != "dominant kernel" {
		t.Fatalf("round trip = %+v", round)
	}
}
