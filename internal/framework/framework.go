// Package framework defines the substrate shared by the simulated deep
// learning frameworks (torchsim, jaxsim): the simulated machine with CPU
// threads and a GPU, tensor metadata, and the framework-operation event model
// that DLMonitor's framework domain intercepts.
package framework

import (
	"fmt"

	"deepcontext/internal/gpu"
	"deepcontext/internal/native"
	"deepcontext/internal/pyruntime"
	"deepcontext/internal/vtime"
)

// Machine is one simulated host: a process address space with libpython
// mapped, a GPU device runtime, and a set of CPU threads. Execution is
// single-goroutine and deterministic; concurrency is modeled by independent
// per-thread virtual clocks.
type Machine struct {
	AS        *native.AddressSpace
	Interp    *pyruntime.Interpreter
	GPU       *gpu.Runtime
	PhysCores int

	threads []*Thread
	nextTID int

	// NewThreadHook, when set, observes every thread creation; profilers
	// use it to attach CPU samplers to late-created threads (autograd
	// workers, data-loader workers). AddThreadHook registers additional
	// observers — sharded ingestion and samplers both need to see new
	// threads, so a single hook slot is not enough.
	NewThreadHook func(*Thread)
	threadHooks   []func(*Thread)
}

// AddThreadHook registers an additional thread-creation observer; hooks run
// in registration order after NewThreadHook.
func (m *Machine) AddThreadHook(fn func(*Thread)) { m.threadHooks = append(m.threadHooks, fn) }

// NewMachine builds a machine around the given GPU device. PhysCores
// defaults to 6, matching the allocation in the paper's U-Net data-loader
// case study (§6.4).
func NewMachine(spec gpu.DeviceSpec) *Machine {
	as := native.NewAddressSpace()
	m := &Machine{
		AS:        as,
		Interp:    pyruntime.Load(as),
		GPU:       gpu.NewRuntime(spec, as),
		PhysCores: 6,
	}
	return m
}

// NewThread creates a simulated CPU thread with empty stacks at time zero.
func (m *Machine) NewThread(name string) *Thread {
	t := &Thread{ID: m.nextTID, Name: name, Native: native.NewStack(m.AS), M: m}
	m.nextTID++
	m.threads = append(m.threads, t)
	if m.NewThreadHook != nil {
		m.NewThreadHook(t)
	}
	for _, fn := range m.threadHooks {
		fn(t)
	}
	return t
}

// Threads returns all created threads in creation order.
func (m *Machine) Threads() []*Thread { return m.threads }

// EndToEnd reports the makespan of the run so far: the latest frontier over
// all CPU threads and the GPU.
func (m *Machine) EndToEnd() vtime.Duration {
	var t vtime.Time
	for _, th := range m.threads {
		t = vtime.MaxTime(t, th.Clock.Now())
	}
	t = vtime.MaxTime(t, m.GPU.Frontier())
	return vtime.Duration(t)
}

// TotalCPUTime reports the sum of CPU time across all threads.
func (m *Machine) TotalCPUTime() vtime.Duration {
	var d vtime.Duration
	for _, th := range m.threads {
		d += vtime.Duration(th.Clock.Now())
	}
	return d
}

// Thread is one simulated CPU thread: a virtual clock plus native and Python
// stacks. The framework-operator shadow stack lives in DLMonitor, not here.
type Thread struct {
	ID     int
	Name   string
	Clock  vtime.Clock
	Native *native.Stack
	Py     pyruntime.Stack
	M      *Machine
}

// GPUCtx packages the thread state the GPU driver needs.
func (t *Thread) GPUCtx() gpu.ThreadCtx { return gpu.ThreadCtx{Clock: &t.Clock, Stack: t.Native} }

// String renders "name#id".
func (t *Thread) String() string { return fmt.Sprintf("%s#%d", t.Name, t.ID) }

// DType enumerates tensor element types.
type DType int

const (
	// F32 is 32-bit float.
	F32 DType = iota
	// F16 is 16-bit float.
	F16
	// F8 is 8-bit float.
	F8
	// I64 is 64-bit integer.
	I64
	// I32 is 32-bit integer.
	I32
)

// Size returns the element size in bytes.
func (d DType) Size() int64 {
	switch d {
	case F32, I32:
		return 4
	case F16:
		return 2
	case F8:
		return 1
	case I64:
		return 8
	}
	return 4
}

// String names the dtype.
func (d DType) String() string {
	switch d {
	case F32:
		return "float32"
	case F16:
		return "float16"
	case F8:
		return "float8"
	case I64:
		return "int64"
	case I32:
		return "int32"
	}
	return "unknown"
}

// Layout enumerates tensor memory formats (paper §6.2).
type Layout int

const (
	// ChannelsFirst is PyTorch's default NCHW layout.
	ChannelsFirst Layout = iota
	// ChannelsLast is the NHWC layout preferred by cuDNN.
	ChannelsLast
	// RowMajor is the generic dense layout for non-image tensors.
	RowMajor
)

// String names the layout.
func (l Layout) String() string {
	switch l {
	case ChannelsFirst:
		return "channels_first"
	case ChannelsLast:
		return "channels_last"
	}
	return "row_major"
}

// TensorMeta is the shape/type metadata frameworks expose to callbacks.
type TensorMeta struct {
	Shape  []int
	DType  DType
	Layout Layout
}

// Elems returns the element count.
func (t TensorMeta) Elems() int64 {
	n := int64(1)
	for _, s := range t.Shape {
		n *= int64(s)
	}
	return n
}

// Bytes returns the storage size.
func (t TensorMeta) Bytes() int64 { return t.Elems() * t.DType.Size() }

// Phase distinguishes forward from backward operator executions.
type Phase int

const (
	// Forward marks forward-pass execution.
	Forward Phase = iota
	// Backward marks backward-pass execution on an autograd thread.
	Backward
)

// String names the phase.
func (p Phase) String() string {
	if p == Backward {
		return "backward"
	}
	return "forward"
}

// FusedOrigin records one original operator folded into a fused operator by
// a JIT compiler, with the Python call path captured at compilation time
// (paper Fig. 4).
type FusedOrigin struct {
	Name   string
	PyPath []pyruntime.Frame
}

// OpEvent describes one framework-operator execution delivered to
// DLMONITOR_FRAMEWORK callbacks at entry and exit.
type OpEvent struct {
	Name      string
	Framework string
	Phase     Phase
	// SeqID links a backward execution to the forward operator that
	// recorded it (PyTorch sequence numbers); zero when absent.
	SeqID  int64
	Thread *Thread
	// CodeSym is the operator implementation's native symbol — the
	// "memory location" DLMonitor's shadow stack matches against native
	// frames during call-path integration.
	CodeSym *native.Symbol
	Inputs  []TensorMeta
	Outputs []TensorMeta
	// Fused lists original operators when this is a JIT-fused operator.
	Fused []FusedOrigin
}

// OpCallback observes operator events; ph is Enter or Exit.
type OpCallback func(ev *OpEvent, ph native.Phase)

// AllocEvent describes a framework tensor allocation or free.
type AllocEvent struct {
	Bytes  int64
	Free   bool
	Thread *Thread
}

// AllocCallback observes tensor allocations.
type AllocCallback func(ev *AllocEvent)

// CompileEvent describes one compiler-pass execution in a JIT framework.
type CompileEvent struct {
	PassName string
	Thread   *Thread
}

// CompileCallback observes compilation passes; ph is Enter or Exit.
type CompileCallback func(ev *CompileEvent, ph native.Phase)

// Hooks is the instrumentation surface a framework exposes to DLMonitor.
// torchsim implements it via its aten::addGlobalCallback equivalent; jaxsim
// implements it via simulated binary instrumentation of the compiler.
type Hooks interface {
	// FrameworkName identifies the framework ("pytorch", "jax").
	FrameworkName() string
	// AddGlobalCallback registers an operator-entry/exit callback.
	AddGlobalCallback(OpCallback)
	// AddAllocCallback registers a tensor allocation callback.
	AddAllocCallback(AllocCallback)
	// AddCompileCallback registers a compilation-pass callback; eager
	// frameworks never invoke it.
	AddCompileCallback(CompileCallback)
}
