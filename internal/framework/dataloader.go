package framework

import "deepcontext/internal/vtime"

// DataLoader models a multi-worker input pipeline (torch.utils.data style).
// Workers cooperatively produce batches ahead of the consumer, which blocks
// only when the next batch is not ready. Oversubscribing workers beyond the
// machine's physical cores inflates per-batch latency with scheduling
// overhead — the effect behind the paper's U-Net CPU-latency case study
// (§6.4: 16 hard-coded workers on a 6-core node).
type DataLoader struct {
	m       *Machine
	workers []*Thread
	// perBatch is the intrinsic CPU work to produce one batch on one
	// uncontended core.
	perBatch vtime.Duration
	// firstExtra is a one-time cost before the first batch (cold disk
	// reads; 10 s for U-Net/fastMRI in the paper).
	firstExtra vtime.Duration
	produced   int
	frontier   vtime.Time
	started    bool
}

// OversubFactor returns the scheduling-overhead multiplier for k workers on
// c available cores: 1 when k <= c, growing linearly in the oversubscription
// ratio beyond that (calibrated at 0.35 per oversubscribed-core ratio).
func OversubFactor(k, c int) float64 {
	if c <= 0 {
		c = 1
	}
	if k <= c {
		return 1
	}
	return 1 + 0.35*float64(k-c)/float64(c)
}

// NewDataLoader creates a loader with k worker threads.
func NewDataLoader(m *Machine, k int, perBatch, firstExtra vtime.Duration) *DataLoader {
	if k < 1 {
		k = 1
	}
	d := &DataLoader{m: m, perBatch: perBatch, firstExtra: firstExtra}
	for i := 0; i < k; i++ {
		d.workers = append(d.workers, m.NewThread("loader-worker"))
	}
	return d
}

// Workers returns the loader's worker threads.
func (d *DataLoader) Workers() []*Thread { return d.workers }

// Latency is the batch-to-batch arrival interval: the intrinsic work,
// inflated by oversubscription scheduling overhead, split across the workers
// that can actually run concurrently (one core is kept for the main thread).
func (d *DataLoader) Latency() vtime.Duration {
	k := len(d.workers)
	avail := d.m.PhysCores - 1
	if avail < 1 {
		avail = 1
	}
	act := k
	if act > avail {
		act = avail
	}
	f := OversubFactor(k, avail)
	return vtime.Duration(float64(d.perBatch) * f / float64(act))
}

// Next blocks consumer until the next batch is ready and returns the batch
// index. Batches arrive one Latency apart (workers prefetch ahead of the
// consumer), and every worker burns CPU for every batch — oversubscribed
// workers all contend even though only a core's worth makes progress.
func (d *DataLoader) Next(consumer *Thread) int {
	if !d.started {
		d.started = true
		d.frontier = consumer.Clock.Now().Add(d.firstExtra)
	}
	lat := d.Latency()
	d.frontier = d.frontier.Add(lat)
	for _, w := range d.workers {
		w.Clock.Advance(lat)
	}
	consumer.Clock.AdvanceTo(d.frontier)
	d.produced++
	return d.produced - 1
}

// LoaderCPUTime reports total CPU time consumed by the workers.
func (d *DataLoader) LoaderCPUTime() vtime.Duration {
	var t vtime.Duration
	for _, w := range d.workers {
		t += vtime.Duration(w.Clock.Now())
	}
	return t
}
