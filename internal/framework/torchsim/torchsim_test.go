package torchsim

import (
	"testing"

	"deepcontext/internal/framework"
	"deepcontext/internal/gpu"
	"deepcontext/internal/native"
	"deepcontext/internal/vtime"
)

func newEngine(t *testing.T) (*Engine, *framework.Thread) {
	t.Helper()
	m := framework.NewMachine(gpu.A100())
	e := New(m)
	return e, m.NewThread("python-main")
}

func simpleOp(name string, grad bool) Op {
	return Op{
		Name:         name,
		CPUCost:      50 * vtime.Microsecond,
		Kernels:      []gpu.KernelSpec{{Name: name + "_kernel", Grid: gpu.D3(256), Block: gpu.D3(256), FLOPs: 1e8, Bytes: 1e6}},
		RequiresGrad: grad,
	}
}

func TestRunEmitsEnterExitWithSeq(t *testing.T) {
	e, th := newEngine(t)
	var events []string
	var seqs []int64
	e.AddGlobalCallback(func(ev *framework.OpEvent, ph native.Phase) {
		events = append(events, ev.Name+":"+ph.String())
		seqs = append(seqs, ev.SeqID)
	})
	e.Run(th, simpleOp("aten::matmul", true))
	e.Run(th, simpleOp("aten::relu", false))
	want := []string{"aten::matmul:enter", "aten::matmul:exit", "aten::relu:enter", "aten::relu:exit"}
	if len(events) != 4 {
		t.Fatalf("events = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v", events)
		}
	}
	if seqs[0] == 0 || seqs[2] != 0 {
		t.Fatalf("seq ids = %v: grad op needs nonzero, non-grad zero", seqs)
	}
}

func TestRunNativeStackVisibleInCallback(t *testing.T) {
	e, th := newEngine(t)
	var depth int
	var topName string
	e.AddGlobalCallback(func(ev *framework.OpEvent, ph native.Phase) {
		if ph == native.Enter {
			depth = th.Native.Depth()
			topName = th.Native.Top().Sym.Name
		}
	})
	e.Run(th, simpleOp("aten::conv2d", false))
	if topName != "at::native::conv2d" {
		t.Fatalf("top = %q", topName)
	}
	if depth != e.DispatchDepth+1 {
		t.Fatalf("depth = %d, want %d", depth, e.DispatchDepth+1)
	}
	if th.Native.Depth() != 0 {
		t.Fatal("stack not restored after op")
	}
}

func TestRunLaunchesKernelsAsync(t *testing.T) {
	e, th := newEngine(t)
	e.Run(th, simpleOp("aten::matmul", false))
	if e.M.GPU.Stats().KernelCount != 1 {
		t.Fatal("kernel not launched")
	}
	if e.M.GPU.Frontier() <= th.Clock.Now() {
		t.Fatal("kernel should outlast CPU op body")
	}
}

func TestBackwardRunsOnSeparateThreadReversedWithMatchingSeq(t *testing.T) {
	e, th := newEngine(t)
	type rec struct {
		name  string
		phase framework.Phase
		seq   int64
		tname string
		pyN   int
	}
	var recs []rec
	e.AddGlobalCallback(func(ev *framework.OpEvent, ph native.Phase) {
		if ph != native.Enter {
			return
		}
		recs = append(recs, rec{ev.Name, ev.Phase, ev.SeqID, ev.Thread.Name, ev.Thread.Py.Depth()})
	})
	th.Py.Push("train.py", 10, "train_step")
	e.Run(th, simpleOp("aten::embedding", true))
	e.Run(th, simpleOp("aten::linear", true))
	e.Backward(th)
	th.Py.Pop()

	if len(recs) != 4 {
		t.Fatalf("recs = %v", recs)
	}
	// Backward order is reversed: linear_backward then embedding_backward.
	if recs[2].name != "aten::linear_backward" || recs[3].name != "aten::embedding_backward" {
		t.Fatalf("backward order wrong: %v", recs)
	}
	// Sequence IDs must match forward counterparts.
	if recs[2].seq != recs[1].seq || recs[3].seq != recs[0].seq {
		t.Fatalf("seq association wrong: %v", recs)
	}
	// Backward runs on the autograd worker with no Python frames.
	if recs[2].tname != "autograd-worker" || recs[2].pyN != 0 {
		t.Fatalf("backward thread context wrong: %+v", recs[2])
	}
	if recs[0].pyN != 1 {
		t.Fatal("forward should see python frames")
	}
}

func TestBackwardBlocksCaller(t *testing.T) {
	e, th := newEngine(t)
	e.Run(th, simpleOp("aten::linear", true))
	before := th.Clock.Now()
	e.Backward(th)
	if th.Clock.Now() <= before {
		t.Fatal("caller did not wait for CPU-side backward")
	}
	if e.TapeLen() != 0 {
		t.Fatal("tape not consumed")
	}
	// Backward with an empty tape is a no-op.
	now := th.Clock.Now()
	e.Backward(th)
	if th.Clock.Now() != now {
		t.Fatal("empty backward advanced time")
	}
}

func TestExplicitBackwardKernels(t *testing.T) {
	e, th := newEngine(t)
	var kernelNames []string
	e.M.GPU.EnableActivity(100, func(acts []gpu.Activity) {
		for _, a := range acts {
			kernelNames = append(kernelNames, a.Name)
		}
	})
	op := simpleOp("aten::index", true)
	op.BwdName = "aten::index_backward"
	op.BwdKernels = []gpu.KernelSpec{{Name: "indexing_backward_kernel", Grid: gpu.D3(64), Block: gpu.D3(128), FLOPs: 1e7, Bytes: 1e7, Serialization: 20}}
	e.Run(th, op)
	e.Backward(th)
	e.M.GPU.FlushActivity()
	found := false
	for _, n := range kernelNames {
		if n == "indexing_backward_kernel" {
			found = true
		}
	}
	if !found {
		t.Fatalf("backward kernel missing: %v", kernelNames)
	}
}

func TestDefaultBackwardSynthesis(t *testing.T) {
	op := simpleOp("aten::gelu", true)
	ks := defaultBackwardKernels(op)
	if len(ks) != 1 || ks[0].Name != "aten::gelu_kernel_backward" {
		t.Fatalf("synthesized = %+v", ks)
	}
	if ks[0].FLOPs != 2*op.Kernels[0].FLOPs {
		t.Fatal("backward should double the work")
	}
}

func TestAllocCallbacksAndDeviceAccounting(t *testing.T) {
	e, th := newEngine(t)
	var allocs, frees int64
	e.AddAllocCallback(func(ev *framework.AllocEvent) {
		if ev.Free {
			frees += ev.Bytes
		} else {
			allocs += ev.Bytes
		}
	})
	e.Alloc(th, 4096)
	e.FreeMem(th, 4096)
	if allocs != 4096 || frees != 4096 {
		t.Fatalf("alloc cbs: %d/%d", allocs, frees)
	}
	if e.M.GPU.Stats().MemUsed != 0 || e.M.GPU.Stats().MemPeak != 4096 {
		t.Fatalf("device accounting: %+v", e.M.GPU.Stats())
	}
}

func TestOpSymbolInterning(t *testing.T) {
	e, _ := newEngine(t)
	a := e.OpSymbol("aten::conv2d")
	b := e.OpSymbol("aten::conv2d")
	if a != b {
		t.Fatal("op symbols not interned")
	}
	if a.Name != "at::native::conv2d" {
		t.Fatalf("symbol name = %q", a.Name)
	}
}

func TestSynchronizeDrains(t *testing.T) {
	e, th := newEngine(t)
	e.Run(th, simpleOp("aten::matmul", false))
	e.Synchronize(th)
	if th.Clock.Now() < e.M.GPU.Frontier() {
		t.Fatal("synchronize did not block to frontier")
	}
}
