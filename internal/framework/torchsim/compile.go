package torchsim

import (
	"strings"

	"deepcontext/internal/framework"
	"deepcontext/internal/gpu"
	"deepcontext/internal/vtime"
)

// torch.compile support. The paper's conclusion (§7) plans to "extend
// DeepContext to support PyTorch workloads that use torch.compile, applying
// similar profiling methods for JAX"; this file implements that extension:
// a region of eager operators is compiled once, consecutive fusible
// operators merge into inductor-style fused kernels, and the compiled
// region's operator events carry the original operators so the profiler and
// GUI can map runtime kernels back to source — exactly the JAX treatment.

// CompiledOp is one operator of a compiled region.
type CompiledOp struct {
	Op      Op
	Origins []string
}

// IsFused reports whether the op merged several eager operators.
func (c *CompiledOp) IsFused() bool { return len(c.Origins) > 1 }

// CompiledRegion is a torch.compile'd sequence of operators.
type CompiledRegion struct {
	Name   string
	Ops    []*CompiledOp
	engine *Engine
}

// KernelCount reports kernels launched per execution of the region.
func (r *CompiledRegion) KernelCount() int {
	n := 0
	for _, c := range r.Ops {
		n += len(c.Op.Kernels)
	}
	return n
}

// Compile lowers ops through an inductor-like pass: maximal runs of >= 2
// consecutive Fusible operators merge into one fused operator whose kernel
// sums the FLOPs but eliminates intermediate DRAM round trips. Compilation
// charges an autotuning cost per operator to th (the paper's §6.6 noted
// torch.compile's "long autotuning overhead").
func (e *Engine) Compile(th *framework.Thread, name string, ops []Op) *CompiledRegion {
	const autotuneCostPerOp = 180 * vtime.Microsecond
	th.Clock.Advance(vtime.Duration(len(ops)) * autotuneCostPerOp)

	region := &CompiledRegion{Name: name, engine: e}
	i := 0
	for i < len(ops) {
		j := i
		for j < len(ops) && ops[j].Fusible {
			j++
		}
		if j-i >= 2 {
			region.Ops = append(region.Ops, mergeTorchRun(ops[i:j]))
			i = j
			continue
		}
		op := ops[i]
		region.Ops = append(region.Ops, &CompiledOp{Op: op, Origins: []string{op.Name}})
		i++
	}
	return region
}

// mergeTorchRun builds the fused operator for a run of fusible ops.
func mergeTorchRun(run []Op) *CompiledOp {
	var names, origins []string
	var flops, bytes float64
	var cpu vtime.Duration
	grid, block := gpu.D3(1), gpu.D3(1)
	for _, o := range run {
		origins = append(origins, o.Name)
		names = append(names, strings.TrimPrefix(o.Name, "aten::"))
		cpu += o.CPUCost / 4
		for _, k := range o.Kernels {
			flops += k.FLOPs
			bytes += k.Bytes
			if k.Grid.Volume() > grid.Volume() {
				grid, block = k.Grid, k.Block
			}
		}
	}
	if len(names) > 3 {
		names = names[:3]
	}
	fusedName := "torch_compiled::fused_" + strings.Join(names, "_")
	return &CompiledOp{
		Op: Op{
			Name:    fusedName,
			CPUCost: cpu,
			Kernels: []gpu.KernelSpec{{
				Name:  "triton_" + strings.Join(names, "_"),
				Grid:  grid,
				Block: block,
				FLOPs: flops,
				Bytes: bytes * 0.45,
			}},
			// Inductor-generated launchers are shallow.
			InternalFrames: 2,
		},
		Origins: origins,
	}
}

// Run executes the compiled region on th. Fused operator events carry their
// eager origins, so DLMonitor's shadow stack and the GUI expose the mapping
// just as for JAX fused operators.
func (r *CompiledRegion) Run(th *framework.Thread) {
	e := r.engine
	for _, c := range r.Ops {
		op := c.Op
		if c.IsFused() {
			op.FusedFrom = make([]framework.FusedOrigin, len(c.Origins))
			for i, name := range c.Origins {
				op.FusedFrom[i] = framework.FusedOrigin{Name: name}
			}
		}
		e.Run(th, op)
	}
}

// RunOp is a helper for tests: executes one compiled op standalone.
func (r *CompiledRegion) RunOp(th *framework.Thread, i int) {
	e := r.engine
	e.Run(th, r.Ops[i].Op)
}

// EagerKernelCount reports how many kernels the uncompiled ops would launch.
func EagerKernelCount(ops []Op) int {
	n := 0
	for _, o := range ops {
		n += len(o.Kernels)
	}
	return n
}
