package torchsim

import (
	"strings"
	"testing"

	"deepcontext/internal/framework"
	"deepcontext/internal/gpu"
	"deepcontext/internal/native"
	"deepcontext/internal/vtime"
)

func ewOp(name string) Op {
	return Op{
		Name: "aten::" + name, Fusible: true,
		CPUCost: 10 * vtime.Microsecond,
		Kernels: []gpu.KernelSpec{{Name: name + "_kernel", Grid: gpu.D3(128), Block: gpu.D3(256), Bytes: 1e6, FLOPs: 1e4}},
	}
}

func mmOpT(name string) Op {
	return Op{
		Name:    "aten::" + name,
		CPUCost: 30 * vtime.Microsecond,
		Kernels: []gpu.KernelSpec{{Name: name + "_kernel", Grid: gpu.D3(432), Block: gpu.D3(256), FLOPs: 1e9}},
	}
}

func sampleRegionOps() []Op {
	return []Op{mmOpT("linear"), ewOp("add"), ewOp("gelu"), ewOp("dropout"), mmOpT("linear2"), ewOp("bias")}
}

func TestCompileFusesRuns(t *testing.T) {
	e, th := newEngine(t)
	region := e.Compile(th, "mlp", sampleRegionOps())
	// linear, fused(add,gelu,dropout), linear2, bias(singleton) = 4 ops.
	if len(region.Ops) != 4 {
		t.Fatalf("compiled ops = %d", len(region.Ops))
	}
	var fused *CompiledOp
	for _, c := range region.Ops {
		if c.IsFused() {
			fused = c
		}
	}
	if fused == nil || len(fused.Origins) != 3 {
		t.Fatalf("fusion missing: %+v", fused)
	}
	if !strings.HasPrefix(fused.Op.Name, "torch_compiled::fused_") {
		t.Fatalf("fused name = %q", fused.Op.Name)
	}
	if !strings.HasPrefix(fused.Op.Kernels[0].Name, "triton_") {
		t.Fatalf("fused kernel = %q", fused.Op.Kernels[0].Name)
	}
	// FLOPs sum; bytes collapse.
	if fused.Op.Kernels[0].FLOPs != 3e4 {
		t.Fatalf("fused FLOPs = %v", fused.Op.Kernels[0].FLOPs)
	}
	if fused.Op.Kernels[0].Bytes >= 3e6 {
		t.Fatalf("fused bytes = %v, want < summed", fused.Op.Kernels[0].Bytes)
	}
	if region.KernelCount() != 4 || EagerKernelCount(sampleRegionOps()) != 6 {
		t.Fatal("kernel counts wrong")
	}
}

func TestCompileChargesAutotuning(t *testing.T) {
	e, th := newEngine(t)
	before := th.Clock.Now()
	e.Compile(th, "r", sampleRegionOps())
	if th.Clock.Now().Sub(before) < 6*100*vtime.Microsecond {
		t.Fatalf("autotuning cost missing: %v", th.Clock.Now().Sub(before))
	}
}

func TestCompiledRunEmitsFusedOrigins(t *testing.T) {
	e, th := newEngine(t)
	region := e.Compile(th, "mlp", sampleRegionOps())
	var fusedEvents int
	e.AddGlobalCallback(func(ev *framework.OpEvent, ph native.Phase) {
		if ph == native.Enter && len(ev.Fused) > 1 {
			fusedEvents++
			if ev.Fused[0].Name != "aten::add" {
				t.Fatalf("origins = %+v", ev.Fused)
			}
		}
	})
	before := e.M.GPU.Stats().KernelCount
	region.Run(th)
	if got := e.M.GPU.Stats().KernelCount - before; got != int64(region.KernelCount()) {
		t.Fatalf("kernels = %d, want %d", got, region.KernelCount())
	}
	if fusedEvents != 1 {
		t.Fatalf("fused events = %d", fusedEvents)
	}
}

func TestCompiledRegionFasterThanEager(t *testing.T) {
	run := func(compiled bool) vtime.Time {
		e, th := newEngine(t)
		ops := sampleRegionOps()
		var region *CompiledRegion
		if compiled {
			region = e.Compile(th, "mlp", ops)
		}
		start := th.Clock.Now()
		for i := 0; i < 50; i++ {
			if compiled {
				region.Run(th)
			} else {
				for _, op := range ops {
					e.Run(th, op)
				}
			}
		}
		e.Synchronize(th)
		return th.Clock.Now() - start
	}
	eager, comp := run(false), run(true)
	if comp >= eager {
		t.Fatalf("compiled (%v) should beat eager (%v) after warmup", comp, eager)
	}
}

func TestSingletonFusibleNotMerged(t *testing.T) {
	e, th := newEngine(t)
	region := e.Compile(th, "r", []Op{mmOpT("a"), ewOp("lonely"), mmOpT("b")})
	for _, c := range region.Ops {
		if c.IsFused() {
			t.Fatal("singleton fused")
		}
	}
	if len(region.Ops) != 3 {
		t.Fatalf("ops = %d", len(region.Ops))
	}
}
