// Package torchsim simulates an eager-mode PyTorch runtime: operators
// dispatch through a native ATen layer, launch GPU kernels immediately,
// record autograd tape nodes with sequence IDs, and execute backward
// operators on a dedicated autograd thread that has no Python context — the
// exact structure DeepContext's forward/backward association handles
// (paper §4.1, Optimizations).
//
// Instrumentation attaches through AddGlobalCallback, the analogue of
// aten::addGlobalCallback/RecordFunction, so profilers work against pip-wheel
// installs without source modification.
package torchsim

import (
	"strings"

	"deepcontext/internal/framework"
	"deepcontext/internal/gpu"
	"deepcontext/internal/native"
	"deepcontext/internal/vtime"
)

// Op describes one eager operator execution: its CPU-side dispatch cost, the
// kernels it launches, and (when RequiresGrad) its backward definition.
type Op struct {
	Name    string // e.g. "aten::conv2d"
	CPUCost vtime.Duration
	Kernels []gpu.KernelSpec
	Inputs  []framework.TensorMeta
	Outputs []framework.TensorMeta

	// InternalFrames is how many library-internal native frames (cuDNN /
	// rocBLAS helpers) sit between the operator implementation and the
	// kernel launch; it drives native-unwind depth and therefore the
	// cost of DeepContext's native call-path mode.
	InternalFrames int

	// Fusible marks elementwise-style operators that torch.compile may
	// merge (see compile.go).
	Fusible bool
	// FusedFrom lists the eager operators merged into this one when it
	// was produced by torch.compile; it flows into OpEvent.Fused.
	FusedFrom []framework.FusedOrigin

	// RequiresGrad records the op on the autograd tape.
	RequiresGrad bool
	// BwdName defaults to Name+"_backward" (rendered PyTorch-style as
	// e.g. "Conv2DBackward0" when empty is fine for simulation purposes).
	BwdName    string
	BwdCPUCost vtime.Duration
	BwdKernels []gpu.KernelSpec
}

type tapeNode struct {
	op  Op
	seq int64
}

// Engine is one simulated PyTorch process runtime.
type Engine struct {
	M *framework.Machine

	lib         *native.Library
	dispatchSym *native.Symbol
	threadMain  *native.Symbol
	execSym     *native.Symbol
	internalSym *native.Symbol
	opSyms      map[string]*native.Symbol

	opCBs    []framework.OpCallback
	allocCBs []framework.AllocCallback

	seq  int64
	tape []tapeNode
	bw   *framework.Thread

	// Stream is the CUDA/HIP stream eager ops launch on.
	Stream int
	// DispatchDepth is how many extra C++ dispatcher frames appear under
	// each operator (autograd wrapper, VariableType, redispatch).
	DispatchDepth int
}

var _ framework.Hooks = (*Engine)(nil)

// New loads libtorch into the machine's address space and returns an engine.
func New(m *framework.Machine) *Engine {
	lib := m.AS.LoadLibrary("libtorch_cpu.so", 32<<20)
	e := &Engine{
		M:             m,
		lib:           lib,
		dispatchSym:   m.AS.AddSymbol(lib, "c10::Dispatcher::call", 2048, "aten/src/ATen/core/dispatch/Dispatcher.h", 90),
		threadMain:    m.AS.AddSymbol(lib, "torch::autograd::Engine::thread_main", 4096, "torch/csrc/autograd/engine.cpp", 300),
		execSym:       m.AS.AddSymbol(lib, "torch::autograd::Engine::evaluate_function", 4096, "torch/csrc/autograd/engine.cpp", 900),
		internalSym:   m.AS.AddSymbol(lib, "cudnn::detail::launch_helper", 8192, "", 0),
		opSyms:        make(map[string]*native.Symbol),
		DispatchDepth: 2,
	}
	return e
}

// FrameworkName reports "pytorch".
func (e *Engine) FrameworkName() string { return "pytorch" }

// AddGlobalCallback registers an operator callback
// (aten::addGlobalCallback).
func (e *Engine) AddGlobalCallback(cb framework.OpCallback) { e.opCBs = append(e.opCBs, cb) }

// AddAllocCallback registers a tensor allocation callback (the caching
// allocator's reporter).
func (e *Engine) AddAllocCallback(cb framework.AllocCallback) { e.allocCBs = append(e.allocCBs, cb) }

// AddCompileCallback is a no-op for the eager engine.
func (e *Engine) AddCompileCallback(framework.CompileCallback) {}

// OpSymbol interns the native implementation symbol for an operator name:
// "aten::conv2d" maps to at::native::conv2d in libtorch.
func (e *Engine) OpSymbol(name string) *native.Symbol {
	if s, ok := e.opSyms[name]; ok {
		return s
	}
	short := strings.TrimPrefix(name, "aten::")
	s := e.M.AS.AddSymbol(e.lib, "at::native::"+short, 2048, "aten/src/ATen/native/"+short+".cpp", 50)
	e.opSyms[name] = s
	return s
}

func (e *Engine) emitOp(ev *framework.OpEvent, ph native.Phase) {
	for _, cb := range e.opCBs {
		cb(ev, ph)
	}
}

// Alloc allocates tensor memory through the caching allocator, reporting to
// allocation callbacks and the device runtime.
func (e *Engine) Alloc(th *framework.Thread, bytes int64) {
	e.M.GPU.Malloc(th.GPUCtx(), bytes)
	ev := &framework.AllocEvent{Bytes: bytes, Thread: th}
	for _, cb := range e.allocCBs {
		cb(ev)
	}
}

// FreeMem releases tensor memory.
func (e *Engine) FreeMem(th *framework.Thread, bytes int64) {
	e.M.GPU.Free(th.GPUCtx(), bytes)
	ev := &framework.AllocEvent{Bytes: bytes, Free: true, Thread: th}
	for _, cb := range e.allocCBs {
		cb(ev)
	}
}

// Run executes one eager operator on th: dispatcher and implementation
// frames are pushed on the native stack, the global callback fires around
// the body, kernels launch asynchronously, and (with RequiresGrad) a tape
// node with a fresh sequence ID is recorded.
func (e *Engine) Run(th *framework.Thread, op Op) {
	sym := e.OpSymbol(op.Name)
	for i := 0; i < e.DispatchDepth; i++ {
		th.Native.PushAt(e.dispatchSym, native.Addr(i*64))
	}
	th.Native.Push(sym)

	var seq int64
	if op.RequiresGrad {
		e.seq++
		seq = e.seq
	}
	ev := &framework.OpEvent{
		Name:      op.Name,
		Framework: e.FrameworkName(),
		Phase:     framework.Forward,
		SeqID:     seq,
		Thread:    th,
		CodeSym:   sym,
		Inputs:    op.Inputs,
		Outputs:   op.Outputs,
		Fused:     op.FusedFrom,
	}
	e.emitOp(ev, native.Enter)
	th.Clock.Advance(op.CPUCost)
	for i := 0; i < op.InternalFrames; i++ {
		th.Native.PushAt(e.internalSym, native.Addr(i*32))
	}
	for _, k := range op.Kernels {
		e.M.GPU.LaunchKernel(th.GPUCtx(), e.Stream, k)
	}
	for i := 0; i < op.InternalFrames; i++ {
		th.Native.Pop()
	}
	e.emitOp(ev, native.Exit)

	th.Native.Pop()
	for i := 0; i < e.DispatchDepth; i++ {
		th.Native.Pop()
	}
	if op.RequiresGrad {
		e.tape = append(e.tape, tapeNode{op: op, seq: seq})
	}
}

// BackwardThread returns the autograd worker thread, creating it on first
// use (PyTorch creates one per device).
func (e *Engine) BackwardThread() *framework.Thread {
	if e.bw == nil {
		e.bw = e.M.NewThread("autograd-worker")
	}
	return e.bw
}

// bwdName returns the backward operator name for op.
func bwdName(op Op) string {
	if op.BwdName != "" {
		return op.BwdName
	}
	return op.Name + "_backward"
}

// Backward runs backward propagation: the calling thread hands the tape to
// the autograd worker, which executes backward ops in reverse order with no
// Python frames, then the caller blocks until CPU-side backward completes
// (loss.backward() semantics; GPU work remains asynchronous).
func (e *Engine) Backward(th *framework.Thread) {
	if len(e.tape) == 0 {
		return
	}
	bw := e.BackwardThread()
	bw.Clock.AdvanceTo(th.Clock.Now())
	bw.Native.Push(e.threadMain)
	bw.Native.Push(e.execSym)

	for i := len(e.tape) - 1; i >= 0; i-- {
		n := e.tape[i]
		name := bwdName(n.op)
		sym := e.OpSymbol(name)
		bw.Native.Push(sym)
		ev := &framework.OpEvent{
			Name:      name,
			Framework: e.FrameworkName(),
			Phase:     framework.Backward,
			SeqID:     n.seq,
			Thread:    bw,
			CodeSym:   sym,
			Inputs:    n.op.Outputs,
			Outputs:   n.op.Inputs,
		}
		e.emitOp(ev, native.Enter)
		cost := n.op.BwdCPUCost
		if cost == 0 {
			cost = n.op.CPUCost
		}
		bw.Clock.Advance(cost)
		kernels := n.op.BwdKernels
		if kernels == nil {
			kernels = defaultBackwardKernels(n.op)
		}
		for j := 0; j < n.op.InternalFrames; j++ {
			bw.Native.PushAt(e.internalSym, native.Addr(j*32))
		}
		for _, k := range kernels {
			e.M.GPU.LaunchKernel(bw.GPUCtx(), e.Stream, k)
		}
		for j := 0; j < n.op.InternalFrames; j++ {
			bw.Native.Pop()
		}
		e.emitOp(ev, native.Exit)
		bw.Native.Pop()
	}
	bw.Native.Pop()
	bw.Native.Pop()
	e.tape = e.tape[:0]
	th.Clock.AdvanceTo(bw.Clock.Now())
}

// defaultBackwardKernels synthesizes a backward for ops that did not define
// one: each forward kernel yields a grad kernel with twice the work
// (input-grad plus weight-grad).
func defaultBackwardKernels(op Op) []gpu.KernelSpec {
	out := make([]gpu.KernelSpec, 0, len(op.Kernels))
	for _, k := range op.Kernels {
		b := k
		b.Name = k.Name + "_backward"
		b.FLOPs *= 2
		b.Bytes *= 2
		out = append(out, b)
	}
	return out
}

// TapeLen reports pending tape nodes (for tests).
func (e *Engine) TapeLen() int { return len(e.tape) }

// Synchronize drains the device from th.
func (e *Engine) Synchronize(th *framework.Thread) {
	e.M.GPU.Synchronize(th.GPUCtx())
}
