package framework

import (
	"testing"

	"deepcontext/internal/gpu"
	"deepcontext/internal/vtime"
)

func TestNewMachineLayout(t *testing.T) {
	m := NewMachine(gpu.A100())
	if m.Interp == nil || m.GPU == nil || m.AS == nil {
		t.Fatal("machine incomplete")
	}
	if m.PhysCores != 6 {
		t.Fatalf("phys cores = %d, want 6", m.PhysCores)
	}
	// libpython and the GPU driver must share the address space.
	if _, ok := m.AS.LibraryAt(m.Interp.EvalSym.Addr); !ok {
		t.Fatal("libpython not mapped")
	}
	if _, ok := m.AS.LibraryAt(m.GPU.APISymbol(gpu.SiteLaunchKernel).Addr); !ok {
		t.Fatal("driver not mapped")
	}
}

func TestEndToEndIsMakespan(t *testing.T) {
	m := NewMachine(gpu.A100())
	a := m.NewThread("main")
	b := m.NewThread("worker")
	a.Clock.Advance(100)
	b.Clock.Advance(300)
	if got := m.EndToEnd(); got != 300 {
		t.Fatalf("EndToEnd = %v, want 300", got)
	}
	// A pending GPU kernel extends the makespan.
	a.Clock.Advance(1000)
	m.GPU.LaunchKernel(a.GPUCtx(), 0, gpu.KernelSpec{Name: "k", Grid: gpu.D3(1), Block: gpu.D3(32), FLOPs: 1e9})
	if got := m.EndToEnd(); vtime.Time(got) != m.GPU.Frontier() {
		t.Fatalf("EndToEnd = %v, want GPU frontier %v", got, m.GPU.Frontier())
	}
}

func TestTotalCPUTime(t *testing.T) {
	m := NewMachine(gpu.A100())
	m.NewThread("a").Clock.Advance(10)
	m.NewThread("b").Clock.Advance(20)
	if got := m.TotalCPUTime(); got != 30 {
		t.Fatalf("TotalCPUTime = %v", got)
	}
}

func TestTensorMeta(t *testing.T) {
	tm := TensorMeta{Shape: []int{2, 3, 4}, DType: F16}
	if tm.Elems() != 24 || tm.Bytes() != 48 {
		t.Fatalf("elems=%d bytes=%d", tm.Elems(), tm.Bytes())
	}
	if F32.Size() != 4 || I64.Size() != 8 || F8.Size() != 1 {
		t.Fatal("dtype sizes wrong")
	}
}

func TestOversubFactor(t *testing.T) {
	if OversubFactor(4, 6) != 1 {
		t.Fatal("undersubscribed should be 1")
	}
	f16 := OversubFactor(16, 5)
	f8 := OversubFactor(8, 5)
	if f16 <= f8 || f8 <= 1 {
		t.Fatalf("oversub not monotone: f16=%v f8=%v", f16, f8)
	}
}

func TestDataLoaderFirstBatchDelay(t *testing.T) {
	m := NewMachine(gpu.A100())
	main := m.NewThread("main")
	d := NewDataLoader(m, 4, 10*vtime.Millisecond, 10*vtime.Second)
	d.Next(main)
	if main.Clock.Now() < vtime.Time(10*vtime.Second) {
		t.Fatalf("first batch did not pay cold-start: %v", main.Clock.Now())
	}
	before := main.Clock.Now()
	d.Next(main) // second batch comes from worker 1: already prefetched region
	if main.Clock.Now().Sub(before) > 100*vtime.Millisecond {
		t.Fatalf("second batch stalled: %v", main.Clock.Now().Sub(before))
	}
}

func TestDataLoaderOversubscriptionHurtsThroughput(t *testing.T) {
	throughput := func(workers int) vtime.Duration {
		m := NewMachine(gpu.A100())
		main := m.NewThread("main")
		d := NewDataLoader(m, workers, 12*vtime.Millisecond, 0)
		for i := 0; i < 200; i++ {
			d.Next(main)
		}
		return vtime.Duration(main.Clock.Now())
	}
	t16 := throughput(16)
	t8 := throughput(8)
	if t8 >= t16 {
		t.Fatalf("8 workers (%v) should beat 16 workers (%v) on 6 cores", t8, t16)
	}
}

func TestDataLoaderPrefetchOverlapsCompute(t *testing.T) {
	m := NewMachine(gpu.A100())
	main := m.NewThread("main")
	d := NewDataLoader(m, 4, vtime.Millisecond, 0)
	d.Next(main)
	loaded := main.Clock.Now()
	// Consumer computes for a long time; meanwhile workers prefetch, so
	// the next batch must cost (almost) nothing.
	main.Clock.Advance(100 * vtime.Millisecond)
	before := main.Clock.Now()
	d.Next(main)
	if main.Clock.Now() != before {
		t.Fatalf("prefetched batch still blocked consumer (%v after %v)", main.Clock.Now(), loaded)
	}
}

func TestThreadString(t *testing.T) {
	m := NewMachine(gpu.A100())
	th := m.NewThread("main")
	if th.String() != "main#0" {
		t.Fatalf("String = %q", th.String())
	}
}
