package framework

import "deepcontext/internal/native"

// PushPy enters a Python frame, mirroring it with a _PyEval_EvalFrameDefault
// frame on the native stack (as the CPython interpreter does). Call-path
// integration relies on these interpreter frames to find the libpython
// boundary where native frames are replaced by the Python call path.
func (t *Thread) PushPy(file string, line int, fn string) {
	t.Py.Push(file, line, fn)
	t.Native.PushAt(t.M.Interp.EvalSym, native.Addr(t.Py.Depth()*32))
}

// PopPy leaves a Python frame and its interpreter native frame.
func (t *Thread) PopPy() {
	t.Py.Pop()
	t.Native.Pop()
}

// WithPy runs body inside a pushed Python frame.
func (t *Thread) WithPy(file string, line int, fn string, body func()) {
	t.PushPy(file, line, fn)
	defer t.PopPy()
	body()
}
