package jaxsim

import (
	"strings"
	"testing"
	"testing/quick"

	"deepcontext/internal/framework"
	"deepcontext/internal/gpu"
	"deepcontext/internal/native"
	"deepcontext/internal/vtime"
)

func newEngine(t *testing.T) (*Engine, *framework.Thread) {
	t.Helper()
	m := framework.NewMachine(gpu.A100())
	return New(m), m.NewThread("python-main")
}

func ew(name string) Op {
	return Op{Name: "jax::" + name, Kind: Elementwise,
		Kernel:  gpu.KernelSpec{Name: name + "_kernel", Grid: gpu.D3(128), Block: gpu.D3(256), FLOPs: 1e6, Bytes: 1e6},
		CPUCost: 10 * vtime.Microsecond}
}

func mm(name string) Op {
	return Op{Name: "jax::" + name, Kind: Matmul,
		Kernel:  gpu.KernelSpec{Name: name + "_kernel", Grid: gpu.D3(512), Block: gpu.D3(256), FLOPs: 1e9, Bytes: 1e7},
		CPUCost: 15 * vtime.Microsecond}
}

func traceSample(e *Engine, th *framework.Thread) *Graph {
	return e.Trace(th, "step", func(tc *TraceContext) {
		th.Py.WithFrame("model.py", 10, "forward", func() {
			tc.Emit(mm("dot1"))
			tc.Emit(ew("add"))
			tc.Emit(ew("gelu"))
			tc.Emit(ew("cast"))
			tc.Emit(mm("dot2"))
			tc.Emit(ew("bias"))
		})
	})
}

func TestTraceCapturesPyPaths(t *testing.T) {
	e, th := newEngine(t)
	g := traceSample(e, th)
	if len(g.Ops) != 6 {
		t.Fatalf("ops = %d", len(g.Ops))
	}
	for _, op := range g.Ops {
		if len(op.PyPath) != 1 || op.PyPath[0].Func != "forward" {
			t.Fatalf("op %s pypath = %v", op.Name, op.PyPath)
		}
	}
	// IDs are unique and increasing.
	for i := 1; i < len(g.Ops); i++ {
		if g.Ops[i].ID <= g.Ops[i-1].ID {
			t.Fatal("op IDs not increasing")
		}
	}
}

func TestCompileFusesElementwiseRuns(t *testing.T) {
	e, th := newEngine(t)
	g := traceSample(e, th)
	ex := e.Compile(th, g)
	// dot1, fusion(add,gelu,cast), dot2, bias(singleton stays) => 4 ops.
	if ex.KernelCount() != 4 {
		t.Fatalf("compiled ops = %d, want 4: %v", ex.KernelCount(), opNames(ex))
	}
	var fusedOp *CompiledOp
	for _, c := range ex.Ops {
		if c.IsFused() {
			fusedOp = c
		}
	}
	if fusedOp == nil {
		t.Fatal("no fused op produced")
	}
	if len(fusedOp.Origins) != 3 {
		t.Fatalf("fused origins = %d, want 3", len(fusedOp.Origins))
	}
	// Fused kernel sums FLOPs but collapses memory traffic.
	if fusedOp.Kernel.FLOPs != 3e6 {
		t.Fatalf("fused FLOPs = %v", fusedOp.Kernel.FLOPs)
	}
	if fusedOp.Kernel.Bytes >= 3e6 {
		t.Fatalf("fused bytes = %v, want < summed", fusedOp.Kernel.Bytes)
	}
}

func opNames(ex *Executable) []string {
	var out []string
	for _, c := range ex.Ops {
		out = append(out, c.Name)
	}
	return out
}

func TestFusionMapPreservesOriginalPaths(t *testing.T) {
	e, th := newEngine(t)
	ex := e.Compile(th, traceSample(e, th))
	if len(ex.FusionMap) != 1 {
		t.Fatalf("fusion map = %v", ex.FusionMap)
	}
	for name, origins := range ex.FusionMap {
		if !strings.HasPrefix(name, "fusion_") {
			t.Fatalf("fused name = %q", name)
		}
		for _, o := range origins {
			if len(o.PyPath) == 0 {
				t.Fatalf("origin %s lost its python path", o.Name)
			}
		}
	}
}

func TestCompileCallbacksFirePerPass(t *testing.T) {
	e, th := newEngine(t)
	var passes []string
	e.AddCompileCallback(func(ev *framework.CompileEvent, ph native.Phase) {
		if ph == native.Enter {
			passes = append(passes, ev.PassName)
		}
	})
	e.Compile(th, traceSample(e, th))
	if len(passes) != len(PassNames) {
		t.Fatalf("passes = %v", passes)
	}
	for i, p := range PassNames {
		if passes[i] != p {
			t.Fatalf("passes = %v, want %v", passes, PassNames)
		}
	}
}

func TestRunEmitsFusedOpEventsAndLaunchesKernels(t *testing.T) {
	e, th := newEngine(t)
	ex := e.Compile(th, traceSample(e, th))
	var events []*framework.OpEvent
	e.AddGlobalCallback(func(ev *framework.OpEvent, ph native.Phase) {
		if ph == native.Enter {
			events = append(events, ev)
		}
	})
	before := e.M.GPU.Stats().KernelCount
	ex.Run(th)
	if got := e.M.GPU.Stats().KernelCount - before; got != int64(ex.KernelCount()) {
		t.Fatalf("kernels launched = %d, want %d", got, ex.KernelCount())
	}
	if len(events) != ex.KernelCount() {
		t.Fatalf("op events = %d", len(events))
	}
	var sawFused bool
	for _, ev := range events {
		if len(ev.Fused) > 1 {
			sawFused = true
			if ev.Framework != "jax" {
				t.Fatalf("framework = %q", ev.Framework)
			}
		}
	}
	if !sawFused {
		t.Fatal("no event carried fused origins")
	}
}

func TestFusionReducesKernelCountVsEager(t *testing.T) {
	// The §6.6 mechanism: the compiled program launches fewer kernels
	// than the traced op count.
	e, th := newEngine(t)
	g := traceSample(e, th)
	ex := e.Compile(th, g)
	if ex.KernelCount() >= len(g.Ops) {
		t.Fatalf("fusion did not reduce kernels: %d vs %d", ex.KernelCount(), len(g.Ops))
	}
}

func TestSingletonFusibleNotRenamed(t *testing.T) {
	e, th := newEngine(t)
	g := e.Trace(th, "g", func(tc *TraceContext) {
		tc.Emit(mm("dot"))
		tc.Emit(ew("lonely"))
		tc.Emit(mm("dot_b"))
	})
	ex := e.Compile(th, g)
	if ex.KernelCount() != 3 {
		t.Fatalf("ops = %v", opNames(ex))
	}
	for _, c := range ex.Ops {
		if c.IsFused() {
			t.Fatal("singleton should not fuse")
		}
	}
}

// Property: fusion conserves ops — every traced op appears exactly once as
// an origin across compiled ops, in order.
func TestFusionBijectionProperty(t *testing.T) {
	e, th := newEngine(t)
	f := func(kinds []uint8) bool {
		if len(kinds) == 0 {
			return true
		}
		if len(kinds) > 40 {
			kinds = kinds[:40]
		}
		g := e.Trace(th, "p", func(tc *TraceContext) {
			for i, k := range kinds {
				kind := OpKind(int(k) % 8)
				tc.Emit(Op{
					Name:    "jax::op",
					Kind:    kind,
					Kernel:  gpu.KernelSpec{Name: "k", Grid: gpu.D3(1 + i), Block: gpu.D3(64), FLOPs: 1, Bytes: 1},
					CPUCost: 1,
				})
			}
		})
		ex := e.Compile(th, g)
		var flat []*Op
		for _, c := range ex.Ops {
			flat = append(flat, c.Origins...)
		}
		if len(flat) != len(g.Ops) {
			return false
		}
		for i := range flat {
			if flat[i] != g.Ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncNames(t *testing.T) {
	got := truncNames([]string{"a", "b", "c", "d", "e"}, 3)
	if len(got) != 4 || got[3] != "and2" {
		t.Fatalf("truncNames = %v", got)
	}
	short := truncNames([]string{"a"}, 3)
	if len(short) != 1 {
		t.Fatalf("truncNames short = %v", short)
	}
}

func TestAllocCallback(t *testing.T) {
	e, th := newEngine(t)
	var got int64
	e.AddAllocCallback(func(ev *framework.AllocEvent) { got += ev.Bytes })
	e.Alloc(th, 1024)
	if got != 1024 {
		t.Fatalf("alloc cb = %d", got)
	}
}
