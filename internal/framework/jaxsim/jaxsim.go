// Package jaxsim simulates a JAX/XLA-style JIT framework: Python code traces
// operators into a computation graph; compilation runs passes including an
// operator-fusion pass that merges elementwise chains; the compiled
// executable launches fused kernels whose runtime call paths no longer match
// the original source.
//
// Following the paper (§4.1), the fusion pass records the mapping from each
// fused operator back to its original operators together with the Python
// call paths captured during tracing (Fig. 4), and the compiled program is
// "binary instrumented": callbacks fire before and after each operator of
// the final pass's output, giving JAX profiling parity with PyTorch.
package jaxsim

import (
	"fmt"
	"strings"

	"deepcontext/internal/framework"
	"deepcontext/internal/gpu"
	"deepcontext/internal/native"
	"deepcontext/internal/pyruntime"
	"deepcontext/internal/vtime"
)

// OpKind classifies traced operators for the fusion pass.
type OpKind int

const (
	// Elementwise ops (add, mul, cast, activation) are fusible.
	Elementwise OpKind = iota
	// Matmul is a dot_general contraction.
	Matmul
	// Conv is a convolution.
	Conv
	// Reduce is a reduction (sum, softmax denominators).
	Reduce
	// Gather is an embedding/index lookup.
	Gather
	// Scatter is an index update.
	Scatter
	// Copy is a layout/device copy.
	Copy
	// Norm is a normalization op.
	Norm
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case Elementwise:
		return "elementwise"
	case Matmul:
		return "dot_general"
	case Conv:
		return "convolution"
	case Reduce:
		return "reduce"
	case Gather:
		return "gather"
	case Scatter:
		return "scatter"
	case Copy:
		return "copy"
	case Norm:
		return "norm"
	}
	return "unknown"
}

// Fusible reports whether the fusion pass may merge ops of this kind.
// XLA decomposes normalizations into elementwise algebra, so they fuse too.
func (k OpKind) Fusible() bool { return k == Elementwise || k == Copy || k == Norm }

// Op is one traced operator.
type Op struct {
	ID      int
	Name    string
	Kind    OpKind
	Kernel  gpu.KernelSpec
	CPUCost vtime.Duration
	// PyPath is the Python call path captured when the op was traced.
	PyPath []pyruntime.Frame
}

// Graph is a traced computation graph.
type Graph struct {
	Name string
	Ops  []*Op
}

// CompiledOp is one operator of the final compiled program. Fused operators
// carry more than one origin.
type CompiledOp struct {
	Name    string
	Kernel  gpu.KernelSpec
	CPUCost vtime.Duration
	Origins []*Op
	Sym     *native.Symbol
}

// IsFused reports whether this op merged multiple originals.
func (c *CompiledOp) IsFused() bool { return len(c.Origins) > 1 }

// Executable is a compiled program plus the fused-to-original mapping.
type Executable struct {
	Name string
	Ops  []*CompiledOp
	// FusionMap indexes origins by compiled-op name for GUI display of
	// "all possible original call paths" (paper §4.1).
	FusionMap map[string][]framework.FusedOrigin
	engine    *Engine
}

// PassNames lists the compilation passes in order.
var PassNames = []string{"canonicalize", "operator-fusion", "schedule"}

// Engine is one simulated JAX/XLA process runtime.
type Engine struct {
	M *framework.Machine

	lib        *native.Library
	runSym     *native.Symbol
	thunkSym   *native.Symbol
	traceSym   *native.Symbol
	passSyms   map[string]*native.Symbol
	opSyms     map[string]*native.Symbol
	opCBs      []framework.OpCallback
	allocCBs   []framework.AllocCallback
	compileCBs []framework.CompileCallback

	nextOpID int
	// Stream is the stream compiled programs launch on.
	Stream int
	// ThunkDepth is how many runtime helper frames sit between a compiled
	// op and its kernel launch (buffer assignment, stream executor).
	ThunkDepth int
	// TraceCost is the per-op cost during tracing.
	TraceCost vtime.Duration
	// PassCostPerOp is the compile cost per graph op per pass.
	PassCostPerOp vtime.Duration
	// TrampolineCost is charged per registered callback per operator
	// phase: unlike PyTorch's native aten callback registry, JAX
	// instrumentation goes through binary-rewriting trampolines
	// (paper §4.1), which cost more per invocation.
	TrampolineCost vtime.Duration
}

var _ framework.Hooks = (*Engine)(nil)

// New loads libxla into the machine's address space and returns an engine.
func New(m *framework.Machine) *Engine {
	lib := m.AS.LoadLibrary("libxla_extension.so", 48<<20)
	e := &Engine{
		M:              m,
		lib:            lib,
		runSym:         m.AS.AddSymbol(lib, "xla::LocalExecutable::Run", 4096, "xla/client/local_client.cc", 200),
		thunkSym:       m.AS.AddSymbol(lib, "xla::gpu::Thunk::ExecuteOnStream", 8192, "xla/service/gpu/thunk.cc", 120),
		traceSym:       m.AS.AddSymbol(lib, "jax::Trace", 2048, "jax/interpreters/partial_eval.py", 1),
		passSyms:       make(map[string]*native.Symbol),
		opSyms:         make(map[string]*native.Symbol),
		TraceCost:      20 * vtime.Microsecond,
		PassCostPerOp:  60 * vtime.Microsecond,
		ThunkDepth:     10,
		TrampolineCost: 1500 * vtime.Nanosecond,
	}
	for _, p := range PassNames {
		e.passSyms[p] = m.AS.AddSymbol(lib, "xla::"+p+"_pass", 4096, "xla/service/"+p+".cc", 40)
	}
	return e
}

// FrameworkName reports "jax".
func (e *Engine) FrameworkName() string { return "jax" }

// AddGlobalCallback registers an operator callback. For JAX this models the
// binary-instrumentation shim inserting callbacks around each compiled op.
func (e *Engine) AddGlobalCallback(cb framework.OpCallback) { e.opCBs = append(e.opCBs, cb) }

// AddAllocCallback registers a buffer allocation callback.
func (e *Engine) AddAllocCallback(cb framework.AllocCallback) { e.allocCBs = append(e.allocCBs, cb) }

// AddCompileCallback registers a compilation-pass callback, the analogue of
// intercepting XLA's pass pipeline by binary instrumentation.
func (e *Engine) AddCompileCallback(cb framework.CompileCallback) {
	e.compileCBs = append(e.compileCBs, cb)
}

func (e *Engine) emitOp(ev *framework.OpEvent, ph native.Phase) {
	if n := len(e.opCBs); n > 0 && ev.Thread != nil {
		ev.Thread.Clock.Advance(vtime.Duration(n) * e.TrampolineCost)
	}
	for _, cb := range e.opCBs {
		cb(ev, ph)
	}
}

func (e *Engine) emitCompile(ev *framework.CompileEvent, ph native.Phase) {
	for _, cb := range e.compileCBs {
		cb(ev, ph)
	}
}

// TraceContext accumulates ops while tracing a Python function.
type TraceContext struct {
	e  *Engine
	g  *Graph
	th *framework.Thread
}

// Emit records one operator, capturing the current Python call path.
func (tc *TraceContext) Emit(op Op) *Op {
	tc.e.nextOpID++
	op.ID = tc.e.nextOpID
	op.PyPath = tc.th.Py.Walk(nil)
	tc.th.Clock.Advance(tc.e.TraceCost)
	o := op
	tc.g.Ops = append(tc.g.Ops, &o)
	return &o
}

// Trace runs build under the tracer, producing a graph.
func (e *Engine) Trace(th *framework.Thread, name string, build func(*TraceContext)) *Graph {
	th.Native.Push(e.traceSym)
	defer th.Native.Pop()
	g := &Graph{Name: name}
	build(&TraceContext{e: e, g: g, th: th})
	return g
}

// opSymbol interns the device-launch symbol for a compiled op.
func (e *Engine) opSymbol(name string) *native.Symbol {
	if s, ok := e.opSyms[name]; ok {
		return s
	}
	s := e.M.AS.AddSymbol(e.lib, "xla::gpu::"+name+"_thunk", 1024, "xla/service/gpu/thunk.cc", 60)
	e.opSyms[name] = s
	return s
}

// Compile lowers g through the pass pipeline. The fusion pass greedily
// merges maximal runs of >= 2 consecutive fusible ops; each merge records
// its originals with their trace-time Python paths in the FusionMap.
func (e *Engine) Compile(th *framework.Thread, g *Graph) *Executable {
	ex := &Executable{Name: g.Name, FusionMap: make(map[string][]framework.FusedOrigin), engine: e}
	ops := g.Ops
	for _, pass := range PassNames {
		sym := e.passSyms[pass]
		th.Native.Push(sym)
		cev := &framework.CompileEvent{PassName: pass, Thread: th}
		e.emitCompile(cev, native.Enter)
		th.Clock.Advance(vtime.Duration(len(ops)) * e.PassCostPerOp)
		if pass == "operator-fusion" {
			ex.Ops = fuse(e, ops)
		}
		e.emitCompile(cev, native.Exit)
		th.Native.Pop()
	}
	if ex.Ops == nil {
		ex.Ops = fuse(e, ops)
	}
	for _, c := range ex.Ops {
		if c.IsFused() {
			var origins []framework.FusedOrigin
			for _, o := range c.Origins {
				origins = append(origins, framework.FusedOrigin{Name: o.Name, PyPath: o.PyPath})
			}
			ex.FusionMap[c.Name] = origins
		}
	}
	return ex
}

// fuse merges runs of consecutive fusible ops.
func fuse(e *Engine, ops []*Op) []*CompiledOp {
	var out []*CompiledOp
	i := 0
	for i < len(ops) {
		j := i
		for j < len(ops) && ops[j].Kind.Fusible() {
			j++
		}
		if j-i >= 2 {
			out = append(out, mergeRun(e, ops[i:j]))
			i = j
			continue
		}
		// Non-fusible op, or a singleton fusible op: pass through.
		op := ops[i]
		out = append(out, &CompiledOp{
			Name:    op.Name,
			Kernel:  op.Kernel,
			CPUCost: op.CPUCost,
			Origins: []*Op{op},
			Sym:     e.opSymbol(op.Name),
		})
		i++
	}
	return out
}

// mergeRun builds a fused op from a run of fusible ops: FLOPs add up, but
// DRAM traffic collapses to the run's external inputs and outputs (modeled
// as 45% of the summed traffic), and a single launch replaces the run.
func mergeRun(e *Engine, run []*Op) *CompiledOp {
	var names []string
	var flops, bytes float64
	var cpu vtime.Duration
	grid, block := run[0].Kernel.Grid, run[0].Kernel.Block
	for _, o := range run {
		names = append(names, strings.TrimPrefix(o.Name, "jax::"))
		flops += o.Kernel.FLOPs
		bytes += o.Kernel.Bytes
		cpu += o.CPUCost / 4
		if o.Kernel.Grid.Volume() > grid.Volume() {
			grid, block = o.Kernel.Grid, o.Kernel.Block
		}
	}
	name := "fusion_" + strings.Join(truncNames(names, 3), "_")
	origins := make([]*Op, len(run))
	copy(origins, run)
	return &CompiledOp{
		Name: name,
		Kernel: gpu.KernelSpec{
			Name:  name + "_kernel",
			Grid:  grid,
			Block: block,
			FLOPs: flops,
			Bytes: bytes * 0.38,
		},
		CPUCost: cpu,
		Origins: origins,
		Sym:     e.opSymbol(name),
	}
}

func truncNames(names []string, n int) []string {
	if len(names) <= n {
		return names
	}
	out := append([]string{}, names[:n]...)
	return append(out, fmt.Sprintf("and%d", len(names)-n))
}

// KernelCount reports how many kernels one execution launches.
func (ex *Executable) KernelCount() int { return len(ex.Ops) }

// Run executes the compiled program once on th. Each compiled op fires
// instrumentation callbacks carrying its fused origins, then launches its
// kernel asynchronously.
func (ex *Executable) Run(th *framework.Thread) {
	e := ex.engine
	th.Native.Push(e.runSym)
	for _, c := range ex.Ops {
		th.Native.Push(c.Sym)
		var fused []framework.FusedOrigin
		if c.IsFused() {
			fused = ex.FusionMap[c.Name]
		}
		ev := &framework.OpEvent{
			Name:      c.Name,
			Framework: e.FrameworkName(),
			Phase:     framework.Forward,
			Thread:    th,
			CodeSym:   c.Sym,
			Fused:     fused,
		}
		e.emitOp(ev, native.Enter)
		th.Clock.Advance(c.CPUCost)
		for d := 0; d < e.ThunkDepth; d++ {
			th.Native.PushAt(e.thunkSym, native.Addr(d*32))
		}
		e.M.GPU.LaunchKernel(th.GPUCtx(), e.Stream, c.Kernel)
		for d := 0; d < e.ThunkDepth; d++ {
			th.Native.Pop()
		}
		e.emitOp(ev, native.Exit)
		th.Native.Pop()
	}
	th.Native.Pop()
}

// Alloc allocates a device buffer, reporting to allocation callbacks.
func (e *Engine) Alloc(th *framework.Thread, bytes int64) {
	e.M.GPU.Malloc(th.GPUCtx(), bytes)
	ev := &framework.AllocEvent{Bytes: bytes, Thread: th}
	for _, cb := range e.allocCBs {
		cb(ev)
	}
}

// Synchronize drains the device from th.
func (e *Engine) Synchronize(th *framework.Thread) {
	e.M.GPU.Synchronize(th.GPUCtx())
}
