package roctracer

import (
	"strings"
	"testing"

	"deepcontext/internal/gpu"
	"deepcontext/internal/native"
	"deepcontext/internal/vtime"
)

func TestNewRejectsNvidia(t *testing.T) {
	as := native.NewAddressSpace()
	rt := gpu.NewRuntime(gpu.A100(), as)
	if _, err := New(rt); err == nil {
		t.Fatal("expected error wrapping Nvidia runtime")
	}
}

func TestTracerDelegates(t *testing.T) {
	as := native.NewAddressSpace()
	rt := gpu.NewRuntime(gpu.MI250(), as)
	tr, err := New(rt)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name() != "RocTracer" || tr.Vendor() != gpu.VendorAMD {
		t.Fatalf("identity wrong: %s/%v", tr.Name(), tr.Vendor())
	}
	if tr.Device().WarpSize != 64 {
		t.Fatalf("warp size = %d, want 64", tr.Device().WarpSize)
	}
	var acts []gpu.Activity
	tr.EnableActivity(10, func(a []gpu.Activity) { acts = append(acts, a...) })
	th := gpu.ThreadCtx{Clock: &vtime.Clock{}, Stack: native.NewStack(as)}
	rt.LaunchKernel(th, 0, gpu.KernelSpec{Name: "k", Grid: gpu.D3(208), Block: gpu.D3(256), FLOPs: 1e8})
	tr.Flush()
	if len(acts) != 1 {
		t.Fatalf("acts = %d", len(acts))
	}
}

func TestHIPSymbolNaming(t *testing.T) {
	as := native.NewAddressSpace()
	rt := gpu.NewRuntime(gpu.MI250(), as)
	if got := rt.APISymbol(gpu.SiteLaunchKernel).Name; got != "hipModuleLaunchKernel" {
		t.Fatalf("launch symbol = %q", got)
	}
	if got := rt.APISymbol(gpu.SiteLaunchKernel).Lib.Name; got != "libamdhip64.so" {
		t.Fatalf("lib = %q", got)
	}
}

func TestStallNames(t *testing.T) {
	as := native.NewAddressSpace()
	tr, _ := New(gpu.NewRuntime(gpu.MI250(), as))
	if got := tr.StallName(gpu.StallConstMemMiss); !strings.Contains(got, "smem_const") {
		t.Fatalf("StallName = %q", got)
	}
}
