// Package roctracer adapts a simulated AMD GPU runtime to the gpu.Tracer
// interface with RocTracer-flavored semantics: HIP API domain callbacks
// (roctracer_enable_domain_callback(ACTIVITY_DOMAIN_HIP_API)), activity pools
// (roctracer_open_pool) and ROC-profiler instruction-sampling stall naming.
package roctracer

import (
	"fmt"

	"deepcontext/internal/gpu"
	"deepcontext/internal/vtime"
)

// Tracer is the RocTracer view of an AMD runtime.
type Tracer struct {
	rt *gpu.Runtime
}

var _ gpu.Tracer = (*Tracer)(nil)

// New wraps rt, which must be an AMD device.
func New(rt *gpu.Runtime) (*Tracer, error) {
	if rt.Spec.Vendor != gpu.VendorAMD {
		return nil, fmt.Errorf("roctracer: runtime is %v, want AMD", rt.Spec.Vendor)
	}
	return &Tracer{rt: rt}, nil
}

// Name reports "RocTracer".
func (t *Tracer) Name() string { return "RocTracer" }

// Vendor reports AMD.
func (t *Tracer) Vendor() gpu.Vendor { return gpu.VendorAMD }

// Device returns the traced device spec.
func (t *Tracer) Device() gpu.DeviceSpec { return t.rt.Spec }

// Subscribe registers a HIP API domain callback.
func (t *Tracer) Subscribe(cb gpu.APICallback) { t.rt.Subscribe(cb) }

// EnableActivity opens an activity pool delivering async records. The
// delivered slice is valid only during the callback; the pool's memory is
// reused for the next batch after it returns.
func (t *Tracer) EnableActivity(bufCap int, flush func([]gpu.Activity)) {
	t.rt.EnableActivity(bufCap, flush)
}

// EnablePCSampling enables wave-level instruction sampling.
func (t *Tracer) EnablePCSampling(period vtime.Duration) { t.rt.EnablePCSampling(period) }

// Flush drains the activity pool (roctracer_flush_activity).
func (t *Tracer) Flush() { t.rt.FlushActivity() }

// rocmStallNames follows the ROC-profiler wave-state naming.
var rocmStallNames = map[gpu.StallReason]string{
	gpu.StallNone:         "issue",
	gpu.StallMathDep:      "dep_valu",
	gpu.StallMemDep:       "dep_vmem",
	gpu.StallConstMemMiss: "dep_smem_const",
	gpu.StallMemThrottle:  "stall_vmem_throttle",
	gpu.StallSync:         "stall_barrier",
	gpu.StallInstFetch:    "stall_ifetch",
	gpu.StallNotSelected:  "arb_lost",
}

// StallName renders r as ROC-profiler would.
func (t *Tracer) StallName(r gpu.StallReason) string {
	if n, ok := rocmStallNames[r]; ok {
		return "rocprof_wave_" + n
	}
	return "rocprof_wave_unknown"
}
