// Package gpu simulates the GPU runtime substrate that the real DeepContext
// observes through CUPTI (Nvidia) and RocTracer (AMD): asynchronous kernel
// execution on streams, driver API callbacks with correlation IDs,
// double-buffered activity records, and fine-grained instruction (PC)
// sampling with stall reasons.
//
// The simulator reproduces the interfaces and timing structure the profiler
// depends on — async launches that overlap with CPU execution, buffer-full
// activity flushes, warp-size and occupancy effects — using a
// roofline-with-occupancy duration model in virtual time.
package gpu

import (
	"fmt"
	"math"

	"deepcontext/internal/vtime"
)

// Vendor identifies the GPU vendor, which selects the callback substrate
// (CUPTI vs RocTracer), the warp size, and API symbol naming.
type Vendor int

const (
	// VendorNvidia models an Nvidia GPU observed through CUPTI.
	VendorNvidia Vendor = iota
	// VendorAMD models an AMD GPU observed through RocTracer.
	VendorAMD
)

// String names the vendor.
func (v Vendor) String() string {
	if v == VendorAMD {
		return "AMD"
	}
	return "Nvidia"
}

// DeviceSpec describes a simulated GPU. The two presets correspond to the
// paper's Table 2 platforms.
type DeviceSpec struct {
	Vendor           Vendor
	Name             string
	SMs              int // streaming multiprocessors (Nvidia) or compute units (AMD)
	WarpSize         int
	MaxThreadsPerSM  int
	MaxCTAsPerSM     int
	SharedMemPerSM   int // bytes
	RegistersPerSM   int
	PeakTFLOPS       float64 // sustained compute throughput
	MemBWGBps        float64 // device memory bandwidth
	PCIeGBps         float64 // host<->device copy bandwidth
	MemBytes         int64   // device memory capacity
	LaunchLatency    vtime.Duration
	DispatchDelay    vtime.Duration
	KernelFixedCost  vtime.Duration
	MinUtilization   float64 // floor for the occupancy scaling
	ConstMemPenaltyX float64 // relative cost multiplier for constant-memory-heavy kernels
}

// A100 returns the Nvidia platform of the paper's Table 2
// (A100 SXM 80 GB: 108 SMs, 156 TF32 TFLOP/s, 2 TB/s).
func A100() DeviceSpec {
	return DeviceSpec{
		Vendor:           VendorNvidia,
		Name:             "A100 SXM 80GB",
		SMs:              108,
		WarpSize:         32,
		MaxThreadsPerSM:  2048,
		MaxCTAsPerSM:     32,
		SharedMemPerSM:   164 * 1024,
		RegistersPerSM:   65536,
		PeakTFLOPS:       156,
		MemBWGBps:        2000,
		PCIeGBps:         25,
		MemBytes:         80 << 30,
		LaunchLatency:    4 * vtime.Microsecond,
		DispatchDelay:    2 * vtime.Microsecond,
		KernelFixedCost:  3 * vtime.Microsecond,
		MinUtilization:   0.02,
		ConstMemPenaltyX: 1.6,
	}
}

// MI250 returns the AMD platform of the paper's Table 2
// (MI250 64 GB: 208 CUs, 362.1 FP16 TFLOP/s, 3.2 TB/s). The effective
// sustained throughput used by the model is derated, matching the lower
// library maturity the paper's case studies observe.
func MI250() DeviceSpec {
	return DeviceSpec{
		Vendor:           VendorAMD,
		Name:             "MI250 64GB",
		SMs:              208,
		WarpSize:         64,
		MaxThreadsPerSM:  2048,
		MaxCTAsPerSM:     32,
		SharedMemPerSM:   64 * 1024,
		RegistersPerSM:   65536,
		PeakTFLOPS:       181, // FP16 peak derated to sustained matrix throughput
		MemBWGBps:        3200,
		PCIeGBps:         25,
		MemBytes:         64 << 30,
		LaunchLatency:    8 * vtime.Microsecond, // ROCm launch path is costlier
		DispatchDelay:    4 * vtime.Microsecond,
		KernelFixedCost:  4 * vtime.Microsecond,
		MinUtilization:   0.02,
		ConstMemPenaltyX: 1.8,
	}
}

// Dim3 is a CUDA/HIP-style 3-D extent.
type Dim3 struct{ X, Y, Z int }

// D3 builds a 1-D Dim3.
func D3(x int) Dim3 { return Dim3{X: x, Y: 1, Z: 1} }

// Volume returns X*Y*Z, treating zero components as 1.
func (d Dim3) Volume() int {
	v := 1
	for _, c := range []int{d.X, d.Y, d.Z} {
		if c > 1 {
			v *= c
		}
	}
	return v
}

// String renders the extent compactly.
func (d Dim3) String() string { return fmt.Sprintf("(%d,%d,%d)", d.X, d.Y, d.Z) }

// StallReason classifies why sampled GPU instructions were not issuing,
// following the union of CUPTI's and ROC-profiler's taxonomies.
type StallReason int

const (
	// StallNone marks instructions that issued.
	StallNone StallReason = iota
	// StallMathDep waits on an ALU/FMA dependency chain.
	StallMathDep
	// StallMemDep waits on an outstanding global memory access.
	StallMemDep
	// StallConstMemMiss waits on the constant-memory (immediate constant
	// cache) hierarchy — the Llama3 RMSNorm case-study signature.
	StallConstMemMiss
	// StallMemThrottle is backpressure from the memory pipeline.
	StallMemThrottle
	// StallSync waits at barriers.
	StallSync
	// StallInstFetch waits on instruction fetch.
	StallInstFetch
	// StallNotSelected was eligible but not issued (high occupancy).
	StallNotSelected
)

var stallNames = [...]string{
	StallNone:         "selected",
	StallMathDep:      "math_dependency",
	StallMemDep:       "memory_dependency",
	StallConstMemMiss: "constant_memory_miss",
	StallMemThrottle:  "memory_throttle",
	StallSync:         "synchronization",
	StallInstFetch:    "instruction_fetch",
	StallNotSelected:  "not_selected",
}

// String returns the vendor-neutral stall name.
func (r StallReason) String() string {
	if int(r) < len(stallNames) {
		return stallNames[r]
	}
	return "unknown"
}

// InstGroup describes a portion of a kernel's dynamic instructions and the
// dominant stall reason observed when sampling them.
type InstGroup struct {
	Weight float64 // fraction of dynamic instructions (normalized at use)
	Stall  StallReason
}

// InstMix is a kernel's instruction composition for PC sampling.
type InstMix []InstGroup

// KernelSpec describes a kernel launch: geometry, resource usage, and the
// work volume driving the duration model.
type KernelSpec struct {
	Name           string
	Grid, Block    Dim3
	SharedMemBytes int
	RegsPerThread  int
	FLOPs          float64 // floating-point work
	Bytes          float64 // DRAM traffic
	// Serialization multiplies the ideal duration; >1 models intra-kernel
	// serialization such as deterministic index accumulation that
	// serializes threads writing the same location (paper §6.1).
	Serialization float64
	// ConstHeavy marks kernels dominated by constant-memory loads
	// (paper §6.7); the device's ConstMemPenaltyX multiplier applies and
	// PC samples skew to constant_memory_miss.
	ConstHeavy bool
	// Mix optionally overrides the synthesized instruction mix.
	Mix InstMix
}

// Occupancy returns the fraction of the device's resident-thread capacity
// this launch can occupy, in (0, 1].
func (d DeviceSpec) Occupancy(k KernelSpec) float64 {
	threads := k.Block.Volume()
	if threads <= 0 {
		threads = 1
	}
	// Threads round up to warp granularity.
	warps := (threads + d.WarpSize - 1) / d.WarpSize
	effThreads := warps * d.WarpSize
	ctasPerSM := d.MaxCTAsPerSM
	if byThreads := d.MaxThreadsPerSM / effThreads; byThreads < ctasPerSM {
		ctasPerSM = byThreads
	}
	if k.SharedMemBytes > 0 {
		if bySmem := d.SharedMemPerSM / k.SharedMemBytes; bySmem < ctasPerSM {
			ctasPerSM = bySmem
		}
	}
	if k.RegsPerThread > 0 {
		if byRegs := d.RegistersPerSM / (k.RegsPerThread * effThreads); byRegs < ctasPerSM {
			ctasPerSM = byRegs
		}
	}
	if ctasPerSM < 1 {
		ctasPerSM = 1
	}
	resident := k.Grid.Volume()
	if cap := ctasPerSM * d.SMs; resident > cap {
		resident = cap
	}
	occ := float64(resident*effThreads) / float64(d.SMs*d.MaxThreadsPerSM)
	if occ > 1 {
		occ = 1
	}
	if occ < d.MinUtilization {
		occ = d.MinUtilization
	}
	return occ
}

// Duration evaluates the roofline-with-occupancy model for one launch of k.
// Underfilled launches lose throughput sublinearly (latency hiding still
// works within the resident warps), so effective throughput scales with the
// square root of occupancy.
func (d DeviceSpec) Duration(k KernelSpec) vtime.Duration {
	compute := k.FLOPs / (d.PeakTFLOPS * 1e12)
	mem := k.Bytes / (d.MemBWGBps * 1e9)
	ideal := math.Max(compute, mem)
	occ := d.Occupancy(k)
	dur := ideal / math.Sqrt(occ)
	if s := k.Serialization; s > 1 {
		dur *= s
	}
	if k.ConstHeavy {
		dur *= d.ConstMemPenaltyX
	}
	return vtime.Duration(dur*1e9) + d.KernelFixedCost
}
