package gpu

import "deepcontext/internal/vtime"

// Tracer is the vendor-neutral measurement substrate interface the profiler
// and DLMonitor consume. The cupti and roctracer packages adapt a Runtime to
// this interface with vendor-specific naming, mirroring how the real
// DeepContext registers callbacks "using CUPTI for Nvidia GPUs and RocTracer
// for AMD GPUs" behind one internal abstraction.
type Tracer interface {
	// Name identifies the substrate ("CUPTI", "RocTracer").
	Name() string
	// Vendor reports the GPU vendor.
	Vendor() Vendor
	// Device reports the device being traced.
	Device() DeviceSpec
	// Subscribe registers a synchronous driver API callback.
	Subscribe(APICallback)
	// EnableActivity turns on buffered asynchronous activity records.
	EnableActivity(bufCap int, flush func([]Activity))
	// EnablePCSampling turns on instruction sampling at the given period.
	EnablePCSampling(period vtime.Duration)
	// Flush forces delivery of pending activity records.
	Flush()
	// StallName renders a stall reason in the vendor's taxonomy.
	StallName(StallReason) string
}
