package cupti

import (
	"strings"
	"testing"

	"deepcontext/internal/gpu"
	"deepcontext/internal/native"
	"deepcontext/internal/vtime"
)

func TestNewRejectsAMD(t *testing.T) {
	as := native.NewAddressSpace()
	rt := gpu.NewRuntime(gpu.MI250(), as)
	if _, err := New(rt); err == nil {
		t.Fatal("expected error wrapping AMD runtime")
	}
}

func TestTracerDelegates(t *testing.T) {
	as := native.NewAddressSpace()
	rt := gpu.NewRuntime(gpu.A100(), as)
	tr, err := New(rt)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name() != "CUPTI" || tr.Vendor() != gpu.VendorNvidia {
		t.Fatalf("identity wrong: %s/%v", tr.Name(), tr.Vendor())
	}
	var acts []gpu.Activity
	tr.EnableActivity(10, func(a []gpu.Activity) { acts = append(acts, a...) })
	calls := 0
	tr.Subscribe(func(ev *gpu.APIEvent) { calls++ })
	th := gpu.ThreadCtx{Clock: &vtime.Clock{}, Stack: native.NewStack(as)}
	rt.LaunchKernel(th, 0, gpu.KernelSpec{Name: "k", Grid: gpu.D3(108), Block: gpu.D3(256), FLOPs: 1e8})
	tr.Flush()
	if len(acts) != 1 {
		t.Fatalf("acts = %d", len(acts))
	}
	if calls != 2 { // enter + exit
		t.Fatalf("callback calls = %d", calls)
	}
}

func TestStallNames(t *testing.T) {
	as := native.NewAddressSpace()
	tr, _ := New(gpu.NewRuntime(gpu.A100(), as))
	got := tr.StallName(gpu.StallConstMemMiss)
	if !strings.Contains(got, "CONSTANT_MEMORY") {
		t.Fatalf("StallName = %q", got)
	}
	if !strings.HasPrefix(tr.StallName(gpu.StallReason(99)), "CUPTI_") {
		t.Fatal("unknown stall should still be CUPTI-prefixed")
	}
}
