// Package cupti adapts a simulated Nvidia GPU runtime to the gpu.Tracer
// interface with CUPTI-flavored semantics and naming: callback subscription
// (cuptiSubscribe), activity buffers (cuptiActivityEnable/FlushAll) and PC
// sampling stall reasons as reported by CUPTI_ACTIVITY_PC_SAMPLING_STALL_*.
package cupti

import (
	"fmt"

	"deepcontext/internal/gpu"
	"deepcontext/internal/vtime"
)

// Tracer is the CUPTI view of an Nvidia runtime.
type Tracer struct {
	rt *gpu.Runtime
}

var _ gpu.Tracer = (*Tracer)(nil)

// New wraps rt, which must be an Nvidia device.
func New(rt *gpu.Runtime) (*Tracer, error) {
	if rt.Spec.Vendor != gpu.VendorNvidia {
		return nil, fmt.Errorf("cupti: runtime is %v, want Nvidia", rt.Spec.Vendor)
	}
	return &Tracer{rt: rt}, nil
}

// Name reports "CUPTI".
func (t *Tracer) Name() string { return "CUPTI" }

// Vendor reports Nvidia.
func (t *Tracer) Vendor() gpu.Vendor { return gpu.VendorNvidia }

// Device returns the traced device spec.
func (t *Tracer) Device() gpu.DeviceSpec { return t.rt.Spec }

// Subscribe registers a driver API callback (cuptiSubscribe +
// cuptiEnableDomain(CUPTI_CB_DOMAIN_RUNTIME_API)).
func (t *Tracer) Subscribe(cb gpu.APICallback) { t.rt.Subscribe(cb) }

// EnableActivity enables buffered activity records
// (cuptiActivityRegisterCallbacks + cuptiActivityEnable). As with CUPTI's
// bufferCompleted callback, the delivered slice is valid only during the
// callback — the buffer is re-registered for the next generation after it
// returns.
func (t *Tracer) EnableActivity(bufCap int, flush func([]gpu.Activity)) {
	t.rt.EnableActivity(bufCap, flush)
}

// EnablePCSampling enables instruction sampling
// (cuptiActivityConfigurePCSampling).
func (t *Tracer) EnablePCSampling(period vtime.Duration) { t.rt.EnablePCSampling(period) }

// Flush forces activity delivery (cuptiActivityFlushAll).
func (t *Tracer) Flush() { t.rt.FlushActivity() }

// cuptiStallNames mirrors the CUPTI PC-sampling stall taxonomy.
var cuptiStallNames = map[gpu.StallReason]string{
	gpu.StallNone:         "SELECTED",
	gpu.StallMathDep:      "EXEC_DEPENDENCY",
	gpu.StallMemDep:       "MEMORY_DEPENDENCY",
	gpu.StallConstMemMiss: "CONSTANT_MEMORY_DEPENDENCY",
	gpu.StallMemThrottle:  "MEMORY_THROTTLE",
	gpu.StallSync:         "SYNC",
	gpu.StallInstFetch:    "INST_FETCH",
	gpu.StallNotSelected:  "NOT_SELECTED",
}

// StallName renders r as CUPTI would.
func (t *Tracer) StallName(r gpu.StallReason) string {
	if n, ok := cuptiStallNames[r]; ok {
		return "CUPTI_ACTIVITY_PC_SAMPLING_STALL_" + n
	}
	return "CUPTI_ACTIVITY_PC_SAMPLING_STALL_INVALID"
}
