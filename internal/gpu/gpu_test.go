package gpu

import (
	"testing"
	"testing/quick"

	"deepcontext/internal/native"
	"deepcontext/internal/vtime"
)

func newNV(t *testing.T) (*Runtime, *native.AddressSpace) {
	t.Helper()
	as := native.NewAddressSpace()
	return NewRuntime(A100(), as), as
}

func bigKernel(name string) KernelSpec {
	return KernelSpec{
		Name:  name,
		Grid:  D3(1024),
		Block: D3(256),
		FLOPs: 1e9,
		Bytes: 1e7,
	}
}

func TestDurationRoofline(t *testing.T) {
	d := A100()
	k := bigKernel("gemm")
	// Compute-bound: 1e9 FLOPs / 156e12 FLOP/s = ~6.4us plus fixed cost.
	got := d.Duration(k)
	flops := k.FLOPs
	wantIdeal := vtime.Duration(flops / 156e12 * 1e9)
	if got < wantIdeal || got > wantIdeal+d.KernelFixedCost*2 {
		t.Fatalf("Duration = %v, want about %v + fixed", got, wantIdeal)
	}
	// Memory-bound variant.
	k.FLOPs = 1
	k.Bytes = 2e9 // 2GB / 2TB/s = 1ms
	got = d.Duration(k)
	if got < 900*vtime.Microsecond || got > 1200*vtime.Microsecond {
		t.Fatalf("mem-bound Duration = %v, want ~1ms", got)
	}
}

func TestDurationSerializationMultiplies(t *testing.T) {
	d := A100()
	k := bigKernel("index_backward")
	base := d.Duration(k) - d.KernelFixedCost
	k.Serialization = 10
	ser := d.Duration(k) - d.KernelFixedCost
	if ser < 9*base || ser > 11*base {
		t.Fatalf("serialization 10x gave %v vs base %v", ser, base)
	}
}

func TestOccupancySmallGridPenalty(t *testing.T) {
	d := A100()
	big := bigKernel("big")
	small := big
	small.Grid = D3(4) // 4 CTAs on 108 SMs
	if d.Occupancy(small) >= d.Occupancy(big) {
		t.Fatalf("small grid occupancy %v >= big %v", d.Occupancy(small), d.Occupancy(big))
	}
	if d.Duration(small) <= d.Duration(big) {
		t.Fatalf("small grid should be slower per work unit")
	}
}

func TestOccupancyWarpSizeEffect(t *testing.T) {
	// Same launch geometry computed with NV warp-32 CTAs on both devices:
	// on AMD the same thread count in fewer, larger CTAs lowers occupancy
	// when the grid is modest (the paper's §6.5 instance_norm case).
	nv, amd := A100(), MI250()
	k := KernelSpec{Name: "norm", Grid: D3(104), Block: Dim3{X: 512}, FLOPs: 1e8, Bytes: 1e8}
	occNV := nv.Occupancy(k)
	// AMD template reuses warp-scaled block: 16 waves * 64 lanes = 1024
	// threads, halving the CTA count.
	kAMD := KernelSpec{Name: "norm", Grid: D3(52), Block: Dim3{X: 1024}, FLOPs: 1e8, Bytes: 1e8}
	occAMD := amd.Occupancy(kAMD)
	if occAMD >= occNV {
		t.Fatalf("expected AMD occupancy < NV: %v vs %v", occAMD, occNV)
	}
}

func TestLaunchKernelAsyncOverlap(t *testing.T) {
	rt, as := newNV(t)
	var clk vtime.Clock
	st := native.NewStack(as)
	th := ThreadCtx{Clock: &clk, Stack: st}
	corr := rt.LaunchKernel(th, 0, bigKernel("k1"))
	if corr == 0 {
		t.Fatal("correlation id should be nonzero")
	}
	// CPU advanced only by launch latency, not kernel duration.
	if clk.Now() != vtime.Time(rt.Spec.LaunchLatency) {
		t.Fatalf("cpu time = %v, want launch latency only", clk.Now())
	}
	if rt.Frontier() <= clk.Now() {
		t.Fatal("kernel should still be executing after launch returns")
	}
	rt.Synchronize(th)
	if clk.Now() < rt.Frontier() {
		t.Fatalf("synchronize did not block: cpu %v < frontier %v", clk.Now(), rt.Frontier())
	}
}

func TestStreamSerialization(t *testing.T) {
	rt, as := newNV(t)
	var clk vtime.Clock
	th := ThreadCtx{Clock: &clk, Stack: native.NewStack(as)}
	rt.LaunchKernel(th, 0, bigKernel("a"))
	f1 := rt.StreamFrontier(0)
	rt.LaunchKernel(th, 0, bigKernel("b"))
	f2 := rt.StreamFrontier(0)
	if f2 <= f1 {
		t.Fatal("second kernel did not queue behind first")
	}
	// Separate stream overlaps.
	rt.LaunchKernel(th, 1, bigKernel("c"))
	if rt.StreamFrontier(1) >= f2 {
		t.Fatal("kernel on stream 1 should not queue behind stream 0")
	}
}

func TestActivityRecordsAndCorrelation(t *testing.T) {
	rt, as := newNV(t)
	var got []Activity
	rt.EnableActivity(1000, func(acts []Activity) { got = append(got, acts...) })
	var clk vtime.Clock
	th := ThreadCtx{Clock: &clk, Stack: native.NewStack(as)}
	var corrs []uint64
	rt.Subscribe(func(ev *APIEvent) {
		if ev.Site == SiteLaunchKernel && ev.Phase == native.Enter {
			corrs = append(corrs, ev.Correlation)
		}
	})
	c1 := rt.LaunchKernel(th, 0, bigKernel("a"))
	c2 := rt.LaunchKernel(th, 0, bigKernel("b"))
	rt.FlushActivity()
	if len(got) != 2 {
		t.Fatalf("activities = %d, want 2", len(got))
	}
	if got[0].Correlation != c1 || got[1].Correlation != c2 {
		t.Fatalf("correlation mismatch: %v vs (%d,%d)", got, c1, c2)
	}
	if len(corrs) != 2 || corrs[0] != c1 {
		t.Fatalf("callback correlations = %v", corrs)
	}
	if got[0].End <= got[0].Start {
		t.Fatal("activity has no duration")
	}
}

func TestActivityBufferFullFlushes(t *testing.T) {
	rt, as := newNV(t)
	flushes := 0
	total := 0
	rt.EnableActivity(2, func(acts []Activity) { flushes++; total += len(acts) })
	th := ThreadCtx{Clock: &vtime.Clock{}, Stack: native.NewStack(as)}
	for i := 0; i < 5; i++ {
		rt.LaunchKernel(th, 0, bigKernel("k"))
	}
	if flushes != 2 {
		t.Fatalf("flushes = %d, want 2 (buffer cap 2, 5 launches)", flushes)
	}
	rt.FlushActivity()
	if total != 5 {
		t.Fatalf("total records = %d, want 5", total)
	}
}

func TestAPICallbackStackVisibility(t *testing.T) {
	rt, as := newNV(t)
	st := native.NewStack(as)
	caller := as.AddSymbol(as.LoadLibrary("libtorch.so", 1<<20), "at::conv2d", 0, "", 0)
	st.Push(caller)
	var topName string
	rt.Subscribe(func(ev *APIEvent) {
		if ev.Phase == native.Enter && ev.Site == SiteLaunchKernel {
			topName = ev.Thread.Stack.Top().Sym.Name
		}
	})
	rt.LaunchKernel(ThreadCtx{Clock: &vtime.Clock{}, Stack: st}, 0, bigKernel("k"))
	if topName != "cudaLaunchKernel" {
		t.Fatalf("callback saw top frame %q, want cudaLaunchKernel", topName)
	}
	if st.Top().Sym != caller {
		t.Fatal("API frame not popped after call")
	}
}

func TestMallocFreeTracking(t *testing.T) {
	rt, as := newNV(t)
	th := ThreadCtx{Clock: &vtime.Clock{}, Stack: native.NewStack(as)}
	rt.Malloc(th, 1000)
	rt.Malloc(th, 500)
	rt.Free(th, 1000)
	s := rt.Stats()
	if s.MemUsed != 500 || s.MemPeak != 1500 {
		t.Fatalf("mem used=%d peak=%d, want 500/1500", s.MemUsed, s.MemPeak)
	}
}

func TestMemcpyDuration(t *testing.T) {
	rt, as := newNV(t)
	var acts []Activity
	rt.EnableActivity(10, func(a []Activity) { acts = append(acts, a...) })
	th := ThreadCtx{Clock: &vtime.Clock{}, Stack: native.NewStack(as)}
	rt.Memcpy(th, 0, SiteMemcpyH2D, 25<<20) // 25MB over 25GB/s ≈ 1ms
	rt.FlushActivity()
	if len(acts) != 1 {
		t.Fatalf("acts = %d", len(acts))
	}
	d := acts[0].Duration()
	if d < 900*vtime.Microsecond || d > 1200*vtime.Microsecond {
		t.Fatalf("h2d duration = %v, want ~1ms", d)
	}
}

func TestMemcpyBadSitePanics(t *testing.T) {
	rt, as := newNV(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rt.Memcpy(ThreadCtx{Clock: &vtime.Clock{}, Stack: native.NewStack(as)}, 0, SiteMalloc, 10)
}

func TestKernelSymbolInterned(t *testing.T) {
	rt, _ := newNV(t)
	a := rt.KernelSymbol("elementwise_kernel")
	b := rt.KernelSymbol("elementwise_kernel")
	if a != b {
		t.Fatal("kernel symbols not interned")
	}
	if !rt.DeviceCodeLibrary().Contains(a.Addr) {
		t.Fatal("kernel symbol outside device code library")
	}
}

func TestPCSamplingCountsMatchDuration(t *testing.T) {
	rt, as := newNV(t)
	rt.EnablePCSampling(10 * vtime.Microsecond)
	var acts []Activity
	rt.EnableActivity(10, func(a []Activity) { acts = append(acts, a...) })
	th := ThreadCtx{Clock: &vtime.Clock{}, Stack: native.NewStack(as)}
	k := bigKernel("sampled")
	k.Bytes = 2e9 // ~1ms => ~100 samples
	rt.LaunchKernel(th, 0, k)
	rt.FlushActivity()
	var total int64
	for _, s := range acts[0].Samples {
		total += s.Count
	}
	wantTotal := int64(acts[0].Duration() / (10 * vtime.Microsecond))
	if total != wantTotal {
		t.Fatalf("sample total = %d, want %d", total, wantTotal)
	}
	for _, s := range acts[0].Samples {
		if !rt.DeviceCodeLibrary().Contains(s.PC) {
			t.Fatalf("sample PC %#x outside device code", s.PC)
		}
	}
}

func TestPCSamplingConstHeavySkew(t *testing.T) {
	rt, as := newNV(t)
	rt.EnablePCSampling(vtime.Microsecond)
	var acts []Activity
	rt.EnableActivity(10, func(a []Activity) { acts = append(acts, a...) })
	th := ThreadCtx{Clock: &vtime.Clock{}, Stack: native.NewStack(as)}
	k := bigKernel("rmsnorm_cast")
	k.ConstHeavy = true
	k.Bytes = 1e9
	rt.LaunchKernel(th, 0, k)
	rt.FlushActivity()
	byStall := map[StallReason]int64{}
	for _, s := range acts[0].Samples {
		byStall[s.Stall] += s.Count
	}
	if byStall[StallConstMemMiss] == 0 {
		t.Fatal("const-heavy kernel produced no constant-memory-miss samples")
	}
	for r, c := range byStall {
		if r != StallConstMemMiss && c > byStall[StallConstMemMiss] {
			t.Fatalf("stall %v (%d) dominates const misses (%d)", r, c, byStall[StallConstMemMiss])
		}
	}
}

// Property: largest-remainder sample apportionment conserves the total for
// arbitrary positive mixes.
func TestSampleApportionmentProperty(t *testing.T) {
	rt, _ := newNV(t)
	rt.EnablePCSampling(vtime.Microsecond)
	sym := rt.KernelSymbol("prop")
	f := func(ws []uint8, durUS uint16) bool {
		if len(ws) == 0 || durUS == 0 {
			return true
		}
		if len(ws) > 12 {
			ws = ws[:12]
		}
		var mix InstMix
		for i, w := range ws {
			mix = append(mix, InstGroup{Weight: float64(w%50) + 0.5, Stall: StallReason(i % 8)})
		}
		dur := vtime.Duration(durUS) * vtime.Microsecond
		samples := rt.sampleKernel(KernelSpec{Name: "prop", Mix: mix}, sym, dur)
		var total int64
		for _, s := range samples {
			total += s.Count
		}
		want := int64(dur / rt.samplePeriod)
		if want < 1 {
			want = 1
		}
		return total == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounters(t *testing.T) {
	rt, as := newNV(t)
	th := ThreadCtx{Clock: &vtime.Clock{}, Stack: native.NewStack(as)}
	rt.LaunchKernel(th, 0, bigKernel("a"))
	rt.Memcpy(th, 0, SiteMemcpyH2D, 100)
	rt.Synchronize(th)
	s := rt.Stats()
	if s.KernelCount != 1 || s.MemcpyCount != 1 || s.APICallCount != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.TotalKernelTime <= 0 {
		t.Fatal("no kernel time accumulated")
	}
}

func TestDim3(t *testing.T) {
	if (Dim3{}).Volume() != 1 {
		t.Fatal("zero Dim3 volume should be 1")
	}
	if (Dim3{X: 2, Y: 3, Z: 4}).Volume() != 24 {
		t.Fatal("volume wrong")
	}
	if D3(7).Volume() != 7 {
		t.Fatal("D3 wrong")
	}
}
