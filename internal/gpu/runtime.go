package gpu

import (
	"fmt"
	"sort"

	"deepcontext/internal/native"
	"deepcontext/internal/vtime"
)

// ActivityKind enumerates the asynchronous activity record kinds the runtime
// reports, mirroring CUPTI_ACTIVITY_KIND_* / roctracer HIP ops.
type ActivityKind int

const (
	// ActivityKernel is a kernel execution record.
	ActivityKernel ActivityKind = iota
	// ActivityMemcpy is a memory copy record.
	ActivityMemcpy
	// ActivityMemset is a memory set record.
	ActivityMemset
	// ActivityMalloc is a device allocation record.
	ActivityMalloc
	// ActivityFree is a device free record.
	ActivityFree
)

// String names the activity kind.
func (k ActivityKind) String() string {
	switch k {
	case ActivityKernel:
		return "kernel"
	case ActivityMemcpy:
		return "memcpy"
	case ActivityMemset:
		return "memset"
	case ActivityMalloc:
		return "malloc"
	case ActivityFree:
		return "free"
	}
	return "unknown"
}

// PCSample is one aggregated instruction sample inside a kernel: a device
// program counter, the stall reason observed, and how many samples hit it.
type PCSample struct {
	PC    native.Addr
	Stall StallReason
	Count int64
}

// Activity is an asynchronous GPU activity record delivered postmortem
// through the activity buffer, matched to the launching API call by
// Correlation.
type Activity struct {
	Kind           ActivityKind
	Correlation    uint64
	Name           string
	Start, End     vtime.Time
	Stream         int
	Grid, Block    Dim3
	SharedMemBytes int
	RegsPerThread  int
	Bytes          int64
	KernelSym      *native.Symbol
	Samples        []PCSample
}

// Duration returns End-Start.
func (a Activity) Duration() vtime.Duration { return a.End.Sub(a.Start) }

// APISite enumerates the driver API entry points that deliver synchronous
// callbacks (the CUPTI callback / roctracer HIP-API domain).
type APISite int

const (
	// SiteLaunchKernel is cudaLaunchKernel / hipModuleLaunchKernel.
	SiteLaunchKernel APISite = iota
	// SiteMemcpyH2D is a host-to-device copy.
	SiteMemcpyH2D
	// SiteMemcpyD2H is a device-to-host copy.
	SiteMemcpyD2H
	// SiteMemcpyD2D is a device-to-device copy.
	SiteMemcpyD2D
	// SiteMalloc is cudaMalloc / hipMalloc.
	SiteMalloc
	// SiteFree is cudaFree / hipFree.
	SiteFree
	// SiteSynchronize is cudaDeviceSynchronize / hipDeviceSynchronize.
	SiteSynchronize
)

// String names the site vendor-neutrally.
func (s APISite) String() string {
	switch s {
	case SiteLaunchKernel:
		return "LaunchKernel"
	case SiteMemcpyH2D:
		return "MemcpyH2D"
	case SiteMemcpyD2H:
		return "MemcpyD2H"
	case SiteMemcpyD2D:
		return "MemcpyD2D"
	case SiteMalloc:
		return "Malloc"
	case SiteFree:
		return "Free"
	case SiteSynchronize:
		return "Synchronize"
	}
	return "unknown"
}

// ThreadCtx carries the launching CPU thread's state into driver calls so the
// runtime can charge CPU-side latency and expose the API frame to unwinds
// from inside callbacks.
type ThreadCtx struct {
	Clock *vtime.Clock
	Stack *native.Stack
}

// APIEvent is delivered synchronously to subscribers at entry and exit of
// every driver API call.
type APIEvent struct {
	Site        APISite
	Phase       native.Phase
	Correlation uint64
	Thread      ThreadCtx
	Kernel      *KernelSpec    // non-nil for SiteLaunchKernel
	KernelSym   *native.Symbol // device-code symbol for the kernel
	Bytes       int64          // memcpy/malloc/free size
	Stream      int
}

// APICallback observes driver API events.
type APICallback func(*APIEvent)

type stream struct {
	id       int
	frontier vtime.Time
}

// Stats summarizes a runtime's execution for evaluation harnesses.
type Stats struct {
	KernelCount     int64
	MemcpyCount     int64
	APICallCount    int64
	TotalKernelTime vtime.Duration
	MemUsed         int64
	MemPeak         int64
}

// Runtime is one simulated GPU device runtime (driver + device). It is the
// substrate under the cupti and roctracer adapter packages.
type Runtime struct {
	Spec DeviceSpec

	as      *native.AddressSpace
	apiLib  *native.Library
	devLib  *native.Library
	apiSyms map[APISite]*native.Symbol
	kerns   map[string]*native.Symbol

	streams map[int]*stream
	subs    []APICallback
	corr    uint64

	activityOn   bool
	actBuf       []Activity
	actSpare     []Activity
	actCap       int
	flushFn      func([]Activity)
	pcSampling   bool
	samplePeriod vtime.Duration

	stats Stats
}

// apiSymbolNames returns vendor-appropriate driver API symbol names.
func apiSymbolNames(v Vendor) (lib string, names map[APISite]string) {
	if v == VendorAMD {
		return "libamdhip64.so", map[APISite]string{
			SiteLaunchKernel: "hipModuleLaunchKernel",
			SiteMemcpyH2D:    "hipMemcpyHtoD",
			SiteMemcpyD2H:    "hipMemcpyDtoH",
			SiteMemcpyD2D:    "hipMemcpyDtoD",
			SiteMalloc:       "hipMalloc",
			SiteFree:         "hipFree",
			SiteSynchronize:  "hipDeviceSynchronize",
		}
	}
	return "libcudart.so", map[APISite]string{
		SiteLaunchKernel: "cudaLaunchKernel",
		SiteMemcpyH2D:    "cudaMemcpyAsync[HtoD]",
		SiteMemcpyD2H:    "cudaMemcpyAsync[DtoH]",
		SiteMemcpyD2D:    "cudaMemcpyAsync[DtoD]",
		SiteMalloc:       "cudaMalloc",
		SiteFree:         "cudaFree",
		SiteSynchronize:  "cudaDeviceSynchronize",
	}
}

// NewRuntime creates a device runtime, mapping its driver library and a
// pseudo-library holding device code (kernel symbols and sampled PCs) into
// the process address space.
func NewRuntime(spec DeviceSpec, as *native.AddressSpace) *Runtime {
	libName, names := apiSymbolNames(spec.Vendor)
	r := &Runtime{
		Spec:    spec,
		as:      as,
		apiLib:  as.LoadLibrary(libName, 8<<20),
		devLib:  as.LoadLibrary("[gpu device code]", 64<<20),
		apiSyms: make(map[APISite]*native.Symbol),
		kerns:   make(map[string]*native.Symbol),
		streams: make(map[int]*stream),
		actCap:  4096,
	}
	// Sites are laid out in enum order so symbol addresses — and with them
	// profile files — are identical from run to run.
	for site := SiteLaunchKernel; site <= SiteSynchronize; site++ {
		r.apiSyms[site] = as.AddSymbol(r.apiLib, names[site], 512, "", 0)
	}
	return r
}

// AddressSpace returns the process address space the runtime is mapped in.
func (r *Runtime) AddressSpace() *native.AddressSpace { return r.as }

// APISymbol returns the driver symbol for a site.
func (r *Runtime) APISymbol(site APISite) *native.Symbol { return r.apiSyms[site] }

// DeviceCodeLibrary returns the pseudo-library holding kernel code.
func (r *Runtime) DeviceCodeLibrary() *native.Library { return r.devLib }

// KernelSymbol interns a device-code symbol for the named kernel; repeated
// launches of the same kernel share one symbol, as a loaded cubin would.
func (r *Runtime) KernelSymbol(name string) *native.Symbol {
	if s, ok := r.kerns[name]; ok {
		return s
	}
	s := r.as.AddSymbol(r.devLib, name, 4096, "", 0)
	r.kerns[name] = s
	return s
}

// Subscribe registers cb for synchronous driver API callbacks.
func (r *Runtime) Subscribe(cb APICallback) { r.subs = append(r.subs, cb) }

// EnableActivity turns on asynchronous activity records. flush is invoked
// with a full buffer whenever bufCap records accumulate and once more on
// FlushActivity. The slice is borrowed: it is only valid for the duration
// of the callback, because the runtime recycles the backing array for the
// next buffer generation — exactly how CUPTI hands buffers back through
// bufferCompleted and expects them re-registered. Callbacks that retain
// records must copy them out.
func (r *Runtime) EnableActivity(bufCap int, flush func([]Activity)) {
	if bufCap <= 0 {
		bufCap = 4096
	}
	r.activityOn = true
	r.actCap = bufCap
	r.flushFn = flush
}

// EnablePCSampling turns on instruction sampling: each kernel activity
// carries PC samples, one per period of kernel execution time.
func (r *Runtime) EnablePCSampling(period vtime.Duration) {
	if period <= 0 {
		period = 10 * vtime.Microsecond
	}
	r.pcSampling = true
	r.samplePeriod = period
}

// FlushActivity forces delivery of buffered activity records. The flushed
// buffer's backing array is recycled once the callback returns.
func (r *Runtime) FlushActivity() {
	if len(r.actBuf) == 0 || r.flushFn == nil {
		return
	}
	buf := r.actBuf
	r.actBuf = nil
	r.flushFn(buf)
	// The callback has returned; its borrow is over. Clear record
	// pointers so recycled slots don't pin symbols or sample slices.
	for i := range buf {
		buf[i] = Activity{}
	}
	r.actSpare = buf[:0]
}

// Stats returns execution counters.
func (r *Runtime) Stats() Stats { return r.stats }

func (r *Runtime) getStream(id int) *stream {
	s, ok := r.streams[id]
	if !ok {
		s = &stream{id: id}
		r.streams[id] = s
	}
	return s
}

// StreamFrontier reports when the given stream becomes idle.
func (r *Runtime) StreamFrontier(id int) vtime.Time { return r.getStream(id).frontier }

// Frontier reports when the whole device becomes idle.
func (r *Runtime) Frontier() vtime.Time {
	var t vtime.Time
	for _, s := range r.streams {
		t = vtime.MaxTime(t, s.frontier)
	}
	return t
}

func (r *Runtime) record(a Activity) {
	if !r.activityOn {
		return
	}
	if r.actBuf == nil && r.actSpare != nil {
		r.actBuf, r.actSpare = r.actSpare, nil
	}
	r.actBuf = append(r.actBuf, a)
	if len(r.actBuf) >= r.actCap {
		r.FlushActivity()
	}
}

func (r *Runtime) emit(ev *APIEvent) {
	for _, cb := range r.subs {
		cb(ev)
	}
}

// enterAPI pushes the driver API frame, charges launch latency, and emits the
// enter callback. It returns the correlation ID assigned to the call.
func (r *Runtime) enterAPI(th ThreadCtx, ev *APIEvent) uint64 {
	r.corr++
	ev.Correlation = r.corr
	ev.Phase = native.Enter
	ev.Thread = th
	r.stats.APICallCount++
	if th.Stack != nil {
		th.Stack.Push(r.apiSyms[ev.Site])
	}
	r.emit(ev)
	if th.Clock != nil {
		th.Clock.Advance(r.Spec.LaunchLatency)
	}
	return ev.Correlation
}

func (r *Runtime) exitAPI(th ThreadCtx, ev *APIEvent) {
	ev.Phase = native.Exit
	r.emit(ev)
	if th.Stack != nil {
		th.Stack.Pop()
	}
}

// LaunchKernel performs an asynchronous kernel launch on the given stream and
// returns the correlation ID.
func (r *Runtime) LaunchKernel(th ThreadCtx, streamID int, spec KernelSpec) uint64 {
	sym := r.KernelSymbol(spec.Name)
	ev := &APIEvent{Site: SiteLaunchKernel, Kernel: &spec, KernelSym: sym, Stream: streamID}
	corr := r.enterAPI(th, ev)

	dur := r.Spec.Duration(spec)
	var cpuNow vtime.Time
	if th.Clock != nil {
		cpuNow = th.Clock.Now()
	}
	s := r.getStream(streamID)
	start := vtime.MaxTime(s.frontier, cpuNow.Add(r.Spec.DispatchDelay))
	end := start.Add(dur)
	s.frontier = end
	r.stats.KernelCount++
	r.stats.TotalKernelTime += dur

	act := Activity{
		Kind:           ActivityKernel,
		Correlation:    corr,
		Name:           spec.Name,
		Start:          start,
		End:            end,
		Stream:         streamID,
		Grid:           spec.Grid,
		Block:          spec.Block,
		SharedMemBytes: spec.SharedMemBytes,
		RegsPerThread:  spec.RegsPerThread,
		KernelSym:      sym,
	}
	if r.pcSampling {
		act.Samples = r.sampleKernel(spec, sym, dur)
	}
	r.record(act)
	r.exitAPI(th, ev)
	return corr
}

// Memcpy performs an asynchronous copy on the given stream.
func (r *Runtime) Memcpy(th ThreadCtx, streamID int, site APISite, bytes int64) uint64 {
	if site != SiteMemcpyH2D && site != SiteMemcpyD2H && site != SiteMemcpyD2D {
		panic(fmt.Sprintf("gpu: Memcpy with non-copy site %v", site))
	}
	ev := &APIEvent{Site: site, Bytes: bytes, Stream: streamID}
	corr := r.enterAPI(th, ev)

	bw := r.Spec.PCIeGBps
	if site == SiteMemcpyD2D {
		bw = r.Spec.MemBWGBps / 2 // read + write
	}
	dur := vtime.Duration(float64(bytes)/(bw*1e9)*1e9) + r.Spec.KernelFixedCost/2
	var cpuNow vtime.Time
	if th.Clock != nil {
		cpuNow = th.Clock.Now()
	}
	s := r.getStream(streamID)
	start := vtime.MaxTime(s.frontier, cpuNow.Add(r.Spec.DispatchDelay))
	end := start.Add(dur)
	s.frontier = end
	r.stats.MemcpyCount++

	r.record(Activity{
		Kind:        ActivityMemcpy,
		Correlation: corr,
		Name:        site.String(),
		Start:       start,
		End:         end,
		Stream:      streamID,
		Bytes:       bytes,
	})
	r.exitAPI(th, ev)
	return corr
}

// Malloc allocates device memory, tracking usage and peak.
func (r *Runtime) Malloc(th ThreadCtx, bytes int64) uint64 {
	ev := &APIEvent{Site: SiteMalloc, Bytes: bytes}
	corr := r.enterAPI(th, ev)
	r.stats.MemUsed += bytes
	if r.stats.MemUsed > r.stats.MemPeak {
		r.stats.MemPeak = r.stats.MemUsed
	}
	var now vtime.Time
	if th.Clock != nil {
		now = th.Clock.Now()
	}
	r.record(Activity{Kind: ActivityMalloc, Correlation: corr, Name: "malloc", Start: now, End: now, Bytes: bytes})
	r.exitAPI(th, ev)
	return corr
}

// Free releases device memory.
func (r *Runtime) Free(th ThreadCtx, bytes int64) uint64 {
	ev := &APIEvent{Site: SiteFree, Bytes: bytes}
	corr := r.enterAPI(th, ev)
	r.stats.MemUsed -= bytes
	var now vtime.Time
	if th.Clock != nil {
		now = th.Clock.Now()
	}
	r.record(Activity{Kind: ActivityFree, Correlation: corr, Name: "free", Start: now, End: now, Bytes: bytes})
	r.exitAPI(th, ev)
	return corr
}

// Synchronize blocks the calling thread until all streams drain.
func (r *Runtime) Synchronize(th ThreadCtx) {
	ev := &APIEvent{Site: SiteSynchronize}
	r.enterAPI(th, ev)
	if th.Clock != nil {
		th.Clock.AdvanceTo(r.Frontier())
	}
	r.exitAPI(th, ev)
}

// SynchronizeStream blocks the calling thread until one stream drains.
func (r *Runtime) SynchronizeStream(th ThreadCtx, streamID int) {
	ev := &APIEvent{Site: SiteSynchronize, Stream: streamID}
	r.enterAPI(th, ev)
	if th.Clock != nil {
		th.Clock.AdvanceTo(r.getStream(streamID).frontier)
	}
	r.exitAPI(th, ev)
}

// sampleKernel synthesizes deterministic PC samples for one kernel execution:
// total sample count is duration/period (at least one), distributed across
// the instruction mix by largest-remainder apportionment, with each group
// mapped to a distinct PC inside the kernel's device symbol.
func (r *Runtime) sampleKernel(spec KernelSpec, sym *native.Symbol, dur vtime.Duration) []PCSample {
	total := int64(dur / r.samplePeriod)
	if total < 1 {
		total = 1
	}
	mix := spec.Mix
	if len(mix) == 0 {
		mix = synthesizeMix(spec)
	}
	var wsum float64
	for _, g := range mix {
		wsum += g.Weight
	}
	if wsum <= 0 {
		return nil
	}
	type share struct {
		i     int
		count int64
		frac  float64
	}
	shares := make([]share, len(mix))
	var assigned int64
	for i, g := range mix {
		exact := float64(total) * g.Weight / wsum
		c := int64(exact)
		shares[i] = share{i: i, count: c, frac: exact - float64(c)}
		assigned += c
	}
	sort.SliceStable(shares, func(a, b int) bool { return shares[a].frac > shares[b].frac })
	for k := 0; assigned < total && k < len(shares); k++ {
		shares[k].count++
		assigned++
	}
	sort.SliceStable(shares, func(a, b int) bool { return shares[a].i < shares[b].i })
	var out []PCSample
	for _, sh := range shares {
		if sh.count == 0 {
			continue
		}
		g := mix[sh.i]
		out = append(out, PCSample{
			PC:    sym.Addr + native.Addr(16+sh.i*64),
			Stall: g.Stall,
			Count: sh.count,
		})
	}
	return out
}

// synthesizeMix derives a plausible instruction mix from a kernel's
// characteristics when the workload did not specify one.
func synthesizeMix(spec KernelSpec) InstMix {
	if spec.ConstHeavy {
		return InstMix{
			{Weight: 0.40, Stall: StallConstMemMiss},
			{Weight: 0.30, Stall: StallMathDep},
			{Weight: 0.20, Stall: StallNone},
			{Weight: 0.10, Stall: StallMemDep},
		}
	}
	compute := spec.FLOPs
	mem := spec.Bytes * 10 // weight bytes as instruction-equivalents
	if compute >= mem {
		return InstMix{
			{Weight: 0.45, Stall: StallNone},
			{Weight: 0.30, Stall: StallMathDep},
			{Weight: 0.15, Stall: StallNotSelected},
			{Weight: 0.10, Stall: StallMemDep},
		}
	}
	return InstMix{
		{Weight: 0.35, Stall: StallMemDep},
		{Weight: 0.25, Stall: StallMemThrottle},
		{Weight: 0.25, Stall: StallNone},
		{Weight: 0.15, Stall: StallMathDep},
	}
}
