package profdb

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"testing"

	"deepcontext/internal/cct"
	"deepcontext/internal/profiler"
)

// deltaSeeds builds the v3 fuzz corpus: valid full and delta batches, a
// wrong-epoch delta, a corrupted-parent delta, truncations, and garbage.
func deltaSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	enc := NewDeltaEncoder()
	base := sampleProfile()
	cur := cloneProfile(tb, base)
	addKernelSamples(cur, "aten::conv2d", 0x2000, 7)

	full, err := enc.EncodeFull(base, 1, 1)
	if err != nil {
		tb.Fatal(err)
	}
	delta, ok, err := enc.EncodeDelta(base, cur, 1, 2)
	if err != nil || !ok {
		tb.Fatal("seed delta did not encode")
	}
	wrongEpoch := delta
	wrongEpoch.Epoch = 99
	badParent := delta
	badParent.Nodes = append([]DeltaNode(nil), delta.Nodes...)
	if len(badParent.Nodes) > 1 {
		badParent.Nodes[1].Parent = 1 << 20
	}

	pack := func(frames ...StreamFrame) []byte {
		var buf bytes.Buffer
		genc := gob.NewEncoder(&buf)
		if err := WriteBatch(genc, &StreamBatch{Seq: 1, Frames: frames}); err != nil {
			tb.Fatal(err)
		}
		return buf.Bytes()
	}
	valid := pack(full, delta)
	return [][]byte{
		valid,
		pack(full),
		pack(delta),
		pack(wrongEpoch),
		pack(badParent),
		pack(full, wrongEpoch, delta),
		valid[:len(valid)/2],
		[]byte("not a stream"),
		{},
	}
}

// FuzzDeltaDecode asserts the receiver's contract over arbitrary stream
// bytes: batch decoding and frame application never panic, and every
// failure is one of the typed errors an ingest boundary dispatches on
// (ErrCorrupt, ErrStaleBase, ErrTooLarge).
func FuzzDeltaDecode(f *testing.F) {
	for _, seed := range deltaSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDeltaDecoder()
		dec.MaxBytes = 1 << 20
		cursors := make(map[string]*SeriesCursor)
		gdec := gob.NewDecoder(bytes.NewReader(data))
		for batches := 0; batches < 64; batches++ {
			b, err := ReadBatch(gdec)
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("undecodable batch gave untyped error: %v", err)
				}
				return
			}
			for i := range b.Frames {
				fr := &b.Frames[i]
				if err := dec.AddFrames(fr); err != nil {
					if !errors.Is(err, ErrCorrupt) {
						t.Fatalf("AddFrames untyped error: %v", err)
					}
					return
				}
				key := fr.Meta.Workload + "/" + fr.Meta.Vendor + "/" + fr.Meta.Framework
				cur := cursors[key]
				if cur == nil {
					cur = &SeriesCursor{}
					cursors[key] = cur
				}
				p, err := dec.Apply(cur, fr)
				if err != nil {
					if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrStaleBase) && !errors.Is(err, ErrTooLarge) {
						t.Fatalf("Apply untyped error: %v", err)
					}
					continue
				}
				if p == nil || p.Tree == nil {
					t.Fatal("Apply accepted a frame but returned no profile")
				}
			}
		}
	})
}

// fuzzGrow derives deterministic append-only growth from fuzz bytes: each
// 3-byte chunk adds samples on one of a small alphabet of call paths. Both
// metric names are interned up front so a grown clone keeps the schema
// prefix property.
func fuzzGrow(t *cct.Tree, data []byte) {
	m0 := t.MetricID("m0")
	m1 := t.MetricID("m1")
	for len(data) >= 3 {
		a, b, v := data[0], data[1], data[2]
		data = data[3:]
		path := []cct.Frame{
			cct.OperatorFrame(fmt.Sprintf("op%d", a%5)),
			{Kind: cct.KindKernel, Name: fmt.Sprintf("k%d", b%5), Lib: "[gpu]", PC: 0x100 + uint64(b%5)*16},
		}
		if a%3 == 0 {
			path = append([]cct.Frame{cct.PythonFrame("train.py", int(a%7), "main")}, path...)
		}
		leaf := t.InsertPath(path)
		mid := m0
		if v%2 == 1 {
			mid = m1
		}
		t.AddMetric(leaf, mid, float64(v))
	}
}

// FuzzDeltaRoundTrip asserts the codec's algebra: for any append-only
// growth from a to b, the delta encodes (no fallback), and applying it to
// a materializes exactly b — same checksum, equivalent trees.
func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1, 2, 3}, []byte{4, 5, 6})
	f.Add([]byte{0, 0, 0, 9, 9, 9}, []byte{0, 0, 0})
	f.Add([]byte{7, 1, 200, 3, 3, 3}, []byte{7, 1, 200, 250, 250, 250, 1, 2, 3})
	f.Fuzz(func(t *testing.T, baseOps, growOps []byte) {
		if len(baseOps) > 4096 || len(growOps) > 4096 {
			return
		}
		base := &profiler.Profile{
			Tree: cct.New(),
			Meta: profiler.Meta{Workload: "fuzz", Vendor: "nvidia", Framework: "pytorch"},
		}
		fuzzGrow(base.Tree, baseOps)
		cur := cloneProfile(t, base)
		fuzzGrow(cur.Tree, growOps)
		cur.Meta.Iterations = len(growOps)

		enc := NewDeltaEncoder()
		dec := NewDeltaDecoder()
		cursor := establish(t, enc, dec, base, 1, 1)
		fr, ok, err := enc.EncodeDelta(base, cur, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("append-only growth must delta-encode")
		}
		if err := dec.AddFrames(&fr); err != nil {
			t.Fatal(err)
		}
		got, err := dec.Apply(cursor, &fr)
		if err != nil {
			t.Fatal(err)
		}
		if Checksum(got) != Checksum(cur) {
			t.Fatal("materialized checksum differs")
		}
		if err := cct.Equivalent(got.Tree, cur.Tree); err != nil {
			t.Fatalf("materialized tree differs: %v", err)
		}
	})
}
