package profdb

import (
	"bytes"
	"encoding/gob"
	"errors"
	"io"
	"testing"

	"deepcontext/internal/cct"
	"deepcontext/internal/profiler"
)

// cloneProfile deep-copies p through the v2 codec — byte-exact structure,
// order and aggregates, like a client keeping its last acknowledged upload.
func cloneProfile(tb testing.TB, p *profiler.Profile) *profiler.Profile {
	tb.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, p); err != nil {
		tb.Fatal(err)
	}
	out, err := Load(&buf)
	if err != nil {
		tb.Fatal(err)
	}
	return out
}

// addKernelSamples grows p the way a continuous profiler does between
// uploads: more samples on one existing kernel path.
func addKernelSamples(p *profiler.Profile, op string, pc uint64, v float64) {
	gid := p.Tree.MetricID(cct.MetricGPUTime)
	leaf := p.Tree.InsertPath([]cct.Frame{
		cct.PythonFrame("train.py", 10, "main"),
		cct.OperatorFrame(op),
		{Kind: cct.KindKernel, Name: "k", Lib: "[gpu]", PC: pc},
	})
	p.Tree.AddMetric(leaf, gid, v)
}

// establish runs a full upload through enc/dec and returns the cursor.
func establish(tb testing.TB, enc *DeltaEncoder, dec *DeltaDecoder, p *profiler.Profile, epoch, seq uint64) *SeriesCursor {
	tb.Helper()
	f, err := enc.EncodeFull(p, epoch, seq)
	if err != nil {
		tb.Fatal(err)
	}
	cur := &SeriesCursor{}
	if err := dec.AddFrames(&f); err != nil {
		tb.Fatal(err)
	}
	if _, err := dec.Apply(cur, &f); err != nil {
		tb.Fatal(err)
	}
	return cur
}

func applyDelta(tb testing.TB, enc *DeltaEncoder, dec *DeltaDecoder, cur *SeriesCursor, base, next *profiler.Profile, epoch, seq uint64) (*profiler.Profile, StreamFrame) {
	tb.Helper()
	f, ok, err := enc.EncodeDelta(base, next, epoch, seq)
	if err != nil {
		tb.Fatal(err)
	}
	if !ok {
		tb.Fatal("delta encoding unexpectedly fell back")
	}
	if err := dec.AddFrames(&f); err != nil {
		tb.Fatal(err)
	}
	got, err := dec.Apply(cur, &f)
	if err != nil {
		tb.Fatal(err)
	}
	return got, f
}

func gobSize(tb testing.TB, v any) int {
	tb.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		tb.Fatal(err)
	}
	return buf.Len()
}

func TestDeltaRoundTrip(t *testing.T) {
	base := sampleProfile()
	cur := cloneProfile(t, base)
	// Steady-state growth: more samples on an existing path, a brand-new
	// subtree, and a new metric name.
	addKernelSamples(cur, "aten::conv2d", 0x2000, 77)
	addKernelSamples(cur, "aten::softmax", 0x3000, 33)
	mid := cur.Tree.MetricID("sm_occupancy")
	cur.Tree.AddMetric(cur.Tree.Root, mid, 0.5)
	cur.Meta.Iterations = 250
	cur.Stats.SamplesAttributed = 9000

	enc := NewDeltaEncoder()
	dec := NewDeltaDecoder()
	cursor := establish(t, enc, dec, base, 1, 1)
	got, f := applyDelta(t, enc, dec, cursor, base, cur, 1, 2)

	if got.Meta != cur.Meta {
		t.Fatalf("meta = %+v, want %+v", got.Meta, cur.Meta)
	}
	if got.Stats != cur.Stats {
		t.Fatalf("stats = %+v", got.Stats)
	}
	if Checksum(got) != Checksum(cur) {
		t.Fatal("materialized checksum differs from sender's")
	}
	if err := cct.Equivalent(got.Tree, cur.Tree); err != nil {
		t.Fatalf("materialized tree differs: %v", err)
	}
	// Insertion order is reconstructed exactly, not just up to equivalence.
	var wantOrder, gotOrder []string
	cur.Tree.Visit(func(n *cct.Node) { wantOrder = append(wantOrder, n.Frame.Key()) })
	got.Tree.Visit(func(n *cct.Node) { gotOrder = append(gotOrder, n.Frame.Key()) })
	if len(wantOrder) != len(gotOrder) {
		t.Fatalf("node count %d vs %d", len(gotOrder), len(wantOrder))
	}
	for i := range wantOrder {
		if wantOrder[i] != gotOrder[i] {
			t.Fatalf("DFS position %d: %q vs %q", i, gotOrder[i], wantOrder[i])
		}
	}

	full, err := enc.EncodeFull(cur, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ds, fs := gobSize(t, &f), gobSize(t, &full); ds >= fs {
		t.Fatalf("delta frame (%d B) not smaller than full frame (%d B)", ds, fs)
	}
}

func TestDeltaNoChangeIsTiny(t *testing.T) {
	base := sampleProfile()
	cur := cloneProfile(t, base)
	cur.Meta.Iterations++ // metadata moves every interval; the tree does not

	enc := NewDeltaEncoder()
	dec := NewDeltaDecoder()
	cursor := establish(t, enc, dec, base, 1, 1)
	got, f := applyDelta(t, enc, dec, cursor, base, cur, 1, 2)
	if len(f.Nodes) != 0 || len(f.NewFrames) != 0 {
		t.Fatalf("unchanged tree emitted %d nodes, %d frames", len(f.Nodes), len(f.NewFrames))
	}
	if got.Meta.Iterations != cur.Meta.Iterations {
		t.Fatal("metadata not applied")
	}
	if Checksum(got) != Checksum(cur) {
		t.Fatal("checksum moved on a no-op delta")
	}
}

// The dictionary is per session: frames shipped once are referenced by ID
// in every later delta.
func TestDeltaDictionaryPersistsAcrossFrames(t *testing.T) {
	base := sampleProfile()
	enc := NewDeltaEncoder()
	dec := NewDeltaDecoder()
	cursor := establish(t, enc, dec, base, 1, 1)

	prev := base
	for seq := uint64(2); seq <= 4; seq++ {
		next := cloneProfile(t, prev)
		addKernelSamples(next, "aten::conv2d", 0x2000, float64(seq))
		_, f := applyDelta(t, enc, dec, cursor, prev, next, 1, seq)
		if seq > 2 && len(f.NewFrames) != 0 {
			t.Fatalf("seq %d resent %d dictionary frames", seq, len(f.NewFrames))
		}
		prev = next
	}
}

func TestDeltaFallsBackOnUnencodableChange(t *testing.T) {
	enc := NewDeltaEncoder()
	base := sampleProfile()

	t.Run("deletion", func(t *testing.T) {
		cur := cloneProfile(t, base)
		shrunk := sampleProfile()
		shrunk.Tree = cct.New() // cur lost every node base had
		if _, ok, err := enc.EncodeDelta(cur, shrunk, 1, 2); err != nil || ok {
			t.Fatalf("deletion: ok=%v err=%v, want fallback", ok, err)
		}
	})
	t.Run("reorder", func(t *testing.T) {
		a, b := cct.New(), cct.New()
		a.InsertPath([]cct.Frame{cct.OperatorFrame("x")})
		a.InsertPath([]cct.Frame{cct.OperatorFrame("y")})
		b.InsertPath([]cct.Frame{cct.OperatorFrame("y")})
		b.InsertPath([]cct.Frame{cct.OperatorFrame("x")})
		pa := &profiler.Profile{Tree: a}
		pb := &profiler.Profile{Tree: b}
		if _, ok, err := enc.EncodeDelta(pa, pb, 1, 2); err != nil || ok {
			t.Fatalf("reorder: ok=%v err=%v, want fallback", ok, err)
		}
	})
	t.Run("schema rewrite", func(t *testing.T) {
		a, b := cct.New(), cct.New()
		a.MetricID("one")
		b.MetricID("two")
		pa := &profiler.Profile{Tree: a}
		pb := &profiler.Profile{Tree: b}
		if _, ok, err := enc.EncodeDelta(pa, pb, 1, 2); err != nil || ok {
			t.Fatalf("schema: ok=%v err=%v, want fallback", ok, err)
		}
	})
}

func TestDeltaStaleBase(t *testing.T) {
	base := sampleProfile()
	cur := cloneProfile(t, base)
	addKernelSamples(cur, "aten::conv2d", 0x2000, 5)

	t.Run("no base", func(t *testing.T) {
		enc, dec := NewDeltaEncoder(), NewDeltaDecoder()
		f, ok, err := enc.EncodeDelta(base, cur, 1, 2)
		if err != nil || !ok {
			t.Fatal(err)
		}
		if err := dec.AddFrames(&f); err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Apply(&SeriesCursor{}, &f); !errors.Is(err, ErrStaleBase) {
			t.Fatalf("err = %v, want ErrStaleBase", err)
		}
	})
	t.Run("sequence gap", func(t *testing.T) {
		enc, dec := NewDeltaEncoder(), NewDeltaDecoder()
		cursor := establish(t, enc, dec, base, 1, 1)
		f, ok, err := enc.EncodeDelta(base, cur, 1, 3) // skips seq 2
		if err != nil || !ok {
			t.Fatal(err)
		}
		if err := dec.AddFrames(&f); err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Apply(cursor, &f); !errors.Is(err, ErrStaleBase) {
			t.Fatalf("err = %v, want ErrStaleBase", err)
		}
	})
	t.Run("checksum mismatch then full resync", func(t *testing.T) {
		enc, dec := NewDeltaEncoder(), NewDeltaDecoder()
		cursor := establish(t, enc, dec, base, 1, 1)
		f, ok, err := enc.EncodeDelta(base, cur, 1, 2)
		if err != nil || !ok {
			t.Fatal(err)
		}
		f.BaseSum ^= 0xdead // the sender's base diverged
		if err := dec.AddFrames(&f); err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Apply(cursor, &f); !errors.Is(err, ErrStaleBase) {
			t.Fatalf("err = %v, want ErrStaleBase", err)
		}
		// The protocol's recovery: full upload under the next epoch.
		full, err := enc.EncodeFull(cur, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := dec.AddFrames(&full); err != nil {
			t.Fatal(err)
		}
		got, err := dec.Apply(cursor, &full)
		if err != nil {
			t.Fatal(err)
		}
		if Checksum(got) != Checksum(cur) {
			t.Fatal("resync did not converge")
		}
		// And deltas flow again on top of the new epoch.
		next := cloneProfile(t, cur)
		addKernelSamples(next, "aten::relu", 0x4000, 9)
		applyDelta(t, enc, dec, cursor, cur, next, 2, 2)
	})
}

func TestDeltaApplyRejectsCorruptFrames(t *testing.T) {
	base := sampleProfile()
	cur := cloneProfile(t, base)
	addKernelSamples(cur, "aten::conv2d", 0x2000, 5)

	fresh := func(t *testing.T) (*DeltaDecoder, *SeriesCursor, StreamFrame) {
		enc, dec := NewDeltaEncoder(), NewDeltaDecoder()
		cursor := establish(t, enc, dec, base, 1, 1)
		f, ok, err := enc.EncodeDelta(base, cur, 1, 2)
		if err != nil || !ok {
			t.Fatal(err)
		}
		if err := dec.AddFrames(&f); err != nil {
			t.Fatal(err)
		}
		return dec, cursor, f
	}

	t.Run("bad magic", func(t *testing.T) {
		dec, cursor, f := fresh(t)
		f.Magic = "DEEPCONTEXT-PROFDB-99"
		if _, err := dec.Apply(cursor, &f); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("forward parent", func(t *testing.T) {
		dec, cursor, f := fresh(t)
		if len(f.Nodes) < 2 {
			t.Fatal("need at least two delta nodes")
		}
		f.Nodes[1].Parent = int32(len(f.Nodes)) + 3
		if _, err := dec.Apply(cursor, &f); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("dictionary overflow", func(t *testing.T) {
		dec, cursor, f := fresh(t)
		if len(f.Nodes) < 2 {
			t.Fatal("need at least two delta nodes")
		}
		f.Nodes[1].Frame = 1 << 20
		if _, err := dec.Apply(cursor, &f); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("metric entry outside the schema", func(t *testing.T) {
		dec, cursor, f := fresh(t)
		if len(f.Nodes) < 2 {
			t.Fatal("need at least two delta nodes")
		}
		var m cct.Metric
		m.Add(1)
		f.Nodes[1].Excl = append(f.Nodes[1].Excl, MetricEntry{Idx: 64, M: m})
		if _, err := dec.Apply(cursor, &f); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("negative metric entry index", func(t *testing.T) {
		dec, cursor, f := fresh(t)
		if len(f.Nodes) < 2 {
			t.Fatal("need at least two delta nodes")
		}
		var m cct.Metric
		m.Add(1)
		f.Nodes[1].Incl = append(f.Nodes[1].Incl, MetricEntry{Idx: -1, M: m})
		if _, err := dec.Apply(cursor, &f); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
}

// The checksum must not see metric-array padding or frame fields outside
// the unification key — both legitimately differ between a sender's tree
// and its materialization.
func TestChecksumPaddingInsensitive(t *testing.T) {
	a := sampleProfile()
	b := cloneProfile(t, a)
	want := Checksum(a)
	if Checksum(b) != want {
		t.Fatal("clone checksum differs")
	}
	// Pad every node's arrays to schema length with empty aggregates.
	size := b.Tree.Schema.Len()
	b.Tree.Visit(func(n *cct.Node) {
		for len(n.Excl) < size {
			n.Excl = append(n.Excl, cct.Metric{})
		}
		for len(n.Incl) < size {
			n.Incl = append(n.Incl, cct.Metric{})
		}
	})
	if Checksum(b) != want {
		t.Fatal("padding changed the checksum")
	}
	// But a real metric change must move it.
	gid := b.Tree.MetricID(cct.MetricGPUTime)
	b.Tree.AddMetric(b.Tree.Root, gid, 1)
	if Checksum(b) == want {
		t.Fatal("metric change did not move the checksum")
	}
}

func TestStreamBatchReadWrite(t *testing.T) {
	enc := NewDeltaEncoder()
	f, err := enc.EncodeFull(sampleProfile(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	genc := gob.NewEncoder(&buf)
	for seq := uint64(1); seq <= 3; seq++ {
		if err := WriteBatch(genc, &StreamBatch{Seq: seq, Frames: []StreamFrame{f}}); err != nil {
			t.Fatal(err)
		}
	}
	gdec := gob.NewDecoder(&buf)
	for seq := uint64(1); seq <= 3; seq++ {
		b, err := ReadBatch(gdec)
		if err != nil {
			t.Fatal(err)
		}
		if b.Seq != seq || len(b.Frames) != 1 {
			t.Fatalf("batch = %+v", b)
		}
	}
	if _, err := ReadBatch(gdec); err != io.EOF {
		t.Fatalf("drained stream: err = %v, want io.EOF", err)
	}

	// Truncation mid-stream is corruption, not EOF.
	var whole bytes.Buffer
	genc = gob.NewEncoder(&whole)
	if err := WriteBatch(genc, &StreamBatch{Seq: 1, Frames: []StreamFrame{f}}); err != nil {
		t.Fatal(err)
	}
	cut := whole.Bytes()[:whole.Len()-7]
	if _, err := ReadBatch(gob.NewDecoder(bytes.NewReader(cut))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated: err = %v, want ErrCorrupt", err)
	}
}
