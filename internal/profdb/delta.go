// Profdb format version 3: streaming delta frames. Where v1/v2 serialize a
// whole profile, a v3 stream frame carries either a full v2 payload (the
// resync path) or only the subtrees whose metrics changed since the last
// acknowledged upload, addressed through a per-session exact-frame
// dictionary (cct.ExactInterner) so frame strings cross the wire once per
// session. Deltas are guarded both ways: a frame names the checksum of the
// base it was computed against (a desynced receiver fails with ErrStaleBase
// instead of silently diverging) and the checksum the materialized result
// must reach (a bad apply is detected, not ingested). v1/v2 load paths are
// untouched; a v3-incapable path simply keeps POSTing full bundles.
package profdb

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"

	"deepcontext/internal/cct"
	"deepcontext/internal/dlmonitor"
	"deepcontext/internal/framework"
	"deepcontext/internal/profiler"
)

// FormatMagicV3 identifies one delta-stream frame.
const FormatMagicV3 = "DEEPCONTEXT-PROFDB-3"

// ErrStaleBase reports a delta frame whose base does not match the
// receiver's materialized profile (wrong epoch or sequence, checksum
// mismatch, or no base at all). The sender recovers by re-uploading a full
// profile under a new epoch.
var ErrStaleBase = errors.New("profdb: delta base mismatch")

// StreamBatch groups the frames one acknowledgement covers. A session is a
// gob stream of batches over one encoder, so type descriptors are sent
// once per connection.
type StreamBatch struct {
	Seq    uint64 // batch sequence within the session, starting at 1
	Frames []StreamFrame
	// Close signals a graceful session end; a closing batch carries no
	// frames.
	Close bool
}

// StreamFrame is one profile upload within a session: a full v2 payload
// (Delta false) or a delta against the last acknowledged profile of the
// same series (Delta true).
type StreamFrame struct {
	Magic string
	Delta bool
	// Epoch and Seq order uploads per series: the epoch bumps on every
	// resync (full upload), the sequence increments per frame within it. A
	// delta is applicable only to the frame exactly one sequence earlier.
	Epoch uint64
	Seq   uint64
	// Meta identifies the series and is applied wholesale (delta frames
	// replace the materialized profile's metadata with it).
	Meta profiler.Meta

	// Full is a v2-encoded bundle payload; set iff Delta is false.
	Full []byte

	// Delta payload. BaseSum is the checksum of the profile this delta was
	// encoded against; CurSum is the checksum the materialized result must
	// reach. NewFrames extends the session frame dictionary (IDs continue
	// from the receiver's current dictionary length); NewMetrics appends
	// schema names. Nodes is the changed-subtree forest in DFS order.
	BaseSum    uint64
	CurSum     uint64
	NewFrames  []cct.Frame
	NewMetrics []string
	Nodes      []DeltaNode

	// Profile fields replaced wholesale on apply (small next to the tree).
	Stats          profiler.Stats
	MonitorStats   dlmonitor.Stats
	Fused          map[string][]framework.FusedOrigin
	FootprintBytes int64
}

// MetricEntry is one sparse metric-array update: slot Idx becomes M.
// Aggregation is append-only, so between consecutive uploads most slots
// of most nodes are unchanged — sending only the changed (index, value)
// pairs is what makes a steady-state delta an order of magnitude smaller
// than the full profile, not merely smaller.
type MetricEntry struct {
	Idx int32
	M   cct.Metric
}

// DeltaNode is one emitted node: a changed node carries the sparse
// updates to its exclusive/inclusive aggregates; an unchanged ancestor
// rides along entry-less, purely to address its descendants (or, for a
// new interior node, to exist — structure contributes to the checksum).
// Parent indexes into the frame's Nodes slice; the root is always
// Nodes[0] with Parent -1.
type DeltaNode struct {
	Parent     int32
	Frame      cct.FrameID // session-dictionary ID
	Excl, Incl []MetricEntry
}

// Checksum fingerprints a profile's schema and tree — structure (preorder
// with child counts), unification keys, and every non-empty aggregate. Two
// profiles with equal checksums answer every store query identically;
// metric-array padding and frame fields outside the unification key do not
// contribute, so a materialized delta checks equal to the sender's tree.
func Checksum(p *profiler.Profile) uint64 {
	h := newDigest()
	names := p.Tree.Schema.Names()
	h.uint(uint64(len(names)))
	for _, n := range names {
		h.str(n)
	}
	var rec func(n *cct.Node)
	rec = func(n *cct.Node) {
		h.frame(n.Frame)
		h.uint(uint64(len(n.Children())))
		h.metrics(n.Excl)
		h.metrics(n.Incl)
		for _, c := range n.Children() {
			rec(c)
		}
	}
	rec(p.Tree.Root)
	return h.sum
}

// frame hashes a frame's unification key without materializing the
// Frame.Key string — the checksum walk runs four times per delta frame
// across sender and receiver, so it must not allocate per node. The
// hashed components mirror Key()'s equivalence classes exactly.
func (d *digest) frame(f cct.Frame) {
	switch f.Kind {
	case cct.KindPython:
		d.byte('p')
		d.str(f.File)
		d.uint(uint64(int64(f.Line)))
	case cct.KindOperator:
		d.byte('o')
		d.str(f.Name)
	case cct.KindThread:
		d.byte('t')
		d.str(f.Name)
	case cct.KindInstruction:
		d.byte('i')
		d.uint(f.PC)
	case cct.KindNative, cct.KindGPUAPI, cct.KindKernel:
		d.byte('n')
		d.str(f.Lib)
		d.uint(f.PC)
	default:
		d.byte('r')
	}
}

// digest is an FNV-style xor-multiply mix, folding whole 64-bit words per
// step rather than bytes: the checksum walk visits every metric word of
// every node on both ends of a session, so word-at-a-time hashing is the
// difference between the walk being noise and being the delta path's
// dominant cost. Collision resistance only needs to catch desync and
// corruption, not adversaries.
type digest struct{ sum uint64 }

func newDigest() *digest { return &digest{sum: 14695981039346656037} }

func (d *digest) byte(b byte) {
	d.sum ^= uint64(b)
	d.sum *= 1099511628211
}

func (d *digest) str(s string) {
	d.uint(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		d.byte(s[i])
	}
}

func (d *digest) uint(v uint64) {
	d.sum = (d.sum ^ v) * 1099511628211
}

func (d *digest) metrics(ms []cct.Metric) {
	for i := range ms {
		if ms[i].Empty() {
			continue
		}
		d.uint(uint64(i))
		d.uint(math.Float64bits(ms[i].Sum))
		d.uint(math.Float64bits(ms[i].Min))
		d.uint(math.Float64bits(ms[i].Max))
		d.uint(uint64(ms[i].Count))
		d.uint(math.Float64bits(ms[i].Mean))
		d.uint(math.Float64bits(ms[i].M2))
	}
}

// DeltaEncoder is the sender half of a v3 session: it owns the session
// frame dictionary and turns (base, current) profile pairs into delta
// frames. One encoder per session; not safe for concurrent use.
type DeltaEncoder struct {
	dict *cct.ExactInterner
}

// NewDeltaEncoder returns an encoder with an empty session dictionary.
func NewDeltaEncoder() *DeltaEncoder {
	return &DeltaEncoder{dict: cct.NewExactInterner()}
}

// DictLen reports the session dictionary size. Sender and receiver
// dictionaries grow in lockstep while a session is healthy, so comparing
// lengths across an acknowledgement detects a desynced session (a lost
// batch, a restarted receiver) that per-frame checks cannot see.
func (e *DeltaEncoder) DictLen() int { return e.dict.Len() }

// EncodeFull builds a full (initial or resync) frame for p.
func (e *DeltaEncoder) EncodeFull(p *profiler.Profile, epoch, seq uint64) (StreamFrame, error) {
	var buf bytes.Buffer
	if err := Save(&buf, p); err != nil {
		return StreamFrame{}, err
	}
	return StreamFrame{
		Magic: FormatMagicV3,
		Epoch: epoch,
		Seq:   seq,
		Meta:  p.Meta,
		Full:  buf.Bytes(),
	}, nil
}

// EncodeDelta builds a delta frame materializing cur on top of base. It
// reports ok=false — and leaves the session dictionary untouched — when
// the change cannot be delta-encoded: a node or metric present in base but
// absent from cur, reordered children, or a rewritten schema. Callers then
// fall back to EncodeFull under a new epoch. The returned frame copies
// what it needs; cur may be mutated afterwards.
func (e *DeltaEncoder) EncodeDelta(base, cur *profiler.Profile, epoch, seq uint64) (StreamFrame, bool, error) {
	if base == nil || base.Tree == nil || cur == nil || cur.Tree == nil {
		return StreamFrame{}, false, fmt.Errorf("profdb: delta encode needs base and current profiles")
	}
	return e.EncodeDeltaFrom(base, Checksum(base), cur, epoch, seq)
}

// EncodeDeltaFrom is EncodeDelta with the base checksum supplied by the
// caller. A session sender already holds it — the receiver acknowledged
// that exact sum into the series cursor — so recomputing it here would
// add a full tree walk to every steady-state upload.
func (e *DeltaEncoder) EncodeDeltaFrom(base *profiler.Profile, baseSum uint64, cur *profiler.Profile, epoch, seq uint64) (StreamFrame, bool, error) {
	if base == nil || base.Tree == nil || cur == nil || cur.Tree == nil {
		return StreamFrame{}, false, fmt.Errorf("profdb: delta encode needs base and current profiles")
	}
	baseNames := base.Tree.Schema.Names()
	curNames := cur.Tree.Schema.Names()
	if len(baseNames) > len(curNames) {
		return StreamFrame{}, false, nil
	}
	for i := range baseNames {
		if baseNames[i] != curNames[i] {
			return StreamFrame{}, false, nil
		}
	}

	// Pass 1: pair base and cur nodes positionally (growth is append-only,
	// so base's children must be a key-equal prefix of cur's), compute
	// each changed node's sparse metric updates, and mark which cur nodes
	// must be emitted — changed or new nodes, plus their unchanged
	// ancestors for addressing. The walk visits every cur node in the
	// same preorder as Checksum, so the frame's CurSum digest is computed
	// inline instead of by a second full-tree walk; marks live in a
	// preorder-indexed slice (size = subtree node count) so pass 2 can
	// skip unemitted subtrees without per-node map lookups.
	type nodeMark struct {
		emit       bool
		size       int
		excl, incl []MetricEntry
	}
	h := newDigest()
	h.uint(uint64(len(curNames)))
	for _, n := range curNames {
		h.str(n)
	}
	var marks []nodeMark
	ok := true
	var walk func(bn, cn *cct.Node) bool
	walk = func(bn, cn *cct.Node) bool {
		slot := len(marks)
		marks = append(marks, nodeMark{})
		var m nodeMark
		if bn == nil {
			// A new node always emits, even aggregate-less: its existence
			// changes the parent's child count, which the checksum sees.
			m.emit = true
			m.excl = diffEntries(nil, cn.Excl)
			m.incl = diffEntries(nil, cn.Incl)
		} else {
			m.excl = diffEntries(bn.Excl, cn.Excl)
			m.incl = diffEntries(bn.Incl, cn.Incl)
			m.emit = len(m.excl) > 0 || len(m.incl) > 0
		}
		bc := []*cct.Node(nil)
		if bn != nil {
			bc = bn.Children()
		}
		cc := cn.Children()
		h.frame(cn.Frame)
		h.uint(uint64(len(cc)))
		h.metrics(cn.Excl)
		h.metrics(cn.Incl)
		if len(cc) < len(bc) {
			ok = false
			return false
		}
		for i, c := range cc {
			var b *cct.Node
			if i < len(bc) {
				b = bc[i]
				if !cct.SameKey(b.Frame, c.Frame) {
					ok = false
					return false
				}
			}
			if walk(b, c) {
				m.emit = true
			}
			if !ok {
				return false
			}
		}
		m.size = len(marks) - slot
		marks[slot] = m
		return m.emit
	}
	walk(base.Tree.Root, cur.Tree.Root)
	if !ok {
		return StreamFrame{}, false, nil
	}

	f := StreamFrame{
		Magic:          FormatMagicV3,
		Delta:          true,
		Epoch:          epoch,
		Seq:            seq,
		Meta:           cur.Meta,
		BaseSum:        baseSum,
		CurSum:         h.sum,
		NewMetrics:     curNames[len(baseNames):],
		Stats:          cur.Stats,
		MonitorStats:   cur.MonitorStats,
		Fused:          cur.Fused,
		FootprintBytes: cur.FootprintBytes,
	}

	// Pass 2: emit marked nodes in DFS order; parents precede children, so
	// Parent indexes are always backward references. The preorder index
	// advances in lockstep with pass 1's slice, jumping by subtree size
	// over unemitted subtrees (emission propagates upward, so an
	// unemitted node has no emitted descendants).
	dictBefore := cct.FrameID(e.dict.Len())
	idx := 0
	var emit func(n *cct.Node, parent int32)
	emit = func(n *cct.Node, parent int32) {
		m := &marks[idx]
		if !m.emit {
			idx += m.size
			return
		}
		idx++
		self := int32(len(f.Nodes))
		f.Nodes = append(f.Nodes, DeltaNode{
			Parent: parent,
			Frame:  e.dict.Intern(n.Frame),
			Excl:   m.excl,
			Incl:   m.incl,
		})
		for _, c := range n.Children() {
			emit(c, self)
		}
	}
	emit(cur.Tree.Root, -1)
	f.NewFrames = append([]cct.Frame(nil), e.dict.Frames(dictBefore)...)
	return f, true, nil
}

// diffEntries returns the sparse updates that turn metric array a into b,
// treating entries past either array's length as empty (arrays only pad,
// so index i names the same metric on both sides once the schema prefix
// check held). A nil a yields b's non-empty entries — the dense encoding
// of a new node.
func diffEntries(a, b []cct.Metric) []MetricEntry {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	var out []MetricEntry
	for i := 0; i < n; i++ {
		var av, bv cct.Metric
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		if av.Empty() && bv.Empty() {
			continue
		}
		if av != bv {
			out = append(out, MetricEntry{Idx: int32(i), M: bv})
		}
	}
	return out
}

// SeriesCursor is the receiver-side apply state for one series within a
// session: the materialized profile, its checksum, and the expected
// epoch/sequence position.
type SeriesCursor struct {
	Base  *profiler.Profile
	Sum   uint64
	Epoch uint64
	Seq   uint64
}

// DeltaDecoder is the receiver half of a v3 session: it mirrors the
// sender's frame dictionary and materializes stream frames into full
// profiles. One decoder per session; not safe for concurrent use.
type DeltaDecoder struct {
	dict []cct.Frame
	// MaxBytes caps embedded full payloads (0 selects DefaultMaxBytes).
	MaxBytes int64
	// TrustChecksums skips the post-apply verification walk on delta
	// frames, recording the frame's CurSum as the cursor sum. Only safe
	// for a decoder mirroring its own encoder's frames (the sender's
	// shadow state) — a receiver of untrusted frames must verify.
	TrustChecksums bool
}

// NewDeltaDecoder returns a decoder with an empty session dictionary.
func NewDeltaDecoder() *DeltaDecoder { return &DeltaDecoder{} }

// DictLen reports the session dictionary size (see DeltaEncoder.DictLen).
func (d *DeltaDecoder) DictLen() int { return len(d.dict) }

// AddFrames validates and appends a frame's dictionary additions. It must
// be called once per received frame, in order, before Apply — and also for
// frames that will be rejected, because the sender's dictionary grew when
// it encoded them.
func (d *DeltaDecoder) AddFrames(f *StreamFrame) error {
	for _, fr := range f.NewFrames {
		if !fr.Kind.Valid() {
			return fmt.Errorf("profdb: dictionary frame with invalid kind %d: %w", fr.Kind, ErrCorrupt)
		}
	}
	d.dict = append(d.dict, f.NewFrames...)
	return nil
}

// Apply materializes one stream frame. For a full frame it decodes the
// embedded v2 payload and resets the cursor under the frame's epoch. For a
// delta frame it verifies position (epoch, sequence) and base checksum —
// failing with ErrStaleBase before touching the cursor — then mutates
// cur.Base in place into the new profile and verifies it reaches CurSum.
// Structurally invalid frames fail with ErrCorrupt. On any error after
// materialization starts, the cursor is reset: the sender must resync with
// a full upload.
func (d *DeltaDecoder) Apply(cur *SeriesCursor, f *StreamFrame) (*profiler.Profile, error) {
	if f.Magic != FormatMagicV3 {
		return nil, fmt.Errorf("profdb: bad stream magic %q: %w", f.Magic, ErrCorrupt)
	}
	if !f.Delta {
		p, err := LoadLimit(bytes.NewReader(f.Full), d.MaxBytes)
		if err != nil {
			return nil, err
		}
		cur.Base, cur.Sum, cur.Epoch, cur.Seq = p, Checksum(p), f.Epoch, f.Seq
		return p, nil
	}
	if cur.Base == nil {
		return nil, fmt.Errorf("profdb: delta for a series with no base: %w", ErrStaleBase)
	}
	if f.Epoch != cur.Epoch || f.Seq != cur.Seq+1 {
		return nil, fmt.Errorf("profdb: delta at epoch %d seq %d, expected epoch %d seq %d: %w",
			f.Epoch, f.Seq, cur.Epoch, cur.Seq+1, ErrStaleBase)
	}
	if f.BaseSum != cur.Sum {
		return nil, fmt.Errorf("profdb: delta base checksum %x, materialized base is %x: %w", f.BaseSum, cur.Sum, ErrStaleBase)
	}
	if err := d.validate(f); err != nil {
		return nil, err
	}

	// The frame is structurally sound: materialize in place. From here any
	// failure poisons the base, so the cursor resets on the error paths.
	p := cur.Base
	tree := p.Tree
	for _, name := range f.NewMetrics {
		tree.Schema.ID(name)
	}
	size := tree.Schema.Len()
	nodes := make([]*cct.Node, len(f.Nodes))
	for i := range f.Nodes {
		dn := &f.Nodes[i]
		if dn.Parent < 0 {
			nodes[i] = tree.Root
		} else {
			nodes[i] = tree.InsertUnder(nodes[dn.Parent], []cct.Frame{d.dict[dn.Frame]})
		}
		var err error
		if nodes[i].Excl, err = applyEntries(nodes[i].Excl, dn.Excl, size); err != nil {
			cur.Base, cur.Sum = nil, 0
			return nil, fmt.Errorf("profdb: delta node %d: %w", i, err)
		}
		if nodes[i].Incl, err = applyEntries(nodes[i].Incl, dn.Incl, size); err != nil {
			cur.Base, cur.Sum = nil, 0
			return nil, fmt.Errorf("profdb: delta node %d: %w", i, err)
		}
	}
	p.Meta = f.Meta
	p.Stats = f.Stats
	p.MonitorStats = f.MonitorStats
	p.Fused = f.Fused
	p.FootprintBytes = f.FootprintBytes

	sum := f.CurSum
	if !d.TrustChecksums {
		sum = Checksum(p)
		if sum != f.CurSum {
			cur.Base, cur.Sum = nil, 0
			return nil, fmt.Errorf("profdb: materialized delta reached checksum %x, frame promised %x: %w", sum, f.CurSum, ErrStaleBase)
		}
	}
	cur.Sum, cur.Epoch, cur.Seq = sum, f.Epoch, f.Seq
	return p, nil
}

// applyEntries applies sparse metric updates to one array, growing it as
// needed. An entry outside the schema is corruption — the sender's schema
// extension always precedes the entries referencing it.
func applyEntries(arr []cct.Metric, es []MetricEntry, size int) ([]cct.Metric, error) {
	for _, e := range es {
		if e.Idx < 0 || int(e.Idx) >= size {
			return arr, fmt.Errorf("metric entry %d against a %d-metric schema: %w", e.Idx, size, ErrCorrupt)
		}
		for len(arr) <= int(e.Idx) {
			arr = append(arr, cct.Metric{})
		}
		arr[e.Idx] = e.M
	}
	return arr, nil
}

// validate checks a delta frame's structure before any mutation: the node
// forest must be rooted (Nodes[0] is the tree root), parent references
// strictly backward, and dictionary references assigned.
func (d *DeltaDecoder) validate(f *StreamFrame) error {
	for i := range f.Nodes {
		dn := &f.Nodes[i]
		if dn.Parent < 0 {
			if i != 0 {
				return fmt.Errorf("profdb: delta node %d claims to be the root: %w", i, ErrCorrupt)
			}
			continue
		}
		if i == 0 || int(dn.Parent) >= i {
			return fmt.Errorf("profdb: delta node %d has invalid parent %d: %w", i, dn.Parent, ErrCorrupt)
		}
		if int(dn.Frame) >= len(d.dict) {
			return fmt.Errorf("profdb: delta node %d references dictionary frame %d of %d: %w",
				i, dn.Frame, len(d.dict), ErrCorrupt)
		}
	}
	return nil
}

// WriteBatch gob-encodes one batch onto an established stream encoder.
func WriteBatch(enc *gob.Encoder, b *StreamBatch) error {
	if err := enc.Encode(b); err != nil {
		return fmt.Errorf("profdb: encode stream batch: %w", err)
	}
	return nil
}

// ReadBatch decodes the next batch from an established stream decoder. A
// cleanly ended stream returns io.EOF; anything undecodable fails with an
// error matching ErrCorrupt.
func ReadBatch(dec *gob.Decoder) (*StreamBatch, error) {
	var b StreamBatch
	if err := dec.Decode(&b); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("profdb: decode stream batch: %v: %w", err, ErrCorrupt)
	}
	return &b, nil
}
