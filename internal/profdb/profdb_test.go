package profdb

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"deepcontext/internal/cct"
	"deepcontext/internal/framework"
	"deepcontext/internal/profiler"
	"deepcontext/internal/pyruntime"
)

func sampleProfile() *profiler.Profile {
	tree := cct.New()
	gid := tree.MetricID(cct.MetricGPUTime)
	cid := tree.MetricID(cct.MetricCPUTime)
	leaf := tree.InsertPath([]cct.Frame{
		cct.PythonFrame("train.py", 10, "main"),
		cct.OperatorFrame("aten::conv2d"),
		{Kind: cct.KindKernel, Name: "implicit_gemm", Lib: "[gpu]", PC: 0x1000},
	})
	tree.AddMetric(leaf, gid, 123)
	tree.AddMetric(leaf, gid, 456)
	tree.AddMetric(leaf.Parent, cid, 42)
	return &profiler.Profile{
		Tree: tree,
		Meta: profiler.Meta{Workload: "unet", Framework: "pytorch", Vendor: "Nvidia", Iterations: 100},
		Fused: map[string][]framework.FusedOrigin{
			"fusion_add_gelu": {{Name: "jax::add", PyPath: []pyruntime.Frame{{File: "m.py", Line: 3, Func: "f"}}}},
		},
		FootprintBytes: 4096,
	}
}

func TestRoundTrip(t *testing.T) {
	p := sampleProfile()
	var buf bytes.Buffer
	if err := Save(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != p.Meta {
		t.Fatalf("meta = %+v", got.Meta)
	}
	if got.Tree.NodeCount() != p.Tree.NodeCount() {
		t.Fatalf("nodes = %d vs %d", got.Tree.NodeCount(), p.Tree.NodeCount())
	}
	gid, ok := got.Tree.Schema.Lookup(cct.MetricGPUTime)
	if !ok {
		t.Fatal("schema lost")
	}
	if got.Tree.Root.InclValue(gid) != 579 {
		t.Fatalf("root gpu = %v", got.Tree.Root.InclValue(gid))
	}
	// Aggregates survive (min/max/stddev).
	var kernel *cct.Node
	got.Tree.Visit(func(n *cct.Node) {
		if n.Kind == cct.KindKernel {
			kernel = n
		}
	})
	m := kernel.ExclMetric(gid)
	if m == nil || m.Min != 123 || m.Max != 456 || m.Count != 2 {
		t.Fatalf("kernel metric = %+v", m)
	}
	if got.Fused["fusion_add_gelu"][0].PyPath[0].File != "m.py" {
		t.Fatal("fused origins lost")
	}
	if got.FootprintBytes != 4096 {
		t.Fatal("footprint lost")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profile.dcp")
	if err := SaveFile(path, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.Workload != "unet" {
		t.Fatalf("meta = %+v", got.Meta)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a profile")); err == nil {
		t.Fatal("garbage should fail")
	}
}

func TestExportJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportJSON(&buf, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["meta"].(map[string]any)["Workload"] != "unet" {
		t.Fatal("meta missing in JSON")
	}
	s := buf.String()
	if !strings.Contains(s, "implicit_gemm") || !strings.Contains(s, cct.MetricGPUTime) {
		t.Fatal("JSON lacks kernel or metric names")
	}
}

func TestBundleRoundTrip(t *testing.T) {
	a := sampleProfile()
	b := sampleProfile()
	b.Meta.Workload = "dlrm"
	var buf bytes.Buffer
	if err := SaveBundle(&buf, []Entry{{Name: "unet/nvidia/pytorch", Profile: a}, {Name: "dlrm/nvidia/pytorch", Profile: b}}); err != nil {
		t.Fatal(err)
	}
	entries, err := LoadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].Name != "unet/nvidia/pytorch" || entries[1].Profile.Meta.Workload != "dlrm" {
		t.Fatalf("bundle entries wrong: %q / %+v", entries[0].Name, entries[1].Profile.Meta)
	}
	if entries[0].Profile.Tree.NodeCount() != a.Tree.NodeCount() {
		t.Fatal("bundle lost nodes")
	}
}

func TestBundleFileAndSingleLoadInterop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bundle.dcp")
	a := sampleProfile()
	if err := SaveBundleFile(path, []Entry{{Name: "first", Profile: a}, {Name: "second", Profile: sampleProfile()}}); err != nil {
		t.Fatal(err)
	}
	// Load on a bundle returns the first profile.
	p, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Meta.Workload != "unet" {
		t.Fatalf("meta = %+v", p.Meta)
	}
	entries, err := LoadBundleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[1].Name != "second" {
		t.Fatalf("bundle = %d entries, [1].Name=%q", len(entries), entries[1].Name)
	}
}

func TestSaveBundleRejectsEmptyAndNil(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveBundle(&buf, nil); err == nil {
		t.Fatal("empty bundle should fail")
	}
	if err := SaveBundle(&buf, []Entry{{Name: "x"}}); err == nil {
		t.Fatal("nil profile should fail")
	}
}

// legacyV1Format mirrors the v1 on-disk struct (no Name field, profile at
// the top level) to synthesize fixtures for backward-compatibility tests.
type legacyV1Format struct {
	Magic          string
	Meta           profiler.Meta
	Stats          profiler.Stats
	Metrics        []string
	Nodes          []flatNode
	Fused          map[string][]framework.FusedOrigin
	FootprintBytes int64
}

func TestLoadLegacyV1(t *testing.T) {
	p := sampleProfile()
	ff := flatten("", p)
	legacy := legacyV1Format{
		Magic:          FormatMagicV1,
		Meta:           ff.Meta,
		Stats:          ff.Stats,
		Metrics:        ff.Metrics,
		Nodes:          ff.Nodes,
		Fused:          ff.Fused,
		FootprintBytes: ff.FootprintBytes,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&legacy); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v1 load: %v", err)
	}
	if got.Meta != p.Meta || got.Tree.NodeCount() != p.Tree.NodeCount() {
		t.Fatalf("v1 round trip: meta=%+v nodes=%d", got.Meta, got.Tree.NodeCount())
	}
	entries, err := LoadBundle(bytes.NewReader(buf.Bytes()))
	if err != nil || len(entries) != 1 || entries[0].Name != "" {
		t.Fatalf("v1 as bundle: %v, %d entries", err, len(entries))
	}
}

func TestLoadRejectsUnknownMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&bundleFormat{Magic: "DEEPCONTEXT-PROFDB-99"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("future magic should fail")
	}
}

// Merged and diffed trees must survive the round trip, including negative
// (signed-delta) sums.
func TestRoundTripMergedAndDiffedProfiles(t *testing.T) {
	a, b := sampleProfile(), sampleProfile()
	gid, _ := b.Tree.Schema.Lookup(cct.MetricGPUTime)
	b.Tree.AddMetric(b.Tree.InsertPath([]cct.Frame{cct.OperatorFrame("aten::extra")}), gid, 5000)

	merged := &profiler.Profile{Tree: cct.MergeAll(a.Tree, b.Tree), Meta: a.Meta}
	diffed := &profiler.Profile{Tree: cct.Diff(a.Tree, b.Tree), Meta: a.Meta}

	for name, p := range map[string]*profiler.Profile{"merged": merged, "diffed": diffed} {
		var buf bytes.Buffer
		if err := Save(&buf, p); err != nil {
			t.Fatalf("%s save: %v", name, err)
		}
		got, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s load: %v", name, err)
		}
		if got.Tree.NodeCount() != p.Tree.NodeCount() {
			t.Fatalf("%s lost nodes: %d vs %d", name, got.Tree.NodeCount(), p.Tree.NodeCount())
		}
		id, ok := got.Tree.Schema.Lookup(cct.MetricGPUTime)
		if !ok {
			t.Fatalf("%s lost schema", name)
		}
		if got.Tree.Root.InclValue(id) != p.Tree.Root.InclValue(id) {
			t.Fatalf("%s total = %v, want %v", name, got.Tree.Root.InclValue(id), p.Tree.Root.InclValue(id))
		}
	}
	// The diff total must be the signed improvement (a − b = −5000).
	id, _ := diffed.Tree.Schema.Lookup(cct.MetricGPUTime)
	if diffed.Tree.Root.InclValue(id) != -5000 {
		t.Fatalf("diff total = %v, want -5000", diffed.Tree.Root.InclValue(id))
	}
}

// Property: round-trip preserves root inclusive totals for random trees.
func TestRoundTripConservationProperty(t *testing.T) {
	f := func(vals []uint16, shape []uint8) bool {
		tree := cct.New()
		id := tree.MetricID(cct.MetricGPUTime)
		var total float64
		for i, v := range vals {
			depth := 1
			if len(shape) > 0 {
				depth = 1 + int(shape[i%len(shape)])%4
			}
			var frames []cct.Frame
			for d := 0; d < depth; d++ {
				frames = append(frames, cct.PythonFrame("f.py", d+int(v)%7, "fn"))
			}
			tree.AddMetric(tree.InsertPath(frames), id, float64(v))
			total += float64(v)
		}
		p := &profiler.Profile{Tree: tree}
		var buf bytes.Buffer
		if err := Save(&buf, p); err != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil {
			return false
		}
		gid, _ := got.Tree.Schema.Lookup(cct.MetricGPUTime)
		return math.Abs(got.Tree.Root.InclValue(gid)-total) < 1e-9 &&
			got.Tree.NodeCount() == tree.NodeCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
