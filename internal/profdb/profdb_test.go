package profdb

import (
	"bytes"
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"deepcontext/internal/cct"
	"deepcontext/internal/framework"
	"deepcontext/internal/profiler"
	"deepcontext/internal/pyruntime"
)

func sampleProfile() *profiler.Profile {
	tree := cct.New()
	gid := tree.MetricID(cct.MetricGPUTime)
	cid := tree.MetricID(cct.MetricCPUTime)
	leaf := tree.InsertPath([]cct.Frame{
		cct.PythonFrame("train.py", 10, "main"),
		cct.OperatorFrame("aten::conv2d"),
		{Kind: cct.KindKernel, Name: "implicit_gemm", Lib: "[gpu]", PC: 0x1000},
	})
	tree.AddMetric(leaf, gid, 123)
	tree.AddMetric(leaf, gid, 456)
	tree.AddMetric(leaf.Parent, cid, 42)
	return &profiler.Profile{
		Tree: tree,
		Meta: profiler.Meta{Workload: "unet", Framework: "pytorch", Vendor: "Nvidia", Iterations: 100},
		Fused: map[string][]framework.FusedOrigin{
			"fusion_add_gelu": {{Name: "jax::add", PyPath: []pyruntime.Frame{{File: "m.py", Line: 3, Func: "f"}}}},
		},
		FootprintBytes: 4096,
	}
}

func TestRoundTrip(t *testing.T) {
	p := sampleProfile()
	var buf bytes.Buffer
	if err := Save(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != p.Meta {
		t.Fatalf("meta = %+v", got.Meta)
	}
	if got.Tree.NodeCount() != p.Tree.NodeCount() {
		t.Fatalf("nodes = %d vs %d", got.Tree.NodeCount(), p.Tree.NodeCount())
	}
	gid, ok := got.Tree.Schema.Lookup(cct.MetricGPUTime)
	if !ok {
		t.Fatal("schema lost")
	}
	if got.Tree.Root.InclValue(gid) != 579 {
		t.Fatalf("root gpu = %v", got.Tree.Root.InclValue(gid))
	}
	// Aggregates survive (min/max/stddev).
	var kernel *cct.Node
	got.Tree.Visit(func(n *cct.Node) {
		if n.Kind == cct.KindKernel {
			kernel = n
		}
	})
	m := kernel.ExclMetric(gid)
	if m == nil || m.Min != 123 || m.Max != 456 || m.Count != 2 {
		t.Fatalf("kernel metric = %+v", m)
	}
	if got.Fused["fusion_add_gelu"][0].PyPath[0].File != "m.py" {
		t.Fatal("fused origins lost")
	}
	if got.FootprintBytes != 4096 {
		t.Fatal("footprint lost")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profile.dcp")
	if err := SaveFile(path, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.Workload != "unet" {
		t.Fatalf("meta = %+v", got.Meta)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a profile")); err == nil {
		t.Fatal("garbage should fail")
	}
}

func TestExportJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportJSON(&buf, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["meta"].(map[string]any)["Workload"] != "unet" {
		t.Fatal("meta missing in JSON")
	}
	s := buf.String()
	if !strings.Contains(s, "implicit_gemm") || !strings.Contains(s, cct.MetricGPUTime) {
		t.Fatal("JSON lacks kernel or metric names")
	}
}

// Property: round-trip preserves root inclusive totals for random trees.
func TestRoundTripConservationProperty(t *testing.T) {
	f := func(vals []uint16, shape []uint8) bool {
		tree := cct.New()
		id := tree.MetricID(cct.MetricGPUTime)
		var total float64
		for i, v := range vals {
			depth := 1
			if len(shape) > 0 {
				depth = 1 + int(shape[i%len(shape)])%4
			}
			var frames []cct.Frame
			for d := 0; d < depth; d++ {
				frames = append(frames, cct.PythonFrame("f.py", d+int(v)%7, "fn"))
			}
			tree.AddMetric(tree.InsertPath(frames), id, float64(v))
			total += float64(v)
		}
		p := &profiler.Profile{Tree: tree}
		var buf bytes.Buffer
		if err := Save(&buf, p); err != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil {
			return false
		}
		gid, _ := got.Tree.Schema.Lookup(cct.MetricGPUTime)
		return math.Abs(got.Tree.Root.InclValue(gid)-total) < 1e-9 &&
			got.Tree.NodeCount() == tree.NodeCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
