package profdb

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"strings"
	"testing"
)

// fuzzSeeds builds the seed corpus from golden serializations: a v2 single
// profile, a v2 multi-profile bundle, a legacy v1 file, plus the malformed
// shapes a hostile /ingest body would take (truncation, wrong magic).
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	var single bytes.Buffer
	if err := Save(&single, sampleProfile()); err != nil {
		tb.Fatal(err)
	}
	var bundle bytes.Buffer
	if err := SaveBundle(&bundle, []Entry{
		{Name: "a", Profile: sampleProfile()},
		{Name: "b", Profile: sampleProfile()},
	}); err != nil {
		tb.Fatal(err)
	}
	var v1 bytes.Buffer
	ff := flatten("", sampleProfile())
	if err := gob.NewEncoder(&v1).Encode(&legacyV1Format{
		Magic:   FormatMagicV1,
		Meta:    ff.Meta,
		Metrics: ff.Metrics,
		Nodes:   ff.Nodes,
	}); err != nil {
		tb.Fatal(err)
	}
	var wrongMagic bytes.Buffer
	if err := gob.NewEncoder(&wrongMagic).Encode(&bundleFormat{Magic: "DEEPCONTEXT-PROFDB-99"}); err != nil {
		tb.Fatal(err)
	}
	truncated := single.Bytes()[:single.Len()/2]
	return [][]byte{
		single.Bytes(),
		bundle.Bytes(),
		v1.Bytes(),
		wrongMagic.Bytes(),
		truncated,
		[]byte("not a profile at all"),
		{},
	}
}

// FuzzLoad asserts the loader's contract over arbitrary bytes: it never
// panics, and whenever it does accept an input, the result is a well-formed
// profile that survives a save/load round trip.
func FuzzLoad(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := LoadBundleLimit(bytes.NewReader(data), 1<<20)
		if err != nil {
			return
		}
		if len(entries) == 0 {
			t.Fatal("nil error but no entries")
		}
		for _, e := range entries {
			if e.Profile == nil || e.Profile.Tree == nil {
				t.Fatalf("accepted entry with nil profile: %+v", e)
			}
		}
		var buf bytes.Buffer
		if err := SaveBundle(&buf, entries); err != nil {
			t.Fatalf("accepted profile does not re-save: %v", err)
		}
		again, err := LoadBundle(&buf)
		if err != nil {
			t.Fatalf("accepted profile does not reload: %v", err)
		}
		if len(again) != len(entries) {
			t.Fatalf("round trip changed entry count: %d -> %d", len(entries), len(again))
		}
	})
}

func TestLoadTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, len(full) / 4, len(full) / 2, len(full) - 1} {
		if _, err := Load(bytes.NewReader(full[:cut])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated at %d: err = %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestLoadWrongMagicIsCorrupt(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&bundleFormat{Magic: "DEEPCONTEXT-PROFDB-99"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong magic: err = %v, want ErrCorrupt", err)
	}
	if _, err := Load(strings.NewReader("garbage bytes")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage: err = %v, want ErrCorrupt", err)
	}
}

func TestLoadRejectsOversizedInput(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLimit(bytes.NewReader(buf.Bytes()), 64); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	// Exactly at the limit is accepted.
	if _, err := LoadLimit(bytes.NewReader(buf.Bytes()), int64(buf.Len())); err != nil {
		t.Fatalf("at-limit load failed: %v", err)
	}
}

// "Unlimited" (MaxInt64) must not overflow the read-one-past-the-cap
// arithmetic and reject everything.
func TestLoadLimitMaxInt64(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLimit(bytes.NewReader(buf.Bytes()), math.MaxInt64); err != nil {
		t.Fatalf("MaxInt64 limit rejected a valid profile: %v", err)
	}
}

func TestLoadInvalidParentIsCorrupt(t *testing.T) {
	ff := flatten("", sampleProfile())
	// Forward-reference the parent of node 1.
	ff.Nodes[1].Parent = len(ff.Nodes) + 7
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&bundleFormat{Magic: FormatMagic, Profiles: []fileFormat{ff}}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("invalid parent: err = %v, want ErrCorrupt", err)
	}
}

// The typed-error split is what lets a server map failures to HTTP codes;
// the two classes must stay disjoint.
func TestTypedErrorsAreDisjoint(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	_, tooLarge := LoadLimit(bytes.NewReader(buf.Bytes()), 16)
	if errors.Is(tooLarge, ErrCorrupt) {
		t.Fatal("ErrTooLarge should not match ErrCorrupt")
	}
	_, corrupt := Load(strings.NewReader("zzz"))
	if errors.Is(corrupt, ErrTooLarge) {
		t.Fatal("ErrCorrupt should not match ErrTooLarge")
	}
}
