// Package profdb serializes DeepContext profiles: a compact binary database
// (gob-encoded flattened CCT) for storage and a JSON export for external
// tooling and the GUI. Because the profiler aggregates online, the database
// is proportional to distinct calling contexts, not to run length — the
// property behind the paper's disk/memory savings versus trace files.
//
// The on-disk format is versioned. Version 2 is a multi-profile bundle: one
// file holds any number of named profiles (per-shard results of a batch run,
// a before/after pair, or a single profile, the common case). Version 1
// single-profile files are still read transparently.
package profdb

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"deepcontext/internal/cct"
	"deepcontext/internal/dlmonitor"
	"deepcontext/internal/framework"
	"deepcontext/internal/profiler"
)

// Format magics; the trailing number is the format version.
const (
	// FormatMagic identifies the current (bundle) database format.
	FormatMagic = "DEEPCONTEXT-PROFDB-2"
	// FormatMagicV1 identifies the legacy single-profile format, which
	// Load still accepts.
	FormatMagicV1 = "DEEPCONTEXT-PROFDB-1"
)

// DefaultMaxBytes caps how much Load/LoadBundle will read (256 MiB). A
// malformed or hostile input — an HTTP ingest body, a truncated upload —
// fails with ErrTooLarge instead of buffering without bound.
const DefaultMaxBytes = 256 << 20

// Typed load failures, for errors.Is dispatch at API boundaries (a server
// maps ErrTooLarge to 413 and ErrCorrupt to 400 rather than 500).
var (
	// ErrTooLarge reports an input exceeding the size limit.
	ErrTooLarge = errors.New("profdb: input exceeds size limit")
	// ErrCorrupt reports an undecodable or structurally invalid database
	// (bad magic, truncated gob stream, dangling parent references).
	ErrCorrupt = errors.New("profdb: corrupt database")
)

type flatNode struct {
	ID     int
	Parent int
	Frame  cct.Frame
	Excl   []cct.Metric
	Incl   []cct.Metric
}

// fileFormat is one serialized profile. It is both the v1 top-level value
// and the per-profile record of a v2 bundle (Name is empty in v1 files).
type fileFormat struct {
	Magic          string
	Name           string
	Meta           profiler.Meta
	Stats          profiler.Stats
	MonitorStats   dlmonitor.Stats
	Metrics        []string
	Nodes          []flatNode
	Fused          map[string][]framework.FusedOrigin
	FootprintBytes int64
}

// bundleFormat is the v2 top-level value: a named multi-profile container.
type bundleFormat struct {
	Magic    string
	Profiles []fileFormat
}

// Entry is one named profile of a bundle. Name may be empty for
// single-profile files; the batch runner uses "workload/vendor/framework".
type Entry struct {
	Name    string
	Profile *profiler.Profile
}

func flatten(name string, p *profiler.Profile) fileFormat {
	ff := fileFormat{
		Name:           name,
		Meta:           p.Meta,
		Stats:          p.Stats,
		MonitorStats:   p.MonitorStats,
		Metrics:        p.Tree.Schema.Names(),
		Fused:          p.Fused,
		FootprintBytes: p.FootprintBytes,
	}
	ids := make(map[*cct.Node]int)
	p.Tree.Visit(func(n *cct.Node) {
		id := len(ff.Nodes)
		ids[n] = id
		parent := -1
		if n.Parent != nil {
			parent = ids[n.Parent]
		}
		ff.Nodes = append(ff.Nodes, flatNode{
			ID:     id,
			Parent: parent,
			Frame:  n.Frame,
			Excl:   n.Excl,
			Incl:   n.Incl,
		})
	})
	return ff
}

func unflatten(ff *fileFormat) (*profiler.Profile, error) {
	tree := cct.New()
	for _, name := range ff.Metrics {
		tree.Schema.ID(name)
	}
	nodes := make([]*cct.Node, len(ff.Nodes))
	for i, fn := range ff.Nodes {
		if fn.Parent < 0 {
			nodes[i] = tree.Root
		} else {
			if fn.Parent >= i || nodes[fn.Parent] == nil {
				return nil, fmt.Errorf("profdb: node %d has invalid parent %d: %w", i, fn.Parent, ErrCorrupt)
			}
			nodes[i] = tree.InsertUnder(nodes[fn.Parent], []cct.Frame{fn.Frame})
		}
		nodes[i].Excl = fn.Excl
		nodes[i].Incl = fn.Incl
	}
	return &profiler.Profile{
		Tree:           tree,
		Meta:           ff.Meta,
		Stats:          ff.Stats,
		MonitorStats:   ff.MonitorStats,
		Fused:          ff.Fused,
		FootprintBytes: ff.FootprintBytes,
	}, nil
}

// SaveBundle writes the named profiles to w as one v2 database.
func SaveBundle(w io.Writer, entries []Entry) error {
	if len(entries) == 0 {
		return fmt.Errorf("profdb: empty bundle")
	}
	bf := bundleFormat{Magic: FormatMagic}
	for _, e := range entries {
		if e.Profile == nil {
			return fmt.Errorf("profdb: nil profile in bundle entry %q", e.Name)
		}
		bf.Profiles = append(bf.Profiles, flatten(e.Name, e.Profile))
	}
	return gob.NewEncoder(w).Encode(&bf)
}

// LoadBundle reads every profile of a database, refusing inputs larger than
// DefaultMaxBytes. Legacy v1 files load as a single-entry bundle.
func LoadBundle(r io.Reader) ([]Entry, error) {
	return LoadBundleLimit(r, DefaultMaxBytes)
}

// LoadBundleLimit is LoadBundle with an explicit size cap in bytes
// (0 selects DefaultMaxBytes). Inputs exceeding the cap fail with an error
// matching ErrTooLarge; undecodable inputs match ErrCorrupt.
func LoadBundleLimit(r io.Reader, maxBytes int64) ([]Entry, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	// Read one byte past the cap so "exactly at the limit" and "over it"
	// are distinguishable (guarding maxBytes+1 against overflow for
	// callers passing MaxInt64 as "unlimited").
	limit := maxBytes
	if limit < math.MaxInt64 {
		limit++
	}
	raw, err := io.ReadAll(io.LimitReader(r, limit))
	if err != nil {
		return nil, fmt.Errorf("profdb: read: %w", err)
	}
	if int64(len(raw)) > maxBytes {
		return nil, fmt.Errorf("profdb: input larger than %d bytes: %w", maxBytes, ErrTooLarge)
	}
	// gob matches struct fields by name, so a v1 fileFormat payload decodes
	// into bundleFormat with Magic set and Profiles empty — the magic then
	// dispatches to the right shape.
	var bf bundleFormat
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&bf); err != nil {
		return nil, fmt.Errorf("profdb: decode: %v: %w", err, ErrCorrupt)
	}
	switch bf.Magic {
	case FormatMagic:
		if len(bf.Profiles) == 0 {
			return nil, fmt.Errorf("profdb: bundle has no profiles: %w", ErrCorrupt)
		}
		out := make([]Entry, 0, len(bf.Profiles))
		for i := range bf.Profiles {
			p, err := unflatten(&bf.Profiles[i])
			if err != nil {
				return nil, err
			}
			out = append(out, Entry{Name: bf.Profiles[i].Name, Profile: p})
		}
		return out, nil
	case FormatMagicV1:
		var ff fileFormat
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&ff); err != nil {
			return nil, fmt.Errorf("profdb: decode v1: %v: %w", err, ErrCorrupt)
		}
		p, err := unflatten(&ff)
		if err != nil {
			return nil, err
		}
		return []Entry{{Profile: p}}, nil
	default:
		return nil, fmt.Errorf("profdb: bad magic %q: %w", bf.Magic, ErrCorrupt)
	}
}

// Save writes p to w as a single-profile database.
func Save(w io.Writer, p *profiler.Profile) error {
	return SaveBundle(w, []Entry{{Profile: p}})
}

// Load reads the first profile of a database (v1 or v2), refusing inputs
// larger than DefaultMaxBytes.
func Load(r io.Reader) (*profiler.Profile, error) {
	return LoadLimit(r, DefaultMaxBytes)
}

// LoadLimit is Load with an explicit size cap in bytes (0 selects
// DefaultMaxBytes).
func LoadLimit(r io.Reader, maxBytes int64) (*profiler.Profile, error) {
	entries, err := LoadBundleLimit(r, maxBytes)
	if err != nil {
		return nil, err
	}
	return entries[0].Profile, nil
}

// SaveFile writes p to path.
func SaveFile(path string, p *profiler.Profile) error {
	return SaveBundleFile(path, []Entry{{Profile: p}})
}

// SaveBundleFile writes the named profiles to path.
func SaveBundleFile(path string, entries []Entry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := SaveBundle(f, entries); err != nil {
		return err
	}
	return f.Sync()
}

// LoadFile reads the first profile from path.
func LoadFile(path string) (*profiler.Profile, error) {
	entries, err := LoadBundleFile(path)
	if err != nil {
		return nil, err
	}
	return entries[0].Profile, nil
}

// fileLimit sizes the read cap for a local file: its actual size, floored
// at DefaultMaxBytes. The DoS cap exists for network boundaries (servers
// pass their own limit); databases already on disk — a large batch-matrix
// aggregate, say — must keep loading in the offline tools.
func fileLimit(f *os.File) int64 {
	max := int64(DefaultMaxBytes)
	if st, err := f.Stat(); err == nil && st.Size() > max {
		max = st.Size()
	}
	return max
}

// LoadBundleFile reads every profile from path.
func LoadBundleFile(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadBundleLimit(f, fileLimit(f))
}

// jsonNode is the nested JSON export shape.
type jsonNode struct {
	Label    string             `json:"label"`
	Kind     string             `json:"kind"`
	File     string             `json:"file,omitempty"`
	Line     int                `json:"line,omitempty"`
	Excl     map[string]float64 `json:"excl,omitempty"`
	Incl     map[string]float64 `json:"incl,omitempty"`
	Children []*jsonNode        `json:"children,omitempty"`
}

type jsonProfile struct {
	Meta    profiler.Meta `json:"meta"`
	Metrics []string      `json:"metrics"`
	Root    *jsonNode     `json:"root"`
}

func toJSONNode(schema *cct.Schema, n *cct.Node) *jsonNode {
	jn := &jsonNode{Label: n.Label(), Kind: n.Kind.String(), File: n.File, Line: n.Line}
	for i := range n.Excl {
		if !n.Excl[i].Empty() {
			if jn.Excl == nil {
				jn.Excl = map[string]float64{}
			}
			jn.Excl[schema.Name(cct.MetricID(i))] = n.Excl[i].Sum
		}
	}
	for i := range n.Incl {
		if !n.Incl[i].Empty() {
			if jn.Incl == nil {
				jn.Incl = map[string]float64{}
			}
			jn.Incl[schema.Name(cct.MetricID(i))] = n.Incl[i].Sum
		}
	}
	for _, c := range n.Children() {
		jn.Children = append(jn.Children, toJSONNode(schema, c))
	}
	return jn
}

// ExportJSON writes a nested JSON rendering of p to w.
func ExportJSON(w io.Writer, p *profiler.Profile) error {
	jp := jsonProfile{
		Meta:    p.Meta,
		Metrics: p.Tree.Schema.Names(),
		Root:    toJSONNode(p.Tree.Schema, p.Tree.Root),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&jp)
}
