// Package profdb serializes DeepContext profiles: a compact binary database
// (gob-encoded flattened CCT) for storage and a JSON export for external
// tooling and the GUI. Because the profiler aggregates online, the database
// is proportional to distinct calling contexts, not to run length — the
// property behind the paper's disk/memory savings versus trace files.
package profdb

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"deepcontext/internal/cct"
	"deepcontext/internal/dlmonitor"
	"deepcontext/internal/framework"
	"deepcontext/internal/profiler"
)

// FormatMagic identifies the database format version.
const FormatMagic = "DEEPCONTEXT-PROFDB-1"

type flatNode struct {
	ID     int
	Parent int
	Frame  cct.Frame
	Excl   []cct.Metric
	Incl   []cct.Metric
}

type fileFormat struct {
	Magic          string
	Meta           profiler.Meta
	Stats          profiler.Stats
	MonitorStats   dlmonitor.Stats
	Metrics        []string
	Nodes          []flatNode
	Fused          map[string][]framework.FusedOrigin
	FootprintBytes int64
}

// Save writes p to w in the binary database format.
func Save(w io.Writer, p *profiler.Profile) error {
	ff := fileFormat{
		Magic:          FormatMagic,
		Meta:           p.Meta,
		Stats:          p.Stats,
		MonitorStats:   p.MonitorStats,
		Metrics:        p.Tree.Schema.Names(),
		Fused:          p.Fused,
		FootprintBytes: p.FootprintBytes,
	}
	ids := make(map[*cct.Node]int)
	p.Tree.Visit(func(n *cct.Node) {
		id := len(ff.Nodes)
		ids[n] = id
		parent := -1
		if n.Parent != nil {
			parent = ids[n.Parent]
		}
		ff.Nodes = append(ff.Nodes, flatNode{
			ID:     id,
			Parent: parent,
			Frame:  n.Frame,
			Excl:   n.Excl,
			Incl:   n.Incl,
		})
	})
	return gob.NewEncoder(w).Encode(&ff)
}

// Load reads a profile from r.
func Load(r io.Reader) (*profiler.Profile, error) {
	var ff fileFormat
	if err := gob.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("profdb: decode: %w", err)
	}
	if ff.Magic != FormatMagic {
		return nil, fmt.Errorf("profdb: bad magic %q", ff.Magic)
	}
	tree := cct.New()
	for _, name := range ff.Metrics {
		tree.Schema.ID(name)
	}
	nodes := make([]*cct.Node, len(ff.Nodes))
	for i, fn := range ff.Nodes {
		if fn.Parent < 0 {
			nodes[i] = tree.Root
		} else {
			if fn.Parent >= i || nodes[fn.Parent] == nil {
				return nil, fmt.Errorf("profdb: node %d has invalid parent %d", i, fn.Parent)
			}
			nodes[i] = tree.InsertUnder(nodes[fn.Parent], []cct.Frame{fn.Frame})
		}
		nodes[i].Excl = fn.Excl
		nodes[i].Incl = fn.Incl
	}
	return &profiler.Profile{
		Tree:           tree,
		Meta:           ff.Meta,
		Stats:          ff.Stats,
		MonitorStats:   ff.MonitorStats,
		Fused:          ff.Fused,
		FootprintBytes: ff.FootprintBytes,
	}, nil
}

// SaveFile writes p to path.
func SaveFile(path string, p *profiler.Profile) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Save(f, p); err != nil {
		return err
	}
	return f.Sync()
}

// LoadFile reads a profile from path.
func LoadFile(path string) (*profiler.Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// jsonNode is the nested JSON export shape.
type jsonNode struct {
	Label    string             `json:"label"`
	Kind     string             `json:"kind"`
	File     string             `json:"file,omitempty"`
	Line     int                `json:"line,omitempty"`
	Excl     map[string]float64 `json:"excl,omitempty"`
	Incl     map[string]float64 `json:"incl,omitempty"`
	Children []*jsonNode        `json:"children,omitempty"`
}

type jsonProfile struct {
	Meta    profiler.Meta `json:"meta"`
	Metrics []string      `json:"metrics"`
	Root    *jsonNode     `json:"root"`
}

func toJSONNode(schema *cct.Schema, n *cct.Node) *jsonNode {
	jn := &jsonNode{Label: n.Label(), Kind: n.Kind.String(), File: n.File, Line: n.Line}
	for i := range n.Excl {
		if !n.Excl[i].Empty() {
			if jn.Excl == nil {
				jn.Excl = map[string]float64{}
			}
			jn.Excl[schema.Name(cct.MetricID(i))] = n.Excl[i].Sum
		}
	}
	for i := range n.Incl {
		if !n.Incl[i].Empty() {
			if jn.Incl == nil {
				jn.Incl = map[string]float64{}
			}
			jn.Incl[schema.Name(cct.MetricID(i))] = n.Incl[i].Sum
		}
	}
	for _, c := range n.Children() {
		jn.Children = append(jn.Children, toJSONNode(schema, c))
	}
	return jn
}

// ExportJSON writes a nested JSON rendering of p to w.
func ExportJSON(w io.Writer, p *profiler.Profile) error {
	jp := jsonProfile{
		Meta:    p.Meta,
		Metrics: p.Tree.Schema.Names(),
		Root:    toJSONNode(p.Tree.Schema, p.Tree.Root),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&jp)
}
