// Package vtime provides the deterministic virtual time base used by every
// simulated substrate in the DeepContext reproduction.
//
// The real DeepContext measures wall-clock overhead on physical machines.
// This reproduction instead advances int64-nanosecond virtual clocks by
// modeled costs, which makes every experiment bit-for-bit reproducible on any
// host. Each simulated CPU thread and each GPU stream owns a Clock; the
// end-to-end time of a run is the maximum frontier across all clocks.
package vtime

import "fmt"

// Time is an absolute virtual timestamp in nanoseconds since the start of a
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration's constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds reports d as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds reports d as floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// String formats the duration using an adaptive unit.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fus", float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Seconds reports t as floating-point seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the timestamp as seconds.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// TickFunc is invoked for every period boundary a clock crosses. The handler
// receives the boundary timestamp. Handlers may advance the clock further
// (modeling, e.g., the cost of running a signal handler); resulting new
// boundaries are processed before Advance returns.
type TickFunc func(at Time)

// Ticker delivers a callback every fixed period of a clock's virtual time.
// It models POSIX interval timers (setitimer/sigaction) for the CPU sampler.
type Ticker struct {
	period  Duration
	next    Time
	fn      TickFunc
	stopped bool
}

// Stop disables the ticker. It is safe to call from inside the tick handler.
func (k *Ticker) Stop() { k.stopped = true }

// Period returns the ticker's interval.
func (k *Ticker) Period() Duration { return k.period }

// Clock is a monotonically advancing virtual clock. The zero value is a clock
// at time zero with no tickers, ready to use.
type Clock struct {
	now     Time
	tickers []*Ticker
	// ticking guards against unbounded recursion when a tick handler
	// advances its own clock: nested Advance calls only move time forward
	// and leave boundary processing to the outermost call.
	ticking bool
}

// Now returns the clock's current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d, firing any ticker boundaries crossed.
// Negative durations are ignored: virtual time never flows backwards.
func (c *Clock) Advance(d Duration) {
	if d <= 0 {
		return
	}
	c.now += Time(d)
	c.fireTickers()
}

// AdvanceTo moves the clock forward to t if t is in the future; it is a no-op
// otherwise. It models blocking waits (synchronization with a GPU stream or
// another thread).
func (c *Clock) AdvanceTo(t Time) {
	if t <= c.now {
		return
	}
	c.now = t
	c.fireTickers()
}

// AddTicker registers fn to fire every period of this clock's time, with the
// first boundary one period from now. It returns the ticker so callers can
// stop it.
func (c *Clock) AddTicker(period Duration, fn TickFunc) *Ticker {
	if period <= 0 {
		panic("vtime: ticker period must be positive")
	}
	k := &Ticker{period: period, next: c.now.Add(period), fn: fn}
	c.tickers = append(c.tickers, k)
	return k
}

func (c *Clock) fireTickers() {
	if c.ticking || len(c.tickers) == 0 {
		return
	}
	c.ticking = true
	defer func() { c.ticking = false }()
	for {
		fired := false
		live := c.tickers[:0]
		for _, k := range c.tickers {
			if k.stopped {
				continue
			}
			live = append(live, k)
		}
		c.tickers = live
		for _, k := range c.tickers {
			for !k.stopped && k.next <= c.now {
				at := k.next
				k.next = at.Add(k.period)
				fired = true
				// The handler may advance c.now (handler cost);
				// additional boundaries are caught on the next
				// sweep of the outer loop.
				k.fn(at)
			}
		}
		if !fired {
			return
		}
	}
}

// MaxTime returns the later of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MaxDuration returns the larger of a and b.
func MaxDuration(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}
