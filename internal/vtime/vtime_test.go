package vtime

import (
	"testing"
	"testing/quick"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock at %v, want 0", c.Now())
	}
}

func TestAdvance(t *testing.T) {
	var c Clock
	c.Advance(5 * Microsecond)
	if got := c.Now(); got != Time(5000) {
		t.Fatalf("Now() = %d, want 5000", got)
	}
	c.Advance(-Second) // ignored
	if got := c.Now(); got != Time(5000) {
		t.Fatalf("negative Advance moved clock to %d", got)
	}
}

func TestAdvanceTo(t *testing.T) {
	var c Clock
	c.AdvanceTo(100)
	if c.Now() != 100 {
		t.Fatalf("AdvanceTo(100) -> %d", c.Now())
	}
	c.AdvanceTo(50) // past: no-op
	if c.Now() != 100 {
		t.Fatalf("AdvanceTo(50) moved clock back to %d", c.Now())
	}
}

func TestTickerFiresOncePerPeriod(t *testing.T) {
	var c Clock
	var fires []Time
	c.AddTicker(10, func(at Time) { fires = append(fires, at) })
	c.Advance(35)
	want := []Time{10, 20, 30}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires = %v, want %v", fires, want)
		}
	}
}

func TestTickerHandlerAdvancesClock(t *testing.T) {
	var c Clock
	n := 0
	// Handler cost of 3ns per tick; must not recurse infinitely and must
	// still process boundaries introduced by its own cost.
	c.AddTicker(10, func(at Time) {
		n++
		c.Advance(3)
	})
	c.Advance(30)
	// Boundaries: 10, 20, 30 plus the boundary at 40 may be crossed by
	// accumulated handler costs (30+3*3 = 39 < 40): exactly 3 ticks.
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
	if c.Now() != 39 {
		t.Fatalf("Now() = %d, want 39", c.Now())
	}
}

func TestTickerHandlerCostCanTriggerNextTick(t *testing.T) {
	var c Clock
	n := 0
	c.AddTicker(10, func(at Time) {
		n++
		if n < 5 { // bound the cascade
			c.Advance(12) // cost exceeds the period
		}
	})
	c.Advance(10)
	if n != 5 {
		t.Fatalf("ticks = %d, want 5 (cascading)", n)
	}
}

func TestTickerStop(t *testing.T) {
	var c Clock
	n := 0
	k := c.AddTicker(10, func(at Time) { n++ })
	c.Advance(25)
	k.Stop()
	c.Advance(100)
	if n != 2 {
		t.Fatalf("ticks after stop = %d, want 2", n)
	}
}

func TestTickerStopFromHandler(t *testing.T) {
	var c Clock
	n := 0
	var k *Ticker
	k = c.AddTicker(10, func(at Time) {
		n++
		k.Stop()
	})
	c.Advance(100)
	if n != 1 {
		t.Fatalf("ticks = %d, want 1", n)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{2500, "2.50us"},
		{3 * Millisecond, "3.00ms"},
		{2 * Second, "2.000s"},
		{-500, "-500ns"},
	}
	for _, tc := range cases {
		if got := tc.d.String(); got != tc.want {
			t.Errorf("(%d).String() = %q, want %q", int64(tc.d), got, tc.want)
		}
	}
}

func TestMaxHelpers(t *testing.T) {
	if MaxTime(3, 7) != 7 || MaxTime(7, 3) != 7 {
		t.Fatal("MaxTime broken")
	}
	if MaxDuration(3, 7) != 7 || MaxDuration(7, 3) != 7 {
		t.Fatal("MaxDuration broken")
	}
}

// Property: advancing by a sequence of non-negative durations lands the clock
// at their sum, regardless of tickers attached.
func TestAdvanceSumProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		var c Clock
		c.AddTicker(97, func(Time) {}) // zero-cost ticker must not skew time
		var sum Time
		for _, s := range steps {
			c.Advance(Duration(s))
			sum += Time(s)
		}
		return c.Now() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: tick count equals floor(total/period) when handlers are free.
func TestTickCountProperty(t *testing.T) {
	f := func(total uint32, period uint16) bool {
		if period == 0 {
			return true
		}
		var c Clock
		n := 0
		c.AddTicker(Duration(period), func(Time) { n++ })
		c.Advance(Duration(total))
		return n == int(uint64(total)/uint64(period))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
