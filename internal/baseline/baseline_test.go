package baseline

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"deepcontext/internal/framework"
	"deepcontext/internal/framework/torchsim"
	"deepcontext/internal/gpu"
	"deepcontext/internal/gpu/cupti"
	"deepcontext/internal/vtime"
)

func newRig(t *testing.T, opts Options) (*framework.Machine, *torchsim.Engine, *TraceProfiler, *framework.Thread) {
	t.Helper()
	m := framework.NewMachine(gpu.A100())
	e := torchsim.New(m)
	tr, err := cupti.New(m.GPU)
	if err != nil {
		t.Fatal(err)
	}
	tp := New(m, []framework.Hooks{e}, tr, opts)
	return m, e, tp, m.NewThread("python-main")
}

func op() torchsim.Op {
	return torchsim.Op{
		Name:    "aten::matmul",
		CPUCost: 10 * vtime.Microsecond,
		Kernels: []gpu.KernelSpec{{Name: "sgemm", Grid: gpu.D3(256), Block: gpu.D3(256), FLOPs: 1e8, Bytes: 1e6}},
	}
}

func TestRecordsOpAndKernelEvents(t *testing.T) {
	m, e, tp, th := newRig(t, Options{Name: "pytorch-profiler"})
	e.Run(th, op())
	m.GPU.FlushActivity()
	// op enter/exit (1 event), launch API (1), kernel activity (1).
	if tp.EventCount() != 3 {
		t.Fatalf("events = %d", tp.EventCount())
	}
}

func TestMemoryGrowsLinearlyWithIterations(t *testing.T) {
	run := func(iters int) int64 {
		m, e, tp, th := newRig(t, Options{})
		for i := 0; i < iters; i++ {
			e.Run(th, op())
		}
		m.GPU.FlushActivity()
		return tp.FootprintBytes()
	}
	f10, f100 := run(10), run(100)
	if f100 < 9*f10 {
		t.Fatalf("trace memory not linear: %d vs %d", f10, f100)
	}
}

func TestAppendOverheadIsSmall(t *testing.T) {
	// The per-op overhead charged by tracing must be far below typical
	// op CPU cost — that's why framework profilers are cheap in time.
	_, e, _, th := newRig(t, Options{})
	e.Run(th, op())
	base := 10 * vtime.Microsecond // op body
	overhead := vtime.Duration(th.Clock.Now()) - base - 2*vtime.Duration(gpu.A100().LaunchLatency)
	if overhead > 2*vtime.Microsecond {
		t.Fatalf("tracing overhead too large: %v", overhead)
	}
}

func TestWithStackCostsMore(t *testing.T) {
	run := func(withStack bool) vtime.Time {
		_, e, _, th := newRig(t, Options{WithStack: withStack})
		th.WithPy("a.py", 1, "f", func() {
			for i := 0; i < 10; i++ {
				e.Run(th, op())
			}
		})
		return th.Clock.Now()
	}
	if run(true) <= run(false) {
		t.Fatal("with_stack should cost more")
	}
}

func TestAggregateKernelsPostmortem(t *testing.T) {
	m, e, tp, th := newRig(t, Options{})
	for i := 0; i < 3; i++ {
		e.Run(th, op())
	}
	o2 := op()
	o2.Kernels[0].Name = "elementwise"
	o2.Kernels[0].Bytes = 1e9
	e.Run(th, o2)
	m.GPU.FlushActivity()
	stats := tp.AggregateKernels()
	if len(stats) != 2 {
		t.Fatalf("kernel stats = %+v", stats)
	}
	// Sorted by total time: the big elementwise leads.
	if stats[0].Name != "elementwise" || stats[1].Count != 3 {
		t.Fatalf("aggregation wrong: %+v", stats)
	}
}

func TestExportChromeTrace(t *testing.T) {
	m, e, tp, th := newRig(t, Options{})
	e.Run(th, op())
	m.GPU.FlushActivity()
	var buf bytes.Buffer
	if err := tp.ExportChromeTrace(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != tp.EventCount() {
		t.Fatalf("exported %d of %d", len(doc.TraceEvents), tp.EventCount())
	}
}

func TestExportOOM(t *testing.T) {
	m, e, tp, th := newRig(t, Options{})
	for i := 0; i < 100; i++ {
		e.Run(th, op())
	}
	m.GPU.FlushActivity()
	var buf bytes.Buffer
	err := tp.ExportChromeTrace(&buf, 1024) // tiny budget
	var oom *ErrOutOfMemory
	if !errors.As(err, &oom) {
		t.Fatalf("want OOM, got %v", err)
	}
	if oom.Need <= oom.Budget {
		t.Fatalf("oom fields: %+v", oom)
	}
}

func TestStopHaltsRecording(t *testing.T) {
	_, e, tp, th := newRig(t, Options{})
	e.Run(th, op())
	n := tp.EventCount()
	tp.Stop()
	e.Run(th, op())
	if tp.EventCount() != n {
		t.Fatal("events recorded after Stop")
	}
}
