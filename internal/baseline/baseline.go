// Package baseline models the trace-based framework profilers DeepContext is
// compared against in the paper's evaluation (the PyTorch profiler and the
// JAX profiler): every operator execution and every GPU activity is recorded
// as an individual trace event with timestamps. Appending an event is cheap
// (low runtime overhead) but memory grows linearly with the number of events
// — the paper's Figure 6c/6d behaviour, including out-of-memory failures on
// long runs — and aggregation is only possible postmortem, per kernel name,
// without calling-context differentiation.
package baseline

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"deepcontext/internal/framework"
	"deepcontext/internal/gpu"
	"deepcontext/internal/native"
	"deepcontext/internal/vtime"
)

// Event is one trace record (chrome://tracing "complete" event).
type Event struct {
	Name  string `json:"name"`
	Cat   string `json:"cat"`
	Phase string `json:"ph"`
	TS    int64  `json:"ts"`  // microseconds
	Dur   int64  `json:"dur"` // microseconds
	TID   int    `json:"tid"`
	PID   int    `json:"pid"`
}

// EventBytes is the calibrated in-memory cost of one buffered trace event
// (the PyTorch profiler's KinetoEvent is larger; this is conservative).
const EventBytes = 112

// AppendCost is the per-event recording cost charged to the traced thread.
const AppendCost = 40 * vtime.Nanosecond

// StackCost is the extra per-event cost when with_stack-style Python stack
// recording is enabled.
const StackCost = 600 * vtime.Nanosecond

// Options configures a trace profiler.
type Options struct {
	// Name labels the profiler ("pytorch-profiler", "jax-profiler").
	Name string
	// WithStack records Python stacks per event (costlier, bigger).
	WithStack bool
	// EventExtraBytes adds per-event storage beyond EventBytes, modeling
	// shape/stack metadata kept by real framework profilers.
	EventExtraBytes int64
	// AppendCostOverride replaces AppendCost when nonzero.
	AppendCostOverride vtime.Duration
}

// TraceProfiler is an attached trace-based profiler.
type TraceProfiler struct {
	opts       Options
	m          *framework.Machine
	events     []Event
	open       map[*framework.Thread][]int // indexes of open op events
	active     bool
	extraPer   int64 // extra bytes per event (stack/shape storage)
	appendCost vtime.Duration
}

// New attaches a trace profiler to the frameworks and GPU runtime of m.
func New(m *framework.Machine, fws []framework.Hooks, tracer gpu.Tracer, opts Options) *TraceProfiler {
	if opts.Name == "" {
		opts.Name = "framework-profiler"
	}
	t := &TraceProfiler{
		opts:   opts,
		m:      m,
		open:   make(map[*framework.Thread][]int),
		active: true,
	}
	if opts.WithStack {
		t.extraPer = 160
	}
	t.extraPer += opts.EventExtraBytes
	t.appendCost = AppendCost
	if opts.AppendCostOverride > 0 {
		t.appendCost = opts.AppendCostOverride
	}
	for _, fw := range fws {
		fw.AddGlobalCallback(t.onOp)
	}
	if tracer != nil {
		tracer.EnableActivity(4096, t.onActivities)
		tracer.Subscribe(t.onAPI)
	}
	return t
}

// Stop halts recording.
func (t *TraceProfiler) Stop() { t.active = false }

func (t *TraceProfiler) onOp(ev *framework.OpEvent, ph native.Phase) {
	if !t.active {
		return
	}
	th := ev.Thread
	th.Clock.Advance(t.appendCost)
	if t.opts.WithStack {
		th.Clock.Advance(StackCost + vtime.Duration(th.Py.Depth())*80)
	}
	if ph == native.Enter {
		idx := len(t.events)
		t.events = append(t.events, Event{
			Name: ev.Name, Cat: "op", Phase: "X",
			TS: int64(th.Clock.Now()) / 1000, TID: th.ID, PID: 1,
		})
		t.open[th] = append(t.open[th], idx)
		return
	}
	stack := t.open[th]
	if len(stack) == 0 {
		return
	}
	idx := stack[len(stack)-1]
	t.open[th] = stack[:len(stack)-1]
	t.events[idx].Dur = int64(th.Clock.Now())/1000 - t.events[idx].TS
}

func (t *TraceProfiler) onAPI(ev *gpu.APIEvent) {
	if !t.active || ev.Phase != native.Enter {
		return
	}
	if ev.Thread.Clock != nil {
		ev.Thread.Clock.Advance(t.appendCost)
	}
	name := ev.Site.String()
	if ev.Kernel != nil {
		name = "launch " + ev.Kernel.Name
	}
	t.events = append(t.events, Event{Name: name, Cat: "cuda_runtime", Phase: "X", PID: 1})
}

func (t *TraceProfiler) onActivities(acts []gpu.Activity) {
	if !t.active {
		return
	}
	for _, a := range acts {
		t.events = append(t.events, Event{
			Name: a.Name, Cat: "gpu_" + a.Kind.String(), Phase: "X",
			TS: int64(a.Start) / 1000, Dur: int64(a.Duration()) / 1000,
			TID: 1000 + a.Stream, PID: 2,
		})
	}
}

// EventCount returns the number of recorded events.
func (t *TraceProfiler) EventCount() int { return len(t.events) }

// FootprintBytes models resident memory: linear in events.
func (t *TraceProfiler) FootprintBytes() int64 {
	return int64(len(t.events)) * (EventBytes + t.extraPer)
}

// KernelStat is a postmortem per-kernel aggregate (no calling context).
type KernelStat struct {
	Name  string
	Count int64
	Total vtime.Duration
}

// AggregateKernels performs the postmortem per-kernel aggregation that is the
// best existing trace profilers can offer: totals by kernel name, with no
// differentiation between calling contexts.
func (t *TraceProfiler) AggregateKernels() []KernelStat {
	byName := make(map[string]*KernelStat)
	for _, e := range t.events {
		if e.Cat != "gpu_kernel" {
			continue
		}
		s, ok := byName[e.Name]
		if !ok {
			s = &KernelStat{Name: e.Name}
			byName[e.Name] = s
		}
		s.Count++
		s.Total += vtime.Duration(e.Dur) * vtime.Microsecond
	}
	out := make([]KernelStat, 0, len(byName))
	for _, s := range byName {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// ExportChromeTrace writes the chrome://tracing JSON array. If the modeled
// process memory budget would be exceeded while materializing the export —
// the paper observed the PyTorch profiler OOM-ing at export time — an
// ErrOutOfMemory is returned.
func (t *TraceProfiler) ExportChromeTrace(w io.Writer, memBudgetBytes int64) error {
	// Export roughly doubles resident memory (events + JSON buffer).
	if memBudgetBytes > 0 && 2*t.FootprintBytes() > memBudgetBytes {
		return &ErrOutOfMemory{Need: 2 * t.FootprintBytes(), Budget: memBudgetBytes}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []Event `json:"traceEvents"`
	}{t.events})
}

// ErrOutOfMemory reports an export-time OOM.
type ErrOutOfMemory struct {
	Need, Budget int64
}

// Error renders the failure.
func (e *ErrOutOfMemory) Error() string {
	return fmt.Sprintf("baseline: trace export needs %d bytes, budget %d (OOM)", e.Need, e.Budget)
}
