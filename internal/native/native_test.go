package native

import (
	"testing"
	"testing/quick"

	"deepcontext/internal/vtime"
)

func newSpace(t *testing.T) (*AddressSpace, *Library, *Symbol, *Symbol) {
	t.Helper()
	as := NewAddressSpace()
	lib := as.LoadLibrary("libtorch.so", 1<<20)
	a := as.AddSymbol(lib, "at::conv2d", 1024, "Conv.cpp", 100)
	b := as.AddSymbol(lib, "at::matmul", 512, "Matmul.cpp", 40)
	return as, lib, a, b
}

func TestResolve(t *testing.T) {
	as, _, a, b := newSpace(t)
	if s, ok := as.Resolve(a.Addr); !ok || s != a {
		t.Fatalf("Resolve(entry of a) = %v, %v", s, ok)
	}
	if s, ok := as.Resolve(a.Addr + 1000); !ok || s != a {
		t.Fatalf("Resolve(mid a) = %v, %v", s, ok)
	}
	if s, ok := as.Resolve(b.Addr + 511); !ok || s != b {
		t.Fatalf("Resolve(last byte of b) = %v, %v", s, ok)
	}
	if _, ok := as.Resolve(0); ok {
		t.Fatal("Resolve(0) should fail")
	}
}

func TestLibraryAt(t *testing.T) {
	as, lib, a, _ := newSpace(t)
	if l, ok := as.LibraryAt(a.Addr + 5); !ok || l != lib {
		t.Fatalf("LibraryAt = %v, %v", l, ok)
	}
	if _, ok := as.LibraryAt(0x10); ok {
		t.Fatal("LibraryAt(unmapped) should fail")
	}
}

func TestLineFor(t *testing.T) {
	_, _, a, _ := newSpace(t)
	if got := a.LineFor(a.Addr); got != 100 {
		t.Fatalf("LineFor(entry) = %d, want 100", got)
	}
	if got := a.LineFor(a.Addr + 32); got != 102 {
		t.Fatalf("LineFor(+32) = %d, want 102", got)
	}
	if got := a.LineFor(a.Addr - 1); got != 100 {
		t.Fatalf("LineFor(out of range) = %d, want fallback 100", got)
	}
}

func TestStackPushPop(t *testing.T) {
	as, _, a, b := newSpace(t)
	st := NewStack(as)
	st.Push(a)
	st.PushAt(b, 48)
	if st.Depth() != 2 {
		t.Fatalf("depth = %d", st.Depth())
	}
	if st.Top().PC != b.Addr+48 {
		t.Fatalf("top pc = %#x", st.Top().PC)
	}
	st.SetPC(64)
	if st.Top().PC != b.Addr+64 {
		t.Fatalf("SetPC: top pc = %#x", st.Top().PC)
	}
	st.Pop()
	if st.Top().Sym != a {
		t.Fatalf("after pop top = %v", st.Top().Sym)
	}
	st.Pop()
	defer func() {
		if recover() == nil {
			t.Fatal("pop of empty stack should panic")
		}
	}()
	st.Pop()
}

func TestPushAtClampsOffset(t *testing.T) {
	as, _, a, _ := newSpace(t)
	st := NewStack(as)
	st.PushAt(a, a.Size+100)
	if st.Top().PC != a.Addr+a.Size-1 {
		t.Fatalf("offset not clamped: %#x", st.Top().PC)
	}
}

func TestUnwinderOrderAndCost(t *testing.T) {
	as, _, a, b := newSpace(t)
	st := NewStack(as)
	st.Push(a)
	st.Push(b)
	u := &Unwinder{StepCost: 10, InitCost: 100}
	var clk vtime.Clock
	cur := u.Begin(st, &clk)
	if clk.Now() != 100 {
		t.Fatalf("init cost not charged: %v", clk.Now())
	}
	f1, ok := cur.Step()
	if !ok || f1.Sym != b {
		t.Fatalf("first step = %v (want innermost b)", f1.Sym)
	}
	f2, ok := cur.Step()
	if !ok || f2.Sym != a {
		t.Fatalf("second step = %v", f2.Sym)
	}
	if _, ok := cur.Step(); ok {
		t.Fatal("step past outermost should fail")
	}
	if clk.Now() != 120 {
		t.Fatalf("step costs = %v, want 120", clk.Now())
	}
}

func TestUnwinderNilClock(t *testing.T) {
	as, _, a, _ := newSpace(t)
	st := NewStack(as)
	st.Push(a)
	cur := DefaultUnwinder().Begin(st, nil)
	if _, ok := cur.Step(); !ok {
		t.Fatal("free unwind failed")
	}
}

func TestAuditHooksSeeExistingAndNewLibraries(t *testing.T) {
	as := NewAddressSpace()
	l1 := as.LoadLibrary("libpython3.11.so", 0)
	var opens []string
	var binds []string
	as.AddAuditHook(func(ev AuditEvent) {
		switch ev.Kind {
		case AuditObjOpen:
			opens = append(opens, ev.Lib.Name)
		case AuditSymBind:
			binds = append(binds, ev.Sym.Name)
		}
	})
	if len(opens) != 1 || opens[0] != l1.Name {
		t.Fatalf("late hook missed existing lib: %v", opens)
	}
	l2 := as.LoadLibrary("libcudart.so", 0)
	as.AddSymbol(l2, "cudaLaunchKernel", 0, "", 0)
	if len(opens) != 2 || opens[1] != "libcudart.so" {
		t.Fatalf("opens = %v", opens)
	}
	if len(binds) != 1 || binds[0] != "cudaLaunchKernel" {
		t.Fatalf("binds = %v", binds)
	}
}

func TestInterpose(t *testing.T) {
	as, _, a, b := newSpace(t)
	var events []string
	as.Interpose("at::conv2d", func(sym *Symbol, ph Phase) {
		events = append(events, sym.Name+":"+ph.String())
	})
	st := NewStack(as)
	st.Push(a)
	st.Push(b) // not interposed
	st.Pop()
	st.Pop()
	want := []string{"at::conv2d:enter", "at::conv2d:exit"}
	if len(events) != 2 || events[0] != want[0] || events[1] != want[1] {
		t.Fatalf("events = %v, want %v", events, want)
	}
}

func TestSymbolOverflowPanics(t *testing.T) {
	as := NewAddressSpace()
	lib := as.LoadLibrary("tiny.so", 512)
	as.AddSymbol(lib, "a", 256, "", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on symbol overflow")
		}
	}()
	as.AddSymbol(lib, "b", 512, "", 0)
}

// Property: any push/pop sequence keeps Snapshot consistent with operations,
// and every PC resolves back to the pushed symbol.
func TestStackSnapshotProperty(t *testing.T) {
	as := NewAddressSpace()
	lib := as.LoadLibrary("lib.so", 1<<22)
	syms := make([]*Symbol, 16)
	for i := range syms {
		syms[i] = as.AddSymbol(lib, "fn", 4096, "f.cpp", i*10)
	}
	f := func(ops []uint8) bool {
		st := NewStack(as)
		var model []*Symbol
		for _, op := range ops {
			if op%3 == 0 && len(model) > 0 {
				st.Pop()
				model = model[:len(model)-1]
			} else {
				s := syms[int(op)%len(syms)]
				st.PushAt(s, Addr(op)*16)
				model = append(model, s)
			}
		}
		snap := st.Snapshot()
		if len(snap) != len(model) {
			return false
		}
		for i, f := range snap {
			if f.Sym != model[i] {
				return false
			}
			if got, ok := as.Resolve(f.PC); !ok || got != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
