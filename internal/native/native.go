// Package native simulates the native (C/C++) execution substrate that the
// real DeepContext observes through libunwind, DWARF line tables and
// LD_AUDIT. It provides a process address space with loadable libraries and
// symbols, per-thread call stacks of program counters, a step-wise unwinder
// with a per-step virtual-time cost, and an audit layer for interposing on
// arbitrary functions (the paper's configuration-file fallback for hardware
// without a vendor callback API).
package native

import (
	"fmt"
	"sort"

	"deepcontext/internal/vtime"
)

// Addr is a simulated virtual address.
type Addr uint64

// Library models a loaded shared object occupying [Base, Base+Size).
type Library struct {
	Name string
	Base Addr
	Size Addr
}

// Contains reports whether pc falls inside the library's mapping.
func (l *Library) Contains(pc Addr) bool { return pc >= l.Base && pc < l.Base+l.Size }

// String returns the library name.
func (l *Library) String() string { return l.Name }

// Symbol models a function symbol with DWARF-style source attribution.
// Program counters in [Addr, Addr+Size) belong to the symbol; LineFor maps an
// intra-symbol offset to a source line, modeling a dense line table.
type Symbol struct {
	Name string
	Lib  *Library
	Addr Addr
	Size Addr
	File string
	Line int // line of the function's first instruction
}

// LineFor returns the source line for pc, assuming one line per 16 bytes of
// code — a fixed-density simulated line table.
func (s *Symbol) LineFor(pc Addr) int {
	if pc < s.Addr || pc >= s.Addr+s.Size {
		return s.Line
	}
	return s.Line + int((pc-s.Addr)/16)
}

// String renders "lib!symbol".
func (s *Symbol) String() string { return s.Lib.Name + "!" + s.Name }

// AuditEvent describes a dynamic-loader event delivered to audit hooks,
// modeling the LD_AUDIT la_objopen/la_symbind callbacks the paper uses to
// record libpython's address range and to interpose configured functions.
type AuditEvent struct {
	Kind AuditKind
	Lib  *Library
	Sym  *Symbol
}

// AuditKind enumerates loader audit event kinds.
type AuditKind int

const (
	// AuditObjOpen fires when a library is mapped (la_objopen).
	AuditObjOpen AuditKind = iota
	// AuditSymBind fires when a symbol is bound (la_symbind).
	AuditSymBind
)

// Interposer is invoked around calls to an audited symbol.
type Interposer func(sym *Symbol, phase Phase)

// Phase marks entry or exit of an intercepted call.
type Phase int

const (
	// Enter marks function entry.
	Enter Phase = iota
	// Exit marks function return.
	Exit
)

// String names the phase.
func (p Phase) String() string {
	if p == Enter {
		return "enter"
	}
	return "exit"
}

// AddressSpace models a process's library/symbol layout. It is not safe for
// concurrent mutation; simulations are single-goroutine by design.
type AddressSpace struct {
	libs    []*Library
	syms    []*Symbol // sorted by Addr
	next    Addr
	hooks   []func(AuditEvent)
	interps map[string][]Interposer // symbol name -> interposers
}

// NewAddressSpace returns an empty address space. The first mapping starts at
// a non-zero base so that Addr 0 is never valid.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{next: 0x400000, interps: make(map[string][]Interposer)}
}

// AddAuditHook registers fn to observe loader events, like an LD_AUDIT
// module. Hooks also receive synthetic ObjOpen events for libraries that were
// already mapped, so late registration (profiler attach) sees the full map.
func (as *AddressSpace) AddAuditHook(fn func(AuditEvent)) {
	as.hooks = append(as.hooks, fn)
	for _, l := range as.libs {
		fn(AuditEvent{Kind: AuditObjOpen, Lib: l})
	}
}

// Interpose registers fn to run at entry and exit of every call to symbols
// named name, modeling the paper's LD_AUDIT-based custom interception driven
// by a configuration file.
func (as *AddressSpace) Interpose(name string, fn Interposer) {
	as.interps[name] = append(as.interps[name], fn)
}

// LoadLibrary maps a library of the given size and announces it to audit
// hooks.
func (as *AddressSpace) LoadLibrary(name string, size Addr) *Library {
	if size == 0 {
		size = 1 << 20
	}
	l := &Library{Name: name, Base: as.next, Size: size}
	// Keep a guard gap between mappings.
	as.next += size + 0x10000
	as.libs = append(as.libs, l)
	for _, h := range as.hooks {
		h(AuditEvent{Kind: AuditObjOpen, Lib: l})
	}
	return l
}

// AddSymbol places a new symbol of the given code size at the next free
// offset inside lib and announces the binding to audit hooks.
func (as *AddressSpace) AddSymbol(lib *Library, name string, size Addr, file string, line int) *Symbol {
	if size == 0 {
		size = 256
	}
	var end Addr = lib.Base
	for _, s := range as.syms {
		if s.Lib == lib && s.Addr+s.Size > end {
			end = s.Addr + s.Size
		}
	}
	if end+size > lib.Base+lib.Size {
		panic(fmt.Sprintf("native: library %s out of space for symbol %s", lib.Name, name))
	}
	s := &Symbol{Name: name, Lib: lib, Addr: end, Size: size, File: file, Line: line}
	i := sort.Search(len(as.syms), func(i int) bool { return as.syms[i].Addr > s.Addr })
	as.syms = append(as.syms, nil)
	copy(as.syms[i+1:], as.syms[i:])
	as.syms[i] = s
	for _, h := range as.hooks {
		h(AuditEvent{Kind: AuditSymBind, Lib: lib, Sym: s})
	}
	return s
}

// Resolve maps a program counter to its enclosing symbol.
func (as *AddressSpace) Resolve(pc Addr) (*Symbol, bool) {
	i := sort.Search(len(as.syms), func(i int) bool { return as.syms[i].Addr > pc })
	if i == 0 {
		return nil, false
	}
	s := as.syms[i-1]
	if pc >= s.Addr+s.Size {
		return nil, false
	}
	return s, true
}

// LibraryAt maps a program counter to its enclosing library mapping.
func (as *AddressSpace) LibraryAt(pc Addr) (*Library, bool) {
	for _, l := range as.libs {
		if l.Contains(pc) {
			return l, true
		}
	}
	return nil, false
}

// Libraries returns the mapped libraries in load order.
func (as *AddressSpace) Libraries() []*Library { return as.libs }

// Frame is one native stack entry: the current program counter and its
// resolved symbol (kept alongside to avoid repeated lookups in the hot path;
// the unwinder still exposes only the PC, as libunwind would).
type Frame struct {
	PC  Addr
	Sym *Symbol
}

// Stack is a per-thread native call stack, innermost frame last.
type Stack struct {
	frames []Frame
	as     *AddressSpace
}

// NewStack returns an empty stack bound to as for interposer dispatch.
func NewStack(as *AddressSpace) *Stack { return &Stack{as: as} }

// Push enters sym at its entry PC and fires any registered interposers.
func (st *Stack) Push(sym *Symbol) {
	st.PushAt(sym, 0)
}

// PushAt enters sym at byte offset off (distinguishing call sites within a
// function for line attribution) and fires interposers.
func (st *Stack) PushAt(sym *Symbol, off Addr) {
	if off >= sym.Size {
		off = sym.Size - 1
	}
	st.frames = append(st.frames, Frame{PC: sym.Addr + off, Sym: sym})
	if st.as != nil {
		for _, fn := range st.as.interps[sym.Name] {
			fn(sym, Enter)
		}
	}
}

// SetPC updates the innermost frame's PC to sym.Addr+off, modeling execution
// progressing within the current function between calls.
func (st *Stack) SetPC(off Addr) {
	if len(st.frames) == 0 {
		return
	}
	f := &st.frames[len(st.frames)-1]
	if off >= f.Sym.Size {
		off = f.Sym.Size - 1
	}
	f.PC = f.Sym.Addr + off
}

// Pop leaves the innermost function, firing exit interposers.
func (st *Stack) Pop() {
	if len(st.frames) == 0 {
		panic("native: pop of empty stack")
	}
	f := st.frames[len(st.frames)-1]
	st.frames = st.frames[:len(st.frames)-1]
	if st.as != nil {
		for _, fn := range st.as.interps[f.Sym.Name] {
			fn(f.Sym, Exit)
		}
	}
}

// Depth returns the number of live frames.
func (st *Stack) Depth() int { return len(st.frames) }

// Top returns the innermost frame, or a zero Frame when empty.
func (st *Stack) Top() Frame {
	if len(st.frames) == 0 {
		return Frame{}
	}
	return st.frames[len(st.frames)-1]
}

// Snapshot returns a copy of the frames, outermost first.
func (st *Stack) Snapshot() []Frame {
	out := make([]Frame, len(st.frames))
	copy(out, st.frames)
	return out
}

// Unwinder walks native stacks bottom-up (innermost to outermost), charging a
// fixed virtual-time cost per step to the unwinding thread's clock — the
// dominant overhead source of DeepContext's native call-path mode.
type Unwinder struct {
	StepCost vtime.Duration // cost of one unw_step
	InitCost vtime.Duration // cost of unw_init_local + first getcontext
}

// DefaultUnwinder mirrors libunwind costs measured in the calibration pass.
func DefaultUnwinder() *Unwinder {
	return &Unwinder{StepCost: 700 * vtime.Nanosecond, InitCost: 1000 * vtime.Nanosecond}
}

// Cursor iterates frames of one stack, innermost first.
type Cursor struct {
	u     *Unwinder
	clk   *vtime.Clock
	stack []Frame
	i     int
}

// Begin starts an unwind of st, charging the initialization cost to clk.
// A nil clock performs a free unwind (used by tests and trace baselines).
func (u *Unwinder) Begin(st *Stack, clk *vtime.Clock) *Cursor {
	if clk != nil {
		clk.Advance(u.InitCost)
	}
	return &Cursor{u: u, clk: clk, stack: st.frames, i: len(st.frames)}
}

// Step returns the next frame moving outward, charging the per-step cost.
// It reports false when the outermost frame has already been returned.
func (c *Cursor) Step() (Frame, bool) {
	if c.i == 0 {
		return Frame{}, false
	}
	if c.clk != nil {
		c.clk.Advance(c.u.StepCost)
	}
	c.i--
	return c.stack[c.i], true
}

// Remaining returns how many frames have not been stepped yet.
func (c *Cursor) Remaining() int { return c.i }
